// Thread-count matrix: the pipeline stages produce the documented outputs
// at threads in {1, 2, 8} — byte-identical committed links for the
// deterministic stages, and graceful governor trips under parallelism.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "company/family.h"
#include "core/knowledge_graph.h"
#include "core/pipeline_options.h"
#include "core/vada_link.h"
#include "core/vadalog_programs.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "embed/kmeans.h"
#include "gen/register_simulator.h"
#include "linkage/bayes.h"
#include "linkage/blocking.h"
#include "tests/paper_fixtures.h"

namespace vadalink {
namespace {

using Edge = std::tuple<graph::NodeId, graph::NodeId, std::string>;

std::vector<Edge> EdgeList(const graph::PropertyGraph& g) {
  std::vector<Edge> out;
  g.ForEachEdge([&](graph::EdgeId e) {
    out.emplace_back(g.edge_src(e), g.edge_dst(e), g.edge_label(e));
  });
  return out;
}

void CopyGraph(const graph::PropertyGraph& src, graph::PropertyGraph* dst) {
  for (graph::NodeId n = 0; n < src.node_count(); ++n) {
    graph::NodeId m = dst->AddNode(src.node_label(n));
    for (const auto& [k, v] : src.node_properties(n)) {
      dst->SetNodeProperty(m, k, v);
    }
  }
  src.ForEachEdge([&](graph::EdgeId e) {
    auto f = dst->AddEdge(src.edge_src(e), src.edge_dst(e), src.edge_label(e));
    for (const auto& [k, v] : src.edge_properties(e)) {
      dst->SetEdgeProperty(f.value(), k, v);
    }
  });
}

graph::PropertyGraph SmallRegister(uint64_t seed = 7) {
  gen::RegisterConfig cfg;
  cfg.persons = 60;
  cfg.companies = 30;
  cfg.seed = seed;
  return gen::GenerateRegister(cfg).graph;
}

// ---- PipelineOptions -------------------------------------------------------

TEST(ParallelPipelineOptionsTest, DefaultsValidateAndFlowIntoStages) {
  core::PipelineOptions opts;
  EXPECT_TRUE(opts.Validate().ok());
  opts.parallel.threads = 8;
  opts.parallel.grain = 32;
  EXPECT_TRUE(opts.Validate().ok());
  // The shared ParallelOptions wins over whatever augment.parallel says.
  opts.augment.parallel.threads = 2;
  core::AugmentConfig effective = opts.EffectiveAugment();
  EXPECT_EQ(effective.parallel.threads, 8u);
  EXPECT_EQ(effective.parallel.grain, 32u);

  RunContext ctx;
  ThreadPool pool(2);
  datalog::EngineOptions eng = opts.EffectiveEngine(&ctx, &pool);
  EXPECT_EQ(eng.run_ctx, &ctx);
  EXPECT_EQ(eng.pool, &pool);
}

TEST(ParallelPipelineOptionsTest, ValidateIsTheSingleRejectionPoint) {
  core::PipelineOptions opts;
  opts.parallel.threads = 100000;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);

  opts = core::PipelineOptions{};
  opts.augment.embedding.skipgram.dimensions = 0;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);

  opts = core::PipelineOptions{};
  opts.augment.embedding.walk.walk_length = 0;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);

  opts = core::PipelineOptions{};
  opts.augment.max_rounds = 0;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);

  opts = core::PipelineOptions{};
  opts.augment.embed_deadline_fraction = 1.5;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);

  opts = core::PipelineOptions{};
  opts.engine.max_facts = 0;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
}

// ---- Augment ---------------------------------------------------------------

TEST(ParallelMatrixTest, AugmentCommittedLinksIdenticalAcrossThreadCounts) {
  // With the (hogwild, nondeterministic) embedding stage disabled, the
  // committed links are documented to be identical at every thread count.
  std::vector<std::vector<Edge>> results;
  std::vector<size_t> links_added;
  for (size_t threads : {1, 2, 8}) {
    auto g = SmallRegister();
    core::PipelineOptions opts;
    opts.parallel.threads = threads;
    opts.augment.max_rounds = 2;
    opts.augment.use_embedding = false;
    ASSERT_TRUE(opts.Validate().ok());
    auto vl = core::MakeDefaultVadaLink(opts.EffectiveAugment());
    auto stats = vl.Augment(&g);
    ASSERT_TRUE(stats.ok()) << "threads=" << threads << ": "
                            << stats.status().ToString();
    results.push_back(EdgeList(g));
    links_added.push_back(stats->links_added);
  }
  EXPECT_GT(links_added[0], 0u);
  EXPECT_EQ(results[0], results[1]) << "threads=1 vs threads=2";
  EXPECT_EQ(results[0], results[2]) << "threads=1 vs threads=8";
  EXPECT_EQ(links_added[0], links_added[1]);
  EXPECT_EQ(links_added[0], links_added[2]);
}

TEST(ParallelMatrixTest, AugmentWithEmbeddingSmokeAtEightThreads) {
  auto g = SmallRegister();
  const size_t nodes_before = g.node_count();
  core::PipelineOptions opts;
  opts.parallel.threads = 8;
  opts.augment.max_rounds = 1;
  opts.augment.embedding.skipgram.dimensions = 8;
  opts.augment.embedding.skipgram.epochs = 1;
  opts.augment.embedding.walk.walks_per_node = 2;
  opts.augment.embedding.kmeans.k = 4;
  ASSERT_TRUE(opts.Validate().ok());
  auto vl = core::MakeDefaultVadaLink(opts.EffectiveAugment());
  auto stats = vl.Augment(&g);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rounds, 1u);
  EXPECT_FALSE(stats->truncated);
  EXPECT_EQ(g.node_count(), nodes_before);  // augmentation only adds edges
}

// ---- k-means ---------------------------------------------------------------

TEST(ParallelMatrixTest, KMeansIdenticalForMultiThreadPools) {
  // Random but fixed embedding: 300 points in 3 Gaussian-ish blobs.
  embed::EmbeddingMatrix m(300, 16);
  Rng rng(123);
  for (size_t v = 0; v < m.node_count(); ++v) {
    double center = static_cast<double>(v % 3) * 4.0;
    for (size_t d = 0; d < m.dimensions(); ++d) {
      m.row(v)[d] =
          static_cast<float>(center + rng.UniformDouble(-0.5, 0.5));
    }
  }
  embed::KMeansConfig cfg;
  cfg.k = 3;
  ThreadPool pool2(2), pool8(8);
  auto r2 = embed::KMeans(m, cfg, nullptr, &pool2);
  auto r8 = embed::KMeans(m, cfg, nullptr, &pool8);
  // Chunk-order reduction makes every multi-thread pool bit-identical.
  EXPECT_EQ(r2.assignment, r8.assignment);
  EXPECT_EQ(r2.inertia, r8.inertia);
  EXPECT_EQ(r2.iterations, r8.iterations);
  // The sequential path is self-consistent too (legacy byte-identity).
  auto s1 = embed::KMeans(m, cfg);
  auto s2 = embed::KMeans(m, cfg);
  EXPECT_EQ(s1.assignment, s2.assignment);
  EXPECT_EQ(s1.assignment.size(), 300u);
}

// ---- blocking + pair scoring ----------------------------------------------

TEST(ParallelMatrixTest, BlockingIdenticalAcrossThreadCounts) {
  auto g = SmallRegister();
  linkage::Blocker blocker(linkage::BlockingConfig{
      .keys = {"city", "last_name"}, .max_blocks = 16});
  auto seq = blocker.BlockAll(g);
  ASSERT_TRUE(seq.ok());
  ThreadPool pool2(2), pool8(8);
  for (ThreadPool* pool : {&pool2, &pool8}) {
    auto par = blocker.BlockAll(g, nullptr, pool);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_EQ(*seq, *par) << "threads=" << pool->thread_count();
  }
}

TEST(ParallelMatrixTest, ScorePairsIdenticalAcrossThreadCounts) {
  auto g = SmallRegister();
  linkage::BayesLinkClassifier classifier(company::DefaultPersonSchema());
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  auto persons = g.NodesWithLabel("Person");
  for (size_t i = 0; i + 1 < persons.size(); ++i) {
    pairs.emplace_back(persons[i], persons[i + 1]);
  }
  auto seq = classifier.ScorePairs(g, pairs);
  ASSERT_TRUE(seq.ok());
  ASSERT_EQ(seq->size(), pairs.size());
  ThreadPool pool2(2), pool8(8);
  for (ThreadPool* pool : {&pool2, &pool8}) {
    auto par = classifier.ScorePairs(g, pairs, nullptr, pool);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_EQ(*seq, *par) << "threads=" << pool->thread_count();
  }
}

// ---- reasoning engine ------------------------------------------------------

TEST(ParallelMatrixTest, EngineFactSetIdenticalAcrossThreadCounts) {
  const std::string rules = R"(
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
    tc(X,Y), Y > X, D = Y - X -> span(X,Y,D).
  )";
  auto run = [&](size_t threads) {
    datalog::Catalog catalog;
    datalog::Database db(&catalog);
    Rng rng(99);
    for (int i = 0; i < 120; ++i) {
      int64_t a = rng.UniformInt(0, 59), b = rng.UniformInt(0, 59);
      EXPECT_TRUE(db.InsertByName(
                        "e", {datalog::Value::Int(a), datalog::Value::Int(b)})
                      .ok());
    }
    auto program = datalog::ParseProgram(rules, &catalog);
    EXPECT_TRUE(program.ok());
    ParallelOptions popts;
    popts.threads = threads;
    auto pool = MakeThreadPool(popts);
    datalog::EngineOptions opts;
    opts.pool = pool.get();
    datalog::Engine engine(&db, opts);
    Status st = engine.Run(*program);
    EXPECT_TRUE(st.ok()) << st.ToString();
    std::set<std::string> out;
    for (const char* pred : {"tc", "span"}) {
      for (datalog::RowRef t : db.Scan(pred)) {
        std::string s = std::string(pred) + "(";
        for (size_t i = 0; i < t.size(); ++i) {
          s += t[i].ToString(catalog.symbols) + ",";
        }
        out.insert(s);
      }
    }
    return out;
  };
  auto facts1 = run(1);
  EXPECT_GT(facts1.size(), 120u);
  EXPECT_EQ(facts1, run(2));
  EXPECT_EQ(facts1, run(8));
}

// ---- governor trips under parallelism -------------------------------------

TEST(ParallelCancellationTest, AugmentTruncatesGracefullyUnderThreads) {
  auto g = SmallRegister();
  core::PipelineOptions opts;
  opts.parallel.threads = 8;
  opts.augment.max_rounds = 3;
  opts.augment.use_embedding = false;
  auto vl = core::MakeDefaultVadaLink(opts.EffectiveAugment());
  RunContext ctx;
  ctx.set_work_budget(25);  // trips mid-pairwise-stage
  auto stats = vl.Augment(&g, &ctx);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->truncated);
  EXPECT_EQ(stats->interrupt.code(), StatusCode::kResourceExhausted);
}

TEST(ParallelCancellationTest, ReasonSurfacesBudgetTripUnderThreads) {
  auto fixture = vadalink::testing::Figure1();
  core::KnowledgeGraph kg;
  ParallelOptions popts;
  popts.threads = 8;
  kg.set_parallel(popts);
  CopyGraph(fixture.graph(), kg.mutable_graph());
  ASSERT_TRUE(kg.AddRules(core::ControlProgram()).ok());
  RunContext ctx;
  ctx.set_work_budget(2);
  auto stats = kg.Reason(&ctx);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParallelCancellationTest, ReasonHonoursPreCancelledContext) {
  auto fixture = vadalink::testing::Figure1();
  core::KnowledgeGraph kg;
  ParallelOptions popts;
  popts.threads = 4;
  kg.set_parallel(popts);
  CopyGraph(fixture.graph(), kg.mutable_graph());
  ASSERT_TRUE(kg.AddRules(core::ControlProgram()).ok());
  RunContext ctx;
  ctx.RequestCancel();
  auto stats = kg.Reason(&ctx);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace vadalink
