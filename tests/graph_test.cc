// graph/: property values, property graph, analytics, CSV I/O, subgraphs.
#include <gtest/gtest.h>

#include <fstream>

#include "common/fault_injection.h"
#include "graph/graph_algorithms.h"
#include "graph/graph_io.h"
#include "graph/property_graph.h"
#include "graph/subgraph.h"

namespace vadalink::graph {
namespace {

// ---- PropertyValue ----------------------------------------------------------

TEST(PropertyValueTest, TypesAndAccessors) {
  PropertyValue null_v;
  EXPECT_TRUE(null_v.is_null());
  PropertyValue b(true);
  EXPECT_TRUE(b.is_bool());
  EXPECT_TRUE(b.AsBool());
  PropertyValue i(int64_t{42});
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(i.AsInt(), 42);
  EXPECT_TRUE(i.is_numeric());
  PropertyValue d(2.5);
  EXPECT_TRUE(d.is_double());
  EXPECT_DOUBLE_EQ(d.AsNumber(), 2.5);
  PropertyValue s("hello");
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(s.AsString(), "hello");
}

TEST(PropertyValueTest, EncodeDecodeRoundTrip) {
  for (const PropertyValue& v :
       {PropertyValue(), PropertyValue(true), PropertyValue(false),
        PropertyValue(int64_t{-17}), PropertyValue(0.125),
        PropertyValue("ciao mondo")}) {
    auto back = PropertyValue::Decode(v.Encode());
    ASSERT_TRUE(back.ok()) << v.Encode();
    EXPECT_EQ(*back, v);
  }
}

TEST(PropertyValueTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(PropertyValue::Decode("x").ok());
  EXPECT_FALSE(PropertyValue::Decode("i:abc").ok());
  EXPECT_FALSE(PropertyValue::Decode("q:1").ok());
  EXPECT_FALSE(PropertyValue::Decode("d:1.2.3").ok());
}

TEST(PropertyValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(PropertyValue("a").Hash(), PropertyValue("a").Hash());
  EXPECT_NE(PropertyValue(int64_t{1}).Hash(), PropertyValue(1.0).Hash());
}

// ---- PropertyGraph ----------------------------------------------------------

TEST(PropertyGraphTest, AddNodesAndEdges) {
  PropertyGraph g;
  NodeId a = g.AddNode("Person");
  NodeId b = g.AddNode("Company");
  auto e = g.AddEdge(a, b, "Shareholding");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge_src(*e), a);
  EXPECT_EQ(g.edge_dst(*e), b);
  EXPECT_EQ(g.node_label(a), "Person");
  EXPECT_EQ(g.out_degree(a), 1u);
  EXPECT_EQ(g.in_degree(b), 1u);
}

TEST(PropertyGraphTest, EdgeToInvalidNodeFails) {
  PropertyGraph g;
  NodeId a = g.AddNode("N");
  EXPECT_FALSE(g.AddEdge(a, 99, "E").ok());
  EXPECT_FALSE(g.AddEdge(99, a, "E").ok());
}

TEST(PropertyGraphTest, Properties) {
  PropertyGraph g;
  NodeId a = g.AddNode("N");
  g.SetNodeProperty(a, "name", "acme");
  g.SetNodeProperty(a, "year", int64_t{1999});
  EXPECT_EQ(g.GetNodeProperty(a, "name").AsString(), "acme");
  EXPECT_EQ(g.GetNodeProperty(a, "year").AsInt(), 1999);
  EXPECT_TRUE(g.GetNodeProperty(a, "missing").is_null());
  EXPECT_TRUE(g.HasNodeProperty(a, "name"));
  EXPECT_FALSE(g.HasNodeProperty(a, "missing"));
}

TEST(PropertyGraphTest, RemoveEdge) {
  PropertyGraph g;
  NodeId a = g.AddNode("N"), b = g.AddNode("N");
  EdgeId e1 = g.AddEdge(a, b, "E").value();
  EdgeId e2 = g.AddEdge(b, a, "E").value();
  ASSERT_TRUE(g.RemoveEdge(e1).ok());
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.IsValidEdge(e1));
  EXPECT_TRUE(g.IsValidEdge(e2));
  EXPECT_TRUE(g.out_edges(a).empty());
  EXPECT_EQ(g.in_edges(a).size(), 1u);
  // Double removal fails.
  EXPECT_FALSE(g.RemoveEdge(e1).ok());
  // Iteration skips removed edges.
  size_t live = 0;
  g.ForEachEdge([&](EdgeId) { ++live; });
  EXPECT_EQ(live, 1u);
}

TEST(PropertyGraphTest, FindEdgeAndLabels) {
  PropertyGraph g;
  NodeId a = g.AddNode("Person"), b = g.AddNode("Company");
  g.AddEdge(a, b, "Owns").value();
  EXPECT_NE(g.FindEdge(a, b, "Owns"), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(a, b, "Controls"), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(b, a, "Owns"), kInvalidEdge);
  EXPECT_EQ(g.NodesWithLabel("Person"), std::vector<NodeId>{a});
}

// ---- algorithms --------------------------------------------------------------

PropertyGraph Cycle(size_t n) {
  PropertyGraph g;
  for (size_t i = 0; i < n; ++i) g.AddNode("N");
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n), "E")
        .value();
  }
  return g;
}

TEST(AlgorithmsTest, SccOnCycle) {
  auto g = Cycle(5);
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.count, 1u);
  EXPECT_EQ(scc.largest_size, 5u);
}

TEST(AlgorithmsTest, SccOnChain) {
  PropertyGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode("N");
  g.AddEdge(0, 1, "E").value();
  g.AddEdge(1, 2, "E").value();
  g.AddEdge(2, 3, "E").value();
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.count, 4u);
  EXPECT_EQ(scc.largest_size, 1u);
}

TEST(AlgorithmsTest, SccMixed) {
  // 0 <-> 1 cycle, then 2 -> 3 chain hanging off it.
  PropertyGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode("N");
  g.AddEdge(0, 1, "E").value();
  g.AddEdge(1, 0, "E").value();
  g.AddEdge(1, 2, "E").value();
  g.AddEdge(2, 3, "E").value();
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.count, 3u);
  EXPECT_EQ(scc.largest_size, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_NE(scc.component[1], scc.component[2]);
}

TEST(AlgorithmsTest, WccTwoIslands) {
  PropertyGraph g;
  for (int i = 0; i < 5; ++i) g.AddNode("N");
  g.AddEdge(0, 1, "E").value();
  g.AddEdge(2, 3, "E").value();
  auto wcc = WeaklyConnectedComponents(g);
  EXPECT_EQ(wcc.count, 3u);  // {0,1}, {2,3}, {4}
  EXPECT_EQ(wcc.largest_size, 2u);
  EXPECT_EQ(wcc.component[0], wcc.component[1]);
  EXPECT_NE(wcc.component[0], wcc.component[2]);
}

TEST(AlgorithmsTest, ClusteringCoefficientTriangle) {
  PropertyGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode("N");
  g.AddEdge(0, 1, "E").value();
  g.AddEdge(1, 2, "E").value();
  g.AddEdge(2, 0, "E").value();
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
}

TEST(AlgorithmsTest, ClusteringCoefficientStar) {
  PropertyGraph g;
  for (int i = 0; i < 5; ++i) g.AddNode("N");
  for (int leaf = 1; leaf < 5; ++leaf) g.AddEdge(0, leaf, "E").value();
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
}

TEST(AlgorithmsTest, ClusteringCoefficientPartial) {
  // Triangle 0-1-2 plus pendant 3 on node 0:
  // triangles=1, triples: deg(0)=3 -> 3, deg(1)=deg(2)=2 -> 1+1, deg(3)=1.
  PropertyGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode("N");
  g.AddEdge(0, 1, "E").value();
  g.AddEdge(1, 2, "E").value();
  g.AddEdge(2, 0, "E").value();
  g.AddEdge(0, 3, "E").value();
  EXPECT_NEAR(GlobalClusteringCoefficient(g), 3.0 / 5.0, 1e-12);
}

TEST(AlgorithmsTest, StatsCountSelfLoops) {
  PropertyGraph g;
  NodeId a = g.AddNode("N");
  g.AddEdge(a, a, "E").value();
  auto stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.self_loops, 1u);
  EXPECT_EQ(stats.nodes, 1u);
  EXPECT_EQ(stats.edges, 1u);
}

TEST(AlgorithmsTest, DegreeHistogram) {
  PropertyGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode("N");
  g.AddEdge(0, 1, "E").value();
  auto hist = DegreeHistogram(g);
  ASSERT_GE(hist.size(), 2u);
  EXPECT_EQ(hist[0], 1u);  // node 2
  EXPECT_EQ(hist[1], 2u);  // nodes 0, 1
}

TEST(AlgorithmsTest, EmptyGraphStats) {
  PropertyGraph g;
  auto stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.nodes, 0u);
  EXPECT_EQ(stats.scc_count, 0u);
  EXPECT_EQ(stats.clustering_coefficient, 0.0);
}

// ---- I/O ----------------------------------------------------------------------

TEST(GraphIoTest, RoundTrip) {
  PropertyGraph g;
  NodeId a = g.AddNode("Person");
  NodeId b = g.AddNode("Company");
  g.SetNodeProperty(a, "name", "Anna, \"the\" boss");
  g.SetNodeProperty(b, "year", int64_t{2001});
  EdgeId e = g.AddEdge(a, b, "Shareholding").value();
  g.SetEdgeProperty(e, "w", 0.375);

  std::string nodes = ::testing::TempDir() + "/vl_nodes.csv";
  std::string edges = ::testing::TempDir() + "/vl_edges.csv";
  ASSERT_TRUE(SaveGraphCsv(g, nodes, edges).ok());
  auto back = LoadGraphCsv(nodes, edges);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->node_count(), 2u);
  EXPECT_EQ(back->edge_count(), 1u);
  EXPECT_EQ(back->node_label(0), "Person");
  EXPECT_EQ(back->GetNodeProperty(0, "name").AsString(),
            "Anna, \"the\" boss");
  EXPECT_EQ(back->GetNodeProperty(1, "year").AsInt(), 2001);
  EXPECT_DOUBLE_EQ(back->GetEdgeProperty(0, "w").AsDouble(), 0.375);
}

TEST(GraphIoTest, RemovedEdgesNotPersisted) {
  PropertyGraph g;
  NodeId a = g.AddNode("N"), b = g.AddNode("N");
  EdgeId e1 = g.AddEdge(a, b, "E").value();
  g.AddEdge(b, a, "E").value();
  ASSERT_TRUE(g.RemoveEdge(e1).ok());
  std::string nodes = ::testing::TempDir() + "/vl_nodes2.csv";
  std::string edges = ::testing::TempDir() + "/vl_edges2.csv";
  ASSERT_TRUE(SaveGraphCsv(g, nodes, edges).ok());
  auto back = LoadGraphCsv(nodes, edges);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->edge_count(), 1u);
}

namespace {
std::string WriteTemp(const std::string& name, const std::string& content) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  return path;
}
}  // namespace

TEST(GraphIoTest, TruncatedEdgeRowNamesFileAndLine) {
  std::string nodes = WriteTemp("vl_trunc_nodes.csv", "0,Person\n1,Company\n");
  // Row 2 lost its label mid-write — the classic truncated dump.
  std::string edges = WriteTemp("vl_trunc_edges.csv", "0,0,1,Owns\n1,1,0\n");
  auto back = LoadGraphCsv(nodes, edges);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kParseError);
  EXPECT_NE(back.status().message().find("vl_trunc_edges.csv:2"),
            std::string::npos)
      << back.status().message();
  EXPECT_NE(back.status().message().find("truncated"), std::string::npos);
}

TEST(GraphIoTest, BadIntegerNamesFileAndLine) {
  std::string nodes =
      WriteTemp("vl_badint_nodes.csv", "0,Person\nxyz,Company\n");
  std::string edges = WriteTemp("vl_badint_edges.csv", "");
  auto back = LoadGraphCsv(nodes, edges);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("vl_badint_nodes.csv:2"),
            std::string::npos)
      << back.status().message();
  EXPECT_NE(back.status().message().find("'xyz'"), std::string::npos);
}

TEST(GraphIoTest, NonDenseNodeIdsNameLine) {
  std::string nodes = WriteTemp("vl_dense_nodes.csv", "0,Person\n5,Company\n");
  std::string edges = WriteTemp("vl_dense_edges.csv", "");
  auto back = LoadGraphCsv(nodes, edges);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find(":2"), std::string::npos)
      << back.status().message();
  EXPECT_NE(back.status().message().find("expected 1"), std::string::npos);
}

TEST(GraphIoTest, EdgeToMissingNodeNamesLine) {
  std::string nodes = WriteTemp("vl_dangling_nodes.csv", "0,Person\n");
  std::string edges = WriteTemp("vl_dangling_edges.csv", "0,0,7,Owns\n");
  auto back = LoadGraphCsv(nodes, edges);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("vl_dangling_edges.csv:1"),
            std::string::npos)
      << back.status().message();
}

TEST(GraphIoTest, BadPropertyCellNamesLine) {
  std::string nodes =
      WriteTemp("vl_prop_nodes.csv", "0,Person,name=s:ok\n1,Person,oops\n");
  std::string edges = WriteTemp("vl_prop_edges.csv", "");
  auto back = LoadGraphCsv(nodes, edges);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("vl_prop_nodes.csv:2"),
            std::string::npos)
      << back.status().message();
}

TEST(GraphIoTest, LoadFaultInjectionPropagates) {
  PropertyGraph g;
  g.AddNode("Person");
  std::string nodes = ::testing::TempDir() + "/vl_fault_nodes.csv";
  std::string edges = ::testing::TempDir() + "/vl_fault_edges.csv";
  ASSERT_TRUE(SaveGraphCsv(g, nodes, edges).ok());
  // The underlying csv.read_file site fires through LoadGraphCsv.
  FaultInjection::Arm("csv.read_file", {StatusCode::kIoError, "disk gone"});
  auto back = LoadGraphCsv(nodes, edges);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kIoError);
  EXPECT_GE(FaultInjection::FireCount("csv.read_file"), 1u);
  FaultInjection::Reset();
  EXPECT_TRUE(LoadGraphCsv(nodes, edges).ok());
}

// ---- subgraph -------------------------------------------------------------------

TEST(SubgraphTest, InducedKeepsInternalEdges) {
  PropertyGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode("N");
  g.AddEdge(0, 1, "E").value();
  g.AddEdge(1, 2, "E").value();
  g.AddEdge(2, 3, "E").value();
  auto sub = InducedSubgraph(g, {0, 1, 2});
  EXPECT_EQ(sub.graph.node_count(), 3u);
  EXPECT_EQ(sub.graph.edge_count(), 2u);  // 0->1, 1->2
  EXPECT_EQ(sub.original_node, (std::vector<NodeId>{0, 1, 2}));
}

TEST(SubgraphTest, BfsSampleSize) {
  auto g = Cycle(10);
  auto sub = BfsSample(g, 0, 4);
  EXPECT_EQ(sub.graph.node_count(), 4u);
}

TEST(SubgraphTest, BfsSampleWholeComponent) {
  PropertyGraph g;
  for (int i = 0; i < 6; ++i) g.AddNode("N");
  g.AddEdge(0, 1, "E").value();
  g.AddEdge(1, 2, "E").value();
  // nodes 3..5 unreachable
  auto sub = BfsSample(g, 0, 100);
  EXPECT_EQ(sub.graph.node_count(), 3u);
}

}  // namespace
}  // namespace vadalink::graph
