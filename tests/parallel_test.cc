// common/parallel: the thread pool, chunked ParallelFor / ParallelReduce,
// deterministic chunking and seeding, and RunContext propagation.
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <tuple>
#include <vector>

namespace vadalink {
namespace {

// ---- options ---------------------------------------------------------------

TEST(ParallelOptionsTest, DefaultsAreSequentialAndValid) {
  ParallelOptions opts;
  EXPECT_EQ(opts.threads, 1u);
  EXPECT_EQ(opts.grain, 0u);
  EXPECT_TRUE(opts.Validate().ok());
}

TEST(ParallelOptionsTest, ValidateRejectsAbsurdValues) {
  ParallelOptions opts;
  opts.threads = 100000;
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
  opts.threads = 1;
  opts.grain = (size_t{1} << 33);
  EXPECT_EQ(opts.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ParallelOptionsTest, EffectiveThreadsResolvesZeroToHardware) {
  ParallelOptions opts;
  opts.threads = 0;
  EXPECT_GE(opts.EffectiveThreads(), 1u);
  opts.threads = 5;
  EXPECT_EQ(opts.EffectiveThreads(), 5u);
}

TEST(ParallelOptionsTest, MakeThreadPoolIsNullForOneThread) {
  ParallelOptions opts;
  EXPECT_EQ(MakeThreadPool(opts), nullptr);
  opts.threads = 4;
  auto pool = MakeThreadPool(opts);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->thread_count(), 4u);
}

// ---- chunk seeding ---------------------------------------------------------

TEST(ParallelSeedTest, ChunkSeedIsPureAndDistinct) {
  EXPECT_EQ(ChunkSeed(42, 1, 7), ChunkSeed(42, 1, 7));
  std::set<uint64_t> seeds;
  for (uint64_t stream = 0; stream < 4; ++stream) {
    for (uint64_t chunk = 0; chunk < 64; ++chunk) {
      seeds.insert(ChunkSeed(42, stream, chunk));
    }
  }
  EXPECT_EQ(seeds.size(), 4u * 64u);  // no collisions in a small grid
}

// ---- ParallelFor -----------------------------------------------------------

TEST(ParallelForTest, CoversEveryItemExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  Status st =
      ParallelFor(&pool, n, 7, nullptr,
                  [&](size_t begin, size_t end, size_t) {
                    for (size_t i = begin; i < end; ++i) {
                      hits[i].fetch_add(1, std::memory_order_relaxed);
                    }
                    return Status::OK();
                  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "item " << i;
}

TEST(ParallelForTest, ChunkBoundariesIndependentOfThreadCount) {
  using Chunk = std::tuple<size_t, size_t, size_t>;  // (begin, end, chunk)
  const size_t n = 533, grain = 17;
  auto run = [&](ThreadPool* pool) {
    std::mutex mu;
    std::set<Chunk> chunks;
    Status st = ParallelFor(pool, n, grain, nullptr,
                            [&](size_t begin, size_t end, size_t chunk) {
                              std::lock_guard<std::mutex> lock(mu);
                              chunks.emplace(begin, end, chunk);
                              return Status::OK();
                            });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return chunks;
  };
  auto sequential = run(nullptr);
  ThreadPool pool2(2), pool8(8);
  EXPECT_EQ(sequential, run(&pool2));
  EXPECT_EQ(sequential, run(&pool8));
  EXPECT_EQ(sequential.size(), (n + grain - 1) / grain);
}

TEST(ParallelForTest, SequentialPathStopsAtFirstError) {
  std::vector<size_t> seen;
  Status st = ParallelFor(nullptr, 100, 10, nullptr,
                          [&](size_t, size_t, size_t chunk) {
                            seen.push_back(chunk);
                            if (chunk >= 3) {
                              return Status::Internal("chunk " +
                                                      std::to_string(chunk));
                            }
                            return Status::OK();
                          });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(st.message(), "chunk 3");
  EXPECT_EQ(seen, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ParallelForTest, ParallelErrorPropagatesLowestRecordedChunk) {
  ThreadPool pool(4);
  // Only chunk 0 fails, so whatever the schedule, the returned error must
  // be chunk 0's (it is the lowest-indexed recorded failure).
  Status st = ParallelFor(&pool, 64, 1, nullptr,
                          [&](size_t, size_t, size_t chunk) {
                            if (chunk == 0) return Status::Internal("boom");
                            return Status::OK();
                          });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(st.message(), "boom");
}

TEST(ParallelForTest, ExpiredDeadlineTripsBeforeAnyWork) {
  ThreadPool pool(4);
  RunContext ctx;
  ctx.set_deadline(RunContext::Clock::now() - std::chrono::milliseconds(1));
  std::atomic<size_t> executed{0};
  Status st = ParallelFor(&pool, 200, 1, &ctx,
                          [&](size_t, size_t, size_t) {
                            executed.fetch_add(1);
                            return Status::OK();
                          });
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(executed.load(), 0u);
}

TEST(ParallelForTest, DeadlineFiringMidLoopTripsWorkers) {
  ThreadPool pool(4);
  RunContext ctx;
  ctx.set_deadline_after_ms(10);
  std::atomic<size_t> executed{0};
  Status st = ParallelFor(&pool, 64, 1, &ctx,
                          [&](size_t, size_t, size_t) {
                            executed.fetch_add(1);
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(2));
                            return Status::OK();
                          });
  // Workers are mid-chunk when the deadline expires; the per-chunk poll
  // notices and the remaining chunks are skipped.
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(executed.load(), 64u);
  EXPECT_GT(executed.load(), 0u);
}

TEST(ParallelForTest, CancellationMidLoopSkipsRemainingChunks) {
  ThreadPool pool(4);
  RunContext ctx;
  std::atomic<size_t> executed{0};
  Status st = ParallelFor(&pool, 512, 1, &ctx,
                          [&](size_t, size_t, size_t) {
                            executed.fetch_add(1);
                            ctx.RequestCancel();
                            return Status::OK();
                          });
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_LT(executed.load(), 512u);
}

TEST(ParallelForTest, WorkBudgetSurfacesAsResourceExhausted) {
  ThreadPool pool(2);
  RunContext ctx;
  ctx.set_work_budget(5);
  Status st = ParallelFor(&pool, 256, 1, &ctx,
                          [&](size_t, size_t, size_t) {
                            return ConsumeRunWork(&ctx, 1);
                          });
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(ParallelForTest, EmptyRangeIsOk) {
  ThreadPool pool(4);
  Status st = ParallelFor(&pool, 0, 0, nullptr,
                          [&](size_t, size_t, size_t) {
                            ADD_FAILURE() << "body invoked for n = 0";
                            return Status::OK();
                          });
  EXPECT_TRUE(st.ok());
}

// ---- ParallelReduce --------------------------------------------------------

TEST(ParallelReduceTest, SumIsExactAndThreadCountIndependent) {
  const size_t n = 10007;
  auto run = [&](ThreadPool* pool) {
    double total = 0.0;
    Status st = ParallelReduce<double>(
        pool, n, 64, nullptr, &total,
        [](size_t begin, size_t end, size_t, double* acc) {
          for (size_t i = begin; i < end; ++i) {
            *acc += static_cast<double>(i) * 0.5;
          }
          return Status::OK();
        },
        [](double* out, double* acc) { *out += *acc; });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return total;
  };
  double sequential = run(nullptr);
  ThreadPool pool2(2), pool8(8);
  // Same grain => same chunk partials merged in the same order: the result
  // is bit-identical at every thread count.
  EXPECT_EQ(sequential, run(&pool2));
  EXPECT_EQ(sequential, run(&pool8));
  EXPECT_DOUBLE_EQ(sequential, 0.5 * (double(n - 1) * double(n) / 2.0));
}

TEST(ParallelReduceTest, ReducesInAscendingChunkOrder) {
  ThreadPool pool(8);
  std::vector<size_t> order;
  Status st = ParallelReduce<std::vector<size_t>>(
      &pool, 100, 9, nullptr, &order,
      [](size_t, size_t, size_t chunk, std::vector<size_t>* acc) {
        acc->push_back(chunk);
        return Status::OK();
      },
      [](std::vector<size_t>* out, std::vector<size_t>* acc) {
        out->insert(out->end(), acc->begin(), acc->end());
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(order.size(), (100u + 8u) / 9u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

// ---- pool stress -----------------------------------------------------------

TEST(ParallelPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (size_t job = 0; job < 200; ++job) {
    std::atomic<size_t> count{0};
    Status st = ParallelFor(&pool, 50 + job % 17, 3, nullptr,
                            [&](size_t begin, size_t end, size_t) {
                              count.fetch_add(end - begin);
                              return Status::OK();
                            });
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_EQ(count.load(), 50 + job % 17) << "job " << job;
  }
}

TEST(ParallelPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<size_t> inner_items{0};
  Status st = ParallelFor(
      &pool, 16, 1, nullptr, [&](size_t, size_t, size_t) {
        return ParallelFor(&pool, 10, 1, nullptr,
                           [&](size_t begin, size_t end, size_t) {
                             inner_items.fetch_add(end - begin);
                             return Status::OK();
                           });
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(inner_items.load(), 16u * 10u);
}

TEST(ParallelPoolTest, ResolveGrainIsThreadCountIndependent) {
  ThreadPool pool2(2), pool8(8);
  for (size_t n : {1u, 63u, 64u, 1000u, 99999u}) {
    EXPECT_EQ(ResolveGrain(n, 0, &pool2), ResolveGrain(n, 0, &pool8));
    EXPECT_EQ(ResolveGrain(n, 0, nullptr), ResolveGrain(n, 0, &pool8));
    EXPECT_EQ(ResolveGrain(n, 13, &pool2), 13u);
  }
  EXPECT_GE(ResolveGrain(0, 0, nullptr), 1u);
}

}  // namespace
}  // namespace vadalink
