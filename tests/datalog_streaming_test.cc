// datalog/: the space-bounded streaming chase (EngineOptions::streaming,
// DESIGN.md section 13) — delta eviction, the evictability analysis, the
// labeled-null pattern memo, and the invariant everything else hangs off:
// the answer set of a streaming run is byte-identical to the full chase
// at every thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "core/mapping.h"
#include "core/vadalog_programs.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "gen/barabasi_albert.h"

namespace vadalink::datalog {
namespace {

std::multiset<std::string> Render(const std::string& pred,
                                  const Database& db,
                                  const Catalog& catalog) {
  std::multiset<std::string> out;
  uint32_t p = catalog.predicates.Lookup(pred);
  if (p == UINT32_MAX) return out;
  for (RowRef row : db.Scan(p)) {
    std::string line = pred;
    for (size_t i = 0; i < row.size(); ++i) {
      line += "|" + row[i].ToString(catalog.symbols);
    }
    out.insert(std::move(line));
  }
  return out;
}

/// One chase over a fresh database seeded from a BA ownership graph;
/// returns the rendered `output_pred` facts — for streaming runs the
/// union of rows streamed through the sink and rows still resident.
struct ChaseOutcome {
  std::multiset<std::string> answers;
  EngineStats stats;
  size_t total_facts = 0;
};

ChaseOutcome ChaseGraph(const graph::PropertyGraph& g,
                        const std::string& rules,
                        const std::string& output_pred, bool streaming,
                        size_t threads) {
  ChaseOutcome out;
  Catalog catalog;
  Database db(&catalog);
  core::MappingOptions map_opts;
  map_opts.generic_encoding = false;
  EXPECT_TRUE(core::LoadGraphFacts(g, &db, map_opts).ok());
  auto program = ParseProgram(rules, &catalog);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  ParallelOptions par;
  par.threads = threads;
  auto pool = MakeThreadPool(par);
  const uint32_t out_pred = catalog.predicates.Intern(output_pred);
  EngineOptions opts;
  opts.pool = pool.get();
  opts.streaming = streaming;
  if (streaming) {
    opts.evict_sink = [&](uint32_t pred, const Value* vals, size_t n) {
      if (pred != out_pred) return;
      std::string line = output_pred;
      for (size_t i = 0; i < n; ++i) {
        line += "|" + vals[i].ToString(catalog.symbols);
      }
      out.answers.insert(std::move(line));
    };
  }
  Engine engine(&db, opts);
  Status st = engine.Run(*program);
  EXPECT_TRUE(st.ok()) << st.ToString();
  out.stats = engine.stats();
  out.total_facts = db.TotalFacts();
  for (const std::string& line : Render(output_pred, db, catalog)) {
    out.answers.insert(line);
  }
  return out;
}

graph::PropertyGraph TestGraph(size_t nodes, size_t m, uint64_t seed) {
  gen::BarabasiAlbertConfig ba;
  ba.nodes = nodes;
  ba.edges_per_node = m;
  ba.seed = seed;
  return gen::GenerateBarabasiAlbert(ba);
}

TEST(StreamingChaseTest, ControlAnswersIdenticalAcrossModesAndThreads) {
  auto g = TestGraph(300, 2, 11);
  const std::string rules = core::ControlProgram(0.3);
  ChaseOutcome full1 = ChaseGraph(g, rules, "control", false, 1);
  ChaseOutcome full4 = ChaseGraph(g, rules, "control", false, 4);
  ChaseOutcome str1 = ChaseGraph(g, rules, "control", true, 1);
  ChaseOutcome str4 = ChaseGraph(g, rules, "control", true, 4);

  ASSERT_FALSE(full1.answers.empty());
  EXPECT_EQ(full1.answers, full4.answers);
  // The streaming answer set — sunk rows plus resident rows — is the full
  // chase's, byte for byte, and each output row is seen exactly once
  // (multiset equality rules out a row both sunk and re-derived).
  EXPECT_EQ(str1.answers, full1.answers);
  EXPECT_EQ(str4.answers, full1.answers);

  // Null-free program: the logical fact count matches exactly, storage
  // was actually released, and the peak never exceeds the full chase's.
  EXPECT_EQ(str1.total_facts, full1.total_facts);
  EXPECT_GT(str1.stats.evicted_rows, 0u);
  EXPECT_LT(str1.stats.peak_resident_facts, full1.stats.peak_resident_facts);
  EXPECT_EQ(str1.stats.memo_queries, 0u);  // no nulls anywhere
  EXPECT_EQ(full1.stats.evicted_rows, 0u);
}

TEST(StreamingChaseTest, CloseLinkPinsTwiceReadAggregateHead) {
  auto g = TestGraph(200, 1, 5);
  const std::string rules = core::CloseLinkProgram(0.05, 8);
  ChaseOutcome full = ChaseGraph(g, rules, "closelink", false, 1);
  ChaseOutcome str = ChaseGraph(g, rules, "closelink", true, 1);
  ASSERT_FALSE(full.answers.empty());
  EXPECT_EQ(str.answers, full.answers);
  EXPECT_EQ(str.total_facts, full.total_facts);
  // walk evicts; accown (read twice by the common-third-party rule) must
  // not — the evictability analysis keeps every row a future join can
  // still reach.
  EXPECT_GT(str.stats.evicted_rows, 0u);
}

TEST(StreamingChaseTest, NonEvictablePredicateStaysFullyResident) {
  // p is read twice in one rule body (self-join): no delta window covers
  // both occurrences, so the analysis must refuse to evict p even though
  // every read is otherwise delta-shaped.
  Catalog catalog;
  Database db(&catalog);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(db.InsertByName("e", {Value::Int(i), Value::Int(i + 1)})
                    .ok());
  }
  auto program = ParseProgram(R"(
    e(X,Y) -> p(X,Y).
    p(X,Y), e(Y,Z) -> p(X,Z).
    p(X,Y), p(Y,Z) -> meet(X,Z).
  )",
                              &catalog);
  ASSERT_TRUE(program.ok());
  EngineOptions opts;
  opts.streaming = true;
  Engine engine(&db, opts);
  ASSERT_TRUE(engine.Run(*program).ok());
  // p pinned, meet (read by nobody) evicted.
  EXPECT_EQ(db.relation(catalog.predicates.Lookup("p"))->first_resident(),
            0u);
  EXPECT_GT(engine.stats().evicted_rows, 0u);
  EXPECT_GT(
      db.relation(catalog.predicates.Lookup("meet"))->first_resident(), 0u);
}

TEST(StreamingChaseTest, PatternMemoCollapsesIsomorphicNullFirings) {
  auto g = TestGraph(250, 2, 7);
  // Warded existential cascade: one null officer per company, propagated
  // down ownership; the audit rule's frontier is the bare null, so every
  // firing after the first is isomorphic to it.
  const std::string rules = R"(
    company(X) -> officer(X, N).
    officer(X, N), own(X, Y, W) -> officer(Y, N).
    officer(X, N) -> audit(N, M).
    officer(X, N) -> overseen(X).
    @output("overseen").
  )";
  ChaseOutcome full = ChaseGraph(g, rules, "overseen", false, 1);
  ChaseOutcome str = ChaseGraph(g, rules, "overseen", true, 1);
  ASSERT_FALSE(full.answers.empty());
  // The ground answer set is untouched by memoization...
  EXPECT_EQ(str.answers, full.answers);
  // ...while isomorphic audit firings collapse to the first one.
  EXPECT_GT(str.stats.memo_queries, 0u);
  EXPECT_EQ(str.stats.memo_hits + 1, str.stats.memo_queries);
  EXPECT_LT(str.total_facts, full.total_facts);
  // The full chase consults no memo.
  EXPECT_EQ(full.stats.memo_queries, 0u);
}

TEST(StreamingChaseTest, ProvenanceTracingDisablesEviction) {
  Catalog catalog;
  Database db(&catalog);
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(db.InsertByName("e", {Value::Int(i), Value::Int(i + 1)})
                    .ok());
  }
  auto program = ParseProgram(R"(
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )",
                              &catalog);
  ASSERT_TRUE(program.ok());
  EngineOptions opts;
  opts.streaming = true;
  opts.trace_provenance = true;  // an Explain tree needs its premise rows
  Engine engine(&db, opts);
  ASSERT_TRUE(engine.Run(*program).ok());
  EXPECT_EQ(engine.stats().evicted_rows, 0u);
  EXPECT_FALSE(db.HasEvicted());
  std::string why = engine.Explain(catalog.predicates.Lookup("tc"),
                                   {Value::Int(0), Value::Int(2)});
  EXPECT_NE(why.find("tc"), std::string::npos);
}

TEST(StreamingChaseTest, QueryGoalStaysResidentUnderStreaming) {
  auto g = TestGraph(300, 2, 11);
  const std::string rules = core::ControlProgram(0.3);

  auto run_query = [&](bool streaming) {
    Catalog catalog;
    Database db(&catalog);
    core::MappingOptions map_opts;
    map_opts.generic_encoding = false;
    EXPECT_TRUE(core::LoadGraphFacts(g, &db, map_opts).ok());
    auto program = ParseProgram(rules, &catalog);
    EXPECT_TRUE(program.ok());
    auto goal = ParseQueryGoal("control(X, Y)", &catalog);
    EXPECT_TRUE(goal.ok());
    EngineOptions opts;
    opts.streaming = streaming;
    Engine engine(&db, opts);
    auto rep = engine.Query(*program, *goal);
    EXPECT_TRUE(rep.ok()) << rep.status().ToString();
    std::vector<std::string> out;
    for (const auto& t : rep->answers) {
      std::string line;
      for (const Value& v : t) line += "|" + v.ToString(catalog.symbols);
      out.push_back(std::move(line));
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  // The goal predicate is pinned resident, so Query under streaming
  // returns the complete answer set even though other predicates evict.
  auto full_answers = run_query(false);
  auto streaming_answers = run_query(true);
  ASSERT_FALSE(full_answers.empty());
  EXPECT_EQ(streaming_answers, full_answers);
}

TEST(StreamingChaseTest, MemoryMetricsPublished) {
  Catalog catalog;
  Database db(&catalog);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(db.InsertByName("e", {Value::Int(i), Value::Int(i + 1)})
                    .ok());
  }
  auto program = ParseProgram(R"(
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )",
                              &catalog);
  ASSERT_TRUE(program.ok());
  MetricsRegistry metrics;
  EngineOptions opts;
  opts.streaming = true;
  opts.metrics = &metrics;
  Engine engine(&db, opts);
  ASSERT_TRUE(engine.Run(*program).ok());
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(metrics.GaugeValue("engine.memory.peak_resident_facts"),
            static_cast<double>(stats.peak_resident_facts));
  EXPECT_EQ(metrics.CounterValue("engine.memory.evicted_rows"),
            stats.evicted_rows);
  EXPECT_GT(stats.evicted_rows, 0u);
}

}  // namespace
}  // namespace vadalink::datalog
