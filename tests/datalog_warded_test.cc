// datalog/: wardedness analysis — the syntactic guarantee behind the
// paper's PTIME claim for Vadalog reasoning.
#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/warded.h"

namespace vadalink::datalog {
namespace {

class WardedTest : public ::testing::Test {
 protected:
  Catalog catalog;

  WardednessReport Analyze(const std::string& src) {
    auto program = ParseProgram(src, &catalog);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    program_ = std::move(program).value();
    return AnalyzeWardedness(program_, catalog);
  }

  Program program_;
};

TEST_F(WardedTest, PlainDatalogIsWarded) {
  auto report = Analyze(R"(
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )");
  EXPECT_TRUE(report.warded);
  EXPECT_TRUE(report.affected_positions.empty());
  for (const auto& rr : report.rules) {
    EXPECT_EQ(rr.safety, RuleSafety::kDatalog);
  }
}

TEST_F(WardedTest, ExistentialMarksAffectedPositions) {
  auto report = Analyze(R"(
    p(X) -> q(X, N).
  )");
  EXPECT_TRUE(report.warded);
  // q[1] holds the invented null.
  ASSERT_EQ(report.affected_positions.size(), 1u);
  EXPECT_EQ(catalog.predicates.Name(report.affected_positions[0].first),
            "q");
  EXPECT_EQ(report.affected_positions[0].second, 1u);
}

TEST_F(WardedTest, AffectedPositionsPropagate) {
  auto report = Analyze(R"(
    p(X) -> q(X, N).
    q(X, N) -> r(N).
  )");
  EXPECT_TRUE(report.warded);
  // r[0] receives N, which occurs only at the affected q[1].
  bool r0 = false;
  for (const auto& [pred, pos] : report.affected_positions) {
    if (catalog.predicates.Name(pred) == "r" && pos == 0) r0 = true;
  }
  EXPECT_TRUE(r0);
  // The second rule has dangerous variable N but a single-atom body wards it.
  EXPECT_EQ(report.rules[1].safety, RuleSafety::kWarded);
  ASSERT_EQ(report.rules[1].dangerous_vars.size(), 1u);
  EXPECT_EQ(report.rules[1].dangerous_vars[0], "N");
}

TEST_F(WardedTest, NonAffectedOccurrenceMakesHarmless) {
  // N also occurs at the non-affected base[0], so it can never bind a null
  // in a derivation that matches both atoms: harmless, hence datalog rule.
  auto report = Analyze(R"(
    p(X) -> q(X, N).
    q(X, N), base(N) -> r(N).
  )");
  EXPECT_TRUE(report.warded);
  EXPECT_EQ(report.rules[1].safety, RuleSafety::kDatalog);
}

TEST_F(WardedTest, DangerousVariablesSplitAcrossAtomsNotWarded) {
  // Two dangerous variables coming from different body atoms with no
  // common ward.
  auto report = Analyze(R"(
    p(X) -> q(X, N).
    p(X) -> s(X, M).
    q(X, N), s(X, M) -> t(N, M).
  )");
  EXPECT_FALSE(report.warded);
  EXPECT_EQ(report.rules[2].safety, RuleSafety::kNotWarded);
  EXPECT_EQ(report.rules[2].dangerous_vars.size(), 2u);
}

TEST_F(WardedTest, WardSharingHarmfulVariableNotWarded) {
  // N is dangerous and the ward q(X, N) shares the harmful variable N
  // with the second atom r(N, Y): joining on nulls — not warded.
  auto report = Analyze(R"(
    p(X) -> q(X, N).
    q(X, N) -> r(N, X).
    q(X, N), r(N, Y) -> t(N, Y).
  )");
  EXPECT_FALSE(report.warded);
  EXPECT_EQ(report.rules[2].safety, RuleSafety::kNotWarded);
}

TEST_F(WardedTest, PaperControlProgramIsWarded) {
  auto report = Analyze(R"(
    company(X) -> ctrl(X, X).
    person(X) -> ctrl(X, X).
    ctrl(X, Z), own(Z, Y, W), S = msum(W, <Z>), S > 0.5 -> ctrl(X, Y).
    ctrl(X, Y), X != Y -> control(X, Y).
  )");
  EXPECT_TRUE(report.warded);
}

TEST_F(WardedTest, PaperInputMappingIsWarded) {
  auto report = Analyze(R"(
    company(X), Z = #sk("c", X) -> gnode(Z), gnodetype(Z, "Company").
    own(X, Y, W), company(X) -> glink(L, X, Y, W).
    glink(L, X, Y, W) -> gedge(L).
  )");
  EXPECT_TRUE(report.warded);
}

TEST_F(WardedTest, ReportRendering) {
  auto report = Analyze(R"(
    p(X) -> q(X, N).
    q(X, N) -> r(N).
  )");
  std::string s = report.ToString(catalog, program_);
  EXPECT_NE(s.find("WARDED"), std::string::npos);
  EXPECT_NE(s.find("q[1]"), std::string::npos);
  EXPECT_NE(s.find("dangerous: N"), std::string::npos);
}

TEST_F(WardedTest, AffectedPositionsCarryWitnessProvenance) {
  auto report = Analyze(R"(
    p(X) -> q(X, N).
    q(X, N) -> r(N, X).
  )");
  ASSERT_EQ(report.affected_details.size(),
            report.affected_positions.size());
  bool saw_base = false, saw_propagated = false;
  for (const AffectedPosition& ap : report.affected_details) {
    std::string pred = catalog.predicates.Name(ap.predicate);
    if (pred == "q" && ap.position == 1) {
      // Base case: rule 0's existential N.
      EXPECT_EQ(ap.witness_rule, 0u);
      EXPECT_TRUE(ap.existential);
      saw_base = true;
    }
    if (pred == "r" && ap.position == 0) {
      // Propagation: rule 1 copies a possibly-null N into r[0].
      EXPECT_EQ(ap.witness_rule, 1u);
      EXPECT_FALSE(ap.existential);
      saw_propagated = true;
    }
  }
  EXPECT_TRUE(saw_base);
  EXPECT_TRUE(saw_propagated);
}

TEST_F(WardedTest, BodyVariablesAreClassified) {
  auto report = Analyze(R"(
    p(X) -> q(X, N).
    q(X, N) -> r(N).
  )");
  // Rule 1: X sits at q[0] (non-affected) = harmless; N at q[1]
  // (affected) and in the head = dangerous.
  ASSERT_EQ(report.rules.size(), 2u);
  const RuleReport& rr = report.rules[1];
  ASSERT_EQ(rr.body_vars.size(), 2u);
  bool saw_x = false, saw_n = false;
  for (const VarReport& vr : rr.body_vars) {
    if (vr.name == "X") {
      EXPECT_EQ(vr.cls, VarClass::kHarmless);
      saw_x = true;
    }
    if (vr.name == "N") {
      EXPECT_EQ(vr.cls, VarClass::kDangerous);
      saw_n = true;
    }
  }
  EXPECT_TRUE(saw_x);
  EXPECT_TRUE(saw_n);
}

TEST_F(WardedTest, NoSharedWardViolationNamesTheAtom) {
  auto report = Analyze(R"(
    a(X) -> q(X, N).
    a(X) -> s(X, M).
    q(X, N), s(Y, M) -> t(N, M).
  )");
  EXPECT_FALSE(report.warded);
  const RuleReport& rr = report.rules[2];
  ASSERT_EQ(rr.safety, RuleSafety::kNotWarded);
  EXPECT_EQ(rr.violation_kind, WardViolation::kNoSharedWard);
  // M's only atom, s(Y, M), is the one breaking the shared-ward
  // condition; it is body literal 1 of the rule.
  EXPECT_EQ(rr.violating_literal, 1u);
  EXPECT_EQ(rr.violating_var, "M");
  EXPECT_TRUE(rr.violating_span.known());
  // The rendering names the atom.
  std::string s = report.ToString(catalog, program_);
  EXPECT_NE(s.find("(at s(Y, M))"), std::string::npos);
}

TEST_F(WardedTest, WardSharingHarmfulViolationNamesTheAtom) {
  auto report = Analyze(R"(
    a(X) -> q(X, N).
    a(Y) -> s(Y, N).
    q(X, N), s(Y, N) -> t(X, N).
  )");
  EXPECT_FALSE(report.warded);
  const RuleReport& rr = report.rules[2];
  ASSERT_EQ(rr.safety, RuleSafety::kNotWarded);
  EXPECT_EQ(rr.violation_kind, WardViolation::kWardSharesHarmful);
  EXPECT_EQ(rr.violating_var, "N");
  EXPECT_NE(rr.violating_literal, UINT32_MAX);
  EXPECT_TRUE(rr.violating_span.known());
}

}  // namespace
}  // namespace vadalink::datalog
