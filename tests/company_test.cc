// company/: control, accumulated ownership, close links, family reasoning,
// eligibility — validated against the paper's Figure 1 / Figure 2 examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "company/close_link.h"
#include "company/company_graph.h"
#include "company/control.h"
#include "company/eligibility.h"
#include "company/family.h"
#include "company/ownership.h"
#include "tests/paper_fixtures.h"

namespace vadalink::company {
namespace {

using ::vadalink::testing::CompanyGraphBuilder;
using ::vadalink::testing::Figure1;
using ::vadalink::testing::Figure2;

CompanyGraph Build(CompanyGraphBuilder& b) {
  auto cg = CompanyGraph::FromPropertyGraph(b.graph());
  EXPECT_TRUE(cg.ok()) << cg.status().ToString();
  return std::move(cg).value();
}

// ---- CompanyGraph ------------------------------------------------------------

TEST(CompanyGraphTest, BuildsFromPropertyGraph) {
  auto b = Figure1();
  auto cg = Build(b);
  EXPECT_EQ(cg.persons().size(), 2u);
  EXPECT_EQ(cg.companies().size(), 8u);
  EXPECT_EQ(cg.edge_count(), 12u);
  EXPECT_DOUBLE_EQ(cg.DirectShare(b.id("P1"), b.id("C")), 0.8);
  EXPECT_DOUBLE_EQ(cg.DirectShare(b.id("C"), b.id("P1")), 0.0);
}

TEST(CompanyGraphTest, RejectsMissingWeight) {
  graph::PropertyGraph g;
  auto a = g.AddNode("Company");
  auto b = g.AddNode("Company");
  g.AddEdge(a, b, "Shareholding").value();  // no weight property
  EXPECT_FALSE(CompanyGraph::FromPropertyGraph(g).ok());
}

TEST(CompanyGraphTest, RejectsOutOfRangeWeight) {
  graph::PropertyGraph g;
  auto a = g.AddNode("Company");
  auto b = g.AddNode("Company");
  auto e = g.AddEdge(a, b, "Shareholding").value();
  g.SetEdgeProperty(e, "w", 1.5);
  EXPECT_FALSE(CompanyGraph::FromPropertyGraph(g).ok());
}

TEST(CompanyGraphTest, RejectsShareholdingOfPerson) {
  graph::PropertyGraph g;
  auto a = g.AddNode("Company");
  auto p = g.AddNode("Person");
  auto e = g.AddEdge(a, p, "Shareholding").value();
  g.SetEdgeProperty(e, "w", 0.5);
  EXPECT_FALSE(CompanyGraph::FromPropertyGraph(g).ok());
}

TEST(CompanyGraphTest, IgnoresOtherEdgeLabels) {
  graph::PropertyGraph g;
  auto a = g.AddNode("Person");
  auto b = g.AddNode("Person");
  g.AddEdge(a, b, "PartnerOf").value();
  auto cg = CompanyGraph::FromPropertyGraph(g);
  ASSERT_TRUE(cg.ok());
  EXPECT_EQ(cg->edge_count(), 0u);
}

// ---- control (Definition 2.3, Figure 1) ---------------------------------------

TEST(ControlTest, Figure1Paper) {
  auto b = Figure1();
  auto cg = Build(b);

  auto p1 = ControlledBy(cg, b.id("P1"));
  std::set<graph::NodeId> p1set(p1.begin(), p1.end());
  EXPECT_EQ(p1set, (std::set<graph::NodeId>{b.id("C"), b.id("D"), b.id("E"),
                                            b.id("F")}));

  auto p2 = ControlledBy(cg, b.id("P2"));
  std::set<graph::NodeId> p2set(p2.begin(), p2.end());
  EXPECT_EQ(p2set, (std::set<graph::NodeId>{b.id("G"), b.id("H"), b.id("I")}));

  // Neither person alone controls L...
  EXPECT_FALSE(p1set.count(b.id("L")));
  EXPECT_FALSE(p2set.count(b.id("L")));
  // ...but the family {P1, P2} does (0.2 via F + 0.4 via I).
  auto family = ControlledByGroup(cg, {b.id("P1"), b.id("P2")});
  std::set<graph::NodeId> fset(family.begin(), family.end());
  EXPECT_TRUE(fset.count(b.id("L")));
}

TEST(ControlTest, Figure2Paper) {
  auto b = Figure2();
  auto cg = Build(b);
  auto p2 = ControlledBy(cg, b.id("P2"));
  std::set<graph::NodeId> p2set(p2.begin(), p2.end());
  // P2 controls C5, C6 directly and C7 jointly through them (0.3 + 0.3).
  EXPECT_EQ(p2set, (std::set<graph::NodeId>{b.id("C5"), b.id("C6"),
                                            b.id("C7")}));
}

TEST(ControlTest, ExactlyHalfIsNotControl) {
  CompanyGraphBuilder b;
  b.Company("A");
  b.Company("B");
  b.Own("A", "B", 0.5);
  auto cg = Build(b);
  EXPECT_TRUE(ControlledBy(cg, b.id("A")).empty());
}

TEST(ControlTest, JointControlNeedsControlledIntermediaries) {
  // A owns 40% of C directly and 30% via an UNcontrolled company B: B's
  // share must not count.
  CompanyGraphBuilder b;
  b.Company("A");
  b.Company("B");
  b.Company("C");
  b.Own("A", "B", 0.4);  // not a majority: B not controlled
  b.Own("A", "C", 0.4);
  b.Own("B", "C", 0.3);
  auto cg = Build(b);
  EXPECT_TRUE(ControlledBy(cg, b.id("A")).empty());
}

TEST(ControlTest, ControlThroughCycle) {
  // A -0.6-> B -0.6-> C -0.6-> B (cycle between B and C).
  CompanyGraphBuilder b;
  b.Company("A");
  b.Company("B");
  b.Company("C");
  b.Own("A", "B", 0.6);
  b.Own("B", "C", 0.6);
  b.Own("C", "B", 0.3);
  auto cg = Build(b);
  auto controlled = ControlledBy(cg, b.id("A"));
  std::set<graph::NodeId> s(controlled.begin(), controlled.end());
  EXPECT_EQ(s, (std::set<graph::NodeId>{b.id("B"), b.id("C")}));
}

TEST(ControlTest, SelfLoopDoesNotSelfControl) {
  CompanyGraphBuilder b;
  b.Company("A");
  b.Own("A", "A", 0.9);
  auto cg = Build(b);
  EXPECT_TRUE(ControlledBy(cg, b.id("A")).empty());
}

TEST(ControlTest, AllControlEdgesCoversEveryController) {
  auto b = Figure1();
  auto cg = Build(b);
  auto edges = AllControlEdges(cg);
  // P1: 4, P2: 3, D: none (0.4+0.25 each below threshold)... plus company
  // controllers: G controls H (0.6), H alone has 0.4 of I; G controls I?
  // G's closure: H (0.6), then H's 0.4 of I: not majority. So G -> H only.
  std::set<std::pair<graph::NodeId, graph::NodeId>> s;
  for (auto& e : edges) s.insert({e.controller, e.controlled});
  EXPECT_TRUE(s.count({b.id("P1"), b.id("F")}));
  EXPECT_TRUE(s.count({b.id("G"), b.id("H")}));
  EXPECT_FALSE(s.count({b.id("G"), b.id("I")}));
  EXPECT_EQ(edges.size(), 4u + 3u + 1u);
}

// ---- accumulated ownership (Definition 2.5) ------------------------------------

TEST(OwnershipTest, SinglePath) {
  CompanyGraphBuilder b;
  b.Company("A");
  b.Company("B");
  b.Company("C");
  b.Own("A", "B", 0.5);
  b.Own("B", "C", 0.4);
  auto cg = Build(b);
  auto acc = AccumulatedOwnershipSimplePaths(cg, b.id("A"));
  EXPECT_DOUBLE_EQ(acc[b.id("B")], 0.5);
  EXPECT_DOUBLE_EQ(acc[b.id("C")], 0.2);
}

TEST(OwnershipTest, ParallelPathsSum) {
  // A -> B -> D and A -> C -> D.
  CompanyGraphBuilder b;
  for (const char* c : {"A", "B", "C", "D"}) b.Company(c);
  b.Own("A", "B", 0.5);
  b.Own("A", "C", 0.5);
  b.Own("B", "D", 0.4);
  b.Own("C", "D", 0.2);
  auto cg = Build(b);
  auto acc = AccumulatedOwnershipSimplePaths(cg, b.id("A"));
  EXPECT_NEAR(acc[b.id("D")], 0.5 * 0.4 + 0.5 * 0.2, 1e-12);
}

TEST(OwnershipTest, Figure2AccumulatedOwnership) {
  auto b = Figure2();
  auto cg = Build(b);
  // The paper: Phi(C4, C7) = 0.2 (direct edge only).
  EXPECT_NEAR(AccumulatedOwnership(cg, b.id("C4"), b.id("C7")), 0.2, 1e-12);
  // Phi(P2, C7) = 0.6*0.3 + 0.55*0.3 = 0.345.
  EXPECT_NEAR(AccumulatedOwnership(cg, b.id("P2"), b.id("C7")), 0.345,
              1e-12);
}

TEST(OwnershipTest, SimplePathsExcludeCycles) {
  // A -> B <-> C: simple paths A->B and A->B->C only.
  CompanyGraphBuilder b;
  for (const char* c : {"A", "B", "C"}) b.Company(c);
  b.Own("A", "B", 0.5);
  b.Own("B", "C", 0.5);
  b.Own("C", "B", 0.5);
  auto cg = Build(b);
  auto acc = AccumulatedOwnershipSimplePaths(cg, b.id("A"));
  EXPECT_DOUBLE_EQ(acc[b.id("B")], 0.5);
  EXPECT_DOUBLE_EQ(acc[b.id("C")], 0.25);
}

TEST(OwnershipTest, WalkSumIncludesCycles) {
  // Same cyclic graph: the walk sum counts B->C->B round trips:
  // Phi(A,B) = 0.5 * (1 + 0.25 + 0.25^2 + ...) = 0.5 / 0.75 = 2/3.
  CompanyGraphBuilder b;
  for (const char* c : {"A", "B", "C"}) b.Company(c);
  b.Own("A", "B", 0.5);
  b.Own("B", "C", 0.5);
  b.Own("C", "B", 0.5);
  auto cg = Build(b);
  OwnershipConfig cfg;
  cfg.max_depth = 200;
  cfg.epsilon = 1e-15;
  auto acc = AccumulatedOwnershipWalkSum(cg, b.id("A"), cfg);
  EXPECT_NEAR(acc[b.id("B")], 0.5 / 0.75, 1e-9);
}

TEST(OwnershipTest, WalkSumReportsConvergenceOnDecayingCycle) {
  CompanyGraphBuilder b;
  for (const char* c : {"A", "B", "C"}) b.Company(c);
  b.Own("A", "B", 0.5);
  b.Own("B", "C", 0.5);
  b.Own("C", "B", 0.5);
  auto cg = Build(b);
  OwnershipConfig cfg;
  cfg.max_depth = 200;
  cfg.epsilon = 1e-15;
  OwnershipStats stats;
  (void)AccumulatedOwnershipWalkSum(cg, b.id("A"), cfg, &stats);
  EXPECT_TRUE(stats.converged);
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.depth_reached, 0u);
  EXPECT_LT(stats.depth_reached, cfg.max_depth);
}

TEST(OwnershipTest, WalkSumCapsMassAtWholeOwnership) {
  // Two disjoint full-ownership chains into D: the naive geometric sum
  // reports Phi(A, D) = 2.0; no entity can own more than the whole.
  CompanyGraphBuilder b;
  for (const char* c : {"A", "B", "C", "D"}) b.Company(c);
  b.Own("A", "B", 1.0);
  b.Own("A", "C", 1.0);
  b.Own("B", "D", 1.0);
  b.Own("C", "D", 1.0);
  auto cg = Build(b);
  auto acc = AccumulatedOwnershipWalkSum(cg, b.id("A"), {});
  EXPECT_DOUBLE_EQ(acc[b.id("D")], 1.0);
  EXPECT_DOUBLE_EQ(acc[b.id("B")], 1.0);
}

TEST(OwnershipTest, WalkSumFlagsNonDecayingCycle) {
  // B <-> C with weight-1.0 edges: walk mass never decays, the geometric
  // sum diverges. The guard must cap the shares at 1.0, stop at max_depth
  // and report non-convergence instead of silently returning.
  CompanyGraphBuilder b;
  for (const char* c : {"A", "B", "C"}) b.Company(c);
  b.Own("A", "B", 1.0);
  b.Own("B", "C", 1.0);
  b.Own("C", "B", 1.0);
  auto cg = Build(b);
  OwnershipConfig cfg;
  cfg.max_depth = 16;
  OwnershipStats stats;
  MetricsRegistry metrics;
  auto acc =
      AccumulatedOwnershipWalkSum(cg, b.id("A"), cfg, &stats, nullptr,
                                  &metrics);
  EXPECT_FALSE(stats.converged);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.depth_reached, cfg.max_depth);
  EXPECT_DOUBLE_EQ(acc[b.id("B")], 1.0);
  EXPECT_DOUBLE_EQ(acc[b.id("C")], 1.0);
  EXPECT_EQ(metrics.CounterValue("company.ownership.walksum.nonconvergent"),
            1u);
  EXPECT_EQ(metrics.CounterValue("company.ownership.walksum_levels"),
            cfg.max_depth);
}

TEST(OwnershipTest, WalkSumEqualsSimplePathsOnDag) {
  auto b = Figure1();
  auto cg = Build(b);
  auto exact = AccumulatedOwnershipSimplePaths(cg, b.id("P1"));
  OwnershipConfig cfg;
  cfg.max_depth = 64;
  auto walks = AccumulatedOwnershipWalkSum(cg, b.id("P1"), cfg);
  ASSERT_EQ(exact.size(), walks.size());
  for (const auto& [node, value] : exact) {
    EXPECT_NEAR(walks[node], value, 1e-12);
  }
}

TEST(OwnershipTest, EpsilonPrunesLongTails) {
  CompanyGraphBuilder b;
  b.Company("A");
  b.Company("B");
  b.Own("A", "B", 0.5);
  auto cg = Build(b);
  OwnershipConfig cfg;
  cfg.epsilon = 0.9;  // prune everything below 0.9
  auto acc = AccumulatedOwnershipSimplePaths(cg, b.id("A"), cfg);
  EXPECT_TRUE(acc.empty());
}

// ---- close links (Definition 2.6, Figure 2) -------------------------------------

TEST(CloseLinkTest, Figure2Paper) {
  auto b = Figure2();
  auto cg = Build(b);
  auto links = AllCloseLinks(cg);
  std::set<std::pair<graph::NodeId, graph::NodeId>> pairs;
  for (auto& e : links) pairs.insert({e.x, e.y});
  auto key = [&](const char* x, const char* y) {
    graph::NodeId ix = b.id(x), iy = b.id(y);
    return std::make_pair(std::min(ix, iy), std::max(ix, iy));
  };
  // Example 2.7 analogues: C4/C6 via P3; C4/C7 via direct Phi = 0.2.
  EXPECT_TRUE(pairs.count(key("C4", "C6")));
  EXPECT_TRUE(pairs.count(key("C4", "C7")));
}

TEST(CloseLinkTest, ReasonAttribution) {
  auto b = Figure2();
  auto cg = Build(b);
  auto links = AllCloseLinks(cg);
  bool c4c7_direct = false, c4c6_third = false;
  for (auto& e : links) {
    graph::NodeId c4 = b.id("C4"), c6 = b.id("C6"), c7 = b.id("C7");
    auto p = std::minmax(c4, c7);
    if (e.x == p.first && e.y == p.second) {
      c4c7_direct = e.reason == CloseLinkReason::kDirectOwnership;
    }
    auto q = std::minmax(c4, c6);
    if (e.x == q.first && e.y == q.second) {
      c4c6_third = e.reason == CloseLinkReason::kCommonThirdParty &&
                   e.via == b.id("P3");
    }
  }
  EXPECT_TRUE(c4c7_direct);
  EXPECT_TRUE(c4c6_third);
}

TEST(CloseLinkTest, BelowThresholdNoLink) {
  CompanyGraphBuilder b;
  b.Company("A");
  b.Company("B");
  b.Own("A", "B", 0.19);
  auto cg = Build(b);
  EXPECT_FALSE(AreCloselyLinked(cg, b.id("A"), b.id("B")));
  EXPECT_TRUE(AllCloseLinks(cg).empty());
}

TEST(CloseLinkTest, SymmetricQueries) {
  auto b = Figure2();
  auto cg = Build(b);
  EXPECT_TRUE(AreCloselyLinked(cg, b.id("C4"), b.id("C7")));
  EXPECT_TRUE(AreCloselyLinked(cg, b.id("C7"), b.id("C4")));
}

TEST(CloseLinkTest, PersonsAreNotCloseLinkEndpoints) {
  auto b = Figure2();
  auto cg = Build(b);
  for (auto& e : AllCloseLinks(cg)) {
    EXPECT_TRUE(cg.is_company(e.x));
    EXPECT_TRUE(cg.is_company(e.y));
  }
}

TEST(CloseLinkTest, ThresholdKnob) {
  auto b = Figure2();
  auto cg = Build(b);
  CloseLinkConfig strict;
  strict.threshold = 0.5;
  auto links = AllCloseLinks(cg, strict);
  // At 50%: P1 owns 0.6 of C4, P2 owns 0.6/0.55 of C5/C6 -> C5-C6 via P2.
  std::set<std::pair<graph::NodeId, graph::NodeId>> pairs;
  for (auto& e : links) pairs.insert({e.x, e.y});
  graph::NodeId c4 = b.id("C4"), c5 = b.id("C5"), c6 = b.id("C6"),
                c7 = b.id("C7");
  auto p = std::minmax(c5, c6);
  EXPECT_TRUE(pairs.count({p.first, p.second}));
  auto q = std::minmax(c4, c7);
  EXPECT_FALSE(pairs.count({q.first, q.second}));
}

TEST(CloseLinkTest, MultiRootSweepAccountsEveryTruncatedRoot) {
  // B <-> C never decays, so every root whose walks reach the cycle runs
  // out of depth. A sweep that silently dropped those partial sums would
  // under-report close links; instead each truncated per-root enumeration
  // must land in company.ownership.path_truncations — one per root.
  CompanyGraphBuilder b;
  for (const char* c : {"A", "B", "C", "D"}) b.Company(c);
  b.Own("A", "B", 1.0);
  b.Own("B", "C", 1.0);
  b.Own("C", "B", 1.0);
  b.Own("D", "C", 1.0);
  auto cg = Build(b);
  MetricsRegistry metrics;
  CloseLinkConfig cfg;
  cfg.exact_paths = false;  // walk-sum fixpoint with its depth governor
  cfg.ownership.max_depth = 4;
  cfg.metrics = &metrics;
  auto links = AllCloseLinks(cg, cfg);
  EXPECT_FALSE(links.empty());
  // All four sources hold shares and every walk set reaches the
  // non-decaying cycle: four truncated roots, four counts.
  EXPECT_EQ(metrics.CounterValue("company.ownership.path_truncations"), 4u);
  // Without a metrics sink the same sweep is silent but must not crash.
  cfg.metrics = nullptr;
  auto links_again = AllCloseLinks(cg, cfg);
  EXPECT_EQ(links_again.size(), links.size());
  EXPECT_EQ(metrics.CounterValue("company.ownership.path_truncations"), 4u);
}

// CloseLinksOf(c) must be byte-identical to AllCloseLinks filtered to
// pairs involving c — same keys, reasons, via nodes and precedence — for
// every node and both Phi modes. The serve layer's cold `closelinks` path
// depends on this equivalence.
TEST(CloseLinkTest, CloseLinksOfEqualsFilteredAllCloseLinks) {
  auto b = Figure2();
  auto cg = Build(b);
  auto eq = [](const CloseLinkEdge& a, const CloseLinkEdge& e) {
    return a.x == e.x && a.y == e.y && a.reason == e.reason && a.via == e.via;
  };
  for (bool exact : {true, false}) {
    CloseLinkConfig cfg;
    cfg.exact_paths = exact;
    cfg.ownership.max_depth = 16;
    auto all = AllCloseLinks(cg, cfg);
    for (graph::NodeId c = 0; c < cg.node_count(); ++c) {
      std::vector<CloseLinkEdge> expected;
      for (const auto& e : all) {
        if (e.x == c || e.y == c) expected.push_back(e);
      }
      auto got = CloseLinksOf(cg, c, cfg);
      ASSERT_EQ(got.size(), expected.size())
          << "node " << c << " exact=" << exact;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(eq(got[i], expected[i]))
            << "node " << c << " edge " << i << " exact=" << exact;
      }
    }
  }
}

// ---- family reasoning (Definitions 2.8 / 2.9) -----------------------------------

graph::PropertyGraph FamilyPersons() {
  graph::PropertyGraph g;
  auto mk = [&](const char* first, const char* last, int64_t birth,
                const char* sex, const char* city) {
    auto n = g.AddNode("Person");
    g.SetNodeProperty(n, "first_name", first);
    g.SetNodeProperty(n, "last_name", last);
    g.SetNodeProperty(n, "birth_year", birth);
    g.SetNodeProperty(n, "birth_city", city);
    g.SetNodeProperty(n, "sex", sex);
    g.SetNodeProperty(n, "city", city);
    return n;
  };
  mk("Mario", "Rossi", 1960, "M", "Roma");     // 0
  mk("Anna", "Rossi", 1962, "F", "Roma");      // 1 partner of 0
  mk("Luca", "Rossi", 1988, "M", "Roma");      // 2 child
  mk("Paolo", "Bianchi", 1970, "M", "Milano"); // 3 unrelated
  return g;
}

TEST(FamilyTest, DetectsPlantedFamily) {
  auto g = FamilyPersons();
  linkage::BayesLinkClassifier clf(DefaultPersonSchema());
  auto links = DetectPersonLinks(g, {0, 1, 2, 3}, clf, nullptr);
  std::set<std::pair<graph::NodeId, graph::NodeId>> pairs;
  for (auto& l : links) pairs.insert(std::minmax(l.x, l.y));
  EXPECT_TRUE(pairs.count({0, 1}));
  EXPECT_TRUE(pairs.count({0, 2}));
  EXPECT_TRUE(pairs.count({1, 2}));
  EXPECT_FALSE(pairs.count({0, 3}));
  EXPECT_FALSE(pairs.count({1, 3}));
  EXPECT_FALSE(pairs.count({2, 3}));
}

TEST(FamilyTest, KindHeuristics) {
  auto g = FamilyPersons();
  FamilyDetectorConfig cfg;
  EXPECT_EQ(ClassifyLinkKind(g, 0, 1, cfg), "PartnerOf");  // M/F, 2y apart
  EXPECT_EQ(ClassifyLinkKind(g, 0, 2, cfg), "ParentOf");   // 28y apart
  // Same sex, close birth -> sibling.
  auto g2 = FamilyPersons();
  g2.SetNodeProperty(1, "sex", "M");
  EXPECT_EQ(ClassifyLinkKind(g2, 0, 1, cfg), "SiblingOf");
}

TEST(FamilyTest, BlockingPreservesDetection) {
  auto g = FamilyPersons();
  linkage::BayesLinkClassifier clf(DefaultPersonSchema());
  linkage::Blocker blocker(DefaultPersonBlocking());
  auto blocked = DetectPersonLinks(g, {0, 1, 2, 3}, clf, &blocker);
  auto full = DetectPersonLinks(g, {0, 1, 2, 3}, clf, nullptr);
  EXPECT_EQ(blocked.size(), full.size());
}

TEST(FamilyTest, FamilyGroupsFromLinks) {
  std::vector<PersonLink> links{{0, 1, "PartnerOf", 0.9},
                                {1, 2, "ParentOf", 0.8},
                                {4, 5, "SiblingOf", 0.7}};
  auto groups = FamilyGroups(links, 6);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<graph::NodeId>{0, 1, 2}));
  EXPECT_EQ(groups[1], (std::vector<graph::NodeId>{4, 5}));
}

TEST(FamilyTest, Figure1FamilyControlsL) {
  auto b = Figure1();
  auto cg = Build(b);
  auto controlled =
      FamilyControlledCompanies(cg, {b.id("P1"), b.id("P2")});
  std::set<graph::NodeId> s(controlled.begin(), controlled.end());
  EXPECT_TRUE(s.count(b.id("L")));
  // Everything individually controlled is also family-controlled.
  for (const char* c : {"C", "D", "E", "F", "G", "H", "I"}) {
    EXPECT_TRUE(s.count(b.id(c))) << c;
  }
}

TEST(FamilyTest, FamilyCloseLinks) {
  // Paper's D/G argument: P1 and P2 are personally connected; P1 has
  // significant accumulated ownership of D, P2 of G, so D and G should be
  // flagged even though no single third party owns both.
  auto b = Figure1();
  auto cg = Build(b);
  auto pairs = FamilyCloseLinks(cg, {b.id("P1"), b.id("P2")});
  graph::NodeId d = b.id("D"), gg = b.id("G");
  auto key = std::minmax(d, gg);
  EXPECT_TRUE(std::find(pairs.begin(), pairs.end(),
                        std::make_pair(key.first, key.second)) !=
              pairs.end());
}

// ---- eligibility -----------------------------------------------------------------

TEST(EligibilityTest, CloseLinkBlocksGuarantee) {
  auto b = Figure2();
  auto cg = Build(b);
  EligibilityConfig cfg;
  auto decision = ScreenGuarantor(cg, b.id("C4"), b.id("C7"), cfg);
  EXPECT_EQ(decision.verdict, EligibilityVerdict::kIneligibleCloseLink);
}

TEST(EligibilityTest, UnrelatedCompaniesEligible) {
  CompanyGraphBuilder b;
  b.Company("A");
  b.Company("B");
  b.Company("X");
  b.Own("X", "A", 0.1);
  auto cg = Build(b);
  EligibilityConfig cfg;
  auto decision = ScreenGuarantor(cg, b.id("A"), b.id("B"), cfg);
  EXPECT_EQ(decision.verdict, EligibilityVerdict::kEligible);
}

TEST(EligibilityTest, FamilyTieFlagged) {
  auto b = Figure1();
  auto cg = Build(b);
  EligibilityConfig cfg;
  cfg.families = {{b.id("P1"), b.id("P2")}};
  auto decision = ScreenGuarantor(cg, b.id("D"), b.id("G"), cfg);
  EXPECT_EQ(decision.verdict,
            EligibilityVerdict::kFlaggedFamilyCloseLink);
}


// ---- legal rights (voting vs cash flow) -----------------------------------------

TEST(RightsTest, BareOwnershipGivesNoControl) {
  graph::PropertyGraph g;
  auto p = g.AddNode("Person");
  auto c = g.AddNode("Company");
  auto e = g.AddEdge(p, c, "Shareholding").value();
  g.SetEdgeProperty(e, "w", 0.8);
  g.SetEdgeProperty(e, "right", "bare_ownership");
  auto cg = CompanyGraph::FromPropertyGraph(g).value();
  EXPECT_TRUE(ControlledBy(cg, p).empty());          // no votes
  EXPECT_DOUBLE_EQ(cg.DirectShare(p, c), 0.8);       // full cash flow
  EXPECT_DOUBLE_EQ(cg.DirectVotingShare(p, c), 0.0);
}

TEST(RightsTest, UsufructGivesControlButNoOwnership) {
  graph::PropertyGraph g;
  auto p = g.AddNode("Person");
  auto c = g.AddNode("Company");
  auto e = g.AddEdge(p, c, "Shareholding").value();
  g.SetEdgeProperty(e, "w", 0.8);
  g.SetEdgeProperty(e, "right", "usufruct");
  auto cg = CompanyGraph::FromPropertyGraph(g).value();
  auto controlled = ControlledBy(cg, p);
  ASSERT_EQ(controlled.size(), 1u);
  EXPECT_EQ(controlled[0], c);
  // Accumulated (cash-flow) ownership is zero: no close-link exposure.
  EXPECT_DOUBLE_EQ(AccumulatedOwnership(cg, p, c), 0.0);
}

TEST(RightsTest, SplitPairRecombines) {
  // The same 60% share split between a bare owner (cash) and an
  // usufructuary (votes): the usufructuary controls, the bare owner has
  // the accumulated ownership.
  graph::PropertyGraph g;
  auto bare = g.AddNode("Person");
  auto usu = g.AddNode("Person");
  auto c = g.AddNode("Company");
  auto e1 = g.AddEdge(bare, c, "Shareholding").value();
  g.SetEdgeProperty(e1, "w", 0.6);
  g.SetEdgeProperty(e1, "right", "bare_ownership");
  auto e2 = g.AddEdge(usu, c, "Shareholding").value();
  g.SetEdgeProperty(e2, "w", 0.6);
  g.SetEdgeProperty(e2, "right", "usufruct");
  auto cg = CompanyGraph::FromPropertyGraph(g).value();
  EXPECT_TRUE(ControlledBy(cg, bare).empty());
  EXPECT_EQ(ControlledBy(cg, usu).size(), 1u);
  EXPECT_DOUBLE_EQ(AccumulatedOwnership(cg, bare, c), 0.6);
  EXPECT_DOUBLE_EQ(AccumulatedOwnership(cg, usu, c), 0.0);
}

TEST(RightsTest, UnknownRightRejected) {
  graph::PropertyGraph g;
  auto a = g.AddNode("Company");
  auto b = g.AddNode("Company");
  auto e = g.AddEdge(a, b, "Shareholding").value();
  g.SetEdgeProperty(e, "w", 0.5);
  g.SetEdgeProperty(e, "right", "timeshare");
  EXPECT_FALSE(CompanyGraph::FromPropertyGraph(g).ok());
}

}  // namespace
}  // namespace vadalink::company
