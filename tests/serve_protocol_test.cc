// serve/: JSON codec, wire protocol, admission queue, result cache,
// snapshot store — the transport-independent pieces of `vadalink serve`.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "serve/admission.h"
#include "serve/cache.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"

namespace vadalink::serve {
namespace {

// ---- Json ------------------------------------------------------------------

TEST(JsonTest, ParseDumpRoundTrip) {
  auto v = Json::Parse(
      R"({"b":true,"d":0.5,"i":42,"n":null,"a":[1,"two",3.5],"s":"hi"})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  // Keys come back sorted; round-trip is byte-stable.
  std::string dumped = v->Dump();
  auto again = Json::Parse(dumped);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Dump(), dumped);
  EXPECT_EQ(v->Find("i")->AsInt(), 42);
  EXPECT_TRUE(v->Find("n")->is_null());
  EXPECT_EQ(v->Find("a")->AsArray().size(), 3u);
}

TEST(JsonTest, EscapesAndUnicode) {
  auto v = Json::Parse(R"(["a\"b", "tab\there", "Aé"])");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsArray()[0].AsString(), "a\"b");
  EXPECT_EQ(v->AsArray()[1].AsString(), "tab\there");
  EXPECT_EQ(v->AsArray()[2].AsString(), "A\xc3\xa9");
  // Control characters are escaped on output.
  EXPECT_EQ(Json::Str("a\nb").Dump(), "\"a\\nb\"");
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("").ok());
}

TEST(JsonTest, DepthLimitStopsRecursionBombs) {
  std::string bomb(10000, '[');
  auto v = Json::Parse(bomb);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kParseError);
}

TEST(JsonTest, SetFindAndOverwrite) {
  Json o = Json::MakeObject();
  o.Set("z", Json::Int(1));
  o.Set("a", Json::Int(2));
  o.Set("z", Json::Int(3));  // overwrite, no duplicate key
  EXPECT_EQ(o.size(), 2u);
  EXPECT_EQ(o.Find("z")->AsInt(), 3);
  EXPECT_EQ(o.Dump(), R"({"a":2,"z":3})");
  EXPECT_EQ(o.Find("missing"), nullptr);
}

TEST(JsonTest, CopiesAreIndependent) {
  Json a = Json::MakeObject();
  a.Set("k", Json::Int(1));
  Json b = a;
  b.Set("k", Json::Int(2));
  EXPECT_EQ(a.Find("k")->AsInt(), 1);
  EXPECT_EQ(b.Find("k")->AsInt(), 2);
}

// ---- protocol --------------------------------------------------------------

TEST(ProtocolTest, ParsesFullRequest) {
  auto req = ParseRequest(
      R"({"id":7,"op":"control","params":{"source":3},"deadline_ms":250})");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->id.AsInt(), 7);
  EXPECT_EQ(req->op, "control");
  EXPECT_EQ(req->params.Find("source")->AsInt(), 3);
  ASSERT_TRUE(req->deadline_ms.has_value());
  EXPECT_EQ(*req->deadline_ms, 250);
}

TEST(ProtocolTest, MissingOpFails) {
  auto req = ParseRequest(R"({"id":1})");
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.status().code(), StatusCode::kParseError);
}

TEST(ProtocolTest, RecoverIdFromRejectedLine) {
  // The op is bad but the id is salvageable for the error echo.
  EXPECT_EQ(RecoverId(R"({"id":99,"op":5})").AsInt(), 99);
  EXPECT_TRUE(RecoverId("not json at all").is_null());
  EXPECT_TRUE(RecoverId(R"([1,2,3])").is_null());
}

TEST(ProtocolTest, RenderResultShape) {
  Json result = Json::MakeObject();
  result.Set("count", Json::Int(2));
  std::string line = RenderResult(Json::Int(4), 9, result, /*cached=*/true,
                                  /*stale=*/true);
  auto v = Json::Parse(line);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->Find("ok")->AsBool());
  EXPECT_EQ(v->Find("id")->AsInt(), 4);
  EXPECT_EQ(v->Find("graph_version")->AsInt(), 9);
  EXPECT_TRUE(v->Find("cached")->AsBool());
  EXPECT_TRUE(v->Find("stale")->AsBool());
  EXPECT_EQ(v->Find("result")->Find("count")->AsInt(), 2);
}

TEST(ProtocolTest, RenderErrorShape) {
  std::string line = RenderError(
      Json::Null(), Status::ResourceExhausted("queue full"), 150);
  auto v = Json::Parse(line);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->Find("ok")->AsBool());
  EXPECT_TRUE(v->Find("id")->is_null());
  const Json* err = v->Find("error");
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->Find("code")->AsString(), "ResourceExhausted");
  EXPECT_EQ(err->Find("retry_after_ms")->AsInt(), 150);
  // Fresh-success extras never leak into errors.
  EXPECT_EQ(v->Find("result"), nullptr);
}

// ---- admission queue -------------------------------------------------------

TEST(AdmissionTest, ShedsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full -> shed
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_TRUE(q.TryPush(4));   // slot freed
}

TEST(AdmissionTest, CloseDrainsPendingInOrder) {
  BoundedQueue<int> q(8);
  q.TryPush(1);
  q.TryPush(2);
  q.TryPush(3);
  auto drained = q.Close();
  EXPECT_EQ(drained, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(q.TryPush(9));          // closed
  EXPECT_FALSE(q.Pop().has_value());   // closed and empty -> workers exit
}

TEST(AdmissionTest, PopBlocksUntilPushOrClose) {
  BoundedQueue<int> q(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.TryPush(42);
  });
  EXPECT_EQ(q.Pop().value(), 42);  // blocked until the producer pushed
  producer.join();

  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Close();
  });
  EXPECT_FALSE(q.Pop().has_value());  // unblocked by Close
  closer.join();
}

// ---- result cache ----------------------------------------------------------

TEST(CacheTest, HitMissAndVersioning) {
  ResultCache cache(4);
  CacheEntry out;
  EXPECT_FALSE(cache.Get("k", &out));
  cache.Put("k", Json::Int(1), 3);
  ASSERT_TRUE(cache.Get("k", &out));
  EXPECT_EQ(out.result.AsInt(), 1);
  EXPECT_EQ(out.version, 3u);
  // Newer version overwrites...
  cache.Put("k", Json::Int(2), 5);
  ASSERT_TRUE(cache.Get("k", &out));
  EXPECT_EQ(out.version, 5u);
  EXPECT_EQ(out.result.AsInt(), 2);
  // ...but a slow worker's older result must not roll it back.
  cache.Put("k", Json::Int(0), 4);
  ASSERT_TRUE(cache.Get("k", &out));
  EXPECT_EQ(out.version, 5u);
  EXPECT_EQ(out.result.AsInt(), 2);
}

TEST(CacheTest, LruEvictsColdestEntry) {
  ResultCache cache(2);
  cache.Put("a", Json::Int(1), 1);
  cache.Put("b", Json::Int(2), 1);
  CacheEntry out;
  ASSERT_TRUE(cache.Get("a", &out));  // warms "a"; "b" is now coldest
  cache.Put("c", Json::Int(3), 1);
  EXPECT_TRUE(cache.Get("a", &out));
  EXPECT_FALSE(cache.Get("b", &out));
  EXPECT_TRUE(cache.Get("c", &out));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.Put("k", Json::Int(1), 1);
  CacheEntry out;
  EXPECT_FALSE(cache.Get("k", &out));
}

// ---- snapshot store --------------------------------------------------------

TEST(SnapshotTest, MonotonePublishAndIsolation) {
  SnapshotStore store;
  EXPECT_EQ(store.version(), 0u);
  EXPECT_EQ(store.current(), nullptr);

  auto v1 = std::make_shared<GraphSnapshot>();
  v1->version = 1;
  v1->graph.AddNode("Person");
  ASSERT_TRUE(store.Publish(v1));
  EXPECT_EQ(store.version(), 1u);

  // A reader holding v1 keeps it alive across a later publish.
  SnapshotPtr held = store.current();
  auto v2 = std::make_shared<GraphSnapshot>();
  v2->version = 2;
  ASSERT_TRUE(store.Publish(v2));
  EXPECT_EQ(store.version(), 2u);
  EXPECT_EQ(held->version, 1u);
  EXPECT_EQ(held->graph.node_count(), 1u);

  // Non-increasing versions are rejected — single-writer discipline.
  auto stale = std::make_shared<GraphSnapshot>();
  stale->version = 2;
  EXPECT_FALSE(store.Publish(stale));
  EXPECT_EQ(store.version(), 2u);
}

}  // namespace
}  // namespace vadalink::serve
