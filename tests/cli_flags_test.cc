// tools/: the strict CLI flag parser — malformed numbers and duplicate
// flags must be reported, never silently coerced to 0 or shadowed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/cli_flags.h"

namespace vadalink::cli {
namespace {

/// Builds argv-style storage from a list of tokens (argv[0] = program,
/// argv[1] = command; flags start at index 2, matching the CLI).
class Args {
 public:
  explicit Args(std::vector<std::string> tokens)
      : tokens_(std::move(tokens)) {
    for (auto& t : tokens_) argv_.push_back(t.data());
  }
  int argc() const { return static_cast<int>(argv_.size()); }
  char** argv() { return argv_.data(); }

 private:
  std::vector<std::string> tokens_;
  std::vector<char*> argv_;
};

TEST(CliFlagsTest, ParsesStringsIntsAndDoubles) {
  Args a({"vadalink", "cmd", "--in", "reg", "--rounds", "3",
          "--threshold", "0.25"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_EQ(flags.Get("in", ""), "reg");
  EXPECT_EQ(flags.GetInt("rounds", 0), 3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("threshold", 0.0), 0.25);
  EXPECT_EQ(flags.GetInt("absent", 7), 7);
  EXPECT_TRUE(flags.Has("in"));
  EXPECT_FALSE(flags.Has("out"));
  EXPECT_TRUE(flags.ok());
}

TEST(CliFlagsTest, RejectsDuplicateFlag) {
  Args a({"vadalink", "cmd", "--in", "a", "--in", "b"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("duplicate"), std::string::npos);
}

TEST(CliFlagsTest, RejectsNonNumericInt) {
  Args a({"vadalink", "cmd", "--rounds", "three"});
  Flags flags(a.argc(), a.argv(), 2);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags.GetInt("rounds", 9), 9);  // fallback, not atoll's 0
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("rounds"), std::string::npos);
}

TEST(CliFlagsTest, RejectsTrailingGarbageInt) {
  Args a({"vadalink", "cmd", "--rounds", "3x"});
  Flags flags(a.argc(), a.argv(), 2);
  flags.GetInt("rounds", 0);
  EXPECT_FALSE(flags.ok());
}

TEST(CliFlagsTest, RejectsNonNumericDouble) {
  Args a({"vadalink", "cmd", "--threshold", "0.2abc"});
  Flags flags(a.argc(), a.argv(), 2);
  flags.GetDouble("threshold", 0.0);
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("threshold"), std::string::npos);
}

TEST(CliFlagsTest, AcceptsNegativeAndScientificNumbers) {
  Args a({"vadalink", "cmd", "--offset", "-12", "--eps", "1e-4"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_EQ(flags.GetInt("offset", 0), -12);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.0), 1e-4);
  EXPECT_TRUE(flags.ok());
}

TEST(CliFlagsTest, RejectsMissingValue) {
  Args a({"vadalink", "cmd", "--in", "reg", "--rounds"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("missing a value"), std::string::npos);
}

TEST(CliFlagsTest, RejectsBareWordWhereFlagExpected) {
  Args a({"vadalink", "cmd", "reg", "--rounds"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("expected --flag"), std::string::npos);
}

TEST(CliFlagsTest, FirstErrorIsKept) {
  Args a({"vadalink", "cmd", "--rounds", "x", "--threshold", "y"});
  Flags flags(a.argc(), a.argv(), 2);
  flags.GetInt("rounds", 0);
  flags.GetDouble("threshold", 0.0);
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("rounds"), std::string::npos);
}

TEST(CliFlagsTest, RequireKnownAcceptsExactMatches) {
  Args a({"vadalink", "cmd", "--in", "reg", "--threads", "4"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_TRUE(flags.RequireKnown({"in", "out", "threads"}));
  EXPECT_TRUE(flags.ok());
}

TEST(CliFlagsTest, RequireKnownRejectsUnknownWithSuggestion) {
  // '--thread' used to be silently accepted and ignored; it must now
  // fail and point at '--threads'.
  Args a({"vadalink", "cmd", "--in", "reg", "--thread", "4"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_FALSE(flags.RequireKnown({"in", "out", "threads"}));
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("unknown flag '--thread'"),
            std::string::npos);
  EXPECT_NE(flags.error().find("did you mean '--threads'?"),
            std::string::npos);
}

TEST(CliFlagsTest, RequireKnownOmitsFarfetchedSuggestions) {
  Args a({"vadalink", "cmd", "--zzzzzzz", "1"});
  Flags flags(a.argc(), a.argv(), 2);
  EXPECT_FALSE(flags.RequireKnown({"in", "out"}));
  EXPECT_NE(flags.error().find("unknown flag '--zzzzzzz'"),
            std::string::npos);
  EXPECT_EQ(flags.error().find("did you mean"), std::string::npos);
}

TEST(CliFlagsTest, EditDistanceBasics) {
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("thread", "threads"), 1u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
}

}  // namespace
}  // namespace vadalink::cli
