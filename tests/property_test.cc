// Property-based tests: invariants checked over parameterized sweeps of
// random inputs (seeds x sizes), via TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <set>

#include "common/csv.h"
#include "common/rng.h"
#include "company/close_link.h"
#include "company/company_graph.h"
#include "company/control.h"
#include "company/ownership.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "embed/embed_clusterer.h"
#include "gen/barabasi_albert.h"
#include "gen/register_simulator.h"
#include "linkage/bayes.h"
#include "linkage/blocking.h"
#include "linkage/string_metrics.h"

namespace vadalink {
namespace {

// ---------------------------------------------------------------------------
// Register / ownership invariants
// ---------------------------------------------------------------------------

struct RegisterParam {
  uint64_t seed;
  size_t persons;
  size_t companies;
};

class RegisterPropertyTest
    : public ::testing::TestWithParam<RegisterParam> {};

TEST_P(RegisterPropertyTest, CompanyGraphInvariants) {
  const RegisterParam& p = GetParam();
  gen::RegisterConfig cfg;
  cfg.seed = p.seed;
  cfg.persons = p.persons;
  cfg.companies = p.companies;
  auto data = gen::GenerateRegister(cfg);
  auto cg = company::CompanyGraph::FromPropertyGraph(data.graph);
  ASSERT_TRUE(cg.ok()) << cg.status().ToString();

  // Weights in [0, 1] with at least one right attached; per-company cash
  // and voting in-shares each sum to <= 1.
  for (graph::NodeId c : cg->companies()) {
    double cash_total = 0.0, voting_total = 0.0;
    for (const auto& s : cg->owners(c)) {
      EXPECT_GE(s.w, 0.0);
      EXPECT_LE(s.w, 1.0);
      EXPECT_GE(s.voting, 0.0);
      EXPECT_LE(s.voting, 1.0);
      EXPECT_GT(s.w + s.voting, 0.0);  // bare + usufruct never both zero
      cash_total += s.w;
      voting_total += s.voting;
    }
    EXPECT_LE(cash_total, 1.0 + 1e-9);
    EXPECT_LE(voting_total, 1.0 + 1e-9);
  }
  // Persons never receive shareholdings.
  for (graph::NodeId person : cg->persons()) {
    EXPECT_TRUE(cg->owners(person).empty());
  }
}

TEST_P(RegisterPropertyTest, ControlEdgesSatisfyDefinition) {
  const RegisterParam& p = GetParam();
  gen::RegisterConfig cfg;
  cfg.seed = p.seed;
  cfg.persons = p.persons;
  cfg.companies = p.companies;
  auto data = gen::GenerateRegister(cfg);
  auto cg = company::CompanyGraph::FromPropertyGraph(data.graph).value();

  for (graph::NodeId x = 0; x < cg.node_count(); ++x) {
    if (cg.holdings(x).empty()) continue;
    auto controlled = company::ControlledBy(cg, x);
    std::set<graph::NodeId> group(controlled.begin(), controlled.end());
    group.insert(x);
    // Definition 2.3 (over voting rights): each controlled y receives
    // > 0.5 of the votes jointly from the group; each non-controlled
    // company receives <= 0.5.
    for (graph::NodeId y : controlled) {
      double joint = 0.0;
      for (const auto& s : cg.owners(y)) {
        if (group.count(s.src) && s.src != y) joint += s.voting;
      }
      EXPECT_GT(joint, 0.5) << "x=" << x << " y=" << y;
    }
    for (graph::NodeId y : cg.companies()) {
      if (group.count(y)) continue;
      double joint = 0.0;
      for (const auto& s : cg.owners(y)) {
        if (group.count(s.src) && s.src != y) joint += s.voting;
      }
      EXPECT_LE(joint, 0.5) << "x=" << x << " y=" << y;
    }
  }
}

TEST_P(RegisterPropertyTest, ControlMonotoneUnderAddedShares) {
  const RegisterParam& p = GetParam();
  gen::RegisterConfig cfg;
  cfg.seed = p.seed;
  cfg.persons = p.persons;
  cfg.companies = p.companies;
  auto data = gen::GenerateRegister(cfg);
  auto cg = company::CompanyGraph::FromPropertyGraph(data.graph).value();

  Rng rng(p.seed ^ 0xabc);
  graph::NodeId x = data.persons[rng.UniformU64(data.persons.size())];
  auto before = company::ControlledBy(cg, x);

  // Give x an extra (capacity-respecting) share of a random company.
  graph::NodeId target =
      data.companies[rng.UniformU64(data.companies.size())];
  double headroom = 1.0;
  for (const auto& s : cg.owners(target)) headroom -= s.w;
  if (headroom > 0.01) {
    auto e = data.graph.AddEdge(x, target, "Shareholding");
    data.graph.SetEdgeProperty(e.value(), "w", headroom);
    auto cg2 = company::CompanyGraph::FromPropertyGraph(data.graph).value();
    auto after = company::ControlledBy(cg2, x);
    std::set<graph::NodeId> after_set(after.begin(), after.end());
    for (graph::NodeId y : before) {
      EXPECT_TRUE(after_set.count(y))
          << "control lost by adding shares: y=" << y;
    }
  }
}

TEST_P(RegisterPropertyTest, AccumulatedOwnershipBounds) {
  const RegisterParam& p = GetParam();
  gen::RegisterConfig cfg;
  cfg.seed = p.seed;
  cfg.persons = p.persons;
  cfg.companies = p.companies;
  auto data = gen::GenerateRegister(cfg);
  auto cg = company::CompanyGraph::FromPropertyGraph(data.graph).value();

  Rng rng(p.seed ^ 0x123);
  for (int trial = 0; trial < 10; ++trial) {
    graph::NodeId x = static_cast<graph::NodeId>(
        rng.UniformU64(cg.node_count()));
    auto simple = company::AccumulatedOwnershipSimplePaths(cg, x);
    company::OwnershipConfig wcfg;
    wcfg.max_depth = 128;
    auto walks = company::AccumulatedOwnershipWalkSum(cg, x, wcfg);
    for (const auto& [y, phi] : simple) {
      // Phi in (0, 1]: in-shares per company sum to <= 1.
      EXPECT_GT(phi, 0.0);
      EXPECT_LE(phi, 1.0 + 1e-6);
      // The walk sum dominates the simple-path sum (all walks include all
      // simple paths, with non-negative extra terms).
      auto it = walks.find(y);
      ASSERT_NE(it, walks.end());
      EXPECT_GE(it->second, phi - 1e-6);
    }
  }
}

TEST_P(RegisterPropertyTest, CloseLinksSymmetricAndCompanyOnly) {
  const RegisterParam& p = GetParam();
  gen::RegisterConfig cfg;
  cfg.seed = p.seed;
  cfg.persons = p.persons;
  cfg.companies = p.companies;
  auto data = gen::GenerateRegister(cfg);
  auto cg = company::CompanyGraph::FromPropertyGraph(data.graph).value();
  for (const auto& e : company::AllCloseLinks(cg)) {
    EXPECT_LT(e.x, e.y);  // normalized
    EXPECT_TRUE(cg.is_company(e.x));
    EXPECT_TRUE(cg.is_company(e.y));
    if (e.reason == company::CloseLinkReason::kCommonThirdParty) {
      EXPECT_NE(e.via, graph::kInvalidNode);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegisterPropertyTest,
    ::testing::Values(RegisterParam{1, 60, 40}, RegisterParam{2, 120, 90},
                      RegisterParam{3, 200, 150},
                      RegisterParam{4, 300, 100},
                      RegisterParam{5, 80, 250}),
    [](const ::testing::TestParamInfo<RegisterParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_p" +
             std::to_string(info.param.persons) + "_c" +
             std::to_string(info.param.companies);
    });

// ---------------------------------------------------------------------------
// Engine vs reference closure on random digraphs
// ---------------------------------------------------------------------------

class EngineClosurePropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(EngineClosurePropertyTest, TransitiveClosureMatchesBfs) {
  Rng rng(GetParam());
  const size_t n = 20 + rng.UniformU64(20);
  const size_t m = n + rng.UniformU64(2 * n);
  std::set<std::pair<int64_t, int64_t>> edges;
  for (size_t i = 0; i < m; ++i) {
    edges.insert({static_cast<int64_t>(rng.UniformU64(n)),
                  static_cast<int64_t>(rng.UniformU64(n))});
  }

  // Reference closure by BFS from each node.
  std::vector<std::vector<int64_t>> adj(n);
  for (const auto& [a, b] : edges) adj[a].push_back(b);
  std::set<std::pair<int64_t, int64_t>> expected;
  for (size_t s = 0; s < n; ++s) {
    std::vector<bool> seen(n, false);
    std::queue<int64_t> q;
    for (int64_t b : adj[s]) {
      if (!seen[b]) {
        seen[b] = true;
        q.push(b);
      }
    }
    while (!q.empty()) {
      int64_t v = q.front();
      q.pop();
      expected.insert({static_cast<int64_t>(s), v});
      for (int64_t b : adj[v]) {
        if (!seen[b]) {
          seen[b] = true;
          q.push(b);
        }
      }
    }
  }

  // Engine closure.
  std::string src;
  for (const auto& [a, b] : edges) {
    src += "e(" + std::to_string(a) + "," + std::to_string(b) + ").\n";
  }
  src += "e(X,Y) -> tc(X,Y).\ntc(X,Y), e(Y,Z) -> tc(X,Z).\n";
  datalog::Catalog catalog;
  datalog::Database db(&catalog);
  auto program = datalog::ParseProgram(src, &catalog);
  ASSERT_TRUE(program.ok());
  datalog::Engine engine(&db);
  ASSERT_TRUE(engine.Run(*program).ok());
  std::set<std::pair<int64_t, int64_t>> actual;
  for (const auto& t : db.Scan("tc")) {
    actual.insert({t[0].AsInt(), t[1].AsInt()});
  }
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineClosurePropertyTest,
                         ::testing::Range<uint64_t>(100, 110));

// ---------------------------------------------------------------------------
// String metric properties
// ---------------------------------------------------------------------------

class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, LevenshteinMetricAxioms) {
  Rng rng(GetParam());
  auto random_string = [&](size_t max_len) {
    std::string s;
    size_t len = rng.UniformU64(max_len + 1);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.UniformU64(4));  // small alphabet
    }
    return s;
  };
  for (int trial = 0; trial < 30; ++trial) {
    std::string a = random_string(10);
    std::string b = random_string(10);
    std::string c = random_string(10);
    size_t ab = linkage::Levenshtein(a, b);
    size_t ba = linkage::Levenshtein(b, a);
    EXPECT_EQ(ab, ba);                      // symmetry
    EXPECT_EQ(linkage::Levenshtein(a, a), 0u);  // identity
    // Triangle inequality.
    EXPECT_LE(linkage::Levenshtein(a, c),
              ab + linkage::Levenshtein(b, c));
    // Bounded by length difference below and max length above.
    size_t diff = a.size() > b.size() ? a.size() - b.size()
                                      : b.size() - a.size();
    EXPECT_GE(ab, diff);
    EXPECT_LE(ab, std::max(a.size(), b.size()));
  }
}

TEST_P(MetricPropertyTest, JaroWinklerBoundsAndIdentity) {
  Rng rng(GetParam());
  auto random_string = [&](size_t max_len) {
    std::string s;
    size_t len = rng.UniformU64(max_len + 1);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.UniformU64(6));
    }
    return s;
  };
  for (int trial = 0; trial < 30; ++trial) {
    std::string a = random_string(12);
    std::string b = random_string(12);
    double jw = linkage::JaroWinkler(a, b);
    EXPECT_GE(jw, 0.0);
    EXPECT_LE(jw, 1.0);
    EXPECT_NEAR(jw, linkage::JaroWinkler(b, a), 1e-12);
    if (!a.empty()) {
      EXPECT_DOUBLE_EQ(linkage::JaroWinkler(a, a), 1.0);
    }
  }
}

TEST_P(MetricPropertyTest, GrahamMonotoneInEvidence) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> probs;
    size_t n = 1 + rng.UniformU64(5);
    for (size_t i = 0; i < n; ++i) probs.push_back(rng.UniformDouble());
    double base = linkage::BayesLinkClassifier::GrahamCombine(probs);
    // Adding supporting evidence (> 0.5) never decreases the posterior;
    // adding opposing evidence (< 0.5) never increases it.
    auto with = probs;
    with.push_back(0.9);
    EXPECT_GE(linkage::BayesLinkClassifier::GrahamCombine(with),
              base - 1e-9);
    with = probs;
    with.push_back(0.1);
    EXPECT_LE(linkage::BayesLinkClassifier::GrahamCombine(with),
              base + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Range<uint64_t>(500, 508));

// ---------------------------------------------------------------------------
// Blocking & embedding determinism
// ---------------------------------------------------------------------------

class DeterminismPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismPropertyTest, BlockingIsAFunctionOfFeatures) {
  gen::RegisterConfig cfg;
  cfg.seed = GetParam();
  cfg.persons = 80;
  cfg.companies = 40;
  auto data = gen::GenerateRegister(cfg);
  linkage::Blocker blocker(linkage::BlockingConfig{
      .keys = {"city", "last_name"}, .max_blocks = 16});
  auto blocks1_r = blocker.BlockAll(data.graph);
  auto blocks2_r = blocker.BlockAll(data.graph);
  ASSERT_TRUE(blocks1_r.ok()) << blocks1_r.status().ToString();
  ASSERT_TRUE(blocks2_r.ok()) << blocks2_r.status().ToString();
  const auto& blocks1 = *blocks1_r;
  EXPECT_EQ(blocks1, *blocks2_r);
  // Equal feature values => equal block.
  for (graph::NodeId a : data.persons) {
    for (graph::NodeId b : data.persons) {
      if (data.graph.GetNodeProperty(a, "city") ==
              data.graph.GetNodeProperty(b, "city") &&
          data.graph.GetNodeProperty(a, "last_name") ==
              data.graph.GetNodeProperty(b, "last_name")) {
        EXPECT_EQ(blocks1[a], blocks1[b]);
      }
    }
  }
}

TEST_P(DeterminismPropertyTest, EmbedClustererDeterministic) {
  gen::BarabasiAlbertConfig ba;
  ba.nodes = 120;
  ba.seed = GetParam();
  auto g = gen::GenerateBarabasiAlbert(ba);
  embed::EmbedClusterConfig cfg;
  cfg.skipgram.dimensions = 8;
  cfg.skipgram.epochs = 1;
  cfg.walk.walks_per_node = 2;
  cfg.kmeans.k = 4;
  embed::EmbedClusterer c1(cfg), c2(cfg);
  auto r1 = c1.Cluster(g);
  auto r2 = c2.Cluster(g);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(*r1, *r2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismPropertyTest,
                         ::testing::Values(11, 22, 33));

// ---------------------------------------------------------------------------
// CSV round-trip on random content
// ---------------------------------------------------------------------------

class CsvPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvPropertyTest, EncodeParseRoundTrip) {
  Rng rng(GetParam());
  std::vector<std::vector<std::string>> rows;
  size_t nrows = 1 + rng.UniformU64(20);
  for (size_t r = 0; r < nrows; ++r) {
    std::vector<std::string> row;
    size_t ncols = 1 + rng.UniformU64(6);
    for (size_t c = 0; c < ncols; ++c) {
      std::string cell;
      size_t len = rng.UniformU64(12);
      const char alphabet[] = "ab,\"\n\r x";
      for (size_t i = 0; i < len; ++i) {
        cell += alphabet[rng.UniformU64(sizeof(alphabet) - 1)];
      }
      row.push_back(std::move(cell));
    }
    rows.push_back(std::move(row));
  }
  std::string text;
  for (const auto& row : rows) text += EncodeCsvRow(row) + "\n";
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Note: a trailing "\r" in an unquoted final cell is a CRLF ambiguity;
  // EncodeCsvRow quotes any cell containing \r, so round-trip is exact.
  EXPECT_EQ(*parsed, rows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvPropertyTest,
                         ::testing::Range<uint64_t>(900, 910));

}  // namespace
}  // namespace vadalink
