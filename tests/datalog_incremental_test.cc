// datalog/: incremental evaluation — the maintenance mode for a KG that
// receives register updates after the initial chase.
#include <gtest/gtest.h>

#include <set>

#include "datalog/engine.h"
#include "datalog/parser.h"

namespace vadalink::datalog {
namespace {

class IncrementalTest : public ::testing::Test {
 protected:
  Catalog catalog;
  Database db{&catalog};

  Result<Program> Parse(const std::string& src) {
    return ParseProgram(src, &catalog);
  }

  std::set<std::string> Tuples(const std::string& pred) {
    std::set<std::string> out;
    for (const auto& t : db.Scan(pred)) {
      std::string s;
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) s += ",";
        s += t[i].ToString(catalog.symbols);
      }
      out.insert(s);
    }
    return out;
  }
};

TEST_F(IncrementalTest, TransitiveClosureExtends) {
  auto program = Parse(R"(
    e(1,2). e(2,3).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )");
  ASSERT_TRUE(program.ok());
  Engine engine(&db);
  ASSERT_TRUE(engine.Run(*program).ok());
  EXPECT_EQ(db.Scan("tc").size(), 3u);

  // A new edge arrives: 3 -> 4.
  ASSERT_TRUE(db.InsertByName("e", {Value::Int(3), Value::Int(4)}).ok());
  ASSERT_TRUE(engine.RunIncremental(*program).ok());
  EXPECT_EQ(db.Scan("tc").size(), 6u);
  EXPECT_TRUE(Tuples("tc").count("1,4"));
}

TEST_F(IncrementalTest, MatchesFromScratchResult) {
  const std::string rules = R"(
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )";
  // Incremental path.
  auto program = Parse(rules);
  ASSERT_TRUE(program.ok());
  Engine engine(&db);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        db.InsertByName("e", {Value::Int(i), Value::Int(i + 1)}).ok());
    Status st = i == 0 ? engine.Run(*program)
                       : engine.RunIncremental(*program);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  // From-scratch reference.
  Catalog catalog2;
  Database db2(&catalog2);
  auto program2 = ParseProgram(rules, &catalog2);
  ASSERT_TRUE(program2.ok());
  Engine engine2(&db2);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        db2.InsertByName("e", {Value::Int(i), Value::Int(i + 1)}).ok());
  }
  ASSERT_TRUE(engine2.Run(*program2).ok());
  EXPECT_EQ(db.Scan("tc").size(), db2.Scan("tc").size());
}

TEST_F(IncrementalTest, AggregateStateCarriesOver) {
  // Company-control style msum: a new shareholding tips the sum past the
  // threshold only if the earlier contributions were retained.
  const std::string rules = R"(
    own(X,Y,W), S = msum(W, <X>), S > 0.5 -> big(Y).
  )";
  auto program = Parse(rules);
  ASSERT_TRUE(program.ok());
  Engine engine(&db);
  ASSERT_TRUE(db.InsertByName("own", {db.Sym("a"), db.Sym("t"),
                                      Value::Double(0.3)}).ok());
  ASSERT_TRUE(engine.Run(*program).ok());
  EXPECT_TRUE(db.Scan("big").empty());

  ASSERT_TRUE(db.InsertByName("own", {db.Sym("b"), db.Sym("t"),
                                      Value::Double(0.3)}).ok());
  ASSERT_TRUE(engine.RunIncremental(*program).ok());
  EXPECT_EQ(db.Scan("big").size(), 1u);  // 0.3 + 0.3 > 0.5
}

TEST_F(IncrementalTest, NoNewFactsIsCheapNoOp) {
  auto program = Parse(R"(
    e(1,2). e(2,3).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )");
  ASSERT_TRUE(program.ok());
  Engine engine(&db);
  ASSERT_TRUE(engine.Run(*program).ok());
  size_t matches_after_run = engine.stats().body_matches;
  ASSERT_TRUE(engine.RunIncremental(*program).ok());
  // An empty delta window fires no rules at all.
  EXPECT_EQ(engine.stats().body_matches, matches_after_run);
}

TEST_F(IncrementalTest, NegationRejected) {
  auto program = Parse(R"(
    p(1).
    q(2).
    p(X), not q(X) -> r(X).
  )");
  ASSERT_TRUE(program.ok());
  Engine engine(&db);
  ASSERT_TRUE(engine.Run(*program).ok());
  Status st = engine.RunIncremental(*program);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST_F(IncrementalTest, RejectedAfterAbortedRun) {
  auto program = Parse(R"(
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )");
  ASSERT_TRUE(program.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        db.InsertByName("e", {Value::Int(i), Value::Int(i + 1)}).ok());
  }
  RunContext ctx;
  ctx.set_work_budget(3);  // aborts the chase after a few derived facts
  EngineOptions options;
  options.run_ctx = &ctx;
  Engine engine(&db, options);
  Status st = engine.Run(*program);
  ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();

  // The delta window is unreliable after an abort: incremental evaluation
  // must refuse rather than silently miss derivations, and its message
  // names the aborting run's limit status so the operator knows *why* the
  // fixpoint is stale, not just that it is.
  Status inc = engine.RunIncremental(*program);
  EXPECT_EQ(inc.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(inc.message().find("aborted"), std::string::npos);
  EXPECT_NE(inc.message().find("ResourceExhausted"), std::string::npos)
      << inc.message();

  // The rejection itself must not clobber the recorded cause: a second
  // attempt still names the original limit status.
  Status inc2 = engine.RunIncremental(*program);
  EXPECT_NE(inc2.message().find("ResourceExhausted"), std::string::npos)
      << inc2.message();

  // A full Run() re-establishes the fixpoint and re-enables increments.
  ctx.set_work_budget(RunContext::kNoBudget);
  ASSERT_TRUE(engine.Run(*program).ok());
  EXPECT_EQ(db.Scan("tc").size(), 55u);
  ASSERT_TRUE(db.InsertByName("e", {Value::Int(10), Value::Int(11)}).ok());
  ASSERT_TRUE(engine.RunIncremental(*program).ok());
  EXPECT_EQ(db.Scan("tc").size(), 66u);
}

TEST_F(IncrementalTest, RejectedAfterStreamingEviction) {
  auto program = Parse(R"(
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )");
  ASSERT_TRUE(program.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        db.InsertByName("e", {Value::Int(i), Value::Int(i + 1)}).ok());
  }
  EngineOptions options;
  options.streaming = true;
  Engine engine(&db, options);
  ASSERT_TRUE(engine.Run(*program).ok());
  // The chain forces many semi-naive iterations, so exhausted tc epochs
  // were actually released; the logical fact set is untouched.
  ASSERT_TRUE(db.HasEvicted());
  EXPECT_EQ(db.TotalFacts(), 20u + 210u);

  // An incremental continuation would join new deltas against column
  // storage that no longer exists: the engine must refuse with a clear
  // precondition failure, not silently under-derive.
  ASSERT_TRUE(db.InsertByName("e", {Value::Int(20), Value::Int(21)}).ok());
  Status inc = engine.RunIncremental(*program);
  EXPECT_EQ(inc.code(), StatusCode::kFailedPrecondition) << inc.ToString();
  EXPECT_NE(inc.message().find("evicted"), std::string::npos)
      << inc.message();
  // The refusal is stable: retrying does not change the answer.
  EXPECT_EQ(engine.RunIncremental(*program).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(IncrementalTest, ExistentialNullsNotReinvented) {
  auto program = Parse(R"(
    p(X) -> q(X, N).
  )");
  ASSERT_TRUE(program.ok());
  Engine engine(&db);
  ASSERT_TRUE(db.InsertByName("p", {Value::Int(1)}).ok());
  ASSERT_TRUE(engine.Run(*program).ok());
  ASSERT_TRUE(db.InsertByName("p", {Value::Int(2)}).ok());
  ASSERT_TRUE(engine.RunIncremental(*program).ok());
  EXPECT_EQ(db.Scan("q").size(), 2u);
  EXPECT_EQ(db.nulls()->size(), 2u);  // one per p-fact, none duplicated
}

}  // namespace
}  // namespace vadalink::datalog
