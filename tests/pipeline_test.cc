// End-to-end pipeline (the paper's Figure 3 flow): register CSV files ->
// property graph -> KG augmentation -> persisted augmented graph ->
// reload -> downstream analytics.
#include <gtest/gtest.h>

#include <set>

#include "company/company_graph.h"
#include "company/groups.h"
#include "core/knowledge_graph.h"
#include "core/vada_link.h"
#include "core/vadalog_programs.h"
#include "gen/register_simulator.h"
#include "graph/graph_io.h"

namespace vadalink {
namespace {

std::string Tmp(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PipelineTest, CsvToAugmentedGraphAndBack) {
  // 1. ETL: a register lands as CSV files.
  gen::RegisterConfig reg;
  reg.persons = 150;
  reg.companies = 100;
  reg.seed = 77;
  auto data = gen::GenerateRegister(reg);
  ASSERT_TRUE(graph::SaveGraphCsv(data.graph, Tmp("reg_nodes.csv"),
                                  Tmp("reg_edges.csv"))
                  .ok());

  // 2. Load into the platform.
  auto loaded =
      graph::LoadGraphCsv(Tmp("reg_nodes.csv"), Tmp("reg_edges.csv"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->node_count(), data.graph.node_count());
  EXPECT_EQ(loaded->edge_count(), data.graph.edge_count());

  // 3. Augment (Algorithm 1 with the default candidates).
  core::AugmentConfig cfg;
  cfg.use_embedding = false;  // keep the test fast and deterministic
  cfg.max_rounds = 2;
  auto vl = core::MakeDefaultVadaLink(cfg);
  auto stats = vl.Augment(&loaded.value());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->links_added, 0u);

  // 4. Persist the augmented KG and reload it.
  ASSERT_TRUE(graph::SaveGraphCsv(*loaded, Tmp("aug_nodes.csv"),
                                  Tmp("aug_edges.csv"))
                  .ok());
  auto reloaded =
      graph::LoadGraphCsv(Tmp("aug_nodes.csv"), Tmp("aug_edges.csv"));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->edge_count(), loaded->edge_count());

  // 5. Downstream analytics still work on the round-tripped graph, and
  //    the predicted edges kept their marker property.
  size_t predicted = 0;
  reloaded->ForEachEdge([&](graph::EdgeId e) {
    if (reloaded->GetEdgeProperty(e, "predicted").is_bool()) ++predicted;
  });
  EXPECT_EQ(predicted, stats->links_added);
  auto cg = company::CompanyGraph::FromPropertyGraph(*reloaded);
  ASSERT_TRUE(cg.ok());
}

TEST(PipelineTest, DeclarativeAndCompiledPipelinesAgreeOnRegister) {
  // The same register, reasoned over by (a) the KnowledgeGraph facade
  // running the paper's control program and (b) the compiled candidate.
  gen::RegisterConfig reg;
  reg.persons = 100;
  reg.companies = 120;
  reg.seed = 31;

  auto data_a = gen::GenerateRegister(reg);
  core::KnowledgeGraph kg;
  *kg.mutable_graph() = std::move(data_a.graph);
  ASSERT_TRUE(kg.AddRules(core::ControlProgram()).ok());
  auto rstats = kg.Reason();
  ASSERT_TRUE(rstats.ok()) << rstats.status().ToString();

  auto data_b = gen::GenerateRegister(reg);
  core::ControlCandidate candidate;
  auto links = candidate.RunGlobal(data_b.graph);
  ASSERT_TRUE(links.ok());

  std::set<std::pair<int64_t, int64_t>> declarative, compiled;
  for (const auto& t : kg.Query("control")) {
    declarative.insert({t[0].AsInt(), t[1].AsInt()});
  }
  for (const auto& l : *links) {
    compiled.insert({l.x, l.y});
  }
  EXPECT_EQ(declarative, compiled);
  EXPECT_EQ(rstats->links_materialised, compiled.size());
}

TEST(PipelineTest, GroupAnalyticsOnAugmentedGraph) {
  gen::RegisterConfig reg;
  reg.persons = 200;
  reg.companies = 150;
  reg.family_business_rate = 0.5;
  reg.seed = 55;
  auto data = gen::GenerateRegister(reg);

  core::AugmentConfig cfg;
  cfg.use_embedding = false;
  cfg.max_rounds = 2;
  auto vl = core::MakeDefaultVadaLink(cfg);
  ASSERT_TRUE(vl.Augment(&data.graph).ok());

  auto cg = company::CompanyGraph::FromPropertyGraph(data.graph).value();
  // The analytics run without error on an augmented graph and report
  // consistent structures.
  for (graph::NodeId c : cg.companies()) {
    for (const auto& ubo : company::UltimateOwnersOf(cg, c, 0.25)) {
      EXPECT_TRUE(cg.is_person(ubo.person));
      EXPECT_GT(ubo.integrated_ownership, 0.25 - 1e-9);
    }
  }
}

}  // namespace
}  // namespace vadalink
