// common/: Status/Result, RNG, string utilities, hashing, CSV codec.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "common/csv.h"
#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace vadalink {
namespace {

// ---- Status / Result -------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 41);
  EXPECT_EQ(r.value_or(0), 41);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  VL_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

// ---- Rng -------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformU64(10);
    EXPECT_LT(v, 10u);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    int64_t x = rng.UniformInt(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformU64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, PowerLawInRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.PowerLaw(2.5, 100);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(RngTest, PowerLawIsSkewed) {
  Rng rng(29);
  size_t ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.PowerLaw(2.5, 100) == 1) ++ones;
  }
  // For alpha=2.5, P(1) ~ 0.65 of the mass; uniform would give 1%.
  EXPECT_GT(ones, n / 3);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(37);
  auto s = rng.SampleIndices(100, 20);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (size_t i : uniq) EXPECT_LT(i, 100u);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(41);
  std::vector<double> w{0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.WeightedIndex(w), 1u);
}

// ---- string_util ------------------------------------------------------------

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, Case) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("aBc"), "ABC");
}

TEST(StringUtilTest, JoinStartsEnds) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.25), "0.25");
  EXPECT_EQ(FormatDouble(3.0), "3");
}

// ---- hash -------------------------------------------------------------------

TEST(HashTest, Fnv1aStable) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
}

TEST(HashTest, CombineOrderSensitive) {
  uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

// ---- csv --------------------------------------------------------------------

TEST(CsvTest, SimpleRows) {
  auto rows = ParseCsv("a,b\nc,d\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, QuotedFields) {
  auto rows = ParseCsv("\"a,b\",\"say \"\"hi\"\"\",\"multi\nline\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "a,b");
  EXPECT_EQ((*rows)[0][1], "say \"hi\"");
  EXPECT_EQ((*rows)[0][2], "multi\nline");
}

TEST(CsvTest, CrLfAndNoTrailingNewline) {
  auto rows = ParseCsv("a,b\r\nc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][1], "d");
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("\"abc").ok());
}

TEST(CsvTest, UnterminatedQuoteNamesItsLine) {
  // Truncated-mid-field input: the error points at the line the quote
  // opened on, not at the end of the document.
  auto doc = ParseCsvDocument("a,b\nc,d\ne,\"trunca");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos)
      << doc.status().message();
  EXPECT_NE(doc.status().message().find("truncated"), std::string::npos);
}

TEST(CsvTest, StrayQuoteNamesItsLine) {
  auto doc = ParseCsvDocument("a,b\nc,d\"d\n");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("line 2"), std::string::npos)
      << doc.status().message();
}

TEST(CsvTest, RowLinesTrackMultilineFields) {
  // A quoted field spanning three physical lines shifts the next row's
  // recorded line number accordingly.
  auto doc = ParseCsvDocument("h1,h2\n1,\"a\nb\nc\"\n2,x\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 3u);
  EXPECT_EQ(doc->row_lines[0], 1u);
  EXPECT_EQ(doc->row_lines[1], 2u);
  EXPECT_EQ(doc->row_lines[2], 5u);
}

TEST(CsvTest, ReadFileFaultInjection) {
  std::string path = ::testing::TempDir() + "/vl_csv_fault.csv";
  ASSERT_TRUE(WriteCsvFile(path, {{"a", "b"}}).ok());
  FaultInjection::Arm("csv.read_file", {StatusCode::kIoError, "disk gone"});
  auto rows = ReadCsvFile(path);
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
  FaultInjection::Reset();
  EXPECT_TRUE(ReadCsvFile(path).ok());
}

TEST(CsvTest, WriteFileFaultInjection) {
  std::string path = ::testing::TempDir() + "/vl_csv_fault_w.csv";
  FaultInjection::Arm("csv.write_file", {StatusCode::kIoError, "disk full"});
  EXPECT_EQ(WriteCsvFile(path, {{"a"}}).code(), StatusCode::kIoError);
  FaultInjection::Reset();
  EXPECT_TRUE(WriteCsvFile(path, {{"a"}}).ok());
}

TEST(CsvTest, MissingFileIsIoError) {
  auto rows = ReadCsvFile("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, QuotedEmbeddedNewlinesSpanRows) {
  // A quoted field may span several physical lines; the rows that follow
  // it must still parse at their own record boundaries.
  auto rows = ParseCsv("id,note\n1,\"line one\nline two\nline three\"\n2,ok\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[1][0], "1");
  EXPECT_EQ((*rows)[1][1], "line one\nline two\nline three");
  EXPECT_EQ((*rows)[2], (std::vector<std::string>{"2", "ok"}));
}

TEST(CsvTest, CrLfInsideQuotesIsPreserved) {
  // Outside quotes CR is record-terminator fluff; inside quotes it is data.
  auto rows = ParseCsv("\"a\r\nb\",c\r\nd,e\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0], "a\r\nb");
  EXPECT_EQ((*rows)[0][1], "c");
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"d", "e"}));
}

TEST(CsvTest, TrailingUnterminatedQuoteFails) {
  // Good rows before the bad one don't rescue the parse: the whole
  // document is rejected with a ParseError status.
  auto broken = ParseCsv("a,b\nc,\"unclosed\nstill going");
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.status().code(), StatusCode::kParseError);
  // A quote opening in the middle of an unquoted field is also an error.
  EXPECT_FALSE(ParseCsv("ab\"c,d\n").ok());
}

TEST(CsvTest, QuoteClosedAtEofParses) {
  // Closing quote at end-of-input with no trailing newline still yields
  // the final row.
  auto rows = ParseCsv("x,\"y\nz\"");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"x", "y\nz"}));
}

TEST(CsvTest, EmbeddedNewlineFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/vl_csv_newline_test.csv";
  std::vector<std::vector<std::string>> rows{{"name", "addr"},
                                             {"ACME", "1 Main St\nSuite 2"},
                                             {"Bob \"Junior\"", "line\r\nbreak"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, rows);
  std::remove(path.c_str());
}

TEST(CsvTest, EncodeRoundTrip) {
  std::vector<std::string> fields{"plain", "with,comma", "with\"quote",
                                  "with\nnewline", ""};
  std::string line = EncodeCsvRow(fields);
  auto rows = ParseCsv(line + "\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], fields);
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/vl_csv_test.csv";
  std::vector<std::vector<std::string>> rows{{"x", "1"}, {"y", "2,3"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, rows);
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/definitely/not.csv").ok());
}

}  // namespace
}  // namespace vadalink
