// Sorted-neighborhood blocking, DOT export, and parser robustness on
// adversarial inputs.
#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "common/rng.h"
#include "datalog/parser.h"
#include "graph/dot_export.h"
#include "linkage/sorted_neighborhood.h"
#include "linkage/token_blocking.h"

namespace vadalink {
namespace {

// ---- sorted neighborhood --------------------------------------------------------

graph::PropertyGraph Persons(const std::vector<const char*>& names) {
  graph::PropertyGraph g;
  for (const char* name : names) {
    auto n = g.AddNode("Person");
    g.SetNodeProperty(n, "last_name", name);
  }
  return g;
}

TEST(SortedNeighborhoodTest, WindowPairsAdjacentKeys) {
  auto g = Persons({"rossi", "russo", "bianchi", "rosso"});
  linkage::SortedNeighborhoodConfig cfg;
  cfg.keys = {"last_name"};
  cfg.window = 2;  // only direct neighbours in sort order
  auto pairs = linkage::SortedNeighborhoodPairs(g, {0, 1, 2, 3}, cfg);
  // Sorted: bianchi(2), rossi(0), rosso(3), russo(1) -> 3 adjacent pairs.
  ASSERT_EQ(pairs.size(), 3u);
  std::set<std::pair<graph::NodeId, graph::NodeId>> set(pairs.begin(),
                                                        pairs.end());
  EXPECT_TRUE(set.count({2, 0}));
  EXPECT_TRUE(set.count({0, 3}));
  EXPECT_TRUE(set.count({3, 1}));
}

TEST(SortedNeighborhoodTest, WindowCoversAllPairsWhenLarge) {
  auto g = Persons({"a", "b", "c", "d", "e"});
  linkage::SortedNeighborhoodConfig cfg;
  cfg.keys = {"last_name"};
  cfg.window = 100;
  auto pairs = linkage::SortedNeighborhoodPairs(g, {0, 1, 2, 3, 4}, cfg);
  EXPECT_EQ(pairs.size(), 10u);  // C(5,2)
}

TEST(SortedNeighborhoodTest, SuffixTypoSurvivesSorting) {
  // "martinelli" vs "martinellj": adjacent in sort order, so a window of 2
  // catches them — the advantage over exact hash blocking.
  auto g = Persons({"martinelli", "zzz", "aaa", "martinellj"});
  linkage::SortedNeighborhoodConfig cfg;
  cfg.keys = {"last_name"};
  cfg.window = 2;
  auto pairs = linkage::SortedNeighborhoodPairs(g, {0, 1, 2, 3}, cfg);
  bool found = false;
  for (auto& [a, b] : pairs) {
    if ((a == 0 && b == 3) || (a == 3 && b == 0)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SortedNeighborhoodTest, CaseInsensitiveKey) {
  auto g = Persons({"ROSSI", "rossi"});
  linkage::SortedNeighborhoodConfig cfg;
  cfg.keys = {"last_name"};
  EXPECT_EQ(linkage::SortKeyOf(g, 0, cfg), linkage::SortKeyOf(g, 1, cfg));
}

TEST(SortedNeighborhoodTest, DegenerateInputs) {
  auto g = Persons({"x"});
  linkage::SortedNeighborhoodConfig cfg;
  cfg.keys = {"last_name"};
  EXPECT_TRUE(linkage::SortedNeighborhoodPairs(g, {0}, cfg).empty());
  cfg.window = 0;
  EXPECT_TRUE(linkage::SortedNeighborhoodPairs(g, {0}, cfg).empty());
}

// ---- DOT export -------------------------------------------------------------------

TEST(DotExportTest, RendersNodesAndEdges) {
  graph::PropertyGraph g;
  auto p = g.AddNode("Person");
  g.SetNodeProperty(p, "name", "P1");
  auto c = g.AddNode("Company");
  g.SetNodeProperty(c, "name", "Acme \"Inc\"");
  auto e = g.AddEdge(p, c, "Shareholding").value();
  g.SetEdgeProperty(e, "w", 0.5);
  auto pred = g.AddEdge(p, c, "Control").value();
  g.SetEdgeProperty(pred, "predicted", true);

  std::string dot = graph::ToDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);      // person
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);  // company
  EXPECT_NE(dot.find("Acme \\\"Inc\\\""), std::string::npos);
  EXPECT_NE(dot.find("Shareholding 0.5"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);   // predicted
}

TEST(DotExportTest, WritesFile) {
  graph::PropertyGraph g;
  g.AddNode("Company");
  std::string path = ::testing::TempDir() + "/vl_test.dot";
  ASSERT_TRUE(graph::WriteDotFile(g, path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("digraph"), std::string::npos);
}


// ---- token blocking -------------------------------------------------------------

TEST(TokenBlockingTest, TokenizeSplitsAndLowercases) {
  auto t = linkage::TokenizeKey("Tecno-Gamma  SRL 42", true);
  EXPECT_EQ(t, (std::vector<std::string>{"tecno", "gamma", "srl", "42"}));
  auto keep = linkage::TokenizeKey("AbC", false);
  EXPECT_EQ(keep, (std::vector<std::string>{"AbC"}));
}

graph::PropertyGraph Companies(const std::vector<const char*>& names) {
  graph::PropertyGraph g;
  for (const char* name : names) {
    auto n = g.AddNode("Company");
    g.SetNodeProperty(n, "name", name);
  }
  return g;
}

TEST(TokenBlockingTest, RarestTokenGroupsVariants) {
  // "SRL" is a stopword (appears everywhere); the distinctive stems group
  // the two Tecnofoo records together.
  auto g = Companies({"Tecnofoo SRL", "Tecnofoo Holding SRL", "Gamma SRL",
                      "Delta SRL", "Omega SRL"});
  linkage::TokenBlockingConfig cfg;
  cfg.stopword_fraction = 0.5;
  auto blocks = linkage::TokenBlocks(g, {0, 1, 2, 3, 4}, cfg);
  bool together = false;
  for (const auto& b : blocks) {
    std::set<graph::NodeId> s(b.begin(), b.end());
    if (s.count(0) && s.count(1)) together = true;
    EXPECT_FALSE(s.count(2) && s.count(3));  // distinct stems stay apart
  }
  EXPECT_TRUE(together);
}

TEST(TokenBlockingTest, AllNodesCovered) {
  auto g = Companies({"A B", "C D", "", "E"});
  linkage::TokenBlockingConfig cfg;
  auto blocks = linkage::TokenBlocks(g, {0, 1, 2, 3}, cfg);
  std::set<graph::NodeId> covered;
  for (const auto& b : blocks) covered.insert(b.begin(), b.end());
  EXPECT_EQ(covered.size(), 4u);  // including the empty-name singleton
}

TEST(TokenBlockingTest, StopwordFractionDisabled) {
  auto g = Companies({"X SRL", "Y SRL"});
  linkage::TokenBlockingConfig cfg;
  cfg.stopword_fraction = 1.0;  // keep all tokens
  auto blocks = linkage::TokenBlocks(g, {0, 1}, cfg);
  // "srl" keeps both nodes together; "x"/"y" give singleton blocks.
  bool together = false;
  for (const auto& b : blocks) {
    if (b.size() == 2u) together = true;
  }
  EXPECT_TRUE(together);
}

// ---- parser robustness ---------------------------------------------------------------

TEST(ParserRobustnessTest, RandomGarbageNeverCrashes) {
  Rng rng(4242);
  const char alphabet[] =
      "abcXYZ01().,->=<>!#\"% \n\tmsum_@";
  for (int trial = 0; trial < 500; ++trial) {
    std::string src;
    size_t len = rng.UniformU64(120);
    for (size_t i = 0; i < len; ++i) {
      src += alphabet[rng.UniformU64(sizeof(alphabet) - 1)];
    }
    datalog::Catalog catalog;
    auto result = datalog::ParseProgram(src, &catalog);
    // Either parses or reports a structured error; never crashes.
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(ParserRobustnessTest, DeeplyNestedExpressions) {
  std::string src = "p(1).\np(X), Y = ";
  for (int i = 0; i < 200; ++i) src += "(";
  src += "X";
  for (int i = 0; i < 200; ++i) src += ")";
  src += " -> q(Y).";
  datalog::Catalog catalog;
  auto result = datalog::ParseProgram(src, &catalog);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST(ParserRobustnessTest, VeryLongIdentifiers) {
  std::string name(5000, 'a');
  std::string src = name + "(1).";
  datalog::Catalog catalog;
  auto result = datalog::ParseProgram(src, &catalog);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->facts.size(), 1u);
}

}  // namespace
}  // namespace vadalink
