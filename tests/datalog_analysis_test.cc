// datalog/analysis: the static program analyzer — diagnostic codes, rule
// indices and source spans are a stable contract (tools/lint_schema.json),
// so these tests pin them exactly.
#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/analysis/analyzer.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "datalog/stratify.h"
#include "datalog/warded.h"

namespace vadalink::datalog::analysis {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  Catalog catalog;

  AnalysisReport Analyze(const std::string& src) {
    auto program = ParseProgram(src, &catalog);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    program_ = std::move(program).value();
    return AnalyzeProgram(program_, catalog);
  }

  static const Diagnostic* Find(const AnalysisReport& report,
                                const std::string& code) {
    for (const Diagnostic& d : report.diagnostics) {
      if (d.code == code) return &d;
    }
    return nullptr;
  }

  static size_t CountCode(const AnalysisReport& report,
                          const std::string& code) {
    return static_cast<size_t>(std::count_if(
        report.diagnostics.begin(), report.diagnostics.end(),
        [&](const Diagnostic& d) { return d.code == code; }));
  }

  Program program_;
};

// ---- wardedness (VL01x) ---------------------------------------------------

TEST_F(AnalysisTest, DangerousJoinAcrossTwoExistentialsIsVL010) {
  auto report = Analyze(R"(
    a(1).
    a(X) -> q(X, N).
    a(X) -> s(X, M).
    q(X, N), s(Y, M) -> t(N, M).
  )");
  ASSERT_TRUE(report.has_errors());
  const Diagnostic* d = Find(report, "VL010");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->rule_index, 2u);  // the join rule
  EXPECT_EQ(d->predicate, "t");
  EXPECT_NE(d->message.find("dangerous variables N, M"), std::string::npos);
  EXPECT_TRUE(d->span.known());
  EXPECT_FALSE(d->hint.empty());
}

TEST_F(AnalysisTest, WardSharingDangerousVariableIsVL011) {
  auto report = Analyze(R"(
    a(1).
    a(X) -> q(X, N).
    a(Y) -> s(Y, N).
    q(X, N), s(Y, N) -> t(X, N).
  )");
  ASSERT_TRUE(report.has_errors());
  const Diagnostic* d = Find(report, "VL011");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->rule_index, 2u);
  // The message names the atom the ward illegally shares N with.
  EXPECT_NE(d->message.find("N"), std::string::npos);
  EXPECT_TRUE(d->span.known());
}

TEST_F(AnalysisTest, WardedProgramHasNoWardDiagnostics) {
  auto report = Analyze(R"(
    person(1).
    person(X) -> hascompany(X, C).
    hascompany(X, C), person(X) -> owns(X, C).
  )");
  EXPECT_EQ(Find(report, "VL010"), nullptr);
  EXPECT_EQ(Find(report, "VL011"), nullptr);
  EXPECT_FALSE(report.has_errors());
}

// ---- stratification (VL02x) ----------------------------------------------

TEST_F(AnalysisTest, NegationThroughMutualRecursionIsVL020) {
  auto report = Analyze(R"(
    b(1).
    b(X), not q(X) -> p(X).
    p(X) -> q(X).
  )");
  ASSERT_TRUE(report.has_errors());
  const Diagnostic* d = Find(report, "VL020");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->rule_index, 0u);  // the rule holding 'not q'
  EXPECT_EQ(d->predicate, "q");
  // The cycle is spelled out, closed on its first predicate.
  EXPECT_NE(d->message.find("->"), std::string::npos);
  EXPECT_NE(d->message.find("q"), std::string::npos);
  EXPECT_NE(d->message.find("p"), std::string::npos);
  EXPECT_TRUE(d->span.known());
}

TEST_F(AnalysisTest, NegationBetweenTwoSccsIsStratifiable) {
  // Two recursive components with negation only on the bridge between
  // them: stratifiable, so no VL020.
  auto report = Analyze(R"(
    e(1,2).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
    e(X,Y), not tc(Y,X) -> oneway(X,Y).
    oneway(X,Y) -> chain(X,Y).
    chain(X,Y), oneway(Y,Z) -> chain(X,Z).
  )");
  EXPECT_EQ(Find(report, "VL020"), nullptr);
  EXPECT_FALSE(report.has_errors());
}

TEST_F(AnalysisTest, AntiMonotoneAggregateGuardInSelfLoopIsVL021) {
  auto report = Analyze(R"(
    start(1). e(1,2). e(2,3).
    start(X) -> reach(X).
    reach(X), e(X,Y), C = mcount(<Y>), C < 10 -> reach(Y).
  )");
  const Diagnostic* d = Find(report, "VL021");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->rule_index, 1u);
  EXPECT_NE(d->message.find("mcount"), std::string::npos);
  EXPECT_NE(d->message.find("C"), std::string::npos);
  // A warning alone never fails the report.
  EXPECT_FALSE(report.has_errors());
}

TEST_F(AnalysisTest, MonotoneAggregateGuardInRecursionIsClean) {
  auto report = Analyze(R"(
    start(1). e(1,2).
    start(X) -> reach(X).
    reach(X), e(X,Y), C = mcount(<Y>), C >= 1 -> reach(Y).
  )");
  EXPECT_EQ(Find(report, "VL021"), nullptr);
}

TEST_F(AnalysisTest, AggregateOutsideRecursionIsNotVL021) {
  auto report = Analyze(R"(
    own(1, 2, 0.6).
    own(X, Y, W), S = msum(W, <X>), S < 0.5 -> minority(X, Y).
  )");
  EXPECT_EQ(Find(report, "VL021"), nullptr);
}

// ---- hygiene (VL03x) ------------------------------------------------------

TEST_F(AnalysisTest, UnusedPredicateIsVL030) {
  auto report = Analyze(R"(
    a(1).
    a(X) -> orphan(X).
    a(X) -> used(X).
    @output("used").
  )");
  const Diagnostic* d = Find(report, "VL030");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->predicate, "orphan");
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST_F(AnalysisTest, DeadRuleIsVL031) {
  auto report = Analyze(R"(
    a(1).
    a(X) -> dead_end(X).
    dead_end(X) -> cul_de_sac(X).
    a(X) -> live(X).
    @output("live").
  )");
  // Both rules on the dead chain are flagged; the live rule is not.
  EXPECT_EQ(CountCode(report, "VL031"), 2u);
  const Diagnostic* d = Find(report, "VL031");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->rule_index, 0u);
}

TEST_F(AnalysisTest, NoOutputsMeansNoDeadRuleLint) {
  auto report = Analyze(R"(
    a(1).
    a(X) -> b(X).
  )");
  EXPECT_EQ(Find(report, "VL031"), nullptr);
}

TEST_F(AnalysisTest, SingletonVariableIsVL032) {
  auto report = Analyze(R"(
    e(1, 2).
    e(X, Y) -> p(X).
  )");
  const Diagnostic* d = Find(report, "VL032");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->rule_index, 0u);
  EXPECT_NE(d->message.find("Y"), std::string::npos);
}

TEST_F(AnalysisTest, UnderscorePrefixSuppressesVL032) {
  auto report = Analyze(R"(
    e(1, 2).
    e(X, _Y) -> p(X).
  )");
  EXPECT_EQ(Find(report, "VL032"), nullptr);
}

TEST_F(AnalysisTest, ExistentialHeadVariableIsNotASingleton) {
  auto report = Analyze(R"(
    p(1).
    p(X) -> q(X, N).
  )");
  EXPECT_EQ(Find(report, "VL032"), nullptr);
}

TEST_F(AnalysisTest, ArityConflictIsVL033) {
  auto report = Analyze(R"(
    p(1, 2).
    p(X) -> q(X).
  )");
  const Diagnostic* d = Find(report, "VL033");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->predicate, "p");
  EXPECT_NE(d->message.find("arity 1"), std::string::npos);
  EXPECT_NE(d->message.find("arity 2"), std::string::npos);
  EXPECT_TRUE(report.has_errors());
}

TEST_F(AnalysisTest, ShadowedBuiltinPredicateIsVL034) {
  auto report = Analyze(R"(
    concat(1).
    concat(X) -> p(X).
  )");
  const Diagnostic* d = Find(report, "VL034");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->predicate, "concat");
  EXPECT_EQ(d->severity, Severity::kWarning);
}

// ---- programmatically built programs (parser never sees these) ------------

TEST_F(AnalysisTest, HeadlessRuleIsVL004) {
  Program program;
  Rule rule;
  rule.var_names = {"X"};
  Literal lit;
  lit.kind = Literal::Kind::kAtom;
  lit.atom.predicate = catalog.predicates.Intern("p");
  lit.atom.args = {Term::Var(0)};
  rule.body.push_back(lit);
  program.rules.push_back(rule);
  auto report = AnalyzeProgram(program, catalog);
  const Diagnostic* d = Find(report, "VL004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->rule_index, 0u);
  EXPECT_FALSE(d->span.known());  // synthesised rules have no position
}

TEST_F(AnalysisTest, VariableOnlyUnderNegationIsVL002) {
  Program program;
  Rule rule;
  rule.var_names = {"X"};
  Literal neg;
  neg.kind = Literal::Kind::kNegatedAtom;
  neg.atom.predicate = catalog.predicates.Intern("q");
  neg.atom.args = {Term::Var(0)};
  rule.body.push_back(neg);
  Atom head;
  head.predicate = catalog.predicates.Intern("p");
  head.args = {Term::Var(0)};
  rule.head.push_back(head);
  program.rules.push_back(rule);
  auto report = AnalyzeProgram(program, catalog);
  const Diagnostic* d = Find(report, "VL002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->predicate, "q");
}

TEST_F(AnalysisTest, UnboundComparisonVariableIsVL001) {
  Program program;
  Rule rule;
  rule.var_names = {"X", "Y"};
  Literal atom;
  atom.kind = Literal::Kind::kAtom;
  atom.atom.predicate = catalog.predicates.Intern("p");
  atom.atom.args = {Term::Var(0)};
  rule.body.push_back(atom);
  Literal cmp;
  cmp.kind = Literal::Kind::kComparison;
  cmp.cmp = CmpOp::kLt;
  cmp.lhs = Expr::Var(1);  // Y is never bound
  cmp.rhs = Expr::Const(Value::Int(3));
  rule.body.push_back(cmp);
  Atom head;
  head.predicate = catalog.predicates.Intern("q");
  head.args = {Term::Var(0)};
  rule.head.push_back(head);
  program.rules.push_back(rule);
  auto report = AnalyzeProgram(program, catalog);
  const Diagnostic* d = Find(report, "VL001");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("Y"), std::string::npos);
}

// ---- report rendering -----------------------------------------------------

TEST_F(AnalysisTest, RenderCarriesCodeRuleAndPosition) {
  auto report = Analyze(R"(
    b(1).
    b(X), not q(X) -> p(X).
    p(X) -> q(X).
  )");
  std::string text = report.Render();
  EXPECT_NE(text.find("error[VL020] rule 0"), std::string::npos);
  EXPECT_NE(text.find("line 3"), std::string::npos);
  EXPECT_NE(text.find("hint:"), std::string::npos);
}

TEST_F(AnalysisTest, JsonIsByteStableAcrossRuns) {
  const std::string src = R"(
    p(1, 2).
    p(X) -> q(X).
  )";
  auto r1 = Analyze(src);
  Catalog cat2;
  auto program2 = ParseProgram(src, &cat2);
  ASSERT_TRUE(program2.ok());
  auto r2 = AnalyzeProgram(*program2, cat2);
  EXPECT_EQ(r1.ToJson("x.vada"), r2.ToJson("x.vada"));
  EXPECT_NE(r1.ToJson("x.vada").find("\"schema_version\":1"),
            std::string::npos);
}

TEST_F(AnalysisTest, CleanProgramHasEmptyReport) {
  auto report = Analyze(R"(
    e(1,2).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
    @output("tc").
  )");
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.Render(), "");
}

// ---- engine pre-flight ----------------------------------------------------

class PreflightTest : public ::testing::Test {
 protected:
  Catalog catalog;
  Database db{&catalog};
};

TEST_F(PreflightTest, UnwardedProgramFailsRunNamingTheRule) {
  auto program = ParseProgram(R"(
    a(1).
    a(X) -> q(X, N).
    a(X) -> s(X, M).
    q(X, N), s(Y, M) -> t(N, M).
  )", &catalog);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Engine engine(&db);
  Status st = engine.Run(*program);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("pre-flight"), std::string::npos);
  EXPECT_NE(st.message().find("VL010"), std::string::npos);
  EXPECT_NE(st.message().find("rule 2"), std::string::npos);
}

TEST_F(PreflightTest, UnstratifiableProgramFailsRunNamingTheCycle) {
  auto program = ParseProgram(R"(
    b(1).
    b(X), not q(X) -> p(X).
    p(X) -> q(X).
  )", &catalog);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Engine engine(&db);
  Status st = engine.Run(*program);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("VL020"), std::string::npos);
  EXPECT_NE(st.message().find("->"), std::string::npos);
}

TEST_F(PreflightTest, PreflightOffDefersToRuntimeChecks) {
  auto program = ParseProgram(R"(
    p(1, 2).
    p(X) -> q(X).
  )", &catalog);
  ASSERT_TRUE(program.ok());
  EngineOptions opts;
  opts.preflight = false;
  Engine engine(&db, opts);
  Status st = engine.Run(*program);
  // Still rejected, but by the runtime arity check, not the analyzer.
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message().find("pre-flight"), std::string::npos);
}

TEST_F(PreflightTest, WarningsDoNotBlockRunAndReachMetrics) {
  auto program = ParseProgram(R"(
    e(1, 2).
    e(X, Y) -> p(X).
  )", &catalog);
  ASSERT_TRUE(program.ok());
  MetricsRegistry metrics;
  EngineOptions opts;
  opts.metrics = &metrics;
  Engine engine(&db, opts);
  ASSERT_TRUE(engine.Run(*program).ok());
  // The singleton-variable warning (VL032) was counted, not fatal.
  EXPECT_GE(metrics.CounterValue("analysis.warnings"), 1u);
  EXPECT_EQ(metrics.CounterValue("analysis.diag.VL032"), 1u);
}

}  // namespace
}  // namespace vadalink::datalog::analysis
