// core/: link-prediction evaluation metrics, including an end-to-end
// precision/recall run against the simulator's planted ground truth.
#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "core/vada_link.h"
#include "gen/register_simulator.h"

namespace vadalink::core {
namespace {

TEST(EvaluationTest, PerfectPrediction) {
  std::set<LinkPair> truth{{0, 1}, {2, 3}};
  auto res = EvaluateLinks(truth, truth);
  EXPECT_EQ(res.true_positives, 2u);
  EXPECT_EQ(res.false_positives, 0u);
  EXPECT_EQ(res.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(res.precision, 1.0);
  EXPECT_DOUBLE_EQ(res.recall, 1.0);
  EXPECT_DOUBLE_EQ(res.f1, 1.0);
}

TEST(EvaluationTest, MixedPrediction) {
  std::set<LinkPair> predicted{{0, 1}, {4, 5}};   // one right, one wrong
  std::set<LinkPair> truth{{0, 1}, {2, 3}};       // one missed
  auto res = EvaluateLinks(predicted, truth);
  EXPECT_EQ(res.true_positives, 1u);
  EXPECT_EQ(res.false_positives, 1u);
  EXPECT_EQ(res.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(res.precision, 0.5);
  EXPECT_DOUBLE_EQ(res.recall, 0.5);
  EXPECT_DOUBLE_EQ(res.f1, 0.5);
}

TEST(EvaluationTest, EmptyEdgeCases) {
  auto res = EvaluateLinks({}, {});
  EXPECT_DOUBLE_EQ(res.precision, 1.0);
  EXPECT_DOUBLE_EQ(res.recall, 1.0);
  res = EvaluateLinks({}, {{0, 1}});
  EXPECT_DOUBLE_EQ(res.precision, 1.0);
  EXPECT_DOUBLE_EQ(res.recall, 0.0);
  EXPECT_DOUBLE_EQ(res.f1, 0.0);
  res = EvaluateLinks({{0, 1}}, {});
  EXPECT_DOUBLE_EQ(res.precision, 0.0);
  EXPECT_DOUBLE_EQ(res.recall, 1.0);
}

TEST(EvaluationTest, MakeLinkPairNormalises) {
  EXPECT_EQ(MakeLinkPair(5, 2), (LinkPair{2, 5}));
  EXPECT_EQ(MakeLinkPair(2, 5), (LinkPair{2, 5}));
}

TEST(EvaluationTest, CollectEdgesFiltersLabels) {
  graph::PropertyGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode("Person");
  g.AddEdge(0, 1, "PartnerOf").value();
  g.AddEdge(2, 3, "Shareholding").value();
  g.AddEdge(3, 2, "SiblingOf").value();
  auto links = CollectEdges(g, {"PartnerOf", "SiblingOf"});
  EXPECT_EQ(links, (std::set<LinkPair>{{0, 1}, {2, 3}}));
}

TEST(EvaluationTest, EndToEndFamilyDetectionQuality) {
  gen::RegisterConfig cfg;
  cfg.persons = 300;
  cfg.companies = 200;
  cfg.typo_rate = 0.02;
  cfg.seed = 12;
  auto data = gen::GenerateRegister(cfg);

  AugmentConfig acfg;
  acfg.use_embedding = false;
  acfg.max_rounds = 1;
  auto vl = MakeDefaultVadaLink(acfg);
  ASSERT_TRUE(vl.Augment(&data.graph).ok());

  std::set<LinkPair> truth;
  for (const auto& link : data.true_family_links) {
    truth.insert(MakeLinkPair(link.x, link.y));
  }
  auto predicted =
      CollectEdges(data.graph, {"PartnerOf", "ParentOf", "SiblingOf"});
  auto res = EvaluateLinks(predicted, truth);
  // The blocked Bayesian detector recovers most planted links; precision
  // is diluted by same-surname/same-city coincidences (false positives by
  // construction of the simulator's small name pools).
  EXPECT_GT(res.recall, 0.85) << res.ToString();
  EXPECT_GT(res.precision, 0.3) << res.ToString();
}

}  // namespace
}  // namespace vadalink::core
