// Company-graph fixtures reconstructing the paper's running examples
// (Figure 1 / Example 3.1 and Figure 2), shared by the company, core and
// datalog differential tests.
#pragma once

#include <string>
#include <unordered_map>

#include "graph/property_graph.h"

namespace vadalink::testing {

/// Named-node company graph builder.
class CompanyGraphBuilder {
 public:
  graph::NodeId Person(const std::string& name) {
    return Node(name, "Person");
  }
  graph::NodeId Company(const std::string& name) {
    return Node(name, "Company");
  }
  void Own(const std::string& src, const std::string& dst, double w) {
    auto e = g_.AddEdge(ids_.at(src), ids_.at(dst), "Shareholding");
    g_.SetEdgeProperty(e.value(), "w", w);
  }
  graph::NodeId id(const std::string& name) const { return ids_.at(name); }
  graph::PropertyGraph& graph() { return g_; }

 private:
  graph::NodeId Node(const std::string& name, const char* label) {
    auto n = g_.AddNode(label);
    g_.SetNodeProperty(n, "name", name);
    ids_[name] = n;
    return n;
  }
  graph::PropertyGraph g_;
  std::unordered_map<std::string, graph::NodeId> ids_;
};

/// Figure 1 narrative: P1 controls C, D, E (jointly with D), F (via D+E);
/// P2 controls G, H, I; L is controlled by neither alone but by {P1, P2}
/// together (0.2 via F + 0.4 via I = 0.6); G and I are closely linked via
/// P2.
inline CompanyGraphBuilder Figure1() {
  CompanyGraphBuilder b;
  b.Person("P1");
  b.Person("P2");
  for (const char* c : {"C", "D", "E", "F", "G", "H", "I", "L"}) {
    b.Company(c);
  }
  b.Own("P1", "C", 0.8);
  b.Own("P1", "D", 0.75);
  b.Own("D", "E", 0.4);
  b.Own("P1", "E", 0.2);
  b.Own("D", "F", 0.25);
  b.Own("E", "F", 0.3);
  b.Own("F", "L", 0.2);
  b.Own("P2", "G", 0.6);
  b.Own("G", "H", 0.6);
  b.Own("H", "I", 0.4);
  b.Own("P2", "I", 0.5);
  b.Own("I", "L", 0.4);
  return b;
}

/// Figure 2 narrative: P2 controls C7 via C5 and C6 jointly; P3 owns 40%
/// of C4 and 45% of C6 (close link by common third party); C4 accumulates
/// exactly 20% of C7 (close link by threshold).
inline CompanyGraphBuilder Figure2() {
  CompanyGraphBuilder b;
  b.Person("P1");
  b.Person("P2");
  b.Person("P3");
  for (const char* c : {"C4", "C5", "C6", "C7"}) b.Company(c);
  b.Own("P1", "C4", 0.6);
  b.Own("P3", "C4", 0.4);
  b.Own("P2", "C5", 0.6);
  b.Own("P2", "C6", 0.55);
  b.Own("P3", "C6", 0.45);
  b.Own("C5", "C7", 0.3);
  b.Own("C6", "C7", 0.3);
  b.Own("C4", "C7", 0.2);
  return b;
}

}  // namespace vadalink::testing
