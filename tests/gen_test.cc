// gen/: Barabási-Albert generator, name pools, register simulator.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "company/company_graph.h"
#include "gen/barabasi_albert.h"
#include "gen/name_pools.h"
#include "gen/register_simulator.h"
#include "graph/graph_algorithms.h"

namespace vadalink::gen {
namespace {

// ---- Barabási-Albert -----------------------------------------------------------

TEST(BarabasiAlbertTest, SizeMatchesConfig) {
  BarabasiAlbertConfig cfg;
  cfg.nodes = 500;
  cfg.edges_per_node = 2;
  auto g = GenerateBarabasiAlbert(cfg);
  EXPECT_EQ(g.node_count(), 500u);
  // m edges per node beyond the seed, approximately.
  EXPECT_GT(g.edge_count(), 900u);
  EXPECT_LE(g.edge_count(), 1000u);
}

TEST(BarabasiAlbertTest, Deterministic) {
  BarabasiAlbertConfig cfg;
  cfg.nodes = 200;
  cfg.seed = 42;
  auto a = GenerateBarabasiAlbert(cfg);
  auto b = GenerateBarabasiAlbert(cfg);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  bool same = true;
  a.ForEachEdge([&](graph::EdgeId e) {
    if (a.edge_src(e) != b.edge_src(e) || a.edge_dst(e) != b.edge_dst(e)) {
      same = false;
    }
  });
  EXPECT_TRUE(same);
}

TEST(BarabasiAlbertTest, ScaleFreeHubsEmerge) {
  BarabasiAlbertConfig cfg;
  cfg.nodes = 2000;
  cfg.edges_per_node = 2;
  auto g = GenerateBarabasiAlbert(cfg);
  auto stats = graph::ComputeGraphStats(g);
  // Preferential attachment must produce hubs far above the mean degree.
  EXPECT_GT(stats.max_in_degree + stats.max_out_degree, 40u);
  // MLE power-law exponent should be in the BA ballpark (~3, generously).
  EXPECT_GT(stats.power_law_alpha, 1.8);
  EXPECT_LT(stats.power_law_alpha, 4.5);
}

TEST(BarabasiAlbertTest, FeaturesAttached) {
  BarabasiAlbertConfig cfg;
  cfg.nodes = 10;
  cfg.feature_count = 6;
  cfg.feature_domain = 5;
  auto g = GenerateBarabasiAlbert(cfg);
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    for (int f = 1; f <= 6; ++f) {
      const auto& v = g.GetNodeProperty(n, "f" + std::to_string(f));
      ASSERT_TRUE(v.is_int());
      EXPECT_GE(v.AsInt(), 0);
      EXPECT_LT(v.AsInt(), 5);
    }
  }
}

TEST(BarabasiAlbertTest, WeightsInShareRange) {
  BarabasiAlbertConfig cfg;
  cfg.nodes = 100;
  auto g = GenerateBarabasiAlbert(cfg);
  g.ForEachEdge([&](graph::EdgeId e) {
    double w = g.GetEdgeProperty(e, "w").AsDouble();
    EXPECT_GT(w, 0.0);
    EXPECT_LT(w, 1.0);
  });
}

TEST(BarabasiAlbertTest, DensityKnob) {
  BarabasiAlbertConfig sparse;
  sparse.nodes = 300;
  sparse.edges_per_node = 1;
  BarabasiAlbertConfig dense;
  dense.nodes = 300;
  dense.edges_per_node = 8;
  EXPECT_GT(GenerateBarabasiAlbert(dense).edge_count(),
            3 * GenerateBarabasiAlbert(sparse).edge_count());
}

// ---- name pools -----------------------------------------------------------------

TEST(NamePoolsTest, PoolsNonEmptyAndDistinct) {
  EXPECT_GE(NamePools::MaleFirstNames().size(), 30u);
  EXPECT_GE(NamePools::FemaleFirstNames().size(), 30u);
  EXPECT_GE(NamePools::Surnames().size(), 60u);
  EXPECT_GE(NamePools::Cities().size(), 30u);
  std::set<std::string> surnames(NamePools::Surnames().begin(),
                                 NamePools::Surnames().end());
  EXPECT_EQ(surnames.size(), NamePools::Surnames().size());
}

TEST(NamePoolsTest, CityDistributionSkewed) {
  Rng rng(7);
  std::unordered_map<std::string, size_t> counts;
  for (int i = 0; i < 5000; ++i) ++counts[NamePools::SampleCity(&rng)];
  // The top city should be sampled far more often than the median one.
  size_t max_count = 0;
  for (auto& [city, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 5000u / 10);
}

TEST(NamePoolsTest, CorruptChangesString) {
  Rng rng(13);
  size_t changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (NamePools::Corrupt("Martinelli", &rng) != "Martinelli") ++changed;
  }
  EXPECT_GT(changed, 40u);
}

// ---- register simulator ------------------------------------------------------------

TEST(RegisterSimulatorTest, CountsRespectConfig) {
  RegisterConfig cfg;
  cfg.persons = 300;
  cfg.companies = 200;
  auto data = GenerateRegister(cfg);
  EXPECT_EQ(data.persons.size(), 300u);
  EXPECT_EQ(data.companies.size(), 200u);
  EXPECT_EQ(data.graph.node_count(), 500u);
  EXPECT_GT(data.graph.edge_count(), 100u);
}

TEST(RegisterSimulatorTest, IsValidCompanyGraph) {
  auto data = GenerateRegister(RegisterConfig{});
  auto cg = company::CompanyGraph::FromPropertyGraph(data.graph);
  ASSERT_TRUE(cg.ok()) << cg.status().ToString();
  // Incoming shares per company must sum to <= 1 (plus tiny numeric slack).
  for (graph::NodeId c : cg->companies()) {
    double total = 0.0;
    for (const auto& s : cg->owners(c)) total += s.w;
    EXPECT_LE(total, 1.0 + 1e-9) << "company " << c;
  }
}

TEST(RegisterSimulatorTest, PersonsHaveSixFeatures) {
  RegisterConfig cfg;
  cfg.persons = 50;
  cfg.companies = 30;
  auto data = GenerateRegister(cfg);
  for (graph::NodeId p : data.persons) {
    for (const char* key : {"first_name", "last_name", "birth_city", "sex",
                            "city"}) {
      EXPECT_TRUE(data.graph.GetNodeProperty(p, key).is_string()) << key;
    }
    EXPECT_TRUE(data.graph.GetNodeProperty(p, "birth_year").is_int());
  }
}

TEST(RegisterSimulatorTest, GroundTruthLinksAreConsistent) {
  RegisterConfig cfg;
  cfg.persons = 400;
  cfg.companies = 100;
  auto data = GenerateRegister(cfg);
  EXPECT_FALSE(data.true_family_links.empty());
  for (const FamilyLink& link : data.true_family_links) {
    EXPECT_LT(link.x, data.graph.node_count());
    EXPECT_LT(link.y, data.graph.node_count());
    EXPECT_EQ(data.graph.node_label(link.x), "Person");
    EXPECT_EQ(data.graph.node_label(link.y), "Person");
    EXPECT_TRUE(link.kind == "PartnerOf" || link.kind == "ParentOf" ||
                link.kind == "SiblingOf");
    // Partners differ by < 10 years; parents by >= 18.
    int64_t bx = data.graph.GetNodeProperty(link.x, "birth_year").AsInt();
    int64_t by = data.graph.GetNodeProperty(link.y, "birth_year").AsInt();
    if (link.kind == "ParentOf") {
      EXPECT_GE(std::abs(bx - by), 18);
    }
  }
}

TEST(RegisterSimulatorTest, FamiliesShareSurnameMostly) {
  RegisterConfig cfg;
  cfg.persons = 400;
  cfg.companies = 100;
  cfg.typo_rate = 0.0;
  auto data = GenerateRegister(cfg);
  for (const FamilyLink& link : data.true_family_links) {
    EXPECT_EQ(data.graph.GetNodeProperty(link.x, "last_name").AsString(),
              data.graph.GetNodeProperty(link.y, "last_name").AsString());
  }
}

TEST(RegisterSimulatorTest, Deterministic) {
  RegisterConfig cfg;
  cfg.persons = 100;
  cfg.companies = 80;
  auto a = GenerateRegister(cfg);
  auto b = GenerateRegister(cfg);
  EXPECT_EQ(a.graph.node_count(), b.graph.node_count());
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  EXPECT_EQ(a.true_family_links.size(), b.true_family_links.size());
}

TEST(RegisterSimulatorTest, RegisterLikeTopology) {
  // Matches the Section 2 profile qualitatively: low average degree, tiny
  // SCCs, hubs, near-zero clustering coefficient.
  RegisterConfig cfg;
  cfg.persons = 2000;
  cfg.companies = 1500;
  auto data = GenerateRegister(cfg);
  auto stats = graph::ComputeGraphStats(data.graph);
  EXPECT_LT(stats.avg_out_degree, 3.0);
  EXPECT_LT(stats.largest_scc, 20u);
  EXPECT_LT(stats.clustering_coefficient, 0.1);
  EXPECT_GT(stats.max_in_degree, 10u);  // hub companies
}

}  // namespace
}  // namespace vadalink::gen
