// serve/: the TCP transport end to end — admission control and load
// shedding, deadline degradation over the wire, ingest visibility,
// malformed traffic, fault-injected transport, shutdown discipline.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "graph/property_graph.h"
#include "serve/client.h"
#include "serve/server.h"

namespace vadalink::serve {
namespace {

graph::PropertyGraph TinyRegister() {
  graph::PropertyGraph g;
  graph::NodeId p0 = g.AddNode("Person");
  graph::NodeId c1 = g.AddNode("Company");
  graph::NodeId c2 = g.AddNode("Company");
  auto share = [&](graph::NodeId s, graph::NodeId d, double w) {
    auto e = g.AddEdge(s, d, "Shareholding").value();
    g.SetEdgeProperty(e, "w", w);
  };
  share(p0, c1, 0.6);
  share(c1, c2, 0.8);
  return g;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjection::Reset(); }
  void TearDown() override {
    FaultInjection::Reset();
    if (server_) server_->Stop();
  }

  void StartServer(ServerOptions server_opts = {},
                   ServiceOptions service_opts = {}) {
    service_opts.enable_test_ops = true;
    server_opts.port = 0;  // ephemeral
    server_ = std::make_unique<Server>(service_opts, server_opts, &metrics_);
    ASSERT_TRUE(server_->Init(TinyRegister(), "").ok());
    ASSERT_TRUE(server_->Start().ok());
  }

  Client Connect() {
    auto c = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(c).value();
  }

  MetricsRegistry metrics_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, HealthAndKeyedQueriesOverTcp) {
  StartServer();
  Client c = Connect();
  auto health = c.Call("health", Json::MakeObject());
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_TRUE(health->Find("ok")->AsBool());
  EXPECT_EQ(health->Find("result")->Find("status")->AsString(), "serving");

  Json params = Json::MakeObject();
  params.Set("source", Json::Int(0));
  auto control = c.Call("control", params);
  ASSERT_TRUE(control.ok());
  ASSERT_TRUE(control->Find("ok")->AsBool()) << control->Dump();
  EXPECT_EQ(control->Find("result")->Find("count")->AsInt(), 2);

  auto cached = c.Call("control", params);
  ASSERT_TRUE(cached.ok());
  ASSERT_NE(cached->Find("cached"), nullptr);
}

TEST_F(ServerTest, DeterministicOverloadShedsWithRetryAfter) {
  ServerOptions opts;
  opts.max_inflight = 1;
  opts.queue_depth = 1;
  StartServer(opts);

  // Occupy the single worker...
  Client busy = Connect();
  Json sleep_params = Json::MakeObject();
  sleep_params.Set("ms", Json::Int(1500));
  ASSERT_TRUE(busy.SendLine(
      R"({"id":1,"op":"sleep","params":{"ms":1500}})").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...fill the queue depth of 1...
  Client waiter = Connect();
  ASSERT_TRUE(waiter.SendLine(
      R"({"id":1,"op":"sleep","params":{"ms":1}})").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...and the next request MUST shed, deterministically.
  Client shed = Connect();
  auto resp = shed.Call("health", Json::MakeObject());
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_FALSE(resp->Find("ok")->AsBool()) << resp->Dump();
  const Json* err = resp->Find("error");
  EXPECT_EQ(err->Find("code")->AsString(), "ResourceExhausted");
  ASSERT_NE(err->Find("retry_after_ms"), nullptr);
  EXPECT_GT(err->Find("retry_after_ms")->AsInt(), 0);

  // The shed connection is still healthy: once load clears, it is served.
  ASSERT_TRUE(busy.ReadLine().ok());    // sleeper finished
  ASSERT_TRUE(waiter.ReadLine().ok());  // queued request served
  auto after = shed.Call("health", Json::MakeObject());
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->Find("ok")->AsBool());
}

TEST_F(ServerTest, DeadlineBustedHotKeyServedStaleOverTcp) {
  StartServer();
  Client c = Connect();
  Json params = Json::MakeObject();
  params.Set("source", Json::Int(0));
  ASSERT_TRUE(c.Call("control", params).ok());  // warm the cache

  // Bump the version so the cached entry is no longer current.
  Json delta = Json::MakeObject();
  Json nodes = Json::MakeArray();
  Json node = Json::MakeObject();
  node.Set("label", Json::Str("Company"));
  nodes.Append(node);
  delta.Set("nodes", nodes);
  auto ing = c.Call("ingest", delta);
  ASSERT_TRUE(ing.ok());
  ASSERT_TRUE(ing->Find("ok")->AsBool()) << ing->Dump();

  // deadline_ms 0 = already expired at enqueue: hot key -> stale answer.
  auto resp = c.Call("control", params, /*deadline_ms=*/0);
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->Find("ok")->AsBool()) << resp->Dump();
  ASSERT_NE(resp->Find("stale"), nullptr);
  EXPECT_TRUE(resp->Find("stale")->AsBool());
  // A stale answer reports the current snapshot version; the version the
  // cached result was computed against rides along separately.
  EXPECT_EQ(resp->Find("graph_version")->AsInt(), 2);
  ASSERT_NE(resp->Find("computed_at_version"), nullptr);
  EXPECT_EQ(resp->Find("computed_at_version")->AsInt(), 1);

  // Cold key -> deterministic DeadlineExceeded.
  Json cold = Json::MakeObject();
  cold.Set("target", Json::Int(2));
  auto err = c.Call("ubo", cold, /*deadline_ms=*/0);
  ASSERT_TRUE(err.ok());
  ASSERT_FALSE(err->Find("ok")->AsBool());
  EXPECT_EQ(err->Find("error")->Find("code")->AsString(), "DeadlineExceeded");
}

TEST_F(ServerTest, MalformedLinesGetStructuredErrorsAndConnectionSurvives) {
  StartServer();
  Client c = Connect();
  ASSERT_TRUE(c.SendLine("this is not json").ok());
  auto resp = c.ReadLine();
  ASSERT_TRUE(resp.ok());
  auto v = Json::Parse(*resp);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->Find("ok")->AsBool());
  EXPECT_EQ(v->Find("error")->Find("code")->AsString(), "ParseError");
  EXPECT_TRUE(v->Find("id")->is_null());

  // Id recovery: malformed request (op missing) still echoes the id.
  ASSERT_TRUE(c.SendLine(R"({"id":42,"params":{}})").ok());
  auto resp2 = c.ReadLine();
  ASSERT_TRUE(resp2.ok());
  auto v2 = Json::Parse(*resp2);
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(v2->Find("ok")->AsBool());
  EXPECT_EQ(v2->Find("id")->AsInt(), 42);

  // The same connection still serves real requests afterwards.
  auto health = c.Call("health", Json::MakeObject());
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->Find("ok")->AsBool());
}

TEST_F(ServerTest, IngestVisibilityIsMonotonePerClient) {
  StartServer();
  Client c = Connect();
  int64_t last_version = 0;
  for (int i = 0; i < 5; ++i) {
    Json delta = Json::MakeObject();
    Json nodes = Json::MakeArray();
    Json node = Json::MakeObject();
    node.Set("label", Json::Str("Company"));
    nodes.Append(node);
    delta.Set("nodes", nodes);
    auto ing = c.Call("ingest", delta);
    ASSERT_TRUE(ing.ok());
    ASSERT_TRUE(ing->Find("ok")->AsBool());
    int64_t v = ing->Find("graph_version")->AsInt();
    EXPECT_GT(v, last_version);
    last_version = v;
    // A read after an acknowledged ingest sees at least that version.
    auto health = c.Call("health", Json::MakeObject());
    ASSERT_TRUE(health.ok());
    EXPECT_GE(health->Find("graph_version")->AsInt(), v);
  }
}

TEST_F(ServerTest, InjectedTransportFaultsAreContained) {
  StartServer();
  Client c = Connect();
  // serve.read: the poisoned request errors, the next one succeeds.
  FaultInjection::Arm("serve.read",
                      {StatusCode::kIoError, "read glitch", /*skip=*/0,
                       /*max_fires=*/1});
  auto poisoned = c.Call("health", Json::MakeObject());
  ASSERT_TRUE(poisoned.ok()) << poisoned.status().ToString();
  EXPECT_FALSE(poisoned->Find("ok")->AsBool());
  EXPECT_EQ(poisoned->Find("error")->Find("code")->AsString(), "IoError");
  FaultInjection::Reset();
  auto fine = c.Call("health", Json::MakeObject());
  ASSERT_TRUE(fine.ok());
  EXPECT_TRUE(fine->Find("ok")->AsBool());

  // serve.respond: the response is dropped and the connection dies, but
  // the server keeps serving new connections.
  auto doomed = Client::Connect("127.0.0.1", server_->port(),
                                /*read_timeout_ms=*/1000);
  ASSERT_TRUE(doomed.ok());
  FaultInjection::Arm("serve.respond",
                      {StatusCode::kIoError, "broken pipe", /*skip=*/0,
                       /*max_fires=*/1});
  auto dropped = doomed->Call("health", Json::MakeObject());
  EXPECT_FALSE(dropped.ok());  // timeout or closed connection
  FaultInjection::Reset();
  Client fresh = Connect();
  auto again = fresh.Call("health", Json::MakeObject());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->Find("ok")->AsBool());
}

TEST_F(ServerTest, IdleConnectionsAreReaped) {
  ServerOptions opts;
  opts.idle_timeout_ms = 200;
  StartServer(opts);
  Client c = Connect();
  ASSERT_TRUE(c.Call("health", Json::MakeObject()).ok());
  // Stay silent past the idle timeout: the server closes the connection.
  auto line = c.ReadLine();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kIoError);  // EOF
}

TEST_F(ServerTest, OverlongLinePoisonsOnlyThatConnection) {
  ServerOptions opts;
  opts.max_line_bytes = 1024;
  StartServer(opts);
  Client c = Connect();
  std::string huge(4096, 'x');  // no newline: accumulates past the cap
  ASSERT_TRUE(c.SendLine(huge).ok());
  auto resp = c.ReadLine();
  ASSERT_TRUE(resp.ok());
  auto v = Json::Parse(*resp);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->Find("ok")->AsBool());
  EXPECT_EQ(v->Find("error")->Find("code")->AsString(), "ResourceExhausted");

  Client fresh = Connect();
  EXPECT_TRUE(fresh.Call("health", Json::MakeObject()).ok());
}

TEST_F(ServerTest, ShutdownOpStopsTheServer) {
  StartServer();
  Client c = Connect();
  auto resp = c.Call("shutdown", Json::MakeObject());
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->Find("ok")->AsBool());
  // The ack is written before the flag is raised, so wait for it (the
  // CLI blocks on exactly this rendezvous).
  server_->WaitUntilShutdownRequested();
  EXPECT_TRUE(server_->shutdown_requested());
  server_->Stop();
  // New connections are refused after Stop.
  auto gone = Client::Connect("127.0.0.1", server_->port(), 500);
  EXPECT_FALSE(gone.ok());
}

TEST_F(ServerTest, StopAnswersQueuedRequestsWithCancelled) {
  ServerOptions opts;
  opts.max_inflight = 1;
  opts.queue_depth = 4;
  StartServer(opts);
  Client busy = Connect();
  ASSERT_TRUE(busy.SendLine(
      R"({"id":1,"op":"sleep","params":{"ms":5000}})").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Client queued = Connect();
  ASSERT_TRUE(queued.SendLine(
      R"({"id":2,"op":"health","params":{}})").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  server_->Stop();  // cancels the sleeper, answers the queued request

  // The queued request was answered, not silently dropped. Depending on
  // who wins the shutdown race it is either drained with Cancelled or
  // served by the worker after the cancelled sleeper returned — both are
  // exactly-one-response outcomes; a dropped line is the only failure.
  auto line = queued.ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  auto v = Json::Parse(*line);
  ASSERT_TRUE(v.ok());
  const Json* ok = v->Find("ok");
  ASSERT_NE(ok, nullptr);
  if (!ok->AsBool()) {
    const Json* err = v->Find("error");
    ASSERT_NE(err, nullptr) << v->Dump();
    EXPECT_EQ(err->Find("code")->AsString(), "Cancelled");
  }

  // The in-flight sleeper observed the cancellation mid-run: it must
  // answer Cancelled long before its 5 s nap would have ended.
  auto busy_line = busy.ReadLine();
  if (busy_line.ok()) {
    auto bv = Json::Parse(*busy_line);
    ASSERT_TRUE(bv.ok());
    EXPECT_FALSE(bv->Find("ok")->AsBool());
    const Json* berr = bv->Find("error");
    ASSERT_NE(berr, nullptr) << bv->Dump();
    EXPECT_EQ(berr->Find("code")->AsString(), "Cancelled");
  }
}

}  // namespace
}  // namespace vadalink::serve
