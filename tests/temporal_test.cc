// company/temporal + graph/pagerank.
#include <gtest/gtest.h>

#include "company/temporal.h"
#include "gen/evolution.h"
#include "graph/pagerank.h"
#include "tests/paper_fixtures.h"

namespace vadalink {
namespace {

using company::ControlEdgesByEntity;
using company::DiffControl;
using company::EntityPair;
using company::StableControlEdges;

// ---- temporal control ---------------------------------------------------------

TEST(TemporalControlTest, EntityKeysFallBackToNodeIds) {
  auto b = testing::Figure1();
  auto edges = ControlEdgesByEntity(b.graph());
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->size(), 8u);
  EXPECT_TRUE(edges->count({b.id("P1"), b.id("C")}));
}

TEST(TemporalControlTest, DiffGainedAndLost) {
  std::set<EntityPair> before{{1, 2}, {1, 3}};
  std::set<EntityPair> after{{1, 3}, {4, 5}};
  auto diff = DiffControl(before, after);
  EXPECT_EQ(diff.gained, (std::vector<EntityPair>{{4, 5}}));
  EXPECT_EQ(diff.lost, (std::vector<EntityPair>{{1, 2}}));
}

TEST(TemporalControlTest, StableAcrossYears) {
  std::vector<std::set<EntityPair>> years{
      {{1, 2}, {3, 4}, {5, 6}},
      {{1, 2}, {5, 6}},
      {{1, 2}, {3, 4}},
  };
  EXPECT_EQ(StableControlEdges(years), (std::set<EntityPair>{{1, 2}}));
  EXPECT_TRUE(StableControlEdges({}).empty());
}

TEST(TemporalControlTest, PanelEndToEnd) {
  gen::EvolutionConfig cfg;
  cfg.first_year = 2005;
  cfg.last_year = 2010;
  cfg.initial.persons = 200;
  cfg.initial.companies = 150;
  auto panel = gen::SimulateEvolution(cfg);

  std::vector<std::set<EntityPair>> per_year;
  for (const auto& snap : panel) {
    auto edges = ControlEdgesByEntity(snap.graph);
    ASSERT_TRUE(edges.ok()) << edges.status().ToString();
    per_year.push_back(std::move(edges).value());
  }
  // Share turnover must cause some changes across the panel...
  size_t total_changes = 0;
  for (size_t i = 1; i < per_year.size(); ++i) {
    auto diff = DiffControl(per_year[i - 1], per_year[i]);
    total_changes += diff.gained.size() + diff.lost.size();
  }
  EXPECT_GT(total_changes, 0u);
  // ...while the stable core is a subset of every year.
  auto stable = StableControlEdges(per_year);
  for (const auto& year : per_year) {
    for (const EntityPair& p : stable) {
      EXPECT_TRUE(year.count(p));
    }
  }
}

// ---- PageRank -------------------------------------------------------------------

TEST(PageRankTest, UniformOnSymmetricCycle) {
  graph::PropertyGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode("N");
  for (int i = 0; i < 4; ++i) g.AddEdge(i, (i + 1) % 4, "E").value();
  auto pr = graph::PageRank(g);
  for (double s : pr.score) EXPECT_NEAR(s, 0.25, 1e-8);
}

TEST(PageRankTest, ScoresSumToOne) {
  graph::PropertyGraph g;
  for (int i = 0; i < 10; ++i) g.AddNode("N");
  g.AddEdge(0, 1, "E").value();
  g.AddEdge(2, 1, "E").value();
  g.AddEdge(3, 1, "E").value();  // node 1 is a sink (dangling)
  auto pr = graph::PageRank(g);
  double total = 0.0;
  for (double s : pr.score) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRankTest, HubOutranksLeaves) {
  graph::PropertyGraph g;
  for (int i = 0; i < 6; ++i) g.AddNode("N");
  for (int leaf = 1; leaf < 6; ++leaf) g.AddEdge(leaf, 0, "E").value();
  auto pr = graph::PageRank(g);
  for (int leaf = 1; leaf < 6; ++leaf) {
    EXPECT_GT(pr.score[0], pr.score[leaf]);
  }
}

TEST(PageRankTest, EmptyGraph) {
  graph::PropertyGraph g;
  auto pr = graph::PageRank(g);
  EXPECT_TRUE(pr.score.empty());
}

TEST(PageRankTest, ConvergesBeforeMaxIterations) {
  graph::PropertyGraph g;
  for (int i = 0; i < 20; ++i) g.AddNode("N");
  for (int i = 0; i < 20; ++i) g.AddEdge(i, (i + 7) % 20, "E").value();
  graph::PageRankConfig cfg;
  cfg.max_iterations = 500;
  auto pr = graph::PageRank(g, cfg);
  EXPECT_LT(pr.iterations, 500u);
  EXPECT_LT(pr.final_delta, 1e-10);
}

}  // namespace
}  // namespace vadalink
