// Goal-directed evaluation: the magic-set rewrite (datalog/magic.h), the
// demand dataflow analysis (datalog/dataflow.h) and Engine::Query. The
// correctness bar throughout: Query(goal) returns exactly the
// goal-matching subset of the full-saturation fact set, at every thread
// count, whether the rewrite applied or reported a fallback.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "company/company_graph.h"
#include "core/mapping.h"
#include "core/vadalog_programs.h"
#include "datalog/engine.h"
#include "datalog/magic.h"
#include "datalog/parser.h"
#include "gen/barabasi_albert.h"

namespace vadalink {
namespace {

using datalog::Catalog;
using datalog::Database;
using datalog::Engine;
using datalog::EngineOptions;
using datalog::MagicResult;
using datalog::MagicRewrite;
using datalog::ParseProgram;
using datalog::ParseQueryGoal;
using datalog::Program;
using datalog::QueryGoal;
using datalog::QueryReport;
using datalog::Value;

using Tuples = std::vector<std::vector<Value>>;

graph::PropertyGraph TestGraph(size_t nodes, size_t edges_per_node,
                               uint64_t seed) {
  gen::BarabasiAlbertConfig ba;
  ba.nodes = nodes;
  ba.edges_per_node = edges_per_node;
  ba.seed = seed;
  return gen::GenerateBarabasiAlbert(ba);
}

std::unique_ptr<ThreadPool> PoolFor(size_t threads) {
  ParallelOptions po;
  po.threads = threads;
  return MakeThreadPool(po);  // nullptr for 1 thread = sequential path
}

/// Full saturation, then the goal-matching subset, sorted.
Tuples SaturationSubset(const graph::PropertyGraph& g,
                        const std::string& rules, const std::string& goal,
                        size_t threads) {
  Catalog catalog;
  Database db(&catalog);
  EXPECT_TRUE(core::LoadGraphFacts(g, &db).ok());
  auto program = ParseProgram(rules, &catalog);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto parsed_goal = ParseQueryGoal(goal, &catalog);
  EXPECT_TRUE(parsed_goal.ok()) << parsed_goal.status().ToString();
  auto pool = PoolFor(threads);
  EngineOptions opts;
  opts.pool = pool.get();
  Engine engine(&db, opts);
  EXPECT_TRUE(engine.Run(*program).ok());
  Tuples out;
  for (datalog::RowRef row : db.Scan(parsed_goal->atom.predicate)) {
    std::vector<Value> tuple = row.ToTuple();
    if (GoalMatches(*parsed_goal, tuple)) out.push_back(std::move(tuple));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Tuples QueryAnswers(const graph::PropertyGraph& g, const std::string& rules,
                    const std::string& goal, size_t threads,
                    QueryReport* report_out = nullptr) {
  Catalog catalog;
  Database db(&catalog);
  EXPECT_TRUE(core::LoadGraphFacts(g, &db).ok());
  auto program = ParseProgram(rules, &catalog);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto parsed_goal = ParseQueryGoal(goal, &catalog);
  EXPECT_TRUE(parsed_goal.ok()) << parsed_goal.status().ToString();
  auto pool = PoolFor(threads);
  EngineOptions opts;
  opts.pool = pool.get();
  Engine engine(&db, opts);
  auto report = engine.Query(*program, *parsed_goal);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (!report.ok()) return {};
  if (report_out != nullptr) *report_out = *report;
  return report->answers;
}

/// A node with at least one outgoing ownership edge (a query source that
/// actually exercises the recursion).
int64_t SomeSource(const graph::PropertyGraph& g) {
  auto cg = company::CompanyGraph::FromPropertyGraph(g);
  if (!cg.ok()) return 0;
  for (graph::NodeId n = 0; n < cg->node_count(); ++n) {
    if (!cg->holdings(n).empty()) return static_cast<int64_t>(n);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// ParseQueryGoal

TEST(ParseQueryGoal, AtomWithConstantsAndVariables) {
  Catalog cat;
  auto goal = ParseQueryGoal("control(7, X)", &cat);
  ASSERT_TRUE(goal.ok());
  EXPECT_EQ(cat.predicates.Name(goal->atom.predicate), "control");
  ASSERT_EQ(goal->atom.args.size(), 2u);
  EXPECT_FALSE(goal->atom.args[0].is_var());
  EXPECT_EQ(goal->atom.args[0].constant, Value::Int(7));
  EXPECT_TRUE(goal->atom.args[1].is_var());
  EXPECT_EQ(goal->var_names[goal->atom.args[1].var], "X");
  EXPECT_EQ(goal->ToString(cat), "control(7, X)");
}

TEST(ParseQueryGoal, RejectsNonAtoms) {
  Catalog cat;
  EXPECT_FALSE(ParseQueryGoal("a(X), b(X)", &cat).ok());
  EXPECT_FALSE(ParseQueryGoal("not p(X)", &cat).ok());
  EXPECT_FALSE(ParseQueryGoal("p(X) -> q(X)", &cat).ok());
  EXPECT_FALSE(ParseQueryGoal("", &cat).ok());
}

// ---------------------------------------------------------------------------
// GoalMatches

TEST(GoalMatches, ExactValueEquality) {
  Catalog cat;
  auto goal = ParseQueryGoal("p(1, X)", &cat);
  ASSERT_TRUE(goal.ok());
  EXPECT_TRUE(GoalMatches(*goal, {Value::Int(1), Value::Int(9)}));
  EXPECT_FALSE(GoalMatches(*goal, {Value::Int(2), Value::Int(9)}));
  // Engine joins use exact value identity (1 != 1.0); the goal filter
  // must agree, or query answers and the saturation subset could differ.
  EXPECT_FALSE(GoalMatches(*goal, {Value::Double(1.0), Value::Int(9)}));
  EXPECT_FALSE(GoalMatches(*goal, {Value::Int(1)}));
}

// ---------------------------------------------------------------------------
// Rewrite structure on the paper programs

TEST(MagicRewrite, ControlProgramRewrites) {
  Catalog cat;
  auto program = ParseProgram(core::ControlProgram(), &cat);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("control(3, X)", &cat);
  ASSERT_TRUE(goal.ok());
  MagicResult res = MagicRewrite(*program, &cat, *goal);
  EXPECT_TRUE(res.rewritten);
  EXPECT_TRUE(res.fallback_reason.empty());
  EXPECT_GE(res.magic_rules, 1u);
  EXPECT_GE(res.adornments, 2u);  // control^bf and ctrl^bf at least
  // Every original rule is goal-relevant here; the win is the guards.
  EXPECT_EQ(res.rules_pruned, 0u);
  EXPECT_GT(res.program.rules.size(), program->rules.size());
  // The seed fact for the goal's own demand is appended to the facts.
  ASSERT_EQ(res.program.facts.size(), program->facts.size() + 1);
  EXPECT_EQ(res.program.facts.back().args.size(), 1u);
  EXPECT_EQ(res.program.facts.back().args[0].constant, Value::Int(3));
}

TEST(MagicRewrite, CloseLinkMutuallyRecursiveAdornments) {
  Catalog cat;
  auto program = ParseProgram(core::CloseLinkProgram(0.2, 8), &cat);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("closelink(5, Y)", &cat);
  ASSERT_TRUE(goal.ok());
  MagicResult res = MagicRewrite(*program, &cat, *goal);
  EXPECT_TRUE(res.rewritten) << res.fallback_reason;
  // The symmetry rule closelink(X,Y) -> closelink(Y,X) makes the bf and
  // fb adornments demand each other; walk is explored both forward (from
  // the bound first argument) and backward (toward the bound second
  // argument of accown). That is at least: closelink^bf, closelink^fb,
  // accown^bff, accown^fbf, walk^bfff, walk^fbff.
  EXPECT_GE(res.adornments, 6u);
  bool has_bf = false;
  bool has_fb = false;
  for (size_t p = 0; p < cat.predicates.size(); ++p) {
    const std::string& name = cat.predicates.Name(static_cast<uint32_t>(p));
    has_bf |= name == "__magic_closelink_bf";
    has_fb |= name == "__magic_closelink_fb";
  }
  EXPECT_TRUE(has_bf);
  EXPECT_TRUE(has_fb);
}

// ---------------------------------------------------------------------------
// Fallback gates

TEST(MagicRewrite, ExistentialRulesFallBack) {
  // Labeled-null identity depends on enumeration order; guarding an
  // existential rule could change which nulls exist.
  Catalog cat;
  auto program = ParseProgram(R"(
    own(1, 2, 5).
    own(X, Y, W) -> glink(L, X, Y).
  )",
                              &cat);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("glink(L, 1, Y)", &cat);
  ASSERT_TRUE(goal.ok());
  MagicResult res = MagicRewrite(*program, &cat, *goal);
  EXPECT_FALSE(res.rewritten);
  EXPECT_NE(res.fallback_reason.find("existential"), std::string::npos)
      << res.fallback_reason;
  EXPECT_EQ(res.fallback_code, "existential_in_kept_rule");
}

TEST(MagicRewrite, MultiHeadGoalFallsBackToFullCone) {
  // Every rule of the paper's input-promotion program is multi-head:
  // guarding one head would starve the other, so the goal predicate is
  // pinned to full evaluation of its (pruned) cone.
  Catalog cat;
  auto program = ParseProgram(core::InputPromotionProgram(), &cat);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("gedgetype(L, \"pers_share\")", &cat);
  ASSERT_TRUE(goal.ok());
  MagicResult res = MagicRewrite(*program, &cat, *goal);
  EXPECT_FALSE(res.rewritten);
  EXPECT_NE(res.fallback_reason.find("in full"), std::string::npos)
      << res.fallback_reason;
  EXPECT_EQ(res.fallback_code, "needs_full");
}

TEST(MagicRewrite, NegationInsideGoalSccFallsBack) {
  // Negation through the goal's own recursive component. (The engine
  // would reject this program as unstratifiable anyway; the rewrite must
  // still name the construct rather than produce a bogus program.)
  Catalog cat;
  auto program = ParseProgram(R"(
    e(1, 2). e(2, 3).
    e(X, Y), not p(Y) -> p(X).
  )",
                              &cat);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("p(1)", &cat);
  ASSERT_TRUE(goal.ok());
  MagicResult res = MagicRewrite(*program, &cat, *goal);
  EXPECT_FALSE(res.rewritten);
  EXPECT_NE(res.fallback_reason.find("negation"), std::string::npos)
      << res.fallback_reason;
  // The goal itself is read under negation, so the dataflow analysis
  // pins it to full evaluation before the SCC walk even runs.
  EXPECT_EQ(res.fallback_code, "needs_full");
}

TEST(MagicRewrite, NegationThroughMutualRecursionFallsBack) {
  // The goal is never negated itself, but its recursive component reads
  // a sibling predicate under negation. The dataflow needs_full marking
  // closes downward through rule bodies, so the negated sibling drags the
  // goal to full evaluation before the SCC walk can issue its own code;
  // "negation_in_goal_scc" stays as a defensive backstop behind it.
  Catalog cat;
  auto program = ParseProgram(R"(
    e(1, 2). e(2, 3).
    e(X, Y) -> q(X, Y).
    q(X, Y), e(Y, Z), not r(X, Z) -> q(X, Z).
    q(X, Y) -> r(Y, X).
  )",
                              &cat);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("q(1, X)", &cat);
  ASSERT_TRUE(goal.ok());
  MagicResult res = MagicRewrite(*program, &cat, *goal);
  EXPECT_FALSE(res.rewritten);
  EXPECT_EQ(res.fallback_code, "needs_full");
}

TEST(MagicRewrite, StratifiedNegationOutsideGoalSccRewrites) {
  // `bad` sits below the goal's component and is only read negatively:
  // the rewrite keeps it (and its cone) at full evaluation instead of
  // falling back, and the guarded recursion still answers exactly.
  const std::string rules = R"(
    seed(X) -> bad(X).
    e(X, Y), not bad(Y) -> reach(X, Y).
    reach(X, Y), e(Y, Z), not bad(Z) -> reach(X, Z).
  )";
  const std::string facts = R"(
    seed(4).
    e(1, 2). e(2, 3). e(3, 4). e(2, 5). e(5, 6). e(7, 8).
  )";
  Catalog cat;
  auto program = ParseProgram(facts + rules, &cat);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("reach(1, X)", &cat);
  ASSERT_TRUE(goal.ok());
  MagicResult res = MagicRewrite(*program, &cat, *goal);
  EXPECT_TRUE(res.rewritten) << res.fallback_reason;

  // Run both modes and compare the goal subset.
  auto run_answers = [&](bool query_mode) {
    Catalog c;
    Database db(&c);
    auto prog = ParseProgram(facts + rules, &c);
    EXPECT_TRUE(prog.ok());
    auto parsed_goal = ParseQueryGoal("reach(1, X)", &c);
    EXPECT_TRUE(parsed_goal.ok());
    Engine engine(&db, {});
    Tuples out;
    if (query_mode) {
      auto report = engine.Query(*prog, *parsed_goal);
      EXPECT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_TRUE(report->rewritten) << report->fallback_reason;
      return report->answers;
    }
    EXPECT_TRUE(engine.Run(*prog).ok());
    for (datalog::RowRef row : db.Scan(parsed_goal->atom.predicate)) {
      std::vector<Value> tuple = row.ToTuple();
      if (GoalMatches(*parsed_goal, tuple)) out.push_back(std::move(tuple));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  Tuples query = run_answers(true);
  Tuples saturation = run_answers(false);
  EXPECT_EQ(query, saturation);
  EXPECT_FALSE(query.empty());
}

TEST(MagicRewrite, NonMonotoneAggregateGuardFallsBack) {
  // The running msum value escapes through a downward guard (S < 10):
  // whether some running value is below a bound depends on enumeration
  // order, so the rewrite must refuse.
  Catalog cat;
  auto program = ParseProgram(R"(
    own(1, 2, 4). own(1, 3, 5).
    own(X, Y, W), S = msum(W, <Y>) -> total(X, S).
    total(X, S), S < 10 -> small(X).
  )",
                              &cat);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("small(1)", &cat);
  ASSERT_TRUE(goal.ok());
  MagicResult res = MagicRewrite(*program, &cat, *goal);
  EXPECT_FALSE(res.rewritten);
  EXPECT_NE(res.fallback_reason.find("non-monotone"), std::string::npos)
      << res.fallback_reason;
  EXPECT_EQ(res.fallback_code, "aggregate_escape");
}

TEST(MagicRewrite, GoalCarryingAggregateValueFallsBack) {
  // The goal itself enumerates running aggregate values.
  Catalog cat;
  auto program = ParseProgram(R"(
    own(1, 2, 4). own(1, 3, 5).
    own(X, Y, W), S = msum(W, <Y>) -> total(X, S).
  )",
                              &cat);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("total(1, S)", &cat);
  ASSERT_TRUE(goal.ok());
  MagicResult res = MagicRewrite(*program, &cat, *goal);
  EXPECT_FALSE(res.rewritten);
  EXPECT_NE(res.fallback_reason.find("running aggregate"), std::string::npos)
      << res.fallback_reason;
  EXPECT_EQ(res.fallback_code, "aggregate_escape");
}

TEST(MagicRewrite, FallbackCodeSurfacesInQueryReportAndMetrics) {
  // The slug must ride the whole way: MagicResult -> QueryReport ->
  // one engine.query.fallback.<code> counter an operator can alert on,
  // instead of a free-text reason that only shows up in logs.
  Catalog cat;
  Database db(&cat);
  auto program = ParseProgram(R"(
    own(1, 2, 4). own(1, 3, 5).
    own(X, Y, W), S = msum(W, <Y>) -> total(X, S).
  )",
                              &cat);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("total(1, S)", &cat);
  ASSERT_TRUE(goal.ok());
  MetricsRegistry metrics;
  EngineOptions opts;
  opts.metrics = &metrics;
  Engine engine(&db, opts);
  auto report = engine.Query(*program, *goal);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->rewritten);
  EXPECT_EQ(report->fallback_code, "aggregate_escape");
  EXPECT_FALSE(report->answers.empty());
  EXPECT_EQ(metrics.CounterValue("engine.query.fallbacks"), 1u);
  EXPECT_EQ(
      metrics.CounterValue("engine.query.fallback.aggregate_escape"), 1u);

  // A goal the rewrite handles increments neither counter.
  auto ok_goal = ParseQueryGoal("own(1, Y, W)", &cat);
  ASSERT_TRUE(ok_goal.ok());
  auto ok_report = engine.Query(*program, *ok_goal);
  ASSERT_TRUE(ok_report.ok()) << ok_report.status().ToString();
  EXPECT_TRUE(ok_report->fallback_code.empty());
  EXPECT_EQ(metrics.CounterValue("engine.query.fallbacks"), 1u);
  EXPECT_EQ(
      metrics.CounterValue("engine.query.fallback.aggregate_escape"), 1u);
}

TEST(MagicRewrite, MonotoneThresholdGuardIsAccepted) {
  // The same program with an upward guard (S >= 9) rewrites: for an
  // increasing aggregate, "some running value >= t" is equivalent to
  // "the final value >= t".
  Catalog cat;
  auto program = ParseProgram(R"(
    own(1, 2, 4). own(1, 3, 5).
    own(X, Y, W), S = msum(W, <Y>) -> total(X, S).
    total(X, S), S >= 9 -> big(X).
  )",
                              &cat);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("big(1)", &cat);
  ASSERT_TRUE(goal.ok());
  MagicResult res = MagicRewrite(*program, &cat, *goal);
  EXPECT_TRUE(res.rewritten) << res.fallback_reason;
}

TEST(MagicRewrite, AllFreeGoalPrunesOnly) {
  Catalog cat;
  auto program = ParseProgram(R"(
    e(1, 2). e(2, 3). f(1, 2).
    e(X, Y) -> p(X, Y).
    f(X, Y) -> q(X, Y).
  )",
                              &cat);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("p(X, Y)", &cat);
  ASSERT_TRUE(goal.ok());
  MagicResult res = MagicRewrite(*program, &cat, *goal);
  EXPECT_FALSE(res.rewritten);
  EXPECT_TRUE(res.fallback_reason.empty());  // no demand, not a fallback
  EXPECT_TRUE(res.fallback_code.empty());
  // The q rule is irrelevant to p and dropped.
  EXPECT_EQ(res.rules_pruned, 1u);
  EXPECT_EQ(res.program.rules.size(), 1u);
}

TEST(MagicRewrite, ConstantConflictPrunesUnreachableRules) {
  // Demand on path's first position is {1}; the special-hub rule can only
  // produce first argument 7 and is pruned by the value-set analysis.
  Catalog cat;
  auto program = ParseProgram(R"(
    e(1, 2). e(2, 3). hub(9).
    e(X, Y) -> path(X, Y).
    special(X, Y) -> path(X, Y).
    hub(Y) -> special(7, Y).
  )",
                              &cat);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("path(1, X)", &cat);
  ASSERT_TRUE(goal.ok());
  MagicResult res = MagicRewrite(*program, &cat, *goal);
  EXPECT_TRUE(res.rewritten) << res.fallback_reason;
  EXPECT_EQ(res.dataflow.rules_pruned_conflict, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end exactness: query == saturation subset, all thread counts

struct ExactnessCase {
  const char* name;
  std::string rules;
  std::string goal_pred;
  size_t nodes;
  size_t edges_per_node;
  uint64_t seed;
};

class QueryExactness : public ::testing::TestWithParam<ExactnessCase> {};

TEST_P(QueryExactness, MatchesSaturationSubsetAtEveryThreadCount) {
  const ExactnessCase& c = GetParam();
  graph::PropertyGraph g = TestGraph(c.nodes, c.edges_per_node, c.seed);
  std::string goal =
      c.goal_pred + "(" + std::to_string(SomeSource(g)) + ", X)";
  Tuples reference = SaturationSubset(g, c.rules, goal, 1);
  for (size_t threads : {size_t{1}, size_t{8}}) {
    EXPECT_EQ(SaturationSubset(g, c.rules, goal, threads), reference)
        << c.name << " saturation, threads=" << threads;
    QueryReport report;
    EXPECT_EQ(QueryAnswers(g, c.rules, goal, threads, &report), reference)
        << c.name << " query, threads=" << threads;
    EXPECT_TRUE(report.rewritten) << c.name << ": " << report.fallback_reason;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperPrograms, QueryExactness,
    ::testing::Values(
        ExactnessCase{"control", core::ControlProgram(), "control", 120, 2,
                      3},
        ExactnessCase{"closelink", core::CloseLinkProgram(0.2, 6),
                      "closelink", 60, 1, 17}),
    [](const ::testing::TestParamInfo<ExactnessCase>& info) {
      return info.param.name;
    });

TEST(QueryExactness, GroundGoalAndEmptyAnswer) {
  graph::PropertyGraph g = TestGraph(80, 2, 5);
  // A fully ground goal: either one tuple or none, and the query agrees
  // with saturation either way.
  std::string rules = core::ControlProgram();
  Tuples all = SaturationSubset(g, rules, "control(0, X)", 1);
  std::string ground_goal =
      all.empty() ? "control(0, 1)"
                  : "control(0, " + all[0][1].ToString(datalog::SymbolTable{}) +
                        ")";
  Tuples sat = SaturationSubset(g, rules, ground_goal, 1);
  EXPECT_EQ(QueryAnswers(g, rules, ground_goal, 1), sat);
}

TEST(EngineOptionsQueryGoal, RunRoutesThroughQuery) {
  graph::PropertyGraph g = TestGraph(100, 2, 3);
  Catalog catalog;
  Database db(&catalog);
  ASSERT_TRUE(core::LoadGraphFacts(g, &db).ok());
  auto program = ParseProgram(core::ControlProgram(), &catalog);
  ASSERT_TRUE(program.ok());
  std::string goal_text =
      "control(" + std::to_string(SomeSource(g)) + ", X)";
  auto goal = ParseQueryGoal(goal_text, &catalog);
  ASSERT_TRUE(goal.ok());
  EngineOptions opts;
  opts.query_goal = &*goal;
  Engine engine(&db, opts);
  ASSERT_TRUE(engine.Run(*program).ok());
  // The database holds the goal-matching control facts...
  Tuples via_run;
  for (datalog::RowRef row : db.Scan(goal->atom.predicate)) {
    std::vector<Value> tuple = row.ToTuple();
    if (GoalMatches(*goal, tuple)) via_run.push_back(std::move(tuple));
  }
  std::sort(via_run.begin(), via_run.end());
  EXPECT_EQ(via_run, SaturationSubset(g, core::ControlProgram(), goal_text,
                                      1));
}

TEST(QueryReportMetrics, DerivesFewerFactsThanSaturation) {
  graph::PropertyGraph g = TestGraph(200, 2, 3);
  std::string goal =
      "control(" + std::to_string(SomeSource(g)) + ", X)";
  // Saturation work measure.
  Catalog catalog;
  Database db(&catalog);
  ASSERT_TRUE(core::LoadGraphFacts(g, &db).ok());
  auto program = ParseProgram(core::ControlProgram(), &catalog);
  ASSERT_TRUE(program.ok());
  Engine engine(&db, {});
  ASSERT_TRUE(engine.Run(*program).ok());
  size_t saturation_facts = engine.stats().facts_derived;

  QueryReport report;
  QueryAnswers(g, core::ControlProgram(), goal, 1, &report);
  EXPECT_TRUE(report.rewritten);
  EXPECT_LT(report.facts_derived, saturation_facts);
}

}  // namespace
}  // namespace vadalink
