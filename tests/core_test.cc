// core/: relational mapping, candidates, the VadaLink augmentation loop,
// the naive baseline, and differential tests checking that the declarative
// (Datalog±) and compiled implementations agree on the paper's examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "company/control.h"
#include "core/candidates.h"
#include "core/mapping.h"
#include "core/naive_baseline.h"
#include "core/vada_link.h"
#include "core/vadalog_programs.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "gen/register_simulator.h"
#include "tests/paper_fixtures.h"

namespace vadalink::core {
namespace {

using ::vadalink::testing::CompanyGraphBuilder;
using ::vadalink::testing::Figure1;
using ::vadalink::testing::Figure2;

using Pair = std::pair<graph::NodeId, graph::NodeId>;

std::set<Pair> NormalizedPairs(datalog::RelationScan tuples) {
  std::set<Pair> out;
  for (datalog::RowRef t : tuples) {
    auto a = static_cast<graph::NodeId>(t[0].AsInt());
    auto b = static_cast<graph::NodeId>(t[1].AsInt());
    out.insert(std::minmax(a, b));
  }
  return out;
}

// ---- mapping -------------------------------------------------------------------

TEST(MappingTest, LoadsDomainAndGenericFacts) {
  auto b = Figure1();
  datalog::Catalog catalog;
  datalog::Database db(&catalog);
  ASSERT_TRUE(LoadGraphFacts(b.graph(), &db).ok());
  EXPECT_EQ(db.Scan("person").size(), 2u);
  EXPECT_EQ(db.Scan("company").size(), 8u);
  EXPECT_EQ(db.Scan("own").size(), 12u);
  EXPECT_EQ(db.Scan("node").size(), 10u);
  EXPECT_EQ(db.Scan("link").size(), 12u);
  EXPECT_EQ(db.Scan("edgetype").size(), 12u);
  // Every node has its name feature.
  EXPECT_EQ(db.Scan("nodefeature").size(), 10u);
}

TEST(MappingTest, StorePredictedLinksRoundTrip) {
  auto b = Figure1();
  datalog::Catalog catalog;
  datalog::Database db(&catalog);
  ASSERT_TRUE(
      db.InsertByName("control", {datalog::Value::Int(0),
                                  datalog::Value::Int(2)}).ok());
  auto added = StorePredictedLinks(db, &b.graph());
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(*added, 1u);
  EXPECT_NE(b.graph().FindEdge(0, 2, "Control"), graph::kInvalidEdge);
  // Second call is a no-op (dedup).
  auto again = StorePredictedLinks(db, &b.graph());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST(MappingTest, StoreRejectsBadNodeIds) {
  graph::PropertyGraph g;
  g.AddNode("Company");
  datalog::Catalog catalog;
  datalog::Database db(&catalog);
  ASSERT_TRUE(
      db.InsertByName("control", {datalog::Value::Int(0),
                                  datalog::Value::Int(99)}).ok());
  EXPECT_FALSE(StorePredictedLinks(db, &g).ok());
}

// ---- differential: declarative vs compiled --------------------------------------

class DifferentialTest : public ::testing::Test {
 protected:
  /// Runs `program_text` over the facts of `g`; returns the engine db.
  std::unique_ptr<datalog::Database> RunOn(const graph::PropertyGraph& g,
                                           const std::string& program_text) {
    auto db = std::make_unique<datalog::Database>(&catalog_);
    EXPECT_TRUE(LoadGraphFacts(g, db.get()).ok());
    auto program = datalog::ParseProgram(program_text, &catalog_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    datalog::Engine engine(db.get());
    Status st = engine.Run(*program);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return db;
  }

  datalog::Catalog catalog_;
};

TEST_F(DifferentialTest, ControlFigure1) {
  auto b = Figure1();
  auto db = RunOn(b.graph(), ControlProgram());

  std::set<Pair> declarative;
  for (const auto& t : db->Scan("control")) {
    declarative.insert({static_cast<graph::NodeId>(t[0].AsInt()),
                        static_cast<graph::NodeId>(t[1].AsInt())});
  }
  auto cg = company::CompanyGraph::FromPropertyGraph(b.graph()).value();
  std::set<Pair> compiled;
  for (const auto& e : company::AllControlEdges(cg)) {
    compiled.insert({e.controller, e.controlled});
  }
  EXPECT_EQ(declarative, compiled);
}

TEST_F(DifferentialTest, ControlFigure2) {
  auto b = Figure2();
  auto db = RunOn(b.graph(), ControlProgram());
  std::set<Pair> declarative;
  for (const auto& t : db->Scan("control")) {
    declarative.insert({static_cast<graph::NodeId>(t[0].AsInt()),
                        static_cast<graph::NodeId>(t[1].AsInt())});
  }
  auto cg = company::CompanyGraph::FromPropertyGraph(b.graph()).value();
  std::set<Pair> compiled;
  for (const auto& e : company::AllControlEdges(cg)) {
    compiled.insert({e.controller, e.controlled});
  }
  EXPECT_EQ(declarative, compiled);
  // And the paper's headline: P2 controls C7.
  EXPECT_TRUE(declarative.count({b.id("P2"), b.id("C7")}));
}

TEST_F(DifferentialTest, CloseLinkFigure2) {
  auto b = Figure2();
  auto db = RunOn(b.graph(), CloseLinkProgram(0.2, 16));
  std::set<Pair> declarative = NormalizedPairs(db->Scan("closelink"));

  auto cg = company::CompanyGraph::FromPropertyGraph(b.graph()).value();
  std::set<Pair> compiled;
  for (const auto& e : company::AllCloseLinks(cg)) {
    compiled.insert(std::minmax(e.x, e.y));
  }
  EXPECT_EQ(declarative, compiled);
}

TEST_F(DifferentialTest, FamilyControlFigure1) {
  auto b = Figure1();
  datalog::Database db(&catalog_);
  ASSERT_TRUE(LoadGraphFacts(b.graph(), &db).ok());
  // One family: {P1, P2} with id 1.
  for (const char* member : {"P1", "P2"}) {
    ASSERT_TRUE(db.InsertByName(
                      "familymember",
                      {datalog::Value::Int(1),
                       datalog::Value::Int(b.id(member))})
                    .ok());
  }
  auto program = datalog::ParseProgram(FamilyControlProgram(), &catalog_);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  datalog::Engine engine(&db);
  ASSERT_TRUE(engine.Run(*program).ok());

  std::set<graph::NodeId> declarative;
  for (const auto& t : db.Scan("familycontrol")) {
    declarative.insert(static_cast<graph::NodeId>(t[1].AsInt()));
  }
  auto cg = company::CompanyGraph::FromPropertyGraph(b.graph()).value();
  auto compiled_vec = company::FamilyControlledCompanies(
      cg, {b.id("P1"), b.id("P2")});
  std::set<graph::NodeId> compiled(compiled_vec.begin(), compiled_vec.end());
  EXPECT_EQ(declarative, compiled);
  EXPECT_TRUE(declarative.count(b.id("L")));  // the paper's family business
}

TEST_F(DifferentialTest, InputPromotionInventsDisjointOids) {
  auto b = Figure1();
  auto db = RunOn(b.graph(), InputPromotionProgram());
  EXPECT_EQ(db->Scan("gnode").size(), 10u);
  EXPECT_EQ(db->Scan("glink").size(), 12u);
  // All OIDs distinct: persons and companies come from disjoint Skolems.
  std::set<uint64_t> oids;
  for (const auto& t : db->Scan("gnode")) {
    ASSERT_TRUE(t[0].is_skolem());
    oids.insert(t[0].skolem_id());
  }
  EXPECT_EQ(oids.size(), 10u);
}

// ---- candidates -------------------------------------------------------------------

TEST(CandidateTest, ControlCandidateEmitsEdges) {
  auto b = Figure1();
  ControlCandidate candidate;
  auto links = candidate.RunGlobal(b.graph());
  ASSERT_TRUE(links.ok());
  EXPECT_EQ(links->size(), 8u);
  for (const auto& l : *links) EXPECT_EQ(l.cls, LinkClass::kControl);
}

TEST(CandidateTest, CloseLinkCandidateUsesFamilies) {
  auto b = Figure1();
  // Without family edges: D-G not closely linked.
  CloseLinkCandidate candidate;
  auto before = candidate.RunGlobal(b.graph());
  ASSERT_TRUE(before.ok());
  auto has_dg = [&](const std::vector<PredictedLink>& links) {
    graph::NodeId d = b.id("D"), g = b.id("G");
    for (const auto& l : links) {
      auto p = std::minmax(l.x, l.y);
      if (p == std::minmax(d, g)) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_dg(*before));
  // Add the personal connection P1-P2, rerun: D-G appears.
  b.graph().AddEdge(b.id("P1"), b.id("P2"), "PartnerOf").value();
  auto after = candidate.RunGlobal(b.graph());
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(has_dg(*after));
}

TEST(CandidateTest, FamilyControlCandidateFindsL) {
  auto b = Figure1();
  b.graph().AddEdge(b.id("P1"), b.id("P2"), "PartnerOf").value();
  FamilyControlCandidate candidate;
  auto links = candidate.RunGlobal(b.graph());
  ASSERT_TRUE(links.ok());
  bool found_l = false;
  for (const auto& l : *links) {
    if (l.y == b.id("L")) found_l = true;
  }
  EXPECT_TRUE(found_l);
}

TEST(CandidateTest, FamiliesFromGraphGroups) {
  graph::PropertyGraph g;
  for (int i = 0; i < 5; ++i) g.AddNode("Person");
  g.AddEdge(0, 1, "PartnerOf").value();
  g.AddEdge(1, 2, "ParentOf").value();
  g.AddEdge(3, 4, "SiblingOf").value();
  auto families = FamiliesFromGraph(g);
  ASSERT_EQ(families.size(), 2u);
  EXPECT_EQ(families[0].size(), 3u);
  EXPECT_EQ(families[1].size(), 2u);
}

// ---- VadaLink end-to-end -----------------------------------------------------------

gen::RegisterConfig SmallRegister() {
  gen::RegisterConfig cfg;
  cfg.persons = 120;
  cfg.companies = 80;
  cfg.typo_rate = 0.0;
  cfg.seed = 7;
  return cfg;
}

AugmentConfig FastAugmentConfig() {
  AugmentConfig cfg;
  cfg.embedding.skipgram.dimensions = 16;
  cfg.embedding.skipgram.epochs = 1;
  cfg.embedding.walk.walks_per_node = 3;
  cfg.embedding.walk.walk_length = 8;
  cfg.embedding.kmeans.k = 4;
  cfg.max_rounds = 2;
  return cfg;
}

TEST(VadaLinkTest, AugmentsRegisterGraph) {
  auto data = gen::GenerateRegister(SmallRegister());
  auto vl = MakeDefaultVadaLink(FastAugmentConfig());
  size_t edges_before = data.graph.edge_count();
  auto stats = vl.Augment(&data.graph);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->links_added, 0u);
  EXPECT_EQ(data.graph.edge_count(), edges_before + stats->links_added);
  EXPECT_GE(stats->rounds, 1u);
  EXPECT_GT(stats->pairs_compared, 0u);
}

TEST(VadaLinkTest, RecallOnPlantedFamilies) {
  auto data = gen::GenerateRegister(SmallRegister());
  AugmentConfig cfg = FastAugmentConfig();
  cfg.use_embedding = false;  // isolate blocking recall
  auto vl = MakeDefaultVadaLink(cfg);
  ASSERT_TRUE(vl.Augment(&data.graph).ok());

  size_t recovered = 0;
  for (const auto& truth : data.true_family_links) {
    bool found = false;
    for (const char* label : {"PartnerOf", "ParentOf", "SiblingOf"}) {
      if (data.graph.FindEdge(truth.x, truth.y, label) !=
              graph::kInvalidEdge ||
          data.graph.FindEdge(truth.y, truth.x, label) !=
              graph::kInvalidEdge) {
        found = true;
      }
    }
    if (found) ++recovered;
  }
  double recall = static_cast<double>(recovered) /
                  static_cast<double>(data.true_family_links.size());
  EXPECT_GT(recall, 0.8) << recovered << "/" << data.true_family_links.size();
}

TEST(VadaLinkTest, ClusteringReducesComparisons) {
  auto data1 = gen::GenerateRegister(SmallRegister());
  auto data2 = gen::GenerateRegister(SmallRegister());

  AugmentConfig clustered = FastAugmentConfig();
  clustered.max_rounds = 1;
  auto vl1 = MakeDefaultVadaLink(clustered);
  auto s1 = vl1.Augment(&data1.graph);
  ASSERT_TRUE(s1.ok());

  AugmentConfig naive = FastAugmentConfig();
  naive.max_rounds = 1;
  naive.use_embedding = false;
  naive.use_blocking = false;
  auto vl2 = MakeDefaultVadaLink(naive);
  auto s2 = vl2.Augment(&data2.graph);
  ASSERT_TRUE(s2.ok());

  EXPECT_LT(s1->pairs_compared, s2->pairs_compared / 4);
}

TEST(VadaLinkTest, AugmentIsIdempotentAtFixpoint) {
  auto data = gen::GenerateRegister(SmallRegister());
  AugmentConfig cfg = FastAugmentConfig();
  cfg.use_embedding = false;  // deterministic blocks
  cfg.max_rounds = 5;
  auto vl = MakeDefaultVadaLink(cfg);
  ASSERT_TRUE(vl.Augment(&data.graph).ok());
  size_t edges = data.graph.edge_count();
  auto vl2 = MakeDefaultVadaLink(cfg);
  auto stats = vl2.Augment(&data.graph);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->links_added, 0u);
  EXPECT_EQ(data.graph.edge_count(), edges);
}

// ---- naive baseline ----------------------------------------------------------------

TEST(NaiveBaselineTest, QuadraticComparisons) {
  auto data = gen::GenerateRegister(SmallRegister());
  FamilyCandidate candidate(
      linkage::BayesLinkClassifier(company::DefaultPersonSchema()));
  auto stats = NaiveAugment(&data.graph, &candidate);
  ASSERT_TRUE(stats.ok());
  size_t n = data.persons.size();
  EXPECT_EQ(stats->pairs_compared, n * (n - 1) / 2);
  EXPECT_GT(stats->links_added, 0u);
}

TEST(NaiveBaselineTest, RejectsGlobalCandidate) {
  auto b = Figure1();
  ControlCandidate candidate;
  EXPECT_FALSE(NaiveAugment(&b.graph(), &candidate).ok());
}

TEST(NaiveBaselineTest, BlockedFindsExactlyTheCoBlockedNaiveLinks) {
  // Blocking may legitimately miss cross-block pairs (the completeness /
  // granularity tradeoff of Section 4.4) but must find *exactly* the
  // naive links whose endpoints share a block — no more, no fewer.
  auto a = gen::GenerateRegister(SmallRegister());
  auto b = gen::GenerateRegister(SmallRegister());
  FamilyCandidate cand1(
      linkage::BayesLinkClassifier(company::DefaultPersonSchema()));
  auto naive = NaiveAugment(&a.graph, &cand1);
  ASSERT_TRUE(naive.ok());

  AugmentConfig cfg = FastAugmentConfig();
  cfg.use_embedding = false;
  cfg.max_rounds = 1;
  VadaLink vl(cfg);
  vl.mutable_config()->blocking = company::DefaultPersonBlocking();
  vl.AddCandidate(std::make_unique<FamilyCandidate>(
      linkage::BayesLinkClassifier(company::DefaultPersonSchema())));
  auto blocked = vl.Augment(&b.graph);
  ASSERT_TRUE(blocked.ok());
  EXPECT_LE(blocked->links_added, naive->links_added);

  // Collect predicted family edges from both graphs; same seed, so node
  // ids are aligned across a and b.
  auto family_edges = [](const graph::PropertyGraph& g) {
    std::set<Pair> out;
    g.ForEachEdge([&](graph::EdgeId e) {
      const std::string& label = g.edge_label(e);
      if (label == "PartnerOf" || label == "ParentOf" ||
          label == "SiblingOf") {
        out.insert(std::minmax(g.edge_src(e), g.edge_dst(e)));
      }
    });
    return out;
  };
  std::set<Pair> naive_links = family_edges(a.graph);
  std::set<Pair> blocked_links = family_edges(b.graph);

  linkage::Blocker blocker(company::DefaultPersonBlocking());
  std::set<Pair> naive_coblocked;
  for (const Pair& p : naive_links) {
    if (blocker.BlockOf(a.graph, p.first) ==
        blocker.BlockOf(a.graph, p.second)) {
      naive_coblocked.insert(p);
    }
  }
  EXPECT_EQ(blocked_links, naive_coblocked);
}

}  // namespace
}  // namespace vadalink::core
