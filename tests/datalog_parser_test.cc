// datalog/: lexer and parser details (the engine test covers semantics).
#include <gtest/gtest.h>

#include "datalog/lexer.h"
#include "datalog/parser.h"

namespace vadalink::datalog {
namespace {

// ---- lexer ------------------------------------------------------------------

TEST(LexerTest, TokenKinds) {
  auto toks = Tokenize(R"(own(X, "acme", 0.5) -> q. % comment)");
  ASSERT_TRUE(toks.ok());
  std::vector<TokenType> kinds;
  for (const auto& t : *toks) kinds.push_back(t.type);
  EXPECT_EQ(kinds,
            (std::vector<TokenType>{
                TokenType::kIdent, TokenType::kLParen, TokenType::kVariable,
                TokenType::kComma, TokenType::kString, TokenType::kComma,
                TokenType::kDouble, TokenType::kRParen, TokenType::kArrow,
                TokenType::kIdent, TokenType::kDot, TokenType::kEof}));
}

TEST(LexerTest, NumbersIntVsDouble) {
  auto toks = Tokenize("42 0.5 1e3 7");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kInt);
  EXPECT_EQ((*toks)[0].int_value, 42);
  EXPECT_EQ((*toks)[1].type, TokenType::kDouble);
  EXPECT_DOUBLE_EQ((*toks)[1].double_value, 0.5);
  EXPECT_EQ((*toks)[2].type, TokenType::kDouble);
  EXPECT_DOUBLE_EQ((*toks)[2].double_value, 1000.0);
  EXPECT_EQ((*toks)[3].type, TokenType::kInt);
}

TEST(LexerTest, StringEscapes) {
  auto toks = Tokenize(R"("a\"b\nc")");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "a\"b\nc");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("\"abc").ok());
}

TEST(LexerTest, LineNumbersInErrors) {
  auto r = Tokenize("a.\nb.\n!x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST(LexerTest, CommentsSkipped) {
  auto toks = Tokenize("a. % x\n// y\nb.");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks->size(), 5u);  // a . b . EOF
}

TEST(LexerTest, OperatorsTwoChar) {
  auto toks = Tokenize("== != <= >= -> = < >");
  ASSERT_TRUE(toks.ok());
  std::vector<TokenType> kinds;
  for (const auto& t : *toks) kinds.push_back(t.type);
  EXPECT_EQ(kinds, (std::vector<TokenType>{
                       TokenType::kEqEq, TokenType::kNe, TokenType::kLe,
                       TokenType::kGe, TokenType::kArrow, TokenType::kEq,
                       TokenType::kLt, TokenType::kGt, TokenType::kEof}));
}

// ---- parser -----------------------------------------------------------------

class ParserTest : public ::testing::Test {
 protected:
  Catalog catalog;

  Result<Program> Parse(const std::string& src) {
    return ParseProgram(src, &catalog);
  }
};

TEST_F(ParserTest, FactAndRule) {
  auto p = Parse(R"(
    own("a", "b", 0.5).
    own(X, Y, W) -> edge(X, Y).
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->facts.size(), 1u);
  EXPECT_EQ(p->rules.size(), 1u);
  EXPECT_EQ(p->rules[0].body.size(), 1u);
  EXPECT_EQ(p->rules[0].head.size(), 1u);
  EXPECT_EQ(p->rules[0].var_names.size(), 3u);
}

TEST_F(ParserTest, FactsWithVariablesRejected) {
  EXPECT_FALSE(Parse("own(X, 1).").ok());
}

TEST_F(ParserTest, MultipleFactsOneStatement) {
  auto p = Parse("a(1), b(2).");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->facts.size(), 2u);
}

TEST_F(ParserTest, NegativeNumbers) {
  auto p = Parse("t(-5, -0.5).");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->facts[0].args[0].constant.AsInt(), -5);
  EXPECT_DOUBLE_EQ(p->facts[0].args[1].constant.AsDouble(), -0.5);
}

TEST_F(ParserTest, RuleToStringRoundTrips) {
  auto p = Parse(
      "own(X, Y, W), W >= 0.5, S = msum(W, <Y>) -> control(X, Y).");
  ASSERT_TRUE(p.ok());
  std::string s = RuleToString(p->rules[0], catalog);
  EXPECT_NE(s.find("own(X, Y, W)"), std::string::npos);
  EXPECT_NE(s.find("W >= 0.5"), std::string::npos);
  EXPECT_NE(s.find("msum(W, <Y>)"), std::string::npos);
  EXPECT_NE(s.find("-> control(X, Y)."), std::string::npos);
}

TEST_F(ParserTest, AggregateOnlyInAssignment) {
  EXPECT_FALSE(Parse("p(X), msum(X, <X>) > 1 -> q(X).").ok());
}

TEST_F(ParserTest, AtMostOneAggregate) {
  EXPECT_FALSE(
      Parse("p(X, Y), A = msum(X, <X>), B = msum(Y, <Y>) -> q(A, B).").ok());
}

TEST_F(ParserTest, NestedAggregateRejected) {
  EXPECT_FALSE(Parse("p(X), A = msum(X, <X>) + 1 -> q(A).").ok());
}

TEST_F(ParserTest, UnboundComparisonVarRejected) {
  EXPECT_FALSE(Parse("p(X), Z > 1 -> q(X).").ok());
}

TEST_F(ParserTest, NegationOnlyVarsRejected) {
  EXPECT_FALSE(Parse("p(X), not q(Y) -> r(X).").ok());
}

TEST_F(ParserTest, ExistentialVariablesAllowed) {
  auto p = Parse("p(X) -> q(X, Z).");
  ASSERT_TRUE(p.ok());
  auto ex = ExistentialVars(p->rules[0]);
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(p->rules[0].var_names[ex[0]], "Z");
}

TEST_F(ParserTest, FunctionCalls) {
  auto p = Parse(R"(p(X), Z = #sk("tag", X, 1 + 2) -> q(Z).)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const Literal& assign = p->rules[0].body[1];
  EXPECT_EQ(assign.kind, Literal::Kind::kAssignment);
  EXPECT_EQ(assign.rhs.op, Expr::Op::kCall);
  EXPECT_EQ(assign.rhs.children.size(), 3u);
}

TEST_F(ParserTest, ArithmeticPrecedence) {
  auto p = Parse("v(X), Y = 1 + X * 2 -> w(Y).");
  ASSERT_TRUE(p.ok());
  const Expr& e = p->rules[0].body[1].rhs;
  ASSERT_EQ(e.op, Expr::Op::kAdd);
  EXPECT_EQ(e.children[1].op, Expr::Op::kMul);
}

TEST_F(ParserTest, ParenthesesOverridePrecedence) {
  auto p = Parse("v(X), Y = (1 + X) * 2 -> w(Y).");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->rules[0].body[1].rhs.op, Expr::Op::kMul);
}

TEST_F(ParserTest, MissingDotFails) {
  EXPECT_FALSE(Parse("p(X) -> q(X)").ok());
}

TEST_F(ParserTest, ErrorsCarryLineNumbers) {
  auto p = Parse("a(1).\nb(2).\np(X) -> .");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 3"), std::string::npos);
}

TEST_F(ParserTest, ErrorsCarryColumnNumbers) {
  // The '.' after '->' sits at column 9 of line 3.
  auto p = Parse("a(1).\nb(2).\np(X) -> .");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 3, col 9"), std::string::npos);
}

TEST_F(ParserTest, RulesAndLiteralsCarrySpans) {
  auto p = Parse("a(1).\na(X), b(X) -> c(X).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->rules.size(), 1u);
  const Rule& rule = p->rules[0];
  EXPECT_EQ(rule.span.line, 2u);
  EXPECT_EQ(rule.span.col, 1u);
  ASSERT_EQ(rule.body.size(), 2u);
  EXPECT_EQ(rule.body[0].atom.span.line, 2u);
  EXPECT_EQ(rule.body[0].atom.span.col, 1u);
  EXPECT_EQ(rule.body[1].atom.span.line, 2u);
  EXPECT_EQ(rule.body[1].atom.span.col, 7u);
  ASSERT_EQ(p->facts.size(), 1u);
  EXPECT_EQ(p->facts[0].span.line, 1u);
}

TEST(LexerTest, ColumnNumbersInErrors) {
  auto r = Tokenize("ab !x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1, col 4"), std::string::npos);
}

TEST_F(ParserTest, UnknownDirectiveFails) {
  EXPECT_FALSE(Parse("@nope(\"x\").").ok());
}

TEST_F(ParserTest, MCountWithoutValue) {
  auto p = Parse("p(X), C = mcount(<X>) -> q(C).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->rules[0].body[1].rhs.agg, AggKind::kMCount);
  EXPECT_TRUE(p->rules[0].body[1].rhs.children.empty());
}

TEST_F(ParserTest, MultiHeadRule) {
  auto p = Parse("p(X) -> q(X), r(X, X).");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->rules[0].head.size(), 2u);
}

TEST_F(ParserTest, ZeroArityAtoms) {
  auto p = Parse("flag.\nflag -> go.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->facts.size(), 1u);
  EXPECT_EQ(p->rules.size(), 1u);
}

}  // namespace
}  // namespace vadalink::datalog
