// Cross-layer tests of the run-budget governor: deadline expiry mid-chase,
// budget exhaustion in the engine / embedding stages / path enumeration,
// graceful degradation of the Augment loop and cancellation mid-round.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "common/run_context.h"
#include "company/ownership.h"
#include "core/vada_link.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "embed/kmeans.h"
#include "embed/node2vec.h"
#include "tests/paper_fixtures.h"

namespace vadalink {
namespace {

using ::vadalink::testing::Figure1;

// Transitive closure over a short chain: enough derivations to need a few
// fixpoint iterations, small enough to run instantly when unlimited.
Result<datalog::Program> ChainProgram(datalog::Catalog* catalog,
                                      datalog::Database* db,
                                      int chain_length) {
  for (int i = 0; i < chain_length; ++i) {
    EXPECT_TRUE(db->InsertByName("e", {datalog::Value::Int(i),
                                       datalog::Value::Int(i + 1)}).ok());
  }
  return datalog::ParseProgram(R"(
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )", catalog);
}

// ---- datalog engine --------------------------------------------------------

TEST(GovernorEngineTest, ExpiredDeadlineAbortsMidFixpoint) {
  datalog::Catalog catalog;
  datalog::Database db(&catalog);
  auto program = ChainProgram(&catalog, &db, 20);
  ASSERT_TRUE(program.ok());

  RunContext ctx;
  ctx.set_deadline(RunContext::Clock::now() - std::chrono::seconds(1));
  datalog::EngineOptions options;
  options.run_ctx = &ctx;
  datalog::Engine engine(&db, options);
  Status st = engine.Run(*program);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  // The chase stopped before reaching the 20*21/2 tc fixpoint.
  EXPECT_LT(db.Scan("tc").size(), 210u);
}

TEST(GovernorEngineTest, WorkBudgetAbortsWithResourceExhausted) {
  datalog::Catalog catalog;
  datalog::Database db(&catalog);
  auto program = ChainProgram(&catalog, &db, 20);
  ASSERT_TRUE(program.ok());

  RunContext ctx;
  ctx.set_work_budget(5);  // one unit per derived fact
  datalog::EngineOptions options;
  options.run_ctx = &ctx;
  datalog::Engine engine(&db, options);
  Status st = engine.Run(*program);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(ctx.work_used(), 5u);
  EXPECT_LT(db.Scan("tc").size(), 210u);
}

TEST(GovernorEngineTest, UnlimitedContextReachesFixpoint) {
  datalog::Catalog catalog;
  datalog::Database db(&catalog);
  auto program = ChainProgram(&catalog, &db, 20);
  ASSERT_TRUE(program.ok());

  RunContext ctx;  // no limits set
  datalog::EngineOptions options;
  options.run_ctx = &ctx;
  datalog::Engine engine(&db, options);
  ASSERT_TRUE(engine.Run(*program).ok());
  EXPECT_EQ(db.Scan("tc").size(), 210u);
  EXPECT_EQ(ctx.work_used(), 210u);  // charged per derived fact
}

// ---- embedding stages ------------------------------------------------------

TEST(GovernorEmbedTest, Node2VecBudgetTruncatesWalks) {
  auto b = Figure1();
  embed::WalkGraph wg(b.graph(), "w");
  embed::WalkConfig cfg;
  cfg.walks_per_node = 4;
  RunContext ctx;
  ctx.set_work_budget(3);  // one unit per walk
  auto walks = embed::GenerateWalks(wg, cfg, &ctx);
  EXPECT_EQ(walks.size(), 3u);
  EXPECT_EQ(ctx.CheckNow().code(), StatusCode::kResourceExhausted);
  // Unlimited reference: every node contributes walks_per_node walks.
  auto all = embed::GenerateWalks(wg, cfg);
  EXPECT_EQ(all.size(), 4u * b.graph().node_count());
}

TEST(GovernorEmbedTest, KMeansBudgetInterruptsLloyd) {
  embed::EmbeddingMatrix m(32, 4);
  for (size_t v = 0; v < 32; ++v) {
    for (size_t d = 0; d < 4; ++d) {
      m.row(v)[d] = static_cast<float>((v * 7 + d * 13) % 11);
    }
  }
  embed::KMeansConfig cfg;
  cfg.k = 4;
  cfg.tolerance = 0.0;  // would iterate to max_iterations
  RunContext ctx;
  ctx.set_work_budget(2);  // one unit per Lloyd iteration
  auto res = embed::KMeans(m, cfg, &ctx);
  EXPECT_TRUE(res.interrupted);
  EXPECT_LE(res.iterations, 2u);
  EXPECT_EQ(res.assignment.size(), 32u);  // still full-length
}

// ---- ownership path enumeration -------------------------------------------

TEST(GovernorOwnershipTest, PathCapSetsTruncatedFlag) {
  auto b = Figure1();
  auto cg = company::CompanyGraph::FromPropertyGraph(b.graph()).value();
  company::OwnershipConfig cfg;
  cfg.max_paths = 2;
  company::OwnershipStats stats;
  auto phi = company::AccumulatedOwnershipSimplePaths(cg, b.id("P1"), cfg,
                                                      &stats);
  EXPECT_TRUE(stats.truncated);
  EXPECT_TRUE(stats.interrupt.ok());  // plain cap, not a governor trip
  EXPECT_LE(stats.paths_expanded, 2u);

  // Unlimited enumeration is complete and says so.
  company::OwnershipStats full;
  auto phi_full = company::AccumulatedOwnershipSimplePaths(
      cg, b.id("P1"), company::OwnershipConfig{}, &full);
  EXPECT_FALSE(full.truncated);
  EXPECT_GE(phi_full.size(), phi.size());
}

TEST(GovernorOwnershipTest, RunContextTripRecordsInterrupt) {
  auto b = Figure1();
  auto cg = company::CompanyGraph::FromPropertyGraph(b.graph()).value();
  RunContext ctx;
  ctx.set_work_budget(1);  // one unit per expanded path
  company::OwnershipStats stats;
  company::AccumulatedOwnershipSimplePaths(cg, b.id("P1"), {}, &stats, &ctx);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.interrupt.code(), StatusCode::kResourceExhausted);
}

// ---- the Augment loop ------------------------------------------------------

TEST(GovernorAugmentTest, ExpiredDeadlineStopsBeforeFirstRound) {
  auto b = Figure1();
  auto vl = core::MakeDefaultVadaLink();
  RunContext ctx;
  ctx.set_deadline(RunContext::Clock::now() - std::chrono::seconds(1));
  auto stats = vl.Augment(&b.graph(), &ctx);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();  // graceful
  EXPECT_TRUE(stats->truncated);
  EXPECT_EQ(stats->interrupt.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(stats->deadline_hits, 1u);
  EXPECT_EQ(stats->rounds, 0u);
  EXPECT_EQ(stats->links_added, 0u);
}

TEST(GovernorAugmentTest, PairBudgetKeepsCommittedLinks) {
  auto b = Figure1();
  core::AugmentConfig cfg;
  cfg.use_embedding = false;
  cfg.use_blocking = false;  // one block: pairwise comparisons guaranteed
  auto vl = core::MakeDefaultVadaLink(cfg);
  RunContext ctx;
  ctx.set_work_budget(0);  // first compared pair trips
  auto stats = vl.Augment(&b.graph(), &ctx);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->truncated);
  EXPECT_EQ(stats->interrupt.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(stats->rounds, 1u);
}

TEST(GovernorAugmentTest, EmbedBudgetDegradesRoundToBlockingOnly) {
  // Reference: the paper's use_embedding=false ablation.
  auto ablation_graph = Figure1();
  core::AugmentConfig ablation_cfg;
  ablation_cfg.use_embedding = false;
  auto ablation_vl = core::MakeDefaultVadaLink(ablation_cfg);
  auto ablation = ablation_vl.Augment(&ablation_graph.graph());
  ASSERT_TRUE(ablation.ok());

  // Embedding enabled, but a 1-unit stage budget trips instantly: every
  // round must degrade to exactly the ablation behaviour.
  auto b = Figure1();
  core::AugmentConfig cfg;
  cfg.use_embedding = true;
  cfg.embed_work_budget = 1;
  auto vl = core::MakeDefaultVadaLink(cfg);
  auto stats = vl.Augment(&b.graph());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->degraded_rounds, stats->rounds);
  EXPECT_GE(stats->degraded_rounds, 1u);
  EXPECT_FALSE(stats->truncated);  // the *run* was never limited
  EXPECT_EQ(stats->links_added, ablation->links_added);
  EXPECT_EQ(b.graph().edge_count(), ablation_graph.graph().edge_count());
}

// Global candidate that proposes one fresh (per-call) link and requests
// cancellation during its second round, mid-candidate-stage.
class CancellingCandidate : public core::Candidate {
 public:
  explicit CancellingCandidate(RunContext* ctx) : ctx_(ctx) {}
  const char* name() const override { return "cancelling"; }
  bool is_pairwise() const override { return false; }
  Result<std::vector<core::PredictedLink>> RunGlobal(
      const graph::PropertyGraph& g) override {
    (void)g;
    ++calls_;
    if (calls_ == 2) ctx_->RequestCancel();
    // A new pair each round keeps the loop from converging on its own.
    return std::vector<core::PredictedLink>{
        {0, static_cast<graph::NodeId>(1 + calls_),
         core::LinkClass::kControl, 1.0}};
  }
  int calls() const { return calls_; }

 private:
  RunContext* ctx_;
  int calls_ = 0;
};

TEST(GovernorAugmentTest, CancellationMidRoundPreservesEarlierRounds) {
  auto b = Figure1();
  RunContext ctx;
  core::AugmentConfig cfg;
  cfg.use_embedding = false;
  cfg.max_rounds = 10;
  core::VadaLink vl(cfg);
  auto candidate = std::make_unique<CancellingCandidate>(&ctx);
  CancellingCandidate* raw = candidate.get();
  vl.AddCandidate(std::move(candidate));

  auto stats = vl.Augment(&b.graph(), &ctx);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(raw->calls(), 2);
  EXPECT_EQ(stats->rounds, 2u);  // round 3 never starts
  EXPECT_TRUE(stats->truncated);
  EXPECT_EQ(stats->interrupt.code(), StatusCode::kCancelled);
  // Both committed links survive: round 1's, and round 2's up to the trip.
  EXPECT_NE(b.graph().FindEdge(0, 2, "Control"), graph::kInvalidEdge);
  EXPECT_NE(b.graph().FindEdge(0, 3, "Control"), graph::kInvalidEdge);
}

}  // namespace
}  // namespace vadalink
