// linkage/: string metrics, feature distances, blocking, Bayes classifier.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/property_graph.h"
#include "linkage/bayes.h"
#include "linkage/blocking.h"
#include "linkage/feature.h"
#include "linkage/string_metrics.h"

namespace vadalink::linkage {
namespace {

// ---- string metrics ---------------------------------------------------------

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(Levenshtein("", ""), 0u);
  EXPECT_EQ(Levenshtein("abc", "abc"), 0u);
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("abc", ""), 3u);
  EXPECT_EQ(Levenshtein("flaw", "lawn"), 2u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(Levenshtein("rossi", "russo"), Levenshtein("russo", "rossi"));
}

TEST(LevenshteinTest, Normalized) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abc", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("ab", "ac"), 0.5);
}

TEST(JaroTest, Extremes) {
  EXPECT_DOUBLE_EQ(Jaro("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(Jaro("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(Jaro("", ""), 1.0);
  EXPECT_DOUBLE_EQ(Jaro("a", ""), 0.0);
}

TEST(JaroTest, ClassicExample) {
  // MARTHA vs MARHTA: 0.944...
  EXPECT_NEAR(Jaro("MARTHA", "MARHTA"), 0.944444, 1e-5);
}

TEST(JaroTest, TextbookReferenceValues) {
  // The Winkler reference pairs (window = floor(max/2) - 1).
  EXPECT_NEAR(Jaro("DIXON", "DICKSONX"), 0.766667, 1e-5);
  EXPECT_NEAR(Jaro("DWAYNE", "DUANE"), 0.822222, 1e-5);
}

TEST(JaroTest, ShortStringWindowNeverBelowOne) {
  // |a| = |b| = 2 gives floor(2/2) - 1 = 0; the window must clamp to 1 so
  // adjacent transposed characters still match (m = 2, t = 1):
  // (2/2 + 2/2 + 1/2) / 3 = 5/6.
  EXPECT_NEAR(Jaro("AB", "BA"), 5.0 / 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(Jaro("AB", "AB"), 1.0);
  // Length-3 pairs sit just above the clamp boundary and keep working.
  EXPECT_GT(Jaro("CAT", "ACT"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double j = Jaro("MARTHA", "MARHTA");
  double jw = JaroWinkler("MARTHA", "MARHTA");
  EXPECT_GT(jw, j);
  EXPECT_NEAR(jw, 0.961111, 1e-5);
}

TEST(JaroWinklerTest, TextbookReferenceValues) {
  // Standard scaling p = 0.1, common prefixes DI (2) and D (1).
  EXPECT_NEAR(JaroWinkler("DIXON", "DICKSONX"), 0.813333, 1e-5);
  EXPECT_NEAR(JaroWinkler("DWAYNE", "DUANE"), 0.84, 1e-5);
}

TEST(SoundexTest, Classics) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
  EXPECT_EQ(Soundex(""), "0000");
}

TEST(SoundexTest, CaseInsensitive) {
  EXPECT_EQ(Soundex("rossi"), Soundex("ROSSI"));
}

TEST(NgramTest, JaccardBounds) {
  EXPECT_DOUBLE_EQ(NgramJaccard("abcd", "abcd"), 1.0);
  EXPECT_DOUBLE_EQ(NgramJaccard("abcd", "wxyz"), 0.0);
  double sim = NgramJaccard("abcd", "abce");
  EXPECT_GT(sim, 0.0);
  EXPECT_LT(sim, 1.0);
}

// ---- features -----------------------------------------------------------------

TEST(FeatureDistanceTest, ExactAndMissing) {
  using PV = graph::PropertyValue;
  EXPECT_DOUBLE_EQ(FeatureDistance(PV("a"), PV("a"), FeatureMetric::kExact),
                   0.0);
  EXPECT_DOUBLE_EQ(FeatureDistance(PV("a"), PV("b"), FeatureMetric::kExact),
                   1.0);
  EXPECT_DOUBLE_EQ(FeatureDistance(PV(), PV("b"), FeatureMetric::kExact),
                   1.0);
}

TEST(FeatureDistanceTest, Numeric) {
  using PV = graph::PropertyValue;
  EXPECT_DOUBLE_EQ(FeatureDistance(PV(int64_t{1960}), PV(int64_t{1964}),
                                   FeatureMetric::kAbsoluteDifference),
                   4.0);
  EXPECT_GT(FeatureDistance(PV(), PV(int64_t{1}),
                            FeatureMetric::kAbsoluteDifference),
            1e6);
}

TEST(FeatureSchemaTest, DistancesAndFlags) {
  graph::PropertyGraph g;
  auto a = g.AddNode("Person");
  auto b = g.AddNode("Person");
  g.SetNodeProperty(a, "last_name", "Rossi");
  g.SetNodeProperty(b, "last_name", "Rosso");
  g.SetNodeProperty(a, "birth_year", int64_t{1970});
  g.SetNodeProperty(b, "birth_year", int64_t{1990});

  FeatureSchema schema;
  schema.Add({.property = "last_name",
              .metric = FeatureMetric::kNormalizedLevenshtein,
              .threshold = 0.3});
  schema.Add({.property = "birth_year",
              .metric = FeatureMetric::kAbsoluteDifference,
              .threshold = 10.0});
  auto d = schema.Distances(g, a, b);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 0.2);  // 1 edit / 5 chars
  EXPECT_DOUBLE_EQ(d[1], 20.0);
  auto flags = schema.CloseFlags(g, a, b);
  EXPECT_TRUE(flags[0]);
  EXPECT_FALSE(flags[1]);
}

// ---- blocking -------------------------------------------------------------------

graph::PropertyGraph CityGraph() {
  graph::PropertyGraph g;
  auto add = [&](const char* city, const char* name) {
    auto n = g.AddNode("Person");
    g.SetNodeProperty(n, "city", city);
    g.SetNodeProperty(n, "last_name", name);
    return n;
  };
  add("Roma", "Rossi");
  add("Roma", "Rossi");
  add("Roma", "Bianchi");
  add("Milano", "Rossi");
  return g;
}

TEST(BlockerTest, GroupsByKeys) {
  auto g = CityGraph();
  Blocker blocker(BlockingConfig{.keys = {"city", "last_name"}});
  auto blocks_r = blocker.GroupByBlock(g, {0, 1, 2, 3});
  ASSERT_TRUE(blocks_r.ok()) << blocks_r.status().ToString();
  const auto& blocks = *blocks_r;
  EXPECT_EQ(blocks.size(), 3u);  // (Roma,Rossi) x2 | (Roma,Bianchi) | (Milano,Rossi)
  size_t sizes = 0;
  for (const auto& b : blocks) sizes += b.size();
  EXPECT_EQ(sizes, 4u);
}

TEST(BlockerTest, CaseInsensitive) {
  graph::PropertyGraph g;
  auto a = g.AddNode("P");
  auto b = g.AddNode("P");
  g.SetNodeProperty(a, "k", "ROSSI");
  g.SetNodeProperty(b, "k", "rossi");
  Blocker ci(BlockingConfig{.keys = {"k"}, .case_insensitive = true});
  Blocker cs(BlockingConfig{.keys = {"k"}, .case_insensitive = false});
  EXPECT_EQ(ci.BlockOf(g, a), ci.BlockOf(g, b));
  EXPECT_NE(cs.BlockOf(g, a), cs.BlockOf(g, b));
}

TEST(BlockerTest, PrefixAbsorbsSuffixTypos) {
  graph::PropertyGraph g;
  auto a = g.AddNode("P");
  auto b = g.AddNode("P");
  g.SetNodeProperty(a, "k", "Martinelli");
  g.SetNodeProperty(b, "k", "Martinello");
  Blocker prefix(BlockingConfig{.keys = {"k"}, .prefix_length = 4});
  EXPECT_EQ(prefix.BlockOf(g, a), prefix.BlockOf(g, b));
}

TEST(BlockerTest, MaxBlocksFoldsDomain) {
  auto g = CityGraph();
  Blocker blocker(BlockingConfig{.keys = {"city", "last_name"},
                                 .max_blocks = 2});
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    EXPECT_LT(blocker.BlockOf(g, n), 2u);
  }
}

TEST(BlockerTest, MissingKeyStillDeterministic) {
  graph::PropertyGraph g;
  auto a = g.AddNode("P");
  auto b = g.AddNode("P");
  Blocker blocker(BlockingConfig{.keys = {"nope"}});
  EXPECT_EQ(blocker.BlockOf(g, a), blocker.BlockOf(g, b));
}

// ---- Bayes ---------------------------------------------------------------------

TEST(GrahamTest, SingleProbabilityPassesThrough) {
  EXPECT_NEAR(BayesLinkClassifier::GrahamCombine({0.8}), 0.8, 1e-9);
  EXPECT_NEAR(BayesLinkClassifier::GrahamCombine({0.2}), 0.2, 1e-9);
}

TEST(GrahamTest, AgreementAmplifies) {
  double combined = BayesLinkClassifier::GrahamCombine({0.8, 0.8});
  EXPECT_GT(combined, 0.9);
  combined = BayesLinkClassifier::GrahamCombine({0.2, 0.2});
  EXPECT_LT(combined, 0.1);
}

TEST(GrahamTest, ConflictNeutralizes) {
  EXPECT_NEAR(BayesLinkClassifier::GrahamCombine({0.8, 0.2}), 0.5, 1e-9);
}

TEST(GrahamTest, EmptyIsNeutral) {
  EXPECT_DOUBLE_EQ(BayesLinkClassifier::GrahamCombine({}), 0.5);
}

TEST(GrahamTest, ExtremesAreClamped) {
  double p = BayesLinkClassifier::GrahamCombine({1.0, 0.0});
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

FeatureSchema TwoFeatureSchema() {
  FeatureSchema schema;
  schema.Add({.property = "last_name",
              .metric = FeatureMetric::kNormalizedLevenshtein,
              .threshold = 0.3,
              .prob_if_close = 0.9,
              .prob_if_far = 0.1});
  schema.Add({.property = "city",
              .metric = FeatureMetric::kExact,
              .threshold = 0.5,
              .prob_if_close = 0.7,
              .prob_if_far = 0.2});
  return schema;
}

TEST(BayesClassifierTest, SeparatesPairs) {
  graph::PropertyGraph g;
  auto mk = [&](const char* name, const char* city) {
    auto n = g.AddNode("Person");
    g.SetNodeProperty(n, "last_name", name);
    g.SetNodeProperty(n, "city", city);
    return n;
  };
  auto a = mk("Rossi", "Roma");
  auto b = mk("Rossi", "Roma");     // family-like
  auto c = mk("Bianchi", "Milano"); // unrelated

  BayesLinkClassifier clf(TwoFeatureSchema());
  EXPECT_GT(clf.LinkProbability(g, a, b), 0.9);
  EXPECT_LT(clf.LinkProbability(g, a, c), 0.1);
}

TEST(BayesClassifierTest, TrainingImprovesCalibration) {
  graph::PropertyGraph g;
  Rng rng(5);
  std::vector<TrainingPair> pairs;
  // Construct persons: linked pairs share surname+city, unlinked differ.
  for (int i = 0; i < 60; ++i) {
    std::string name = "Fam" + std::to_string(i);
    auto a = g.AddNode("Person");
    auto b = g.AddNode("Person");
    bool linked = i % 2 == 0;
    g.SetNodeProperty(a, "last_name", name);
    g.SetNodeProperty(b, "last_name",
                      linked ? name : "Other" + std::to_string(i));
    g.SetNodeProperty(a, "city", "Roma");
    g.SetNodeProperty(b, "city", linked ? "Roma" : "Milano");
    pairs.push_back({a, b, linked});
  }
  // Start from a deliberately wrong calibration.
  FeatureSchema schema = TwoFeatureSchema();
  (*schema.mutable_features())[0].prob_if_close = 0.5;
  (*schema.mutable_features())[0].prob_if_far = 0.5;
  BayesLinkClassifier clf(std::move(schema));
  clf.EstimateFromTraining(g, pairs, 0.5);
  // After training, closeness on last_name should be strong evidence.
  EXPECT_GT(clf.schema().features()[0].prob_if_close, 0.8);
  EXPECT_LT(clf.schema().features()[0].prob_if_far, 0.2);
}

}  // namespace
}  // namespace vadalink::linkage
