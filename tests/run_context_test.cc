// common/: the RunContext run-budget governor — deadlines, work budgets,
// cooperative cancellation, parent chaining and the amortized clock.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/run_context.h"

namespace vadalink {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

TEST(RunContextTest, NullContextIsUnlimited) {
  EXPECT_TRUE(CheckRun(nullptr).ok());
  EXPECT_TRUE(CheckRunNow(nullptr).ok());
  EXPECT_TRUE(ConsumeRunWork(nullptr, 1000000).ok());
}

TEST(RunContextTest, DefaultContextNeverTrips) {
  RunContext ctx;
  for (int i = 0; i < 3 * static_cast<int>(RunContext::kClockStride); ++i) {
    EXPECT_TRUE(ctx.Check().ok());
  }
  EXPECT_TRUE(ctx.CheckNow().ok());
  EXPECT_TRUE(ctx.ConsumeWork(1u << 20).ok());
  EXPECT_FALSE(ctx.has_deadline());
}

TEST(RunContextTest, ExpiredDeadlineTripsOnFirstCheck) {
  RunContext ctx;
  ctx.set_deadline(RunContext::Clock::now() - seconds(1));
  // Tick 0 always reads the clock, so even the amortized poll trips.
  Status st = ctx.Check();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(ctx.remaining_seconds(), 0.0);
}

TEST(RunContextTest, FutureDeadlineIsOk) {
  RunContext ctx;
  ctx.set_deadline_after_ms(60 * 1000);
  EXPECT_TRUE(ctx.CheckNow().ok());
  EXPECT_GT(ctx.remaining_seconds(), 1.0);
}

TEST(RunContextTest, AmortizedCheckSkipsClockBetweenStrides) {
  RunContext ctx;
  EXPECT_TRUE(ctx.Check().ok());  // tick 0 consumed (clock read, no limits)
  ctx.set_deadline(RunContext::Clock::now() - seconds(1));
  // Ticks 1..kClockStride-1 do not read the clock — the stale view stays OK.
  for (uint32_t t = 1; t < RunContext::kClockStride; ++t) {
    EXPECT_TRUE(ctx.Check().ok()) << "tick " << t;
  }
  // The next stride boundary re-reads the clock and trips.
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
  // CheckNow always sees the expired deadline.
  EXPECT_EQ(ctx.CheckNow().code(), StatusCode::kDeadlineExceeded);
}

TEST(RunContextTest, WorkBudgetTripsWhenExceeded) {
  RunContext ctx;
  ctx.set_work_budget(10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(ctx.ConsumeWork(1).ok()) << "unit " << i;
  }
  Status st = ctx.ConsumeWork(1);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.work_used(), 11u);
  // Sticky: later polls keep failing.
  EXPECT_EQ(ctx.Check().code(), StatusCode::kResourceExhausted);
}

TEST(RunContextTest, ZeroBudgetTripsOnFirstUnit) {
  RunContext ctx;
  ctx.set_work_budget(0);
  EXPECT_TRUE(ctx.Check().ok());  // no work consumed yet
  EXPECT_EQ(ctx.ConsumeWork(1).code(), StatusCode::kResourceExhausted);
}

TEST(RunContextTest, CancellationIsImmediateAndSticky) {
  RunContext ctx;
  EXPECT_FALSE(ctx.cancel_requested());
  ctx.RequestCancel();
  EXPECT_TRUE(ctx.cancel_requested());
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(ctx.CheckNow().code(), StatusCode::kCancelled);
}

TEST(RunContextTest, ChildEnforcesParentLimits) {
  RunContext parent;
  parent.set_work_budget(5);
  RunContext child;  // itself unlimited
  child.set_parent(&parent);
  EXPECT_TRUE(child.ConsumeWork(5).ok());
  EXPECT_EQ(parent.work_used(), 5u);  // charged through the chain
  EXPECT_EQ(child.ConsumeWork(1).code(), StatusCode::kResourceExhausted);
}

TEST(RunContextTest, ChildTripDoesNotAffectParent) {
  RunContext parent;
  RunContext child;
  child.set_parent(&parent);
  child.set_work_budget(0);
  EXPECT_EQ(child.ConsumeWork(1).code(), StatusCode::kResourceExhausted);
  // The parent saw the work but has no budget of its own.
  EXPECT_EQ(parent.work_used(), 1u);
  EXPECT_TRUE(parent.CheckNow().ok());
}

TEST(RunContextTest, ParentCancellationReachesChild) {
  RunContext parent;
  RunContext child;
  child.set_parent(&parent);
  parent.RequestCancel();
  EXPECT_EQ(child.Check().code(), StatusCode::kCancelled);
}

// ---- concurrent propagation (the serve-layer concurrency governor) ---------

TEST(RunContextTest, ConcurrentCancellationReachesEveryWorkerChild) {
  // N workers each run under their own child of one server-wide governor,
  // exactly like serve's worker pool. Cancelling the parent must be
  // observed by every worker at its next checkpoint, with no worker left
  // spinning.
  constexpr int kWorkers = 8;
  RunContext governor;
  std::atomic<int> tripped{0};
  std::atomic<bool> all_started{false};
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (int i = 0; i < kWorkers; ++i) {
    threads.emplace_back([&] {
      RunContext child;
      child.set_parent(&governor);
      while (true) {
        // CheckNow: the amortized clock stride must not delay observing a
        // cancellation (cancel is checked on every call regardless).
        Status st = child.CheckNow();
        if (!st.ok()) {
          EXPECT_EQ(st.code(), StatusCode::kCancelled);
          tripped.fetch_add(1);
          return;
        }
        all_started.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  while (!all_started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  governor.RequestCancel();
  for (auto& t : threads) t.join();
  EXPECT_EQ(tripped.load(), kWorkers);
}

TEST(RunContextTest, ConcurrentDeadlineTripsEachChildIndependently) {
  // Children with their own deadlines under a shared unlimited parent:
  // each trips on its own clock; the parent never trips.
  constexpr int kWorkers = 6;
  RunContext governor;
  std::atomic<int> deadline_trips{0};
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (int i = 0; i < kWorkers; ++i) {
    threads.emplace_back([&] {
      RunContext child;
      child.set_parent(&governor);
      child.set_deadline(RunContext::Clock::now() -
                         std::chrono::milliseconds(1));  // already expired
      Status st = child.CheckNow();
      ASSERT_FALSE(st.ok());
      EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
      deadline_trips.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(deadline_trips.load(), kWorkers);
  EXPECT_TRUE(governor.CheckNow().ok());
}

TEST(RunContextTest, ConcurrentWorkChargesParentExactlyOnce) {
  // Work consumed through concurrent children must be charged to the
  // shared parent exactly once per unit — no double counting, no loss.
  constexpr int kWorkers = 8;
  constexpr uint64_t kUnitsPerWorker = 10000;
  RunContext governor;  // unlimited budget, just counting
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (int i = 0; i < kWorkers; ++i) {
    threads.emplace_back([&] {
      RunContext child;
      child.set_parent(&governor);
      for (uint64_t u = 0; u < kUnitsPerWorker; ++u) {
        ASSERT_TRUE(child.ConsumeWork(1).ok());
      }
      EXPECT_EQ(child.work_used(), kUnitsPerWorker);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(governor.work_used(), kWorkers * kUnitsPerWorker);
}

TEST(RunContextTest, SharedBudgetTripsLateWorkersUnderConcurrency) {
  // A finite parent budget shared by concurrent children: once the pool
  // exhausts it, every subsequent ConsumeWork fails — a child can never
  // sneak work past the shared governor.
  constexpr int kWorkers = 4;
  RunContext governor;
  governor.set_work_budget(1000);
  std::atomic<uint64_t> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (int i = 0; i < kWorkers; ++i) {
    threads.emplace_back([&] {
      RunContext child;
      child.set_parent(&governor);
      while (child.ConsumeWork(1).ok()) accepted.fetch_add(1);
      // Sticky: once tripped it stays tripped.
      EXPECT_FALSE(child.ConsumeWork(1).ok());
    });
  }
  for (auto& t : threads) t.join();
  // Units are charged before the poll, so each worker's two failing calls
  // (loop exit + sticky re-check) still charge; accepted successes can
  // never exceed the budget.
  EXPECT_LE(accepted.load(), 1000u);
  EXPECT_GE(governor.work_used(), 1000u);
  EXPECT_LE(governor.work_used(), 1000u + 2 * kWorkers);
}

TEST(RunContextTest, NewStatusCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
}

}  // namespace
}  // namespace vadalink
