// common/: the deterministic fault-injection harness, plus one test per
// armed production site proving the injected Status propagates through the
// public API without crashes or half-mutated state.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/knowledge_graph.h"
#include "core/vada_link.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "graph/graph_io.h"
#include "tests/paper_fixtures.h"

namespace vadalink {
namespace {

using ::vadalink::testing::Figure1;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Reset(); }
};

// ---- mechanism -------------------------------------------------------------

TEST_F(FaultInjectionTest, UnarmedRegistryIsInert) {
  EXPECT_FALSE(FaultInjection::AnyArmed());
  EXPECT_TRUE(FaultInjection::Check("test.site").ok());
}

TEST_F(FaultInjectionTest, ArmedSiteFiresConfiguredStatus) {
  FaultInjection::Arm("test.site", {StatusCode::kIoError, "disk gone"});
  EXPECT_TRUE(FaultInjection::AnyArmed());
  Status st = FaultInjection::Check("test.site");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(st.message(), "disk gone");
  EXPECT_EQ(FaultInjection::HitCount("test.site"), 1u);
  EXPECT_EQ(FaultInjection::FireCount("test.site"), 1u);
}

TEST_F(FaultInjectionTest, UnarmedSitesAreStillCounted) {
  FaultInjection::Arm("test.armed", {StatusCode::kInternal, "boom"});
  EXPECT_TRUE(FaultInjection::Check("test.other").ok());
  EXPECT_EQ(FaultInjection::HitCount("test.other"), 1u);
  EXPECT_EQ(FaultInjection::FireCount("test.other"), 0u);
}

TEST_F(FaultInjectionTest, SkipDelaysFiring) {
  FaultSpec spec{StatusCode::kInternal, "boom"};
  spec.skip = 2;
  FaultInjection::Arm("test.site", spec);
  EXPECT_TRUE(FaultInjection::Check("test.site").ok());
  EXPECT_TRUE(FaultInjection::Check("test.site").ok());
  EXPECT_FALSE(FaultInjection::Check("test.site").ok());
  EXPECT_EQ(FaultInjection::HitCount("test.site"), 3u);
  EXPECT_EQ(FaultInjection::FireCount("test.site"), 1u);
}

TEST_F(FaultInjectionTest, MaxFiresLimitsInjections) {
  FaultSpec spec{StatusCode::kInternal, "boom"};
  spec.max_fires = 1;
  FaultInjection::Arm("test.site", spec);
  EXPECT_FALSE(FaultInjection::Check("test.site").ok());
  EXPECT_TRUE(FaultInjection::Check("test.site").ok());  // spent
  EXPECT_EQ(FaultInjection::FireCount("test.site"), 1u);
}

TEST_F(FaultInjectionTest, ProbabilisticFiringIsDeterministic) {
  FaultSpec spec{StatusCode::kInternal, "boom"};
  spec.probability = 0.5;
  spec.seed = 123;
  auto run = [&] {
    FaultInjection::Arm("test.site", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!FaultInjection::Check("test.site").ok());
    }
    FaultInjection::Reset();
    return fired;
  };
  std::vector<bool> first = run();
  size_t fires = 0;
  for (bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
  EXPECT_EQ(first, run());  // same seed, same decisions
}

TEST_F(FaultInjectionTest, DisarmAndResetClear) {
  FaultInjection::Arm("test.site", {StatusCode::kInternal, "boom"});
  FaultInjection::Disarm("test.site");
  EXPECT_FALSE(FaultInjection::AnyArmed());
  EXPECT_TRUE(FaultInjection::Check("test.site").ok());
  FaultInjection::Reset();
  EXPECT_EQ(FaultInjection::HitCount("test.site"), 0u);
}

// ---- armed production sites ------------------------------------------------

TEST_F(FaultInjectionTest, GraphIoSaveCsvPropagates) {
  auto b = Figure1();
  std::string base = ::testing::TempDir() + "/fi_save";
  FaultInjection::Arm("graph_io.save_csv", {StatusCode::kIoError, "no disk"});
  Status st = graph::SaveGraphCsv(b.graph(), base + "_nodes.csv",
                                  base + "_edges.csv");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  // The site is hit before any file is opened: nothing was written.
  EXPECT_FALSE(std::ifstream(base + "_nodes.csv").good());
}

TEST_F(FaultInjectionTest, GraphIoLoadCsvPropagates) {
  auto b = Figure1();
  std::string base = ::testing::TempDir() + "/fi_load";
  ASSERT_TRUE(graph::SaveGraphCsv(b.graph(), base + "_nodes.csv",
                                  base + "_edges.csv").ok());
  FaultInjection::Arm("graph_io.load_csv", {StatusCode::kIoError, "no disk"});
  auto g = graph::LoadGraphCsv(base + "_nodes.csv", base + "_edges.csv");
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
  FaultInjection::Reset();
  EXPECT_TRUE(graph::LoadGraphCsv(base + "_nodes.csv",
                                  base + "_edges.csv").ok());
}

TEST_F(FaultInjectionTest, EngineRunPropagates) {
  datalog::Catalog catalog;
  datalog::Database db(&catalog);
  auto program = datalog::ParseProgram("e(1,2). e(X,Y) -> tc(X,Y).", &catalog);
  ASSERT_TRUE(program.ok());
  datalog::Engine engine(&db);
  FaultInjection::Arm("engine.run", {StatusCode::kInternal, "chase died"});
  Status st = engine.Run(*program);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(st.message(), "chase died");
  EXPECT_TRUE(db.Scan("tc").empty());  // nothing derived
}

TEST_F(FaultInjectionTest, EngineStratumPropagates) {
  datalog::Catalog catalog;
  datalog::Database db(&catalog);
  auto program = datalog::ParseProgram("e(1,2). e(X,Y) -> tc(X,Y).", &catalog);
  ASSERT_TRUE(program.ok());
  datalog::Engine engine(&db);
  FaultInjection::Arm("engine.stratum", {StatusCode::kInternal, "stratum"});
  EXPECT_EQ(engine.Run(*program).code(), StatusCode::kInternal);
  EXPECT_GE(FaultInjection::FireCount("engine.stratum"), 1u);
}

TEST_F(FaultInjectionTest, CoreAugmentPropagates) {
  auto b = Figure1();
  auto vl = core::MakeDefaultVadaLink();
  FaultInjection::Arm("core.augment", {StatusCode::kInternal, "augment"});
  auto stats = vl.Augment(&b.graph());
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionTest, CoreAugmentRoundKeepsEarlierRounds) {
  auto b = Figure1();
  core::AugmentConfig cfg;
  cfg.use_embedding = false;  // deterministic and fast
  auto vl = core::MakeDefaultVadaLink(cfg);
  size_t edges_before = b.graph().edge_count();
  // Let round 1 commit its links, then fail entering round 2.
  FaultSpec spec{StatusCode::kInternal, "round died"};
  spec.skip = 1;
  FaultInjection::Arm("core.augment_round", spec);
  auto stats = vl.Augment(&b.graph());
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
  // Round 1 ran to completion and its links survive the injected failure.
  EXPECT_GT(b.graph().edge_count(), edges_before);
  EXPECT_EQ(FaultInjection::FireCount("core.augment_round"), 1u);
}

TEST_F(FaultInjectionTest, KnowledgeGraphReasonPropagates) {
  auto b = Figure1();
  core::KnowledgeGraph kg;
  *kg.mutable_graph() = b.graph();
  FaultInjection::Arm("kg.reason", {StatusCode::kInternal, "reason"});
  auto stats = kg.Reason();
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
  FaultInjection::Reset();
  EXPECT_TRUE(kg.Reason().ok());  // recovers once disarmed
}

}  // namespace
}  // namespace vadalink
