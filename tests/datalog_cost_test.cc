// datalog/analysis/cost.h: the static cost & termination analysis and its
// three consumers — the analyzer's VL04x/VL05x lints, the engine's
// cold-relation selectivity priors and the Engine::Query cost admission
// gate (DESIGN.md section 14). Also the satellite lattice edge cases of
// the demand dataflow (datalog/dataflow.h) and the harmful-variable
// masks on multi-head rules (datalog/analysis/harmful.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "datalog/analysis/analyzer.h"
#include "datalog/analysis/cost.h"
#include "datalog/analysis/harmful.h"
#include "datalog/dataflow.h"
#include "datalog/engine.h"
#include "datalog/magic.h"
#include "datalog/parser.h"

namespace vadalink::datalog {
namespace {

using analysis::AnalysisReport;
using analysis::AnalyzeCost;
using analysis::AnalyzeHarmfulVariables;
using analysis::AnalyzeProgram;
using analysis::AnalyzerOptions;
using analysis::CostOptions;
using analysis::CostReport;
using analysis::Diagnostic;
using analysis::kCostCap;
using analysis::SccGrowth;

class CostTest : public ::testing::Test {
 protected:
  Catalog catalog;
  Program program_;

  CostReport Cost(const std::string& src, const CostOptions& options = {}) {
    auto program = ParseProgram(src, &catalog);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    program_ = std::move(program).value();
    return AnalyzeCost(program_, catalog, options);
  }

  uint32_t Pred(const std::string& name) const {
    uint32_t id = catalog.predicates.Lookup(name);
    EXPECT_NE(id, UINT32_MAX) << name;
    return id;
  }

  static const Diagnostic* Find(const AnalysisReport& report,
                                const std::string& code) {
    for (const Diagnostic& d : report.diagnostics) {
      if (d.code == code) return &d;
    }
    return nullptr;
  }

  static size_t CountCode(const AnalysisReport& report,
                          const std::string& code) {
    return static_cast<size_t>(std::count_if(
        report.diagnostics.begin(), report.diagnostics.end(),
        [&](const Diagnostic& d) { return d.code == code; }));
  }
};

// ---- cardinality intervals ------------------------------------------------

TEST_F(CostTest, EdbIntervalsFromFactsAndDefaults) {
  // e has 2 asserted facts; r has none and no defining rule, so it gets
  // the default EDB cardinality (1000); p is derived.
  auto cost = Cost(R"(
    e(1, 2). e(2, 3).
    e(X, Y), r(Y, Z) -> p(X, Z).
    @output("p").
  )");
  const auto& e = cost.predicates[Pred("e")];
  EXPECT_DOUBLE_EQ(e.lo, 2.0);
  EXPECT_DOUBLE_EQ(e.hi, 2.0);
  const auto& r = cost.predicates[Pred("r")];
  EXPECT_DOUBLE_EQ(r.lo, 1000.0);
  EXPECT_DOUBLE_EQ(r.hi, 1000.0);
  // p: greedy join picks e (2 rows) first, then r with its first column
  // bound — 1000 / sqrt(1000) matches per binding.
  const auto& p = cost.predicates[Pred("p")];
  EXPECT_DOUBLE_EQ(p.lo, 0.0);
  EXPECT_NEAR(p.hi, 63.2456, 0.01);
  EXPECT_EQ(cost.growth[Pred("p")], SccGrowth::kBounded);
  EXPECT_EQ(cost.recursive_sccs, 0u);
  // join_cost sums the intermediates: 2 (after e) + 63.25 (after r).
  EXPECT_NEAR(cost.rules[0].join_cost, 65.2456, 0.01);
  EXPECT_NEAR(cost.program_cost, cost.rules[0].join_cost, 1e-9);
}

TEST_F(CostTest, DeclaredCardinalitiesOverrideDefaults) {
  // Same program, but the caller (the engine seeds from live Relation
  // sizes) declares r at 50 rows.
  auto program = ParseProgram(R"(
    e(1, 2). e(2, 3).
    e(X, Y), r(Y, Z) -> p(X, Z).
    @output("p").
  )",
                              &catalog);
  ASSERT_TRUE(program.ok());
  CostOptions options;
  options.edb_cardinalities.assign(catalog.predicates.size(), -1.0);
  options.edb_cardinalities[Pred("r")] = 50.0;
  auto cost = AnalyzeCost(*program, catalog, options);
  EXPECT_DOUBLE_EQ(cost.predicates[Pred("r")].hi, 50.0);
  EXPECT_NEAR(cost.predicates[Pred("p")].hi, 14.1421, 0.01);
}

TEST_F(CostTest, NullFreeRecursionIsLinearInEdb) {
  auto cost = Cost(R"(
    e(1, 2). e(2, 3).
    e(X, Y) -> tc(X, Y).
    tc(X, Y), e(Y, Z) -> tc(X, Z).
    @output("tc").
  )");
  EXPECT_EQ(cost.growth[Pred("e")], SccGrowth::kBounded);
  EXPECT_EQ(cost.growth[Pred("tc")], SccGrowth::kLinearInEdb);
  // adom = 2 facts x arity 2 = 4; the recursion can reach adom^2 = 16.
  EXPECT_DOUBLE_EQ(cost.predicates[Pred("tc")].hi, 16.0);
  EXPECT_EQ(cost.recursive_sccs, 1u);
  EXPECT_EQ(cost.warded_only_sccs, 0u);
}

TEST_F(CostTest, NullGeneratingRecursionIsWardedOnly) {
  // company -> psc (invents P) -> entity -> company: the invented null
  // feeds back into its own component.
  auto cost = Cost(R"(
    company("c").
    company(X) -> psc(X, P).
    psc(_X, P) -> entity(P).
    entity(P) -> company(P).
    @output("psc").
  )");
  EXPECT_EQ(cost.growth[Pred("company")], SccGrowth::kWardedOnly);
  EXPECT_EQ(cost.growth[Pred("psc")], SccGrowth::kWardedOnly);
  EXPECT_DOUBLE_EQ(cost.predicates[Pred("psc")].hi, kCostCap);
  EXPECT_EQ(cost.recursive_sccs, 1u);
  EXPECT_EQ(cost.warded_only_sccs, 1u);
  ASSERT_EQ(cost.warded_only_components.size(), 1u);
  std::vector<uint32_t> members = {Pred("company"), Pred("psc"),
                                   Pred("entity")};
  std::sort(members.begin(), members.end());
  EXPECT_EQ(cost.warded_only_components[0], members);
  ASSERT_EQ(cost.warded_only_witness_rule.size(), 1u);
  EXPECT_EQ(cost.warded_only_witness_rule[0], 0u);  // the existential rule
}

TEST_F(CostTest, ExistentialOutsideRecursionStaysBounded) {
  // The invented null never feeds back: no warded-only component.
  auto cost = Cost(R"(
    company("c").
    company(X) -> psc(X, P).
    @output("psc").
  )");
  EXPECT_EQ(cost.growth[Pred("psc")], SccGrowth::kBounded);
  EXPECT_EQ(cost.warded_only_sccs, 0u);
  EXPECT_EQ(cost.recursive_sccs, 0u);
}

// ---- rule shape flags -----------------------------------------------------

TEST_F(CostTest, CartesianAndSelfJoinFlags) {
  auto cost = Cost(R"(
    a(1). b(2). e(1, 2).
    a(X), b(Y) -> p(X, Y).
    a(X), b(X) -> q(X).
    a(X), b(Y), X < Y -> s(X, Y).
    e(X, _U), e(Y, _V) -> t(X, Y).
    e(X, Y), e(Y, Z) -> u(X, Z).
    @output("p").
  )");
  EXPECT_TRUE(cost.rules[0].cartesian);       // disjoint groups
  EXPECT_FALSE(cost.rules[1].cartesian);      // shared variable
  EXPECT_FALSE(cost.rules[2].cartesian);      // comparison joins the groups
  EXPECT_TRUE(cost.rules[3].cartesian);
  EXPECT_TRUE(cost.rules[3].unbound_self_join);
  EXPECT_EQ(cost.rules[3].self_join_pred, Pred("e"));
  EXPECT_FALSE(cost.rules[4].unbound_self_join);  // chained on Y
  EXPECT_FALSE(cost.rules[0].unbound_self_join);  // distinct predicates
}

// ---- analyzer diagnostics (VL04x / VL05x) ---------------------------------

class CostLintTest : public CostTest {
 protected:
  AnalysisReport Lint(const std::string& src, AnalyzerOptions options = {}) {
    auto program = ParseProgram(src, &catalog);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    program_ = std::move(program).value();
    options.cost = true;
    return AnalyzeProgram(program_, catalog, options);
  }
};

TEST_F(CostLintTest, CartesianBodyIsVL040) {
  auto report = Lint(R"(
    person(X), company(Y), asset(Z) -> exposure(X, Y, Z).
    @output("exposure").
  )");
  EXPECT_FALSE(report.has_errors());
  const Diagnostic* d = Find(report, "VL040");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, analysis::Severity::kWarning);
  EXPECT_EQ(d->rule_index, 0u);
  EXPECT_EQ(d->predicate, "exposure");
  EXPECT_NE(d->message.find("cartesian product"), std::string::npos);
  // 1000^3 default-cardinality bindings blow the default 1e8 budget too.
  EXPECT_NE(Find(report, "VL042"), nullptr);
}

TEST_F(CostLintTest, UnboundSelfJoinIsVL041) {
  auto report = Lint(R"(
    own(X, _A), own(Y, _B) -> copair(X, Y).
    @output("copair").
  )");
  const Diagnostic* d = Find(report, "VL041");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, analysis::Severity::kWarning);
  EXPECT_EQ(d->predicate, "own");
  EXPECT_NE(d->message.find("unbound self-join"), std::string::npos);
}

TEST_F(CostLintTest, BudgetOptionControlsVL042) {
  const std::string src = R"(
    person(X), company(Y) -> pair(X, Y).
    @output("pair").
  )";
  AnalyzerOptions generous;
  generous.cost_options.rule_output_budget = 1e12;
  EXPECT_EQ(CountCode(Lint(src, generous), "VL042"), 0u);

  Catalog fresh;
  catalog = std::move(fresh);
  AnalyzerOptions tight;
  tight.cost_options.rule_output_budget = 10.0;
  auto report = Lint(src, tight);
  const Diagnostic* d = Find(report, "VL042");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("exceeds the cost budget"), std::string::npos);
}

TEST_F(CostLintTest, WardedOnlyRecursionIsVL050) {
  auto report = Lint(R"(
    company("c").
    company(X) -> psc(X, P).
    psc(_X, P) -> entity(P).
    entity(P) -> company(P).
    @output("psc").
  )");
  EXPECT_FALSE(report.has_errors());
  const Diagnostic* d = Find(report, "VL050");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, analysis::Severity::kWarning);
  EXPECT_EQ(d->rule_index, 0u);  // the witness existential rule
  EXPECT_NE(d->message.find("warded chase"), std::string::npos);
  EXPECT_NE(d->message.find("company"), std::string::npos);
  EXPECT_TRUE(d->span.known());
  // The report's summary block mirrors the analysis.
  ASSERT_TRUE(report.cost.present);
  EXPECT_EQ(report.cost.warded_only_sccs, 1u);
  EXPECT_GE(report.cost.recursive_sccs, 1u);
}

TEST_F(CostLintTest, CostPassOffByDefault) {
  auto program = ParseProgram(R"(
    person(X), company(Y), asset(Z) -> exposure(X, Y, Z).
    @output("exposure").
  )",
                              &catalog);
  ASSERT_TRUE(program.ok());
  auto report = AnalyzeProgram(*program, catalog);
  EXPECT_EQ(CountCode(report, "VL040"), 0u);
  EXPECT_FALSE(report.cost.present);
}

TEST_F(CostLintTest, ReportSummaryCoversEveryPredicateAndRule) {
  auto report = Lint(R"(
    e(1, 2).
    e(X, Y) -> tc(X, Y).
    tc(X, Y), e(Y, Z) -> tc(X, Z).
    @output("tc").
  )");
  ASSERT_TRUE(report.cost.present);
  EXPECT_EQ(report.cost.predicates.size(), catalog.predicates.size());
  EXPECT_EQ(report.cost.rules.size(), program_.rules.size());
  for (const auto& p : report.cost.predicates) {
    EXPECT_LE(p.lo, p.hi) << p.predicate;
    EXPECT_TRUE(p.growth == "bounded" || p.growth == "linear_in_edb" ||
                p.growth == "warded_only")
        << p.growth;
  }
  EXPECT_GT(report.cost.program_cost, 0.0);
}

TEST_F(CostLintTest, DiagnosticsAreSortedByLineColCode) {
  // Hygiene lints (pass 4) and cost lints (pass 5) interleave on the
  // source line axis; the final report must still be sorted.
  auto report = Lint(R"(
    person(X), company(Y), asset(Z) -> exposure(X, Y, Z).
    own(X, Stray), own(Y, _B) -> copair(X, Y).
    @output("exposure").
    @output("copair").
  )");
  ASSERT_GE(report.diagnostics.size(), 3u);
  for (size_t i = 1; i < report.diagnostics.size(); ++i) {
    const Diagnostic& a = report.diagnostics[i - 1];
    const Diagnostic& b = report.diagnostics[i];
    EXPECT_LE(std::tie(a.span.line, a.span.col, a.code),
              std::tie(b.span.line, b.span.col, b.code))
        << a.code << " after " << b.code;
  }
}

// ---- engine consumers -----------------------------------------------------

TEST(CostEngineTest, ColdRelationPlansUseStaticPriors) {
  Catalog catalog;
  Database db(&catalog);
  auto program = ParseProgram(R"(
    a(1). a(2).
    a(X), cold(X, Y) -> p(X, Y).
    @output("p").
  )",
                              &catalog);
  ASSERT_TRUE(program.ok());
  Engine engine(&db);
  ASSERT_TRUE(engine.Run(*program).ok());
  // `cold` has no rows and no index statistics; the planner must fall
  // back to the analysis's cardinality interval instead of assuming free.
  EXPECT_GE(engine.stats().cost_priors_used, 1u);
}

TEST(CostEngineTest, QueryReportCarriesEstimate) {
  Catalog catalog;
  Database db(&catalog);
  auto program = ParseProgram(R"(
    e(1, 2). e(2, 3). e(3, 4).
    e(X, Y) -> tc(X, Y).
    tc(X, Y), e(Y, Z) -> tc(X, Z).
    @output("tc").
  )",
                              &catalog);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("tc(1, X)", &catalog);
  ASSERT_TRUE(goal.ok());
  Engine engine(&db);
  auto rep = engine.Query(*program, *goal);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_GT(rep->estimated_cost, 0.0);
  EXPECT_FALSE(rep->answers.empty());
}

TEST(CostEngineTest, OverBudgetQueryIsRejectedNamingTheEstimate) {
  Catalog catalog;
  Database db(&catalog);
  auto program = ParseProgram(R"(
    e(1, 2). e(2, 3). e(3, 4).
    e(X, Y) -> tc(X, Y).
    tc(X, Y), e(Y, Z) -> tc(X, Z).
    @output("tc").
  )",
                              &catalog);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("tc(1, X)", &catalog);
  ASSERT_TRUE(goal.ok());
  EngineOptions opts;
  opts.max_query_cost = 1e-6;  // everything is over budget
  Engine engine(&db, opts);
  auto rep = engine.Query(*program, *goal);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rep.status().message().find("cost admission"),
            std::string::npos);
  EXPECT_NE(rep.status().message().find("max query cost"),
            std::string::npos);
  // Rejected before evaluation: nothing was derived.
  EXPECT_EQ(engine.stats().facts_derived, 0u);
}

TEST(CostEngineTest, UnderBudgetQueryIsUnaffected) {
  Catalog catalog;
  Database db(&catalog);
  auto program = ParseProgram(R"(
    e(1, 2). e(2, 3). e(3, 4).
    e(X, Y) -> tc(X, Y).
    tc(X, Y), e(Y, Z) -> tc(X, Z).
    @output("tc").
  )",
                              &catalog);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("tc(1, X)", &catalog);
  ASSERT_TRUE(goal.ok());
  EngineOptions opts;
  opts.max_query_cost = 1e18;
  Engine engine(&db, opts);
  auto rep = engine.Query(*program, *goal);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->answers.size(), 3u);  // tc(1,2), tc(1,3), tc(1,4)
  EXPECT_GT(rep->estimated_cost, 0.0);
  EXPECT_LT(rep->estimated_cost, opts.max_query_cost);
}

// ---- satellite: demand lattice edge cases ---------------------------------

TEST(DemandLatticeTest, ConstSetWidensToAnyPastCap) {
  // kConstSetCap = 16: sixteen distinct constants stay finite, the
  // seventeenth overflows the position to kAny.
  Demand d;
  for (int i = 0; i < 16; ++i) {
    Demand s;
    s.kind = Demand::Kind::kConsts;
    s.consts = {Value::Int(i)};
    EXPECT_TRUE(d.Join(s) || i > 0);
  }
  EXPECT_EQ(d.kind, Demand::Kind::kConsts);
  EXPECT_EQ(d.consts.size(), 16u);

  Demand overflow;
  overflow.kind = Demand::Kind::kConsts;
  overflow.consts = {Value::Int(99)};
  EXPECT_TRUE(d.Join(overflow));
  EXPECT_EQ(d.kind, Demand::Kind::kAny);
  EXPECT_TRUE(d.consts.empty());

  // kAny is absorbing: further joins change nothing.
  EXPECT_FALSE(d.Join(overflow));
}

TEST(DemandLatticeTest, DuplicateConstantsDoNotWiden) {
  Demand d;
  Demand same;
  same.kind = Demand::Kind::kConsts;
  same.consts = {Value::Int(7)};
  EXPECT_TRUE(d.Join(same));
  for (int i = 0; i < 40; ++i) {
    EXPECT_FALSE(d.Join(same));  // already admitted, no change
  }
  EXPECT_EQ(d.kind, Demand::Kind::kConsts);
  EXPECT_EQ(d.consts.size(), 1u);
  EXPECT_TRUE(d.Admits(Value::Int(7)));
  EXPECT_TRUE(d.Admits(Value::Double(7.0)));  // numeric coercion
  EXPECT_FALSE(d.Admits(Value::Int(8)));
}

TEST(DemandLatticeTest, ConstConflictPruningCoercesDuplicateConstants) {
  Catalog catalog;
  auto program = ParseProgram(R"(
    src(5).
    src(Y) -> p(1, Y).
    src(Y) -> p(2, Y).
    src(Y) -> p(1.0, Y).
    @output("p").
  )",
                              &catalog);
  ASSERT_TRUE(program.ok());
  auto goal = ParseQueryGoal("p(1, X)", &catalog);
  ASSERT_TRUE(goal.ok());
  DataflowResult r = AnalyzeDemand(*program, catalog, goal->atom);
  // p(2, Y) conflicts with the demand set {1}; p(1.0, Y) is admitted via
  // numeric coercion (1 and 1.0 satisfy the same demand).
  EXPECT_EQ(r.rules_pruned_conflict, 1u);
  EXPECT_TRUE(r.rule_kept[0]);
  EXPECT_FALSE(r.rule_kept[1]);
  EXPECT_TRUE(r.rule_kept[2]);
}

// ---- satellite: harmful masks on multi-head rules -------------------------

TEST(HarmfulMultiHeadTest, NullAdmittingMasksCoverEveryHead) {
  Catalog catalog;
  auto program = ParseProgram(R"(
    a(1).
    a(X) -> q(X, N), s(N).
    q(_X, N) -> t(N).
    @output("t").
  )",
                              &catalog);
  ASSERT_TRUE(program.ok());
  auto report = AnalyzeHarmfulVariables(*program, catalog);
  const uint32_t q = catalog.predicates.Lookup("q");
  const uint32_t s = catalog.predicates.Lookup("s");
  const uint32_t t = catalog.predicates.Lookup("t");
  ASSERT_NE(q, UINT32_MAX);
  ASSERT_NE(s, UINT32_MAX);
  ASSERT_NE(t, UINT32_MAX);
  // The existential N lands in BOTH heads of the multi-head rule, and
  // propagates through q's second position into t.
  ASSERT_EQ(report.null_admitting[q].size(), 2u);
  EXPECT_FALSE(report.null_admitting[q][0]);  // X comes from the EDB
  EXPECT_TRUE(report.null_admitting[q][1]);
  ASSERT_GE(report.null_admitting[s].size(), 1u);
  EXPECT_TRUE(report.null_admitting[s][0]);
  ASSERT_GE(report.null_admitting[t].size(), 1u);
  EXPECT_TRUE(report.null_admitting[t][0]);
  ASSERT_EQ(report.rules.size(), 2u);
  EXPECT_TRUE(report.rules[0].has_existential);
  EXPECT_FALSE(report.rules[1].has_existential);
}

}  // namespace
}  // namespace vadalink::datalog
