// datalog/: the concrete status codes documented on Engine::Run and
// Engine::RunIncremental, one observable contract per code.
#include <gtest/gtest.h>

#include "common/run_context.h"
#include "datalog/engine.h"
#include "datalog/parser.h"

namespace vadalink::datalog {
namespace {

class EngineStatusTest : public ::testing::Test {
 protected:
  Catalog catalog;
  Database db{&catalog};

  Result<Program> Parse(const std::string& src) {
    return ParseProgram(src, &catalog);
  }
};

TEST_F(EngineStatusTest, RunReturnsInvalidArgumentOnEvaluationError) {
  auto program = Parse(R"(
    p(4). p(0).
    p(X), Y = 8 / X -> q(Y).
  )");
  ASSERT_TRUE(program.ok());
  Engine engine(&db);
  Status st = engine.Run(*program);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("division by zero"), std::string::npos);
}

TEST_F(EngineStatusTest, RunReturnsResourceExhaustedOnFactLimit) {
  auto program = Parse(R"(
    e(1,2). e(2,3). e(3,4). e(4,5). e(5,6).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )");
  ASSERT_TRUE(program.ok());
  EngineOptions opts;
  opts.max_facts = 8;  // 5 base facts + a handful of derivations
  Engine engine(&db, opts);
  Status st = engine.Run(*program);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST_F(EngineStatusTest, RunReturnsDeadlineExceededOnExpiredDeadline) {
  auto program = Parse(R"(
    e(1,2). e(2,3).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )");
  ASSERT_TRUE(program.ok());
  RunContext ctx;
  ctx.set_deadline(RunContext::Clock::now() - std::chrono::milliseconds(1));
  EngineOptions opts;
  opts.run_ctx = &ctx;
  Engine engine(&db, opts);
  EXPECT_EQ(engine.Run(*program).code(), StatusCode::kDeadlineExceeded);
}

TEST_F(EngineStatusTest, RunReturnsCancelledOnRequestedCancel) {
  auto program = Parse(R"(
    e(1,2). e(2,3).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )");
  ASSERT_TRUE(program.ok());
  RunContext ctx;
  ctx.RequestCancel();
  EngineOptions opts;
  opts.run_ctx = &ctx;
  Engine engine(&db, opts);
  EXPECT_EQ(engine.Run(*program).code(), StatusCode::kCancelled);
}

TEST_F(EngineStatusTest, RunIncrementalReturnsUnsupportedOnNegation) {
  auto program = Parse(R"(
    node(1). node(2). covered(1).
    node(X), not covered(X) -> uncovered(X).
  )");
  ASSERT_TRUE(program.ok());
  Engine engine(&db);
  ASSERT_TRUE(engine.Run(*program).ok());
  Status st = engine.RunIncremental(*program);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
  EXPECT_NE(st.message().find("negation"), std::string::npos);
}

TEST_F(EngineStatusTest, RunIncrementalReturnsInvalidArgumentAfterAbort) {
  auto program = Parse(R"(
    e(1,2). e(2,3). e(3,4).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )");
  ASSERT_TRUE(program.ok());
  RunContext ctx;
  ctx.set_work_budget(0);  // immediately exhausted
  EngineOptions opts;
  opts.run_ctx = &ctx;
  Engine engine(&db, opts);
  ASSERT_FALSE(engine.Run(*program).ok());  // aborted mid-chase
  // The delta window is unreliable after an abort; RunIncremental refuses.
  Status st = engine.RunIncremental(*program);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("aborted"), std::string::npos);
}

TEST_F(EngineStatusTest, RunAfterAbortReestablishesFixpoint) {
  const std::string rules = R"(
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )";
  auto program = Parse("e(1,2). e(2,3). e(3,4).\n" + rules);
  ASSERT_TRUE(program.ok());
  RunContext exhausted;
  exhausted.set_work_budget(0);
  EngineOptions opts;
  opts.run_ctx = &exhausted;
  Engine engine(&db, opts);
  ASSERT_FALSE(engine.Run(*program).ok());

  Engine fresh(&db);  // unlimited
  ASSERT_TRUE(fresh.Run(*program).ok());
  EXPECT_EQ(db.Scan("tc").size(), 6u);
  // A completed Run() unlocks RunIncremental again.
  EXPECT_TRUE(fresh.RunIncremental(*program).ok());
}

}  // namespace
}  // namespace vadalink::datalog
