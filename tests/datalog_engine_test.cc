// Engine semantics: fixpoints, recursion, negation, existentials, Skolems,
// monotonic aggregation, provenance.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "datalog/engine.h"
#include "datalog/parser.h"

namespace vadalink::datalog {
namespace {

/// Test fixture owning a catalog/database/engine trio.
class EngineTest : public ::testing::Test {
 protected:
  Catalog catalog;
  Database db{&catalog};

  /// Parses and runs a program; fails the test on error.
  void Run(const std::string& src, EngineOptions opts = {}) {
    auto program = ParseProgram(src, &catalog);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    engine_ = std::make_unique<Engine>(&db, opts);
    Status st = engine_->Run(*program);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  Status RunExpectError(const std::string& src) {
    auto program = ParseProgram(src, &catalog);
    if (!program.ok()) return program.status();
    engine_ = std::make_unique<Engine>(&db, EngineOptions{});
    return engine_->Run(*program);
  }

  /// Renders a predicate's tuples as a sorted set of strings.
  std::set<std::string> Tuples(const std::string& pred) {
    std::set<std::string> out;
    for (const auto& t : db.Scan(pred)) {
      std::string s;
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) s += ",";
        s += t[i].ToString(catalog.symbols);
      }
      out.insert(s);
    }
    return out;
  }

  size_t Count(const std::string& pred) {
    return db.Scan(pred).size();
  }

  Engine& engine() { return *engine_; }

 private:
  std::unique_ptr<Engine> engine_;
};

TEST_F(EngineTest, FactsOnly) {
  Run(R"(
    person("alice").
    person("bob").
    age("alice", 30).
  )");
  EXPECT_EQ(Count("person"), 2u);
  EXPECT_EQ(Tuples("age"), std::set<std::string>({"\"alice\",30"}));
}

TEST_F(EngineTest, DuplicateFactsDeduplicated) {
  Run(R"(
    p(1). p(1). p(1).
  )");
  EXPECT_EQ(Count("p"), 1u);
}

TEST_F(EngineTest, SimpleProjection) {
  Run(R"(
    own("a", "b", 0.6).
    own("b", "c", 0.4).
    own(X, Y, W) -> edge(X, Y).
  )");
  EXPECT_EQ(Tuples("edge"),
            std::set<std::string>({"\"a\",\"b\"", "\"b\",\"c\""}));
}

TEST_F(EngineTest, JoinTwoAtoms) {
  Run(R"(
    parent("a", "b").
    parent("b", "c").
    parent("c", "d").
    parent(X, Y), parent(Y, Z) -> grandparent(X, Z).
  )");
  EXPECT_EQ(Tuples("grandparent"),
            std::set<std::string>({"\"a\",\"c\"", "\"b\",\"d\""}));
}

TEST_F(EngineTest, TransitiveClosure) {
  Run(R"(
    e(1,2). e(2,3). e(3,4). e(4,5).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )");
  EXPECT_EQ(Count("tc"), 10u);  // 4+3+2+1
}

TEST_F(EngineTest, TransitiveClosureWithCycle) {
  Run(R"(
    e(1,2). e(2,3). e(3,1).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )");
  EXPECT_EQ(Count("tc"), 9u);  // complete on {1,2,3}
}

TEST_F(EngineTest, ConstantsInBodyFilter) {
  Run(R"(
    p(1, "x"). p(2, "y"). p(1, "z").
    p(1, V) -> q(V).
  )");
  EXPECT_EQ(Tuples("q"), std::set<std::string>({"\"x\"", "\"z\""}));
}

TEST_F(EngineTest, ComparisonFilters) {
  Run(R"(
    own("a","b",0.8). own("a","c",0.3). own("b","c",0.51).
    own(X,Y,W), W > 0.5 -> majority(X,Y).
  )");
  EXPECT_EQ(Tuples("majority"),
            std::set<std::string>({"\"a\",\"b\"", "\"b\",\"c\""}));
}

TEST_F(EngineTest, ArithmeticAssignment) {
  Run(R"(
    val(3). val(5).
    val(X), Y = X * X + 1 -> sq(X, Y).
  )");
  EXPECT_EQ(Tuples("sq"), std::set<std::string>({"3,10", "5,26"}));
}

TEST_F(EngineTest, StratifiedNegation) {
  Run(R"(
    node(1). node(2). node(3).
    covered(2).
    node(X), not covered(X) -> uncovered(X).
  )");
  EXPECT_EQ(Tuples("uncovered"), std::set<std::string>({"1", "3"}));
}

TEST_F(EngineTest, NegationThroughRecursionRejected) {
  Status st = RunExpectError(R"(
    p(1).
    p(X), not q(X) -> q(X).
  )");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, NegationAfterRecursionStratifies) {
  Run(R"(
    e(1,2). e(2,3).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
    e(X,Y), not tc(Y,X) -> oneway(X,Y).
  )");
  EXPECT_EQ(Count("oneway"), 2u);
}

TEST_F(EngineTest, ExistentialInventsNull) {
  Run(R"(
    person("p1").
    person(X) -> hasid(X, I).
  )");
  auto tuples = db.Scan("hasid");
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_TRUE(tuples[0][1].is_null());
}

TEST_F(EngineTest, ExistentialNullsMemoizedOnFrontier) {
  // Two rules firing on the same frontier twice must not invent new nulls
  // forever; recursion through an existential terminates.
  Run(R"(
    own("a","b",1.0).
    own(X,Y,W) -> link(L, X, Y).
    link(L, X, Y) -> relabeled(L).
  )");
  EXPECT_EQ(Count("link"), 1u);
  EXPECT_EQ(Count("relabeled"), 1u);
  EXPECT_EQ(engine().stats().nulls_invented, 1u);
}

TEST_F(EngineTest, DistinctFrontiersDistinctNulls) {
  Run(R"(
    p("a"). p("b").
    p(X) -> q(X, N).
  )");
  auto tuples = db.Scan("q");
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_NE(tuples[0][1], tuples[1][1]);
}

TEST_F(EngineTest, SkolemDeterministic) {
  Run(R"(
    company("acme"). company("bigco").
    company(N), Z = #sk("c", N) -> node(Z, N).
    company(N), Z = #sk("c", N) -> node2(Z, N).
  )");
  auto a = db.Scan("node");
  auto b = db.Scan("node2");
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  // Same (tag, args) -> same OID across rules.
  std::set<std::string> sa, sb;
  for (RowRef t : a) sa.insert(t[0].ToString(catalog.symbols) + t[1].ToString(catalog.symbols));
  for (RowRef t : b) sb.insert(t[0].ToString(catalog.symbols) + t[1].ToString(catalog.symbols));
  EXPECT_EQ(sa, sb);
}

TEST_F(EngineTest, SkolemDisjointRanges) {
  // Same argument, different tags -> different OIDs (persons vs companies
  // with the same name, as in the paper's input mapping).
  Run(R"(
    name("x").
    name(N), P = #sk("person", N), C = #sk("company", N) -> ids(P, C).
  )");
  auto tuples = db.Scan("ids");
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_NE(tuples[0][0], tuples[0][1]);
}

TEST_F(EngineTest, MonotonicSumThreshold) {
  // Company control, Definition 2.3 / Algorithm 5 of the paper.
  Run(R"(
    own("a","b",0.3).
    own("c","b",0.3).
    own("a","d",0.6).
    own("d","b",0.25).
    company("a"). company("b"). company("c"). company("d").
    company(X) -> control(X, X).
    control(X,Z), own(Z,Y,W), S = msum(W, <Z>), S > 0.5 -> control(X,Y).
  )");
  auto control = Tuples("control");
  // a controls d directly (0.6) and then b via a(0.3)+d(0.25)=0.55.
  EXPECT_TRUE(control.count("\"a\",\"d\""));
  EXPECT_TRUE(control.count("\"a\",\"b\""));
  // c owns only 0.3 of b.
  EXPECT_FALSE(control.count("\"c\",\"b\""));
}

TEST_F(EngineTest, MonotonicSumDistinctContributorsOnly) {
  // The same contributor must count once even if matched via different
  // body derivations.
  Run(R"(
    own("a","b",0.30).
    own2("a","b",0.30).
    own(X,Y,W) -> stake(X,Y,W).
    own2(X,Y,W) -> stake(X,Y,W).
    stake(X,Y,W), S = msum(W, <X>), S > 0.5 -> big(Y).
  )");
  // stake("a","b",0.30) exists once (set semantics); contributor "a"
  // contributes 0.30 once; 0.30 < 0.5.
  EXPECT_EQ(Count("big"), 0u);
}

TEST_F(EngineTest, MonotonicSumInHead) {
  // Accumulated ownership style: running values appear in the head
  // (Algorithm 6); final value is the maximum.
  Run(R"(
    contrib("k1", 1.0). contrib("k2", 2.0). contrib("k3", 4.0).
    contrib(K, V), S = msum(V, <K>) -> acc(S).
  )");
  auto acc = Tuples("acc");
  // Running sums depend on enumeration order, but the total must appear.
  bool has_total = acc.count("7") || acc.count("7.0");
  EXPECT_TRUE(has_total) << "acc misses total 7";
  EXPECT_LE(acc.size(), 3u);
}

TEST_F(EngineTest, MonotonicCount) {
  Run(R"(
    e("a"). e("b"). e("c").
    e(X), C = mcount(<X>), C >= 3 -> three().
  )");
  EXPECT_EQ(Count("three"), 1u);
}

TEST_F(EngineTest, MonotonicMax) {
  Run(R"(
    v(3.5). v(1.0). v(9.25).
    v(X), M = mmax(X, <X>) -> best(M).
  )");
  EXPECT_TRUE(Tuples("best").count("9.25"));
}

TEST_F(EngineTest, MonotonicMin) {
  Run(R"(
    v(3). v(7). v(2).
    v(X), M = mmin(X, <X>) -> low(M).
  )");
  EXPECT_TRUE(Tuples("low").count("2"));
}

TEST_F(EngineTest, GroupByHeadVariables) {
  // Sums are grouped per head binding (per Y), not global.
  Run(R"(
    own("a","y1",0.6). own("b","y1",0.2). own("c","y2",0.9).
    own(X,Y,W), S = msum(W, <X>), S > 0.5 -> controlled(Y).
  )");
  EXPECT_EQ(Tuples("controlled"),
            std::set<std::string>({"\"y1\"", "\"y2\""}));
}

TEST_F(EngineTest, MultipleHeads) {
  Run(R"(
    p(1).
    p(X) -> q(X), r(X, X).
  )");
  EXPECT_EQ(Count("q"), 1u);
  EXPECT_EQ(Count("r"), 1u);
}

TEST_F(EngineTest, SharedExistentialAcrossHeads) {
  Run(R"(
    p("a").
    p(X) -> q(X, N), r(N, X).
  )");
  auto q = db.Scan("q");
  auto r = db.Scan("r");
  ASSERT_EQ(q.size(), 1u);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(q[0][1], r[0][0]) << "same existential var must share the null";
}

TEST_F(EngineTest, BuiltinConcatAndCase) {
  Run(R"(
    name("Anna", "Rossi").
    name(F, L), X = #concat(#lower(F), "_", #lower(L)) -> key(X).
  )");
  EXPECT_EQ(Tuples("key"), std::set<std::string>({"\"anna_rossi\""}));
}

TEST_F(EngineTest, BuiltinHashMod) {
  Run(R"(
    item("a"). item("b"). item("c").
    item(X), B = #mod(#hash(X), 4) -> bucket(X, B).
  )");
  EXPECT_EQ(Count("bucket"), 3u);
  for (const auto& t : db.Scan("bucket")) {
    ASSERT_TRUE(t[1].is_int());
    EXPECT_GE(t[1].AsInt(), 0);
    EXPECT_LT(t[1].AsInt(), 4);
  }
}

TEST_F(EngineTest, UnknownFunctionRejected) {
  Status st = RunExpectError(R"(
    p(1).
    p(X), Y = #nosuchfn(X) -> q(Y).
  )");
  EXPECT_FALSE(st.ok());
}

TEST_F(EngineTest, CustomRegisteredFunction) {
  auto program = ParseProgram(R"(
    p(2). p(5).
    p(X), Y = #triple(X) -> q(Y).
  )", &catalog);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Engine engine(&db);
  engine.functions()->Register(
      "triple",
      [](FunctionContext&, const std::vector<Value>& args) -> Result<Value> {
        return Value::Int(args[0].AsInt() * 3);
      });
  ASSERT_TRUE(engine.Run(*program).ok());
  EXPECT_EQ(Tuples("q"), std::set<std::string>({"6", "15"}));
}

TEST_F(EngineTest, SameGenerationNonLinear) {
  Run(R"(
    flat(1,2). flat(3,4).
    up(2,5). up(4,5).
    flat(X,Y) -> sg(X,Y).
    up(X,U), sg(U,V), up(Y,V) -> sg(X,Y).
  )");
  // Non-linear recursion sanity: sg must stay within expected bounds.
  EXPECT_GE(Count("sg"), 2u);
}

TEST_F(EngineTest, FactLimitAborts) {
  EngineOptions opts;
  opts.max_facts = 50;
  auto program = ParseProgram(R"(
    n(0).
    n(X), Y = X + 1, Y < 1000 -> n(Y).
  )", &catalog);
  ASSERT_TRUE(program.ok());
  Engine engine(&db, opts);
  Status st = engine.Run(*program);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST_F(EngineTest, ArithmeticRecursionBounded) {
  Run(R"(
    n(0).
    n(X), Y = X + 1, Y < 10 -> n(Y).
  )");
  EXPECT_EQ(Count("n"), 10u);
}

TEST_F(EngineTest, ProvenanceExplain) {
  EngineOptions opts;
  opts.trace_provenance = true;
  auto program = ParseProgram(R"(
    e(1,2). e(2,3).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )", &catalog);
  ASSERT_TRUE(program.ok());
  Engine engine(&db, opts);
  ASSERT_TRUE(engine.Run(*program).ok());
  uint32_t tc = catalog.predicates.Lookup("tc");
  ASSERT_NE(tc, UINT32_MAX);
  std::string why = engine.Explain(tc, {Value::Int(1), Value::Int(3)});
  EXPECT_NE(why.find("tc(1, 3)"), std::string::npos);
  EXPECT_NE(why.find("rule"), std::string::npos);
  EXPECT_NE(why.find("(asserted)"), std::string::npos);
}

TEST_F(EngineTest, OutputDirectiveParsed) {
  auto program = ParseProgram(R"(
    @output("q").
    p(1).
    p(X) -> q(X).
  )", &catalog);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->outputs.size(), 1u);
}

TEST_F(EngineTest, RunIsIdempotent) {
  auto program = ParseProgram(R"(
    e(1,2). e(2,3).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )", &catalog);
  ASSERT_TRUE(program.ok());
  Engine engine(&db);
  ASSERT_TRUE(engine.Run(*program).ok());
  size_t n1 = Count("tc");
  ASSERT_TRUE(engine.Run(*program).ok());
  EXPECT_EQ(Count("tc"), n1);
}

TEST_F(EngineTest, BodyReorderingHandlesLateBinding) {
  // The comparison references a variable bound by the *second* atom; the
  // engine must reorder rather than fail.
  Run(R"(
    a(1). b(1, 10). b(1, 2).
    a(X), Y > 5, b(X, Y) -> big(Y).
  )");
  EXPECT_EQ(Tuples("big"), std::set<std::string>({"10"}));
}

TEST_F(EngineTest, ZeroAryPredicates) {
  Run(R"(
    go.
    go -> done.
  )");
  EXPECT_EQ(Count("done"), 1u);
}

TEST_F(EngineTest, SymbolConstantsEqualQuotedStrings) {
  Run(R"(
    t(company). t("company"). t(person).
  )");
  EXPECT_EQ(Count("t"), 2u);
}

TEST_F(EngineTest, RuntimeArityMismatchRejected) {
  Status st = RunExpectError(R"(
    p(1, 2).
    p(X) -> q(X).
  )");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, DivisionByZeroIsError) {
  Status st = RunExpectError(R"(
    p(1).
    p(X), Y = X / 0 -> q(Y).
  )");
  EXPECT_FALSE(st.ok());
}

TEST_F(EngineTest, MixedOrderedComparisonIsError) {
  Status st = RunExpectError(R"(
    p(1, "a").
    p(X, Y), X < Y -> q(X).
  )");
  EXPECT_FALSE(st.ok());
}

TEST_F(EngineTest, SymbolOrderedComparisonWorks) {
  Run(R"(
    w("apple"). w("banana"). w("cherry").
    w(X), X < "banana" -> early(X).
  )");
  EXPECT_EQ(Tuples("early"), std::set<std::string>({"\"apple\""}));
}

TEST_F(EngineTest, MultiLevelStratification) {
  Run(R"(
    e(1,2). e(2,3). e(1,3).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
    e(X,Y), not tc(Y,X) -> asym(X,Y).
    asym(X,Y), not special(X) -> plain(X,Y).
    special(1).
  )");
  // asym: all three edges (no cycles). plain: only those with X != 1.
  EXPECT_EQ(Count("asym"), 3u);
  EXPECT_EQ(Count("plain"), 1u);  // 2->3
}

TEST_F(EngineTest, AggregateNonNumericValueIsError) {
  Status st = RunExpectError(R"(
    p("a", "b").
    p(X, Y), S = msum(Y, <X>) -> q(S).
  )");
  EXPECT_FALSE(st.ok());
}

TEST_F(EngineTest, AggregateWithoutContributorsTakesFirstOnly) {
  // Without a contributor list the (empty) contributor key dedupes after
  // the first contribution: documented behaviour — always give <...>.
  Run(R"(
    v(1.0). v(2.0).
    v(X), S = msum(X) -> acc(S).
  )");
  EXPECT_EQ(Count("acc"), 1u);
}

TEST_F(EngineTest, NegationOverEmptyRelation) {
  Run(R"(
    p(1).
    p(X), not q(X, X) -> r(X).
  )");
  EXPECT_EQ(Count("r"), 1u);
}

TEST_F(EngineTest, ConstantOnlyHeadFromRule) {
  Run(R"(
    p(1).
    p(X) -> tagged(X, marker).
  )");
  EXPECT_EQ(Tuples("tagged"), std::set<std::string>({"1,\"marker\""}));
}

TEST_F(EngineTest, StatsArePopulated) {
  Run(R"(
    e(1,2). e(2,3).
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )");
  const auto& s = engine().stats();
  EXPECT_GE(s.strata, 1u);
  EXPECT_GT(s.body_matches, 0u);
  EXPECT_EQ(s.facts_derived, 3u);
  EXPECT_EQ(s.nulls_invented, 0u);
}

}  // namespace
}  // namespace vadalink::datalog
