// core/: the #linkprobability / string-similarity engine functions and the
// declarative Algorithm 7 — differential-tested against the compiled
// family detector.
#include <gtest/gtest.h>

#include <set>

#include "company/family.h"
#include "core/knowledge_graph.h"
#include "core/link_functions.h"
#include "core/mapping.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "gen/register_simulator.h"

namespace vadalink::core {
namespace {

using Pair = std::pair<graph::NodeId, graph::NodeId>;

TEST(LinkFunctionsTest, LinkProbabilityMatchesClassifier) {
  graph::PropertyGraph g;
  auto mk = [&](const char* last, const char* city, const char* bcity,
                int64_t by) {
    auto n = g.AddNode("Person");
    g.SetNodeProperty(n, "last_name", last);
    g.SetNodeProperty(n, "city", city);
    g.SetNodeProperty(n, "birth_city", bcity);
    g.SetNodeProperty(n, "birth_year", by);
    return n;
  };
  auto a = mk("Rossi", "Roma", "Roma", 1960);
  auto b = mk("Rossi", "Roma", "Napoli", 1962);

  linkage::BayesLinkClassifier classifier(company::DefaultPersonSchema());
  double expected = classifier.LinkProbability(g, a, b);

  datalog::Catalog catalog;
  datalog::SymbolTable& sym = catalog.symbols;
  datalog::FunctionRegistry registry;
  RegisterLinkageFunctions(&registry, classifier);
  const datalog::ExternalFn* fn = registry.Find("linkprobability");
  ASSERT_NE(fn, nullptr);
  datalog::FunctionContext ctx{&sym, nullptr};
  auto result = (*fn)(
      ctx, {datalog::Value::Symbol(sym.Intern("Rossi")),
            datalog::Value::Symbol(sym.Intern("Roma")),
            datalog::Value::Symbol(sym.Intern("Roma")),
            datalog::Value::Int(1960),
            datalog::Value::Symbol(sym.Intern("Rossi")),
            datalog::Value::Symbol(sym.Intern("Roma")),
            datalog::Value::Symbol(sym.Intern("Napoli")),
            datalog::Value::Int(1962)});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->AsDouble(), expected, 1e-12);
}

TEST(LinkFunctionsTest, WrongArityRejected) {
  datalog::FunctionRegistry registry;
  RegisterLinkageFunctions(
      &registry, linkage::BayesLinkClassifier(company::DefaultPersonSchema()));
  datalog::SymbolTable sym;
  datalog::FunctionContext ctx{&sym, nullptr};
  auto result = (*registry.Find("linkprobability"))(
      ctx, {datalog::Value::Int(1)});
  EXPECT_FALSE(result.ok());
}

TEST(LinkFunctionsTest, StringMetricsExposed) {
  datalog::FunctionRegistry registry;
  RegisterLinkageFunctions(
      &registry, linkage::BayesLinkClassifier(company::DefaultPersonSchema()));
  datalog::SymbolTable sym;
  datalog::FunctionContext ctx{&sym, nullptr};
  auto lev = (*registry.Find("levenshtein"))(
      ctx, {datalog::Value::Symbol(sym.Intern("kitten")),
            datalog::Value::Symbol(sym.Intern("sitting"))});
  ASSERT_TRUE(lev.ok());
  EXPECT_EQ(lev->AsInt(), 3);
  auto sx = (*registry.Find("soundex"))(
      ctx, {datalog::Value::Symbol(sym.Intern("Robert"))});
  ASSERT_TRUE(sx.ok());
  EXPECT_EQ(sym.Name(sx->symbol_id()), "R163");
}

TEST(LinkFunctionsTest, DeclarativeAlgorithm7MatchesCompiledDetector) {
  gen::RegisterConfig cfg;
  cfg.persons = 80;
  cfg.companies = 40;
  cfg.seed = 3;
  auto data = gen::GenerateRegister(cfg);

  // Compiled path: all-pairs Bayesian detection.
  linkage::BayesLinkClassifier classifier(company::DefaultPersonSchema());
  auto links = company::DetectPersonLinks(data.graph, data.persons,
                                          classifier, nullptr);
  std::set<Pair> compiled;
  for (const auto& l : links) compiled.insert(std::minmax(l.x, l.y));

  // Declarative path: Algorithm 7 on the engine.
  datalog::Catalog catalog;
  datalog::Database db(&catalog);
  ASSERT_TRUE(LoadGraphFacts(data.graph, &db).ok());
  auto program = datalog::ParseProgram(FamilyLinkProgram(), &catalog);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  datalog::Engine engine(&db);
  RegisterLinkageFunctions(engine.functions(), classifier);
  ASSERT_TRUE(engine.Run(*program).ok());
  std::set<Pair> declarative;
  for (const auto& t : db.Scan("partnerof")) {
    auto a = static_cast<graph::NodeId>(t[0].AsInt());
    auto b = static_cast<graph::NodeId>(t[1].AsInt());
    declarative.insert(std::minmax(a, b));
  }
  EXPECT_EQ(declarative, compiled);
  EXPECT_FALSE(declarative.empty());
}

TEST(LinkFunctionsTest, WorksThroughKnowledgeGraphFacade) {
  gen::RegisterConfig cfg;
  cfg.persons = 40;
  cfg.companies = 20;
  cfg.seed = 9;
  auto data = gen::GenerateRegister(cfg);

  KnowledgeGraph kg;
  *kg.mutable_graph() = std::move(data.graph);
  kg.RegisterFunction(
      "linkprobability",
      MakeLinkProbabilityFn(
          linkage::BayesLinkClassifier(company::DefaultPersonSchema())));
  ASSERT_TRUE(kg.AddRules(FamilyLinkProgram()).ok());
  auto stats = kg.Reason();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Detected links are materialised as PartnerOf edges.
  EXPECT_EQ(stats->links_materialised, kg.Query("partnerof").size());
  EXPECT_GT(stats->links_materialised, 0u);
}

}  // namespace
}  // namespace vadalink::core
