// serve/: ReasoningService driven directly (no TCP) — snapshot-isolated
// reads, cache/stale degradation, delta ingestion, crash containment.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/run_context.h"
#include "core/vadalog_programs.h"
#include "graph/property_graph.h"
#include "serve/service.h"

namespace vadalink::serve {
namespace {

// P0 -0.6-> C1 -0.8-> C2; P3 -0.3-> C1.  P0 controls C1 (and through it
// C2); P0's integrated ownership of C2 is 0.48.
graph::PropertyGraph TinyRegister() {
  graph::PropertyGraph g;
  graph::NodeId p0 = g.AddNode("Person");
  graph::NodeId c1 = g.AddNode("Company");
  graph::NodeId c2 = g.AddNode("Company");
  graph::NodeId p3 = g.AddNode("Person");
  auto share = [&](graph::NodeId s, graph::NodeId d, double w) {
    auto e = g.AddEdge(s, d, "Shareholding").value();
    g.SetEdgeProperty(e, "w", w);
  };
  share(p0, c1, 0.6);
  share(c1, c2, 0.8);
  share(p3, c1, 0.3);
  return g;
}

constexpr char kControlRules[] = R"(
  own(X, Y, W) -> control_direct(X, Y, W).
)";

Request MakeReq(const std::string& op, Json params,
                int64_t id = 1) {
  Request req;
  req.id = Json::Int(id);
  req.op = op;
  req.params = std::move(params);
  return req;
}

Json ParseLine(const std::string& line) {
  auto v = Json::Parse(line);
  EXPECT_TRUE(v.ok()) << line;
  return v.ok() ? std::move(v).value() : Json::Null();
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjection::Reset(); }
  void TearDown() override { FaultInjection::Reset(); }

  /// Initialises without rules (keyed queries need none).
  void InitPlain(ServiceOptions opts = {}) {
    service_ = std::make_unique<ReasoningService>(opts, &metrics_);
    ASSERT_TRUE(service_->Init(TinyRegister(), "").ok());
  }

  MetricsRegistry metrics_;
  std::unique_ptr<ReasoningService> service_;
};

TEST_F(ServiceTest, ControlQueryAgainstSnapshot) {
  InitPlain();
  Json params = Json::MakeObject();
  params.Set("source", Json::Int(0));
  Json resp = ParseLine(service_->Handle(MakeReq("control", params), nullptr));
  ASSERT_TRUE(resp.Find("ok")->AsBool()) << resp.Dump();
  EXPECT_EQ(resp.Find("graph_version")->AsInt(), 1);
  // P0 controls C1 directly (0.6) and C2 through it (C1 owns 0.8).
  EXPECT_EQ(resp.Find("result")->Find("count")->AsInt(), 2);
}

TEST_F(ServiceTest, SecondIdenticalQueryIsCached) {
  InitPlain();
  Json params = Json::MakeObject();
  params.Set("source", Json::Int(0));
  Json first = ParseLine(service_->Handle(MakeReq("control", params), nullptr));
  EXPECT_EQ(first.Find("cached"), nullptr);
  Json second =
      ParseLine(service_->Handle(MakeReq("control", params, 2), nullptr));
  ASSERT_NE(second.Find("cached"), nullptr);
  EXPECT_TRUE(second.Find("cached")->AsBool());
  EXPECT_EQ(second.Find("stale"), nullptr);  // current version, not stale
  // A fresh hit was computed at the current version; no separate marker.
  EXPECT_EQ(second.Find("computed_at_version"), nullptr);
  EXPECT_EQ(second.Find("result")->Dump(), first.Find("result")->Dump());
}

TEST_F(ServiceTest, ExpiredDeadlineFallsBackToStaleCachedResult) {
  InitPlain();
  Json params = Json::MakeObject();
  params.Set("target", Json::Int(2));
  // Warm the cache with an unlimited request.
  Json warm = ParseLine(service_->Handle(MakeReq("ubo", params), nullptr));
  ASSERT_TRUE(warm.Find("ok")->AsBool());

  // Ingest bumps the version, so the warm entry is no longer current.
  Json delta = Json::MakeObject();
  Json nodes = Json::MakeArray();
  Json node = Json::MakeObject();
  node.Set("label", Json::Str("Company"));
  nodes.Append(node);
  delta.Set("nodes", nodes);
  Json ing = ParseLine(service_->Handle(MakeReq("ingest", delta, 2), nullptr));
  ASSERT_TRUE(ing.Find("ok")->AsBool()) << ing.Dump();
  EXPECT_EQ(service_->version(), 2u);

  // A request whose deadline already passed degrades to the cached
  // answer, explicitly flagged stale (graceful degradation, not failure).
  RunContext expired;
  expired.set_deadline(RunContext::Clock::now() -
                       std::chrono::milliseconds(1));
  Json resp =
      ParseLine(service_->Handle(MakeReq("ubo", params, 3), &expired));
  ASSERT_TRUE(resp.Find("ok")->AsBool()) << resp.Dump();
  ASSERT_NE(resp.Find("stale"), nullptr);
  EXPECT_TRUE(resp.Find("stale")->AsBool());
  // graph_version is the snapshot the SERVER is at; the version the
  // cached answer was computed against rides separately, so a client can
  // tell exactly how far behind the degraded answer is.
  EXPECT_EQ(resp.Find("graph_version")->AsInt(), 2);
  ASSERT_NE(resp.Find("computed_at_version"), nullptr);
  EXPECT_EQ(resp.Find("computed_at_version")->AsInt(), 1);

  // Cold key + expired deadline: nothing to degrade to -> deterministic
  // DeadlineExceeded error.
  Json cold = Json::MakeObject();
  cold.Set("target", Json::Int(1));
  Json err = ParseLine(service_->Handle(MakeReq("ubo", cold, 4), &expired));
  ASSERT_FALSE(err.Find("ok")->AsBool());
  EXPECT_EQ(err.Find("error")->Find("code")->AsString(), "DeadlineExceeded");
}

TEST_F(ServiceTest, IngestPublishesNewVersionAndRecomputes) {
  InitPlain();
  Json params = Json::MakeObject();
  params.Set("source", Json::Int(3));
  Json before =
      ParseLine(service_->Handle(MakeReq("control", params), nullptr));
  EXPECT_EQ(before.Find("result")->Find("count")->AsInt(), 0);

  // P3 buys another 0.3 of C1 -> jointly 0.6 > 0.5: P3 now controls C1.
  Json delta = Json::MakeObject();
  Json edges = Json::MakeArray();
  Json e = Json::MakeObject();
  e.Set("src", Json::Int(3));
  e.Set("dst", Json::Int(1));
  e.Set("w", Json::Double(0.3));
  edges.Append(e);
  delta.Set("edges", edges);
  Json ing = ParseLine(service_->Handle(MakeReq("ingest", delta, 2), nullptr));
  ASSERT_TRUE(ing.Find("ok")->AsBool()) << ing.Dump();
  EXPECT_EQ(ing.Find("result")->Find("graph_version")->AsInt(), 2);

  // The cache entry from version 1 is not served as current at version 2.
  Json after =
      ParseLine(service_->Handle(MakeReq("control", params, 3), nullptr));
  EXPECT_EQ(after.Find("cached"), nullptr);
  EXPECT_EQ(after.Find("graph_version")->AsInt(), 2);
  EXPECT_EQ(after.Find("result")->Find("count")->AsInt(), 2);  // C1 and C2
}

TEST_F(ServiceTest, InvalidIngestLeavesStateUntouched) {
  InitPlain();
  Json delta = Json::MakeObject();
  Json edges = Json::MakeArray();
  Json e = Json::MakeObject();
  e.Set("src", Json::Int(0));
  e.Set("dst", Json::Int(999));  // out of range
  e.Set("w", Json::Double(0.5));
  edges.Append(e);
  delta.Set("edges", edges);
  Json resp = ParseLine(service_->Handle(MakeReq("ingest", delta), nullptr));
  ASSERT_FALSE(resp.Find("ok")->AsBool());
  EXPECT_EQ(resp.Find("error")->Find("code")->AsString(), "InvalidArgument");
  EXPECT_EQ(service_->version(), 1u);  // nothing published

  // Shareholding without weight is rejected up front too.
  Json delta2 = Json::MakeObject();
  Json edges2 = Json::MakeArray();
  Json e2 = Json::MakeObject();
  e2.Set("src", Json::Int(0));
  e2.Set("dst", Json::Int(1));
  edges2.Append(e2);
  delta2.Set("edges", edges2);
  Json resp2 =
      ParseLine(service_->Handle(MakeReq("ingest", delta2, 2), nullptr));
  ASSERT_FALSE(resp2.Find("ok")->AsBool());
  EXPECT_EQ(service_->version(), 1u);
}

TEST_F(ServiceTest, UnknownNodeIsNotFound) {
  InitPlain();
  Json params = Json::MakeObject();
  params.Set("source", Json::Int(12345));
  Json resp = ParseLine(service_->Handle(MakeReq("control", params), nullptr));
  ASSERT_FALSE(resp.Find("ok")->AsBool());
  EXPECT_EQ(resp.Find("error")->Find("code")->AsString(), "NotFound");
}

TEST_F(ServiceTest, BadThresholdIsInvalidArgument) {
  InitPlain();
  Json params = Json::MakeObject();
  params.Set("company", Json::Int(1));
  params.Set("threshold", Json::Double(1.5));
  Json resp =
      ParseLine(service_->Handle(MakeReq("closelinks", params), nullptr));
  ASSERT_FALSE(resp.Find("ok")->AsBool());
  EXPECT_EQ(resp.Find("error")->Find("code")->AsString(), "InvalidArgument");
}

TEST_F(ServiceTest, InjectedEvaluateFaultPoisonsOnlyThatRequest) {
  InitPlain();
  Json params = Json::MakeObject();
  params.Set("source", Json::Int(0));
  FaultInjection::Arm("serve.evaluate",
                      {StatusCode::kInternal, "poisoned", /*skip=*/0,
                       /*max_fires=*/1});
  Json poisoned =
      ParseLine(service_->Handle(MakeReq("control", params), nullptr));
  ASSERT_FALSE(poisoned.Find("ok")->AsBool());
  EXPECT_EQ(poisoned.Find("error")->Find("code")->AsString(), "Internal");
  // The very next request succeeds — contained, not wedged.
  Json next =
      ParseLine(service_->Handle(MakeReq("control", params, 2), nullptr));
  EXPECT_TRUE(next.Find("ok")->AsBool()) << next.Dump();
}

TEST_F(ServiceTest, IngestWithRulesRecoversFromIncrementalFault) {
  ServiceOptions opts;
  service_ = std::make_unique<ReasoningService>(opts, &metrics_);
  ASSERT_TRUE(service_->Init(TinyRegister(), kControlRules).ok());
  EXPECT_EQ(service_->version(), 1u);

  // The incremental chase dies (injected) — the service contains the
  // failure by re-establishing the fixpoint with a full Reason() and
  // still publishes a correct new version.
  FaultInjection::Arm("kg.reason_incremental",
                      {StatusCode::kIoError, "chase died", /*skip=*/0,
                       /*max_fires=*/1});
  Json delta = Json::MakeObject();
  Json edges = Json::MakeArray();
  Json e = Json::MakeObject();
  e.Set("src", Json::Int(3));
  e.Set("dst", Json::Int(2));
  e.Set("w", Json::Double(0.1));
  edges.Append(e);
  delta.Set("edges", edges);
  Json resp = ParseLine(service_->Handle(MakeReq("ingest", delta), nullptr));
  ASSERT_TRUE(resp.Find("ok")->AsBool()) << resp.Dump();
  ASSERT_NE(resp.Find("result")->Find("recovered"), nullptr);
  EXPECT_TRUE(resp.Find("result")->Find("recovered")->AsBool());
  EXPECT_EQ(service_->version(), 2u);
  FaultInjection::Reset();

  // Query still works against the recovered fixpoint.
  Json q = Json::MakeObject();
  q.Set("predicate", Json::Str("control_direct"));
  Json qr = ParseLine(service_->Handle(MakeReq("query", q, 2), nullptr));
  ASSERT_TRUE(qr.Find("ok")->AsBool()) << qr.Dump();
  EXPECT_EQ(qr.Find("result")->Find("count")->AsInt(), 4);  // 4 ownsd edges
}

TEST_F(ServiceTest, MetricsOpExportsRegistry) {
  InitPlain();
  Json params = Json::MakeObject();
  params.Set("source", Json::Int(0));
  (void)service_->Handle(MakeReq("control", params), nullptr);
  Json resp =
      ParseLine(service_->Handle(MakeReq("metrics", Json::MakeObject(), 2),
                                 nullptr));
  ASSERT_TRUE(resp.Find("ok")->AsBool());
  const Json* doc = resp.Find("result")->Find("metrics");
  ASSERT_NE(doc, nullptr);
  ASSERT_TRUE(doc->is_object());
  ASSERT_NE(doc->Find("counters"), nullptr);
}

TEST_F(ServiceTest, SleepOpIsTestGated) {
  InitPlain();  // enable_test_ops defaults to false
  Json params = Json::MakeObject();
  params.Set("ms", Json::Int(1));
  Json resp = ParseLine(service_->Handle(MakeReq("sleep", params), nullptr));
  ASSERT_FALSE(resp.Find("ok")->AsBool());
  EXPECT_EQ(resp.Find("error")->Find("code")->AsString(), "Unsupported");
}

// ---- query mode (engine-backed keyed queries) -----------------------------

// The cache key must separate the evaluation modes: the engine route
// answers with sorted tuples, the compiled route in discovery order, so a
// mode flip may change the result bytes for the same (op, node, threshold).
TEST(KeyedCacheKeyTest, ModeSuffixSeparatesEngineAndCompiledEntries) {
  std::string q = ReasoningService::KeyedCacheKey("control", 7, 0.5, true);
  std::string c = ReasoningService::KeyedCacheKey("control", 7, 0.5, false);
  EXPECT_NE(q, c);
  EXPECT_EQ(q, "control:7:0.5:q");
  EXPECT_EQ(c, "control:7:0.5:c");
}

TEST_F(ServiceTest, EngineQueryModeMatchesCompiledControlAnswers) {
  // Rules that define control/2 (the paper's Algorithm 5 at the service's
  // default 0.5 threshold) switch the cold `control` path to Engine::Query.
  auto sorted_ids = [](const Json& result) {
    std::vector<int64_t> ids;
    for (const Json& v : result.Find("controlled")->AsArray()) {
      ids.push_back(v.AsInt());
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  std::vector<std::vector<int64_t>> by_mode;
  for (bool query_mode : {true, false}) {
    ServiceOptions opts;
    opts.query_mode = query_mode;
    ReasoningService svc(opts, &metrics_);
    ASSERT_TRUE(
        svc.Init(TinyRegister(), core::ControlProgram(0.5)).ok());
    Json params = Json::MakeObject();
    params.Set("source", Json::Int(0));
    Json resp = ParseLine(svc.Handle(MakeReq("control", params), nullptr));
    ASSERT_TRUE(resp.Find("ok")->AsBool()) << resp.Dump();
    EXPECT_EQ(resp.Find("result")->Find("count")->AsInt(), 2);
    by_mode.push_back(sorted_ids(*resp.Find("result")));
  }
  EXPECT_EQ(by_mode[0], by_mode[1]);  // engine == compiled, as sets
  // The engine route ran and is visible in the metrics.
  EXPECT_GE(metrics_.CounterValue("serve.query.engine"), 1);
}

TEST_F(ServiceTest, ExplicitThresholdPinsControlToCompiledPath) {
  ServiceOptions opts;  // query_mode defaults to true
  ReasoningService svc(opts, &metrics_);
  ASSERT_TRUE(svc.Init(TinyRegister(), core::ControlProgram(0.5)).ok());
  uint64_t engine_before = metrics_.CounterValue("serve.query.engine");
  Json params = Json::MakeObject();
  params.Set("source", Json::Int(0));
  params.Set("threshold", Json::Double(0.9));
  Json resp = ParseLine(svc.Handle(MakeReq("control", params), nullptr));
  ASSERT_TRUE(resp.Find("ok")->AsBool()) << resp.Dump();
  // 0.6 < 0.9: nothing controlled at that threshold, and the engine route
  // (whose rules encode 0.5) was not consulted.
  EXPECT_EQ(resp.Find("result")->Find("count")->AsInt(), 0);
  EXPECT_EQ(metrics_.CounterValue("serve.query.engine"), engine_before);
}

TEST_F(ServiceTest, OverBudgetColdEngineQueryIsCostShed) {
  // --max-query-cost: a cold engine-routed query whose static cost
  // estimate exceeds the budget is rejected up front with
  // ResourceExhausted naming the estimate — the compiled fallback must
  // NOT fire (it would burn exactly the work the gate refused).
  ServiceOptions opts;  // query_mode defaults to true
  opts.max_query_cost = 1e-9;
  ReasoningService svc(opts, &metrics_);
  ASSERT_TRUE(svc.Init(TinyRegister(), core::ControlProgram(0.5)).ok());
  uint64_t fallbacks_before = metrics_.CounterValue("serve.query.fallbacks");
  Json params = Json::MakeObject();
  params.Set("source", Json::Int(0));
  Json resp = ParseLine(svc.Handle(MakeReq("control", params), nullptr));
  ASSERT_FALSE(resp.Find("ok")->AsBool()) << resp.Dump();
  EXPECT_EQ(resp.Find("error")->Find("code")->AsString(),
            "ResourceExhausted");
  const std::string msg = resp.Find("error")->Find("message")->AsString();
  EXPECT_NE(msg.find("cost admission"), std::string::npos) << msg;
  EXPECT_NE(msg.find("static cost estimate"), std::string::npos) << msg;
  EXPECT_NE(msg.find("max query cost"), std::string::npos) << msg;
  EXPECT_GE(metrics_.CounterValue("serve.requests.cost_shed"), 1u);
  EXPECT_EQ(metrics_.CounterValue("serve.query.fallbacks"),
            fallbacks_before);
}

TEST_F(ServiceTest, UnderBudgetTrafficUnaffectedByCostGate) {
  ServiceOptions opts;
  opts.max_query_cost = 1e18;  // generous: nothing sheds
  ReasoningService svc(opts, &metrics_);
  ASSERT_TRUE(svc.Init(TinyRegister(), core::ControlProgram(0.5)).ok());
  Json params = Json::MakeObject();
  params.Set("source", Json::Int(0));
  Json resp = ParseLine(svc.Handle(MakeReq("control", params), nullptr));
  ASSERT_TRUE(resp.Find("ok")->AsBool()) << resp.Dump();
  EXPECT_EQ(resp.Find("result")->Find("count")->AsInt(), 2);
  EXPECT_GE(metrics_.CounterValue("serve.query.engine"), 1u);
  EXPECT_EQ(metrics_.CounterValue("serve.requests.cost_shed"), 0u);
}

TEST_F(ServiceTest, QueryModeServesCloseLinksIdentically) {
  std::vector<std::string> dumps;
  for (bool query_mode : {true, false}) {
    ServiceOptions opts;
    opts.query_mode = query_mode;
    ReasoningService svc(opts, &metrics_);
    ASSERT_TRUE(svc.Init(TinyRegister(), "").ok());
    Json params = Json::MakeObject();
    params.Set("company", Json::Int(1));
    Json resp = ParseLine(svc.Handle(MakeReq("closelinks", params), nullptr));
    ASSERT_TRUE(resp.Find("ok")->AsBool()) << resp.Dump();
    dumps.push_back(resp.Find("result")->Dump());
  }
  EXPECT_EQ(dumps[0], dumps[1]);  // byte-identical responses
}

}  // namespace
}  // namespace vadalink::serve
