// company/: group-structure analytics (UBO, pyramids, cross-shareholding)
// and the temporal register evolution.
#include <gtest/gtest.h>

#include <set>

#include "company/groups.h"
#include "gen/evolution.h"
#include "graph/graph_algorithms.h"
#include "tests/paper_fixtures.h"

namespace vadalink::company {
namespace {

using ::vadalink::testing::CompanyGraphBuilder;
using ::vadalink::testing::Figure1;

CompanyGraph Build(CompanyGraphBuilder& b) {
  auto cg = CompanyGraph::FromPropertyGraph(b.graph());
  EXPECT_TRUE(cg.ok()) << cg.status().ToString();
  return std::move(cg).value();
}

// ---- ultimate owners ----------------------------------------------------------

TEST(UltimateOwnersTest, DirectAndIndirectStakes) {
  // P owns 80% of A; A owns 60% of B -> integrated 48% of B.
  CompanyGraphBuilder b;
  b.Person("P");
  b.Company("A");
  b.Company("B");
  b.Own("P", "A", 0.8);
  b.Own("A", "B", 0.6);
  auto cg = Build(b);
  auto owners = UltimateOwnersOf(cg, b.id("B"), 0.25);
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_EQ(owners[0].person, b.id("P"));
  EXPECT_NEAR(owners[0].integrated_ownership, 0.48, 1e-9);
}

TEST(UltimateOwnersTest, ThresholdFilters) {
  CompanyGraphBuilder b;
  b.Person("P");
  b.Company("A");
  b.Own("P", "A", 0.2);
  auto cg = Build(b);
  EXPECT_TRUE(UltimateOwnersOf(cg, b.id("A"), 0.25).empty());
  EXPECT_EQ(UltimateOwnersOf(cg, b.id("A"), 0.1).size(), 1u);
}

TEST(UltimateOwnersTest, SortedByStake) {
  CompanyGraphBuilder b;
  b.Person("P1");
  b.Person("P2");
  b.Company("A");
  b.Own("P1", "A", 0.3);
  b.Own("P2", "A", 0.6);
  auto cg = Build(b);
  auto owners = UltimateOwnersOf(cg, b.id("A"), 0.25);
  ASSERT_EQ(owners.size(), 2u);
  EXPECT_EQ(owners[0].person, b.id("P2"));
  EXPECT_EQ(owners[1].person, b.id("P1"));
}

TEST(UltimateOwnersTest, CrossHoldingsGeometricSeries) {
  // P owns 50% of A; A and B own 50% of each other. Integrated ownership
  // of A: 0.5 * (1 + 0.25 + 0.25^2 + ...) = 0.5 / 0.75 = 2/3.
  CompanyGraphBuilder b;
  b.Person("P");
  b.Company("A");
  b.Company("B");
  b.Own("P", "A", 0.5);
  b.Own("A", "B", 0.5);
  b.Own("B", "A", 0.5);
  auto cg = Build(b);
  OwnershipConfig cfg;
  cfg.max_depth = 200;
  cfg.epsilon = 1e-15;
  auto owners = UltimateOwnersOf(cg, b.id("A"), 0.25, cfg);
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_NEAR(owners[0].integrated_ownership, 0.5 / 0.75, 1e-9);
}

// ---- pyramids ----------------------------------------------------------------

TEST(PyramidTest, ChainDepth) {
  CompanyGraphBuilder b;
  b.Person("P");
  for (const char* c : {"A", "B", "C"}) b.Company(c);
  b.Own("P", "A", 0.6);
  b.Own("A", "B", 0.7);
  b.Own("B", "C", 0.8);
  auto cg = Build(b);
  EXPECT_EQ(ControlPyramidDepth(cg, b.id("P")), 3u);
  EXPECT_EQ(ControlPyramidDepth(cg, b.id("A")), 2u);
  EXPECT_EQ(ControlPyramidDepth(cg, b.id("C")), 0u);
}

TEST(PyramidTest, MinorityStakesDoNotCount) {
  CompanyGraphBuilder b;
  b.Person("P");
  b.Company("A");
  b.Company("B");
  b.Own("P", "A", 0.6);
  b.Own("A", "B", 0.5);  // exactly half: not a majority
  auto cg = Build(b);
  EXPECT_EQ(ControlPyramidDepth(cg, b.id("P")), 1u);
}

TEST(PyramidTest, ParallelEdgesSummed) {
  CompanyGraphBuilder b;
  b.Person("P");
  b.Company("A");
  b.Own("P", "A", 0.3);
  b.Own("P", "A", 0.3);
  auto cg = Build(b);
  EXPECT_EQ(ControlPyramidDepth(cg, b.id("P")), 1u);
}

TEST(PyramidTest, MajorityCycleTerminates) {
  CompanyGraphBuilder b;
  b.Person("P");
  b.Company("A");
  b.Company("B");
  b.Own("P", "A", 0.9);
  b.Own("A", "B", 0.9);
  b.Own("B", "A", 0.9);
  auto cg = Build(b);
  EXPECT_EQ(ControlPyramidDepth(cg, b.id("P")), 2u);  // A then B
}

TEST(PyramidTest, Figure1Depths) {
  auto b = Figure1();
  auto cg = Build(b);
  // P1 -0.8-> C (no further majority from C); P1 -0.75-> D (D's stakes are
  // minority): depth 1. P2 -0.6-> G -0.6-> H (H->I is 0.4): depth 2.
  EXPECT_EQ(ControlPyramidDepth(cg, b.id("P1")), 1u);
  EXPECT_EQ(ControlPyramidDepth(cg, b.id("P2")), 2u);
}

// ---- cross-shareholding ---------------------------------------------------------

TEST(CrossShareholdingTest, DetectsCycleAndBuyBack) {
  CompanyGraphBuilder b;
  for (const char* c : {"A", "B", "C", "D"}) b.Company(c);
  b.Own("A", "B", 0.3);
  b.Own("B", "A", 0.2);   // 2-cycle
  b.Own("C", "C", 0.05);  // buy-back
  b.Own("C", "D", 0.4);   // acyclic
  auto cg = Build(b);
  auto groups = CircularOwnershipGroups(cg);
  ASSERT_EQ(groups.size(), 2u);
  bool found_cycle = false, found_buyback = false;
  for (const auto& g : groups) {
    if (g.is_buy_back) {
      found_buyback = true;
      EXPECT_EQ(g.members, std::vector<graph::NodeId>{b.id("C")});
    } else {
      found_cycle = true;
      std::set<graph::NodeId> s(g.members.begin(), g.members.end());
      EXPECT_EQ(s, (std::set<graph::NodeId>{b.id("A"), b.id("B")}));
    }
  }
  EXPECT_TRUE(found_cycle);
  EXPECT_TRUE(found_buyback);
}

TEST(CrossShareholdingTest, AcyclicGraphHasNoGroups) {
  auto b = Figure1();
  auto cg = Build(b);
  EXPECT_TRUE(CircularOwnershipGroups(cg).empty());
}

TEST(CrossShareholdingTest, PersonsNeverInGroups) {
  // Persons cannot be owned, so cycles through persons are impossible; a
  // person-owned cycle still only lists companies.
  CompanyGraphBuilder b;
  b.Person("P");
  b.Company("A");
  b.Company("B");
  b.Own("P", "A", 0.5);
  b.Own("A", "B", 0.3);
  b.Own("B", "A", 0.3);
  auto cg = Build(b);
  auto groups = CircularOwnershipGroups(cg);
  ASSERT_EQ(groups.size(), 1u);
  for (graph::NodeId m : groups[0].members) {
    EXPECT_TRUE(cg.is_company(m));
  }
}

// ---- register evolution ----------------------------------------------------------

TEST(EvolutionTest, OneSnapshotPerYear) {
  gen::EvolutionConfig cfg;
  cfg.first_year = 2005;
  cfg.last_year = 2010;
  cfg.initial.persons = 120;
  cfg.initial.companies = 90;
  auto snapshots = gen::SimulateEvolution(cfg);
  ASSERT_EQ(snapshots.size(), 6u);
  for (size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i].year, 2005 + static_cast<int>(i));
  }
}

TEST(EvolutionTest, SnapshotsAreValidCompanyGraphs) {
  gen::EvolutionConfig cfg;
  cfg.first_year = 2005;
  cfg.last_year = 2012;
  cfg.initial.persons = 150;
  cfg.initial.companies = 100;
  for (const auto& snap : gen::SimulateEvolution(cfg)) {
    auto cg = CompanyGraph::FromPropertyGraph(snap.graph);
    ASSERT_TRUE(cg.ok()) << "year " << snap.year << ": "
                         << cg.status().ToString();
  }
}

TEST(EvolutionTest, PopulationGrowsAndCompaniesTurnOver) {
  gen::EvolutionConfig cfg;
  cfg.first_year = 2005;
  cfg.last_year = 2018;
  cfg.initial.persons = 200;
  cfg.initial.companies = 150;
  auto snapshots = gen::SimulateEvolution(cfg);
  const auto& first = snapshots.front();
  const auto& last = snapshots.back();
  EXPECT_GT(last.persons.size(), first.persons.size());
  // Some newly incorporated companies carry a recent inc_year.
  bool recent = false;
  for (graph::NodeId c : last.companies) {
    if (last.graph.GetNodeProperty(c, "inc_year").AsInt() >= 2015) {
      recent = true;
    }
  }
  EXPECT_TRUE(recent);
}

TEST(EvolutionTest, EntityIdsStableAcrossYears) {
  gen::EvolutionConfig cfg;
  cfg.first_year = 2005;
  cfg.last_year = 2008;
  cfg.initial.persons = 80;
  cfg.initial.companies = 60;
  auto snapshots = gen::SimulateEvolution(cfg);
  // Person entity 0 keeps its identity (same name) across snapshots.
  auto name_of_eid0 = [](const gen::YearlySnapshot& snap) {
    for (graph::NodeId p : snap.persons) {
      if (snap.graph.GetNodeProperty(p, "eid").AsInt() == 0) {
        return snap.graph.GetNodeProperty(p, "first_name").AsString() +
               snap.graph.GetNodeProperty(p, "last_name").AsString();
      }
    }
    return std::string("<missing>");
  };
  std::string first = name_of_eid0(snapshots.front());
  EXPECT_NE(first, "<missing>");
  for (const auto& snap : snapshots) {
    EXPECT_EQ(name_of_eid0(snap), first);
  }
}

TEST(EvolutionTest, Deterministic) {
  gen::EvolutionConfig cfg;
  cfg.first_year = 2005;
  cfg.last_year = 2009;
  cfg.initial.persons = 60;
  cfg.initial.companies = 40;
  auto a = gen::SimulateEvolution(cfg);
  auto b = gen::SimulateEvolution(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].graph.node_count(), b[i].graph.node_count());
    EXPECT_EQ(a[i].graph.edge_count(), b[i].graph.edge_count());
  }
}

}  // namespace
}  // namespace vadalink::company
