// common/metrics.h: registry semantics, histogram bucketing, span nesting,
// trip attribution and the stable-schema JSON document.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/run_context.h"

namespace vadalink {
namespace {

TEST(MetricsCounterTest, AddAndRead) {
  MetricsRegistry reg;
  reg.Counter("a.b")->Add(3);
  reg.Counter("a.b")->Increment();
  EXPECT_EQ(reg.CounterValue("a.b"), 4u);
  EXPECT_EQ(reg.CounterValue("never.touched"), 0u);
}

TEST(MetricsCounterTest, PointerIsStableAcrossLookups) {
  MetricsRegistry reg;
  MetricsCounter* first = reg.Counter("x");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(reg.Counter("x"), first);
  }
}

TEST(MetricsCounterTest, ConcurrentAddsAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      MetricsCounter* c = reg.Counter("contended");
      for (int i = 0; i < kAddsPerThread; ++i) c->Increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.CounterValue("contended"),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(MetricsGaugeTest, LastWriteWins) {
  MetricsRegistry reg;
  reg.Gauge("inertia")->Set(3.5);
  reg.Gauge("inertia")->Set(1.25);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("inertia"), 1.25);
}

TEST(MetricsHistogramTest, BucketOfIsBitWidth) {
  EXPECT_EQ(MetricsHistogram::BucketOf(0), 0u);
  EXPECT_EQ(MetricsHistogram::BucketOf(1), 1u);
  EXPECT_EQ(MetricsHistogram::BucketOf(2), 2u);
  EXPECT_EQ(MetricsHistogram::BucketOf(3), 2u);
  EXPECT_EQ(MetricsHistogram::BucketOf(4), 3u);
  EXPECT_EQ(MetricsHistogram::BucketOf(7), 3u);
  EXPECT_EQ(MetricsHistogram::BucketOf(8), 4u);
  // Values past the last finite bound land in the catch-all.
  EXPECT_EQ(MetricsHistogram::BucketOf(UINT64_MAX),
            MetricsHistogram::kBuckets - 1);
}

TEST(MetricsHistogramTest, BucketUpperBoundsAreMonotone) {
  for (size_t i = 1; i < MetricsHistogram::kBuckets; ++i) {
    EXPECT_GT(MetricsHistogram::BucketUpperBound(i),
              MetricsHistogram::BucketUpperBound(i - 1))
        << "bucket " << i;
  }
}

TEST(MetricsHistogramTest, CountAndSum) {
  MetricsRegistry reg;
  MetricsHistogram* h = reg.Histogram("sizes");
  for (uint64_t v : {0u, 1u, 1u, 5u, 100u}) h->Record(v);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->sum(), 107u);
}

TEST(ScopedSpanTest, NestsViaThreadLocalStack) {
  MetricsRegistry reg;
  {
    ScopedSpan outer(&reg, "augment");
    EXPECT_EQ(outer.path(), "augment");
    {
      ScopedSpan mid(&reg, "round0");
      EXPECT_EQ(mid.path(), "augment/round0");
      ScopedSpan inner(&reg, "embed");
      EXPECT_EQ(inner.path(), "augment/round0/embed");
    }
    // Sibling after the nested scope closed: same depth, fresh leaf.
    ScopedSpan sibling(&reg, "round1");
    EXPECT_EQ(sibling.path(), "augment/round1");
  }
  EXPECT_EQ(reg.SpanValue("augment").count, 1u);
  EXPECT_EQ(reg.SpanValue("augment/round0").count, 1u);
  EXPECT_EQ(reg.SpanValue("augment/round0/embed").count, 1u);
  EXPECT_EQ(reg.SpanValue("augment/round1").count, 1u);
  EXPECT_EQ(reg.SpanValue("never").count, 0u);
}

TEST(ScopedSpanTest, RecordsDeadlineTrip) {
  MetricsRegistry reg;
  RunContext ctx;
  ctx.set_deadline_after_ms(0);
  { ScopedSpan span(&reg, "stage", &ctx); }
  EXPECT_EQ(reg.SpanValue("stage").deadline_hits, 1u);
  EXPECT_EQ(reg.SpanValue("stage").budget_trips, 0u);
}

TEST(ScopedSpanTest, RecordsBudgetTrip) {
  MetricsRegistry reg;
  RunContext ctx;
  ctx.set_work_budget(1);
  ASSERT_TRUE(ctx.ConsumeWork(2).ok() == false);
  { ScopedSpan span(&reg, "stage", &ctx); }
  EXPECT_EQ(reg.SpanValue("stage").budget_trips, 1u);
}

TEST(ScopedSpanTest, RecordsCancellation) {
  MetricsRegistry reg;
  RunContext ctx;
  ctx.RequestCancel();
  { ScopedSpan span(&reg, "stage", &ctx); }
  EXPECT_EQ(reg.SpanValue("stage").cancellations, 1u);
}

TEST(ScopedSpanTest, NullRegistryIsFree) {
  // No registry: the span records nothing and never joins the path stack.
  ScopedSpan null_span(nullptr, "anything");
  EXPECT_EQ(null_span.path(), "");
  MetricsRegistry reg;
  ScopedSpan real(&reg, "root");
  EXPECT_EQ(real.path(), "root");
}

TEST(MetricHelpersTest, NullRegistryIsNoOp) {
  MetricAdd(nullptr, "c", 1);
  MetricSet(nullptr, "g", 1.0);
  MetricRecord(nullptr, "h", 1);
  MetricsRegistry reg;
  MetricAdd(&reg, "c", 2);
  MetricSet(&reg, "g", 2.0);
  MetricRecord(&reg, "h", 2);
  EXPECT_EQ(reg.CounterValue("c"), 2u);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("g"), 2.0);
  EXPECT_EQ(reg.Histogram("h")->count(), 1u);
}

// Populates one registry the way a pipeline run would.
void PopulateFixture(MetricsRegistry* reg) {
  reg->Counter("engine.facts_derived")->Add(42);
  reg->Counter("linkage.pairs.scored")->Add(7);
  reg->Gauge("embed.kmeans.inertia")->Set(1.5);
  for (uint64_t v : {1u, 3u, 3u, 9u}) reg->Histogram("linkage.block.size")->Record(v);
  {
    ScopedSpan outer(reg, "augment");
    ScopedSpan inner(reg, "embed");
  }
}

TEST(MetricsJsonTest, IdenticalRegistriesEmitIdenticalBytes) {
  MetricsRegistry a, b;
  PopulateFixture(&a);
  PopulateFixture(&b);
  // Wall-clock differs between the two runs; the default document must
  // not — that is the --metrics-json byte-stability contract.
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

TEST(MetricsJsonTest, SchemaAndCumulativeBuckets) {
  MetricsRegistry reg;
  PopulateFixture(&reg);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  for (const char* key :
       {"\"counters\"", "\"gauges\"", "\"histograms\"", "\"spans\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"engine.facts_derived\":42"), std::string::npos);
  // Cumulative buckets of {1,3,3,9}: bucket1=1, bucket2=3, bucket4=4 ...
  // rendered cumulatively as 0,1,3,3,4,4,...,4 — monotone by construction.
  EXPECT_NE(json.find("\"linkage.block.size\":{\"count\":4,\"sum\":16"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"buckets\":[0,1,3,3,4,4"), std::string::npos) << json;
}

TEST(MetricsJsonTest, TimingsAreOptIn) {
  MetricsRegistry reg;
  PopulateFixture(&reg);
  reg.Histogram("augment.us")->Record(1234);
  std::string plain = reg.ToJson();
  EXPECT_EQ(plain.find(".us"), std::string::npos);
  EXPECT_EQ(plain.find("\"us\":"), std::string::npos);
  MetricsJsonOptions with_timings;
  with_timings.include_timings = true;
  std::string timed = reg.ToJson(with_timings);
  EXPECT_NE(timed.find("augment.us"), std::string::npos);
  EXPECT_NE(timed.find("\"us\":"), std::string::npos);
}

TEST(MetricsJsonTest, WriteJsonFileRoundTrips) {
  MetricsRegistry reg;
  PopulateFixture(&reg);
  std::string path = ::testing::TempDir() + "metrics_test_doc.json";
  ASSERT_TRUE(reg.WriteJsonFile(path).ok());
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), reg.ToJson() + "\n");
  std::remove(path.c_str());
}

TEST(MetricsTraceTest, ReportIndentsByDepth) {
  MetricsRegistry reg;
  PopulateFixture(&reg);
  std::string report = reg.TraceReport();
  EXPECT_NE(report.find("augment"), std::string::npos);
  // The nested span prints indented under its parent.
  EXPECT_NE(report.find("  embed"), std::string::npos);
}

}  // namespace
}  // namespace vadalink
