// serve/: chaos harness. A mixed read/write workload from concurrent
// clients while probabilistic faults are armed across the accept, read,
// evaluate and incremental-reasoning sites. The invariants under fire:
//   1. every request gets exactly one response (success or structured
//      error) — nothing is silently dropped;
//   2. the server never deadlocks or dies — bounded by client read
//      timeouts, the workload always completes;
//   3. graph versions observed by a synchronous client are monotone
//      (stale-flagged degradations excepted — they announce themselves);
//   4. after the storm the server still answers health and metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "graph/property_graph.h"
#include "serve/client.h"
#include "serve/server.h"

namespace vadalink::serve {
namespace {

constexpr int kClients = 6;
constexpr int kRequestsPerClient = 40;

graph::PropertyGraph SeedGraph() {
  graph::PropertyGraph g;
  graph::NodeId p0 = g.AddNode("Person");
  graph::NodeId c1 = g.AddNode("Company");
  graph::NodeId c2 = g.AddNode("Company");
  graph::NodeId p3 = g.AddNode("Person");
  auto share = [&](graph::NodeId s, graph::NodeId d, double w) {
    auto e = g.AddEdge(s, d, "Shareholding").value();
    g.SetEdgeProperty(e, "w", w);
  };
  share(p0, c1, 0.6);
  share(c1, c2, 0.8);
  share(p3, c1, 0.3);
  return g;
}

constexpr const char* kRules = "own(X, Y, W) -> control_direct(X, Y, W).";

// One client's slice of the storm. Returns the number of transport-level
// failures (lost responses) — the chaos invariant demands zero.
int RunClient(int client_idx, int port, std::atomic<int>* responses,
              std::atomic<int>* errors, std::atomic<int>* ingests) {
  auto conn = Client::Connect("127.0.0.1", port, /*read_timeout_ms=*/20000);
  if (!conn.ok()) return kRequestsPerClient;
  Client c = std::move(conn).value();
  int lost = 0;
  int64_t last_version = 0;
  for (int i = 0; i < kRequestsPerClient; ++i) {
    Result<Json> resp = [&]() -> Result<Json> {
      switch ((client_idx + i) % 6) {
        case 0: {
          Json p = Json::MakeObject();
          p.Set("source", Json::Int(0));
          return c.Call("control", p);
        }
        case 1: {
          Json p = Json::MakeObject();
          p.Set("target", Json::Int(2));
          return c.Call("ubo", p);
        }
        case 2: {
          Json p = Json::MakeObject();
          p.Set("company", Json::Int(1));
          return c.Call("closelinks", p);
        }
        case 3:
          return c.Call("health", Json::MakeObject());
        case 4: {
          // Write traffic: add a company, exercising incremental
          // reasoning and — when the armed fault fires — its recovery.
          Json node = Json::MakeObject();
          node.Set("label", Json::Str("Company"));
          Json nodes = Json::MakeArray();
          nodes.Append(node);
          Json p = Json::MakeObject();
          p.Set("nodes", nodes);
          ingests->fetch_add(1);
          return c.Call("ingest", p);
        }
        default: {
          Json p = Json::MakeObject();
          p.Set("predicate", Json::Str("control_direct"));
          return c.Call("query", p);
        }
      }
    }();
    if (!resp.ok()) {
      // Transport failure: a lost response. The one legitimate cause is
      // the injected serve.read/accept fault chain closing nothing —
      // DispatchLine always answers — so any loss is a real bug.
      ++lost;
      // The connection may be dead; reconnect so the remaining workload
      // still exercises the server.
      auto re = Client::Connect("127.0.0.1", port, 20000);
      if (!re.ok()) break;
      c = std::move(re).value();
      continue;
    }
    responses->fetch_add(1);
    const Json* ok = resp->Find("ok");
    if (ok == nullptr) {
      ++lost;
      continue;
    }
    if (!ok->AsBool()) {
      // Structured error: must carry a non-empty code.
      const Json* err = resp->Find("error");
      EXPECT_NE(err, nullptr) << resp->Dump();
      if (err != nullptr) {
        EXPECT_FALSE(err->Find("code")->AsString().empty()) << resp->Dump();
      }
      errors->fetch_add(1);
      continue;
    }
    // Monotone visibility: fresh responses never go back in time. Stale
    // degradations are exempt but must say so.
    const Json* stale = resp->Find("stale");
    const Json* version = resp->Find("graph_version");
    if (version != nullptr && (stale == nullptr || !stale->AsBool())) {
      EXPECT_GE(version->AsInt(), last_version) << resp->Dump();
      last_version = std::max(last_version, version->AsInt());
    }
  }
  return lost;
}

TEST(ServeChaosTest, MixedWorkloadUnderArmedFaultsLosesNothing) {
  FaultInjection::Reset();
  MetricsRegistry metrics;
  ServiceOptions service_opts;
  service_opts.enable_test_ops = true;
  ServerOptions server_opts;
  server_opts.port = 0;
  server_opts.max_inflight = 3;
  server_opts.queue_depth = 16;
  server_opts.request_deadline_ms = 5000;
  Server server(service_opts, server_opts, &metrics);
  ASSERT_TRUE(server.Init(SeedGraph(), kRules).ok());
  ASSERT_TRUE(server.Start().ok());

  // Probabilistic faults on the request path. serve.read and
  // serve.evaluate poison individual requests with structured errors;
  // kg.reason_incremental forces the ingest recovery path. The respond
  // site stays clean so "exactly one response" is checkable end to end.
  FaultInjection::Arm("serve.read",
                      {StatusCode::kIoError, "chaos: read", /*skip=*/0,
                       /*max_fires=*/std::numeric_limits<uint64_t>::max(),
                       /*probability=*/0.05, /*seed=*/11});
  FaultInjection::Arm("serve.evaluate",
                      {StatusCode::kInternal, "chaos: evaluate", 0,
                       std::numeric_limits<uint64_t>::max(), 0.10, 17});
  FaultInjection::Arm("kg.reason_incremental",
                      {StatusCode::kIoError, "chaos: incremental", 0,
                       std::numeric_limits<uint64_t>::max(), 0.25, 23});

  std::atomic<int> responses{0};
  std::atomic<int> errors{0};
  std::atomic<int> ingests{0};
  std::vector<std::thread> clients;
  std::vector<int> lost(kClients, 0);
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      lost[i] = RunClient(i, server.port(), &responses, &errors, &ingests);
    });
  }
  for (auto& t : clients) t.join();
  FaultInjection::Reset();

  // Invariant 1: every request that reached the wire got an answer.
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(lost[i], 0) << "client " << i << " lost responses";
  }
  EXPECT_EQ(responses.load(), kClients * kRequestsPerClient);
  // The storm actually stormed: faults fired and writes happened.
  EXPECT_GT(errors.load(), 0);
  EXPECT_GT(ingests.load(), 0);

  // Invariant 4: the server is still healthy and observable.
  auto after = Client::Connect("127.0.0.1", server.port(), 10000);
  ASSERT_TRUE(after.ok());
  auto health = after->Call("health", Json::MakeObject());
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_TRUE(health->Find("ok")->AsBool());
  // Versions advanced: ingests published monotone snapshots.
  EXPECT_GT(health->Find("graph_version")->AsInt(), 1);

  auto m = after->Call("metrics", Json::MakeObject());
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->Find("ok")->AsBool());
  const Json* doc = m->Find("result")->Find("metrics");
  ASSERT_NE(doc, nullptr);
  EXPECT_FALSE(doc->is_null());

  server.Stop();
}

}  // namespace
}  // namespace vadalink::serve
