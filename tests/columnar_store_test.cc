// Tests of the columnar fact store (datalog/database) and the per-rule
// join planner built on its statistics: arity-0 relations, dedup across
// epochs, posting-list views, distinct counts, plan selection, and the
// join-order / thread-count invariance of the final fact set.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "datalog/database.h"
#include "datalog/engine.h"
#include "datalog/parser.h"

namespace vadalink::datalog {
namespace {

// ---------------------------------------------------------------------------
// Relation / Database storage
// ---------------------------------------------------------------------------

TEST(ColumnarStoreTest, ArityZeroRelation) {
  Catalog catalog;
  Database db(&catalog);
  const uint32_t p = catalog.predicates.Intern("flag");
  auto first = db.Insert(p, nullptr, 0);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  // An arity-0 relation holds at most one (empty) row.
  auto dup = db.Insert(p, nullptr, 0);
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(*dup);
  EXPECT_EQ(db.Scan("flag").size(), 1u);
  EXPECT_EQ(db.Scan("flag")[0].size(), 0u);
  EXPECT_EQ(db.TotalFacts(), 1u);
  EXPECT_EQ(db.relation(p)->arity(), 0u);
}

TEST(ColumnarStoreTest, DedupAcrossEpochs) {
  Catalog catalog;
  Database db(&catalog);
  const uint32_t p = catalog.predicates.Intern("e");
  Relation* rel = db.relation(p);
  // Interleave new rows and duplicates; only new rows advance the epoch.
  uint64_t epoch = rel->epoch();
  for (int round = 0; round < 3; ++round) {
    for (int64_t i = 0; i < 100; ++i) {
      std::vector<Value> t{Value::Int(i), Value::Int(i + 1)};
      auto inserted = db.Insert(p, t);
      ASSERT_TRUE(inserted.ok());
      EXPECT_EQ(*inserted, round == 0) << "round " << round << " i " << i;
      if (round == 0) {
        EXPECT_EQ(rel->epoch(), ++epoch);
      } else {
        EXPECT_EQ(rel->epoch(), epoch) << "duplicate advanced the epoch";
      }
    }
  }
  EXPECT_EQ(rel->size(), 100u);
  EXPECT_EQ(db.TotalFacts(), 100u);
  // Every row is findable, with its original id.
  for (int64_t i = 0; i < 100; ++i) {
    std::vector<Value> t{Value::Int(i), Value::Int(i + 1)};
    EXPECT_EQ(rel->Find(t), i);
  }
  EXPECT_LT(rel->Find({Value::Int(500), Value::Int(501)}), 0);
}

TEST(ColumnarStoreTest, InsertPointerOverloadAndRowRef) {
  Catalog catalog;
  Database db(&catalog);
  const uint32_t p = catalog.predicates.Intern("own");
  const Value row[3] = {db.Sym("a"), db.Sym("b"), Value::Double(0.6)};
  auto inserted = db.Insert(p, row, 3);
  ASSERT_TRUE(inserted.ok());
  EXPECT_TRUE(*inserted);
  RelationScan scan = db.Scan(p);
  ASSERT_EQ(scan.size(), 1u);
  ASSERT_EQ(scan.arity(), 3u);
  RowRef r = scan[0];
  EXPECT_EQ(r[0], row[0]);
  EXPECT_EQ(r[2], row[2]);
  EXPECT_EQ(r.ToTuple(), (std::vector<Value>{row[0], row[1], row[2]}));
}

TEST(ColumnarStoreTest, EmptyScans) {
  Catalog catalog;
  Database db(&catalog);
  // Unknown predicate name and never-materialised predicate id both yield
  // a valid empty scan.
  EXPECT_TRUE(db.Scan("nothing").empty());
  EXPECT_EQ(db.Scan("nothing").arity(), 0u);
  const uint32_t p = catalog.predicates.Intern("declared_only");
  EXPECT_TRUE(db.Scan(p).empty());
  int visited = 0;
  for (RowRef r : db.Scan(p)) {
    (void)r;
    ++visited;
  }
  EXPECT_EQ(visited, 0);
}

TEST(ColumnarStoreTest, ProbeAndDistinctCount) {
  Catalog catalog;
  Database db(&catalog);
  const uint32_t p = catalog.predicates.Intern("e");
  for (int64_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        db.Insert(p, {Value::Int(i % 6), Value::Int(i)}).ok());
  }
  const Relation* rel = db.relation(p);
  EXPECT_EQ(rel->DistinctCount(0), 6u);
  EXPECT_EQ(rel->DistinctCount(1), 60u);
  PostingView hits = rel->Probe(0, Value::Int(3));
  EXPECT_EQ(hits.size(), 10u);
  // Posting lists are ascending row ids.
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LT(hits[i - 1], hits[i]);
  }
  for (uint32_t row : hits) {
    EXPECT_EQ(rel->at(0, row), Value::Int(3));
  }
  EXPECT_TRUE(rel->Probe(0, Value::Int(99)).empty());
}

TEST(ColumnarStoreTest, IndexMaintainedIncrementally) {
  Catalog catalog;
  Database db(&catalog);
  const uint32_t p = catalog.predicates.Intern("e");
  ASSERT_TRUE(db.Insert(p, {Value::Int(1), Value::Int(10)}).ok());
  const Relation* rel = db.relation(p);
  rel->WarmIndex(0);
  EXPECT_TRUE(rel->IndexWarm(0));
  // A later insert extends the warm index on the next probe; the fresh
  // view includes both the old and the new row.
  ASSERT_TRUE(db.Insert(p, {Value::Int(1), Value::Int(20)}).ok());
  EXPECT_FALSE(rel->IndexWarm(0));
  PostingView hits = rel->Probe(0, Value::Int(1));
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(rel->IndexWarm(0));
}

// ---------------------------------------------------------------------------
// Streaming (paged) storage and eviction
// ---------------------------------------------------------------------------

TEST(ColumnarStoreTest, StreamingEvictionReleasesRowsKeepsDedup) {
  Catalog catalog;
  Database db(&catalog);
  const uint32_t p = catalog.predicates.Intern("e");
  db.SetStreaming(p);
  Relation* rel = db.relation(p);
  // Two full pages plus change, so whole-page release actually happens.
  const int64_t kRows = 2 * 4096 + 100;
  for (int64_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE(*db.Insert(p, {Value::Int(i), Value::Int(i * 2)}));
  }
  EXPECT_EQ(db.ResidentFacts(), static_cast<size_t>(kRows));
  EXPECT_FALSE(db.HasEvicted());

  const uint64_t epoch_before = rel->epoch();
  const size_t watermark = 4096 + 500;
  EXPECT_EQ(db.EvictBelow(p, watermark), watermark);
  EXPECT_EQ(rel->first_resident(), watermark);
  EXPECT_EQ(rel->size(), static_cast<size_t>(kRows));  // logical size keeps counting
  EXPECT_EQ(rel->resident_size(), kRows - watermark);
  EXPECT_EQ(db.ResidentFacts(), kRows - watermark);
  EXPECT_EQ(db.EvictedRows(), watermark);
  EXPECT_TRUE(db.HasEvicted());
  // Readers must learn their cached state is stale.
  EXPECT_GT(rel->epoch(), epoch_before);

  // Scans iterate exactly the resident suffix (size() stays the absolute
  // end bound so stable row ids keep working as indexes).
  RelationScan scan = db.Scan(p);
  EXPECT_EQ(scan.size(), static_cast<size_t>(kRows));
  EXPECT_EQ((*scan.begin())[0], Value::Int(static_cast<int64_t>(watermark)));
  size_t visited = 0;
  for (RowRef row : scan) {
    (void)row;
    ++visited;
  }
  EXPECT_EQ(visited, kRows - watermark);

  // Resident cells read back through the paged accessor.
  EXPECT_EQ(rel->at(1, static_cast<uint32_t>(kRows - 1)),
            Value::Int((kRows - 1) * 2));

  // An evicted row is still a known fact: duplicates are rejected via the
  // retained 128-bit hashes and membership stays true.
  auto dup = db.Insert(p, {Value::Int(7), Value::Int(14)});
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(*dup);
  EXPECT_TRUE(db.relation(p)->Contains({Value::Int(7), Value::Int(14)}));
  EXPECT_EQ(rel->size(), static_cast<size_t>(kRows));

  // Fresh rows still insert and dedup normally after eviction.
  ASSERT_TRUE(*db.Insert(p, {Value::Int(-1), Value::Int(-2)}));
  EXPECT_FALSE(*db.Insert(p, {Value::Int(-1), Value::Int(-2)}));
  EXPECT_EQ(rel->size(), static_cast<size_t>(kRows) + 1);
}

TEST(ColumnarStoreTest, StreamingEvictionPrunesPostingLists) {
  Catalog catalog;
  Database db(&catalog);
  const uint32_t p = catalog.predicates.Intern("e");
  db.SetStreaming(p);
  for (int64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(db.Insert(p, {Value::Int(i % 4), Value::Int(i)}).ok());
  }
  const Relation* rel = db.relation(p);
  rel->WarmIndex(0);
  ASSERT_EQ(rel->Probe(0, Value::Int(1)).size(), 10u);

  ASSERT_EQ(db.EvictBelow(p, 20), 20u);
  // Only resident rows remain in the posting lists, still ascending.
  PostingView hits = rel->Probe(0, Value::Int(1));
  EXPECT_EQ(hits.size(), 5u);
  for (uint32_t row : hits) {
    EXPECT_GE(row, 20u);
    EXPECT_EQ(rel->at(0, row), Value::Int(1));
  }
  // Rows inserted after the eviction are indexed as usual.
  ASSERT_TRUE(*db.Insert(p, {Value::Int(1), Value::Int(100)}));
  EXPECT_EQ(rel->Probe(0, Value::Int(1)).size(), 6u);
}

TEST(ColumnarStoreTest, EvictBelowClampsAndIsIdempotent) {
  Catalog catalog;
  Database db(&catalog);
  const uint32_t p = catalog.predicates.Intern("e");
  db.SetStreaming(p);
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.Insert(p, {Value::Int(i)}).ok());
  }
  EXPECT_EQ(db.EvictBelow(p, 0), 0u);
  EXPECT_EQ(db.EvictBelow(p, 6), 6u);
  // Same or lower watermark: nothing more to release.
  EXPECT_EQ(db.EvictBelow(p, 6), 0u);
  EXPECT_EQ(db.EvictBelow(p, 3), 0u);
  // A watermark beyond the relation clamps to the logical size.
  EXPECT_EQ(db.EvictBelow(p, 1000), 4u);
  EXPECT_EQ(db.relation(p)->resident_size(), 0u);
  EXPECT_EQ(db.ResidentFacts(), 0u);
  EXPECT_EQ(db.TotalFacts(), 10u);
}

TEST(ColumnarStoreTest, SetStreamingMigratesExistingRows) {
  Catalog catalog;
  Database db(&catalog);
  const uint32_t p = catalog.predicates.Intern("e");
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Insert(p, {Value::Int(i), Value::Int(i + 1)}).ok());
  }
  db.SetStreaming(p);
  db.SetStreaming(p);  // idempotent
  const Relation* rel = db.relation(p);
  EXPECT_TRUE(rel->streaming());
  // Pre-migration rows read back and dedup through the paged storage.
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(rel->at(1, static_cast<uint32_t>(i)), Value::Int(i + 1));
    EXPECT_FALSE(*db.Insert(p, {Value::Int(i), Value::Int(i + 1)}));
  }
  EXPECT_EQ(rel->size(), 50u);
}

// ---------------------------------------------------------------------------
// Join planner
// ---------------------------------------------------------------------------

// Render the whole fact base as a sorted set of strings (fixpoint
// fingerprint, independent of derivation order).
std::set<std::string> AllFacts(const Database& db, const Catalog& catalog) {
  std::set<std::string> out;
  for (uint32_t p = 0; p < catalog.predicates.size(); ++p) {
    for (RowRef row : db.Scan(p)) {
      std::string line = catalog.predicates.Name(p);
      for (size_t i = 0; i < row.size(); ++i) {
        line += "|" + row[i].ToString(catalog.symbols);
      }
      out.insert(std::move(line));
    }
  }
  return out;
}

struct PlannerRun {
  std::set<std::string> facts;
  size_t join_probes = 0;
  std::vector<std::string> plans;
};

PlannerRun RunWith(const std::string& src, JoinOrder order,
                   int threads = 1) {
  Catalog catalog;
  Database db(&catalog);
  auto program = ParseProgram(src, &catalog);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  EngineOptions opts;
  opts.join_order = order;
  std::shared_ptr<ThreadPool> pool;
  if (threads > 1) {
    ParallelOptions popts;
    popts.threads = threads;
    pool = MakeThreadPool(popts);
    opts.pool = pool.get();
  }
  Engine engine(&db, opts);
  Status st = engine.Run(*program);
  EXPECT_TRUE(st.ok()) << st.ToString();
  PlannerRun out;
  out.facts = AllFacts(db, catalog);
  out.join_probes = engine.stats().join_probes;
  out.plans = engine.PlanSummaries();
  return out;
}

// One large relation joined against one tiny one: the planner must anchor
// on the tiny side, the forced worst case on the large side.
std::string SelectiveJoinSource() {
  std::string src;
  for (int64_t i = 0; i < 500; ++i) {
    src += "a(" + std::to_string(i) + "," + std::to_string(i % 7) + ").\n";
  }
  src += "b(3). b(6).\n";
  src += "a(X,Y), b(Y) -> out(X).\n";
  return src;
}

TEST(JoinPlannerTest, PlannedBeatsWorstCaseOnProbes) {
  PlannerRun planned = RunWith(SelectiveJoinSource(), JoinOrder::kPlanned);
  PlannerRun worst = RunWith(SelectiveJoinSource(), JoinOrder::kWorstCase);
  EXPECT_EQ(planned.facts, worst.facts);
  // The planned anchor is the 2-row relation: two probes into a's index
  // per naive round instead of 500 probes into b.
  EXPECT_LT(planned.join_probes, worst.join_probes);
}

TEST(JoinPlannerTest, PlanSummariesDescribeChosenOrder) {
  PlannerRun planned = RunWith(SelectiveJoinSource(), JoinOrder::kPlanned);
  ASSERT_FALSE(planned.plans.empty());
  // The naive-pass plan (rule 0, no delta) anchors b and probes a.
  bool found = false;
  for (const std::string& line : planned.plans) {
    if (line.find("rule 0:") != std::string::npos) {
      found = true;
      EXPECT_LT(line.find("b@"), line.find("a@")) << line;
    }
  }
  EXPECT_TRUE(found) << "no naive-pass plan recorded for rule 0";
}

TEST(JoinPlannerTest, DeltaOccurrencePlansAreCachedSeparately) {
  // tc appears once as delta anchor, once as plain atom; the two delta
  // occurrences of the recursive rule get distinct cached plans.
  std::string src;
  for (int64_t i = 0; i < 20; ++i) {
    src += "e(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
  }
  src += "e(X,Y) -> tc(X,Y).\ntc(X,Y), tc(Y,Z) -> tc(X,Z).\n";
  PlannerRun planned = RunWith(src, JoinOrder::kPlanned);
  int delta_plans = 0;
  for (const std::string& line : planned.plans) {
    if (line.find("delta tc#") != std::string::npos) ++delta_plans;
  }
  EXPECT_EQ(delta_plans, 2) << "expected one plan per delta occurrence";
}

// The acceptance property of the planner: the final fact set is identical
// under planned and forced worst-case join orders and at every thread
// count. (Name carries "Parallel" so the TSan CI job picks it up.)
TEST(JoinPlannerTest, FixpointInvariantAcrossOrdersAndThreadsParallel) {
  std::string src;
  // A small random-ish graph with two recursive rules and a filter.
  for (int64_t i = 0; i < 40; ++i) {
    src += "e(" + std::to_string(i) + "," + std::to_string((i * 7 + 3) % 40) +
           ").\n";
    src += "e(" + std::to_string(i) + "," + std::to_string((i * 11 + 5) % 40) +
           ").\n";
  }
  src += "e(X,Y) -> tc(X,Y).\ntc(X,Y), e(Y,Z) -> tc(X,Z).\n";
  src += "tc(X,Y), tc(Y,X), X != Y -> cyc(X,Y).\n";

  PlannerRun baseline = RunWith(src, JoinOrder::kPlanned, 1);
  ASSERT_FALSE(baseline.facts.empty());
  for (JoinOrder order : {JoinOrder::kPlanned, JoinOrder::kWorstCase}) {
    for (int threads : {1, 2, 8}) {
      PlannerRun run = RunWith(src, order, threads);
      EXPECT_EQ(run.facts, baseline.facts)
          << "order=" << (order == JoinOrder::kPlanned ? "planned" : "worst")
          << " threads=" << threads;
    }
  }
}

// Warmed-index probes from many worker threads: the parallel match phase
// must only ever read warm posting lists (the relation debug-asserts
// otherwise), and the result must match the sequential run.
TEST(JoinPlannerTest, WarmedProbeStressParallel) {
  std::string src;
  for (int64_t i = 0; i < 300; ++i) {
    src += "edge(" + std::to_string(i % 60) + "," +
           std::to_string((i * 13 + 7) % 60) + "," +
           std::to_string(i % 5) + ").\n";
  }
  src += "edge(X,Y,W), W > 1 -> hop(X,Y).\n";
  src += "hop(X,Y), edge(Y,Z,W), W > 2 -> two(X,Z).\n";
  src += "two(X,Z), hop(Z,Q) -> three(X,Q).\n";
  PlannerRun sequential = RunWith(src, JoinOrder::kPlanned, 1);
  PlannerRun pooled = RunWith(src, JoinOrder::kPlanned, 8);
  EXPECT_EQ(sequential.facts, pooled.facts);
  EXPECT_EQ(sequential.join_probes, pooled.join_probes)
      << "probe counts must be thread-count-invariant";
}

}  // namespace
}  // namespace vadalink::datalog
