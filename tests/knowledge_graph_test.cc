// core/: the KnowledgeGraph facade (Figure 3 architecture) end to end.
#include <gtest/gtest.h>

#include <set>

#include "core/knowledge_graph.h"
#include "core/vadalog_programs.h"
#include "tests/paper_fixtures.h"

namespace vadalink::core {
namespace {

using ::vadalink::testing::Figure1;

void CopyGraph(const graph::PropertyGraph& src, graph::PropertyGraph* dst) {
  for (graph::NodeId n = 0; n < src.node_count(); ++n) {
    graph::NodeId m = dst->AddNode(src.node_label(n));
    for (const auto& [k, v] : src.node_properties(n)) {
      dst->SetNodeProperty(m, k, v);
    }
  }
  src.ForEachEdge([&](graph::EdgeId e) {
    auto f = dst->AddEdge(src.edge_src(e), src.edge_dst(e),
                          src.edge_label(e));
    for (const auto& [k, v] : src.edge_properties(e)) {
      dst->SetEdgeProperty(f.value(), k, v);
    }
  });
}

TEST(KnowledgeGraphTest, ReasonMaterialisesControlEdges) {
  auto fixture = Figure1();
  KnowledgeGraph kg;
  CopyGraph(fixture.graph(), kg.mutable_graph());
  ASSERT_TRUE(kg.AddRules(ControlProgram()).ok());
  EXPECT_EQ(kg.rule_count(), 4u);

  auto stats = kg.Reason();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->facts_after, stats->facts_before);
  EXPECT_EQ(stats->links_materialised, 8u);  // Figure 1 control edges
  EXPECT_EQ(kg.Query("control").size(), 8u);

  // Edges really are in the graph now, flagged as predicted.
  graph::EdgeId e = kg.graph().FindEdge(fixture.id("P1"), fixture.id("C"),
                                        "Control");
  ASSERT_NE(e, graph::kInvalidEdge);
  EXPECT_TRUE(kg.graph().GetEdgeProperty(e, "predicted").AsBool());
}

TEST(KnowledgeGraphTest, ExplainDerivedFact) {
  auto fixture = Figure1();
  KnowledgeGraph kg;
  CopyGraph(fixture.graph(), kg.mutable_graph());
  ASSERT_TRUE(kg.AddRules(ControlProgram()).ok());
  ASSERT_TRUE(kg.Reason().ok());
  std::string why =
      kg.Explain("control", {KnowledgeGraph::Int(fixture.id("P2")),
                             KnowledgeGraph::Int(fixture.id("I"))});
  EXPECT_NE(why.find("control("), std::string::npos);
  EXPECT_NE(why.find("rule"), std::string::npos);
}

TEST(KnowledgeGraphTest, WardednessOfPaperPrograms) {
  KnowledgeGraph kg;
  ASSERT_TRUE(kg.AddRules(ControlProgram()).ok());
  ASSERT_TRUE(kg.AddRules(FamilyControlProgram()).ok());
  ASSERT_TRUE(kg.AddRules(InputPromotionProgram()).ok());
  EXPECT_TRUE(kg.CheckWardedness().warded);
}

TEST(KnowledgeGraphTest, BadRulesRejectedEagerly) {
  KnowledgeGraph kg;
  Status st = kg.AddRules("p(X) -> ");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(kg.rule_count(), 0u);
}

TEST(KnowledgeGraphTest, CustomFunctionAvailable) {
  KnowledgeGraph kg;
  auto n = kg.mutable_graph()->AddNode("Company");
  kg.mutable_graph()->SetNodeProperty(n, "name", "acme");
  kg.RegisterFunction(
      "double_it", [](datalog::FunctionContext&,
                      const std::vector<datalog::Value>& args)
                       -> Result<datalog::Value> {
        return datalog::Value::Int(args[0].AsInt() * 2);
      });
  ASSERT_TRUE(kg.AddRules("company(X), Y = #double_it(X) -> d(Y).").ok());
  ASSERT_TRUE(kg.Reason().ok());
  auto tuples = kg.Query("d");
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0][0].AsInt(), static_cast<int64_t>(n) * 2);
}

TEST(KnowledgeGraphTest, ReReasonSeesGraphMutations) {
  // The reinforcement loop of the paper: links added by a first reasoning
  // round become extensional facts of the next.
  auto fixture = Figure1();
  KnowledgeGraph kg;
  CopyGraph(fixture.graph(), kg.mutable_graph());
  ASSERT_TRUE(kg.AddRules(ControlProgram()).ok());
  auto first = kg.Reason();
  ASSERT_TRUE(first.ok());
  size_t first_facts = first->facts_before;

  // Mutate the extensional component: the family edge makes P1 and P2 a
  // household, and a second reasoning round starts from more facts.
  kg.mutable_graph()
      ->AddEdge(fixture.id("P1"), fixture.id("P2"), "PartnerOf")
      .value();
  auto second = kg.Reason();
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->facts_before, first_facts);
  EXPECT_EQ(second->links_materialised, 0u);  // control edges already there
}

TEST(KnowledgeGraphTest, QueryBeforeReasonIsEmpty) {
  KnowledgeGraph kg;
  EXPECT_TRUE(kg.Query("anything").empty());
  EXPECT_NE(kg.Explain("p", {}).find("Reason()"), std::string::npos);
}

}  // namespace
}  // namespace vadalink::core
