// embed/: alias sampling, node2vec walks, skip-gram training, k-means.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "embed/alias_sampler.h"
#include "embed/embed_clusterer.h"
#include "embed/kmeans.h"
#include "embed/node2vec.h"
#include "embed/skipgram.h"

namespace vadalink::embed {
namespace {

// ---- alias sampler ------------------------------------------------------------

TEST(AliasSamplerTest, EmptyAndZeroWeights) {
  EXPECT_TRUE(AliasSampler(std::vector<double>{}).empty());
  EXPECT_TRUE(AliasSampler(std::vector<double>{0.0, 0.0}).empty());
}

TEST(AliasSamplerTest, MatchesDistribution) {
  AliasSampler sampler({1.0, 2.0, 7.0});
  Rng rng(11);
  std::map<size_t, size_t> counts;
  const size_t n = 100000;
  for (size_t i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.2, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.7, 0.01);
}

TEST(AliasSamplerTest, SingleOutcome) {
  AliasSampler sampler({5.0});
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler sampler({1.0, 0.0, 1.0});
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_NE(sampler.Sample(&rng), 1u);
}

// ---- walks ----------------------------------------------------------------------

graph::PropertyGraph PathGraph(size_t n) {
  graph::PropertyGraph g;
  for (size_t i = 0; i < n; ++i) g.AddNode("N");
  for (size_t i = 0; i + 1 < n; ++i) {
    auto e = g.AddEdge(static_cast<graph::NodeId>(i),
                       static_cast<graph::NodeId>(i + 1), "E");
    g.SetEdgeProperty(e.value(), "w", 1.0);
  }
  return g;
}

TEST(WalkGraphTest, UndirectedView) {
  auto g = PathGraph(3);
  WalkGraph wg(g, "w");
  EXPECT_EQ(wg.neighbors(1).size(), 2u);  // sees both 0 and 2
  EXPECT_TRUE(wg.HasEdge(1, 0));
  EXPECT_TRUE(wg.HasEdge(0, 1));
  EXPECT_FALSE(wg.HasEdge(0, 2));
}

TEST(WalkGraphTest, SelfLoopsIgnored) {
  graph::PropertyGraph g;
  auto a = g.AddNode("N");
  auto e = g.AddEdge(a, a, "E");
  g.SetEdgeProperty(e.value(), "w", 1.0);
  WalkGraph wg(g, "w");
  EXPECT_TRUE(wg.neighbors(a).empty());
}

TEST(WalkGraphTest, ParallelEdgesMerged) {
  graph::PropertyGraph g;
  auto a = g.AddNode("N"), b = g.AddNode("N");
  auto e1 = g.AddEdge(a, b, "E");
  g.SetEdgeProperty(e1.value(), "w", 0.3);
  auto e2 = g.AddEdge(a, b, "E");
  g.SetEdgeProperty(e2.value(), "w", 0.2);
  WalkGraph wg(g, "w");
  ASSERT_EQ(wg.neighbors(a).size(), 1u);
  EXPECT_NEAR(wg.weights(a)[0], 0.5, 1e-12);
}

TEST(GenerateWalksTest, CountAndLength) {
  auto g = PathGraph(10);
  WalkGraph wg(g, "w");
  WalkConfig cfg;
  cfg.walk_length = 5;
  cfg.walks_per_node = 3;
  auto walks = GenerateWalks(wg, cfg);
  EXPECT_EQ(walks.size(), 30u);
  for (const auto& w : walks) {
    EXPECT_GE(w.size(), 1u);
    EXPECT_LE(w.size(), 5u);
    // Consecutive nodes must be adjacent.
    for (size_t i = 0; i + 1 < w.size(); ++i) {
      EXPECT_TRUE(wg.HasEdge(w[i], w[i + 1]));
    }
  }
}

TEST(GenerateWalksTest, IsolatedNodesSingletonWalks) {
  graph::PropertyGraph g;
  g.AddNode("N");
  g.AddNode("N");
  WalkGraph wg(g, "w");
  WalkConfig cfg;
  cfg.walks_per_node = 2;
  auto walks = GenerateWalks(wg, cfg);
  EXPECT_EQ(walks.size(), 4u);
  for (const auto& w : walks) EXPECT_EQ(w.size(), 1u);
}

TEST(GenerateWalksTest, Deterministic) {
  auto g = PathGraph(8);
  WalkGraph wg(g, "w");
  WalkConfig cfg;
  cfg.seed = 77;
  auto a = GenerateWalks(wg, cfg);
  auto b = GenerateWalks(wg, cfg);
  EXPECT_EQ(a, b);
}

TEST(GenerateWalksTest, ReturnParameterBiasesBacktracking) {
  // With tiny p, walks should revisit the previous node very often on a
  // path graph; with huge p, almost never.
  auto g = PathGraph(30);
  WalkGraph wg(g, "w");
  auto backtrack_rate = [&](double p) {
    WalkConfig cfg;
    cfg.p = p;
    cfg.q = 1.0;
    cfg.walk_length = 10;
    cfg.walks_per_node = 5;
    cfg.seed = 5;
    auto walks = GenerateWalks(wg, cfg);
    size_t backtracks = 0, steps = 0;
    for (const auto& w : walks) {
      for (size_t i = 2; i < w.size(); ++i) {
        ++steps;
        if (w[i] == w[i - 2]) ++backtracks;
      }
    }
    return steps == 0 ? 0.0 : static_cast<double>(backtracks) / steps;
  };
  EXPECT_GT(backtrack_rate(0.05), backtrack_rate(20.0) + 0.2);
}

// ---- skip-gram ------------------------------------------------------------------

graph::PropertyGraph TwoCliques(size_t k) {
  // Two k-cliques joined by a single bridge edge.
  graph::PropertyGraph g;
  for (size_t i = 0; i < 2 * k; ++i) g.AddNode("N");
  auto connect = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      for (size_t j = i + 1; j < hi; ++j) {
        auto e = g.AddEdge(static_cast<graph::NodeId>(i),
                           static_cast<graph::NodeId>(j), "E");
        g.SetEdgeProperty(e.value(), "w", 1.0);
      }
    }
  };
  connect(0, k);
  connect(k, 2 * k);
  auto e = g.AddEdge(0, static_cast<graph::NodeId>(k), "E");
  g.SetEdgeProperty(e.value(), "w", 0.1);
  return g;
}

TEST(SkipGramTest, CommunityStructureInEmbedding) {
  const size_t k = 6;
  auto g = TwoCliques(k);
  WalkGraph wg(g, "w");
  WalkConfig wc;
  wc.walk_length = 12;
  wc.walks_per_node = 20;
  wc.seed = 3;
  auto walks = GenerateWalks(wg, wc);
  SkipGramConfig sc;
  sc.dimensions = 16;
  sc.epochs = 3;
  sc.seed = 3;
  auto emb = TrainSkipGram(walks, g.node_count(), sc);

  // Average intra-clique cosine similarity should exceed inter-clique.
  double intra = 0, inter = 0;
  size_t ni = 0, nx = 0;
  for (size_t a = 0; a < 2 * k; ++a) {
    for (size_t b = a + 1; b < 2 * k; ++b) {
      bool same = (a < k) == (b < k);
      double c = emb.Cosine(a, b);
      if (same) {
        intra += c;
        ++ni;
      } else {
        inter += c;
        ++nx;
      }
    }
  }
  intra /= ni;
  inter /= nx;
  EXPECT_GT(intra, inter + 0.1);
}

TEST(SkipGramTest, ShapesAndDeterminism) {
  auto g = PathGraph(5);
  WalkGraph wg(g, "w");
  auto walks = GenerateWalks(wg, WalkConfig{});
  SkipGramConfig sc;
  sc.dimensions = 8;
  auto a = TrainSkipGram(walks, g.node_count(), sc);
  auto b = TrainSkipGram(walks, g.node_count(), sc);
  EXPECT_EQ(a.node_count(), 5u);
  EXPECT_EQ(a.dimensions(), 8u);
  for (size_t d = 0; d < 8; ++d) {
    EXPECT_FLOAT_EQ(a.row(2)[d], b.row(2)[d]);
  }
}

TEST(EmbeddingMatrixTest, CosineAndDistance) {
  EmbeddingMatrix m(2, 2);
  m.row(0)[0] = 1.0f;
  m.row(1)[1] = 2.0f;
  EXPECT_NEAR(m.Cosine(0, 1), 0.0, 1e-6);
  EXPECT_NEAR(m.Distance(0, 1), std::sqrt(5.0), 1e-6);
  EXPECT_NEAR(m.Cosine(0, 0), 1.0, 1e-6);
}

// ---- k-means ---------------------------------------------------------------------

TEST(KMeansTest, SeparatesObviousClusters) {
  EmbeddingMatrix m(40, 2);
  Rng rng(19);
  for (size_t i = 0; i < 40; ++i) {
    double cx = i < 20 ? 0.0 : 10.0;
    m.row(i)[0] = static_cast<float>(cx + rng.Normal() * 0.1);
    m.row(i)[1] = static_cast<float>(rng.Normal() * 0.1);
  }
  KMeansConfig cfg;
  cfg.k = 2;
  auto res = KMeans(m, cfg);
  EXPECT_EQ(res.k_effective, 2u);
  std::set<uint32_t> first, second;
  for (size_t i = 0; i < 20; ++i) first.insert(res.assignment[i]);
  for (size_t i = 20; i < 40; ++i) second.insert(res.assignment[i]);
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(second.size(), 1u);
  EXPECT_NE(*first.begin(), *second.begin());
}

TEST(KMeansTest, KCappedAtPoints) {
  EmbeddingMatrix m(3, 2);
  KMeansConfig cfg;
  cfg.k = 10;
  auto res = KMeans(m, cfg);
  EXPECT_EQ(res.k_effective, 3u);
}

TEST(KMeansTest, EmptyInput) {
  EmbeddingMatrix m;
  auto res = KMeans(m, KMeansConfig{});
  EXPECT_TRUE(res.assignment.empty());
}

TEST(KMeansTest, MoreClustersThanDistinctPointsTerminates) {
  // 8 points but only 2 distinct locations with k = 6: most clusters go
  // empty every iteration. The deterministic farthest-point reseed must
  // terminate (no RNG walk, no freeze) and return a valid assignment.
  EmbeddingMatrix m(8, 2);
  for (size_t i = 0; i < 8; ++i) {
    m.row(i)[0] = i < 4 ? 0.0f : 5.0f;
    m.row(i)[1] = 0.0f;
  }
  KMeansConfig cfg;
  cfg.k = 6;
  cfg.max_iterations = 50;
  auto res = KMeans(m, cfg);
  EXPECT_EQ(res.k_effective, 6u);
  EXPECT_EQ(res.assignment.size(), 8u);
  for (uint32_t c : res.assignment) EXPECT_LT(c, res.k_effective);
  EXPECT_GT(res.empty_reseeds, 0u);
  EXPECT_LE(res.iterations, cfg.max_iterations);
  // Two distinct locations -> a perfect clustering has zero inertia.
  EXPECT_DOUBLE_EQ(res.inertia, 0.0);
}

TEST(KMeansTest, ReseedIsDeterministic) {
  EmbeddingMatrix m(8, 2);
  Rng rng(31);
  for (size_t i = 0; i < 8; ++i) {
    m.row(i)[0] = static_cast<float>(i % 3);
    m.row(i)[1] = static_cast<float>(rng.UniformDouble(0, 0.01));
  }
  KMeansConfig cfg;
  cfg.k = 7;
  auto a = KMeans(m, cfg);
  auto b = KMeans(m, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.empty_reseeds, b.empty_reseeds);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, PublishesMetrics) {
  EmbeddingMatrix m(20, 2);
  Rng rng(5);
  for (size_t i = 0; i < 20; ++i) {
    m.row(i)[0] = static_cast<float>(rng.UniformDouble(0, 10));
    m.row(i)[1] = static_cast<float>(rng.UniformDouble(0, 10));
  }
  KMeansConfig cfg;
  cfg.k = 4;
  MetricsRegistry metrics;
  auto res = KMeans(m, cfg, nullptr, nullptr, &metrics);
  EXPECT_EQ(metrics.CounterValue("embed.kmeans.iterations"), res.iterations);
  EXPECT_DOUBLE_EQ(metrics.GaugeValue("embed.kmeans.inertia"), res.inertia);
  EXPECT_DOUBLE_EQ(metrics.GaugeValue("embed.kmeans.k_effective"),
                   static_cast<double>(res.k_effective));
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  EmbeddingMatrix m(60, 3);
  Rng rng(23);
  for (size_t i = 0; i < 60; ++i) {
    for (size_t d = 0; d < 3; ++d) {
      m.row(i)[d] = static_cast<float>(rng.UniformDouble(0, 10));
    }
  }
  KMeansConfig c2;
  c2.k = 2;
  KMeansConfig c8;
  c8.k = 8;
  EXPECT_GT(KMeans(m, c2).inertia, KMeans(m, c8).inertia);
}

// ---- end-to-end clusterer ----------------------------------------------------------

TEST(EmbedClustererTest, AssignsEveryNode) {
  auto g = TwoCliques(5);
  EmbedClusterConfig cfg;
  cfg.kmeans.k = 2;
  cfg.skipgram.dimensions = 16;
  cfg.walk.walks_per_node = 10;
  EmbedClusterer clusterer(cfg);
  auto assignment_r = clusterer.Cluster(g);
  ASSERT_TRUE(assignment_r.ok()) << assignment_r.status().ToString();
  const auto& assignment = *assignment_r;
  ASSERT_EQ(assignment.size(), g.node_count());
  for (uint32_t c : assignment) EXPECT_LT(c, 2u);
  EXPECT_EQ(clusterer.last_embedding().node_count(), g.node_count());
}

}  // namespace
}  // namespace vadalink::embed
