// datalog/: relation CSV import/export.
#include <gtest/gtest.h>

#include <fstream>

#include "datalog/relation_io.h"

namespace vadalink::datalog {
namespace {

class RelationIoTest : public ::testing::Test {
 protected:
  Catalog catalog;
  Database db{&catalog};

  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::trunc);
    out << content;
  }
};

TEST_F(RelationIoTest, LoadTypedCells) {
  std::string path = TempPath("own.csv");
  WriteFile(path, "acme,bigco,0.5\nacme,smallco,2\nbigco,smallco,true\n");
  auto n = LoadRelationCsv(&db, "own", path);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 3u);
  auto tuples = db.Scan("own");
  ASSERT_EQ(tuples.size(), 3u);
  EXPECT_TRUE(tuples[0][0].is_symbol());
  EXPECT_TRUE(tuples[0][2].is_double());
  EXPECT_DOUBLE_EQ(tuples[0][2].AsDouble(), 0.5);
  EXPECT_TRUE(tuples[1][2].is_int());
  EXPECT_EQ(tuples[1][2].AsInt(), 2);
  EXPECT_TRUE(tuples[2][2].is_bool());
}

TEST_F(RelationIoTest, LoadDeduplicates) {
  std::string path = TempPath("dup.csv");
  WriteFile(path, "a,1\na,1\nb,2\n");
  auto n = LoadRelationCsv(&db, "p", path);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(db.Scan("p").size(), 2u);
}

TEST_F(RelationIoTest, InconsistentArityRejected) {
  std::string path = TempPath("bad.csv");
  WriteFile(path, "a,1\nb\n");
  EXPECT_FALSE(LoadRelationCsv(&db, "p", path).ok());
}

TEST_F(RelationIoTest, ArityMismatchWithExistingRelationRejected) {
  ASSERT_TRUE(db.InsertByName("p", {Value::Int(1), Value::Int(2)}).ok());
  std::string path = TempPath("one.csv");
  WriteFile(path, "justone\n");
  EXPECT_FALSE(LoadRelationCsv(&db, "p", path).ok());
}

TEST_F(RelationIoTest, SaveLoadRoundTrip) {
  ASSERT_TRUE(db.InsertByName("q", {db.Sym("hello, world"), Value::Int(42),
                                    Value::Double(0.25)})
                  .ok());
  ASSERT_TRUE(
      db.InsertByName("q", {db.Sym("x"), Value::Int(-7), Value::Bool(true)})
          .ok());
  std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveRelationCsv(db, "q", path).ok());

  Catalog catalog2;
  Database db2(&catalog2);
  auto n = LoadRelationCsv(&db2, "q", path);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  auto tuples = db2.Scan("q");
  ASSERT_EQ(tuples.size(), 2u);
  // Values compare by rendered form (symbol ids differ across catalogs).
  bool found = false;
  for (const auto& t : tuples) {
    if (t[1].is_int() && t[1].AsInt() == 42) {
      found = true;
      EXPECT_EQ(catalog2.symbols.Name(t[0].symbol_id()), "hello, world");
      EXPECT_DOUBLE_EQ(t[2].AsDouble(), 0.25);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(RelationIoTest, UnknownPredicateSavesEmptyFile) {
  std::string path = TempPath("empty.csv");
  ASSERT_TRUE(SaveRelationCsv(db, "nothing", path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_TRUE(content.empty());
}

TEST_F(RelationIoTest, ParseCsvValueConventions) {
  SymbolTable symbols;
  EXPECT_TRUE(ParseCsvValue("true", &symbols).is_bool());
  EXPECT_TRUE(ParseCsvValue("123", &symbols).is_int());
  EXPECT_TRUE(ParseCsvValue("-1.5", &symbols).is_double());
  EXPECT_TRUE(ParseCsvValue("1e3", &symbols).is_double());
  EXPECT_TRUE(ParseCsvValue("12abc", &symbols).is_symbol());
  EXPECT_TRUE(ParseCsvValue("", &symbols).is_symbol());
}

}  // namespace
}  // namespace vadalink::datalog
