#!/usr/bin/env python3
"""Validate BENCH_engine.json documents against tools/engine_bench_schema.json.

Usage: check_engine_bench_schema.py <BENCH_engine.json> [more.json ...]

Checks (stdlib only, no third-party deps):
  * the required top-level keys exist and schema_version matches;
  * workloads is a non-empty array and every workload carries name,
    facts_derived, planned, worst_case, plans and agree;
  * both run objects carry seconds / facts_per_sec / join_probes /
    plans_computed / plan_cache_hits as non-negative numbers (the count
    fields as non-negative integers);
  * the correctness invariants hold: agree == true for every workload
    (the planner may only change enumeration order, never the final fact
    set) and the planned run reports at least one plan;
  * an optional per-workload "query_focus" object (bench_query_focus:
    planned = goal-directed Engine::Query, worst_case = full saturation)
    carries speedup / estimated_cost / cost_ratio as non-negative numbers
    and facts_avoided / fallback_count / plan_us as non-negative
    integers (estimated_cost and cost_ratio compare the static cost
    model's estimate against the join probes the query actually issued).

Exit code 0 when every document conforms, 1 with one line per violation
otherwise.
"""
import argparse
import json
import os
import sys


def check_document(path, schema, errors):
    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(f"unreadable or invalid JSON ({e})")
        return

    for key in schema["required_top_level_keys"]:
        if key not in doc:
            err(f"missing top-level key '{key}'")
    if doc.get("schema_version") != schema["schema_version"]:
        err(f"schema_version {doc.get('schema_version')!r} != "
            f"{schema['schema_version']}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        err("'bench' is not a non-empty string")

    workloads = doc.get("workloads")
    if not isinstance(workloads, list):
        err("'workloads' is not an array")
        return
    if schema["invariants"]["workloads_non_empty"] and not workloads:
        err("'workloads' is empty")

    def is_count(v):
        return isinstance(v, int) and not isinstance(v, bool) and v >= 0

    def is_number(v):
        return (isinstance(v, (int, float)) and not isinstance(v, bool)
                and v >= 0)

    for i, w in enumerate(workloads):
        where = f"workloads[{i}]"
        if not isinstance(w, dict):
            err(f"{where} is not an object")
            continue
        name = w.get("name")
        if isinstance(name, str) and name:
            where = f"workloads[{i}] ({name})"
        for field in schema["workload_fields"]:
            if field not in w:
                err(f"{where}: missing '{field}'")
        if not isinstance(name, str) or not name:
            err(f"{where}: 'name' is not a non-empty string")
        if not is_count(w.get("facts_derived")):
            err(f"{where}: 'facts_derived' is not a non-negative integer")
        for run_key in ("planned", "worst_case"):
            run = w.get(run_key)
            if not isinstance(run, dict):
                err(f"{where}: '{run_key}' is not an object")
                continue
            for field in schema["run_fields"]:
                v = run.get(field)
                if field in ("join_probes", "plans_computed",
                             "plan_cache_hits"):
                    if not is_count(v):
                        err(f"{where}: {run_key}.{field} is not a "
                            f"non-negative integer")
                elif not is_number(v):
                    err(f"{where}: {run_key}.{field} is not a "
                        f"non-negative number")
        qf = w.get("query_focus")
        if qf is not None:
            if not isinstance(qf, dict):
                err(f"{where}: 'query_focus' is not an object")
            else:
                for field in schema.get("query_focus_fields", []):
                    v = qf.get(field)
                    if field in ("speedup", "estimated_cost", "cost_ratio"):
                        if not is_number(v):
                            err(f"{where}: query_focus.{field} is not a "
                                f"non-negative number")
                    elif not is_count(v):
                        err(f"{where}: query_focus.{field} is not a "
                            f"non-negative integer")
        plans = w.get("plans")
        if not isinstance(plans, list) or not all(
                isinstance(p, str) and p for p in plans):
            err(f"{where}: 'plans' is not an array of non-empty strings")
        elif schema["invariants"]["plans_non_empty"] and not plans:
            err(f"{where}: 'plans' is empty (planned run built no plans)")
        if schema["invariants"]["agree_must_be_true"] and w.get("agree") \
                is not True:
            err(f"{where}: agree != true — fact sets differ across join "
                f"orders")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("bench_files", nargs="+")
    parser.add_argument("--schema",
                        default=os.path.join(os.path.dirname(__file__),
                                             "engine_bench_schema.json"))
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)

    errors = []
    for path in args.bench_files:
        check_document(path, schema, errors)

    if errors:
        for e in errors:
            print(f"SCHEMA VIOLATION: {e}", file=sys.stderr)
        return 1
    print(f"{len(args.bench_files)} engine bench document(s) conform to "
          f"schema v{schema['schema_version']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
