#!/usr/bin/env python3
"""Validate a BENCH_serve.json document against tools/serve_bench_schema.json.

Usage: check_serve_bench_schema.py <BENCH_serve.json>

Checks (stdlib only, no third-party deps):
  * the required top-level keys exist and schema_version matches;
  * config / graph / totals / latency_ms carry their required fields;
  * every count is a non-negative integer, every timing a non-negative
    number;
  * the robustness invariants hold: zero transport failures (every
    request got a response), shed_rate in [0, 1], latency percentiles
    monotone (p50 <= p90 <= p99 <= max), and responses >= ok + errors.

Exit code 0 when the document conforms, 1 with one line per violation
otherwise.
"""
import argparse
import json
import os
import sys


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("bench_file")
    parser.add_argument("--schema",
                        default=os.path.join(os.path.dirname(__file__),
                                             "serve_bench_schema.json"))
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)
    with open(args.bench_file) as f:
        doc = json.load(f)

    errors = []

    def err(msg):
        errors.append(msg)

    for key in schema["required_top_level_keys"]:
        if key not in doc:
            err(f"missing top-level key '{key}'")
    if doc.get("schema_version") != schema["schema_version"]:
        err(f"schema_version {doc.get('schema_version')!r} != "
            f"{schema['schema_version']}")

    def require_fields(section, fields, kind):
        obj = doc.get(section, {})
        if not isinstance(obj, dict):
            err(f"'{section}' is not an object")
            return {}
        for field in fields:
            if field not in obj:
                err(f"missing {section}.{field}")
            elif kind == "count":
                v = obj[field]
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    err(f"{section}.{field} is not a non-negative "
                        f"integer: {v!r}")
            elif kind == "number":
                v = obj[field]
                if not isinstance(v, (int, float)) or isinstance(v, bool) \
                        or v < 0:
                    err(f"{section}.{field} is not a non-negative "
                        f"number: {v!r}")
        return obj

    require_fields("config", schema["config_fields"], "count")
    require_fields("graph", schema["graph_fields"], "count")
    totals = require_fields("totals", schema["totals_fields"], "count")
    latency = require_fields("latency_ms", schema["latency_fields"], "number")

    for key in ("qps", "shed_rate", "duration_seconds"):
        v = doc.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            err(f"'{key}' is not a non-negative number: {v!r}")

    inv = schema.get("invariants", {})
    if inv.get("transport_failures_must_be_zero"):
        tf = totals.get("transport_failures")
        if isinstance(tf, int) and tf != 0:
            err(f"totals.transport_failures is {tf}; every request must "
                "receive a response")
    lo, hi = inv.get("shed_rate_range", [0.0, 1.0])
    sr = doc.get("shed_rate")
    if isinstance(sr, (int, float)) and not lo <= sr <= hi:
        err(f"shed_rate {sr} outside [{lo}, {hi}]")
    chain = inv.get("latency_percentiles_monotone", [])
    values = [latency.get(name) for name in chain]
    if all(isinstance(v, (int, float)) for v in values):
        for (a_name, a), (b_name, b) in zip(list(zip(chain, values))[:-1],
                                            list(zip(chain, values))[1:]):
            if a > b:
                err(f"latency_ms.{a_name} ({a}) > latency_ms.{b_name} ({b})")
    responses = totals.get("responses")
    ok = totals.get("ok")
    errs = totals.get("errors")
    if all(isinstance(v, int) for v in (responses, ok, errs)):
        if ok + errs > responses:
            err(f"totals.ok + totals.errors ({ok} + {errs}) exceeds "
                f"totals.responses ({responses})")

    if errors:
        for e in errors:
            print(f"SCHEMA VIOLATION: {e}", file=sys.stderr)
        return 1
    print(f"{args.bench_file}: conforms to serve bench schema "
          f"version {schema['schema_version']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
