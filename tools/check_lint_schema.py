#!/usr/bin/env python3
"""Validate a 'vadalink lint --json' document against tools/lint_schema.json.

Usage: check_lint_schema.py <lint.json> [--schema FILE]

Checks (stdlib only, no third-party deps):
  * the required top-level keys exist and schema_version matches;
  * the summary has errors/warnings/diagnostics counts that are
    non-negative integers consistent with the diagnostics array;
  * every diagnostic has exactly the expected fields, a known severity,
    a catalogued VL code whose severity class matches (warning codes must
    carry severity "warning", error codes severity "error"), an integer
    rule index >= -1 and non-negative line/col;
  * a diagnostic with a known line also names a rule or a predicate or a
    message (i.e. is never empty);
  * an optional "cost" block (lint --cost) has exactly the expected
    fields, non-negative numeric summary counts, per-predicate entries
    with lo <= hi and a known growth class, and per-rule entries with
    in-range rule indices and boolean shape flags.

Exit code 0 when the document conforms, 1 with one line per violation
otherwise.
"""
import argparse
import json
import os
import sys


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("lint_file")
    parser.add_argument("--schema",
                        default=os.path.join(os.path.dirname(__file__),
                                             "lint_schema.json"))
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)
    with open(args.lint_file) as f:
        doc = json.load(f)

    errors = []

    def err(msg):
        errors.append(msg)

    for key in schema["required_top_level_keys"]:
        if key not in doc:
            err(f"missing top-level key '{key}'")
    if doc.get("schema_version") != schema["schema_version"]:
        err(f"schema_version {doc.get('schema_version')!r} != "
            f"{schema['schema_version']}")
    if not isinstance(doc.get("program"), str):
        err("'program' is not a string")

    summary = doc.get("summary", {})
    for field in schema["summary_fields"]:
        value = summary.get(field)
        if not isinstance(value, int) or value < 0:
            err(f"summary.{field} is not a non-negative integer: {value!r}")

    diags = doc.get("diagnostics", [])
    if not isinstance(diags, list):
        err("'diagnostics' is not an array")
        diags = []

    severities = set(schema["severities"])
    codes = set(schema["codes"])
    warning_codes = set(schema["warning_codes"])
    fields = schema["diagnostic_fields"]
    n_errors = n_warnings = 0
    for i, d in enumerate(diags):
        where = f"diagnostics[{i}]"
        if not isinstance(d, dict):
            err(f"{where} is not an object")
            continue
        if sorted(d.keys()) != sorted(fields):
            err(f"{where} fields {sorted(d.keys())} != expected "
                f"{sorted(fields)}")
            continue
        sev = d["severity"]
        if sev not in severities:
            err(f"{where} has unknown severity {sev!r}")
        code = d["code"]
        if code not in codes:
            err(f"{where} has uncatalogued code {code!r}")
        elif sev in severities:
            expect = "warning" if code in warning_codes else "error"
            if sev != expect:
                err(f"{where} code {code} must be severity '{expect}', "
                    f"got '{sev}'")
        if sev == "error":
            n_errors += 1
        elif sev == "warning":
            n_warnings += 1
        if not isinstance(d["rule"], int) or d["rule"] < -1:
            err(f"{where} rule index {d['rule']!r} is not an int >= -1")
        for key in ("line", "col"):
            if not isinstance(d[key], int) or d[key] < 0:
                err(f"{where} {key} {d[key]!r} is not a non-negative int")
        for key in ("predicate", "message", "hint"):
            if not isinstance(d[key], str):
                err(f"{where} {key} is not a string")
        if not d["message"]:
            err(f"{where} has an empty message")

    if isinstance(summary.get("errors"), int) and summary["errors"] != n_errors:
        err(f"summary.errors {summary['errors']} != counted {n_errors}")
    if (isinstance(summary.get("warnings"), int)
            and summary["warnings"] != n_warnings):
        err(f"summary.warnings {summary['warnings']} != counted {n_warnings}")
    if (isinstance(summary.get("diagnostics"), int)
            and summary["diagnostics"] != len(diags)):
        err(f"summary.diagnostics {summary['diagnostics']} != "
            f"{len(diags)} entries")

    if "cost" in doc:
        cost = doc["cost"]
        if not isinstance(cost, dict):
            err("'cost' is not an object")
            cost = {}
        if sorted(cost.keys()) != sorted(schema["cost_fields"]):
            err(f"cost fields {sorted(cost.keys())} != expected "
                f"{sorted(schema['cost_fields'])}")
        pc = cost.get("program_cost")
        if not isinstance(pc, (int, float)) or pc < 0:
            err(f"cost.program_cost {pc!r} is not a non-negative number")
        for key in ("recursive_sccs", "warded_only_sccs"):
            v = cost.get(key)
            if not isinstance(v, int) or v < 0:
                err(f"cost.{key} {v!r} is not a non-negative integer")
        growth_classes = set(schema["growth_classes"])
        preds = cost.get("predicates", [])
        if not isinstance(preds, list):
            err("cost.predicates is not an array")
            preds = []
        for i, p in enumerate(preds):
            where = f"cost.predicates[{i}]"
            if not isinstance(p, dict):
                err(f"{where} is not an object")
                continue
            if sorted(p.keys()) != sorted(schema["cost_predicate_fields"]):
                err(f"{where} fields {sorted(p.keys())} != expected "
                    f"{sorted(schema['cost_predicate_fields'])}")
                continue
            if not isinstance(p["predicate"], str):
                err(f"{where} predicate is not a string")
            for key in ("lo", "hi"):
                if not isinstance(p[key], (int, float)) or p[key] < 0:
                    err(f"{where} {key} {p[key]!r} is not a non-negative "
                        f"number")
            if (isinstance(p.get("lo"), (int, float))
                    and isinstance(p.get("hi"), (int, float))
                    and p["lo"] > p["hi"]):
                err(f"{where} lo {p['lo']} > hi {p['hi']}")
            if p["growth"] not in growth_classes:
                err(f"{where} has unknown growth class {p['growth']!r}")
        rules = cost.get("rules", [])
        if not isinstance(rules, list):
            err("cost.rules is not an array")
            rules = []
        for i, r in enumerate(rules):
            where = f"cost.rules[{i}]"
            if not isinstance(r, dict):
                err(f"{where} is not an object")
                continue
            if sorted(r.keys()) != sorted(schema["cost_rule_fields"]):
                err(f"{where} fields {sorted(r.keys())} != expected "
                    f"{sorted(schema['cost_rule_fields'])}")
                continue
            if not isinstance(r["rule"], int) or r["rule"] < 0:
                err(f"{where} rule index {r['rule']!r} is not an int >= 0")
            for key in ("join_cost", "output_rows"):
                if not isinstance(r[key], (int, float)) or r[key] < 0:
                    err(f"{where} {key} {r[key]!r} is not a non-negative "
                        f"number")
            for key in ("cartesian", "unbound_self_join"):
                if not isinstance(r[key], bool):
                    err(f"{where} {key} {r[key]!r} is not a boolean")

    for e in errors:
        print(e, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
