#!/usr/bin/env python3
"""Validate BENCH_chase_memory.json against tools/chase_memory_schema.json.

Usage: check_chase_memory_schema.py <BENCH_chase_memory.json> [more.json ...]

Checks (stdlib only, no third-party deps):
  * the required top-level keys exist and schema_version matches;
  * workloads is a non-empty array and every workload carries name, nodes,
    full, streaming, ratio and identical;
  * the full block carries peak_resident_facts / total_facts / seconds and
    the streaming block additionally evicted_rows, memo_queries, memo_hits
    and memo_hit_rate, counts as non-negative integers and the rest as
    non-negative numbers;
  * the correctness invariants hold: identical == true for every workload
    (the streaming chase may only change storage residency, never the
    answer set), streaming peak_resident_facts <= full peak_resident_facts,
    memo_hits <= memo_queries, and the suite block's ratio agrees with its
    peak counters.

Exit code 0 when every document conforms, 1 with one line per violation
otherwise.
"""
import argparse
import json
import os
import sys


def is_count(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool) and v >= 0


def check_run(where, run_key, run, fields, count_fields, err):
    if not isinstance(run, dict):
        err(f"{where}: '{run_key}' is not an object")
        return False
    for field in fields:
        v = run.get(field)
        if field in count_fields:
            if not is_count(v):
                err(f"{where}: {run_key}.{field} is not a non-negative "
                    f"integer")
        elif not is_number(v):
            err(f"{where}: {run_key}.{field} is not a non-negative number")
    return True


def check_document(path, schema, errors):
    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(f"unreadable or invalid JSON ({e})")
        return

    for key in schema["required_top_level_keys"]:
        if key not in doc:
            err(f"missing top-level key '{key}'")
    if doc.get("schema_version") != schema["schema_version"]:
        err(f"schema_version {doc.get('schema_version')!r} != "
            f"{schema['schema_version']}")
    if doc.get("bench") != "chase_memory":
        err(f"'bench' is {doc.get('bench')!r}, expected 'chase_memory'")

    workloads = doc.get("workloads")
    if not isinstance(workloads, list):
        err("'workloads' is not an array")
        return
    if schema["invariants"]["workloads_non_empty"] and not workloads:
        err("'workloads' is empty")

    count_fields = {"peak_resident_facts", "total_facts", "evicted_rows",
                    "memo_queries", "memo_hits"}
    for i, w in enumerate(workloads):
        where = f"workloads[{i}]"
        if not isinstance(w, dict):
            err(f"{where} is not an object")
            continue
        name = w.get("name")
        if isinstance(name, str) and name:
            where = f"workloads[{i}] ({name})"
        for field in schema["workload_fields"]:
            if field not in w:
                err(f"{where}: missing '{field}'")
        if not isinstance(name, str) or not name:
            err(f"{where}: 'name' is not a non-empty string")
        if not is_count(w.get("nodes")) or w.get("nodes") == 0:
            err(f"{where}: 'nodes' is not a positive integer")
        full_ok = check_run(where, "full", w.get("full"),
                            schema["full_fields"], count_fields, err)
        streaming_ok = check_run(where, "streaming", w.get("streaming"),
                                 schema["streaming_fields"], count_fields,
                                 err)
        if not is_number(w.get("ratio")):
            err(f"{where}: 'ratio' is not a non-negative number")
        if schema["invariants"]["identical_must_be_true"] and \
                w.get("identical") is not True:
            err(f"{where}: identical != true — streaming and full answer "
                f"sets differ")
        if full_ok and streaming_ok:
            full_peak = w["full"].get("peak_resident_facts")
            stream_peak = w["streaming"].get("peak_resident_facts")
            if schema["invariants"]["streaming_peak_le_full_peak"] and \
                    is_count(full_peak) and is_count(stream_peak) and \
                    stream_peak > full_peak:
                err(f"{where}: streaming peak {stream_peak} exceeds full "
                    f"peak {full_peak}")
            queries = w["streaming"].get("memo_queries")
            hits = w["streaming"].get("memo_hits")
            if schema["invariants"]["memo_hits_le_queries"] and \
                    is_count(queries) and is_count(hits) and hits > queries:
                err(f"{where}: memo_hits {hits} exceeds memo_queries "
                    f"{queries}")
            rate = w["streaming"].get("memo_hit_rate")
            if is_number(rate) and rate > 1.0:
                err(f"{where}: memo_hit_rate {rate} exceeds 1.0")

    suite = doc.get("suite")
    if not isinstance(suite, dict):
        err("'suite' is not an object")
        return
    for field in schema["suite_fields"]:
        if field not in suite:
            err(f"suite: missing '{field}'")
    for field in ("full_peak_resident_facts", "streaming_peak_resident_facts"):
        if not is_count(suite.get(field)):
            err(f"suite: '{field}' is not a non-negative integer")
    for field in ("ratio", "bound"):
        if not is_number(suite.get(field)):
            err(f"suite: '{field}' is not a non-negative number")
    if not isinstance(suite.get("within_bound"), bool):
        err("suite: 'within_bound' is not a boolean")
    full_peak = suite.get("full_peak_resident_facts")
    stream_peak = suite.get("streaming_peak_resident_facts")
    ratio = suite.get("ratio")
    if is_count(full_peak) and full_peak > 0 and is_count(stream_peak) and \
            is_number(ratio):
        expected = stream_peak / full_peak
        if abs(expected - ratio) > 0.001:
            err(f"suite: ratio {ratio} disagrees with "
                f"{stream_peak}/{full_peak} = {expected:.4f}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("bench_files", nargs="+")
    parser.add_argument("--schema",
                        default=os.path.join(os.path.dirname(__file__),
                                             "chase_memory_schema.json"))
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)

    errors = []
    for path in args.bench_files:
        check_document(path, schema, errors)

    if errors:
        for e in errors:
            print(f"SCHEMA VIOLATION: {e}", file=sys.stderr)
        return 1
    print(f"{len(args.bench_files)} chase-memory document(s) conform to "
          f"schema v{schema['schema_version']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
