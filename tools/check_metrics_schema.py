#!/usr/bin/env python3
"""Validate a --metrics-json document against tools/metrics_schema.json.

Usage: check_metrics_schema.py <metrics.json> [--profile augment|reason]

Checks (stdlib only, no third-party deps):
  * the required top-level keys exist and schema_version matches;
  * the profile's required counters / histograms / spans are present;
  * every counter value is a non-negative integer;
  * every histogram has count/sum/buckets, exactly the expected number of
    buckets, and cumulative bucket counts that are monotone non-decreasing
    and end at the histogram's count;
  * every span has the expected fields with non-negative integer values.

Exit code 0 when the document conforms, 1 with one line per violation
otherwise.
"""
import argparse
import json
import os
import sys


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("metrics_file")
    parser.add_argument("--profile", choices=["augment", "reason"],
                        default="augment")
    parser.add_argument("--schema",
                        default=os.path.join(os.path.dirname(__file__),
                                             "metrics_schema.json"))
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)
    with open(args.metrics_file) as f:
        doc = json.load(f)

    errors = []

    def err(msg):
        errors.append(msg)

    for key in schema["required_top_level_keys"]:
        if key not in doc:
            err(f"missing top-level key '{key}'")
    if doc.get("schema_version") != schema["schema_version"]:
        err(f"schema_version {doc.get('schema_version')!r} != "
            f"{schema['schema_version']}")

    counters = doc.get("counters", {})
    for name in schema[f"required_counters_{args.profile}"]:
        if name not in counters:
            err(f"missing counter '{name}'")
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            err(f"counter '{name}' is not a non-negative integer: {value!r}")

    histograms = doc.get("histograms", {})
    for name in schema.get(f"required_histograms_{args.profile}", []):
        if name not in histograms:
            err(f"missing histogram '{name}'")
    for name, h in histograms.items():
        for field in schema["histogram_fields"]:
            if field not in h:
                err(f"histogram '{name}' missing field '{field}'")
        buckets = h.get("buckets", [])
        if len(buckets) != schema["histogram_buckets"]:
            err(f"histogram '{name}' has {len(buckets)} buckets, expected "
                f"{schema['histogram_buckets']}")
        prev = 0
        for i, b in enumerate(buckets):
            if not isinstance(b, int) or b < 0:
                err(f"histogram '{name}' bucket {i} is not a non-negative "
                    f"integer: {b!r}")
                break
            if b < prev:
                err(f"histogram '{name}' cumulative buckets not monotone at "
                    f"index {i}: {b} < {prev}")
                break
            prev = b
        if buckets and isinstance(h.get("count"), int) \
                and buckets[-1] != h["count"]:
            err(f"histogram '{name}' last cumulative bucket {buckets[-1]} != "
                f"count {h['count']}")

    spans = doc.get("spans", {})
    for path in schema.get(f"required_spans_{args.profile}", []):
        if path not in spans:
            err(f"missing span '{path}'")
    for path, s in spans.items():
        for field in schema["span_fields"]:
            value = s.get(field)
            if not isinstance(value, int) or value < 0:
                err(f"span '{path}' field '{field}' is not a non-negative "
                    f"integer: {value!r}")

    if errors:
        for e in errors:
            print(f"check_metrics_schema: {e}", file=sys.stderr)
        return 1
    print(f"check_metrics_schema: OK ({args.metrics_file}, "
          f"profile={args.profile}, {len(counters)} counters, "
          f"{len(histograms)} histograms, {len(spans)} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
