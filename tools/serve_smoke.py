#!/usr/bin/env python3
"""Smoke test for `vadalink serve` over its TCP line protocol.

Usage: serve_smoke.py [--host 127.0.0.1] [--port 7411] [--timeout 15]

Run against an already-started server (typically backgrounded in CI).
Stdlib only. The script:
  * retries the connect until the server is listening (bounded);
  * checks health reports "serving" with a positive graph_version;
  * runs a keyed control query and checks the response shape, then
    repeats it and requires the cached flag;
  * sends malformed input and requires a structured ParseError (the
    connection must survive it);
  * checks the metrics op returns a document with counters;
  * sends shutdown and requires an ok response followed by EOF.

Exit code 0 on success, 1 with a diagnostic otherwise.
"""
import argparse
import json
import socket
import sys
import time


class LineClient:
    def __init__(self, host, port, timeout):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(timeout)
        self.buf = b""
        self.next_id = 1

    def send_raw(self, line):
        self.sock.sendall(line.encode() + b"\n")

    def read_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise EOFError("server closed the connection")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def call(self, op, params=None):
        req = {"id": self.next_id, "op": op, "params": params or {}}
        self.next_id += 1
        self.send_raw(json.dumps(req))
        resp = json.loads(self.read_line())
        if resp.get("id") != req["id"]:
            raise AssertionError(
                f"response id {resp.get('id')} != request id {req['id']}")
        return resp


def connect_with_retry(host, port, deadline_s):
    end = time.monotonic() + deadline_s
    last = None
    while time.monotonic() < end:
        try:
            return LineClient(host, port, timeout=10)
        except OSError as e:
            last = e
            time.sleep(0.2)
    raise SystemExit(f"server never listened on {host}:{port}: {last}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7411)
    parser.add_argument("--timeout", type=float, default=15.0)
    args = parser.parse_args()

    failures = []

    def check(cond, msg):
        if not cond:
            failures.append(msg)

    c = connect_with_retry(args.host, args.port, args.timeout)

    health = c.call("health")
    check(health.get("ok") is True, f"health not ok: {health}")
    check(health.get("result", {}).get("status") == "serving",
          f"health.status != serving: {health}")
    check(health.get("graph_version", 0) >= 1,
          f"graph_version < 1: {health}")

    control = c.call("control", {"source": 0})
    check(control.get("ok") is True, f"control not ok: {control}")
    check("count" in control.get("result", {}),
          f"control result missing count: {control}")
    again = c.call("control", {"source": 0})
    check(again.get("cached") is True,
          f"repeated control not served from cache: {again}")

    c.send_raw("this is not json")
    garbled = json.loads(c.read_line())
    check(garbled.get("ok") is False,
          f"malformed line not rejected: {garbled}")
    check(garbled.get("error", {}).get("code") == "ParseError",
          f"malformed line error code != ParseError: {garbled}")

    still = c.call("health")
    check(still.get("ok") is True,
          f"connection did not survive malformed line: {still}")

    metrics = c.call("metrics")
    check(metrics.get("ok") is True, f"metrics not ok: {metrics}")
    doc = metrics.get("result", {}).get("metrics")
    check(isinstance(doc, dict) and "counters" in doc,
          f"metrics document missing counters: {metrics}")
    check(doc.get("counters", {}).get("serve.requests.handled", 0) > 0,
          f"serve.requests.handled not counted: {metrics}")

    bye = c.call("shutdown")
    check(bye.get("ok") is True, f"shutdown not acknowledged: {bye}")
    try:
        c.read_line()
        # Tolerated: some stacks deliver EOF on the next read instead.
    except (EOFError, OSError):
        pass

    if failures:
        for f in failures:
            print(f"SMOKE FAILURE: {f}", file=sys.stderr)
        return 1
    print("serve smoke: health, keyed query + cache, malformed-line "
          "containment, metrics, shutdown all OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
