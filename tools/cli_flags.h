// Strict --flag value parser shared by the CLI (and unit-tested in
// tests/cli_flags_test.cc). Flags may appear in any order; duplicates and
// malformed numeric values are hard errors — a typo must never silently
// become 0 (std::atoll's behaviour) or shadow an earlier flag.
#pragma once

#include <cstdlib>
#include <map>
#include <string>

namespace vadalink::cli {

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        Fail("expected --flag, got '" + key + "'");
        return;
      }
      key = key.substr(2);
      if (values_.count(key) > 0) {
        Fail("duplicate flag '--" + key + "'");
        return;
      }
      values_[key] = argv[i + 1];
    }
    if (ok_ && (argc - first) % 2 != 0) {
      Fail(std::string("flag '") + argv[argc - 1] + "' is missing a value");
    }
  }

  /// False after any parse error — at construction (bad syntax, duplicate)
  /// or from a typed getter (non-numeric value). Check after reading all
  /// flags of a command.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& s = it->second;
    char* end = nullptr;
    errno = 0;
    int64_t v = std::strtoll(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
      Fail("flag '--" + key + "' expects an integer, got '" + s + "'");
      return fallback;
    }
    return v;
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& s = it->second;
    char* end = nullptr;
    errno = 0;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
      Fail("flag '--" + key + "' expects a number, got '" + s + "'");
      return fallback;
    }
    return v;
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  // Getters are const (callers read into const configs); errors from them
  // still need to stick, hence the mutable state.
  void Fail(std::string msg) const {
    if (ok_) error_ = std::move(msg);  // keep the first error
    ok_ = false;
  }

  std::map<std::string, std::string> values_;
  mutable bool ok_ = true;
  mutable std::string error_;
};

}  // namespace vadalink::cli
