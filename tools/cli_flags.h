// Strict --flag value parser shared by the CLI (and unit-tested in
// tests/cli_flags_test.cc). Flags may appear in any order; duplicates and
// malformed numeric values are hard errors — a typo must never silently
// become 0 (std::atoll's behaviour) or shadow an earlier flag. Commands
// declare their accepted flags via RequireKnown, so '--thread 4' fails
// with a "did you mean '--threads'?" suggestion instead of being
// silently ignored.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

namespace vadalink::cli {

/// Levenshtein edit distance; small inputs only (flag names).
inline size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        Fail("expected --flag, got '" + key + "'");
        return;
      }
      key = key.substr(2);
      if (values_.count(key) > 0) {
        Fail("duplicate flag '--" + key + "'");
        return;
      }
      values_[key] = argv[i + 1];
    }
    if (ok_ && (argc - first) % 2 != 0) {
      Fail(std::string("flag '") + argv[argc - 1] + "' is missing a value");
    }
  }

  /// False after any parse error — at construction (bad syntax, duplicate)
  /// or from a typed getter (non-numeric value). Check after reading all
  /// flags of a command.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& s = it->second;
    char* end = nullptr;
    errno = 0;
    int64_t v = std::strtoll(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
      Fail("flag '--" + key + "' expects an integer, got '" + s + "'");
      return fallback;
    }
    return v;
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& s = it->second;
    char* end = nullptr;
    errno = 0;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
      Fail("flag '--" + key + "' expects a number, got '" + s + "'");
      return fallback;
    }
    return v;
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// Rejects every parsed flag not in `known` (exact match). The error
  /// names the unknown flag and, when a known flag is within edit
  /// distance 3, suggests it. Call once per command, before the typed
  /// getters.
  bool RequireKnown(std::initializer_list<const char*> known) const {
    for (const auto& [key, value] : values_) {
      bool found = false;
      for (const char* k : known) {
        if (key == k) {
          found = true;
          break;
        }
      }
      if (found) continue;
      std::string msg = "unknown flag '--" + key + "'";
      const char* best = nullptr;
      size_t best_dist = 4;  // suggest only close misses
      for (const char* k : known) {
        size_t d = EditDistance(key, k);
        if (d < best_dist) {
          best_dist = d;
          best = k;
        }
      }
      if (best != nullptr) {
        msg += "; did you mean '--" + std::string(best) + "'?";
      }
      Fail(std::move(msg));
      return false;
    }
    return true;
  }

 private:
  // Getters are const (callers read into const configs); errors from them
  // still need to stick, hence the mutable state.
  void Fail(std::string msg) const {
    if (ok_) error_ = std::move(msg);  // keep the first error
    ok_ = false;
  }

  std::map<std::string, std::string> values_;
  mutable bool ok_ = true;
  mutable std::string error_;
};

}  // namespace vadalink::cli
