// vadalink — command-line driver for the library: generate synthetic
// registers, compute statistics, run the augmentation loop, query control /
// close links / UBOs, screen guarantors, and execute Vadalog programs over
// graphs stored as the CSV pair written by graph::SaveGraphCsv.
//
//   vadalink generate --persons 5000 --out reg
//   vadalink stats --in reg
//   vadalink augment --in reg --out reg_aug --rounds 2
//   vadalink control --in reg_aug --source 17
//   vadalink closelinks --in reg_aug --threshold 0.2
//   vadalink ubo --in reg_aug --target 42
//   vadalink screen --in reg_aug --borrower 3 --guarantor 9
//   vadalink reason --in reg --program rules.vada --query control
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "company/close_link.h"
#include "datalog/analysis/analyzer.h"
#include "datalog/parser.h"
#include "company/company_graph.h"
#include "company/control.h"
#include "company/eligibility.h"
#include "company/groups.h"
#include "core/knowledge_graph.h"
#include "core/mapping.h"
#include "core/pipeline_options.h"
#include "core/vada_link.h"
#include "gen/register_simulator.h"
#include "graph/graph_algorithms.h"
#include "graph/dot_export.h"
#include "graph/graph_io.h"
#include "gen/evolution.h"
#include "serve/server.h"
#include "tools/cli_flags.h"

using namespace vadalink;

namespace {

using cli::Flags;

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

/// Returns a non-OK status if any typed getter saw a malformed value.
Status FlagErrors(const Flags& flags) {
  if (!flags.ok()) return Status::InvalidArgument(flags.error());
  return Status::OK();
}

/// Builds a RunContext from --deadline-ms / --max-facts; nullptr when
/// neither flag is set (unlimited run).
std::unique_ptr<RunContext> GovernorFromFlags(const Flags& flags) {
  if (!flags.Has("deadline-ms") && !flags.Has("max-facts")) return nullptr;
  auto ctx = std::make_unique<RunContext>();
  if (flags.Has("deadline-ms")) {
    ctx->set_deadline_after_ms(flags.GetInt("deadline-ms", 0));
  }
  if (flags.Has("max-facts")) {
    ctx->set_work_budget(
        static_cast<uint64_t>(flags.GetInt("max-facts", 0)));
  }
  return ctx;
}

/// Shared concurrency flags: --threads N (0 = hardware concurrency) and
/// --grain N (items per parallel chunk; 0 = auto).
ParallelOptions ParallelFromFlags(const Flags& flags) {
  ParallelOptions parallel;
  parallel.threads = static_cast<size_t>(flags.GetInt("threads", 1));
  parallel.grain = static_cast<size_t>(flags.GetInt("grain", 0));
  return parallel;
}

/// Shared observability flags (--metrics-json PATH, --trace 1,
/// --metrics-wall 1) into `opts`. Returns the owning registry when any of
/// them asked for one (opts->metrics borrows it), nullptr otherwise —
/// observability off costs nothing.
std::unique_ptr<MetricsRegistry> MetricsFromFlags(const Flags& flags,
                                                  core::PipelineOptions* opts) {
  opts->metrics_json_path = flags.Get("metrics-json", "");
  opts->trace = flags.Has("trace") && flags.GetInt("trace", 0) != 0;
  opts->metrics_wall =
      flags.Has("metrics-wall") && flags.GetInt("metrics-wall", 0) != 0;
  if (opts->metrics_json_path.empty() && !opts->trace) return nullptr;
  auto registry = std::make_unique<MetricsRegistry>();
  opts->metrics = registry.get();
  return registry;
}

/// Post-run emission: --trace report to stderr, --metrics-json document to
/// its file.
Status EmitMetrics(const core::PipelineOptions& opts) {
  if (opts.metrics == nullptr) return Status::OK();
  if (opts.trace) {
    std::fputs(opts.metrics->TraceReport().c_str(), stderr);
  }
  if (!opts.metrics_json_path.empty()) {
    MetricsJsonOptions json_opts;
    json_opts.include_timings = opts.metrics_wall;
    VL_RETURN_NOT_OK(
        opts.metrics->WriteJsonFile(opts.metrics_json_path, json_opts));
  }
  return Status::OK();
}

Result<graph::PropertyGraph> LoadIn(const Flags& flags) {
  std::string base = flags.Get("in", "");
  if (base.empty()) {
    return Status::InvalidArgument("missing --in <basename>");
  }
  return graph::LoadGraphCsv(base + "_nodes.csv", base + "_edges.csv");
}

Status SaveOut(const graph::PropertyGraph& g, const Flags& flags) {
  std::string base = flags.Get("out", "");
  if (base.empty()) {
    return Status::InvalidArgument("missing --out <basename>");
  }
  return graph::SaveGraphCsv(g, base + "_nodes.csv", base + "_edges.csv");
}

std::string NameOf(const graph::PropertyGraph& g, graph::NodeId n) {
  const auto& name = g.GetNodeProperty(n, "name");
  if (name.is_string()) return name.AsString();
  const auto& first = g.GetNodeProperty(n, "first_name");
  const auto& last = g.GetNodeProperty(n, "last_name");
  if (first.is_string() && last.is_string()) {
    return first.AsString() + " " + last.AsString();
  }
  return "#" + std::to_string(n);
}

// ---- subcommands -----------------------------------------------------------

int CmdGenerate(const Flags& flags) {
  gen::RegisterConfig cfg;
  cfg.persons = static_cast<size_t>(flags.GetInt("persons", 1000));
  cfg.companies = static_cast<size_t>(
      flags.GetInt("companies", static_cast<int64_t>(cfg.persons * 3 / 4)));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 2020));
  cfg.share_density = flags.GetDouble("density", cfg.share_density);
  cfg.typo_rate = flags.GetDouble("typo-rate", cfg.typo_rate);
  if (Status st = FlagErrors(flags); !st.ok()) return Fail(st);
  auto data = gen::GenerateRegister(cfg);
  if (Status st = SaveOut(data.graph, flags); !st.ok()) return Fail(st);
  std::printf("generated %zu persons, %zu companies, %zu shareholdings "
              "(%zu planted family links) -> %s_{nodes,edges}.csv\n",
              data.persons.size(), data.companies.size(),
              data.graph.edge_count(), data.true_family_links.size(),
              flags.Get("out", "").c_str());
  return 0;
}

int CmdStats(const Flags& flags) {
  auto g = LoadIn(flags);
  if (!g.ok()) return Fail(g.status());
  auto s = graph::ComputeGraphStats(*g);
  std::printf("nodes                  %zu\n", s.nodes);
  std::printf("edges                  %zu\n", s.edges);
  std::printf("SCCs                   %zu (largest %zu)\n", s.scc_count,
              s.largest_scc);
  std::printf("WCCs                   %zu (largest %zu, avg %.2f)\n",
              s.wcc_count, s.largest_wcc, s.avg_wcc_size);
  std::printf("avg degree             %.3f\n", s.avg_out_degree);
  std::printf("max in/out degree      %zu / %zu\n", s.max_in_degree,
              s.max_out_degree);
  std::printf("clustering coefficient %.5f\n", s.clustering_coefficient);
  std::printf("self-loops             %zu\n", s.self_loops);
  std::printf("power-law alpha        %.2f\n", s.power_law_alpha);
  return 0;
}

int CmdAugment(const Flags& flags) {
  auto g = LoadIn(flags);
  if (!g.ok()) return Fail(g.status());
  core::PipelineOptions opts;
  opts.parallel = ParallelFromFlags(flags);
  opts.augment.max_rounds = static_cast<size_t>(flags.GetInt("rounds", 2));
  opts.augment.use_embedding = !flags.Has("no-embedding");
  auto governor = GovernorFromFlags(flags);
  auto registry = MetricsFromFlags(flags, &opts);
  if (Status st = FlagErrors(flags); !st.ok()) return Fail(st);
  if (Status st = opts.Validate(); !st.ok()) return Fail(st);
  auto vl = core::MakeDefaultVadaLink(opts.EffectiveAugment());
  auto stats = vl.Augment(&g.value(), governor.get(), opts.metrics);
  if (!stats.ok()) return Fail(stats.status());
  if (Status st = EmitMetrics(opts); !st.ok()) return Fail(st);
  if (Status st = SaveOut(*g, flags); !st.ok()) return Fail(st);
  std::printf("added %zu links in %zu rounds (%zu pairs compared; embed "
              "%.2fs, candidates %.2fs) -> %s_{nodes,edges}.csv\n",
              stats->links_added, stats->rounds, stats->pairs_compared,
              stats->embed_seconds, stats->candidate_seconds,
              flags.Get("out", "").c_str());
  if (stats->degraded_rounds > 0) {
    std::printf("degraded %zu round(s) to blocking-only (embedding stage "
                "over budget)\n", stats->degraded_rounds);
  }
  if (stats->truncated) {
    std::printf("stopped early: %s (%zu deadline hit(s)); links from "
                "completed work were kept\n",
                stats->interrupt.ToString().c_str(), stats->deadline_hits);
  }
  return 0;
}

int CmdControl(const Flags& flags) {
  auto g = LoadIn(flags);
  if (!g.ok()) return Fail(g.status());
  auto cg = company::CompanyGraph::FromPropertyGraph(*g);
  if (!cg.ok()) return Fail(cg.status());
  double threshold = flags.GetDouble("threshold", 0.5);
  if (flags.Has("source")) {
    auto src = static_cast<graph::NodeId>(flags.GetInt("source", 0));
    if (Status st = FlagErrors(flags); !st.ok()) return Fail(st);
    for (graph::NodeId y : company::ControlledBy(*cg, src, threshold)) {
      std::printf("%u (%s)\n", y, NameOf(*g, y).c_str());
    }
    return 0;
  }
  if (Status st = FlagErrors(flags); !st.ok()) return Fail(st);
  auto edges = company::AllControlEdges(*cg, threshold);
  for (const auto& e : edges) {
    std::printf("%u -> %u   (%s -> %s)\n", e.controller, e.controlled,
                NameOf(*g, e.controller).c_str(),
                NameOf(*g, e.controlled).c_str());
  }
  std::printf("%zu control edges\n", edges.size());
  return 0;
}

int CmdCloseLinks(const Flags& flags) {
  auto g = LoadIn(flags);
  if (!g.ok()) return Fail(g.status());
  auto cg = company::CompanyGraph::FromPropertyGraph(*g);
  if (!cg.ok()) return Fail(cg.status());
  company::CloseLinkConfig cfg;
  cfg.threshold = flags.GetDouble("threshold", 0.2);
  if (Status st = FlagErrors(flags); !st.ok()) return Fail(st);
  auto links = company::AllCloseLinks(*cg, cfg);
  for (const auto& e : links) {
    const char* why =
        e.reason == company::CloseLinkReason::kDirectOwnership
            ? "ownership"
            : "common third party";
    std::printf("%u -- %u   (%s; %s)\n", e.x, e.y,
                NameOf(*g, e.x).c_str(), why);
  }
  std::printf("%zu close links at threshold %.2f\n", links.size(),
              cfg.threshold);
  return 0;
}

int CmdUbo(const Flags& flags) {
  auto g = LoadIn(flags);
  if (!g.ok()) return Fail(g.status());
  auto cg = company::CompanyGraph::FromPropertyGraph(*g);
  if (!cg.ok()) return Fail(cg.status());
  if (!flags.Has("target")) {
    return Fail(Status::InvalidArgument("missing --target <node id>"));
  }
  auto target = static_cast<graph::NodeId>(flags.GetInt("target", 0));
  double threshold = flags.GetDouble("threshold", 0.25);
  if (Status st = FlagErrors(flags); !st.ok()) return Fail(st);
  auto owners = company::UltimateOwnersOf(*cg, target, threshold);
  for (const auto& ubo : owners) {
    std::printf("%u (%s): %.1f%% integrated\n", ubo.person,
                NameOf(*g, ubo.person).c_str(),
                100.0 * ubo.integrated_ownership);
  }
  if (owners.empty()) std::printf("(dispersed ownership)\n");
  return 0;
}

int CmdScreen(const Flags& flags) {
  auto g = LoadIn(flags);
  if (!g.ok()) return Fail(g.status());
  auto cg = company::CompanyGraph::FromPropertyGraph(*g);
  if (!cg.ok()) return Fail(cg.status());
  if (!flags.Has("borrower") || !flags.Has("guarantor")) {
    return Fail(Status::InvalidArgument(
        "missing --borrower / --guarantor node ids"));
  }
  company::EligibilityConfig cfg;
  cfg.close_link.threshold = flags.GetDouble("threshold", 0.2);
  cfg.families = core::FamiliesFromGraph(*g);  // uses detected family edges
  auto borrower = static_cast<graph::NodeId>(flags.GetInt("borrower", 0));
  auto guarantor = static_cast<graph::NodeId>(flags.GetInt("guarantor", 0));
  if (Status st = FlagErrors(flags); !st.ok()) return Fail(st);
  auto decision = company::ScreenGuarantor(*cg, borrower, guarantor, cfg);
  const char* verdict =
      decision.verdict == company::EligibilityVerdict::kEligible
          ? "ELIGIBLE"
          : decision.verdict ==
                    company::EligibilityVerdict::kIneligibleCloseLink
                ? "INELIGIBLE"
                : "FLAGGED";
  std::printf("%s: %s\n", verdict, decision.explanation.c_str());
  return decision.verdict == company::EligibilityVerdict::kEligible ? 0 : 2;
}

int CmdReason(const Flags& flags) {
  auto g = LoadIn(flags);
  if (!g.ok()) return Fail(g.status());
  std::string program_path = flags.Get("program", "");
  if (program_path.empty()) {
    return Fail(Status::InvalidArgument("missing --program <file.vada>"));
  }
  std::ifstream in(program_path);
  if (!in) {
    return Fail(Status::IoError("cannot open " + program_path));
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  auto governor = GovernorFromFlags(flags);
  core::PipelineOptions opts;
  opts.parallel = ParallelFromFlags(flags);
  auto registry = MetricsFromFlags(flags, &opts);
  if (Status st = FlagErrors(flags); !st.ok()) return Fail(st);
  if (Status st = opts.Validate(); !st.ok()) return Fail(st);

  // --query with a parenthesised atom (e.g. --query 'control(3, X)')
  // switches to goal-directed evaluation: the program is magic-set
  // rewritten around the goal and the chase derives only goal-relevant
  // facts (DESIGN.md section 12). A bare predicate name keeps the
  // full-saturation run + scan below.
  std::string query = flags.Get("query", "");
  if (query.find('(') != std::string::npos) {
    datalog::Catalog cat;
    datalog::Database db(&cat);
    if (Status st = core::LoadGraphFacts(g.value(), &db); !st.ok()) {
      return Fail(st);
    }
    auto program = datalog::ParseProgram(ss.str(), &cat);
    if (!program.ok()) return Fail(program.status());
    auto goal = datalog::ParseQueryGoal(query, &cat);
    if (!goal.ok()) return Fail(goal.status());
    auto pool = MakeThreadPool(opts.parallel);
    datalog::EngineOptions eopts;
    eopts.run_ctx = governor.get();
    eopts.metrics = opts.metrics;
    eopts.pool = pool.get();
    datalog::Engine engine(&db, eopts);
    auto report = engine.Query(*program, *goal);
    if (!report.ok()) return Fail(report.status());
    if (Status st = EmitMetrics(opts); !st.ok()) return Fail(st);
    if (report->rewritten) {
      std::printf("magic-set rewrite: %zu adornments, %zu magic rules, "
                  "%zu rules pruned\n",
                  report->adornments, report->magic_rules,
                  report->rules_pruned);
    } else {
      std::printf("fallback to pruned saturation (%s), %zu rules pruned\n",
                  report->fallback_reason.empty()
                      ? "goal binds no arguments"
                      : report->fallback_reason.c_str(),
                  report->rules_pruned);
    }
    std::printf("derived %zu facts, %zu answers\n", report->facts_derived,
                report->answers.size());
    const std::string& pred = cat.predicates.Name(goal->atom.predicate);
    for (const auto& t : report->answers) {
      std::string line = pred + "(";
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) line += ", ";
        line += t[i].ToString(cat.symbols);
      }
      std::printf("%s)\n", line.c_str());
    }
    return 0;
  }

  core::KnowledgeGraph kg;
  kg.set_parallel(opts.parallel);
  *kg.mutable_graph() = std::move(g).value();
  if (Status st = kg.AddRules(ss.str()); !st.ok()) return Fail(st);
  // Unwarded / unstratifiable programs are rejected by the engine's
  // static-analysis pre-flight inside Reason(); 'vadalink lint' shows the
  // full diagnostics without running anything.
  auto stats = kg.Reason(governor.get(), opts.metrics);
  if (!stats.ok()) return Fail(stats.status());
  if (Status st = EmitMetrics(opts); !st.ok()) return Fail(st);
  std::printf("derived %zu facts (%zu -> %zu), materialised %zu links\n",
              stats->engine.facts_derived, stats->facts_before,
              stats->facts_after, stats->links_materialised);
  if (flags.Has("query")) {
    const std::string& pred = query;
    for (const auto& t : kg.Query(pred)) {
      std::string line = pred + "(";
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) line += ", ";
        line += t[i].ToString(kg.catalog().symbols);
      }
      std::printf("%s)\n", line.c_str());
    }
  }
  if (flags.Has("out")) {
    if (Status st = SaveOut(kg.graph(), flags); !st.ok()) return Fail(st);
  }
  return 0;
}

/// Static analysis of a Vadalog program without executing it. Human
/// diagnostics go to stdout; '--json -' / '--json FILE' emits the stable
/// JSON document (tools/lint_schema.json) instead. Exit 0 = no errors
/// (warnings allowed), 1 = errors or I/O failure.
int CmdLint(const Flags& flags) {
  std::string program_path = flags.Get("program", "");
  if (program_path.empty()) {
    return Fail(Status::InvalidArgument("missing --program <file.vada>"));
  }
  std::ifstream in(program_path);
  if (!in) {
    return Fail(Status::IoError("cannot open " + program_path));
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  datalog::Catalog catalog;
  datalog::analysis::AnalysisReport report;
  auto program = datalog::ParseProgram(ss.str(), &catalog);
  if (program.ok()) {
    datalog::analysis::AnalyzerOptions opts;
    opts.cost = flags.Has("cost");
    opts.cost_options.rule_output_budget =
        flags.GetDouble("cost-budget", opts.cost_options.rule_output_budget);
    report = datalog::analysis::AnalyzeProgram(*program, catalog, opts);
  } else {
    // Surface the parse error as a diagnostic so '--json' consumers see
    // one document shape for every outcome.
    datalog::analysis::Diagnostic d;
    d.severity = datalog::analysis::Severity::kError;
    d.code = "VL000";
    d.message = program.status().message();
    unsigned line = 0, col = 0;
    if (std::sscanf(d.message.c_str(), "line %u, col %u", &line, &col) == 2) {
      d.span.line = line;
      d.span.col = col;
    }
    report.diagnostics.push_back(std::move(d));
  }

  if (flags.Has("json")) {
    std::string doc = report.ToJson(program_path);
    std::string target = flags.Get("json", "-");
    if (target == "-") {
      std::fputs(doc.c_str(), stdout);
    } else {
      std::ofstream out(target, std::ios::binary);
      if (!out || !(out << doc) || !out.flush()) {
        return Fail(Status::IoError("cannot write " + target));
      }
    }
  } else {
    std::string rendered = report.Render();
    std::fputs(rendered.c_str(), stdout);
    std::printf("%zu error(s), %zu warning(s)\n", report.error_count(),
                report.warning_count());
  }
  return report.has_errors() ? 1 : 0;
}

int CmdDot(const Flags& flags) {
  auto g = LoadIn(flags);
  if (!g.ok()) return Fail(g.status());
  std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::printf("%s", graph::ToDot(*g).c_str());
    return 0;
  }
  if (Status st = graph::WriteDotFile(*g, out); !st.ok()) return Fail(st);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int CmdEvolve(const Flags& flags) {
  gen::EvolutionConfig cfg;
  cfg.initial.persons = static_cast<size_t>(flags.GetInt("persons", 1000));
  cfg.initial.companies = static_cast<size_t>(flags.GetInt(
      "companies", static_cast<int64_t>(cfg.initial.persons * 3 / 4)));
  cfg.first_year = static_cast<int>(flags.GetInt("from", 2005));
  cfg.last_year = static_cast<int>(flags.GetInt("to", 2018));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 2005));
  if (Status st = FlagErrors(flags); !st.ok()) return Fail(st);
  std::string base = flags.Get("out", "");
  if (base.empty()) {
    return Fail(Status::InvalidArgument("missing --out <basename>"));
  }
  auto panel = gen::SimulateEvolution(cfg);
  for (const auto& snap : panel) {
    std::string year_base = base + "_" + std::to_string(snap.year);
    if (Status st = graph::SaveGraphCsv(snap.graph,
                                        year_base + "_nodes.csv",
                                        year_base + "_edges.csv");
        !st.ok()) {
      return Fail(st);
    }
  }
  std::printf("wrote %zu yearly snapshots (%d-%d) -> %s_YYYY_*.csv\n",
              panel.size(), cfg.first_year, cfg.last_year, base.c_str());
  return 0;
}

/// `vadalink serve` — resident reasoning server (DESIGN.md section 10).
/// Loads BASE, optionally runs a Vadalog program, then serves the
/// newline-delimited-JSON protocol until a client sends {"op":"shutdown"}.
int CmdServe(const Flags& flags) {
  auto g = LoadIn(flags);
  if (!g.ok()) return Fail(g.status());

  std::string rules;
  std::string program_path = flags.Get("program", "");
  if (!program_path.empty()) {
    std::ifstream in(program_path);
    if (!in) return Fail(Status::IoError("cannot open " + program_path));
    std::ostringstream ss;
    ss << in.rdbuf();
    rules = ss.str();
  }

  serve::ServiceOptions service_opts;
  service_opts.cache_entries =
      static_cast<size_t>(flags.GetInt("cache-entries", 1024));
  service_opts.query_mode = flags.GetInt("query-mode", 1) != 0;
  service_opts.max_query_cost = flags.GetDouble("max-query-cost", 0.0);
  serve::ServerOptions server_opts;
  server_opts.host = flags.Get("host", "127.0.0.1");
  server_opts.port = static_cast<int>(flags.GetInt("port", 7411));
  server_opts.max_inflight =
      static_cast<int>(flags.GetInt("max-inflight", 4));
  server_opts.queue_depth =
      static_cast<size_t>(flags.GetInt("queue-depth", 64));
  server_opts.request_deadline_ms = flags.GetInt("request-deadline-ms", 10000);
  server_opts.idle_timeout_ms = flags.GetInt("idle-timeout-ms", 300000);
  if (Status st = FlagErrors(flags); !st.ok()) return Fail(st);

  MetricsRegistry metrics;
  serve::Server server(service_opts, server_opts, &metrics);
  if (Status st = server.Init(std::move(g).value(), rules); !st.ok()) {
    return Fail(st);
  }
  if (Status st = server.Start(); !st.ok()) return Fail(st);
  std::printf("serving on %s:%d (graph version %llu, %d workers, queue %zu, "
              "deadline %lldms)\n",
              server_opts.host.c_str(), server.port(),
              static_cast<unsigned long long>(server.service().version()),
              server_opts.max_inflight, server_opts.queue_depth,
              static_cast<long long>(server_opts.request_deadline_ms));
  std::fflush(stdout);
  server.WaitUntilShutdownRequested();
  server.Stop();
  std::string metrics_path = flags.Get("metrics-json", "");
  if (!metrics_path.empty()) {
    if (Status st = metrics.WriteJsonFile(metrics_path, {}); !st.ok()) {
      return Fail(st);
    }
  }
  std::printf("shutdown complete\n");
  return 0;
}

void Usage() {
  std::fprintf(stderr, R"(usage: vadalink <command> [--flag value ...]

commands:
  generate    --out BASE [--persons N] [--companies N] [--seed S]
              [--density D] [--typo-rate R]
  stats       --in BASE
  augment     --in BASE --out BASE2 [--rounds N] [--no-embedding 1]
              [--deadline-ms MS] [--max-facts N] [--threads N] [--grain N]
              [--metrics-json FILE] [--trace 1] [--metrics-wall 1]
  control     --in BASE [--source ID] [--threshold T]
  closelinks  --in BASE [--threshold T]
  ubo         --in BASE --target ID [--threshold T]
  screen      --in BASE --borrower ID --guarantor ID [--threshold T]
  reason      --in BASE --program FILE.vada [--query PRED|'goal(a, X)']
              [--out BASE2] [--deadline-ms MS] [--max-facts N] [--threads N]
              [--grain N] [--metrics-json FILE] [--trace 1] [--metrics-wall 1]
  lint        --program FILE.vada [--json -|FILE] [--cost 1]
              [--cost-budget ROWS]
  dot         --in BASE [--out FILE.dot]
  evolve      --out BASE [--persons N] [--from Y] [--to Y] [--seed S]
  serve       --in BASE [--program FILE.vada] [--host H] [--port P]
              [--max-inflight N] [--queue-depth N] [--request-deadline-ms MS]
              [--cache-entries N] [--idle-timeout-ms MS] [--metrics-json FILE]
              [--query-mode 0|1] [--max-query-cost C]

BASE refers to the CSV pair BASE_nodes.csv / BASE_edges.csv.

--deadline-ms bounds the wall-clock time of the run; --max-facts bounds
its work budget (derived facts for 'reason', compared pairs for
'augment'). 'augment' degrades gracefully (partial results are kept and
reported); 'reason' fails with DeadlineExceeded / ResourceExhausted.

--threads runs the augmentation stages / the reasoner's delta joins on a
thread pool (0 = hardware concurrency, 1 = sequential default); --grain
sets the items per parallel chunk (0 = auto). threads=1 reproduces the
sequential outputs byte for byte.

'lint' runs the static analyzer (safety, wardedness, stratification,
hygiene; see DESIGN.md section 9) without executing the program. Human
diagnostics go to stdout; --json emits the stable JSON document
(tools/lint_schema.json) to stdout ('-') or a file. Exit 0 = clean or
warnings only, 1 = errors. --cost 1 adds the static cost & termination
pass (DESIGN.md section 14): VL04x cost lints, VL05x termination notes
and a "cost" block (cardinality intervals, per-rule estimates) in the
JSON document; --cost-budget sets the VL042 per-rule output budget
(default 1e8 rows).

--metrics-json writes the run's metrics registry (counters, gauges,
histograms, span tree) as one stable-schema JSON document; --trace 1
prints the human-readable span tree to stderr. The default document
omits wall-clock timings, so it is byte-stable run-to-run at a fixed
seed with threads=1; --metrics-wall 1 opts timings in.

'serve' answers newline-delimited JSON requests over TCP (one object per
line; see DESIGN.md section 10 for the protocol): health, version,
metrics, control, ubo, closelinks, ingest, reason, query, shutdown.
--port 0 binds an ephemeral port (printed on startup). --max-inflight
bounds concurrent evaluations, --queue-depth the admission queue (a full
queue sheds with ResourceExhausted + retry_after_ms),
--request-deadline-ms the default/maximum per-request deadline
(deadline-busting hot queries degrade to the cached answer flagged
"stale": true), --cache-entries the result cache (0 disables).
--query-mode 1 (default) evaluates cold keyed queries goal-directedly
(magic-set engine queries for 'control' when the program defines it,
goal-directed close links); 0 keeps the whole-graph evaluators.
--max-query-cost C rejects engine-routed cold queries whose static cost
estimate exceeds C with ResourceExhausted naming the estimate, before
any evaluation starts (0 = no cost gate; cached answers still serve).

'reason' with --query 'goal(args)' (a parenthesised atom, constants
binding arguments) runs the goal-directed query path instead of a full
saturation and prints the magic-set rewrite summary plus the sorted goal
answers; --query PRED (a bare name) still saturates and dumps the
predicate.
)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  std::string cmd = argv[1];
  Flags flags(argc, argv, 2);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n", flags.error().c_str());
    Usage();
    return 1;
  }
  // Every command rejects flags it does not read ('--thread 4' suggests
  // '--threads' instead of being silently ignored).
  auto accept = [&](std::initializer_list<const char*> known) {
    if (flags.RequireKnown(known)) return true;
    std::fprintf(stderr, "error: %s\n", flags.error().c_str());
    return false;
  };
  if (cmd == "generate") {
    return accept({"out", "persons", "companies", "seed", "density",
                   "typo-rate"})
               ? CmdGenerate(flags)
               : 1;
  }
  if (cmd == "stats") return accept({"in"}) ? CmdStats(flags) : 1;
  if (cmd == "augment") {
    return accept({"in", "out", "rounds", "no-embedding", "deadline-ms",
                   "max-facts", "threads", "grain", "metrics-json", "trace",
                   "metrics-wall"})
               ? CmdAugment(flags)
               : 1;
  }
  if (cmd == "control") {
    return accept({"in", "source", "threshold"}) ? CmdControl(flags) : 1;
  }
  if (cmd == "closelinks") {
    return accept({"in", "threshold"}) ? CmdCloseLinks(flags) : 1;
  }
  if (cmd == "ubo") {
    return accept({"in", "target", "threshold"}) ? CmdUbo(flags) : 1;
  }
  if (cmd == "screen") {
    return accept({"in", "borrower", "guarantor", "threshold"})
               ? CmdScreen(flags)
               : 1;
  }
  if (cmd == "reason") {
    return accept({"in", "program", "query", "out", "deadline-ms",
                   "max-facts", "threads", "grain", "metrics-json", "trace",
                   "metrics-wall"})
               ? CmdReason(flags)
               : 1;
  }
  if (cmd == "lint") {
    return accept({"program", "json", "cost", "cost-budget"})
               ? CmdLint(flags)
               : 1;
  }
  if (cmd == "serve") {
    return accept({"in", "program", "host", "port", "max-inflight",
                   "queue-depth", "request-deadline-ms", "cache-entries",
                   "idle-timeout-ms", "metrics-json", "query-mode",
                   "max-query-cost"})
               ? CmdServe(flags)
               : 1;
  }
  if (cmd == "dot") return accept({"in", "out"}) ? CmdDot(flags) : 1;
  if (cmd == "evolve") {
    return accept({"out", "persons", "companies", "from", "to", "seed"})
               ? CmdEvolve(flags)
               : 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  Usage();
  return 1;
}
