// Admission control for the serving layer: a bounded FIFO work queue in
// front of a fixed-size worker pool.
//
// The two knobs together are the server's concurrency governor:
//  * `max_inflight` workers bound how many requests evaluate at once
//    (each under its own RunContext child of the server context);
//  * `queue_depth` bounds how many admitted-but-not-started requests can
//    wait. TryPush on a full queue fails immediately — the caller sheds
//    the request with kResourceExhausted and a Retry-After hint instead
//    of letting latency grow without bound (load shedding beats queueing
//    collapse).
//
// Pop() blocks until work arrives or Close() is called; Close() drains
// nothing silently — pending tasks are handed back to the caller so every
// admitted request can still be answered (with Cancelled) during
// shutdown.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace vadalink::serve {

/// Bounded MPMC FIFO. T must be movable.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t depth) : depth_(depth == 0 ? 1 : depth) {}

  /// Enqueues unless the queue is full or closed. Never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= depth_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed; nullopt
  /// means closed-and-empty (workers exit).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue and returns everything still pending, in FIFO
  /// order, so the caller can fail each one explicitly.
  std::vector<T> Close() {
    std::vector<T> drained;
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      for (T& item : items_) drained.push_back(std::move(item));
      items_.clear();
    }
    cv_.notify_all();
    return drained;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t depth() const { return depth_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t depth_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace vadalink::serve
