#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace vadalink::serve {

Result<Client> Client::Connect(const std::string& host, int port,
                               int64_t read_timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::IoError("connect " + host + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Client c;
  c.fd_ = fd;
  c.read_timeout_ms_ = read_timeout_ms;
  return c;
}

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      read_timeout_ms_(other.read_timeout_ms_),
      next_id_(other.next_id_),
      buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    read_timeout_ms_ = other.read_timeout_ms_;
    next_id_ = other.next_id_;
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::SendLine(const std::string& line) {
  if (fd_ < 0) return Status::IoError("client not connected");
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> Client::ReadLine() {
  if (fd_ < 0) return Status::IoError("client not connected");
  char chunk[4096];
  while (true) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, static_cast<int>(read_timeout_ms_));
    if (rc == 0) {
      return Status::DeadlineExceeded("no response within " +
                                      std::to_string(read_timeout_ms_) +
                                      "ms");
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::IoError("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<Json> Client::Call(const std::string& op, Json params,
                          std::optional<int64_t> deadline_ms) {
  int64_t id = next_id_++;
  Json req = Json::MakeObject();
  req.Set("id", Json::Int(id));
  req.Set("op", Json::Str(op));
  req.Set("params", std::move(params));
  if (deadline_ms.has_value()) {
    req.Set("deadline_ms", Json::Int(*deadline_ms));
  }
  VL_RETURN_NOT_OK(SendLine(req.Dump()));
  VL_ASSIGN_OR_RETURN(std::string line, ReadLine());
  VL_ASSIGN_OR_RETURN(Json response, Json::Parse(line));
  const Json* rid = response.Find("id");
  if (rid == nullptr || !rid->is_int() || rid->AsInt() != id) {
    return Status::Internal("response id mismatch for line: " + line);
  }
  return response;
}

}  // namespace vadalink::serve
