#include "serve/service.h"

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/fault_injection.h"
#include "company/close_link.h"
#include "company/control.h"
#include "company/groups.h"
#include "core/mapping.h"
#include "datalog/parser.h"

namespace vadalink::serve {

namespace {

/// Required integer param.
Result<int64_t> ReqInt(const Json& params, const char* name) {
  const Json* v = params.Find(name);
  if (v == nullptr || !v->is_int()) {
    return Status::InvalidArgument(std::string("missing or non-integer '") +
                                   name + "'");
  }
  return v->AsInt();
}

/// Optional threshold param with validation.
Result<double> OptThreshold(const Json& params, double fallback) {
  const Json* v = params.Find("threshold");
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument("'threshold' must be a number");
  }
  double t = v->AsDouble();
  if (!(t > 0.0 && t <= 1.0)) {
    return Status::InvalidArgument("'threshold' must be in (0, 1]");
  }
  return t;
}

std::string FormatThreshold(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", t);
  return buf;
}

Status ValidateNode(const SnapshotPtr& snap, int64_t id, const char* what) {
  if (id < 0 || static_cast<size_t>(id) >= snap->graph.node_count()) {
    return Status::NotFound(std::string(what) + " node " + std::to_string(id) +
                            " does not exist at graph version " +
                            std::to_string(snap->version));
  }
  return Status::OK();
}

/// True for governor trips that should degrade to a cached result rather
/// than surface: the fresh answer could not be computed in time, not
/// because the request was bad.
bool IsDegradable(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kCancelled;
}

}  // namespace

ReasoningService::ReasoningService(ServiceOptions options,
                                   MetricsRegistry* metrics)
    : options_(options), metrics_(metrics) {
  if (options_.cache_entries > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_entries);
  }
}

Status ReasoningService::Init(graph::PropertyGraph graph,
                              const std::string& rules_source) {
  std::lock_guard<std::mutex> lock(write_mu_);
  *kg_.mutable_graph() = std::move(graph);
  if (!rules_source.empty()) {
    VL_RETURN_NOT_OK(kg_.AddRules(rules_source));
    has_rules_ = true;
    rules_source_ = rules_source;
    // The engine-backed keyed path only engages when the program actually
    // defines control/2 (a throwaway parse; AddRules already validated
    // the syntax, so this cannot fail).
    datalog::Catalog probe;
    auto parsed = datalog::ParseProgram(rules_source_, &probe);
    if (parsed.ok()) {
      for (const datalog::Rule& r : parsed->rules) {
        for (const datalog::Atom& h : r.head) {
          if (probe.predicates.Name(h.predicate) == "control" &&
              h.args.size() == 2) {
            rules_define_control_ = true;
          }
        }
      }
    }
    auto stats = kg_.Reason(nullptr, metrics_);
    if (!stats.ok()) return stats.status();
  }
  return PublishLocked();
}

Status ReasoningService::PublishLocked() {
  auto snap = std::make_shared<GraphSnapshot>();
  snap->version = next_version_;
  snap->graph = kg_.graph();  // frozen deep copy
  auto cg = company::CompanyGraph::FromPropertyGraph(snap->graph);
  if (!cg.ok()) return cg.status();
  snap->company_graph = std::move(cg).value();
  if (!store_.Publish(std::move(snap))) {
    return Status::Internal("snapshot publish out of order");
  }
  ++next_version_;
  MetricAdd(metrics_, "serve.snapshots.published", 1);
  return Status::OK();
}

std::string ReasoningService::Handle(const Request& req,
                                     const RunContext* run_ctx) {
  MetricAdd(metrics_, "serve.requests.handled", 1);
  // A fault armed here poisons the request, never the server: the
  // injected status becomes this request's structured error and the
  // worker moves on.
  if (FaultInjection::AnyArmed()) {
    Status st = FaultInjection::Check("serve.evaluate");
    if (!st.ok()) {
      MetricAdd(metrics_, "serve.requests.errors", 1);
      return RenderError(req.id, st);
    }
  }

  const std::string& op = req.op;
  if (op == "control" || op == "ubo" || op == "closelinks") {
    return HandleKeyed(req, run_ctx);
  }
  if (op == "health") {
    Json result = Json::MakeObject();
    result.Set("status", Json::Str("serving"));
    result.Set("graph_version",
               Json::Int(static_cast<int64_t>(store_.version())));
    return RenderResult(req.id, store_.version(), std::move(result));
  }
  if (op == "version") {
    Json result = Json::MakeObject();
    result.Set("graph_version",
               Json::Int(static_cast<int64_t>(store_.version())));
    return RenderResult(req.id, store_.version(), std::move(result));
  }
  if (op == "metrics") {
    Json result = Json::MakeObject();
    if (metrics_ != nullptr) {
      auto doc = Json::Parse(metrics_->ToJson());
      result.Set("metrics", doc.ok() ? std::move(doc).value() : Json::Null());
    } else {
      result.Set("metrics", Json::Null());
    }
    return RenderResult(req.id, store_.version(), std::move(result));
  }

  Result<Json> result = [&]() -> Result<Json> {
    if (op == "ingest") return OpIngest(req, run_ctx);
    if (op == "reason") return OpReason(req, run_ctx);
    if (op == "query") return OpQuery(req);
    if (op == "sleep" && options_.enable_test_ops) {
      return OpSleep(req, run_ctx);
    }
    return Status::Unsupported(
        "unknown op '" + op +
        "' (expected health, version, metrics, control, ubo, closelinks, "
        "ingest, reason, query, or shutdown)");
  }();
  if (!result.ok()) {
    MetricAdd(metrics_, "serve.requests.errors", 1);
    return RenderError(req.id, result.status());
  }
  return RenderResult(req.id, store_.version(), std::move(result).value());
}

std::string ReasoningService::KeyedCacheKey(const std::string& op,
                                            int64_t node, double threshold,
                                            bool engine_route) {
  return op + ":" + std::to_string(node) + ":" + FormatThreshold(threshold) +
         (engine_route ? ":q" : ":c");
}

std::string ReasoningService::HandleKeyed(const Request& req,
                                          const RunContext* run_ctx) {
  SnapshotPtr snap = store_.current();
  if (snap == nullptr) {
    return RenderError(req.id, Status::Internal("service not initialised"));
  }

  // Resolve params up front: a malformed request never touches the cache.
  int64_t key_node = 0;
  double threshold = 0.0;
  {
    const char* node_param = req.op == "control" ? "source"
                             : req.op == "ubo"   ? "target"
                                                 : "company";
    auto node = ReqInt(req.params, node_param);
    if (!node.ok()) return RenderError(req.id, node.status());
    key_node = node.value();
    double fallback = req.op == "control" ? options_.control_threshold
                      : req.op == "ubo"   ? options_.ubo_threshold
                                          : options_.closelink_threshold;
    auto t = OptThreshold(req.params, fallback);
    if (!t.ok()) return RenderError(req.id, t.status());
    threshold = t.value();
  }
  // The engine route answers with the rules program's own threshold, so an
  // explicit per-request threshold pins the request to the compiled path.
  bool engine_route = req.op == "control" && options_.query_mode &&
                      has_rules_ && rules_define_control_ &&
                      req.params.Find("threshold") == nullptr;
  std::string key = KeyedCacheKey(req.op, key_node, threshold, engine_route);

  CacheEntry cached;
  bool hit = cache_ != nullptr && cache_->Get(key, &cached);
  if (hit && cached.version == snap->version) {
    MetricAdd(metrics_, "serve.cache.hits", 1);
    return RenderResult(req.id, cached.version, cached.result,
                        /*cached=*/true);
  }
  MetricAdd(metrics_, "serve.cache.misses", 1);

  // Degradation: when the governor already tripped (deadline burned in
  // the admission queue, budget gone, shutdown cancel), a stale cached
  // answer beats a failure — flagged so the client knows.
  auto degrade = [&](const Status& trip) -> std::string {
    if (hit) {
      MetricAdd(metrics_, "serve.cache.stale_served", 1);
      // graph_version always names the *current* snapshot; the stale
      // entry's own version travels in computed_at_version so the client
      // can see how far behind the answer is.
      return RenderResult(req.id, snap->version, cached.result,
                          /*cached=*/true, /*stale=*/true,
                          static_cast<int64_t>(cached.version));
    }
    MetricAdd(metrics_, "serve.requests.errors", 1);
    return RenderError(req.id, trip);
  };
  if (Status st = CheckRunNow(run_ctx); !st.ok()) return degrade(st);

  Result<Json> result =
      req.op == "control"
          ? (engine_route ? OpControlEngine(req, snap, run_ctx)
                          : OpControl(req, snap))
      : req.op == "ubo" ? OpUbo(req, snap)
                        : OpCloseLinks(req, snap);
  if (engine_route && !result.ok() &&
      !IsDegradable(result.status().code())) {
    // A broken engine route (the rewrite already reports its own fallback
    // inside Query; this catches engine-level failures) degrades to the
    // compiled evaluator rather than failing the request.
    MetricAdd(metrics_, "serve.query.fallbacks", 1);
    result = OpControl(req, snap);
  }
  if (!result.ok()) {
    if (IsDegradable(result.status().code())) return degrade(result.status());
    MetricAdd(metrics_, "serve.requests.errors", 1);
    return RenderError(req.id, result.status());
  }
  if (cache_ != nullptr) {
    cache_->Put(key, result.value(), snap->version);
  }
  return RenderResult(req.id, snap->version, std::move(result).value());
}

Result<Json> ReasoningService::OpControl(const Request& req,
                                         const SnapshotPtr& snap) {
  VL_ASSIGN_OR_RETURN(int64_t source, ReqInt(req.params, "source"));
  VL_ASSIGN_OR_RETURN(double threshold,
                      OptThreshold(req.params, options_.control_threshold));
  VL_RETURN_NOT_OK(ValidateNode(snap, source, "source"));
  auto controlled = company::ControlledBy(
      snap->company_graph, static_cast<graph::NodeId>(source), threshold);
  Json ids = Json::MakeArray();
  for (graph::NodeId n : controlled) ids.Append(Json::Int(n));
  Json result = Json::MakeObject();
  result.Set("controlled", std::move(ids));
  result.Set("count", Json::Int(static_cast<int64_t>(controlled.size())));
  return result;
}

Result<Json> ReasoningService::OpControlEngine(const Request& req,
                                               const SnapshotPtr& snap,
                                               const RunContext* run_ctx) {
  VL_ASSIGN_OR_RETURN(int64_t source, ReqInt(req.params, "source"));
  VL_RETURN_NOT_OK(ValidateNode(snap, source, "source"));
  // Fresh per-request catalog/database: the resident kg_ interns symbols
  // on use, so sharing it across workers would race; the snapshot's graph
  // is immutable and safe to read.
  datalog::Catalog cat;
  datalog::Database db(&cat);
  VL_RETURN_NOT_OK(core::LoadGraphFacts(snap->graph, &db));
  VL_ASSIGN_OR_RETURN(datalog::Program program,
                      datalog::ParseProgram(rules_source_, &cat));
  VL_ASSIGN_OR_RETURN(
      datalog::QueryGoal goal,
      datalog::ParseQueryGoal("control(" + std::to_string(source) + ", X)",
                              &cat));
  datalog::EngineOptions eopts;
  eopts.run_ctx = run_ctx;
  eopts.metrics = metrics_;
  eopts.max_query_cost = options_.max_query_cost;
  datalog::Engine engine(&db, eopts);
  Result<datalog::QueryReport> qr = engine.Query(program, goal);
  if (!qr.ok()) {
    // Cost admission rejections carry the static estimate in the message;
    // count them separately from reactive load shedding. The status stays
    // kResourceExhausted, which is degradable, so a stale cached answer
    // (if any) still serves — but the compiled-path fallback never fires
    // for it (that would burn exactly the work the gate refused).
    if (qr.status().code() == StatusCode::kResourceExhausted &&
        qr.status().message().find("cost admission") != std::string::npos) {
      MetricAdd(metrics_, "serve.requests.cost_shed", 1);
    }
    return qr.status();
  }
  datalog::QueryReport report = std::move(qr).value();
  MetricAdd(metrics_, "serve.query.engine", 1);
  if (!report.rewritten) MetricAdd(metrics_, "serve.query.fallbacks", 1);
  Json ids = Json::MakeArray();
  size_t count = 0;
  for (const auto& tuple : report.answers) {
    if (tuple.size() != 2 || !tuple[1].is_int()) continue;
    ids.Append(Json::Int(tuple[1].AsInt()));
    ++count;
  }
  Json result = Json::MakeObject();
  result.Set("controlled", std::move(ids));
  result.Set("count", Json::Int(static_cast<int64_t>(count)));
  return result;
}

Result<Json> ReasoningService::OpUbo(const Request& req,
                                     const SnapshotPtr& snap) {
  VL_ASSIGN_OR_RETURN(int64_t target, ReqInt(req.params, "target"));
  VL_ASSIGN_OR_RETURN(double threshold,
                      OptThreshold(req.params, options_.ubo_threshold));
  VL_RETURN_NOT_OK(ValidateNode(snap, target, "target"));
  auto owners = company::UltimateOwnersOf(
      snap->company_graph, static_cast<graph::NodeId>(target), threshold);
  Json arr = Json::MakeArray();
  for (const auto& ubo : owners) {
    Json o = Json::MakeObject();
    o.Set("person", Json::Int(ubo.person));
    o.Set("integrated_ownership", Json::Double(ubo.integrated_ownership));
    arr.Append(std::move(o));
  }
  Json result = Json::MakeObject();
  result.Set("owners", std::move(arr));
  result.Set("count", Json::Int(static_cast<int64_t>(owners.size())));
  return result;
}

Result<Json> ReasoningService::OpCloseLinks(const Request& req,
                                            const SnapshotPtr& snap) {
  VL_ASSIGN_OR_RETURN(int64_t company, ReqInt(req.params, "company"));
  VL_ASSIGN_OR_RETURN(double threshold,
                      OptThreshold(req.params, options_.closelink_threshold));
  VL_RETURN_NOT_OK(ValidateNode(snap, company, "company"));
  company::CloseLinkConfig cfg;
  cfg.threshold = threshold;
  cfg.metrics = metrics_;
  auto c = static_cast<graph::NodeId>(company);
  // Goal-directed when query_mode is on: CloseLinksOf explores only the
  // ownership cone around c and returns exactly the AllCloseLinks edges
  // involving c, so the response is byte-identical either way.
  auto links = options_.query_mode
                   ? company::CloseLinksOf(snap->company_graph, c, cfg)
                   : company::AllCloseLinks(snap->company_graph, cfg);
  Json arr = Json::MakeArray();
  size_t count = 0;
  for (const auto& e : links) {
    if (e.x != c && e.y != c) continue;
    Json l = Json::MakeObject();
    l.Set("x", Json::Int(e.x));
    l.Set("y", Json::Int(e.y));
    l.Set("reason",
          Json::Str(e.reason == company::CloseLinkReason::kDirectOwnership
                        ? "ownership"
                        : "common_third_party"));
    if (e.via != graph::kInvalidNode) l.Set("via", Json::Int(e.via));
    arr.Append(std::move(l));
    ++count;
  }
  Json result = Json::MakeObject();
  result.Set("links", std::move(arr));
  result.Set("count", Json::Int(static_cast<int64_t>(count)));
  return result;
}

Result<Json> ReasoningService::OpIngest(const Request& req,
                                        const RunContext* run_ctx) {
  VL_FAULT_POINT("serve.ingest");
  // A deadline burned before we start means zero mutation, not a half
  // ingest.
  VL_RETURN_NOT_OK(CheckRunNow(run_ctx));

  struct NewNode {
    std::string label;
    std::string name;
  };
  struct NewEdge {
    int64_t src = 0;
    int64_t dst = 0;
    std::string label;
    double w = 0.0;
    bool has_w = false;
    std::string right;
  };
  std::vector<NewNode> nodes;
  std::vector<NewEdge> edges;

  if (const Json* jn = req.params.Find("nodes")) {
    if (!jn->is_array()) {
      return Status::InvalidArgument("'nodes' must be an array");
    }
    for (const Json& n : jn->AsArray()) {
      if (!n.is_object()) {
        return Status::InvalidArgument("each node must be an object");
      }
      const Json* label = n.Find("label");
      if (label == nullptr || !label->is_string()) {
        return Status::InvalidArgument("node missing string 'label'");
      }
      NewNode node;
      node.label = label->AsString();
      if (const Json* name = n.Find("name")) {
        if (!name->is_string()) {
          return Status::InvalidArgument("node 'name' must be a string");
        }
        node.name = name->AsString();
      }
      nodes.push_back(std::move(node));
    }
  }
  if (const Json* je = req.params.Find("edges")) {
    if (!je->is_array()) {
      return Status::InvalidArgument("'edges' must be an array");
    }
    for (const Json& e : je->AsArray()) {
      if (!e.is_object()) {
        return Status::InvalidArgument("each edge must be an object");
      }
      NewEdge edge;
      const Json* src = e.Find("src");
      const Json* dst = e.Find("dst");
      if (src == nullptr || !src->is_int() || dst == nullptr ||
          !dst->is_int()) {
        return Status::InvalidArgument("edge missing integer 'src'/'dst'");
      }
      edge.src = src->AsInt();
      edge.dst = dst->AsInt();
      edge.label = "Shareholding";
      if (const Json* label = e.Find("label")) {
        if (!label->is_string()) {
          return Status::InvalidArgument("edge 'label' must be a string");
        }
        edge.label = label->AsString();
      }
      if (const Json* w = e.Find("w")) {
        if (!w->is_number()) {
          return Status::InvalidArgument("edge 'w' must be a number");
        }
        edge.w = w->AsDouble();
        edge.has_w = true;
      }
      if (const Json* right = e.Find("right")) {
        if (!right->is_string()) {
          return Status::InvalidArgument("edge 'right' must be a string");
        }
        edge.right = right->AsString();
        if (edge.right != "ownership" && edge.right != "bare_ownership" &&
            edge.right != "usufruct") {
          return Status::InvalidArgument(
              "edge 'right' must be ownership, bare_ownership or usufruct");
        }
      }
      if (edge.label == "Shareholding") {
        if (!edge.has_w || !(edge.w > 0.0 && edge.w <= 1.0)) {
          return Status::InvalidArgument(
              "Shareholding edge requires weight 'w' in (0, 1]");
        }
      }
      edges.push_back(std::move(edge));
    }
  }
  if (nodes.empty() && edges.empty()) {
    return Status::InvalidArgument("ingest delta is empty");
  }

  std::lock_guard<std::mutex> lock(write_mu_);
  // Validate edge endpoints against the post-node-append id space before
  // any mutation: a rejected delta leaves the resident graph untouched.
  size_t base = kg_.graph().node_count();
  size_t limit = base + nodes.size();
  for (const NewEdge& e : edges) {
    if (e.src < 0 || static_cast<size_t>(e.src) >= limit || e.dst < 0 ||
        static_cast<size_t>(e.dst) >= limit) {
      return Status::InvalidArgument(
          "edge endpoint out of range (valid ids are 0.." +
          std::to_string(limit - 1) + " including nodes of this delta)");
    }
  }

  graph::PropertyGraph* g = kg_.mutable_graph();
  Json node_ids = Json::MakeArray();
  for (const NewNode& n : nodes) {
    graph::NodeId id = g->AddNode(n.label);
    if (!n.name.empty()) {
      g->SetNodeProperty(id, "name", graph::PropertyValue(n.name));
    }
    node_ids.Append(Json::Int(id));
  }
  for (const NewEdge& e : edges) {
    auto eid = g->AddEdge(static_cast<graph::NodeId>(e.src),
                          static_cast<graph::NodeId>(e.dst), e.label);
    if (!eid.ok()) return eid.status();  // unreachable after validation
    if (e.has_w) {
      g->SetEdgeProperty(*eid, "w", graph::PropertyValue(e.w));
    }
    if (!e.right.empty()) {
      g->SetEdgeProperty(*eid, "right", graph::PropertyValue(e.right));
    }
  }

  size_t links_materialised = 0;
  bool recovered = false;
  if (has_rules_) {
    auto stats = kg_.ReasonIncremental(run_ctx, metrics_);
    if (stats.ok()) {
      links_materialised = stats->links_materialised;
    } else {
      // Containment: the incremental run died (deadline, injected fault,
      // ...). The delta is already in the graph, so re-establish the
      // fixpoint from scratch — unbounded, because publishing a
      // non-fixpoint version would poison every later reader.
      MetricAdd(metrics_, "serve.ingest.recoveries", 1);
      auto full = kg_.Reason(nullptr, metrics_);
      if (!full.ok()) return stats.status();  // original cause
      links_materialised = full->links_materialised;
      recovered = true;
    }
  }
  VL_RETURN_NOT_OK(PublishLocked());
  MetricAdd(metrics_, "serve.ingest.applied", 1);

  Json result = Json::MakeObject();
  result.Set("graph_version",
             Json::Int(static_cast<int64_t>(store_.version())));
  result.Set("node_ids", std::move(node_ids));
  result.Set("nodes_added", Json::Int(static_cast<int64_t>(nodes.size())));
  result.Set("edges_added", Json::Int(static_cast<int64_t>(edges.size())));
  result.Set("links_materialised",
             Json::Int(static_cast<int64_t>(links_materialised)));
  if (recovered) result.Set("recovered", Json::Bool(true));
  return result;
}

Result<Json> ReasoningService::OpReason(const Request& req,
                                        const RunContext* run_ctx) {
  (void)req;
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!has_rules_) {
    return Status::InvalidArgument(
        "server was started without a rules program");
  }
  auto stats = kg_.Reason(run_ctx, metrics_);
  if (!stats.ok()) return stats.status();
  VL_RETURN_NOT_OK(PublishLocked());
  Json result = Json::MakeObject();
  result.Set("facts_derived",
             Json::Int(static_cast<int64_t>(stats->engine.facts_derived)));
  result.Set("links_materialised",
             Json::Int(static_cast<int64_t>(stats->links_materialised)));
  result.Set("graph_version",
             Json::Int(static_cast<int64_t>(store_.version())));
  return result;
}

Result<Json> ReasoningService::OpQuery(const Request& req) {
  const Json* pred = req.params.Find("predicate");
  if (pred == nullptr || !pred->is_string()) {
    return Status::InvalidArgument("missing string 'predicate'");
  }
  int64_t limit = 1000;
  if (const Json* l = req.params.Find("limit")) {
    if (!l->is_int() || l->AsInt() < 0) {
      return Status::InvalidArgument("'limit' must be a non-negative integer");
    }
    limit = l->AsInt();
  }
  std::lock_guard<std::mutex> lock(write_mu_);
  // Zero-copy read of the reasoner's columnar storage; the write lock
  // keeps the fact base stable for the duration of the scan.
  datalog::RelationScan tuples = kg_.Query(pred->AsString());
  Json rows = Json::MakeArray();
  size_t emitted = 0;
  for (datalog::RowRef tuple : tuples) {
    if (static_cast<int64_t>(emitted) >= limit) break;
    Json row = Json::MakeArray();
    for (size_t i = 0; i < tuple.size(); ++i) {
      row.Append(Json::Str(tuple[i].ToString(kg_.catalog().symbols)));
    }
    rows.Append(std::move(row));
    ++emitted;
  }
  Json result = Json::MakeObject();
  result.Set("tuples", std::move(rows));
  result.Set("count", Json::Int(static_cast<int64_t>(tuples.size())));
  result.Set("truncated", Json::Bool(emitted < tuples.size()));
  return result;
}

Result<Json> ReasoningService::OpSleep(const Request& req,
                                       const RunContext* run_ctx) {
  VL_ASSIGN_OR_RETURN(int64_t ms, ReqInt(req.params, "ms"));
  if (ms < 0 || ms > 60000) {
    return Status::InvalidArgument("'ms' must be in [0, 60000]");
  }
  auto start = std::chrono::steady_clock::now();
  int64_t slept = 0;
  while (slept < ms) {
    VL_RETURN_NOT_OK(CheckRunNow(run_ctx));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    slept = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  }
  Json result = Json::MakeObject();
  result.Set("slept_ms", Json::Int(slept));
  return result;
}

}  // namespace vadalink::serve
