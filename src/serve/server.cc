#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/fault_injection.h"

namespace vadalink::serve {

namespace {

constexpr int kPollTickMs = 100;

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

Server::Server(ServiceOptions service_options, ServerOptions options,
               MetricsRegistry* metrics)
    : service_options_(service_options),
      options_(options),
      metrics_(metrics),
      service_(service_options, metrics) {
  if (options_.max_inflight < 1) options_.max_inflight = 1;
  if (options_.queue_depth == 0) options_.queue_depth = 1;
  if (options_.request_deadline_ms <= 0) options_.request_deadline_ms = 10000;
}

Server::~Server() { Stop(); }

Status Server::Init(graph::PropertyGraph graph,
                    const std::string& rules_source) {
  return service_.Init(std::move(graph), rules_source);
}

Status Server::Start() {
  if (running_.load()) return Status::InvalidArgument("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Errno("bind " + options_.host + ":" +
                      std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status st = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  queue_ = std::make_unique<BoundedQueue<Task>>(options_.queue_depth);
  running_.store(true);
  stopping_.store(false);
  for (int i = 0; i < options_.max_inflight; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  // Order matters: readers that notice running_ == false consult
  // stopping_ to decide whether to leave their socket open for the
  // drain below — the gate must already be up when they look.
  stopping_.store(true);
  if (!running_.exchange(false)) return;
  RequestShutdown();
  // Workers notice kCancelled at their next RunContext checkpoint.
  server_ctx_.RequestCancel();

  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();

  // Every admitted request still gets an answer.
  if (queue_ != nullptr) {
    for (Task& task : queue_->Close()) {
      WriteLine(*task.conn,
                RenderError(task.req.id,
                            Status::Cancelled("server shutting down")));
      MetricAdd(metrics_, "serve.requests.cancelled", 1);
    }
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      conn->closing.store(true);
      std::lock_guard<std::mutex> wlock(conn->write_mu);
      if (conn->fd >= 0) {
        ::shutdown(conn->fd, SHUT_RDWR);
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
  }
  ReapConnections(/*all=*/true);
}

void Server::WaitUntilShutdownRequested() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_.load(); });
}

void Server::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_.store(true);
  }
  shutdown_cv_.notify_all();
}

void Server::AcceptLoop() {
  while (running_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, kPollTickMs);
    ReapConnections(/*all=*/false);
    if (rc <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    if (FaultInjection::AnyArmed()) {
      // An injected accept fault drops this connection attempt only.
      Status st = FaultInjection::Check("serve.accept");
      if (!st.ok()) {
        MetricAdd(metrics_, "serve.connections.faulted", 1);
        ::close(fd);
        continue;
      }
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->id = next_conn_id_++;
      conns_.push_back(conn);
    }
    MetricAdd(metrics_, "serve.connections.opened", 1);
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  auto last_activity = RunContext::Clock::now();

  while (running_.load() && !conn->closing.load()) {
    pollfd pfd{conn->fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, kPollTickMs);
    if (rc < 0) break;
    if (rc == 0) {
      if (options_.idle_timeout_ms > 0 &&
          RunContext::Clock::now() - last_activity >
              std::chrono::milliseconds(options_.idle_timeout_ms)) {
        MetricAdd(metrics_, "serve.connections.idle_reaped", 1);
        break;
      }
      continue;
    }
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF or error
    last_activity = RunContext::Clock::now();
    buffer.append(chunk, static_cast<size_t>(n));

    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = nl + 1;
      if (!line.empty()) DispatchLine(conn, line);
      if (conn->closing.load()) break;
    }
    buffer.erase(0, start);
    if (buffer.size() > options_.max_line_bytes) {
      // A runaway line poisons only this connection.
      WriteLine(*conn,
                RenderError(Json::Null(),
                            Status::ResourceExhausted(
                                "request line exceeds " +
                                std::to_string(options_.max_line_bytes) +
                                " bytes")));
      MetricAdd(metrics_, "serve.connections.overlong_line", 1);
      break;
    }
  }

  // When the server itself is stopping, leave the socket open and
  // writable: Stop() still answers this connection's drained queue tasks
  // and in-flight responses, and closes the fd only after the workers
  // are joined. Closing here would race that drain and lose responses.
  if (!stopping_.load()) {
    conn->closing.store(true);
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  MetricAdd(metrics_, "serve.connections.closed", 1);
  conn->done.store(true);
}

void Server::DispatchLine(const std::shared_ptr<Connection>& conn,
                          std::string_view line) {
  if (FaultInjection::AnyArmed()) {
    // An injected read fault fails this request with a structured error;
    // the connection and server keep going.
    Status st = FaultInjection::Check("serve.read");
    if (!st.ok()) {
      WriteLine(*conn, RenderError(RecoverId(line), st));
      MetricAdd(metrics_, "serve.requests.errors", 1);
      return;
    }
  }

  auto parsed = ParseRequest(line);
  if (!parsed.ok()) {
    WriteLine(*conn, RenderError(RecoverId(line), parsed.status()));
    MetricAdd(metrics_, "serve.requests.malformed", 1);
    return;
  }
  Request req = std::move(parsed).value();

  if (req.op == "shutdown") {
    Json result = Json::MakeObject();
    result.Set("shutting_down", Json::Bool(true));
    WriteLine(*conn,
              RenderResult(req.id, service_.version(), std::move(result)));
    RequestShutdown();
    return;
  }

  Json id = req.id;  // keep a copy: the task may be consumed by the queue
  Task task;
  task.conn = conn;
  task.req = std::move(req);
  task.enqueued = RunContext::Clock::now();
  if (!queue_->TryPush(std::move(task))) {
    // Load shed: full queue (or shutdown) answers immediately instead of
    // queueing without bound.
    MetricAdd(metrics_, "serve.requests.shed", 1);
    WriteLine(*conn,
              RenderError(id,
                          Status::ResourceExhausted(
                              "admission queue full (depth " +
                              std::to_string(queue_->depth()) + ")"),
                          options_.retry_after_hint_ms));
    return;
  }
  MetricAdd(metrics_, "serve.requests.accepted", 1);
  MetricSet(metrics_, "serve.queue.depth",
            static_cast<double>(queue_->size()));
}

void Server::WorkerLoop() {
  while (true) {
    auto task = queue_->Pop();
    if (!task.has_value()) return;  // closed and drained
    MetricSet(metrics_, "serve.queue.depth",
              static_cast<double>(queue_->size()));

    // Deadline measured from enqueue: time spent waiting in the queue
    // burns the request's budget, so an overloaded server degrades to
    // stale answers / deadline errors instead of ever-growing latency.
    int64_t deadline_ms = options_.request_deadline_ms;
    if (task->req.deadline_ms.has_value()) {
      deadline_ms = std::clamp<int64_t>(*task->req.deadline_ms, 0,
                                        options_.request_deadline_ms);
    }
    RunContext request_ctx;
    request_ctx.set_parent(&server_ctx_);
    request_ctx.set_deadline(task->enqueued +
                             std::chrono::milliseconds(deadline_ms));

    std::string response = service_.Handle(task->req, &request_ctx);
    MetricAdd(metrics_, "serve.requests.completed", 1);
    WriteLine(*task->conn, response);
  }
}

void Server::WriteLine(Connection& conn, const std::string& line) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  if (conn.fd < 0 || conn.closing.load()) return;
  if (FaultInjection::AnyArmed()) {
    // An injected respond fault behaves like a broken pipe: the
    // connection dies, the server survives.
    Status st = FaultInjection::Check("serve.respond");
    if (!st.ok()) {
      MetricAdd(metrics_, "serve.connections.respond_faulted", 1);
      conn.closing.store(true);
      return;
    }
  }
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(conn.fd, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      conn.closing.store(true);
      return;
    }
    sent += static_cast<size_t>(n);
  }
  MetricAdd(metrics_, "serve.responses.written", 1);
}

void Server::ReapConnections(bool all) {
  std::vector<std::shared_ptr<Connection>> to_join;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.begin();
    while (it != conns_.end()) {
      if (all || (*it)->done.load()) {
        to_join.push_back(*it);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : to_join) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

}  // namespace vadalink::serve
