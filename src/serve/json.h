// Minimal JSON value model + codec for the serve line protocol.
//
// The wire format of `vadalink serve` is newline-delimited JSON: one
// request object per line in, one response object per line out. This is
// the parser/serializer for that traffic — deliberately small (no
// streaming, no comments, no NaN/Inf) and strict (trailing garbage after
// the document is an error), because every malformed byte a client can
// send must surface as a structured parse error, never as UB or a partial
// value.
//
// Object keys are kept sorted, so a serialized response is byte-stable
// for a given value — the same property the metrics document relies on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace vadalink::serve {

/// A JSON document node: null, bool, int64, double, string, array, object.
/// Ints are kept distinct from doubles so node ids survive round trips
/// exactly. Plain value semantics: copies are deep and independent.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  // std::vector is the one standard container guaranteed to work with an
  // incomplete element type, hence the sorted pair-vector object
  // representation instead of std::map.
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Int(int64_t v);
  static Json Double(double v);
  static Json Str(std::string s);
  static Json MakeArray();
  static Json MakeObject();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const {
    return is_double() ? static_cast<int64_t>(dbl_) : int_;
  }
  double AsDouble() const { return is_int() ? static_cast<double>(int_) : dbl_; }
  const std::string& AsString() const { return str_; }
  const Array& AsArray() const { return arr_; }
  Array& AsArray() { return arr_; }
  const Object& AsObject() const { return obj_; }

  /// Object field lookup; nullptr when absent or this is not an object.
  const Json* Find(const std::string& key) const;
  /// Sets a field on an object (insert keeps keys sorted; an existing key
  /// is overwritten). No-op on non-objects.
  void Set(const std::string& key, Json value);
  /// Appends to an array. No-op on non-arrays.
  void Append(Json value);

  size_t size() const {
    return is_array() ? arr_.size() : (is_object() ? obj_.size() : 0);
  }

  /// Serializes to compact JSON (sorted object keys, no whitespace).
  std::string Dump() const;

  /// Parses exactly one JSON document; trailing non-whitespace is an
  /// error. Error messages carry the byte offset. Depth-limited so hostile
  /// input cannot blow the stack.
  static Result<Json> Parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Escapes a string into a JSON string literal (including the quotes).
std::string JsonEscape(std::string_view s);

}  // namespace vadalink::serve
