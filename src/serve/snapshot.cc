#include "serve/snapshot.h"

namespace vadalink::serve {

bool SnapshotStore::Publish(SnapshotPtr snap) {
  if (snap == nullptr) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ != nullptr && snap->version <= current_->version) {
    return false;
  }
  current_ = std::move(snap);
  return true;
}

SnapshotPtr SnapshotStore::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t SnapshotStore::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ == nullptr ? 0 : current_->version;
}

}  // namespace vadalink::serve
