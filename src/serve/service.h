// ReasoningService — the request evaluator behind `vadalink serve`,
// independent of any transport so tests can drive it directly.
//
// State model (DESIGN.md section 10):
//  * one resident KnowledgeGraph — the write side. Ingest mutates it
//    under the writer mutex and re-establishes the fixpoint with
//    Engine::RunIncremental (only delta work); a failed incremental run
//    is contained by falling back to a full Reason() so the next publish
//    is always a true fixpoint.
//  * a SnapshotStore of immutable GraphSnapshots — the read side. Every
//    query evaluates against the snapshot current at its start; a
//    concurrent ingest publishes the next version without disturbing it.
//  * a ResultCache keyed by (op, canonical params) — the degradation
//    store. Deadline-busting keyed queries fall back to the cached value
//    flagged "stale": true instead of failing.
//
// Handle() never throws and never leaves the service wedged: a poisoned
// request (parse garbage handled upstream, bad params, VLxxx preflight
// rejection, fault-injected I/O error) produces a structured error
// response for that request only.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/run_context.h"
#include "common/status.h"
#include "core/knowledge_graph.h"
#include "serve/cache.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"

namespace vadalink::serve {

struct ServiceOptions {
  /// Default thresholds for the keyed queries (overridable per request).
  double control_threshold = 0.5;
  double ubo_threshold = 0.25;
  double closelink_threshold = 0.2;
  /// Result-cache capacity in entries; 0 disables caching (and with it
  /// stale degradation).
  size_t cache_entries = 1024;
  /// Enables the test-only ops ("sleep") used by the chaos and overload
  /// tests to occupy workers deterministically. Never enabled by the CLI.
  bool enable_test_ops = false;
  /// Routes cold keyed queries through the engine's goal-directed path
  /// when the rules program can answer them: `control` misses evaluate
  /// Engine::Query over the magic-set rewrite of the resident rules
  /// (requires the program to define control/2 and the request to use the
  /// default threshold), and `closelinks` misses use the goal-directed
  /// CloseLinksOf instead of filtering AllCloseLinks. Off = the compiled
  /// whole-graph evaluators of PR 6.
  bool query_mode = true;
  /// Cost-aware admission for engine-routed cold queries: > 0 forwards to
  /// EngineOptions::max_query_cost, so a cold query whose static cost
  /// estimate exceeds this bound is rejected up-front with
  /// kResourceExhausted (the estimate named in the error payload) instead
  /// of burning a worker until the deadline fires. Cached/stale answers
  /// still serve. 0 = no cost gate.
  double max_query_cost = 0.0;
};

class ReasoningService {
 public:
  /// `metrics` (borrowed, may be null) receives serve.* instruments and
  /// is exported by the "metrics" op.
  ReasoningService(ServiceOptions options, MetricsRegistry* metrics);

  /// Installs the initial graph (+ optional Vadalog rules). Runs a full
  /// Reason() when rules are present and publishes snapshot version 1.
  /// Must complete before Handle() is called.
  Status Init(graph::PropertyGraph graph, const std::string& rules_source);

  /// Evaluates one request under `run_ctx` (the per-request governor; may
  /// be null = unlimited) and returns the rendered response line. Always
  /// returns a well-formed response — errors are structured, never thrown.
  std::string Handle(const Request& req, const RunContext* run_ctx);

  /// Current published graph version.
  uint64_t version() const { return store_.version(); }

  MetricsRegistry* metrics() { return metrics_; }
  const ServiceOptions& options() const { return options_; }

  /// Result-cache key for a keyed query. `engine_route` is part of the key
  /// because the evaluation mode changes the answer encoding (engine
  /// answers are sorted tuples, compiled answers are discovery-ordered), so
  /// toggling query_mode must never serve a result cached under the other
  /// mode. Exposed for tests.
  static std::string KeyedCacheKey(const std::string& op, int64_t node,
                                   double threshold, bool engine_route);

 private:
  Result<Json> OpControl(const Request& req, const SnapshotPtr& snap);
  /// Goal-directed control: Engine::Query with goal control(source, X)
  /// over the resident rules program and the snapshot's facts. Exact same
  /// answer set as OpControl (sorted, not discovery-ordered).
  Result<Json> OpControlEngine(const Request& req, const SnapshotPtr& snap,
                               const RunContext* run_ctx);
  Result<Json> OpUbo(const Request& req, const SnapshotPtr& snap);
  Result<Json> OpCloseLinks(const Request& req, const SnapshotPtr& snap);
  Result<Json> OpIngest(const Request& req, const RunContext* run_ctx);
  Result<Json> OpReason(const Request& req, const RunContext* run_ctx);
  Result<Json> OpQuery(const Request& req);
  Result<Json> OpSleep(const Request& req, const RunContext* run_ctx);

  /// Keyed-query driver: cache fast path, fresh evaluation, stale
  /// fallback on a tripped governor.
  std::string HandleKeyed(const Request& req, const RunContext* run_ctx);

  /// Rebuilds + publishes the next snapshot from the resident graph.
  /// Caller holds write_mu_.
  Status PublishLocked();

  ServiceOptions options_;
  MetricsRegistry* metrics_;

  std::mutex write_mu_;              // serialises ingest/reason/query(db)
  core::KnowledgeGraph kg_;          // resident write-side state
  bool has_rules_ = false;
  std::string rules_source_;         // verbatim program for per-request parses
  bool rules_define_control_ = false;  // program has a control/2 rule head
  uint64_t next_version_ = 1;        // version the next publish gets
  SnapshotStore store_;
  std::unique_ptr<ResultCache> cache_;
};

}  // namespace vadalink::serve
