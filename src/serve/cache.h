// Keyed result cache for hot queries — the graceful-degradation store.
//
// Every successful keyed query (control/ubo/closelinks for one company at
// one threshold) is inserted under a canonical key together with the
// graph version it was computed against. Two uses:
//
//  * fast path — a hit at the *current* version is returned immediately
//    (flagged "cached": true), skipping re-evaluation entirely;
//  * degradation — when a request's deadline has already passed (or
//    expires mid-evaluation), the server returns the cached value even if
//    it was computed against an older version, flagged "stale": true,
//    instead of failing the request. A stale answer about company control
//    beats no answer for an interactive consumer; clients that cannot
//    accept staleness simply retry with a real deadline.
//
// LRU eviction bounds the entry count (`--cache-entries`); all methods
// are thread-safe (single mutex — entries are small and the critical
// sections are pointer moves).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "serve/json.h"

namespace vadalink::serve {

/// One cached query result.
struct CacheEntry {
  Json result;
  uint64_t version = 0;  // graph version the result was computed against
};

class ResultCache {
 public:
  /// `capacity` = maximum entries; 0 disables caching entirely.
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Inserts (or refreshes) `key`. Entries from older versions are
  /// overwritten; an insert at an older version than the cached one is
  /// ignored (a slow worker must not roll the cache backwards).
  void Put(const std::string& key, Json result, uint64_t version);

  /// Copies the entry for `key` into `out` and returns true on a hit.
  bool Get(const std::string& key, CacheEntry* out);

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using LruList = std::list<std::string>;
  struct Slot {
    CacheEntry entry;
    LruList::iterator lru_pos;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> map_;
  LruList lru_;  // front = most recently used
};

}  // namespace vadalink::serve
