// The serve wire protocol: newline-delimited JSON over TCP.
//
// Grammar (one object per line; see DESIGN.md section 10):
//
//   request  := { "id": int|string,          // echoed back verbatim
//                 "op": string,              // operation name
//                 "params"?: object,         // op-specific arguments
//                 "deadline_ms"?: int }      // per-request deadline
//
//   response := { "id": <echo|null>,
//                 "ok": true,
//                 "graph_version": int,      // current snapshot version at
//                                            // response time
//                 "stale"?: true,            // served from cache because a
//                                            // fresh run would bust the
//                                            // deadline
//                 "computed_at_version"?: int, // stale only: the (older)
//                                            // snapshot the cached result
//                                            // was actually computed
//                                            // against
//                 "cached"?: true,           // served from cache (fresh)
//                 "result": object }
//             | { "id": <echo|null>,
//                 "ok": false,
//                 "error": { "code": string,           // StatusCodeName
//                            "message": string,
//                            "retry_after_ms"?: int } }  // load shed hint
//
// Error taxonomy: the "code" field is the StatusCodeName of the failing
// Status — "ParseError" (malformed JSON / missing fields), "InvalidArgument"
// (bad params, VLxxx preflight rejection), "NotFound" (unknown node),
// "ResourceExhausted" (admission queue full — retry_after_ms is set),
// "DeadlineExceeded" (deadline passed and no cached fallback existed),
// "Unsupported" (unknown op), "Cancelled" (server shutting down),
// "Internal"/"IoError" (contained request-level faults).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"
#include "serve/json.h"

namespace vadalink::serve {

/// A parsed request line.
struct Request {
  /// Echoed back in the response; null when the line was malformed.
  Json id;
  std::string op;
  Json params;  // object (empty object when absent)
  /// Per-request deadline override; the server clamps it to its
  /// configured maximum. <= 0 means "expired immediately" (useful for
  /// cache-only reads); absent means the server default.
  std::optional<int64_t> deadline_ms;
};

/// Parses one protocol line. On failure the returned status message names
/// the offending field; the caller still answers the line (with a
/// ParseError response carrying a null id, or the id when one could be
/// recovered).
Result<Request> ParseRequest(std::string_view line);

/// Best-effort id extraction from a line ParseRequest rejected, so even a
/// malformed request's error response can carry the caller's id. Null
/// when the line is not an object or its id is unusable.
Json RecoverId(std::string_view line);

/// Renders a success response line (no trailing newline).
/// `computed_at_version` >= 0 adds the "computed_at_version" field — stale
/// cache hits pass the cached entry's snapshot version here so clients can
/// tell how old the answer actually is (graph_version alone names the
/// *current* snapshot, which a stale result was not computed against).
std::string RenderResult(const Json& id, uint64_t graph_version, Json result,
                         bool cached = false, bool stale = false,
                         int64_t computed_at_version = -1);

/// Renders an error response line from a Status (no trailing newline).
/// `retry_after_ms` >= 0 adds the load-shed hint.
std::string RenderError(const Json& id, const Status& status,
                        int64_t retry_after_ms = -1);

}  // namespace vadalink::serve
