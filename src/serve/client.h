// Minimal blocking client for the serve line protocol — used by the
// tests, the chaos harness and bench_serve_load. One outstanding request
// per client: Call() writes a line and blocks for the response line,
// which is exactly the synchronous discipline the monotone-version
// guarantee of DESIGN.md section 10 is stated for.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"
#include "serve/json.h"

namespace vadalink::serve {

class Client {
 public:
  /// Connects to host:port. The read timeout bounds every ReadLine().
  static Result<Client> Connect(const std::string& host, int port,
                                int64_t read_timeout_ms = 10000);

  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one raw line (newline appended).
  Status SendLine(const std::string& line);

  /// Blocks for the next response line (without the newline).
  Result<std::string> ReadLine();

  /// Round trip: builds {id, op, params, deadline_ms?}, sends it, parses
  /// the response object. The id is assigned monotonically per client;
  /// a response carrying a different id is an error (synchronous use).
  Result<Json> Call(const std::string& op, Json params,
                    std::optional<int64_t> deadline_ms = std::nullopt);

 private:
  int fd_ = -1;
  int64_t read_timeout_ms_ = 10000;
  int64_t next_id_ = 1;
  std::string buffer_;  // bytes past the last returned line
};

}  // namespace vadalink::serve
