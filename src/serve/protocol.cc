#include "serve/protocol.h"

namespace vadalink::serve {

Result<Request> ParseRequest(std::string_view line) {
  VL_ASSIGN_OR_RETURN(Json doc, Json::Parse(line));
  if (!doc.is_object()) {
    return Status::ParseError("request must be a JSON object");
  }
  Request req;
  if (const Json* id = doc.Find("id")) {
    if (!id->is_int() && !id->is_string()) {
      return Status::ParseError("'id' must be an integer or string");
    }
    req.id = *id;
  }
  const Json* op = doc.Find("op");
  if (op == nullptr || !op->is_string() || op->AsString().empty()) {
    // Callers use RecoverId(line) so the error response still echoes a
    // well-formed id.
    return Status::ParseError("missing or non-string 'op'");
  }
  req.op = op->AsString();
  if (const Json* params = doc.Find("params")) {
    if (!params->is_object()) {
      return Status::ParseError("'params' must be an object");
    }
    req.params = *params;
  } else {
    req.params = Json::MakeObject();
  }
  if (const Json* dl = doc.Find("deadline_ms")) {
    if (!dl->is_int()) {
      return Status::ParseError("'deadline_ms' must be an integer");
    }
    req.deadline_ms = dl->AsInt();
  }
  return req;
}

Json RecoverId(std::string_view line) {
  auto doc = Json::Parse(line);
  if (!doc.ok() || !doc->is_object()) return Json::Null();
  const Json* id = doc->Find("id");
  if (id == nullptr || (!id->is_int() && !id->is_string())) {
    return Json::Null();
  }
  return *id;
}

std::string RenderResult(const Json& id, uint64_t graph_version, Json result,
                         bool cached, bool stale,
                         int64_t computed_at_version) {
  Json resp = Json::MakeObject();
  resp.Set("id", id);
  resp.Set("ok", Json::Bool(true));
  resp.Set("graph_version", Json::Int(static_cast<int64_t>(graph_version)));
  if (cached) resp.Set("cached", Json::Bool(true));
  if (stale) resp.Set("stale", Json::Bool(true));
  if (computed_at_version >= 0) {
    resp.Set("computed_at_version", Json::Int(computed_at_version));
  }
  resp.Set("result", std::move(result));
  return resp.Dump();
}

std::string RenderError(const Json& id, const Status& status,
                        int64_t retry_after_ms) {
  Json err = Json::MakeObject();
  err.Set("code", Json::Str(StatusCodeName(status.code())));
  err.Set("message", Json::Str(status.message()));
  if (retry_after_ms >= 0) {
    err.Set("retry_after_ms", Json::Int(retry_after_ms));
  }
  Json resp = Json::MakeObject();
  resp.Set("id", id);
  resp.Set("ok", Json::Bool(false));
  resp.Set("error", std::move(err));
  return resp.Dump();
}

}  // namespace vadalink::serve
