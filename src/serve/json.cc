#include "serve/json.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vadalink::serve {

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Int(int64_t v) {
  Json j;
  j.type_ = Type::kInt;
  j.int_ = v;
  return j;
}

Json Json::Double(double v) {
  Json j;
  j.type_ = Type::kDouble;
  j.dbl_ = v;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::MakeArray() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::MakeObject() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

const Json* Json::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = std::lower_bound(
      obj_.begin(), obj_.end(), key,
      [](const auto& kv, const std::string& k) { return kv.first < k; });
  if (it == obj_.end() || it->first != key) return nullptr;
  return &it->second;
}

void Json::Set(const std::string& key, Json value) {
  if (!is_object()) return;
  auto it = std::lower_bound(
      obj_.begin(), obj_.end(), key,
      [](const auto& kv, const std::string& k) { return kv.first < k; });
  if (it != obj_.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    obj_.insert(it, {key, std::move(value)});
  }
}

void Json::Append(Json value) {
  if (!is_array()) return;
  arr_.push_back(std::move(value));
}

std::string JsonEscape(std::string_view s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void DumpTo(const Json& j, std::string* out) {
  switch (j.type()) {
    case Json::Type::kNull:
      *out += "null";
      break;
    case Json::Type::kBool:
      *out += j.AsBool() ? "true" : "false";
      break;
    case Json::Type::kInt:
      *out += std::to_string(j.AsInt());
      break;
    case Json::Type::kDouble: {
      double v = j.AsDouble();
      if (!std::isfinite(v)) {
        *out += "null";  // JSON has no NaN/Inf; null is the least-bad spelling
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      *out += buf;
      break;
    }
    case Json::Type::kString:
      *out += JsonEscape(j.AsString());
      break;
    case Json::Type::kArray: {
      *out += '[';
      bool first = true;
      for (const Json& e : j.AsArray()) {
        if (!first) *out += ',';
        first = false;
        DumpTo(e, out);
      }
      *out += ']';
      break;
    }
    case Json::Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, v] : j.AsObject()) {
        if (!first) *out += ',';
        first = false;
        *out += JsonEscape(k);
        *out += ':';
        DumpTo(v, out);
      }
      *out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    SkipWs();
    VL_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Err(const std::string& what) const {
    return Status::ParseError(what + " at byte " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        VL_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json::Str(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return Json::Bool(true);
        return Err("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return Json::Bool(false);
        return Err("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return Json::Null();
        return Err("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    Json obj = Json::MakeObject();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key string");
      }
      VL_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':' after object key");
      SkipWs();
      VL_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      obj.Set(key, std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Err("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray(int depth) {
    ++pos_;  // '['
    Json arr = Json::MakeArray();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      SkipWs();
      VL_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Err("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Err("unterminated string");
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Err("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Err("bad hex digit in \\u escape");
          }
          pos_ += 4;
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through as-is; the protocol only needs ASCII round trips).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return Err("unknown escape");
      }
    }
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_float = false;
    if (Consume('.')) {
      is_float = true;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_float = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return Err("invalid number");
    if (!is_float) {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && ptr == tok.data() + tok.size()) {
        return Json::Int(v);
      }
      // Fall through to double on overflow.
    }
    std::string buf(tok);
    char* end = nullptr;
    double v = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) return Err("invalid number");
    return Json::Double(v);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Json::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  Parser p(text);
  return p.ParseDocument();
}

}  // namespace vadalink::serve
