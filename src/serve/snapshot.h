// Snapshot-isolated graph versions for the serving layer.
//
// The server's write path (ingest + incremental reasoning) mutates one
// resident KnowledgeGraph under a writer mutex; after each successful
// mutation it publishes an immutable GraphSnapshot — a deep copy of the
// property graph plus the prebuilt CompanyGraph the keyed query
// algorithms run on. Readers grab the current shared_ptr (one mutex-
// protected pointer copy), then compute entirely against that frozen
// version: a concurrent ingest can never mutate data under a running
// query, and a request's "graph_version" names exactly the state it saw.
//
// Versions are assigned by the single writer and published in order, so
// the version visible through current() is monotonically non-decreasing —
// the invariant the chaos test pins.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "company/company_graph.h"
#include "graph/property_graph.h"

namespace vadalink::serve {

/// One immutable published version of the graph.
struct GraphSnapshot {
  uint64_t version = 0;
  graph::PropertyGraph graph;           // frozen deep copy
  company::CompanyGraph company_graph;  // prebuilt typed view over `graph`
};

using SnapshotPtr = std::shared_ptr<const GraphSnapshot>;

/// Holds the current snapshot pointer. Publish() enforces monotone
/// versions (a stale publish is rejected), current() is a cheap atomic
/// pointer read for the many concurrent readers.
class SnapshotStore {
 public:
  /// Installs `snap` as the current version. Returns false (and installs
  /// nothing) if snap->version is not strictly greater than the current
  /// version — the single-writer discipline makes that a programming
  /// error worth surfacing.
  bool Publish(SnapshotPtr snap);

  /// The current snapshot; nullptr before the first Publish().
  SnapshotPtr current() const;

  /// Version of the current snapshot (0 before the first Publish()).
  uint64_t version() const;

 private:
  mutable std::mutex mu_;
  SnapshotPtr current_;
};

}  // namespace vadalink::serve
