// The transport of `vadalink serve`: a newline-delimited-JSON-over-TCP
// server around ReasoningService.
//
// Thread model:
//  * one acceptor thread (poll() with a 100ms tick so Stop() is prompt),
//  * one reader thread per connection — parses lines, answers protocol
//    errors and load sheds inline, enqueues everything else,
//  * `max_inflight` worker threads popping the bounded admission queue;
//    each request runs under a fresh RunContext chained to the
//    server-wide context, with its deadline measured from *enqueue* time
//    (queue wait burns the budget — that is the point).
//
// Robustness properties (exercised by serve_server_test / chaos test):
//  * full queue → immediate kResourceExhausted with retry_after_ms, the
//    connection stays healthy;
//  * Stop() cancels the server context, drains the queue, and answers
//    every admitted-but-unstarted request with kCancelled — no request
//    admitted is ever silently dropped;
//  * a connection idle past idle_timeout_ms is reaped;
//  * a line longer than max_line_bytes poisons only that connection;
//  * fault sites serve.accept / serve.read / serve.respond (plus
//    serve.evaluate inside the service) turn injected faults into
//    request- or connection-level errors, never a dead server.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/run_context.h"
#include "common/status.h"
#include "graph/property_graph.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace vadalink::serve {

struct ServerOptions {
  /// Bind address; tests and the default CLI stay on loopback.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the bound port back with port()).
  int port = 0;
  /// Worker threads = maximum concurrently evaluating requests.
  int max_inflight = 4;
  /// Admission queue depth; a full queue sheds.
  size_t queue_depth = 64;
  /// Default and maximum per-request deadline. Requests may ask for less
  /// via "deadline_ms"; asking for more is clamped to this.
  int64_t request_deadline_ms = 10000;
  /// Hint returned with a shed response.
  int64_t retry_after_hint_ms = 100;
  /// Connections idle this long are closed. <= 0 disables reaping.
  int64_t idle_timeout_ms = 300000;
  /// A single request line may not exceed this.
  size_t max_line_bytes = 1 << 20;
};

class Server {
 public:
  Server(ServiceOptions service_options, ServerOptions options,
         MetricsRegistry* metrics);
  ~Server();

  /// Loads the initial state into the service. Call before Start().
  Status Init(graph::PropertyGraph graph, const std::string& rules_source);

  /// Binds, listens and spawns the acceptor + worker threads.
  Status Start();

  /// Stops accepting, cancels in-flight work, answers queued requests
  /// with kCancelled, joins every thread. Idempotent.
  void Stop();

  /// Bound port (valid after Start(); resolves port 0).
  int port() const { return port_; }

  ReasoningService& service() { return service_; }
  const ServerOptions& options() const { return options_; }

  /// True once a client issued the "shutdown" op (or Stop() ran).
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }
  /// Blocks the caller (the CLI main thread) until shutdown is requested.
  void WaitUntilShutdownRequested();

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::mutex write_mu;
    std::atomic<bool> closing{false};
    std::atomic<bool> done{false};  // reader exited
    std::thread reader;
  };

  struct Task {
    std::shared_ptr<Connection> conn;
    Request req;
    RunContext::Clock::time_point enqueued;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();
  /// Handles one reader-side line end to end (parse, shed, enqueue).
  void DispatchLine(const std::shared_ptr<Connection>& conn,
                    std::string_view line);
  /// Serialised, SIGPIPE-safe line write; marks the connection closing on
  /// failure. Appends the newline itself.
  void WriteLine(Connection& conn, const std::string& line);
  /// Joins readers whose connections finished; `all` joins everything.
  void ReapConnections(bool all);
  void RequestShutdown();

  ServiceOptions service_options_;
  ServerOptions options_;
  MetricsRegistry* metrics_;
  ReasoningService service_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  RunContext server_ctx_;  // cancelled on Stop; parent of every request

  std::unique_ptr<BoundedQueue<Task>> queue_;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;

  std::atomic<bool> shutdown_requested_{false};
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
};

}  // namespace vadalink::serve
