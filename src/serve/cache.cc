#include "serve/cache.h"

namespace vadalink::serve {

void ResultCache::Put(const std::string& key, Json result, uint64_t version) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    if (version < it->second.entry.version) return;  // never roll backwards
    it->second.entry.result = std::move(result);
    it->second.entry.version = version;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  if (map_.size() >= capacity_) {
    const std::string& victim = lru_.back();
    map_.erase(victim);
    lru_.pop_back();
  }
  lru_.push_front(key);
  map_[key] = Slot{CacheEntry{std::move(result), version}, lru_.begin()};
}

bool ResultCache::Get(const std::string& key, CacheEntry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  *out = it->second.entry;
  return true;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace vadalink::serve
