#include "gen/evolution.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "gen/name_pools.h"

namespace vadalink::gen {

namespace {

struct PersonEntity {
  std::string first_name, last_name, birth_city, sex, city;
  int64_t birth_year = 0;
};

struct CompanyEntity {
  std::string name, city, legal_form, sector;
  int64_t inc_year = 0;
  bool alive = true;
};

struct ShareEntity {
  bool src_is_person = false;
  size_t src = 0;  // entity index in persons / companies
  size_t dst = 0;  // company entity index
  double w = 0.0;
  bool alive = true;
};

struct State {
  std::vector<PersonEntity> persons;
  std::vector<CompanyEntity> companies;
  std::vector<ShareEntity> shares;
};

PersonEntity RandomPerson(Rng* rng, int64_t year_hint) {
  PersonEntity p;
  bool male = rng->Bernoulli(0.5);
  p.first_name = male ? NamePools::SampleMaleFirstName(rng)
                      : NamePools::SampleFemaleFirstName(rng);
  p.last_name = NamePools::SampleSurname(rng);
  p.birth_city = NamePools::SampleCity(rng);
  p.sex = male ? "M" : "F";
  p.city = NamePools::SampleCity(rng);
  p.birth_year = year_hint - rng->UniformInt(25, 70);
  return p;
}

CompanyEntity RandomCompany(Rng* rng, int64_t year) {
  CompanyEntity c;
  c.name = NamePools::SampleCompanyName(rng);
  c.city = NamePools::SampleCity(rng);
  c.legal_form = NamePools::SampleLegalForm(rng);
  c.sector = NamePools::SampleSector(rng);
  c.inc_year = year;
  return c;
}

/// Seeds the state from the one-shot register simulator so year one matches
/// its topology and features.
State SeedState(const EvolutionConfig& config) {
  State state;
  RegisterConfig initial = config.initial;
  initial.seed = config.seed;
  RegisterData data = GenerateRegister(initial);

  // Reverse-map node ids to entity indexes.
  std::unordered_map<graph::NodeId, size_t> person_of, company_of;
  for (graph::NodeId p : data.persons) {
    PersonEntity e;
    e.first_name = data.graph.GetNodeProperty(p, "first_name").AsString();
    e.last_name = data.graph.GetNodeProperty(p, "last_name").AsString();
    e.birth_city = data.graph.GetNodeProperty(p, "birth_city").AsString();
    e.sex = data.graph.GetNodeProperty(p, "sex").AsString();
    e.city = data.graph.GetNodeProperty(p, "city").AsString();
    e.birth_year = data.graph.GetNodeProperty(p, "birth_year").AsInt();
    person_of[p] = state.persons.size();
    state.persons.push_back(std::move(e));
  }
  for (graph::NodeId c : data.companies) {
    CompanyEntity e;
    e.name = data.graph.GetNodeProperty(c, "name").AsString();
    e.city = data.graph.GetNodeProperty(c, "city").AsString();
    e.legal_form = data.graph.GetNodeProperty(c, "legal_form").AsString();
    e.sector = data.graph.GetNodeProperty(c, "sector").AsString();
    e.inc_year = data.graph.GetNodeProperty(c, "inc_year").AsInt();
    company_of[c] = state.companies.size();
    state.companies.push_back(std::move(e));
  }
  data.graph.ForEachEdge([&](graph::EdgeId e) {
    ShareEntity s;
    graph::NodeId src = data.graph.edge_src(e);
    s.src_is_person = person_of.count(src) > 0;
    s.src = s.src_is_person ? person_of[src] : company_of[src];
    s.dst = company_of[data.graph.edge_dst(e)];
    s.w = data.graph.GetEdgeProperty(e, "w").AsDouble();
    state.shares.push_back(s);
  });
  return state;
}

YearlySnapshot Materialize(const State& state, int year) {
  YearlySnapshot snap;
  snap.year = year;
  graph::PropertyGraph& g = snap.graph;

  std::vector<graph::NodeId> person_node(state.persons.size());
  for (size_t i = 0; i < state.persons.size(); ++i) {
    const PersonEntity& e = state.persons[i];
    graph::NodeId n = g.AddNode(RegisterSchema::kPersonLabel);
    g.SetNodeProperty(n, "eid", static_cast<int64_t>(i));
    g.SetNodeProperty(n, "first_name", e.first_name);
    g.SetNodeProperty(n, "last_name", e.last_name);
    g.SetNodeProperty(n, "birth_city", e.birth_city);
    g.SetNodeProperty(n, "sex", e.sex);
    g.SetNodeProperty(n, "city", e.city);
    g.SetNodeProperty(n, "birth_year", e.birth_year);
    person_node[i] = n;
    snap.persons.push_back(n);
  }
  std::vector<graph::NodeId> company_node(state.companies.size(),
                                          graph::kInvalidNode);
  for (size_t i = 0; i < state.companies.size(); ++i) {
    const CompanyEntity& e = state.companies[i];
    if (!e.alive) continue;
    graph::NodeId n = g.AddNode(RegisterSchema::kCompanyLabel);
    g.SetNodeProperty(n, "eid", static_cast<int64_t>(i));
    g.SetNodeProperty(n, "name", e.name);
    g.SetNodeProperty(n, "city", e.city);
    g.SetNodeProperty(n, "legal_form", e.legal_form);
    g.SetNodeProperty(n, "sector", e.sector);
    g.SetNodeProperty(n, "inc_year", e.inc_year);
    company_node[i] = n;
    snap.companies.push_back(n);
  }
  for (const ShareEntity& s : state.shares) {
    if (!s.alive) continue;
    if (company_node[s.dst] == graph::kInvalidNode) continue;
    graph::NodeId src = s.src_is_person ? person_node[s.src]
                                        : company_node[s.src];
    if (src == graph::kInvalidNode) continue;
    auto e = g.AddEdge(src, company_node[s.dst],
                       RegisterSchema::kShareholdingLabel);
    g.SetEdgeProperty(e.value(), RegisterSchema::kWeightKey, s.w);
  }
  return snap;
}

void EvolveOneYear(State* state, const EvolutionConfig& config, Rng* rng,
                   int year) {
  // Dissolutions: dead companies take their in/out shares with them.
  std::vector<size_t> alive_idx;
  for (size_t i = 0; i < state->companies.size(); ++i) {
    if (state->companies[i].alive) alive_idx.push_back(i);
  }
  std::vector<bool> dissolved(state->companies.size(), false);
  for (size_t i : alive_idx) {
    if (rng->Bernoulli(config.company_death_rate)) {
      state->companies[i].alive = false;
      dissolved[i] = true;
    }
  }
  for (ShareEntity& s : state->shares) {
    if (!s.alive) continue;
    if (dissolved[s.dst] || (!s.src_is_person && dissolved[s.src])) {
      s.alive = false;
    }
  }

  // New persons.
  size_t new_persons = static_cast<size_t>(
      config.person_entry_rate * static_cast<double>(state->persons.size()));
  for (size_t i = 0; i < new_persons; ++i) {
    state->persons.push_back(RandomPerson(rng, year));
  }

  // Incorporations: each new company gets 1-3 shareholders.
  size_t births = static_cast<size_t>(
      config.company_birth_rate * static_cast<double>(alive_idx.size()));
  for (size_t b = 0; b < births; ++b) {
    size_t idx = state->companies.size();
    state->companies.push_back(RandomCompany(rng, year));
    size_t holders = 1 + rng->UniformU64(3);
    double remaining = rng->UniformDouble(0.6, 1.0);
    for (size_t h = 0; h < holders; ++h) {
      ShareEntity s;
      s.dst = idx;
      s.w = h + 1 == holders ? remaining
                             : remaining * rng->UniformDouble(0.3, 0.7);
      remaining -= s.w;
      if (s.w <= 0.0) break;
      if (rng->Bernoulli(0.6)) {
        s.src_is_person = true;
        s.src = rng->UniformU64(state->persons.size());
      } else {
        s.src_is_person = false;
        s.src = alive_idx.empty() ? idx
                                  : alive_idx[rng->UniformU64(alive_idx.size())];
        if (s.src == idx) s.src_is_person = true, s.src = rng->UniformU64(state->persons.size());
      }
      state->shares.push_back(s);
    }
  }

  // Share turnover: ownership changes hands, weight preserved.
  for (ShareEntity& s : state->shares) {
    if (!s.alive || !rng->Bernoulli(config.share_turnover)) continue;
    if (rng->Bernoulli(0.6)) {
      s.src_is_person = true;
      s.src = rng->UniformU64(state->persons.size());
    } else {
      // New corporate owner (must be alive and not the target).
      for (int attempt = 0; attempt < 8; ++attempt) {
        size_t candidate = rng->UniformU64(state->companies.size());
        if (state->companies[candidate].alive && candidate != s.dst) {
          s.src_is_person = false;
          s.src = candidate;
          break;
        }
      }
    }
  }
}

}  // namespace

std::vector<YearlySnapshot> SimulateEvolution(const EvolutionConfig& config) {
  std::vector<YearlySnapshot> out;
  if (config.last_year < config.first_year) return out;
  Rng rng(config.seed ^ 0xe701u);
  State state = SeedState(config);
  out.push_back(Materialize(state, config.first_year));
  for (int year = config.first_year + 1; year <= config.last_year; ++year) {
    EvolveOneYear(&state, config, &rng, year);
    out.push_back(Materialize(state, year));
  }
  return out;
}

}  // namespace vadalink::gen
