#include "gen/barabasi_albert.h"

#include <unordered_set>

namespace vadalink::gen {

graph::PropertyGraph GenerateBarabasiAlbert(const BarabasiAlbertConfig& cfg) {
  graph::PropertyGraph g;
  Rng rng(cfg.seed);
  const size_t n = cfg.nodes;
  const size_t m = cfg.edges_per_node == 0 ? 1 : cfg.edges_per_node;
  g.Reserve(n, n * m);

  const std::string node_label = cfg.as_company_graph ? "Company" : "Person";
  const std::string edge_label =
      cfg.as_company_graph ? "Shareholding" : "Link";

  for (size_t v = 0; v < n; ++v) {
    graph::NodeId id = g.AddNode(node_label);
    g.SetNodeProperty(id, "name", "n" + std::to_string(v));
    for (size_t f = 0; f < cfg.feature_count; ++f) {
      g.SetNodeProperty(
          id, "f" + std::to_string(f + 1),
          static_cast<int64_t>(rng.UniformU64(cfg.feature_domain)));
    }
  }

  // Repeated-endpoint list: picking a uniform element is equivalent to
  // degree-proportional preferential attachment.
  std::vector<graph::NodeId> endpoints;
  endpoints.reserve(2 * n * m);

  // Seed clique among the first min(m+1, n) nodes.
  size_t seed_count = std::min(m + 1, n);
  for (size_t a = 0; a + 1 < seed_count; ++a) {
    auto e = g.AddEdge(static_cast<graph::NodeId>(a),
                       static_cast<graph::NodeId>(a + 1), edge_label);
    g.SetEdgeProperty(e.value(), "w", rng.UniformDouble(0.05, 0.95));
    endpoints.push_back(static_cast<graph::NodeId>(a));
    endpoints.push_back(static_cast<graph::NodeId>(a + 1));
  }

  std::unordered_set<graph::NodeId> chosen;
  for (size_t v = seed_count; v < n; ++v) {
    chosen.clear();
    size_t attach = std::min(m, v);
    size_t guard = 0;
    while (chosen.size() < attach && guard++ < 50 * attach) {
      graph::NodeId target =
          endpoints.empty()
              ? static_cast<graph::NodeId>(rng.UniformU64(v))
              : endpoints[rng.UniformU64(endpoints.size())];
      if (target != v) chosen.insert(target);
    }
    for (graph::NodeId target : chosen) {
      auto e = g.AddEdge(static_cast<graph::NodeId>(v), target, edge_label);
      g.SetEdgeProperty(e.value(), "w", rng.UniformDouble(0.05, 0.95));
      endpoints.push_back(static_cast<graph::NodeId>(v));
      endpoints.push_back(target);
    }
  }
  return g;
}

}  // namespace vadalink::gen
