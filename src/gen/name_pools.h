// Static pools of Italian-flavoured names, places and company attributes
// used by the register simulator to synthesise realistic node features.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace vadalink::gen {

/// Name pools (sizes are fixed at compile time; accessors sample them).
class NamePools {
 public:
  static const std::vector<std::string>& MaleFirstNames();
  static const std::vector<std::string>& FemaleFirstNames();
  static const std::vector<std::string>& Surnames();
  static const std::vector<std::string>& Cities();
  static const std::vector<std::string>& LegalForms();
  static const std::vector<std::string>& Sectors();
  static const std::vector<std::string>& CompanyNameStems();

  static std::string SampleMaleFirstName(Rng* rng);
  static std::string SampleFemaleFirstName(Rng* rng);
  static std::string SampleSurname(Rng* rng);
  /// Cities are sampled with a skewed (Zipf-like) distribution so a few
  /// large cities dominate, as in the real register.
  static std::string SampleCity(Rng* rng);
  static std::string SampleLegalForm(Rng* rng);
  static std::string SampleSector(Rng* rng);
  static std::string SampleCompanyName(Rng* rng);

  /// Introduces 1-2 random character-level edits ("typos") into s, used to
  /// exercise approximate string matching in the family classifier.
  static std::string Corrupt(std::string s, Rng* rng);
};

}  // namespace vadalink::gen
