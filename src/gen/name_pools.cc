#include "gen/name_pools.h"

namespace vadalink::gen {

const std::vector<std::string>& NamePools::MaleFirstNames() {
  static const std::vector<std::string> kNames = {
      "Alessandro", "Andrea",   "Antonio",  "Carlo",    "Claudio",
      "Daniele",    "Dario",    "Davide",   "Emanuele", "Enrico",
      "Fabio",      "Federico", "Filippo",  "Francesco", "Gabriele",
      "Giacomo",    "Gianluca", "Giorgio",  "Giovanni", "Giulio",
      "Giuseppe",   "Leonardo", "Lorenzo",  "Luca",     "Luigi",
      "Marco",      "Massimo",  "Matteo",   "Maurizio", "Michele",
      "Nicola",     "Paolo",    "Pietro",   "Riccardo", "Roberto",
      "Salvatore",  "Simone",   "Stefano",  "Tommaso",  "Vincenzo"};
  return kNames;
}

const std::vector<std::string>& NamePools::FemaleFirstNames() {
  static const std::vector<std::string> kNames = {
      "Alessandra", "Alice",     "Anna",      "Beatrice", "Bianca",
      "Camilla",    "Carla",     "Caterina",  "Chiara",   "Claudia",
      "Cristina",   "Elena",     "Eleonora",  "Elisa",    "Emma",
      "Federica",   "Francesca", "Gaia",      "Giada",    "Giorgia",
      "Giulia",     "Ilaria",    "Laura",     "Lucia",    "Maria",
      "Marta",      "Martina",   "Michela",   "Monica",   "Paola",
      "Roberta",    "Sara",      "Serena",    "Silvia",   "Simona",
      "Sofia",      "Stefania",  "Valentina", "Valeria",  "Vittoria"};
  return kNames;
}

const std::vector<std::string>& NamePools::Surnames() {
  static const std::vector<std::string> kNames = {
      "Rossi",     "Russo",     "Ferrari",   "Esposito",  "Bianchi",
      "Romano",    "Colombo",   "Ricci",     "Marino",    "Greco",
      "Bruno",     "Gallo",     "Conti",     "DeLuca",    "Mancini",
      "Costa",     "Giordano",  "Rizzo",     "Lombardi",  "Moretti",
      "Barbieri",  "Fontana",   "Santoro",   "Mariani",   "Rinaldi",
      "Caruso",    "Ferrara",   "Galli",     "Martini",   "Leone",
      "Longo",     "Gentile",   "Martinelli", "Vitale",   "Lombardo",
      "Serra",     "Coppola",   "DeSantis",  "DAngelo",   "Marchetti",
      "Parisi",    "Villa",     "Conte",     "Ferraro",   "Ferri",
      "Fabbri",    "Bianco",    "Marini",    "Grasso",    "Valentini",
      "Messina",   "Sala",      "DeAngelis", "Gatti",     "Pellegrini",
      "Palumbo",   "Sanna",     "Farina",    "Rizzi",     "Monti",
      "Cattaneo",  "Morelli",   "Amato",     "Silvestri", "Mazza",
      "Testa",     "Grassi",    "Pellegrino", "Carbone",  "Giuliani",
      "Benedetti", "Barone",    "Rossetti",  "Caputo",    "Montanari",
      "Guerra",    "Palmieri",  "Bernardi",  "Martino",   "Fiore"};
  return kNames;
}

const std::vector<std::string>& NamePools::Cities() {
  static const std::vector<std::string> kCities = {
      "Roma",     "Milano",  "Napoli",   "Torino",  "Palermo",
      "Genova",   "Bologna", "Firenze",  "Bari",    "Catania",
      "Venezia",  "Verona",  "Messina",  "Padova",  "Trieste",
      "Brescia",  "Parma",   "Taranto",  "Prato",   "Modena",
      "Reggio",   "Perugia", "Ravenna",  "Livorno", "Cagliari",
      "Foggia",   "Rimini",  "Salerno",  "Ferrara", "Sassari",
      "Siracusa", "Pescara", "Bergamo",  "Vicenza", "Trento",
      "Forli",    "Novara",  "Piacenza", "Ancona",  "Udine"};
  return kCities;
}

const std::vector<std::string>& NamePools::LegalForms() {
  static const std::vector<std::string> kForms = {
      "SRL", "SPA", "SAS", "SNC", "SRLS", "SAPA", "COOP", "DITTA"};
  return kForms;
}

const std::vector<std::string>& NamePools::Sectors() {
  static const std::vector<std::string> kSectors = {
      "manufacturing", "construction", "retail",     "wholesale",
      "transport",     "hospitality",  "ICT",        "finance",
      "real_estate",   "professional", "agriculture", "energy",
      "health",        "education",    "arts",       "mining"};
  return kSectors;
}

const std::vector<std::string>& NamePools::CompanyNameStems() {
  static const std::vector<std::string> kStems = {
      "Tecno",  "Itala",  "Euro",   "Meta",  "Medi",   "Inter",
      "Gamma",  "Delta",  "Omega",  "Alfa",  "Nova",   "Prima",
      "Centro", "Global", "Mondo",  "Lux",   "Vega",   "Sole",
      "Monte",  "Valle",  "Ponte",  "Porto", "Stella", "Terra"};
  return kStems;
}

namespace {
std::string Pick(const std::vector<std::string>& pool, Rng* rng) {
  return pool[rng->UniformU64(pool.size())];
}
}  // namespace

std::string NamePools::SampleMaleFirstName(Rng* rng) {
  return Pick(MaleFirstNames(), rng);
}
std::string NamePools::SampleFemaleFirstName(Rng* rng) {
  return Pick(FemaleFirstNames(), rng);
}
std::string NamePools::SampleSurname(Rng* rng) {
  return Pick(Surnames(), rng);
}

std::string NamePools::SampleCity(Rng* rng) {
  const auto& cities = Cities();
  // Zipf-like skew: rank r sampled with P(r) ~ 1/r.
  size_t r = static_cast<size_t>(
      rng->PowerLaw(2.0, cities.size()));
  return cities[r - 1];
}

std::string NamePools::SampleLegalForm(Rng* rng) {
  return Pick(LegalForms(), rng);
}
std::string NamePools::SampleSector(Rng* rng) {
  return Pick(Sectors(), rng);
}

std::string NamePools::SampleCompanyName(Rng* rng) {
  std::string name = Pick(CompanyNameStems(), rng);
  switch (rng->UniformU64(3)) {
    case 0: name += Pick(CompanyNameStems(), rng); break;
    case 1: name += Pick(Sectors(), rng); break;
    default: name += std::to_string(rng->UniformU64(100)); break;
  }
  name += " " + Pick(LegalForms(), rng);
  return name;
}

std::string NamePools::Corrupt(std::string s, Rng* rng) {
  if (s.empty()) return s;
  size_t edits = 1 + rng->UniformU64(2);
  for (size_t e = 0; e < edits && !s.empty(); ++e) {
    size_t pos = rng->UniformU64(s.size());
    switch (rng->UniformU64(3)) {
      case 0:  // substitute
        s[pos] = static_cast<char>('a' + rng->UniformU64(26));
        break;
      case 1:  // delete
        s.erase(pos, 1);
        break;
      default:  // insert
        s.insert(pos, 1, static_cast<char>('a' + rng->UniformU64(26)));
        break;
    }
  }
  return s;
}

}  // namespace vadalink::gen
