// Barabási-Albert scale-free graph generation [Barabási & Albert 1999],
// reference [8] of the paper — used for the synthetic scenarios of
// Section 6 (Figures 4b and 4d), where graphs of the same topology as the
// company register but much higher density are needed.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "graph/property_graph.h"

namespace vadalink::gen {

struct BarabasiAlbertConfig {
  size_t nodes = 1000;
  /// Edges attached per incoming node (the density knob): 1 = sparse,
  /// 2 = normal, 8 = dense, 32 = superdense in the Figure 4d scenarios.
  size_t edges_per_node = 2;
  /// true: nodes "Company", edges "Shareholding" (ownership semantics);
  /// false: nodes "Person", edges "Link" (generic similarity workloads).
  bool as_company_graph = true;
  /// Random node features f1..f6 (paper: "6 features out of distributions
  /// respecting their statistical properties").
  size_t feature_count = 6;
  /// Cardinality of each feature's value domain.
  size_t feature_domain = 50;
  uint64_t seed = 1234;
};

/// Generates a BA preferential-attachment graph. Each new node v attaches
/// `edges_per_node` distinct out-edges to existing nodes chosen with
/// probability proportional to their current degree; edges carry a "w"
/// share weight uniform in (0, 1). Degree distribution follows a power law
/// with exponent ~3.
graph::PropertyGraph GenerateBarabasiAlbert(const BarabasiAlbertConfig& cfg);

}  // namespace vadalink::gen
