#include "gen/register_simulator.h"

#include <algorithm>
#include <unordered_map>

#include "gen/name_pools.h"

namespace vadalink::gen {

namespace {

struct Household {
  std::vector<graph::NodeId> adults;    // 1-2 partners
  std::vector<graph::NodeId> children;
  std::string surname;
  std::string city;
};

graph::NodeId AddPerson(graph::PropertyGraph* g, Rng* rng,
                        const std::string& surname, const std::string& city,
                        int64_t birth_year, double typo_rate) {
  graph::NodeId id = g->AddNode(RegisterSchema::kPersonLabel);
  bool male = rng->Bernoulli(0.5);
  std::string first = male ? NamePools::SampleMaleFirstName(rng)
                           : NamePools::SampleFemaleFirstName(rng);
  std::string recorded_surname =
      rng->Bernoulli(typo_rate) ? NamePools::Corrupt(surname, rng) : surname;
  g->SetNodeProperty(id, "first_name", first);
  g->SetNodeProperty(id, "last_name", recorded_surname);
  g->SetNodeProperty(id, "birth_year", birth_year);
  g->SetNodeProperty(id, "birth_city", NamePools::SampleCity(rng));
  g->SetNodeProperty(id, "sex", male ? "M" : "F");
  g->SetNodeProperty(id, "city", city);
  return id;
}

}  // namespace

RegisterData GenerateRegister(const RegisterConfig& config) {
  RegisterData data;
  graph::PropertyGraph& g = data.graph;
  Rng rng(config.seed);

  // ---- persons, grouped into households -------------------------------
  std::vector<Household> households;
  size_t made = 0;
  while (made < config.persons) {
    Household hh;
    hh.surname = NamePools::SampleSurname(&rng);
    hh.city = NamePools::SampleCity(&rng);

    // Household size: geometric-ish around avg_family_size, >= 1.
    size_t size = 1;
    double expected = std::max(1.0, config.avg_family_size);
    while (size < 7 && rng.Bernoulli(1.0 - 1.0 / expected)) ++size;
    size = std::min(size, config.persons - made);

    size_t adults = std::min<size_t>(size >= 2 ? 2 : 1, size);
    int64_t adult_birth = rng.UniformInt(1945, 1985);
    for (size_t a = 0; a < adults; ++a) {
      graph::NodeId p =
          AddPerson(&g, &rng, hh.surname, hh.city,
                    adult_birth + rng.UniformInt(-4, 4), config.typo_rate);
      hh.adults.push_back(p);
      data.persons.push_back(p);
    }
    for (size_t c = adults; c < size; ++c) {
      graph::NodeId p =
          AddPerson(&g, &rng, hh.surname, hh.city,
                    adult_birth + rng.UniformInt(22, 40), config.typo_rate);
      hh.children.push_back(p);
      data.persons.push_back(p);
    }
    made += size;

    // Ground-truth links.
    if (hh.adults.size() == 2) {
      data.true_family_links.push_back(
          {hh.adults[0], hh.adults[1], "PartnerOf"});
    }
    for (graph::NodeId parent : hh.adults) {
      for (graph::NodeId child : hh.children) {
        data.true_family_links.push_back({parent, child, "ParentOf"});
      }
    }
    for (size_t i = 0; i < hh.children.size(); ++i) {
      for (size_t j = i + 1; j < hh.children.size(); ++j) {
        data.true_family_links.push_back(
            {hh.children[i], hh.children[j], "SiblingOf"});
      }
    }
    households.push_back(std::move(hh));
  }

  // ---- companies -------------------------------------------------------
  for (size_t c = 0; c < config.companies; ++c) {
    graph::NodeId id = g.AddNode(RegisterSchema::kCompanyLabel);
    g.SetNodeProperty(id, "name", NamePools::SampleCompanyName(&rng));
    g.SetNodeProperty(id, "city", NamePools::SampleCity(&rng));
    g.SetNodeProperty(id, "legal_form", NamePools::SampleLegalForm(&rng));
    g.SetNodeProperty(id, "sector", NamePools::SampleSector(&rng));
    g.SetNodeProperty(id, "inc_year", rng.UniformInt(1970, 2018));
    data.companies.push_back(id);
  }
  if (data.companies.empty()) return data;

  // ---- shareholding edges ----------------------------------------------
  // Raw (src, dst, raw weight) picks; weights normalised per company later.
  struct RawShare {
    graph::NodeId src, dst;
    double raw;
  };
  std::vector<RawShare> shares;

  // Preferential attachment over companies: repeated-endpoint list.
  std::vector<graph::NodeId> company_endpoints = data.companies;

  size_t total_edges = static_cast<size_t>(
      config.share_density * static_cast<double>(config.companies));
  for (size_t e = 0; e < total_edges; ++e) {
    graph::NodeId dst =
        company_endpoints[rng.UniformU64(company_endpoints.size())];
    graph::NodeId src;
    if (!data.persons.empty() &&
        rng.Bernoulli(config.person_shareholder_fraction)) {
      src = data.persons[rng.UniformU64(data.persons.size())];
    } else {
      src = company_endpoints[rng.UniformU64(company_endpoints.size())];
      if (src == dst && !rng.Bernoulli(config.self_loop_rate * 100.0)) {
        // Avoid incidental self-loops; intentional ones are added below.
        src = data.companies[rng.UniformU64(data.companies.size())];
        if (src == dst) continue;
      }
    }
    shares.push_back({src, dst, rng.UniformDouble(0.2, 1.0)});
    company_endpoints.push_back(dst);
  }

  // Family businesses: every adult of a household invests in one company.
  for (const Household& hh : households) {
    if (hh.adults.size() < 2 || !rng.Bernoulli(config.family_business_rate)) {
      continue;
    }
    graph::NodeId venture =
        data.companies[rng.UniformU64(data.companies.size())];
    for (graph::NodeId adult : hh.adults) {
      shares.push_back({adult, venture, rng.UniformDouble(0.8, 1.2)});
    }
  }

  // Buy-backs: rare self-loops.
  size_t loops = static_cast<size_t>(
      config.self_loop_rate * static_cast<double>(config.companies));
  for (size_t i = 0; i < loops; ++i) {
    graph::NodeId c = data.companies[rng.UniformU64(data.companies.size())];
    shares.push_back({c, c, rng.UniformDouble(0.01, 0.1)});
  }

  // Normalise weights per target company so incoming shares sum to a
  // plausible total (60%-100% of capital covered by the register).
  std::unordered_map<graph::NodeId, double> totals;
  for (const RawShare& s : shares) totals[s.dst] += s.raw;
  std::unordered_map<graph::NodeId, double> coverage;
  for (const RawShare& s : shares) {
    auto it = coverage.find(s.dst);
    if (it == coverage.end()) {
      coverage[s.dst] = rng.UniformDouble(0.6, 1.0);
    }
  }
  for (const RawShare& s : shares) {
    double w = s.raw / totals[s.dst] * coverage[s.dst];
    auto e = g.AddEdge(s.src, s.dst, RegisterSchema::kShareholdingLabel);
    g.SetEdgeProperty(e.value(), RegisterSchema::kWeightKey, w);
    // Type of legal right (Section 2): mostly full ownership, with a tail
    // of bare-ownership / usufruct splits.
    double roll = rng.UniformDouble();
    const char* right = roll < 0.92 ? "ownership"
                        : roll < 0.96 ? "bare_ownership"
                                      : "usufruct";
    g.SetEdgeProperty(e.value(), "right", right);
  }
  return data;
}

}  // namespace vadalink::gen
