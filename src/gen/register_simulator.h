// Synthetic stand-in for the (confidential) Italian company register of
// Section 2 of the paper. Produces a Company Graph (Definition 2.2) with:
//   * person nodes carrying the six features used by the family classifier
//     (first name, surname, birth year, birth city, sex, residence city);
//   * company nodes (name, city, legal form, sector, incorporation year);
//   * scale-free Shareholding edges with share weights normalised per
//     company, plus rare self-loops (the "buy-back" phenomenon);
//   * planted family structure (partners, parents, siblings) returned as
//     ground truth for the recall experiments (Figure 4e).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/property_graph.h"

namespace vadalink::gen {

/// A ground-truth personal connection planted by the simulator.
struct FamilyLink {
  graph::NodeId x;
  graph::NodeId y;
  std::string kind;  // "PartnerOf", "ParentOf", "SiblingOf"
};

struct RegisterConfig {
  size_t persons = 1000;
  size_t companies = 800;
  /// Average household size; families share surname and residence city.
  double avg_family_size = 3.0;
  /// Average incoming shareholding edges per company.
  double share_density = 1.3;
  /// Fraction of shareholding edges whose source is a person.
  double person_shareholder_fraction = 0.55;
  /// Probability a family jointly invests in one company (each adult gets
  /// a share of it) — makes family control/close-link non-trivial.
  double family_business_rate = 0.25;
  /// Probability that a person's recorded surname carries a typo.
  double typo_rate = 0.08;
  /// Probability of a self-loop (company owning its own shares).
  double self_loop_rate = 0.001;
  uint64_t seed = 2020;
};

struct RegisterData {
  graph::PropertyGraph graph;
  std::vector<graph::NodeId> persons;
  std::vector<graph::NodeId> companies;
  std::vector<FamilyLink> true_family_links;
};

/// Node/edge labels and property keys used by the simulator (shared with
/// src/company/ and the input mapping).
struct RegisterSchema {
  static constexpr const char* kPersonLabel = "Person";
  static constexpr const char* kCompanyLabel = "Company";
  static constexpr const char* kShareholdingLabel = "Shareholding";
  static constexpr const char* kWeightKey = "w";
};

/// Generates a register-like dataset.
RegisterData GenerateRegister(const RegisterConfig& config);

}  // namespace vadalink::gen
