// Temporal evolution of the synthetic register: the paper's dataset spans
// 2005-2018 with per-year graphs ("on average, for each year the graph has
// 4.059M nodes and 3.960M edges"). This module simulates that panel:
// companies incorporate and dissolve, shares change hands, new persons
// enter, and a property-graph snapshot is materialised per year.
#pragma once

#include <vector>

#include "common/rng.h"
#include "gen/register_simulator.h"
#include "graph/property_graph.h"

namespace vadalink::gen {

struct EvolutionConfig {
  int first_year = 2005;
  int last_year = 2018;
  /// Initial population (year = first_year).
  RegisterConfig initial;
  /// Fraction of companies incorporated each year (relative to alive).
  double company_birth_rate = 0.06;
  /// Fraction of companies dissolved each year.
  double company_death_rate = 0.045;
  /// Fraction of shareholding edges reassigned to a new owner each year.
  double share_turnover = 0.08;
  /// Fraction of new persons entering each year (relative to current).
  double person_entry_rate = 0.03;
  uint64_t seed = 2005;
};

struct YearlySnapshot {
  int year = 0;
  graph::PropertyGraph graph;
  std::vector<graph::NodeId> persons;
  std::vector<graph::NodeId> companies;
};

/// Simulates the panel; returns one snapshot per year, first_year..last_year
/// inclusive. Node ids are NOT stable across years (each snapshot is a
/// fresh materialisation); stable entity keys are exposed via the "eid"
/// node property (person/company entity index).
std::vector<YearlySnapshot> SimulateEvolution(const EvolutionConfig& config);

}  // namespace vadalink::gen
