// Graphviz DOT export of property graphs for visual inspection of small
// company graphs and their predicted links.
#pragma once

#include <string>

#include "common/status.h"
#include "graph/property_graph.h"

namespace vadalink::graph {

struct DotOptions {
  /// Node property used as the display label ("name" by default; falls
  /// back to the node id).
  std::string label_property = "name";
  /// Render edges with this property set (e.g. "predicted") dashed.
  std::string dashed_property = "predicted";
  /// Show edge weights from this property (empty = none).
  std::string weight_property = "w";
};

/// Renders g as a DOT digraph. Person nodes are boxes, companies ellipses;
/// edge labels/styles follow the options.
std::string ToDot(const PropertyGraph& g, DotOptions options = {});

/// Writes ToDot(g) to a file.
Status WriteDotFile(const PropertyGraph& g, const std::string& path,
                    DotOptions options = {});

}  // namespace vadalink::graph
