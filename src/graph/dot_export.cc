#include "graph/dot_export.h"

#include <fstream>

#include "common/string_util.h"

namespace vadalink::graph {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string ToDot(const PropertyGraph& g, DotOptions options) {
  std::string out = "digraph vadalink {\n  rankdir=LR;\n";
  for (NodeId n = 0; n < g.node_count(); ++n) {
    const PropertyValue& label = g.GetNodeProperty(n, options.label_property);
    std::string text =
        label.is_null() ? "#" + std::to_string(n) : label.ToString();
    const char* shape = g.node_label(n) == "Person" ? "box" : "ellipse";
    out += "  n" + std::to_string(n) + " [label=\"" + Escape(text) +
           "\", shape=" + shape + "];\n";
  }
  g.ForEachEdge([&](EdgeId e) {
    out += "  n" + std::to_string(g.edge_src(e)) + " -> n" +
           std::to_string(g.edge_dst(e));
    std::string attrs;
    std::string label = g.edge_label(e);
    if (!options.weight_property.empty()) {
      const PropertyValue& w = g.GetEdgeProperty(e, options.weight_property);
      if (w.is_numeric()) {
        label += " " + FormatDouble(w.AsNumber());
      }
    }
    attrs += "label=\"" + Escape(label) + "\"";
    if (!options.dashed_property.empty() &&
        g.HasEdgeProperty(e, options.dashed_property)) {
      attrs += ", style=dashed";
    }
    out += " [" + attrs + "];\n";
  });
  out += "}\n";
  return out;
}

Status WriteDotFile(const PropertyGraph& g, const std::string& path,
                    DotOptions options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << ToDot(g, std::move(options));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace vadalink::graph
