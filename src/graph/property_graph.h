// In-memory directed property graph — the extensional component of the
// knowledge graph (Definition 2.1 of the paper), specialised by the company
// graph (Definition 2.2) in src/company/.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/property_value.h"

namespace vadalink::graph {

using NodeId = uint32_t;
using EdgeId = uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Property map for a node or edge: small, string-keyed, typed values.
using PropertyMap = std::unordered_map<std::string, PropertyValue>;

/// A directed property graph with labelled nodes and edges.
///
/// Nodes and edges are addressed by dense integer ids assigned at insertion;
/// edges may be soft-deleted (RemoveEdge) — iteration skips removed edges,
/// ids of removed edges are never reused.
class PropertyGraph {
 public:
  struct Node {
    std::string label;
    PropertyMap properties;
  };

  struct Edge {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::string label;
    PropertyMap properties;
    bool removed = false;
  };

  PropertyGraph() = default;

  // --- construction -------------------------------------------------------

  /// Adds a node with the given label; returns its id.
  NodeId AddNode(std::string label);

  /// Adds a directed edge src -> dst; returns its id, or InvalidArgument if
  /// either endpoint does not exist.
  Result<EdgeId> AddEdge(NodeId src, NodeId dst, std::string label);

  /// Soft-deletes an edge; its id becomes invalid for lookups.
  Status RemoveEdge(EdgeId e);

  /// Pre-allocates internal storage for n nodes / m edges.
  void Reserve(size_t n, size_t m);

  // --- properties ---------------------------------------------------------

  void SetNodeProperty(NodeId n, const std::string& key, PropertyValue value);
  void SetEdgeProperty(EdgeId e, const std::string& key, PropertyValue value);

  /// Returns the property value, or a null PropertyValue if absent.
  const PropertyValue& GetNodeProperty(NodeId n, const std::string& key) const;
  const PropertyValue& GetEdgeProperty(EdgeId e, const std::string& key) const;

  bool HasNodeProperty(NodeId n, const std::string& key) const;
  bool HasEdgeProperty(EdgeId e, const std::string& key) const;

  const PropertyMap& node_properties(NodeId n) const {
    return nodes_[n].properties;
  }
  const PropertyMap& edge_properties(EdgeId e) const {
    return edges_[e].properties;
  }

  // --- topology -----------------------------------------------------------

  size_t node_count() const { return nodes_.size(); }
  /// Live (non-removed) edges.
  size_t edge_count() const { return live_edge_count_; }
  /// Total edge slots ever allocated (upper bound for EdgeId iteration).
  size_t edge_slots() const { return edges_.size(); }

  bool IsValidNode(NodeId n) const { return n < nodes_.size(); }
  bool IsValidEdge(EdgeId e) const {
    return e < edges_.size() && !edges_[e].removed;
  }

  const std::string& node_label(NodeId n) const { return nodes_[n].label; }
  const std::string& edge_label(EdgeId e) const { return edges_[e].label; }
  NodeId edge_src(EdgeId e) const { return edges_[e].src; }
  NodeId edge_dst(EdgeId e) const { return edges_[e].dst; }

  /// Ids of live outgoing edges of n.
  const std::vector<EdgeId>& out_edges(NodeId n) const { return out_[n]; }
  /// Ids of live incoming edges of n.
  const std::vector<EdgeId>& in_edges(NodeId n) const { return in_[n]; }

  size_t out_degree(NodeId n) const { return out_[n].size(); }
  size_t in_degree(NodeId n) const { return in_[n].size(); }

  /// Invokes fn(EdgeId) for each live edge.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      if (!edges_[e].removed) fn(e);
    }
  }

  /// All node ids with the given label.
  std::vector<NodeId> NodesWithLabel(const std::string& label) const;

  /// First live edge src -> dst with the given label, or kInvalidEdge.
  EdgeId FindEdge(NodeId src, NodeId dst, const std::string& label) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  size_t live_edge_count_ = 0;
  static const PropertyValue kNullValue;
};

}  // namespace vadalink::graph
