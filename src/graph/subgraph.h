// Subgraph extraction: induced subgraphs and BFS samples, used to carve
// experiment scenarios out of a full register graph (Section 6.1: "20
// scenarios with subsets from the Italian company graph").
#pragma once

#include <vector>

#include "graph/property_graph.h"

namespace vadalink::graph {

/// Result of a subgraph extraction, with the node id mapping back to the
/// original graph.
struct Subgraph {
  PropertyGraph graph;
  /// new node id -> original node id
  std::vector<NodeId> original_node;
};

/// Induced subgraph on `nodes` (properties and labels are copied; edges with
/// both endpoints in the set are kept).
Subgraph InducedSubgraph(const PropertyGraph& g,
                         const std::vector<NodeId>& nodes);

/// BFS (undirected traversal) sample of up to `target_nodes` nodes starting
/// from `seed`; returns the induced subgraph on the visited set.
Subgraph BfsSample(const PropertyGraph& g, NodeId seed, size_t target_nodes);

}  // namespace vadalink::graph
