// PageRank over the directed property graph: used to rank hub entities of
// the register (the scale-free structure of Section 2 implies a few
// dominant hubs). Power iteration with uniform teleport; dangling-node
// mass is redistributed uniformly.
#pragma once

#include <vector>

#include "graph/property_graph.h"

namespace vadalink::graph {

struct PageRankConfig {
  double damping = 0.85;
  size_t max_iterations = 100;
  /// L1 change below which iteration stops.
  double tolerance = 1e-10;
};

struct PageRankResult {
  std::vector<double> score;  // per node, sums to ~1
  size_t iterations = 0;
  double final_delta = 0.0;
};

PageRankResult PageRank(const PropertyGraph& g, PageRankConfig config = {});

}  // namespace vadalink::graph
