#include "graph/property_graph.h"

#include <algorithm>

namespace vadalink::graph {

const PropertyValue PropertyGraph::kNullValue{};

NodeId PropertyGraph::AddNode(std::string label) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(label), {}});
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

Result<EdgeId> PropertyGraph::AddEdge(NodeId src, NodeId dst,
                                      std::string label) {
  if (!IsValidNode(src) || !IsValidNode(dst)) {
    return Status::InvalidArgument("AddEdge: endpoint out of range");
  }
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{src, dst, std::move(label), {}, false});
  out_[src].push_back(id);
  in_[dst].push_back(id);
  ++live_edge_count_;
  return id;
}

Status PropertyGraph::RemoveEdge(EdgeId e) {
  if (e >= edges_.size()) {
    return Status::InvalidArgument("RemoveEdge: id out of range");
  }
  Edge& edge = edges_[e];
  if (edge.removed) {
    return Status::NotFound("RemoveEdge: already removed");
  }
  edge.removed = true;
  auto erase_from = [e](std::vector<EdgeId>& v) {
    v.erase(std::remove(v.begin(), v.end(), e), v.end());
  };
  erase_from(out_[edge.src]);
  erase_from(in_[edge.dst]);
  --live_edge_count_;
  return Status::OK();
}

void PropertyGraph::Reserve(size_t n, size_t m) {
  nodes_.reserve(n);
  out_.reserve(n);
  in_.reserve(n);
  edges_.reserve(m);
}

void PropertyGraph::SetNodeProperty(NodeId n, const std::string& key,
                                    PropertyValue value) {
  nodes_[n].properties[key] = std::move(value);
}

void PropertyGraph::SetEdgeProperty(EdgeId e, const std::string& key,
                                    PropertyValue value) {
  edges_[e].properties[key] = std::move(value);
}

const PropertyValue& PropertyGraph::GetNodeProperty(
    NodeId n, const std::string& key) const {
  auto it = nodes_[n].properties.find(key);
  return it == nodes_[n].properties.end() ? kNullValue : it->second;
}

const PropertyValue& PropertyGraph::GetEdgeProperty(
    EdgeId e, const std::string& key) const {
  auto it = edges_[e].properties.find(key);
  return it == edges_[e].properties.end() ? kNullValue : it->second;
}

bool PropertyGraph::HasNodeProperty(NodeId n, const std::string& key) const {
  return nodes_[n].properties.count(key) > 0;
}

bool PropertyGraph::HasEdgeProperty(EdgeId e, const std::string& key) const {
  return edges_[e].properties.count(key) > 0;
}

std::vector<NodeId> PropertyGraph::NodesWithLabel(
    const std::string& label) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].label == label) out.push_back(n);
  }
  return out;
}

EdgeId PropertyGraph::FindEdge(NodeId src, NodeId dst,
                               const std::string& label) const {
  if (!IsValidNode(src)) return kInvalidEdge;
  for (EdgeId e : out_[src]) {
    if (edges_[e].dst == dst && edges_[e].label == label) return e;
  }
  return kInvalidEdge;
}

}  // namespace vadalink::graph
