#include "graph/graph_algorithms.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

namespace vadalink::graph {

namespace {

/// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

  size_t SizeOf(uint32_t x) { return size_[Find(x)]; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<size_t> size_;
};

}  // namespace

SccResult StronglyConnectedComponents(const PropertyGraph& g) {
  const size_t n = g.node_count();
  SccResult res;
  res.component.assign(n, 0);
  if (n == 0) return res;

  constexpr uint32_t kUnvisited = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  uint32_t next_index = 0;

  // Iterative Tarjan: explicit DFS frames (node, position in out-edge list).
  struct Frame {
    NodeId node;
    size_t edge_pos;
  };
  std::vector<Frame> dfs;
  std::vector<size_t> comp_sizes;

  for (NodeId start = 0; start < n; ++start) {
    if (index[start] != kUnvisited) continue;
    dfs.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;

    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto& outs = g.out_edges(f.node);
      if (f.edge_pos < outs.size()) {
        NodeId w = g.edge_dst(outs[f.edge_pos]);
        ++f.edge_pos;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[w]);
        }
      } else {
        NodeId v = f.node;
        dfs.pop_back();
        if (!dfs.empty()) {
          lowlink[dfs.back().node] =
              std::min(lowlink[dfs.back().node], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          size_t size = 0;
          uint32_t comp_id = static_cast<uint32_t>(comp_sizes.size());
          for (;;) {
            NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            res.component[w] = comp_id;
            ++size;
            if (w == v) break;
          }
          comp_sizes.push_back(size);
        }
      }
    }
  }
  res.count = comp_sizes.size();
  res.largest_size =
      comp_sizes.empty() ? 0 : *std::max_element(comp_sizes.begin(),
                                                 comp_sizes.end());
  return res;
}

WccResult WeaklyConnectedComponents(const PropertyGraph& g) {
  const size_t n = g.node_count();
  WccResult res;
  res.component.assign(n, 0);
  if (n == 0) return res;

  UnionFind uf(n);
  g.ForEachEdge([&](EdgeId e) { uf.Union(g.edge_src(e), g.edge_dst(e)); });

  // Re-number roots densely.
  std::vector<uint32_t> root_to_id(n, std::numeric_limits<uint32_t>::max());
  std::vector<size_t> sizes;
  for (NodeId v = 0; v < n; ++v) {
    uint32_t r = uf.Find(v);
    if (root_to_id[r] == std::numeric_limits<uint32_t>::max()) {
      root_to_id[r] = static_cast<uint32_t>(sizes.size());
      sizes.push_back(0);
    }
    res.component[v] = root_to_id[r];
    ++sizes[root_to_id[r]];
  }
  res.count = sizes.size();
  res.largest_size =
      sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  return res;
}

double GlobalClusteringCoefficient(const PropertyGraph& g) {
  const size_t n = g.node_count();
  if (n == 0) return 0.0;

  // Build undirected simple adjacency (dedup, drop self-loops).
  std::vector<std::vector<NodeId>> adj(n);
  g.ForEachEdge([&](EdgeId e) {
    NodeId a = g.edge_src(e), b = g.edge_dst(e);
    if (a == b) return;
    adj[a].push_back(b);
    adj[b].push_back(a);
  });
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }

  // Count triangles via forward (degree-ordered) neighbour intersection.
  auto rank_less = [&](NodeId a, NodeId b) {
    return adj[a].size() != adj[b].size() ? adj[a].size() < adj[b].size()
                                          : a < b;
  };
  uint64_t triangles = 0;
  uint64_t triples = 0;
  std::vector<std::vector<NodeId>> fwd(n);
  for (NodeId v = 0; v < n; ++v) {
    size_t d = adj[v].size();
    triples += d >= 2 ? d * (d - 1) / 2 : 0;
    for (NodeId w : adj[v]) {
      if (rank_less(v, w)) fwd[v].push_back(w);
    }
    std::sort(fwd[v].begin(), fwd[v].end());
  }
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : fwd[v]) {
      // |fwd[v] ∩ fwd[w]|
      const auto& a = fwd[v];
      const auto& b = fwd[w];
      size_t i = 0, j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
          ++i;
        } else if (a[i] > b[j]) {
          ++j;
        } else {
          ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  if (triples == 0) return 0.0;
  return 3.0 * static_cast<double>(triangles) / static_cast<double>(triples);
}

double PowerLawAlpha(const PropertyGraph& g, size_t min_degree) {
  if (min_degree < 1) min_degree = 1;
  double sum_log = 0.0;
  size_t count = 0;
  const double xmin = static_cast<double>(min_degree);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    size_t d = g.in_degree(v) + g.out_degree(v);
    if (d >= min_degree) {
      sum_log += std::log(static_cast<double>(d) / (xmin - 0.5));
      ++count;
    }
  }
  if (count < 2 || sum_log <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(count) / sum_log;
}

GraphStats ComputeGraphStats(const PropertyGraph& g) {
  GraphStats s;
  s.nodes = g.node_count();
  s.edges = g.edge_count();

  SccResult scc = StronglyConnectedComponents(g);
  s.scc_count = scc.count;
  s.largest_scc = scc.largest_size;
  s.avg_scc_size =
      scc.count == 0 ? 0.0
                     : static_cast<double>(s.nodes) /
                           static_cast<double>(scc.count);

  WccResult wcc = WeaklyConnectedComponents(g);
  s.wcc_count = wcc.count;
  s.largest_wcc = wcc.largest_size;
  s.avg_wcc_size =
      wcc.count == 0 ? 0.0
                     : static_cast<double>(s.nodes) /
                           static_cast<double>(wcc.count);

  for (NodeId v = 0; v < g.node_count(); ++v) {
    s.max_in_degree = std::max(s.max_in_degree, g.in_degree(v));
    s.max_out_degree = std::max(s.max_out_degree, g.out_degree(v));
  }
  if (s.nodes > 0) {
    s.avg_in_degree = static_cast<double>(s.edges) / s.nodes;
    s.avg_out_degree = s.avg_in_degree;
  }
  s.clustering_coefficient = GlobalClusteringCoefficient(g);
  size_t loops = 0;
  g.ForEachEdge([&](EdgeId e) {
    if (g.edge_src(e) == g.edge_dst(e)) ++loops;
  });
  s.self_loops = loops;
  s.power_law_alpha = PowerLawAlpha(g, 2);
  return s;
}

std::vector<size_t> DegreeHistogram(const PropertyGraph& g) {
  std::vector<size_t> hist;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    size_t d = g.in_degree(v) + g.out_degree(v);
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

}  // namespace vadalink::graph
