#include "graph/property_value.h"

#include <cstdlib>

#include "common/hash.h"
#include "common/string_util.h"

namespace vadalink::graph {

std::string PropertyValue::ToString() const {
  switch (type()) {
    case Type::kNull: return "null";
    case Type::kBool: return AsBool() ? "true" : "false";
    case Type::kInt: return std::to_string(AsInt());
    case Type::kDouble: return FormatDouble(AsDouble());
    case Type::kString: return AsString();
  }
  return "?";
}

std::string PropertyValue::Encode() const {
  switch (type()) {
    case Type::kNull: return "n:";
    case Type::kBool: return AsBool() ? "b:1" : "b:0";
    case Type::kInt: return "i:" + std::to_string(AsInt());
    case Type::kDouble: return "d:" + FormatDouble(AsDouble());
    case Type::kString: return "s:" + AsString();
  }
  return "n:";
}

Result<PropertyValue> PropertyValue::Decode(const std::string& encoded) {
  if (encoded.size() < 2 || encoded[1] != ':') {
    return Status::ParseError("bad property encoding: " + encoded);
  }
  std::string payload = encoded.substr(2);
  switch (encoded[0]) {
    case 'n': return PropertyValue();
    case 'b': return PropertyValue(payload == "1");
    case 'i': {
      char* end = nullptr;
      long long v = std::strtoll(payload.c_str(), &end, 10);
      if (end == payload.c_str() || *end != '\0') {
        return Status::ParseError("bad int property: " + encoded);
      }
      return PropertyValue(static_cast<int64_t>(v));
    }
    case 'd': {
      char* end = nullptr;
      double v = std::strtod(payload.c_str(), &end);
      if (end == payload.c_str() || *end != '\0') {
        return Status::ParseError("bad double property: " + encoded);
      }
      return PropertyValue(v);
    }
    case 's': return PropertyValue(std::move(payload));
    default:
      return Status::ParseError("unknown property type prefix: " + encoded);
  }
}

uint64_t PropertyValue::Hash() const {
  uint64_t h = static_cast<uint64_t>(type());
  switch (type()) {
    case Type::kNull: break;
    case Type::kBool: h = HashCombine(h, AsBool() ? 1 : 0); break;
    case Type::kInt:
      h = HashCombine(h, static_cast<uint64_t>(AsInt()));
      break;
    case Type::kDouble: {
      double d = AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      h = HashCombine(h, bits);
      break;
    }
    case Type::kString: h = HashCombine(h, Fnv1a64(AsString())); break;
  }
  return HashFinalize(h);
}

const char* PropertyTypeName(PropertyValue::Type t) {
  switch (t) {
    case PropertyValue::Type::kNull: return "null";
    case PropertyValue::Type::kBool: return "bool";
    case PropertyValue::Type::kInt: return "int";
    case PropertyValue::Type::kDouble: return "double";
    case PropertyValue::Type::kString: return "string";
  }
  return "?";
}

}  // namespace vadalink::graph
