#include "graph/subgraph.h"

#include <deque>
#include <unordered_map>

namespace vadalink::graph {

Subgraph InducedSubgraph(const PropertyGraph& g,
                         const std::vector<NodeId>& nodes) {
  Subgraph out;
  out.graph.Reserve(nodes.size(), nodes.size());
  std::unordered_map<NodeId, NodeId> to_new;
  to_new.reserve(nodes.size());
  for (NodeId old_id : nodes) {
    NodeId new_id = out.graph.AddNode(g.node_label(old_id));
    for (const auto& [k, v] : g.node_properties(old_id)) {
      out.graph.SetNodeProperty(new_id, k, v);
    }
    to_new[old_id] = new_id;
    out.original_node.push_back(old_id);
  }
  g.ForEachEdge([&](EdgeId e) {
    auto s = to_new.find(g.edge_src(e));
    auto d = to_new.find(g.edge_dst(e));
    if (s == to_new.end() || d == to_new.end()) return;
    auto new_e = out.graph.AddEdge(s->second, d->second, g.edge_label(e));
    for (const auto& [k, v] : g.edge_properties(e)) {
      out.graph.SetEdgeProperty(new_e.value(), k, v);
    }
  });
  return out;
}

Subgraph BfsSample(const PropertyGraph& g, NodeId seed, size_t target_nodes) {
  std::vector<NodeId> visited_order;
  if (g.IsValidNode(seed) && target_nodes > 0) {
    std::vector<bool> visited(g.node_count(), false);
    std::deque<NodeId> queue{seed};
    visited[seed] = true;
    while (!queue.empty() && visited_order.size() < target_nodes) {
      NodeId v = queue.front();
      queue.pop_front();
      visited_order.push_back(v);
      auto visit = [&](NodeId w) {
        if (!visited[w]) {
          visited[w] = true;
          queue.push_back(w);
        }
      };
      for (EdgeId e : g.out_edges(v)) visit(g.edge_dst(e));
      for (EdgeId e : g.in_edges(v)) visit(g.edge_src(e));
    }
  }
  return InducedSubgraph(g, visited_order);
}

}  // namespace vadalink::graph
