#include "graph/pagerank.h"

#include <cmath>

namespace vadalink::graph {

PageRankResult PageRank(const PropertyGraph& g, PageRankConfig config) {
  PageRankResult res;
  const size_t n = g.node_count();
  if (n == 0) return res;

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  const double teleport = (1.0 - config.damping) / static_cast<double>(n);

  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    res.iterations = iter + 1;
    // Dangling mass: nodes without out-edges spread uniformly.
    double dangling = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (g.out_degree(v) == 0) dangling += rank[v];
    }
    double base = teleport + config.damping * dangling / n;
    std::fill(next.begin(), next.end(), base);
    for (NodeId v = 0; v < n; ++v) {
      size_t deg = g.out_degree(v);
      if (deg == 0) continue;
      double share = config.damping * rank[v] / static_cast<double>(deg);
      for (EdgeId e : g.out_edges(v)) {
        next[g.edge_dst(e)] += share;
      }
    }
    double delta = 0.0;
    for (size_t v = 0; v < n; ++v) delta += std::fabs(next[v] - rank[v]);
    rank.swap(next);
    res.final_delta = delta;
    if (delta < config.tolerance) break;
  }
  res.score = std::move(rank);
  return res;
}

}  // namespace vadalink::graph
