#include "graph/graph_io.h"

#include <cstdlib>
#include <map>

#include "common/csv.h"
#include "common/fault_injection.h"

namespace vadalink::graph {

namespace {

// Properties are emitted in sorted key order so output is deterministic.
void AppendProperties(const PropertyMap& props,
                      std::vector<std::string>* row) {
  std::map<std::string, const PropertyValue*> sorted;
  for (const auto& [k, v] : props) sorted[k] = &v;
  for (const auto& [k, v] : sorted) {
    row->push_back(k + "=" + v->Encode());
  }
}

Status ParseProperties(const std::vector<std::string>& row, size_t start,
                       PropertyMap* out) {
  for (size_t i = start; i < row.size(); ++i) {
    const std::string& cell = row[i];
    if (cell.empty()) continue;
    size_t eq = cell.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("property cell missing '=': " + cell);
    }
    auto value = PropertyValue::Decode(cell.substr(eq + 1));
    if (!value.ok()) return value.status();
    (*out)[cell.substr(0, eq)] = std::move(value).value();
  }
  return Status::OK();
}

Result<uint32_t> ParseU32(const std::string& s) {
  char* end = nullptr;
  unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v > 0xffffffffUL) {
    return Status::ParseError("bad integer: " + s);
  }
  return static_cast<uint32_t>(v);
}

}  // namespace

Status SaveGraphCsv(const PropertyGraph& g, const std::string& nodes_path,
                    const std::string& edges_path) {
  VL_FAULT_POINT("graph_io.save_csv");
  std::vector<std::vector<std::string>> node_rows;
  node_rows.reserve(g.node_count());
  for (NodeId n = 0; n < g.node_count(); ++n) {
    std::vector<std::string> row{std::to_string(n), g.node_label(n)};
    AppendProperties(g.node_properties(n), &row);
    node_rows.push_back(std::move(row));
  }
  VL_RETURN_NOT_OK(WriteCsvFile(nodes_path, node_rows));

  std::vector<std::vector<std::string>> edge_rows;
  edge_rows.reserve(g.edge_count());
  g.ForEachEdge([&](EdgeId e) {
    std::vector<std::string> row{
        std::to_string(e), std::to_string(g.edge_src(e)),
        std::to_string(g.edge_dst(e)), g.edge_label(e)};
    AppendProperties(g.edge_properties(e), &row);
    edge_rows.push_back(std::move(row));
  });
  return WriteCsvFile(edges_path, edge_rows);
}

Result<PropertyGraph> LoadGraphCsv(const std::string& nodes_path,
                                   const std::string& edges_path) {
  VL_FAULT_POINT("graph_io.load_csv");
  VL_ASSIGN_OR_RETURN(auto node_rows, ReadCsvFile(nodes_path));
  VL_ASSIGN_OR_RETURN(auto edge_rows, ReadCsvFile(edges_path));

  PropertyGraph g;
  g.Reserve(node_rows.size(), edge_rows.size());
  for (const auto& row : node_rows) {
    if (row.size() < 2) return Status::ParseError("node row too short");
    VL_ASSIGN_OR_RETURN(uint32_t id, ParseU32(row[0]));
    if (id != g.node_count()) {
      return Status::ParseError("node ids must be dense and ordered, got " +
                                row[0]);
    }
    NodeId n = g.AddNode(row[1]);
    PropertyMap props;
    VL_RETURN_NOT_OK(ParseProperties(row, 2, &props));
    for (auto& [k, v] : props) g.SetNodeProperty(n, k, std::move(v));
  }
  for (const auto& row : edge_rows) {
    if (row.size() < 4) return Status::ParseError("edge row too short");
    VL_ASSIGN_OR_RETURN(uint32_t src, ParseU32(row[1]));
    VL_ASSIGN_OR_RETURN(uint32_t dst, ParseU32(row[2]));
    VL_ASSIGN_OR_RETURN(EdgeId e, g.AddEdge(src, dst, row[3]));
    PropertyMap props;
    VL_RETURN_NOT_OK(ParseProperties(row, 4, &props));
    for (auto& [k, v] : props) g.SetEdgeProperty(e, k, std::move(v));
  }
  return g;
}

}  // namespace vadalink::graph
