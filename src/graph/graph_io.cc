#include "graph/graph_io.h"

#include <cstdlib>
#include <map>

#include "common/csv.h"
#include "common/fault_injection.h"

namespace vadalink::graph {

namespace {

// Properties are emitted in sorted key order so output is deterministic.
void AppendProperties(const PropertyMap& props,
                      std::vector<std::string>* row) {
  std::map<std::string, const PropertyValue*> sorted;
  for (const auto& [k, v] : props) sorted[k] = &v;
  for (const auto& [k, v] : sorted) {
    row->push_back(k + "=" + v->Encode());
  }
}

Status ParseProperties(const std::vector<std::string>& row, size_t start,
                       PropertyMap* out) {
  for (size_t i = start; i < row.size(); ++i) {
    const std::string& cell = row[i];
    if (cell.empty()) continue;
    size_t eq = cell.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("property cell missing '=': " + cell);
    }
    auto value = PropertyValue::Decode(cell.substr(eq + 1));
    if (!value.ok()) return value.status();
    (*out)[cell.substr(0, eq)] = std::move(value).value();
  }
  return Status::OK();
}

Result<uint32_t> ParseU32(const std::string& s) {
  char* end = nullptr;
  unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v > 0xffffffffUL) {
    return Status::ParseError("bad integer: '" + s + "'");
  }
  return static_cast<uint32_t>(v);
}

/// Prefixes an error with "<path>:<line>: " so a bad row in a large dump
/// is findable. Preserves the original code.
Status AtLine(const std::string& path, size_t line, const Status& st) {
  std::string msg = path + ":" + std::to_string(line) + ": " + st.message();
  switch (st.code()) {
    case StatusCode::kIoError: return Status::IoError(std::move(msg));
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    default: return Status::ParseError(std::move(msg));
  }
}

}  // namespace

Status SaveGraphCsv(const PropertyGraph& g, const std::string& nodes_path,
                    const std::string& edges_path) {
  VL_FAULT_POINT("graph_io.save_csv");
  std::vector<std::vector<std::string>> node_rows;
  node_rows.reserve(g.node_count());
  for (NodeId n = 0; n < g.node_count(); ++n) {
    std::vector<std::string> row{std::to_string(n), g.node_label(n)};
    AppendProperties(g.node_properties(n), &row);
    node_rows.push_back(std::move(row));
  }
  VL_RETURN_NOT_OK(WriteCsvFile(nodes_path, node_rows));

  std::vector<std::vector<std::string>> edge_rows;
  edge_rows.reserve(g.edge_count());
  g.ForEachEdge([&](EdgeId e) {
    std::vector<std::string> row{
        std::to_string(e), std::to_string(g.edge_src(e)),
        std::to_string(g.edge_dst(e)), g.edge_label(e)};
    AppendProperties(g.edge_properties(e), &row);
    edge_rows.push_back(std::move(row));
  });
  return WriteCsvFile(edges_path, edge_rows);
}

Result<PropertyGraph> LoadGraphCsv(const std::string& nodes_path,
                                   const std::string& edges_path) {
  VL_FAULT_POINT("graph_io.load_csv");
  VL_ASSIGN_OR_RETURN(auto node_doc, ReadCsvDocument(nodes_path));
  VL_ASSIGN_OR_RETURN(auto edge_doc, ReadCsvDocument(edges_path));

  PropertyGraph g;
  g.Reserve(node_doc.rows.size(), edge_doc.rows.size());
  for (size_t r = 0; r < node_doc.rows.size(); ++r) {
    const auto& row = node_doc.rows[r];
    const size_t line = node_doc.row_lines[r];
    if (row.size() < 2) {
      return AtLine(nodes_path, line,
                    Status::ParseError("node row too short (need id,label, got " +
                                       std::to_string(row.size()) +
                                       " field(s)); file truncated?"));
    }
    auto id = ParseU32(row[0]);
    if (!id.ok()) return AtLine(nodes_path, line, id.status());
    if (*id != g.node_count()) {
      return AtLine(nodes_path, line,
                    Status::ParseError(
                        "node ids must be dense and ordered: expected " +
                        std::to_string(g.node_count()) + ", got " + row[0]));
    }
    NodeId n = g.AddNode(row[1]);
    PropertyMap props;
    if (Status st = ParseProperties(row, 2, &props); !st.ok()) {
      return AtLine(nodes_path, line, st);
    }
    for (auto& [k, v] : props) g.SetNodeProperty(n, k, std::move(v));
  }
  for (size_t r = 0; r < edge_doc.rows.size(); ++r) {
    const auto& row = edge_doc.rows[r];
    const size_t line = edge_doc.row_lines[r];
    if (row.size() < 4) {
      return AtLine(edges_path, line,
                    Status::ParseError(
                        "edge row too short (need id,src,dst,label, got " +
                        std::to_string(row.size()) +
                        " field(s)); file truncated?"));
    }
    auto src = ParseU32(row[1]);
    if (!src.ok()) return AtLine(edges_path, line, src.status());
    auto dst = ParseU32(row[2]);
    if (!dst.ok()) return AtLine(edges_path, line, dst.status());
    auto e = g.AddEdge(*src, *dst, row[3]);
    if (!e.ok()) return AtLine(edges_path, line, e.status());
    PropertyMap props;
    if (Status st = ParseProperties(row, 4, &props); !st.ok()) {
      return AtLine(edges_path, line, st);
    }
    for (auto& [k, v] : props) g.SetEdgeProperty(*e, k, std::move(v));
  }
  return g;
}

}  // namespace vadalink::graph
