// Structural graph analytics used to characterise datasets: the statistics
// reported for the Italian company register in Section 2 of the paper
// (SCC/WCC structure, degree extremes, clustering coefficient, self-loops,
// power-law exponent).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/property_graph.h"

namespace vadalink::graph {

/// Strongly connected components (iterative Tarjan).
///
/// Returns a component id in [0, count) per node; ids are assigned in
/// reverse topological order of the condensation.
struct SccResult {
  std::vector<uint32_t> component;  // node -> scc id
  size_t count = 0;
  /// Number of nodes in the largest component.
  size_t largest_size = 0;
};
SccResult StronglyConnectedComponents(const PropertyGraph& g);

/// Weakly connected components via union-find.
struct WccResult {
  std::vector<uint32_t> component;  // node -> wcc id
  size_t count = 0;
  size_t largest_size = 0;
};
WccResult WeaklyConnectedComponents(const PropertyGraph& g);

/// Global (transitivity) clustering coefficient of the underlying
/// undirected simple graph: 3 * #triangles / #connected-triples.
double GlobalClusteringCoefficient(const PropertyGraph& g);

/// Maximum-likelihood estimate of the power-law exponent alpha for the
/// (total-)degree distribution, alpha = 1 + n / sum ln(d_i / (dmin - 0.5))
/// over degrees >= dmin (Clauset, Shalizi & Newman 2009, Eq. 3.7).
/// Returns 0 if fewer than 2 nodes qualify.
double PowerLawAlpha(const PropertyGraph& g, size_t min_degree = 1);

/// The dataset statistics reported in Section 2 of the paper.
struct GraphStats {
  size_t nodes = 0;
  size_t edges = 0;
  size_t scc_count = 0;
  size_t largest_scc = 0;
  double avg_scc_size = 0.0;
  size_t wcc_count = 0;
  size_t largest_wcc = 0;
  double avg_wcc_size = 0.0;
  double avg_in_degree = 0.0;
  double avg_out_degree = 0.0;
  size_t max_in_degree = 0;
  size_t max_out_degree = 0;
  double clustering_coefficient = 0.0;
  size_t self_loops = 0;
  double power_law_alpha = 0.0;
};
GraphStats ComputeGraphStats(const PropertyGraph& g);

/// Degree histogram: index d -> number of nodes with total degree d.
std::vector<size_t> DegreeHistogram(const PropertyGraph& g);

}  // namespace vadalink::graph
