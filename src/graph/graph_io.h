// CSV (de)serialisation of property graphs. Format:
//   nodes file : id,label[,key=<enc>...]      (enc = PropertyValue::Encode)
//   edges file : id,src,dst,label[,key=<enc>...]
// Node ids must be dense 0..n-1 in the nodes file; edge ids are re-assigned
// on load (removed edges are not persisted).
#pragma once

#include <string>

#include "common/status.h"
#include "graph/property_graph.h"

namespace vadalink::graph {

/// Serialises g to nodes/edges CSV files.
Status SaveGraphCsv(const PropertyGraph& g, const std::string& nodes_path,
                    const std::string& edges_path);

/// Loads a graph previously written by SaveGraphCsv. Malformed or
/// truncated input fails with kParseError naming the file and line of the
/// offending row; open/read failures surface as kIoError. Fault sites:
/// "graph_io.load_csv" (plus "csv.read_file" underneath).
Result<PropertyGraph> LoadGraphCsv(const std::string& nodes_path,
                                   const std::string& edges_path);

}  // namespace vadalink::graph
