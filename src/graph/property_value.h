// Typed property values attached to property-graph nodes and edges
// (the V set of Definition 2.1 in the paper).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace vadalink::graph {

/// A dynamically-typed property value: null, bool, int, double or string.
class PropertyValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString };

  PropertyValue() : v_(std::monostate{}) {}
  PropertyValue(bool b) : v_(b) {}                      // NOLINT
  PropertyValue(int64_t i) : v_(i) {}                   // NOLINT
  PropertyValue(int i) : v_(static_cast<int64_t>(i)) {} // NOLINT
  PropertyValue(double d) : v_(d) {}                    // NOLINT
  PropertyValue(std::string s) : v_(std::move(s)) {}    // NOLINT
  PropertyValue(const char* s) : v_(std::string(s)) {}  // NOLINT

  Type type() const {
    switch (v_.index()) {
      case 0: return Type::kNull;
      case 1: return Type::kBool;
      case 2: return Type::kInt;
      case 3: return Type::kDouble;
      default: return Type::kString;
    }
  }

  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_string() const { return type() == Type::kString; }
  /// Int or double.
  bool is_numeric() const { return is_int() || is_double(); }

  /// Precondition: matching type.
  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric widening: int or double as double. Precondition: is_numeric().
  double AsNumber() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDouble();
  }

  /// Human-readable rendering; strings are unquoted.
  std::string ToString() const;

  /// Round-trippable encoding with a one-character type prefix
  /// ("i:42", "d:0.5", "s:acme", "b:1", "n:").
  std::string Encode() const;

  /// Inverse of Encode().
  static Result<PropertyValue> Decode(const std::string& encoded);

  bool operator==(const PropertyValue& other) const { return v_ == other.v_; }
  bool operator!=(const PropertyValue& other) const { return !(*this == other); }

  /// Stable hash consistent with operator==.
  uint64_t Hash() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> v_;
};

const char* PropertyTypeName(PropertyValue::Type t);

}  // namespace vadalink::graph
