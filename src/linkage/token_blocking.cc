#include "linkage/token_blocking.h"

#include <cctype>
#include <map>

#include "common/string_util.h"

namespace vadalink::linkage {

std::vector<std::string> TokenizeKey(const std::string& s,
                                     bool case_insensitive) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += case_insensitive
                     ? static_cast<char>(
                           std::tolower(static_cast<unsigned char>(c)))
                     : c;
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::vector<graph::NodeId>> TokenBlocks(
    const graph::PropertyGraph& g, const std::vector<graph::NodeId>& nodes,
    const TokenBlockingConfig& config) {
  // Pass 1: document frequency per token.
  std::unordered_map<std::string, size_t> df;
  std::vector<std::vector<std::string>> tokens_of(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const graph::PropertyValue& v =
        g.GetNodeProperty(nodes[i], config.property);
    if (!v.is_string()) continue;
    tokens_of[i] = TokenizeKey(v.AsString(), config.case_insensitive);
    // Count each token once per node.
    std::vector<std::string> seen;
    for (const std::string& t : tokens_of[i]) {
      bool dup = false;
      for (const std::string& s : seen) {
        if (s == t) dup = true;
      }
      if (!dup) {
        ++df[t];
        seen.push_back(t);
      }
    }
  }
  const size_t stop_threshold = static_cast<size_t>(
      config.stopword_fraction * static_cast<double>(nodes.size()));

  // Pass 2: every usable token of a node contributes the node to that
  // token's block (overlapping blocks, dropped stop words).
  std::map<std::string, std::vector<graph::NodeId>> blocks;
  size_t singleton = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    bool placed = false;
    std::vector<std::string> used;
    for (const std::string& t : tokens_of[i]) {
      size_t f = df[t];
      if (config.stopword_fraction < 1.0 && f > stop_threshold) continue;
      bool dup = false;
      for (const std::string& u : used) {
        if (u == t) dup = true;
      }
      if (dup) continue;
      used.push_back(t);
      blocks[t].push_back(nodes[i]);
      placed = true;
    }
    if (!placed) {
      blocks["\x01singleton" + std::to_string(singleton++)].push_back(
          nodes[i]);
    }
  }
  std::vector<std::vector<graph::NodeId>> out;
  out.reserve(blocks.size());
  for (auto& [token, members] : blocks) out.push_back(std::move(members));
  return out;
}

}  // namespace vadalink::linkage
