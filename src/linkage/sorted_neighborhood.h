// Sorted-neighborhood blocking (Hernández & Stolfo), the classic
// record-linkage alternative to hash blocking: nodes are sorted by a key
// and candidate pairs come from a sliding window over the sorted order.
// Unlike hash blocking it tolerates small key differences (typos near the
// end of the key), at the cost of window-size-bounded recall for larger
// ones — a pluggable #GenerateBlocks variant in the paper's terms.
#pragma once

#include <string>
#include <vector>

#include "graph/property_graph.h"

namespace vadalink::linkage {

struct SortedNeighborhoodConfig {
  /// Properties concatenated (in order) into the sort key.
  std::vector<std::string> keys;
  /// Sliding window size w: each node pairs with its w-1 successors.
  size_t window = 5;
  bool case_insensitive = true;
};

/// Candidate pairs from one pass of the sliding window over `nodes`
/// (deterministic; pairs reported once with the lower sort position
/// first).
std::vector<std::pair<graph::NodeId, graph::NodeId>>
SortedNeighborhoodPairs(const graph::PropertyGraph& g,
                        const std::vector<graph::NodeId>& nodes,
                        const SortedNeighborhoodConfig& config);

/// The sort key of a node under `config` (exposed for tests).
std::string SortKeyOf(const graph::PropertyGraph& g, graph::NodeId n,
                      const SortedNeighborhoodConfig& config);

}  // namespace vadalink::linkage
