#include "linkage/sorted_neighborhood.h"

#include <algorithm>

#include "common/string_util.h"

namespace vadalink::linkage {

std::string SortKeyOf(const graph::PropertyGraph& g, graph::NodeId n,
                      const SortedNeighborhoodConfig& config) {
  std::string key;
  for (const std::string& prop : config.keys) {
    const graph::PropertyValue& v = g.GetNodeProperty(n, prop);
    std::string part = v.ToString();
    if (config.case_insensitive) part = ToLower(part);
    key += part;
    key += '\x1f';  // unit separator: keeps fields from bleeding together
  }
  return key;
}

std::vector<std::pair<graph::NodeId, graph::NodeId>>
SortedNeighborhoodPairs(const graph::PropertyGraph& g,
                        const std::vector<graph::NodeId>& nodes,
                        const SortedNeighborhoodConfig& config) {
  std::vector<std::pair<std::string, graph::NodeId>> keyed;
  keyed.reserve(nodes.size());
  for (graph::NodeId n : nodes) {
    keyed.push_back({SortKeyOf(g, n, config), n});
  }
  std::sort(keyed.begin(), keyed.end());

  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  if (config.window < 2 || keyed.size() < 2) return pairs;
  for (size_t i = 0; i < keyed.size(); ++i) {
    size_t hi = std::min(keyed.size(), i + config.window);
    for (size_t j = i + 1; j < hi; ++j) {
      pairs.push_back({keyed[i].second, keyed[j].second});
    }
  }
  return pairs;
}

}  // namespace vadalink::linkage
