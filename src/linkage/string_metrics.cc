#include "linkage/string_metrics.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>
#include <vector>

#include "common/hash.h"

namespace vadalink::linkage {

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t m = a.size(), n = b.size();
  if (m == 0) return n;
  std::vector<size_t> row(m + 1);
  for (size_t i = 0; i <= m; ++i) row[i] = i;
  for (size_t j = 1; j <= n; ++j) {
    size_t diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= m; ++i) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      size_t next = std::min({row[i] + 1, row[i - 1] + 1, diag + cost});
      diag = row[i];
      row[i] = next;
    }
  }
  return row[m];
}

double NormalizedLevenshtein(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(Levenshtein(a, b)) /
         static_cast<double>(longest);
}

double Jaro(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  // Match window: floor(max(|a|,|b|) / 2) - 1, but never below 1 — the
  // textbook clamp. Clamping to 0 instead made length-2/3 pairs such as
  // "AB"/"BA" score 0 rather than their Jaro value (0.8333 there).
  size_t half = std::max(a.size(), b.size()) / 2;
  size_t window = half > 1 ? half - 1 : 1;

  std::vector<bool> a_matched(a.size(), false), b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() +
          (m - transpositions / 2.0) / m) /
         3.0;
}

double JaroWinkler(std::string_view a, std::string_view b) {
  double jaro = Jaro(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + 0.1 * static_cast<double>(prefix) * (1.0 - jaro);
}

std::string Soundex(std::string_view s) {
  auto code_of = [](char c) -> char {
    switch (std::toupper(static_cast<unsigned char>(c))) {
      case 'B': case 'F': case 'P': case 'V': return '1';
      case 'C': case 'G': case 'J': case 'K':
      case 'Q': case 'S': case 'X': case 'Z': return '2';
      case 'D': case 'T': return '3';
      case 'L': return '4';
      case 'M': case 'N': return '5';
      case 'R': return '6';
      default: return '0';  // vowels, H, W, Y, non-letters
    }
  };
  size_t i = 0;
  while (i < s.size() &&
         !std::isalpha(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  if (i == s.size()) return "0000";

  std::string out;
  out += static_cast<char>(std::toupper(static_cast<unsigned char>(s[i])));
  char last = code_of(s[i]);
  for (++i; i < s.size() && out.size() < 4; ++i) {
    char c = s[i];
    if (!std::isalpha(static_cast<unsigned char>(c))) continue;
    char code = code_of(c);
    char upper = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (upper == 'H' || upper == 'W') continue;  // transparent to adjacency
    if (code != '0' && code != last) out += code;
    last = code;
  }
  while (out.size() < 4) out += '0';
  return out;
}

double NgramJaccard(std::string_view a, std::string_view b, size_t n) {
  if (n == 0) n = 1;
  auto grams = [n](std::string_view s) {
    std::unordered_set<uint64_t> out;
    if (s.size() >= n) {
      for (size_t i = 0; i + n <= s.size(); ++i) {
        out.insert(Fnv1a64(s.substr(i, n)));
      }
    } else if (!s.empty()) {
      out.insert(Fnv1a64(s));
    }
    return out;
  };
  auto ga = grams(a);
  auto gb = grams(b);
  if (ga.empty() && gb.empty()) return 1.0;
  size_t inter = 0;
  for (uint64_t g : ga) inter += gb.count(g);
  size_t uni = ga.size() + gb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

}  // namespace vadalink::linkage
