#include "linkage/blocking.h"

#include <map>

#include "common/hash.h"
#include "common/string_util.h"

namespace vadalink::linkage {

uint64_t Blocker::BlockOf(const graph::PropertyGraph& g,
                          graph::NodeId n) const {
  uint64_t h = 0x6c696e6b61676521ULL;
  for (const std::string& key : config_.keys) {
    const graph::PropertyValue& v = g.GetNodeProperty(n, key);
    if (v.is_string()) {
      std::string s = config_.case_insensitive ? ToLower(v.AsString())
                                               : v.AsString();
      if (config_.prefix_length > 0 && s.size() > config_.prefix_length) {
        s.resize(config_.prefix_length);
      }
      h = HashCombine(h, Fnv1a64(s));
    } else {
      h = HashCombine(h, v.Hash());
    }
  }
  h = HashFinalize(h);
  if (config_.max_blocks > 0) h %= config_.max_blocks;
  return h;
}

std::vector<uint64_t> Blocker::BlockAll(const graph::PropertyGraph& g,
                                        const RunContext* run_ctx) const {
  std::vector<uint64_t> out;
  out.reserve(g.node_count());
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    if (!CheckRun(run_ctx).ok()) break;
    out.push_back(BlockOf(g, n));
  }
  return out;
}

std::vector<std::vector<graph::NodeId>> Blocker::GroupByBlock(
    const graph::PropertyGraph& g, const std::vector<graph::NodeId>& nodes,
    const RunContext* run_ctx) const {
  std::map<uint64_t, std::vector<graph::NodeId>> groups;
  for (graph::NodeId n : nodes) {
    if (!CheckRun(run_ctx).ok()) break;
    groups[BlockOf(g, n)].push_back(n);
  }
  std::vector<std::vector<graph::NodeId>> out;
  out.reserve(groups.size());
  for (auto& [id, members] : groups) out.push_back(std::move(members));
  return out;
}

}  // namespace vadalink::linkage
