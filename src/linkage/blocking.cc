#include "linkage/blocking.h"

#include <map>

#include "common/hash.h"
#include "common/string_util.h"

namespace vadalink::linkage {

uint64_t Blocker::BlockOf(const graph::PropertyGraph& g,
                          graph::NodeId n) const {
  uint64_t h = 0x6c696e6b61676521ULL;
  for (const std::string& key : config_.keys) {
    const graph::PropertyValue& v = g.GetNodeProperty(n, key);
    if (v.is_string()) {
      std::string s = config_.case_insensitive ? ToLower(v.AsString())
                                               : v.AsString();
      if (config_.prefix_length > 0 && s.size() > config_.prefix_length) {
        s.resize(config_.prefix_length);
      }
      h = HashCombine(h, Fnv1a64(s));
    } else {
      h = HashCombine(h, v.Hash());
    }
  }
  h = HashFinalize(h);
  if (config_.max_blocks > 0) h %= config_.max_blocks;
  return h;
}

Result<std::vector<uint64_t>> Blocker::BlockAll(const graph::PropertyGraph& g,
                                                const RunContext* run_ctx,
                                                ThreadPool* pool) const {
  std::vector<uint64_t> out(g.node_count());
  VL_RETURN_NOT_OK(ParallelFor(
      pool, g.node_count(), 0, run_ctx,
      [&](size_t begin, size_t end, size_t) {
        for (size_t n = begin; n < end; ++n) {
          VL_RETURN_NOT_OK(CheckRun(run_ctx));
          out[n] = BlockOf(g, static_cast<graph::NodeId>(n));
        }
        return Status::OK();
      }));
  return out;
}

Result<std::vector<std::vector<graph::NodeId>>> Blocker::GroupByBlock(
    const graph::PropertyGraph& g, const std::vector<graph::NodeId>& nodes,
    const RunContext* run_ctx, ThreadPool* pool,
    MetricsRegistry* metrics) const {
  // Ids are computed in parallel (BlockOf is pure, writes disjoint); the
  // grouping merge stays sequential so block order is deterministic.
  std::vector<uint64_t> ids(nodes.size());
  VL_RETURN_NOT_OK(ParallelFor(
      pool, nodes.size(), 0, run_ctx,
      [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          VL_RETURN_NOT_OK(CheckRun(run_ctx));
          ids[i] = BlockOf(g, nodes[i]);
        }
        return Status::OK();
      }));
  std::map<uint64_t, std::vector<graph::NodeId>> groups;
  for (size_t i = 0; i < nodes.size(); ++i) {
    groups[ids[i]].push_back(nodes[i]);
  }
  std::vector<std::vector<graph::NodeId>> out;
  out.reserve(groups.size());
  for (auto& [id, members] : groups) out.push_back(std::move(members));
  // Recorded at the sequential merge so the counts and the block-size
  // distribution are identical at every thread count.
  MetricAdd(metrics, "linkage.blocks.created", out.size());
  if (metrics != nullptr) {
    MetricsHistogram* sizes = metrics->Histogram("linkage.block.size");
    for (const auto& members : out) sizes->Record(members.size());
  }
  return out;
}

}  // namespace vadalink::linkage
