// Feature schema for node comparison: which properties of a node matter,
// how to measure the distance between two values, and the per-feature
// calibration of the Bayesian link classifier (Section 2, formula for
// p_i = P(L | d(f_i^x, f_i^y) < T_i)).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/property_graph.h"

namespace vadalink::linkage {

/// Distance function applied to a pair of feature values.
enum class FeatureMetric {
  kExact,                  // 0 if equal, 1 otherwise
  kNormalizedLevenshtein,  // [0,1] edit distance on strings
  kJaroWinklerDistance,    // 1 - JaroWinkler, strings
  kAbsoluteDifference,     // |a - b| on numerics
  kSoundexExact,           // 0 if same Soundex code, 1 otherwise
};

const char* FeatureMetricName(FeatureMetric m);

/// One comparable feature.
struct FeatureDef {
  std::string property;    // node property key
  FeatureMetric metric = FeatureMetric::kExact;
  /// Distance threshold T_i: evidence is "close" when d < threshold.
  double threshold = 0.5;
  /// p_i = P(link | d < T_i) — probability of a link given closeness.
  double prob_if_close = 0.8;
  /// P(link | d >= T_i) — probability of a link given the feature differs.
  double prob_if_far = 0.1;
};

/// Distance between two property values under a metric. Missing (null)
/// values yield the maximal distance 1.0 (or +inf for kAbsoluteDifference
/// semantics, capped to a large constant).
double FeatureDistance(const graph::PropertyValue& a,
                       const graph::PropertyValue& b, FeatureMetric metric);

/// A named bundle of feature definitions.
class FeatureSchema {
 public:
  FeatureSchema() = default;
  explicit FeatureSchema(std::vector<FeatureDef> features)
      : features_(std::move(features)) {}

  const std::vector<FeatureDef>& features() const { return features_; }
  std::vector<FeatureDef>* mutable_features() { return &features_; }
  void Add(FeatureDef def) { features_.push_back(std::move(def)); }
  size_t size() const { return features_.size(); }

  /// Per-feature distances between two nodes of `g`.
  std::vector<double> Distances(const graph::PropertyGraph& g,
                                graph::NodeId x, graph::NodeId y) const;

  /// Per-feature closeness indicators (distance < threshold).
  std::vector<bool> CloseFlags(const graph::PropertyGraph& g,
                               graph::NodeId x, graph::NodeId y) const;

 private:
  std::vector<FeatureDef> features_;
};

}  // namespace vadalink::linkage
