#include "linkage/feature.h"

#include <cmath>

#include "linkage/string_metrics.h"

namespace vadalink::linkage {

const char* FeatureMetricName(FeatureMetric m) {
  switch (m) {
    case FeatureMetric::kExact: return "exact";
    case FeatureMetric::kNormalizedLevenshtein: return "levenshtein";
    case FeatureMetric::kJaroWinklerDistance: return "jaro_winkler";
    case FeatureMetric::kAbsoluteDifference: return "abs_diff";
    case FeatureMetric::kSoundexExact: return "soundex";
  }
  return "?";
}

double FeatureDistance(const graph::PropertyValue& a,
                       const graph::PropertyValue& b, FeatureMetric metric) {
  constexpr double kMissing = 1.0;
  constexpr double kNumericMissing = 1e18;
  if (a.is_null() || b.is_null()) {
    return metric == FeatureMetric::kAbsoluteDifference ? kNumericMissing
                                                        : kMissing;
  }
  switch (metric) {
    case FeatureMetric::kExact:
      return a == b ? 0.0 : 1.0;
    case FeatureMetric::kNormalizedLevenshtein: {
      if (!a.is_string() || !b.is_string()) return a == b ? 0.0 : 1.0;
      return NormalizedLevenshtein(a.AsString(), b.AsString());
    }
    case FeatureMetric::kJaroWinklerDistance: {
      if (!a.is_string() || !b.is_string()) return a == b ? 0.0 : 1.0;
      return 1.0 - JaroWinkler(a.AsString(), b.AsString());
    }
    case FeatureMetric::kAbsoluteDifference: {
      if (!a.is_numeric() || !b.is_numeric()) return kNumericMissing;
      return std::fabs(a.AsNumber() - b.AsNumber());
    }
    case FeatureMetric::kSoundexExact: {
      if (!a.is_string() || !b.is_string()) return a == b ? 0.0 : 1.0;
      return Soundex(a.AsString()) == Soundex(b.AsString()) ? 0.0 : 1.0;
    }
  }
  return kMissing;
}

std::vector<double> FeatureSchema::Distances(const graph::PropertyGraph& g,
                                             graph::NodeId x,
                                             graph::NodeId y) const {
  std::vector<double> out;
  out.reserve(features_.size());
  for (const FeatureDef& f : features_) {
    out.push_back(FeatureDistance(g.GetNodeProperty(x, f.property),
                                  g.GetNodeProperty(y, f.property),
                                  f.metric));
  }
  return out;
}

std::vector<bool> FeatureSchema::CloseFlags(const graph::PropertyGraph& g,
                                            graph::NodeId x,
                                            graph::NodeId y) const {
  std::vector<bool> out;
  out.reserve(features_.size());
  for (size_t i = 0; i < features_.size(); ++i) {
    double d = FeatureDistance(g.GetNodeProperty(x, features_[i].property),
                               g.GetNodeProperty(y, features_[i].property),
                               features_[i].metric);
    out.push_back(d < features_[i].threshold);
  }
  return out;
}

}  // namespace vadalink::linkage
