// #GenerateBlocks — the paper's second-level, feature-based blocking
// (Section 4.2): a deterministic mapping of a node's feature vector to a
// block identifier, restricting candidate comparison to nodes that share
// both the first-level (embedding) cluster and the block.
//
// The `max_blocks` knob restricts the hash domain, which is exactly the
// mechanism the paper uses in Section 6.1 to sweep the number of clusters
// (Figures 4c / 4e).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/run_context.h"
#include "common/status.h"
#include "graph/property_graph.h"

namespace vadalink::linkage {

struct BlockingConfig {
  /// Node property keys concatenated into the blocking key. Missing
  /// properties hash as null.
  std::vector<std::string> keys;
  /// If > 0, block ids are folded into [0, max_blocks): fewer, larger
  /// blocks. If 0, every distinct key combination is its own block.
  size_t max_blocks = 0;
  /// Normalise string values to lower case before hashing.
  bool case_insensitive = true;
  /// For string values, hash only the first `prefix_length` characters
  /// (0 = whole string). Classic record-linkage prefix blocking.
  size_t prefix_length = 0;
};

/// Deterministic blocker.
class Blocker {
 public:
  explicit Blocker(BlockingConfig config) : config_(std::move(config)) {}

  const BlockingConfig& config() const { return config_; }
  BlockingConfig* mutable_config() { return &config_; }

  /// Block id of one node.
  uint64_t BlockOf(const graph::PropertyGraph& g, graph::NodeId n) const;

  /// Block ids for all nodes of the graph. An optional RunContext is
  /// polled per node; when it trips, its trip Status (kDeadlineExceeded,
  /// kResourceExhausted or kCancelled) is returned instead of a partial
  /// vector. A multi-thread `pool` computes ids over node chunks (BlockOf
  /// is pure, writes are disjoint — output is identical at every thread
  /// count).
  Result<std::vector<uint64_t>> BlockAll(const graph::PropertyGraph& g,
                                         const RunContext* run_ctx = nullptr,
                                         ThreadPool* pool = nullptr) const;

  /// Groups `nodes` by block id; returns the list of blocks (each a list
  /// of node ids), ordered deterministically by block id. An optional
  /// RunContext is polled per node; when it trips, its trip Status is
  /// returned instead of a partial grouping. A multi-thread `pool`
  /// parallelizes the id computation; grouping stays sequential, so the
  /// output is identical at every thread count. `metrics` (nullable)
  /// receives linkage.blocks.created plus the linkage.block.size
  /// distribution.
  Result<std::vector<std::vector<graph::NodeId>>> GroupByBlock(
      const graph::PropertyGraph& g, const std::vector<graph::NodeId>& nodes,
      const RunContext* run_ctx = nullptr, ThreadPool* pool = nullptr,
      MetricsRegistry* metrics = nullptr) const;

 private:
  BlockingConfig config_;
};

}  // namespace vadalink::linkage
