// Multi-feature Bayesian link classifier with Graham combination — the
// paper's model for detecting personal/family connections (Section 2):
//
//   p_i = P(L_xy | d(f_i^x, f_i^y) < T_i)
//   p   = (prod p_i) / (prod p_i + prod (1 - p_i))       [Graham]
//
// Each feature contributes p_i when the pair is "close" on that feature
// and P(L | far) otherwise; p_i itself can be estimated from training data
// via Bayes' rule from P(d < T | L), P(d < T) and the prior P(L).
#pragma once

#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/run_context.h"
#include "common/status.h"
#include "graph/property_graph.h"
#include "linkage/feature.h"

namespace vadalink::linkage {

/// Labeled training pair for calibration.
struct TrainingPair {
  graph::NodeId x;
  graph::NodeId y;
  bool linked;
};

class BayesLinkClassifier {
 public:
  explicit BayesLinkClassifier(FeatureSchema schema)
      : schema_(std::move(schema)) {}

  const FeatureSchema& schema() const { return schema_; }

  /// Combined link probability for a node pair via Graham combination of
  /// the per-feature evidence probabilities.
  double LinkProbability(const graph::PropertyGraph& g, graph::NodeId x,
                         graph::NodeId y) const;

  /// Combined probability from precomputed closeness flags (one per
  /// feature, schema order).
  double CombineEvidence(const std::vector<bool>& close_flags) const;

  /// LinkProbability for every pair, in input order. An optional
  /// RunContext is polled per pair (its trip Status is returned); a
  /// multi-thread `pool` scores pair chunks concurrently (the classifier
  /// is read-only, writes are disjoint — output is identical at every
  /// thread count). `metrics` (nullable) receives linkage.pairs.scored.
  Result<std::vector<double>> ScorePairs(
      const graph::PropertyGraph& g,
      const std::vector<std::pair<graph::NodeId, graph::NodeId>>& pairs,
      const RunContext* run_ctx = nullptr, ThreadPool* pool = nullptr,
      MetricsRegistry* metrics = nullptr) const;

  /// Graham combination of arbitrary probabilities (exposed for tests and
  /// for the #LinkProbability Vadalog function).
  static double GrahamCombine(const std::vector<double>& probs);

  /// Calibrates prob_if_close / prob_if_far of every feature from labeled
  /// pairs using Bayes' rule:
  ///   P(L | close) = P(close | L) P(L) / P(close)
  /// with add-one smoothing; `prior` is P(L). Features never observed
  /// close (or far) keep their current calibration.
  void EstimateFromTraining(const graph::PropertyGraph& g,
                            const std::vector<TrainingPair>& pairs,
                            double prior);

 private:
  FeatureSchema schema_;
};

}  // namespace vadalink::linkage
