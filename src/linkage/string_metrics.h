// String similarity metrics from the record-linkage literature, used by the
// family-link Bayesian classifier (Section 2 of the paper uses Levenshtein
// distance between name features).
#pragma once

#include <string>
#include <string_view>

namespace vadalink::linkage {

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
size_t Levenshtein(std::string_view a, std::string_view b);

/// Levenshtein normalised into [0,1]: distance / max(len); 0 for two empty
/// strings.
double NormalizedLevenshtein(std::string_view a, std::string_view b);

/// Jaro similarity in [0,1].
double Jaro(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0,1] with standard prefix scaling (0.1, max
/// prefix 4).
double JaroWinkler(std::string_view a, std::string_view b);

/// American Soundex code (letter + 3 digits, e.g. "R163"); empty input
/// yields "0000".
std::string Soundex(std::string_view s);

/// Jaccard similarity of the character n-gram sets of the two strings.
double NgramJaccard(std::string_view a, std::string_view b, size_t n = 2);

}  // namespace vadalink::linkage
