// Token blocking for multi-token string keys (company names such as
// "Tecno Gamma SRL"): each node joins one block per distinctive token of
// its key (overlapping blocks), while ubiquitous tokens (legal-form
// suffixes, "Italia", ...) are dropped as stop words so they cannot flood
// blocks — the classic token blocking of the record-linkage literature, as
// a third #GenerateBlocks variant beside hash and sorted-neighborhood
// blocking.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/property_graph.h"

namespace vadalink::linkage {

struct TokenBlockingConfig {
  /// Node property holding the multi-token string key.
  std::string property = "name";
  /// Tokens occurring in more than this fraction of nodes are ignored as
  /// stop words (legal forms etc.). 1.0 disables the filter.
  double stopword_fraction = 0.25;
  bool case_insensitive = true;
};

/// Builds one (overlapping) block per non-stopword token; a node appears
/// in the block of every usable token of its key. Nodes whose key has no
/// usable token each form a singleton block. Blocks are returned in
/// deterministic (token-lexicographic) order; blocks of size 1 are kept
/// (they simply generate no candidate pairs).
std::vector<std::vector<graph::NodeId>> TokenBlocks(
    const graph::PropertyGraph& g, const std::vector<graph::NodeId>& nodes,
    const TokenBlockingConfig& config);

/// Tokenizes a key: splits on non-alphanumeric characters, optionally
/// lower-casing (exposed for tests).
std::vector<std::string> TokenizeKey(const std::string& s,
                                     bool case_insensitive);

}  // namespace vadalink::linkage
