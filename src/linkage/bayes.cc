#include "linkage/bayes.h"

#include <algorithm>
#include <array>

namespace vadalink::linkage {

namespace {
// Clamp away from {0,1} so one saturated feature cannot dominate the
// product irrecoverably (standard practice in Graham-style combiners).
double Clamp01(double p) { return std::clamp(p, 0.01, 0.99); }
}  // namespace

double BayesLinkClassifier::GrahamCombine(const std::vector<double>& probs) {
  if (probs.empty()) return 0.5;
  double prod = 1.0, inv_prod = 1.0;
  for (double p : probs) {
    p = Clamp01(p);
    prod *= p;
    inv_prod *= 1.0 - p;
  }
  return prod / (prod + inv_prod);
}

double BayesLinkClassifier::CombineEvidence(
    const std::vector<bool>& close_flags) const {
  std::vector<double> probs;
  probs.reserve(schema_.size());
  const auto& features = schema_.features();
  for (size_t i = 0; i < features.size() && i < close_flags.size(); ++i) {
    probs.push_back(close_flags[i] ? features[i].prob_if_close
                                   : features[i].prob_if_far);
  }
  return GrahamCombine(probs);
}

double BayesLinkClassifier::LinkProbability(const graph::PropertyGraph& g,
                                            graph::NodeId x,
                                            graph::NodeId y) const {
  return CombineEvidence(schema_.CloseFlags(g, x, y));
}

Result<std::vector<double>> BayesLinkClassifier::ScorePairs(
    const graph::PropertyGraph& g,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& pairs,
    const RunContext* run_ctx, ThreadPool* pool,
    MetricsRegistry* metrics) const {
  std::vector<double> out(pairs.size());
  VL_RETURN_NOT_OK(ParallelFor(
      pool, pairs.size(), 0, run_ctx,
      [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          VL_RETURN_NOT_OK(CheckRun(run_ctx));
          out[i] = LinkProbability(g, pairs[i].first, pairs[i].second);
        }
        return Status::OK();
      }));
  // Counted once after the loop: the loop either scored every pair or
  // returned the trip Status above, so the total is exact and
  // thread-count invariant.
  MetricAdd(metrics, "linkage.pairs.scored", pairs.size());
  return out;
}

void BayesLinkClassifier::EstimateFromTraining(
    const graph::PropertyGraph& g, const std::vector<TrainingPair>& pairs,
    double prior) {
  if (pairs.empty()) return;
  prior = std::clamp(prior, 1e-6, 1.0 - 1e-6);
  const size_t nf = schema_.size();
  // counts[i] = {close&linked, close&unlinked, far&linked, far&unlinked}
  std::vector<std::array<double, 4>> counts(nf, {1.0, 1.0, 1.0, 1.0});
  size_t linked_total = 0;
  for (const TrainingPair& pair : pairs) {
    std::vector<bool> close = schema_.CloseFlags(g, pair.x, pair.y);
    if (pair.linked) ++linked_total;
    for (size_t i = 0; i < nf; ++i) {
      size_t idx = (close[i] ? 0 : 2) + (pair.linked ? 0 : 1);
      counts[i][idx] += 1.0;
    }
  }
  (void)linked_total;

  auto& defs = *schema_.mutable_features();
  for (size_t i = 0; i < nf; ++i) {
    double cl = counts[i][0], cu = counts[i][1];
    double fl = counts[i][2], fu = counts[i][3];
    double p_close_given_link = cl / (cl + fl);
    double p_close_given_nolink = cu / (cu + fu);
    double p_close = p_close_given_link * prior +
                     p_close_given_nolink * (1.0 - prior);
    double p_far = 1.0 - p_close;
    if (p_close > 0.0) {
      defs[i].prob_if_close =
          Clamp01(p_close_given_link * prior / p_close);
    }
    if (p_far > 0.0) {
      defs[i].prob_if_far =
          Clamp01((1.0 - p_close_given_link) * prior / p_far);
    }
  }
}

}  // namespace vadalink::linkage
