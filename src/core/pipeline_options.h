// PipelineOptions — the single aggregate of every pipeline knob.
//
// Before this header, concurrency, augmentation, embedding, blocking and
// reasoning options were plumbed per module (AugmentConfig here,
// EngineOptions there, ad-hoc CLI flags everywhere). PipelineOptions
// gathers them into one struct with one validation point, and the shared
// ParallelOptions configured once flows into both the augmentation stages
// and the reasoning engine.
//
//   core::PipelineOptions opts;
//   opts.parallel.threads = 8;
//   VL_RETURN_NOT_OK(opts.Validate());
//   core::VadaLink vl = core::MakeDefaultVadaLink(opts.EffectiveAugment());
//   kg.set_parallel(opts.parallel);
#pragma once

#include <string>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/status.h"
#include "core/vada_link.h"
#include "datalog/engine.h"

namespace vadalink::core {

struct PipelineOptions {
  /// Concurrency, configured once. Applied to the augmentation pipeline
  /// (walks, skip-gram, k-means, blocking, pairwise scoring) and to the
  /// reasoning engine's delta joins alike. threads = 1 (default) keeps
  /// every stage on its sequential legacy path.
  ParallelOptions parallel;

  /// Augmentation (Algorithm 1) knobs, including the embedding and
  /// blocking stage configs. augment.parallel is overwritten by `parallel`
  /// in EffectiveAugment() — set concurrency once, here.
  AugmentConfig augment;

  /// Reasoning knobs. engine.run_ctx and engine.pool are per-run wiring
  /// and are filled in by EffectiveEngine(), not here.
  datalog::EngineOptions engine;

  /// Observability (DESIGN.md section 8). `metrics` is a borrowed sink for
  /// every instrumented stage (nullptr = observability off; must outlive
  /// the runs that use it); EffectiveEngine() forwards it, and callers
  /// pass it to Augment() / Reason() themselves. The remaining knobs
  /// mirror the CLI: `metrics_json_path` (--metrics-json) is where the
  /// driver writes the registry's JSON document after the run, `trace`
  /// (--trace) asks for the human-readable span-tree report, and
  /// `metrics_wall` (--metrics-wall) opts wall-clock timings into the JSON
  /// (off by default so the document stays byte-stable run-to-run).
  MetricsRegistry* metrics = nullptr;
  std::string metrics_json_path;
  bool trace = false;
  bool metrics_wall = false;

  /// The single validation point for the whole pipeline: checks the
  /// concurrency bounds, the embedding/blocking stage configs and the
  /// engine limits. Returns kInvalidArgument with a field-specific
  /// message on the first violation.
  Status Validate() const;

  /// `augment` with the shared `parallel` applied.
  AugmentConfig EffectiveAugment() const;

  /// `engine` with the shared governor/pool wiring applied. `pool` may be
  /// nullptr (sequential); it must outlive the engine run.
  datalog::EngineOptions EffectiveEngine(const RunContext* run_ctx,
                                         ThreadPool* pool) const;
};

/// Deprecated alias kept for call sites written against the pre-aggregate
/// name; new code should spell PipelineOptions.
using PipelineConfig [[deprecated("use PipelineOptions")]] = PipelineOptions;

}  // namespace vadalink::core
