#include "core/vadalog_programs.h"

#include "common/string_util.h"

namespace vadalink::core {

std::string ControlProgram(double threshold) {
  // Algorithm 5. ctrl(X, X) seeds every shareholder (the paper's Rule (1)
  // restricted to companies; the seed for persons is what makes P1/P2
  // control their subsidiaries in Figures 1/2). The msum accumulates the
  // jointly-held VOTING share per (X, Y) group over distinct holders Z
  // (bare-ownership shares carry no vote and are absent from voting/3).
  std::string t = FormatDouble(threshold);
  return std::string(R"(
% ---- company control (Definition 2.3 / Algorithm 5) ----
company(X) -> ctrl(X, X).
person(X) -> ctrl(X, X).
ctrl(X, Z), voting(Z, Y, W), S = msum(W, <Z>), S > )") + t + R"( -> ctrl(X, Y).
ctrl(X, Y), X != Y -> control(X, Y).
@output("control").
)";
}

std::string CloseLinkProgram(double threshold, size_t max_depth) {
  // Algorithm 6 under the depth-bounded walk-sum semantics: walk(X,Y,P,D)
  // carries the product P of one ownership walk of length D; msum folds
  // the walk products into accumulated ownership. Distinct walks with an
  // identical (product, depth) signature for the same pair collapse under
  // set semantics — exact for generic (non-degenerate) weights, see
  // DESIGN.md open choice #1.
  std::string t = FormatDouble(threshold);
  std::string d = std::to_string(max_depth);
  return std::string(R"(
% ---- close links (Definitions 2.5/2.6 / Algorithm 6) ----
own(X, Y, W) -> walk(X, Y, W, 1).
walk(X, Z, P, D), own(Z, Y, W), D < )") + d + R"(, P2 = P * W, D2 = D + 1
  -> walk(X, Y, P2, D2).
walk(X, Y, P, D), S = msum(P, <P, D>) -> accown(X, Y, S).
accown(X, Y, S), S >= )" + t + R"(, company(X), company(Y), X != Y
  -> closelink(X, Y).
closelink(X, Y) -> closelink(Y, X).
accown(Z, X, S1), S1 >= )" + t + R"(, accown(Z, Y, S2), S2 >= )" + t + R"(,
  X != Y, company(X), company(Y) -> closelink(X, Y).
@output("closelink").
)";
}

std::string FamilyControlProgram(double threshold) {
  // Algorithm 8: the family F acts as a single centre of interest; its
  // members and the companies it controls contribute to one msum per
  // (F, Y) group.
  std::string t = FormatDouble(threshold);
  return std::string(R"(
% ---- family control (Definition 2.8 / Algorithm 8) ----
familymember(F, P) -> fctrl(F, P).
fctrl(F, Z), voting(Z, Y, W), S = msum(W, <Z>), S > )") + t + R"( -> fctrl(F, Y).
fctrl(F, Y), company(Y) -> familycontrol(F, Y).
@output("familycontrol").
)";
}

std::string InputPromotionProgram() {
  // Algorithm 2: promotion of the domain encoding into generic graph
  // constructs, with Skolem OIDs (deterministic, injective, tag-disjoint)
  // and existential link ids.
  return R"(
% ---- input mapping (Algorithm 2) ----
company(X), Z = #sk("c", X) -> gnode(Z), gnodetype(Z, "Company").
person(X),  Z = #sk("p", X) -> gnode(Z), gnodetype(Z, "Person").
own(X, Y, W), person(X), S = #sk("p", X), T = #sk("c", Y)
  -> glink(L, S, T, W), gedgetype(L, "pers_share").
own(X, Y, W), company(X), S = #sk("c", X), T = #sk("c", Y)
  -> glink(L, S, T, W), gedgetype(L, "comp_share").
@output("glink").
)";
}

}  // namespace vadalink::core
