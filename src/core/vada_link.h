// VadaLink — the KG augmentation framework (Algorithm 1 of the paper).
//
// Each round:
//   1. first-level clustering: node2vec embedding + k-means
//      (#GraphEmbedClust), recomputed on the current graph so edges
//      predicted in earlier rounds improve the embedding (the paper's
//      reinforcement principle);
//   2. second-level blocking: feature hashing (#GenerateBlocks) within
//      each embedding cluster;
//   3. pairwise Candidate evaluation inside every block, and global
//      Candidate evaluation (control / close links) once per round;
//   4. predicted links are added as typed edges; the loop repeats until a
//      round adds nothing or max_rounds is reached.
#pragma once

#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/run_context.h"
#include "common/status.h"
#include "core/candidates.h"
#include "core/link_class.h"
#include "embed/embed_clusterer.h"
#include "graph/property_graph.h"
#include "linkage/blocking.h"

namespace vadalink::core {

struct AugmentConfig {
  embed::EmbedClusterConfig embedding;
  linkage::BlockingConfig blocking;
  /// Upper bound on augmentation rounds (the fixpoint usually closes in
  /// 2-3 rounds on register-like data).
  size_t max_rounds = 3;
  /// Ablation knobs: disable the first-level embedding clustering and/or
  /// the second-level feature blocking. With both off, every pair of nodes
  /// is compared ("no cluster mode" of Section 6.2).
  bool use_embedding = true;
  bool use_blocking = true;
  /// Share of the run's remaining wall-clock granted to the embedding
  /// stage each round (when Augment() runs under a RunContext deadline).
  /// An embedding stage that exhausts its sub-deadline degrades the round
  /// to feature-blocking-only instead of sinking the whole run.
  double embed_deadline_fraction = 0.5;
  /// Optional per-round work budget for the embedding stage, in stage
  /// units (node2vec walks + k-means iterations). 0 = unlimited. Exceeding
  /// it degrades the round exactly like a sub-deadline expiry.
  size_t embed_work_budget = 0;
  /// Concurrency of the embedding, blocking and pairwise-candidate stages.
  /// threads = 1 (the default) keeps the sequential legacy path and
  /// reproduces today's byte-identical outputs; with use_embedding = false
  /// the committed links are identical at *every* thread count (the
  /// hogwild skip-gram stage is the only nondeterministic parallel stage).
  ParallelOptions parallel;
};

struct AugmentStats {
  size_t rounds = 0;
  size_t links_added = 0;
  size_t pairs_compared = 0;
  size_t first_level_clusters = 0;
  size_t second_level_blocks = 0;
  double embed_seconds = 0.0;
  double block_seconds = 0.0;
  double candidate_seconds = 0.0;
  /// Rounds that fell back to feature-blocking-only after the embedding
  /// stage hit its sub-deadline or sub-budget.
  size_t degraded_rounds = 0;
  /// Deadline trips observed anywhere in the run (stage or whole-run).
  size_t deadline_hits = 0;
  /// True when the run stopped before its natural fixpoint (deadline,
  /// budget or cancellation). Links committed by completed work remain in
  /// the graph; `interrupt` carries the Status that stopped the run.
  bool truncated = false;
  Status interrupt;
};

class VadaLink {
 public:
  explicit VadaLink(AugmentConfig config) : config_(std::move(config)) {}

  /// Registers a candidate implementation (order preserved).
  void AddCandidate(std::unique_ptr<Candidate> candidate) {
    candidates_.push_back(std::move(candidate));
  }

  const AugmentConfig& config() const { return config_; }
  AugmentConfig* mutable_config() { return &config_; }

  /// Runs Algorithm 1 on `g`, adding predicted edges in place.
  ///
  /// `run_ctx` (nullptr = unlimited) governs the run: a deadline, a work
  /// budget (one unit per compared pair, plus embedding stage units) or a
  /// cancellation request stops the loop *gracefully* — links committed by
  /// completed work stay in `g`, the call still returns OK with stats, and
  /// `truncated` / `deadline_hits` / `degraded_rounds` report what was cut
  /// short. Only real errors (e.g. a failing candidate or an injected
  /// fault) surface as a non-OK Result.
  ///
  /// `metrics` (nullable) receives the augment.* / linkage.* counters and
  /// the augment/round#/{embed,block,candidates} span tree (embed nests
  /// walks / skipgram / kmeans beneath it); see DESIGN.md section 8.
  Result<AugmentStats> Augment(graph::PropertyGraph* g,
                               const RunContext* run_ctx = nullptr,
                               MetricsRegistry* metrics = nullptr);

 private:
  /// Adds a predicted link if absent; returns true if added.
  static bool AddLink(graph::PropertyGraph* g, const PredictedLink& link);

  AugmentConfig config_;
  std::vector<std::unique_ptr<Candidate>> candidates_;
};

/// Convenience: a VadaLink instance wired with the default candidates for
/// the three problems of the paper (family detection via the default
/// person schema, company control, close links).
VadaLink MakeDefaultVadaLink(AugmentConfig config = {});

}  // namespace vadalink::core
