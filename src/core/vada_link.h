// VadaLink — the KG augmentation framework (Algorithm 1 of the paper).
//
// Each round:
//   1. first-level clustering: node2vec embedding + k-means
//      (#GraphEmbedClust), recomputed on the current graph so edges
//      predicted in earlier rounds improve the embedding (the paper's
//      reinforcement principle);
//   2. second-level blocking: feature hashing (#GenerateBlocks) within
//      each embedding cluster;
//   3. pairwise Candidate evaluation inside every block, and global
//      Candidate evaluation (control / close links) once per round;
//   4. predicted links are added as typed edges; the loop repeats until a
//      round adds nothing or max_rounds is reached.
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/candidates.h"
#include "core/link_class.h"
#include "embed/embed_clusterer.h"
#include "graph/property_graph.h"
#include "linkage/blocking.h"

namespace vadalink::core {

struct AugmentConfig {
  embed::EmbedClusterConfig embedding;
  linkage::BlockingConfig blocking;
  /// Upper bound on augmentation rounds (the fixpoint usually closes in
  /// 2-3 rounds on register-like data).
  size_t max_rounds = 3;
  /// Ablation knobs: disable the first-level embedding clustering and/or
  /// the second-level feature blocking. With both off, every pair of nodes
  /// is compared ("no cluster mode" of Section 6.2).
  bool use_embedding = true;
  bool use_blocking = true;
};

struct AugmentStats {
  size_t rounds = 0;
  size_t links_added = 0;
  size_t pairs_compared = 0;
  size_t first_level_clusters = 0;
  size_t second_level_blocks = 0;
  double embed_seconds = 0.0;
  double block_seconds = 0.0;
  double candidate_seconds = 0.0;
};

class VadaLink {
 public:
  explicit VadaLink(AugmentConfig config) : config_(std::move(config)) {}

  /// Registers a candidate implementation (order preserved).
  void AddCandidate(std::unique_ptr<Candidate> candidate) {
    candidates_.push_back(std::move(candidate));
  }

  const AugmentConfig& config() const { return config_; }
  AugmentConfig* mutable_config() { return &config_; }

  /// Runs Algorithm 1 on `g`, adding predicted edges in place.
  Result<AugmentStats> Augment(graph::PropertyGraph* g);

 private:
  /// Adds a predicted link if absent; returns true if added.
  static bool AddLink(graph::PropertyGraph* g, const PredictedLink& link);

  AugmentConfig config_;
  std::vector<std::unique_ptr<Candidate>> candidates_;
};

/// Convenience: a VadaLink instance wired with the default candidates for
/// the three problems of the paper (family detection via the default
/// person schema, company control, close links).
VadaLink MakeDefaultVadaLink(AugmentConfig config = {});

}  // namespace vadalink::core
