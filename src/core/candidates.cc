#include "core/candidates.h"

#include <algorithm>

namespace vadalink::core {

std::optional<PredictedLink> FamilyCandidate::TestPair(
    const graph::PropertyGraph& g, graph::NodeId x, graph::NodeId y) {
  if (g.node_label(x) != "Person" || g.node_label(y) != "Person") {
    return std::nullopt;
  }
  double p = classifier_.LinkProbability(g, x, y);
  if (p <= config_.probability_threshold) return std::nullopt;
  std::string kind = company::ClassifyLinkKind(g, x, y, config_);
  auto cls = LinkClassFromName(kind);
  if (!cls.ok()) return std::nullopt;
  return PredictedLink{x, y, cls.value(), p};
}

Result<std::vector<PredictedLink>> ControlCandidate::RunGlobal(
    const graph::PropertyGraph& g) {
  VL_ASSIGN_OR_RETURN(company::CompanyGraph cg,
                      company::CompanyGraph::FromPropertyGraph(g));
  std::vector<PredictedLink> out;
  for (const company::ControlEdge& e :
       company::AllControlEdges(cg, threshold_)) {
    out.push_back({e.controller, e.controlled, LinkClass::kControl, 1.0});
  }
  return out;
}

Result<std::vector<PredictedLink>> CloseLinkCandidate::RunGlobal(
    const graph::PropertyGraph& g) {
  VL_ASSIGN_OR_RETURN(company::CompanyGraph cg,
                      company::CompanyGraph::FromPropertyGraph(g));
  std::vector<PredictedLink> out;
  for (const company::CloseLinkEdge& e :
       company::AllCloseLinks(cg, config_)) {
    out.push_back({e.x, e.y, LinkClass::kCloseLink, 1.0});
  }
  // Family extension (Definition 2.9 part ii): close links induced by
  // families already materialised in the graph.
  for (const auto& family : FamiliesFromGraph(g)) {
    for (const auto& [x, y] : company::FamilyCloseLinks(cg, family, config_)) {
      out.push_back({x, y, LinkClass::kCloseLink, 1.0});
    }
  }
  return out;
}

Result<std::vector<PredictedLink>> FamilyControlCandidate::RunGlobal(
    const graph::PropertyGraph& g) {
  VL_ASSIGN_OR_RETURN(company::CompanyGraph cg,
                      company::CompanyGraph::FromPropertyGraph(g));
  std::vector<PredictedLink> out;
  for (const auto& family : FamiliesFromGraph(g)) {
    // The family is represented by its lowest-id member in the emitted
    // control edge (a "family node" would require schema changes; the
    // representative keeps the output a plain company-graph link).
    graph::NodeId representative =
        *std::min_element(family.begin(), family.end());
    for (graph::NodeId company :
         company::FamilyControlledCompanies(cg, family, threshold_)) {
      out.push_back({representative, company, LinkClass::kControl, 1.0});
    }
  }
  return out;
}

std::vector<std::vector<graph::NodeId>> FamiliesFromGraph(
    const graph::PropertyGraph& g) {
  std::vector<company::PersonLink> links;
  g.ForEachEdge([&](graph::EdgeId e) {
    const std::string& label = g.edge_label(e);
    if (label == "PartnerOf" || label == "ParentOf" ||
        label == "SiblingOf") {
      links.push_back({g.edge_src(e), g.edge_dst(e), label, 1.0});
    }
  });
  return company::FamilyGroups(links, g.node_count());
}

}  // namespace vadalink::core
