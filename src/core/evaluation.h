// Evaluation harness for link prediction: precision / recall / F1 of
// predicted edges against a ground-truth link set — the validation
// methodology of Section 6.2 ("we consider a graph with some edges
// removed ... we are interested in recall").
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/property_graph.h"

namespace vadalink::core {

/// An undirected ground-truth or predicted link (normalised x < y).
using LinkPair = std::pair<graph::NodeId, graph::NodeId>;

struct EvaluationResult {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  double precision = 0.0;  // tp / (tp + fp); 1.0 when nothing predicted
  double recall = 0.0;     // tp / (tp + fn); 1.0 when nothing to find
  double f1 = 0.0;

  std::string ToString() const;
};

/// Normalises a pair to x < y.
LinkPair MakeLinkPair(graph::NodeId a, graph::NodeId b);

/// Compares predicted vs truth sets.
EvaluationResult EvaluateLinks(const std::set<LinkPair>& predicted,
                               const std::set<LinkPair>& truth);

/// Collects the edges of `g` whose label is in `labels` as normalised
/// pairs (e.g. {"PartnerOf", "ParentOf", "SiblingOf"} for family links).
std::set<LinkPair> CollectEdges(const graph::PropertyGraph& g,
                                const std::vector<std::string>& labels);

}  // namespace vadalink::core
