// The enterprise-facing facade of Figure 3 in the paper: a Knowledge Graph
// = extensional component (the property graph) + intensional component
// (a repository of Vadalog rule programs), with a reasoning API that runs
// the rules, materialises predicted links back into the graph, and
// explains derived facts.
//
//   KnowledgeGraph kg;
//   BuildCompanyGraph(kg.mutable_graph());
//   kg.AddRules(ControlProgram());           // intensional component
//   kg.Reason();                             // chase to fixpoint
//   kg.Query("control");                     // reasoning API
//   kg.Explain("control", {x, y});           // provenance
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/run_context.h"
#include "common/status.h"
#include "datalog/engine.h"
#include "datalog/warded.h"
#include "graph/property_graph.h"

namespace vadalink::core {

struct ReasonStats {
  size_t facts_before = 0;
  size_t facts_after = 0;
  size_t links_materialised = 0;
  datalog::EngineStats engine;
};

class KnowledgeGraph {
 public:
  KnowledgeGraph();

  /// The extensional component. Mutations are picked up by the next
  /// Reason() call (facts are re-extracted from the graph each run).
  graph::PropertyGraph* mutable_graph() { return &graph_; }
  const graph::PropertyGraph& graph() const { return graph_; }

  /// Appends a rule program to the intensional component. Parsed eagerly;
  /// returns ParseError (with line info) on bad syntax.
  Status AddRules(std::string_view vadalog_source);

  /// Number of rules across all added programs.
  size_t rule_count() const;

  /// Wardedness report over the combined intensional component (the
  /// PTIME-tractability check of the paper).
  datalog::WardednessReport CheckWardedness() const;

  /// Registers an external '#function' available to the rules.
  void RegisterFunction(std::string name, datalog::ExternalFn fn);

  /// Concurrency for Reason(): eligible rules evaluate their delta joins
  /// over a pool of this many threads (see EngineOptions::pool; the final
  /// fact set is identical at every thread count). threads = 1 (default)
  /// keeps the sequential engine.
  void set_parallel(ParallelOptions parallel) {
    parallel_ = std::move(parallel);
  }
  const ParallelOptions& parallel() const { return parallel_; }

  /// Runs all programs to fixpoint against the current graph and
  /// materialises derived control/closelink/partnerof/parentof/siblingof
  /// facts as typed edges. Each call starts from a fresh fact base.
  /// `run_ctx` (nullptr = unlimited) bounds the chase: on a deadline /
  /// budget / cancellation trip the corresponding non-OK Status is
  /// returned and the graph is left unmodified (links are materialised
  /// only after a completed chase).
  ///
  /// `metrics` (nullable) receives the engine.* counters, the
  /// engine.delta.size histogram and the reason/chase span tree, plus
  /// reason.links.materialised.
  Result<ReasonStats> Reason(const RunContext* run_ctx = nullptr,
                             MetricsRegistry* metrics = nullptr);

  /// Incremental continuation after a completed Reason(): facts for graph
  /// mutations made since that run are loaded as deltas (fact extraction
  /// is idempotent, so only genuinely new tuples extend the relations)
  /// and the chase resumes via Engine::RunIncremental — null memoisation,
  /// aggregate state and provenance carry over, and only work caused by
  /// the delta is done. This is the ingest path of the serving layer.
  ///
  /// Fails with kInvalidArgument before any completed Reason(), after an
  /// aborted run (the message names the aborting run's limit status), or
  /// kUnsupported for programs with negation. After a failure the
  /// fixpoint must be re-established with Reason().
  Result<ReasonStats> ReasonIncremental(const RunContext* run_ctx = nullptr,
                                        MetricsRegistry* metrics = nullptr);

  /// Non-allocating scan over a predicate's facts after the last Reason()
  /// (empty before). The scan reads the engine's columnar storage in
  /// place; it stays valid until the next Reason()/ReasonIncremental()
  /// call replaces or extends the fact base.
  datalog::RelationScan Query(std::string_view predicate) const;

  /// Provenance tree for a fact derived by the last Reason().
  std::string Explain(std::string_view predicate,
                      const std::vector<datalog::Value>& tuple) const;

  /// Value helpers bound to this KG's catalog.
  datalog::Value Str(std::string_view s) {
    return datalog::Value::Symbol(catalog_.symbols.Intern(s));
  }
  static datalog::Value Int(int64_t v) { return datalog::Value::Int(v); }

  const datalog::Catalog& catalog() const { return catalog_; }

 private:
  graph::PropertyGraph graph_;
  datalog::Catalog catalog_;
  datalog::Program combined_;  // all programs merged
  std::vector<std::pair<std::string, datalog::ExternalFn>> extra_fns_;
  ParallelOptions parallel_;
  std::unique_ptr<ThreadPool> pool_;           // last run's pool (if any)
  std::unique_ptr<datalog::Database> db_;      // last run's fact base
  std::unique_ptr<datalog::Engine> engine_;    // last run's engine
};

}  // namespace vadalink::core
