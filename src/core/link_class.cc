#include "core/link_class.h"

namespace vadalink::core {

const char* LinkClassName(LinkClass c) {
  switch (c) {
    case LinkClass::kControl: return "Control";
    case LinkClass::kCloseLink: return "CloseLink";
    case LinkClass::kPartnerOf: return "PartnerOf";
    case LinkClass::kParentOf: return "ParentOf";
    case LinkClass::kSiblingOf: return "SiblingOf";
  }
  return "?";
}

Result<LinkClass> LinkClassFromName(const std::string& name) {
  if (name == "Control") return LinkClass::kControl;
  if (name == "CloseLink") return LinkClass::kCloseLink;
  if (name == "PartnerOf") return LinkClass::kPartnerOf;
  if (name == "ParentOf") return LinkClass::kParentOf;
  if (name == "SiblingOf") return LinkClass::kSiblingOf;
  return Status::InvalidArgument("unknown link class: " + name);
}

bool IsFamilyClass(LinkClass c) {
  return c == LinkClass::kPartnerOf || c == LinkClass::kParentOf ||
         c == LinkClass::kSiblingOf;
}

}  // namespace vadalink::core
