#include "core/link_functions.h"

#include "common/string_util.h"
#include "linkage/string_metrics.h"

namespace vadalink::core {

using datalog::FunctionContext;
using datalog::Value;

namespace {

graph::PropertyValue ToPropertyValue(const Value& v,
                                     const datalog::SymbolTable& symbols) {
  switch (v.kind()) {
    case Value::Kind::kBool:
      return graph::PropertyValue(v.AsBool());
    case Value::Kind::kInt:
      return graph::PropertyValue(v.AsInt());
    case Value::Kind::kDouble:
      return graph::PropertyValue(v.AsDouble());
    case Value::Kind::kSymbol:
      return graph::PropertyValue(symbols.Name(v.symbol_id()));
    default:
      return graph::PropertyValue();  // null
  }
}

Result<std::string> StrArg(const char* fn, FunctionContext& ctx,
                           const Value& v) {
  if (!v.is_symbol()) {
    return Status::InvalidArgument(std::string("#") + fn +
                                   ": expected string argument");
  }
  return ctx.symbols->Name(v.symbol_id());
}

}  // namespace

datalog::ExternalFn MakeLinkProbabilityFn(
    linkage::BayesLinkClassifier classifier) {
  return [classifier = std::move(classifier)](
             FunctionContext& ctx,
             const std::vector<Value>& args) -> Result<Value> {
    const auto& features = classifier.schema().features();
    if (args.size() != 2 * features.size()) {
      return Status::InvalidArgument(
          "#linkprobability: expected " +
          std::to_string(2 * features.size()) + " arguments (schema has " +
          std::to_string(features.size()) + " features), got " +
          std::to_string(args.size()));
    }
    std::vector<bool> close;
    close.reserve(features.size());
    for (size_t i = 0; i < features.size(); ++i) {
      graph::PropertyValue a = ToPropertyValue(args[i], *ctx.symbols);
      graph::PropertyValue b =
          ToPropertyValue(args[features.size() + i], *ctx.symbols);
      double d = linkage::FeatureDistance(a, b, features[i].metric);
      close.push_back(d < features[i].threshold);
    }
    return Value::Double(classifier.CombineEvidence(close));
  };
}

void RegisterLinkageFunctions(datalog::FunctionRegistry* registry,
                              linkage::BayesLinkClassifier classifier) {
  registry->Register("linkprobability",
                     MakeLinkProbabilityFn(std::move(classifier)));

  registry->Register(
      "levenshtein",
      [](FunctionContext& ctx,
         const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 2) {
          return Status::InvalidArgument("#levenshtein: expected 2 args");
        }
        VL_ASSIGN_OR_RETURN(std::string a,
                            StrArg("levenshtein", ctx, args[0]));
        VL_ASSIGN_OR_RETURN(std::string b,
                            StrArg("levenshtein", ctx, args[1]));
        return Value::Int(
            static_cast<int64_t>(linkage::Levenshtein(a, b)));
      });

  registry->Register(
      "levratio",
      [](FunctionContext& ctx,
         const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 2) {
          return Status::InvalidArgument("#levratio: expected 2 args");
        }
        VL_ASSIGN_OR_RETURN(std::string a, StrArg("levratio", ctx, args[0]));
        VL_ASSIGN_OR_RETURN(std::string b, StrArg("levratio", ctx, args[1]));
        return Value::Double(linkage::NormalizedLevenshtein(a, b));
      });

  registry->Register(
      "jarowinkler",
      [](FunctionContext& ctx,
         const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 2) {
          return Status::InvalidArgument("#jarowinkler: expected 2 args");
        }
        VL_ASSIGN_OR_RETURN(std::string a,
                            StrArg("jarowinkler", ctx, args[0]));
        VL_ASSIGN_OR_RETURN(std::string b,
                            StrArg("jarowinkler", ctx, args[1]));
        return Value::Double(linkage::JaroWinkler(a, b));
      });

  registry->Register(
      "soundex",
      [](FunctionContext& ctx,
         const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 1) {
          return Status::InvalidArgument("#soundex: expected 1 arg");
        }
        VL_ASSIGN_OR_RETURN(std::string s, StrArg("soundex", ctx, args[0]));
        return Value::Symbol(ctx.symbols->Intern(linkage::Soundex(s)));
      });
}

std::string FamilyLinkProgram(double threshold) {
  // Algorithm 7 over the generic encoding: all person pairs (X < Y keeps
  // the comparison one-sided), scored by #linkprobability on the four
  // default-person-schema features.
  std::string t = FormatDouble(threshold);
  return std::string(R"(
% ---- personal links (Algorithm 7 / Section 2 Bayesian model) ----
nodetype(X, "Person"), nodetype(Y, "Person"), X < Y,
  nodefeature(X, "last_name", LX), nodefeature(Y, "last_name", LY),
  nodefeature(X, "city", CX), nodefeature(Y, "city", CY),
  nodefeature(X, "birth_city", BX), nodefeature(Y, "birth_city", BY),
  nodefeature(X, "birth_year", YX), nodefeature(Y, "birth_year", YY),
  P = #linkprobability(LX, CX, BX, YX, LY, CY, BY, YY), P > )") + t +
         R"( -> partnerof(X, Y).
@output("partnerof").
)";
}

}  // namespace vadalink::core
