// The exhaustive all-pairs baseline (the red "naive" line of Figure 4a):
// every pair of person nodes is fed to the pairwise candidates with no
// clustering and no blocking. Quadratic by construction.
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/candidates.h"
#include "graph/property_graph.h"

namespace vadalink::core {

struct NaiveStats {
  size_t pairs_compared = 0;
  size_t links_added = 0;
};

/// Runs `candidate` over all pairs of nodes (restricted to Person nodes
/// when `persons_only`), adding predicted edges to g.
Result<NaiveStats> NaiveAugment(graph::PropertyGraph* g,
                                Candidate* candidate,
                                bool persons_only = true);

}  // namespace vadalink::core
