#include "core/naive_baseline.h"

#include "core/link_class.h"

namespace vadalink::core {

Result<NaiveStats> NaiveAugment(graph::PropertyGraph* g,
                                Candidate* candidate, bool persons_only) {
  if (!candidate->is_pairwise()) {
    return Status::InvalidArgument(
        "NaiveAugment requires a pairwise candidate");
  }
  NaiveStats stats;
  std::vector<graph::NodeId> nodes;
  for (graph::NodeId n = 0; n < g->node_count(); ++n) {
    if (!persons_only || g->node_label(n) == "Person") nodes.push_back(n);
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      ++stats.pairs_compared;
      auto link = candidate->TestPair(*g, nodes[i], nodes[j]);
      if (!link.has_value()) continue;
      const char* label = LinkClassName(link->cls);
      if (g->FindEdge(link->x, link->y, label) != graph::kInvalidEdge) {
        continue;
      }
      VL_ASSIGN_OR_RETURN(graph::EdgeId e,
                          g->AddEdge(link->x, link->y, label));
      g->SetEdgeProperty(e, "predicted", true);
      g->SetEdgeProperty(e, "score", link->score);
      ++stats.links_added;
    }
  }
  return stats;
}

}  // namespace vadalink::core
