// Domain functions plugged into the reasoning engine — the paper's pattern
// of exposing #LinkProbability (Algorithm 7) and string similarity to
// Vadalog rules. Registered on a per-engine basis (see KnowledgeGraph /
// Engine::functions()).
#pragma once

#include "datalog/builtins.h"
#include "linkage/bayes.h"

namespace vadalink::core {

/// Builds the #linkprobability function for `classifier`'s schema: takes
/// 2*N arguments (the N feature values of node x followed by the N feature
/// values of node y, in schema order) and returns the Graham-combined link
/// probability as a double — Algorithm 7's
///   #LinkProbability(f1_x..fm_x, f1_y..fm_y) > 0.5 -> Candidate(...).
datalog::ExternalFn MakeLinkProbabilityFn(
    linkage::BayesLinkClassifier classifier);

/// Registers the linkage function suite on `registry`:
///   #linkprobability(fx..., fy...)   (for `classifier`)
///   #levenshtein(a, b)               edit distance as int
///   #levratio(a, b)                  normalised edit distance as double
///   #jarowinkler(a, b)               similarity as double
///   #soundex(s)                      phonetic code as string
void RegisterLinkageFunctions(datalog::FunctionRegistry* registry,
                              linkage::BayesLinkClassifier classifier);

/// The declarative Algorithm 7: detects partnerof(X, Y) links between
/// persons from the generic nodefeature encoding, using #linkprobability
/// over the default person schema (last_name, city, birth_city,
/// birth_year). Quadratic (no blocking) — the engine-side counterpart the
/// clustered pipeline is benchmarked against.
std::string FamilyLinkProgram(double threshold = 0.5);

}  // namespace vadalink::core
