#include "core/vada_link.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/timer.h"
#include "company/family.h"

namespace vadalink::core {

namespace {

/// Records a governor trip on the stats: the run ends gracefully, keeping
/// everything committed so far.
void RecordInterrupt(Status st, AugmentStats* stats) {
  stats->truncated = true;
  if (st.code() == StatusCode::kDeadlineExceeded) ++stats->deadline_hits;
  stats->interrupt = std::move(st);
}

}  // namespace

bool VadaLink::AddLink(graph::PropertyGraph* g, const PredictedLink& link) {
  const char* label = LinkClassName(link.cls);
  if (g->FindEdge(link.x, link.y, label) != graph::kInvalidEdge) {
    return false;
  }
  auto e = g->AddEdge(link.x, link.y, label);
  if (!e.ok()) return false;
  g->SetEdgeProperty(e.value(), "predicted", true);
  g->SetEdgeProperty(e.value(), "score", link.score);
  return true;
}

Result<AugmentStats> VadaLink::Augment(graph::PropertyGraph* g,
                                       const RunContext* run_ctx,
                                       MetricsRegistry* metrics) {
  VL_FAULT_POINT("core.augment");
  VL_RETURN_NOT_OK(config_.parallel.Validate());
  AugmentStats stats;
  embed::EmbedClusterer clusterer(config_.embedding);
  linkage::Blocker blocker(config_.blocking);
  // One pool for the whole run (nullptr when threads resolve to 1, which
  // keeps every stage on its sequential legacy path).
  std::unique_ptr<ThreadPool> pool = MakeThreadPool(config_.parallel);
  WallTimer timer;
  ScopedSpan augment_span(metrics, "augment", run_ctx);
  size_t pairs_accepted = 0;

  bool changed = true;
  while (changed && stats.rounds < config_.max_rounds) {
    // Round boundary: a tripped governor ends the run here, with every
    // link committed by earlier rounds preserved.
    if (Status st = CheckRunNow(run_ctx); !st.ok()) {
      RecordInterrupt(std::move(st), &stats);
      break;
    }
    VL_FAULT_POINT("core.augment_round");
    changed = false;
    ScopedSpan round_span(
        metrics, "round" + std::to_string(stats.rounds), run_ctx);
    ++stats.rounds;

    // ---- first-level clustering (#GraphEmbedClust) ----------------------
    timer.Restart();
    std::vector<uint32_t> cluster_of(g->node_count(), 0);
    size_t cluster_count = 1;
    if (config_.use_embedding && g->node_count() > 1) {
      ScopedSpan embed_span(metrics, "embed", run_ctx);
      // The embedding stage runs under a sub-context: a slice of the
      // remaining wall-clock and/or its own work budget. If the slice runs
      // out, this round degrades to feature-blocking-only — the paper's
      // `use_embedding = false` ablation — instead of failing the run.
      RunContext embed_ctx;
      const RunContext* stage_ctx = run_ctx;
      bool stage_limited = false;
      if (run_ctx != nullptr && run_ctx->has_deadline()) {
        double slice = run_ctx->remaining_seconds() *
                       std::clamp(config_.embed_deadline_fraction, 0.0, 1.0);
        embed_ctx.set_deadline_after_ms(
            std::max<int64_t>(0, static_cast<int64_t>(slice * 1e3)));
        stage_limited = true;
      }
      if (config_.embed_work_budget > 0) {
        embed_ctx.set_work_budget(config_.embed_work_budget);
        stage_limited = true;
      }
      if (stage_limited) {
        embed_ctx.set_parent(run_ctx);
        stage_ctx = &embed_ctx;
      }
      VL_ASSIGN_OR_RETURN(
          cluster_of, clusterer.Cluster(*g, stage_ctx, pool.get(), metrics));
      if (clusterer.last_interrupted()) {
        if (Status st = CheckRunNow(run_ctx); !st.ok()) {
          // The *run* governor tripped, not just the stage slice.
          stats.embed_seconds += timer.ElapsedSeconds();
          RecordInterrupt(std::move(st), &stats);
          break;
        }
        cluster_of.assign(g->node_count(), 0);
        ++stats.degraded_rounds;
        if (stage_ctx != run_ctx &&
            stage_ctx->CheckNow().code() == StatusCode::kDeadlineExceeded) {
          ++stats.deadline_hits;
        }
      } else {
        cluster_count = clusterer.last_kmeans().k_effective;
      }
    }
    stats.embed_seconds += timer.ElapsedSeconds();
    stats.first_level_clusters = cluster_count;

    // ---- second-level blocking (#GenerateBlocks) -------------------------
    timer.Restart();
    // (cluster, block) -> node list
    std::unordered_map<uint64_t, std::vector<graph::NodeId>> blocks;
    Status block_st;
    {
      ScopedSpan block_span(metrics, "block", run_ctx);
      if (pool != nullptr && pool->thread_count() > 1) {
        // Keys are computed over node chunks (BlockOf is pure, writes
        // disjoint); the grouping insertion stays sequential in node order,
        // so the map — and everything downstream — matches the sequential
        // path exactly.
        std::vector<uint64_t> keys(g->node_count());
        block_st = ParallelFor(
            pool.get(), g->node_count(), 0, run_ctx,
            [&](size_t begin, size_t end, size_t) {
              for (size_t n = begin; n < end; ++n) {
                VL_RETURN_NOT_OK(CheckRun(run_ctx));
                uint64_t block =
                    config_.use_blocking
                        ? blocker.BlockOf(*g, static_cast<graph::NodeId>(n))
                        : 0;
                keys[n] = (static_cast<uint64_t>(cluster_of[n]) << 40) ^ block;
              }
              return Status::OK();
            });
        if (block_st.ok()) {
          for (graph::NodeId n = 0; n < g->node_count(); ++n) {
            blocks[keys[n]].push_back(n);
          }
        }
      } else {
        for (graph::NodeId n = 0; n < g->node_count(); ++n) {
          if (block_st = CheckRun(run_ctx); !block_st.ok()) break;
          uint64_t block = config_.use_blocking ? blocker.BlockOf(*g, n) : 0;
          uint64_t key = (static_cast<uint64_t>(cluster_of[n]) << 40) ^ block;
          blocks[key].push_back(n);
        }
      }
    }
    stats.block_seconds += timer.ElapsedSeconds();
    stats.second_level_blocks = blocks.size();
    if (block_st.ok()) {
      // Block-shape metrics, recorded once per round at the sequential
      // merge (identical at every thread count). Histogram totals commute,
      // so the unordered iteration order is immaterial.
      MetricAdd(metrics, "linkage.blocks.created", blocks.size());
      if (metrics != nullptr) {
        MetricsHistogram* sizes = metrics->Histogram("linkage.block.size");
        for (const auto& [key, members] : blocks) sizes->Record(members.size());
      }
    }
    if (!block_st.ok()) {
      // Incomplete blocks must not be compared; end the run before the
      // candidate stage mutates anything this round.
      RecordInterrupt(std::move(block_st), &stats);
      break;
    }

    // ---- candidate evaluation --------------------------------------------
    timer.Restart();
    Status cand_st;
    ScopedSpan cand_span(metrics, "candidates", run_ctx);
    for (const auto& candidate : candidates_) {
      if (candidate->is_pairwise()) {
        if (pool != nullptr && pool->thread_count() > 1) {
          // Per-block fan-out (grain 1 = one block per chunk): each chunk
          // collects its candidate links against the frozen round graph;
          // AddLink commits sequentially in block order, so the committed
          // links match the sequential path (TestPair must be read-only —
          // see Candidate's thread-safety contract).
          std::vector<const std::vector<graph::NodeId>*> block_list;
          block_list.reserve(blocks.size());
          for (const auto& [key, members] : blocks) {
            block_list.push_back(&members);
          }
          struct BlockOut {
            std::vector<PredictedLink> links;
            size_t pairs = 0;
          };
          std::vector<BlockOut> outs(block_list.size());
          cand_st = ParallelFor(
              pool.get(), block_list.size(), 1, run_ctx,
              [&](size_t begin, size_t end, size_t) {
                for (size_t b = begin; b < end; ++b) {
                  const auto& members = *block_list[b];
                  BlockOut& out = outs[b];
                  for (size_t i = 0; i < members.size(); ++i) {
                    for (size_t j = i + 1; j < members.size(); ++j) {
                      VL_RETURN_NOT_OK(ConsumeRunWork(run_ctx, 1));
                      ++out.pairs;
                      auto link =
                          candidate->TestPair(*g, members[i], members[j]);
                      if (link.has_value()) out.links.push_back(*link);
                    }
                  }
                }
                return Status::OK();
              });
          // Blocks that completed before a trip still commit — mirroring
          // the sequential "links added before the trip stay" behavior.
          for (const BlockOut& out : outs) {
            stats.pairs_compared += out.pairs;
            pairs_accepted += out.links.size();
            for (const PredictedLink& link : out.links) {
              if (AddLink(g, link)) {
                ++stats.links_added;
                changed = true;
              }
            }
          }
        } else {
          for (const auto& [key, members] : blocks) {
            if (!cand_st.ok()) break;
            for (size_t i = 0; i < members.size() && cand_st.ok(); ++i) {
              for (size_t j = i + 1; j < members.size(); ++j) {
                if (cand_st = ConsumeRunWork(run_ctx, 1); !cand_st.ok()) break;
                ++stats.pairs_compared;
                auto link = candidate->TestPair(*g, members[i], members[j]);
                if (link.has_value()) {
                  ++pairs_accepted;
                  if (AddLink(g, *link)) {
                    ++stats.links_added;
                    changed = true;
                  }
                }
              }
            }
          }
        }
      } else {
        VL_ASSIGN_OR_RETURN(std::vector<PredictedLink> links,
                            candidate->RunGlobal(*g));
        for (const PredictedLink& link : links) {
          if (AddLink(g, link)) {
            ++stats.links_added;
            changed = true;
          }
        }
        cand_st = CheckRunNow(run_ctx);
      }
      if (!cand_st.ok()) break;
    }
    stats.candidate_seconds += timer.ElapsedSeconds();
    if (!cand_st.ok()) {
      // Mid-round trip: links already added this round stay (each AddLink
      // is atomic w.r.t. the graph), the rest of the round is abandoned.
      RecordInterrupt(std::move(cand_st), &stats);
      break;
    }
  }

  // Run totals, published once from the (deterministic) stats so repeated
  // Augment() calls accumulate in the registry.
  MetricAdd(metrics, "augment.rounds", stats.rounds);
  MetricAdd(metrics, "augment.links.added", stats.links_added);
  MetricAdd(metrics, "augment.degraded_rounds", stats.degraded_rounds);
  MetricAdd(metrics, "linkage.pairs.scored", stats.pairs_compared);
  MetricAdd(metrics, "linkage.pairs.accepted", pairs_accepted);
  MetricAdd(metrics, "linkage.pairs.rejected",
            stats.pairs_compared - pairs_accepted);
  return stats;
}

VadaLink MakeDefaultVadaLink(AugmentConfig config) {
  if (config.blocking.keys.empty()) {
    config.blocking = company::DefaultPersonBlocking();
  }
  VadaLink vl(std::move(config));
  vl.AddCandidate(std::make_unique<FamilyCandidate>(
      linkage::BayesLinkClassifier(company::DefaultPersonSchema())));
  vl.AddCandidate(std::make_unique<ControlCandidate>());
  vl.AddCandidate(std::make_unique<CloseLinkCandidate>());
  return vl;
}

}  // namespace vadalink::core
