#include "core/vada_link.h"

#include <unordered_map>

#include "common/timer.h"
#include "company/family.h"

namespace vadalink::core {

bool VadaLink::AddLink(graph::PropertyGraph* g, const PredictedLink& link) {
  const char* label = LinkClassName(link.cls);
  if (g->FindEdge(link.x, link.y, label) != graph::kInvalidEdge) {
    return false;
  }
  auto e = g->AddEdge(link.x, link.y, label);
  if (!e.ok()) return false;
  g->SetEdgeProperty(e.value(), "predicted", true);
  g->SetEdgeProperty(e.value(), "score", link.score);
  return true;
}

Result<AugmentStats> VadaLink::Augment(graph::PropertyGraph* g) {
  AugmentStats stats;
  embed::EmbedClusterer clusterer(config_.embedding);
  linkage::Blocker blocker(config_.blocking);
  WallTimer timer;

  bool changed = true;
  while (changed && stats.rounds < config_.max_rounds) {
    changed = false;
    ++stats.rounds;

    // ---- first-level clustering (#GraphEmbedClust) ----------------------
    timer.Restart();
    std::vector<uint32_t> cluster_of(g->node_count(), 0);
    size_t cluster_count = 1;
    if (config_.use_embedding && g->node_count() > 1) {
      cluster_of = clusterer.Cluster(*g);
      cluster_count = clusterer.last_kmeans().k_effective;
    }
    stats.embed_seconds += timer.ElapsedSeconds();
    stats.first_level_clusters = cluster_count;

    // ---- second-level blocking (#GenerateBlocks) -------------------------
    timer.Restart();
    // (cluster, block) -> node list
    std::unordered_map<uint64_t, std::vector<graph::NodeId>> blocks;
    for (graph::NodeId n = 0; n < g->node_count(); ++n) {
      uint64_t block = config_.use_blocking ? blocker.BlockOf(*g, n) : 0;
      uint64_t key = (static_cast<uint64_t>(cluster_of[n]) << 40) ^ block;
      blocks[key].push_back(n);
    }
    stats.block_seconds += timer.ElapsedSeconds();
    stats.second_level_blocks = blocks.size();

    // ---- candidate evaluation --------------------------------------------
    timer.Restart();
    for (const auto& candidate : candidates_) {
      if (candidate->is_pairwise()) {
        for (const auto& [key, members] : blocks) {
          for (size_t i = 0; i < members.size(); ++i) {
            for (size_t j = i + 1; j < members.size(); ++j) {
              ++stats.pairs_compared;
              auto link = candidate->TestPair(*g, members[i], members[j]);
              if (link.has_value() && AddLink(g, *link)) {
                ++stats.links_added;
                changed = true;
              }
            }
          }
        }
      } else {
        VL_ASSIGN_OR_RETURN(std::vector<PredictedLink> links,
                            candidate->RunGlobal(*g));
        for (const PredictedLink& link : links) {
          if (AddLink(g, link)) {
            ++stats.links_added;
            changed = true;
          }
        }
      }
    }
    stats.candidate_seconds += timer.ElapsedSeconds();
  }
  return stats;
}

VadaLink MakeDefaultVadaLink(AugmentConfig config) {
  if (config.blocking.keys.empty()) {
    config.blocking = company::DefaultPersonBlocking();
  }
  VadaLink vl(std::move(config));
  vl.AddCandidate(std::make_unique<FamilyCandidate>(
      linkage::BayesLinkClassifier(company::DefaultPersonSchema())));
  vl.AddCandidate(std::make_unique<ControlCandidate>());
  vl.AddCandidate(std::make_unique<CloseLinkCandidate>());
  return vl;
}

}  // namespace vadalink::core
