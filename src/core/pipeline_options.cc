#include "core/pipeline_options.h"

#include <string>

namespace vadalink::core {

Status PipelineOptions::Validate() const {
  VL_RETURN_NOT_OK(parallel.Validate());
  if (augment.max_rounds == 0) {
    return Status::InvalidArgument("augment.max_rounds must be >= 1");
  }
  if (augment.embed_deadline_fraction < 0.0 ||
      augment.embed_deadline_fraction > 1.0) {
    return Status::InvalidArgument(
        "augment.embed_deadline_fraction must be in [0, 1], got " +
        std::to_string(augment.embed_deadline_fraction));
  }
  const embed::EmbedClusterConfig& ec = augment.embedding;
  if (ec.walk.walk_length == 0) {
    return Status::InvalidArgument("embedding.walk.walk_length must be >= 1");
  }
  if (ec.walk.walks_per_node == 0) {
    return Status::InvalidArgument(
        "embedding.walk.walks_per_node must be >= 1");
  }
  if (ec.walk.p <= 0.0 || ec.walk.q <= 0.0) {
    return Status::InvalidArgument(
        "embedding.walk.p and .q must be positive");
  }
  if (ec.skipgram.dimensions == 0) {
    return Status::InvalidArgument(
        "embedding.skipgram.dimensions must be >= 1");
  }
  if (ec.skipgram.epochs == 0) {
    return Status::InvalidArgument("embedding.skipgram.epochs must be >= 1");
  }
  if (ec.kmeans.k == 0) {
    return Status::InvalidArgument("embedding.kmeans.k must be >= 1");
  }
  if (engine.max_iterations == 0) {
    return Status::InvalidArgument("engine.max_iterations must be >= 1");
  }
  if (engine.max_facts == 0) {
    return Status::InvalidArgument("engine.max_facts must be >= 1");
  }
  return Status::OK();
}

AugmentConfig PipelineOptions::EffectiveAugment() const {
  AugmentConfig out = augment;
  out.parallel = parallel;
  return out;
}

datalog::EngineOptions PipelineOptions::EffectiveEngine(
    const RunContext* run_ctx, ThreadPool* pool) const {
  datalog::EngineOptions out = engine;
  out.run_ctx = run_ctx;
  out.pool = pool;
  out.metrics = metrics;
  return out;
}

}  // namespace vadalink::core
