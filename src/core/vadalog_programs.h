// The paper's Vadalog programs (Algorithms 5, 6, 8) in the concrete syntax
// of this library's engine, operating on the relational encoding produced
// by core::LoadGraphFacts. Used by the declarative execution path, the
// differential tests (engine vs compiled implementations) and the ablation
// benchmarks.
#pragma once

#include <string>

namespace vadalink::core {

/// Algorithm 5 — company control (Definition 2.3). Derives control(X, Y).
/// Inputs: company(X), person(X), voting(X, Y, V) (the voting-rights
/// fraction; equals the plain share weight for full-ownership edges).
std::string ControlProgram(double threshold = 0.5);

/// Algorithm 6 — close links (Definition 2.6) under the walk-sum fixpoint
/// semantics of accumulated ownership. Derives closelink(X, Y) between
/// companies. `max_depth` bounds the recursive accumulation.
std::string CloseLinkProgram(double threshold = 0.2, size_t max_depth = 16);

/// Algorithm 8 — family control (Definition 2.8). Derives
/// familycontrol(F, Y) where F is a family id. Additional input:
/// familymember(F, P).
std::string FamilyControlProgram(double threshold = 0.5);

/// Algorithm 2-style input promotion from the domain encoding to the
/// generic one (for demonstrations; LoadGraphFacts already emits both).
std::string InputPromotionProgram();

}  // namespace vadalink::core
