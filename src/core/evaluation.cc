#include "core/evaluation.h"

#include <algorithm>
#include <cstdio>

namespace vadalink::core {

LinkPair MakeLinkPair(graph::NodeId a, graph::NodeId b) {
  return {std::min(a, b), std::max(a, b)};
}

EvaluationResult EvaluateLinks(const std::set<LinkPair>& predicted,
                               const std::set<LinkPair>& truth) {
  EvaluationResult res;
  for (const LinkPair& p : predicted) {
    if (truth.count(p)) {
      ++res.true_positives;
    } else {
      ++res.false_positives;
    }
  }
  res.false_negatives = truth.size() - res.true_positives;
  res.precision = predicted.empty()
                      ? 1.0
                      : static_cast<double>(res.true_positives) /
                            static_cast<double>(predicted.size());
  res.recall = truth.empty() ? 1.0
                             : static_cast<double>(res.true_positives) /
                                   static_cast<double>(truth.size());
  res.f1 = (res.precision + res.recall) > 0.0
               ? 2.0 * res.precision * res.recall /
                     (res.precision + res.recall)
               : 0.0;
  return res;
}

std::set<LinkPair> CollectEdges(const graph::PropertyGraph& g,
                                const std::vector<std::string>& labels) {
  std::set<LinkPair> out;
  g.ForEachEdge([&](graph::EdgeId e) {
    for (const std::string& label : labels) {
      if (g.edge_label(e) == label) {
        out.insert(MakeLinkPair(g.edge_src(e), g.edge_dst(e)));
        return;
      }
    }
  });
  return out;
}

std::string EvaluationResult::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "tp=%zu fp=%zu fn=%zu precision=%.4f recall=%.4f f1=%.4f",
                true_positives, false_positives, false_negatives, precision,
                recall, f1);
  return buf;
}

}  // namespace vadalink::core
