// Link classes predicted by VADA-LINK (the set C of Algorithm 1).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace vadalink::core {

enum class LinkClass : uint8_t {
  kControl,
  kCloseLink,
  kPartnerOf,
  kParentOf,
  kSiblingOf,
};

/// Edge label used in the property graph for a link class ("Control", ...).
const char* LinkClassName(LinkClass c);

/// Inverse of LinkClassName.
Result<LinkClass> LinkClassFromName(const std::string& name);

/// True for the person-to-person (family) classes.
bool IsFamilyClass(LinkClass c);

}  // namespace vadalink::core
