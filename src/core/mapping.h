// Input/output mapping between the property graph and the relational
// representation used by the reasoning engine (Section 3 and Algorithms
// 2 / 4 of the paper).
//
// Two encodings are produced on load:
//  * the domain encoding — company(Id), person(Id), own(Src, Dst, W) with
//    the cash-flow fraction, and voting(Src, Dst, V) with the voting
//    fraction (emitted when positive; equal to W for plain full-ownership
//    shares) — the "ground extensional component" of Algorithm 2;
//  * the generic encoding — node(Id), nodetype(Id, Label),
//    nodefeature(Id, Key, Value), link(EdgeId, Src, Dst, W),
//    edgetype(EdgeId, Label), edgefeature(EdgeId, Key, Value) — the
//    schema-independent "promotion" the framework reasons over.
//
// The output mapping reads predicted link predicates (control/2,
// closelink/2, partnerof/2, parentof/2, siblingof/2) back into property-
// graph edges.
#pragma once

#include <string>

#include "common/status.h"
#include "datalog/database.h"
#include "graph/property_graph.h"

namespace vadalink::core {

struct MappingOptions {
  /// Emit the generic node/link/feature encoding as well.
  bool generic_encoding = true;
  /// Edge property carrying the share weight.
  std::string weight_key = "w";
};

/// Input mapping: loads `g` into `db`. Node ids become integer constants
/// (the property-graph NodeId), so the round trip is lossless.
Status LoadGraphFacts(const graph::PropertyGraph& g,
                      datalog::Database* db, MappingOptions options = {});

/// Output mapping: for each supported link predicate present in `db`, adds
/// the corresponding labelled edges to `g` (skipping duplicates, and
/// skipping tuples whose arguments are not integer node ids). Returns the
/// number of edges added.
Result<size_t> StorePredictedLinks(datalog::Database& db,
                                   graph::PropertyGraph* g);

/// Converts a property value to an engine value (strings intern into the
/// catalog; null maps to the "null" symbol).
datalog::Value ToEngineValue(const graph::PropertyValue& v,
                             datalog::Catalog* catalog);

}  // namespace vadalink::core
