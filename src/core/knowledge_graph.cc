#include "core/knowledge_graph.h"

#include "common/fault_injection.h"
#include "core/mapping.h"
#include "datalog/parser.h"

namespace vadalink::core {

KnowledgeGraph::KnowledgeGraph() = default;

Status KnowledgeGraph::AddRules(std::string_view vadalog_source) {
  VL_ASSIGN_OR_RETURN(datalog::Program program,
                      datalog::ParseProgram(vadalog_source, &catalog_));
  for (auto& rule : program.rules) {
    combined_.rules.push_back(std::move(rule));
  }
  for (auto& fact : program.facts) {
    combined_.facts.push_back(std::move(fact));
  }
  for (uint32_t out : program.outputs) {
    combined_.outputs.push_back(out);
  }
  return Status::OK();
}

size_t KnowledgeGraph::rule_count() const { return combined_.rules.size(); }

datalog::WardednessReport KnowledgeGraph::CheckWardedness() const {
  return datalog::AnalyzeWardedness(combined_, catalog_);
}

void KnowledgeGraph::RegisterFunction(std::string name,
                                      datalog::ExternalFn fn) {
  extra_fns_.emplace_back(std::move(name), std::move(fn));
}

Result<ReasonStats> KnowledgeGraph::Reason(const RunContext* run_ctx,
                                           MetricsRegistry* metrics) {
  VL_FAULT_POINT("kg.reason");
  ReasonStats stats;
  ScopedSpan reason_span(metrics, "reason", run_ctx);

  db_ = std::make_unique<datalog::Database>(&catalog_);
  VL_RETURN_NOT_OK(LoadGraphFacts(graph_, db_.get()));
  stats.facts_before = db_->TotalFacts();

  VL_RETURN_NOT_OK(parallel_.Validate());
  // The pool is a member so it outlives the engine (which keeps a raw
  // pointer to it for Explain()-era state).
  pool_ = MakeThreadPool(parallel_);
  datalog::EngineOptions options;
  options.trace_provenance = true;
  options.run_ctx = run_ctx;
  options.pool = pool_.get();
  options.metrics = metrics;
  engine_ = std::make_unique<datalog::Engine>(db_.get(), options);
  for (const auto& [name, fn] : extra_fns_) {
    engine_->functions()->Register(name, fn);
  }
  VL_RETURN_NOT_OK(engine_->Run(combined_));
  stats.engine = engine_->stats();
  stats.facts_after = db_->TotalFacts();

  VL_ASSIGN_OR_RETURN(stats.links_materialised,
                      StorePredictedLinks(*db_, &graph_));
  MetricAdd(metrics, "reason.links.materialised", stats.links_materialised);
  return stats;
}

Result<ReasonStats> KnowledgeGraph::ReasonIncremental(
    const RunContext* run_ctx, MetricsRegistry* metrics) {
  VL_FAULT_POINT("kg.reason_incremental");
  if (db_ == nullptr || engine_ == nullptr) {
    return Status::InvalidArgument(
        "ReasonIncremental requires a completed Reason() first");
  }
  ReasonStats stats;
  ScopedSpan reason_span(metrics, "reason_incremental", run_ctx);
  stats.facts_before = db_->TotalFacts();
  // Re-extracting the whole graph is idempotent: Database::Insert dedupes,
  // so exactly the facts of new nodes/edges land in the delta window.
  VL_RETURN_NOT_OK(LoadGraphFacts(graph_, db_.get()));
  engine_->set_run_ctx(run_ctx);
  engine_->set_metrics(metrics);
  VL_RETURN_NOT_OK(engine_->RunIncremental(combined_));
  stats.engine = engine_->stats();
  stats.facts_after = db_->TotalFacts();
  VL_ASSIGN_OR_RETURN(stats.links_materialised,
                      StorePredictedLinks(*db_, &graph_));
  MetricAdd(metrics, "reason.links.materialised", stats.links_materialised);
  return stats;
}

datalog::RelationScan KnowledgeGraph::Query(
    std::string_view predicate) const {
  if (!db_) return datalog::RelationScan();
  return db_->Scan(predicate);
}

std::string KnowledgeGraph::Explain(
    std::string_view predicate,
    const std::vector<datalog::Value>& tuple) const {
  if (!engine_) return "(call Reason() first)\n";
  uint32_t pred = catalog_.predicates.Lookup(predicate);
  if (pred == UINT32_MAX) return "(unknown predicate)\n";
  return engine_->Explain(pred, tuple);
}

}  // namespace vadalink::core
