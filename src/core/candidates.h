// The polymorphic Candidate predicate of Algorithm 3: each link class has
// its own implementation deciding which node pairs get connected.
//
// Two shapes exist, mirroring the paper's practice:
//  * pairwise candidates (family links, Algorithm 7) are evaluated inside
//    each block produced by the two-level clustering;
//  * global candidates (control, Algorithm 5; close links, Algorithm 6)
//    are whole-graph reasoning tasks evaluated once per augmentation round.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "company/company_graph.h"
#include "company/family.h"
#include "core/link_class.h"
#include "graph/property_graph.h"
#include "linkage/bayes.h"

namespace vadalink::core {

/// A link proposed by a candidate implementation.
struct PredictedLink {
  graph::NodeId x;
  graph::NodeId y;
  LinkClass cls;
  double score = 1.0;  // classifier probability; 1.0 for deterministic rules
};

/// Base interface.
class Candidate {
 public:
  virtual ~Candidate() = default;

  virtual const char* name() const = 0;

  /// Pairwise candidates are driven block-by-block by VadaLink; global
  /// candidates get the whole graph once per round.
  virtual bool is_pairwise() const = 0;

  /// Pairwise: decide on one pair. Default: no link.
  ///
  /// Thread-safety contract: when VadaLink runs with ParallelOptions
  /// threads > 1, TestPair is called concurrently from multiple worker
  /// threads against a frozen round graph. Implementations must therefore
  /// be read-only with respect to both `g` and their own state (the
  /// built-in FamilyCandidate is: the classifier and the link-kind rules
  /// are pure).
  virtual std::optional<PredictedLink> TestPair(const graph::PropertyGraph& g,
                                                graph::NodeId x,
                                                graph::NodeId y) {
    (void)g; (void)x; (void)y;
    return std::nullopt;
  }

  /// Global: produce all links of this class. Default: none.
  virtual Result<std::vector<PredictedLink>> RunGlobal(
      const graph::PropertyGraph& g) {
    (void)g;
    return std::vector<PredictedLink>{};
  }
};

/// Algorithm 7: family links between persons via the Bayesian classifier.
class FamilyCandidate : public Candidate {
 public:
  FamilyCandidate(linkage::BayesLinkClassifier classifier,
                  company::FamilyDetectorConfig config = {})
      : classifier_(std::move(classifier)), config_(config) {}

  const char* name() const override { return "family"; }
  bool is_pairwise() const override { return true; }
  std::optional<PredictedLink> TestPair(const graph::PropertyGraph& g,
                                        graph::NodeId x,
                                        graph::NodeId y) override;

  const linkage::BayesLinkClassifier& classifier() const {
    return classifier_;
  }

 private:
  linkage::BayesLinkClassifier classifier_;
  company::FamilyDetectorConfig config_;
};

/// Algorithm 5: company control (Definition 2.3).
class ControlCandidate : public Candidate {
 public:
  explicit ControlCandidate(double threshold = 0.5)
      : threshold_(threshold) {}

  const char* name() const override { return "control"; }
  bool is_pairwise() const override { return false; }
  Result<std::vector<PredictedLink>> RunGlobal(
      const graph::PropertyGraph& g) override;

 private:
  double threshold_;
};

/// Algorithm 6 + 8/9 family extension: close links (Definitions 2.6/2.9).
class CloseLinkCandidate : public Candidate {
 public:
  explicit CloseLinkCandidate(company::CloseLinkConfig config = {})
      : config_(config) {}

  const char* name() const override { return "close_link"; }
  bool is_pairwise() const override { return false; }
  Result<std::vector<PredictedLink>> RunGlobal(
      const graph::PropertyGraph& g) override;

 private:
  company::CloseLinkConfig config_;
};

/// Family control (Definition 2.8): control edges from detected families.
/// Families are read from the person-link edges already present in the
/// graph (PartnerOf / ParentOf / SiblingOf), so this candidate benefits
/// from family links predicted in earlier rounds — the reinforcement loop
/// of Algorithm 1.
class FamilyControlCandidate : public Candidate {
 public:
  explicit FamilyControlCandidate(double threshold = 0.5)
      : threshold_(threshold) {}

  const char* name() const override { return "family_control"; }
  bool is_pairwise() const override { return false; }
  Result<std::vector<PredictedLink>> RunGlobal(
      const graph::PropertyGraph& g) override;

 private:
  double threshold_;
};

/// Families encoded as person-link edges in g (union of PartnerOf /
/// ParentOf / SiblingOf components with >= 2 members).
std::vector<std::vector<graph::NodeId>> FamiliesFromGraph(
    const graph::PropertyGraph& g);

}  // namespace vadalink::core
