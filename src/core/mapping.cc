#include "core/mapping.h"

#include "company/company_graph.h"

namespace vadalink::core {

using datalog::Value;

Value ToEngineValue(const graph::PropertyValue& v,
                    datalog::Catalog* catalog) {
  switch (v.type()) {
    case graph::PropertyValue::Type::kNull:
      return Value::Symbol(catalog->symbols.Intern("null"));
    case graph::PropertyValue::Type::kBool:
      return Value::Bool(v.AsBool());
    case graph::PropertyValue::Type::kInt:
      return Value::Int(v.AsInt());
    case graph::PropertyValue::Type::kDouble:
      return Value::Double(v.AsDouble());
    case graph::PropertyValue::Type::kString:
      return Value::Symbol(catalog->symbols.Intern(v.AsString()));
  }
  return Value();
}

Status LoadGraphFacts(const graph::PropertyGraph& g, datalog::Database* db,
                      MappingOptions options) {
  datalog::Catalog* cat = db->catalog();
  const uint32_t company_p = cat->predicates.Intern("company");
  const uint32_t person_p = cat->predicates.Intern("person");
  const uint32_t own_p = cat->predicates.Intern("own");
  const uint32_t voting_p = cat->predicates.Intern("voting");
  const uint32_t node_p = cat->predicates.Intern("node");
  const uint32_t nodetype_p = cat->predicates.Intern("nodetype");
  const uint32_t nodefeature_p = cat->predicates.Intern("nodefeature");
  const uint32_t link_p = cat->predicates.Intern("link");
  const uint32_t edgetype_p = cat->predicates.Intern("edgetype");
  const uint32_t edgefeature_p = cat->predicates.Intern("edgefeature");

  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    Value id = Value::Int(static_cast<int64_t>(n));
    const std::string& label = g.node_label(n);
    if (label == "Company") {
      VL_RETURN_NOT_OK(db->Insert(company_p, {id}).status());
    } else if (label == "Person") {
      VL_RETURN_NOT_OK(db->Insert(person_p, {id}).status());
    }
    if (options.generic_encoding) {
      VL_RETURN_NOT_OK(db->Insert(node_p, {id}).status());
      VL_RETURN_NOT_OK(
          db->Insert(nodetype_p,
                     {id, Value::Symbol(cat->symbols.Intern(label))})
              .status());
      for (const auto& [key, value] : g.node_properties(n)) {
        VL_RETURN_NOT_OK(
            db->Insert(nodefeature_p,
                       {id, Value::Symbol(cat->symbols.Intern(key)),
                        ToEngineValue(value, cat)})
                .status());
      }
    }
  }

  Status st = Status::OK();
  g.ForEachEdge([&](graph::EdgeId e) {
    if (!st.ok()) return;
    Value eid = Value::Int(static_cast<int64_t>(e));
    Value src = Value::Int(static_cast<int64_t>(g.edge_src(e)));
    Value dst = Value::Int(static_cast<int64_t>(g.edge_dst(e)));
    const std::string& label = g.edge_label(e);
    if (label == "Shareholding") {
      const graph::PropertyValue& w =
          g.GetEdgeProperty(e, options.weight_key);
      double weight = w.is_numeric() ? w.AsNumber() : 0.0;
      auto rights = company::SplitShareRights(g, e, weight);
      if (!rights.ok()) {
        st = rights.status();
        return;
      }
      auto [cash, voting_w] = *rights;
      auto r = db->Insert(own_p, {src, dst, Value::Double(cash)});
      if (!r.ok()) {
        st = r.status();
        return;
      }
      if (voting_w > 0.0) {
        r = db->Insert(voting_p, {src, dst, Value::Double(voting_w)});
        if (!r.ok()) {
          st = r.status();
          return;
        }
      }
    }
    if (options.generic_encoding) {
      const graph::PropertyValue& w =
          g.GetEdgeProperty(e, options.weight_key);
      double weight = w.is_numeric() ? w.AsNumber() : 1.0;
      auto r = db->Insert(link_p, {eid, src, dst, Value::Double(weight)});
      if (!r.ok()) {
        st = r.status();
        return;
      }
      r = db->Insert(edgetype_p,
                     {eid, Value::Symbol(cat->symbols.Intern(label))});
      if (!r.ok()) {
        st = r.status();
        return;
      }
      for (const auto& [key, value] : g.edge_properties(e)) {
        r = db->Insert(edgefeature_p,
                       {eid, Value::Symbol(cat->symbols.Intern(key)),
                        ToEngineValue(value, cat)});
        if (!r.ok()) {
          st = r.status();
          return;
        }
      }
    }
  });
  return st;
}

Result<size_t> StorePredictedLinks(datalog::Database& db,
                                   graph::PropertyGraph* g) {
  struct PredMap {
    const char* predicate;
    const char* edge_label;
  };
  static constexpr PredMap kMaps[] = {
      {"control", "Control"},
      {"closelink", "CloseLink"},
      {"partnerof", "PartnerOf"},
      {"parentof", "ParentOf"},
      {"siblingof", "SiblingOf"},
  };
  size_t added = 0;
  for (const PredMap& m : kMaps) {
    for (datalog::RowRef tuple : db.Scan(m.predicate)) {
      if (tuple.size() < 2 || !tuple[0].is_int() || !tuple[1].is_int()) {
        // Tuples over non-node-id constants (e.g. from a program carrying
        // its own symbolic facts) have no graph counterpart: skip them.
        continue;
      }
      auto x = static_cast<graph::NodeId>(tuple[0].AsInt());
      auto y = static_cast<graph::NodeId>(tuple[1].AsInt());
      if (!g->IsValidNode(x) || !g->IsValidNode(y)) {
        return Status::OutOfRange(std::string("predicate ") + m.predicate +
                                  " references unknown node id");
      }
      if (g->FindEdge(x, y, m.edge_label) != graph::kInvalidEdge) continue;
      VL_ASSIGN_OR_RETURN(graph::EdgeId e, g->AddEdge(x, y, m.edge_label));
      g->SetEdgeProperty(e, "predicted", true);
      ++added;
    }
  }
  return added;
}

}  // namespace vadalink::core
