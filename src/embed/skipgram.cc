#include "embed/skipgram.h"

#include <cmath>

#include "embed/alias_sampler.h"

namespace vadalink::embed {

double EmbeddingMatrix::Cosine(size_t a, size_t b) const {
  const float* x = row(a);
  const float* y = row(b);
  double dot = 0.0, nx = 0.0, ny = 0.0;
  for (size_t i = 0; i < dims_; ++i) {
    dot += static_cast<double>(x[i]) * y[i];
    nx += static_cast<double>(x[i]) * x[i];
    ny += static_cast<double>(y[i]) * y[i];
  }
  if (nx <= 0.0 || ny <= 0.0) return 0.0;
  return dot / (std::sqrt(nx) * std::sqrt(ny));
}

double EmbeddingMatrix::Distance(size_t a, size_t b) const {
  const float* x = row(a);
  const float* y = row(b);
  double s = 0.0;
  for (size_t i = 0; i < dims_; ++i) {
    double d = static_cast<double>(x[i]) - y[i];
    s += d * d;
  }
  return std::sqrt(s);
}

namespace {

/// Fast logistic via clamping; training is tolerant to the approximation.
inline double Sigmoid(double x) {
  if (x > 8.0) return 1.0;
  if (x < -8.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

EmbeddingMatrix TrainSkipGram(const std::vector<std::vector<uint32_t>>& walks,
                              size_t node_count, const SkipGramConfig& config,
                              const RunContext* run_ctx) {
  const size_t dims = config.dimensions;
  EmbeddingMatrix in(node_count, dims);  // input ("center") vectors
  std::vector<float> out(node_count * dims, 0.0f);  // context vectors

  Rng rng(config.seed);
  for (size_t v = 0; v < node_count; ++v) {
    float* r = in.row(v);
    for (size_t d = 0; d < dims; ++d) {
      r[d] = static_cast<float>((rng.UniformDouble() - 0.5) / dims);
    }
  }

  // Unigram^power negative-sampling table.
  std::vector<double> freq(node_count, 0.0);
  size_t total_positions = 0;
  for (const auto& walk : walks) {
    for (uint32_t v : walk) {
      freq[v] += 1.0;
      ++total_positions;
    }
  }
  for (double& f : freq) f = std::pow(f, config.unigram_power);
  AliasSampler negative_table(freq);
  if (negative_table.empty() || total_positions == 0) return in;

  const size_t total_steps = config.epochs * total_positions;
  size_t step = 0;
  std::vector<float> grad(dims);

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (const auto& walk : walks) {
      if (!CheckRun(run_ctx).ok()) return in;
      for (size_t i = 0; i < walk.size(); ++i) {
        double progress = static_cast<double>(step++) / total_steps;
        double lr = config.initial_lr * (1.0 - progress);
        if (lr < config.min_lr) lr = config.min_lr;

        // Dynamic window, as in word2vec.
        size_t reduced = 1 + rng.UniformU64(config.window);
        size_t lo = i >= reduced ? i - reduced : 0;
        size_t hi = std::min(walk.size(), i + reduced + 1);
        uint32_t center = walk[i];
        float* v_in = in.row(center);

        for (size_t j = lo; j < hi; ++j) {
          if (j == i) continue;
          uint32_t context = walk[j];
          std::fill(grad.begin(), grad.end(), 0.0f);

          // One positive + k negative updates on the context matrix.
          for (size_t s = 0; s <= config.negatives; ++s) {
            uint32_t target;
            double label;
            if (s == 0) {
              target = context;
              label = 1.0;
            } else {
              target = static_cast<uint32_t>(negative_table.Sample(&rng));
              if (target == context) continue;
              label = 0.0;
            }
            float* v_out = out.data() + static_cast<size_t>(target) * dims;
            double dot = 0.0;
            for (size_t d = 0; d < dims; ++d) dot += v_in[d] * v_out[d];
            double g = (label - Sigmoid(dot)) * lr;
            for (size_t d = 0; d < dims; ++d) {
              grad[d] += static_cast<float>(g) * v_out[d];
              v_out[d] += static_cast<float>(g) * v_in[d];
            }
          }
          for (size_t d = 0; d < dims; ++d) v_in[d] += grad[d];
        }
      }
    }
  }
  return in;
}

}  // namespace vadalink::embed
