#include "embed/skipgram.h"

#include <atomic>
#include <cmath>

#include "embed/alias_sampler.h"

namespace vadalink::embed {

double EmbeddingMatrix::Cosine(size_t a, size_t b) const {
  const float* x = row(a);
  const float* y = row(b);
  double dot = 0.0, nx = 0.0, ny = 0.0;
  for (size_t i = 0; i < dims_; ++i) {
    dot += static_cast<double>(x[i]) * y[i];
    nx += static_cast<double>(x[i]) * x[i];
    ny += static_cast<double>(y[i]) * y[i];
  }
  if (nx <= 0.0 || ny <= 0.0) return 0.0;
  return dot / (std::sqrt(nx) * std::sqrt(ny));
}

double EmbeddingMatrix::Distance(size_t a, size_t b) const {
  const float* x = row(a);
  const float* y = row(b);
  double s = 0.0;
  for (size_t i = 0; i < dims_; ++i) {
    double d = static_cast<double>(x[i]) - y[i];
    s += d * d;
  }
  return std::sqrt(s);
}

namespace {

/// Fast logistic via clamping; training is tolerant to the approximation.
inline double Sigmoid(double x) {
  if (x > 8.0) return 1.0;
  if (x < -8.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

// Matrix element access, templated so the hogwild path goes through
// relaxed atomics (plain loads/stores on x86, but TSan- and
// standard-clean) while the sequential path compiles to the exact
// pre-parallel float arithmetic.
template <bool kAtomic>
inline float LoadF(float* p) {
  if constexpr (kAtomic) {
    return std::atomic_ref<float>(*p).load(std::memory_order_relaxed);
  } else {
    return *p;
  }
}

template <bool kAtomic>
inline void StoreF(float* p, float v) {
  if constexpr (kAtomic) {
    std::atomic_ref<float>(*p).store(v, std::memory_order_relaxed);
  } else {
    *p = v;
  }
}

/// SGNS updates for every position of one walk. `step` is the global lr
/// position counter: shared and advanced sequentially in the legacy path,
/// precomputed per walk (epoch * positions + positions_before[walk]) in
/// the hogwild path so both paths follow the same schedule.
template <bool kAtomic>
void TrainOneWalk(const std::vector<uint32_t>& walk, float* in_data,
                  float* out_data, size_t dims, const SkipGramConfig& config,
                  const AliasSampler& negative_table, Rng& rng,
                  std::vector<float>& grad, size_t& step, size_t total_steps) {
  for (size_t i = 0; i < walk.size(); ++i) {
    double progress = static_cast<double>(step++) / total_steps;
    double lr = config.initial_lr * (1.0 - progress);
    if (lr < config.min_lr) lr = config.min_lr;

    // Dynamic window, as in word2vec.
    size_t reduced = 1 + rng.UniformU64(config.window);
    size_t lo = i >= reduced ? i - reduced : 0;
    size_t hi = std::min(walk.size(), i + reduced + 1);
    uint32_t center = walk[i];
    float* v_in = in_data + static_cast<size_t>(center) * dims;

    for (size_t j = lo; j < hi; ++j) {
      if (j == i) continue;
      uint32_t context = walk[j];
      std::fill(grad.begin(), grad.end(), 0.0f);

      // One positive + k negative updates on the context matrix.
      for (size_t s = 0; s <= config.negatives; ++s) {
        uint32_t target;
        double label;
        if (s == 0) {
          target = context;
          label = 1.0;
        } else {
          target = static_cast<uint32_t>(negative_table.Sample(&rng));
          if (target == context) continue;
          label = 0.0;
        }
        float* v_out = out_data + static_cast<size_t>(target) * dims;
        double dot = 0.0;
        for (size_t d = 0; d < dims; ++d) {
          dot += LoadF<kAtomic>(v_in + d) * LoadF<kAtomic>(v_out + d);
        }
        double g = (label - Sigmoid(dot)) * lr;
        for (size_t d = 0; d < dims; ++d) {
          float vo = LoadF<kAtomic>(v_out + d);
          grad[d] += static_cast<float>(g) * vo;
          StoreF<kAtomic>(v_out + d,
                          vo + static_cast<float>(g) * LoadF<kAtomic>(v_in + d));
        }
      }
      for (size_t d = 0; d < dims; ++d) {
        StoreF<kAtomic>(v_in + d, LoadF<kAtomic>(v_in + d) + grad[d]);
      }
    }
  }
}

}  // namespace

EmbeddingMatrix TrainSkipGram(const std::vector<std::vector<uint32_t>>& walks,
                              size_t node_count, const SkipGramConfig& config,
                              const RunContext* run_ctx, ThreadPool* pool,
                              MetricsRegistry* metrics) {
  const size_t dims = config.dimensions;
  EmbeddingMatrix in(node_count, dims);  // input ("center") vectors
  std::vector<float> out(node_count * dims, 0.0f);  // context vectors

  Rng rng(config.seed);
  for (size_t v = 0; v < node_count; ++v) {
    float* r = in.row(v);
    for (size_t d = 0; d < dims; ++d) {
      r[d] = static_cast<float>((rng.UniformDouble() - 0.5) / dims);
    }
  }

  // Unigram^power negative-sampling table.
  std::vector<double> freq(node_count, 0.0);
  size_t total_positions = 0;
  for (const auto& walk : walks) {
    for (uint32_t v : walk) {
      freq[v] += 1.0;
      ++total_positions;
    }
  }
  for (double& f : freq) f = std::pow(f, config.unigram_power);
  AliasSampler negative_table(freq);
  if (negative_table.empty() || total_positions == 0) return in;

  const size_t total_steps = config.epochs * total_positions;
  float* in_data = in.row(0);
  auto record_epoch = [&]() {
    MetricAdd(metrics, "embed.skipgram.epochs", 1);
    MetricAdd(metrics, "embed.skipgram.positions", total_positions);
  };

  if (pool != nullptr && pool->thread_count() > 1) {
    // Hogwild path: lr positions are precomputed per walk so the schedule
    // matches the sequential step counting regardless of execution order.
    std::vector<size_t> positions_before(walks.size() + 1, 0);
    for (size_t w = 0; w < walks.size(); ++w) {
      positions_before[w + 1] = positions_before[w] + walks[w].size();
    }
    for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
      Status st = ParallelFor(
          pool, walks.size(), 0, run_ctx,
          [&](size_t begin, size_t end, size_t chunk) {
            Rng chunk_rng(ChunkSeed(config.seed, epoch, chunk));
            std::vector<float> grad(dims);
            for (size_t w = begin; w < end; ++w) {
              VL_RETURN_NOT_OK(CheckRun(run_ctx));
              size_t step = epoch * total_positions + positions_before[w];
              TrainOneWalk<true>(walks[w], in_data, out.data(), dims, config,
                                 negative_table, chunk_rng, grad, step,
                                 total_steps);
            }
            return Status::OK();
          });
      if (!st.ok()) return in;  // cooperative stop: partial embeddings
      record_epoch();
    }
    return in;
  }

  size_t step = 0;
  std::vector<float> grad(dims);
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (const auto& walk : walks) {
      if (!CheckRun(run_ctx).ok()) return in;
      TrainOneWalk<false>(walk, in_data, out.data(), dims, config,
                          negative_table, rng, grad, step, total_steps);
    }
    record_epoch();
  }
  return in;
}

}  // namespace vadalink::embed
