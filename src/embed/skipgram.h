// Skip-gram with negative sampling (word2vec SGNS, Mikolov et al. 2013)
// trained over node2vec walks: nodes play the role of words, walks the role
// of sentences. Produces the neighbourhood-preserving node embeddings the
// paper's first-level clustering operates on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/run_context.h"

namespace vadalink::embed {

struct SkipGramConfig {
  size_t dimensions = 64;
  size_t window = 5;
  size_t negatives = 5;       // negative samples per positive pair
  size_t epochs = 2;
  double initial_lr = 0.025;
  double min_lr = 0.0001;
  /// Exponent of the unigram distribution for negative sampling.
  double unigram_power = 0.75;
  uint64_t seed = 7;
};

/// Dense row-major embedding matrix: row v = vector of node v.
class EmbeddingMatrix {
 public:
  EmbeddingMatrix() = default;
  EmbeddingMatrix(size_t nodes, size_t dims)
      : nodes_(nodes), dims_(dims), data_(nodes * dims, 0.0f) {}

  size_t node_count() const { return nodes_; }
  size_t dimensions() const { return dims_; }
  float* row(size_t v) { return data_.data() + v * dims_; }
  const float* row(size_t v) const { return data_.data() + v * dims_; }

  /// Cosine similarity between two rows (0 if either is a zero vector).
  double Cosine(size_t a, size_t b) const;

  /// Euclidean distance between two rows.
  double Distance(size_t a, size_t b) const;

 private:
  size_t nodes_ = 0;
  size_t dims_ = 0;
  std::vector<float> data_;
};

/// Trains SGNS embeddings over walks covering node ids [0, node_count).
/// An optional RunContext is polled once per walk per epoch; when it
/// trips, training stops cooperatively and the partially trained (still
/// usable) embeddings are returned.
///
/// With a multi-thread `pool`, epochs train hogwild-style (Niu et al.
/// 2011): walk chunks update the shared matrices concurrently through
/// relaxed atomics, each chunk sampling from its own ChunkSeed-derived
/// RNG and stepping the lr schedule from its walk's sequential position.
/// Lossy concurrent updates make the parallel result run-to-run
/// nondeterministic (SGNS quality is tolerant to this); pool == nullptr
/// keeps the legacy sequential path byte-identical.
///
/// `metrics` (nullable) receives embed.skipgram.epochs (completed
/// epochs) and embed.skipgram.positions (walk positions trained by
/// completed epochs).
EmbeddingMatrix TrainSkipGram(const std::vector<std::vector<uint32_t>>& walks,
                              size_t node_count, const SkipGramConfig& config,
                              const RunContext* run_ctx = nullptr,
                              ThreadPool* pool = nullptr,
                              MetricsRegistry* metrics = nullptr);

}  // namespace vadalink::embed
