// #GraphEmbedClust — the paper's first-level clustering (Section 4.1):
// node2vec walks -> skip-gram embeddings -> k-means assignments.
#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/run_context.h"
#include "common/status.h"
#include "embed/kmeans.h"
#include "embed/node2vec.h"
#include "embed/skipgram.h"
#include "graph/property_graph.h"

namespace vadalink::embed {

struct EmbedClusterConfig {
  WalkConfig walk;
  SkipGramConfig skipgram;
  KMeansConfig kmeans;
};

/// End-to-end embedding-based clusterer.
class EmbedClusterer {
 public:
  explicit EmbedClusterer(EmbedClusterConfig config = {})
      : config_(std::move(config)) {}

  const EmbedClusterConfig& config() const { return config_; }
  EmbedClusterConfig* mutable_config() { return &config_; }

  /// Embeds the graph and clusters the nodes. Returns one cluster id per
  /// node, or kInvalidArgument when the configuration is unusable (zero
  /// embedding dimensions or walk length). Recomputed from scratch at each
  /// call (the recursive self-improving loop of Algorithm 1 calls this
  /// once per round, with the newly predicted edges present in `g`). An
  /// optional RunContext bounds the walk / training / clustering stages;
  /// when it trips mid-pipeline the call still succeeds with a full-length
  /// (possibly degenerate) assignment and last_interrupted() reports the
  /// truncation so callers can fall back (VadaLink degrades to
  /// feature-blocking-only for the round). An optional multi-thread `pool`
  /// parallelizes walks, skip-gram training and k-means (see the stage
  /// headers for each stage's determinism contract). `metrics` (nullable)
  /// flows into every stage and wraps them in walks / skipgram / kmeans
  /// spans nested under the caller's current span.
  Result<std::vector<uint32_t>> Cluster(const graph::PropertyGraph& g,
                                        const RunContext* run_ctx = nullptr,
                                        ThreadPool* pool = nullptr,
                                        MetricsRegistry* metrics = nullptr);

  /// Embeddings of the last Cluster() call (empty before any call).
  const EmbeddingMatrix& last_embedding() const { return embedding_; }
  const KMeansResult& last_kmeans() const { return kmeans_; }
  /// True when the last Cluster() was cut short by its RunContext.
  bool last_interrupted() const { return interrupted_; }

 private:
  EmbedClusterConfig config_;
  EmbeddingMatrix embedding_;
  KMeansResult kmeans_;
  bool interrupted_ = false;
};

}  // namespace vadalink::embed
