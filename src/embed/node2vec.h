// node2vec biased random walks (Grover & Leskovec, KDD 2016) — the walk
// generator behind #GraphEmbedClust (Section 4.1 of the paper).
//
// Walks are second-order: the transition from `cur` after arriving from
// `prev` weights each neighbour x by  w(cur,x) * bias, with bias 1/p if
// x == prev (return), 1 if x is adjacent to prev (BFS-like), and 1/q
// otherwise (DFS-like). The graph is traversed as undirected, matching the
// reference implementation's treatment of ownership edges.
#pragma once

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/run_context.h"
#include "graph/property_graph.h"

namespace vadalink::embed {

struct WalkConfig {
  size_t walk_length = 20;
  size_t walks_per_node = 8;
  double p = 1.0;  // return parameter
  double q = 1.0;  // in-out parameter
  /// Edge property to use as transition weight; unset/absent weights are 1.
  std::string weight_property = "w";
  uint64_t seed = 42;
};

/// Undirected weighted adjacency snapshot of a property graph, with sorted
/// neighbour arrays for O(log d) adjacency tests.
class WalkGraph {
 public:
  WalkGraph(const graph::PropertyGraph& g, const std::string& weight_property);

  size_t node_count() const { return adj_.size(); }
  const std::vector<uint32_t>& neighbors(uint32_t v) const { return adj_[v]; }
  const std::vector<double>& weights(uint32_t v) const { return wgt_[v]; }
  bool HasEdge(uint32_t a, uint32_t b) const;

 private:
  std::vector<std::vector<uint32_t>> adj_;  // sorted
  std::vector<std::vector<double>> wgt_;    // aligned with adj_
};

/// Generates node2vec walks; each walk is a sequence of node ids. Isolated
/// nodes yield length-1 walks (their id alone). An optional RunContext is
/// polled between walks (one work unit each); when it trips, generation
/// stops cooperatively and the walks produced so far are returned.
///
/// With a multi-thread `pool`, each round fans out over node-id chunks,
/// every chunk walking from its own ChunkSeed-derived RNG, and chunk
/// results are merged in ascending chunk order — output is deterministic
/// for any pool with >= 2 threads (but differs from the sequential
/// shuffled-order stream; pool == nullptr keeps the legacy path
/// byte-identical).
///
/// `metrics` (nullable) receives the embed.walks.generated counter and
/// the embed.walk.length histogram, both counted at the deterministic
/// merge points so totals are thread-count invariant.
std::vector<std::vector<uint32_t>> GenerateWalks(
    const WalkGraph& graph, const WalkConfig& config,
    const RunContext* run_ctx = nullptr, ThreadPool* pool = nullptr,
    MetricsRegistry* metrics = nullptr);

}  // namespace vadalink::embed
