#include "embed/node2vec.h"

#include <algorithm>

namespace vadalink::embed {

WalkGraph::WalkGraph(const graph::PropertyGraph& g,
                     const std::string& weight_property) {
  const size_t n = g.node_count();
  adj_.resize(n);
  wgt_.resize(n);

  // Collect undirected (neighbour, weight) pairs, then sort and merge
  // parallel edges by weight sum.
  std::vector<std::vector<std::pair<uint32_t, double>>> tmp(n);
  g.ForEachEdge([&](graph::EdgeId e) {
    uint32_t a = g.edge_src(e), b = g.edge_dst(e);
    if (a == b) return;  // self-loops do not contribute to walks
    const graph::PropertyValue& wp = g.GetEdgeProperty(e, weight_property);
    double w = wp.is_numeric() ? wp.AsNumber() : 1.0;
    if (w <= 0.0) w = 1e-9;
    tmp[a].push_back({b, w});
    tmp[b].push_back({a, w});
  });
  for (size_t v = 0; v < n; ++v) {
    auto& pairs = tmp[v];
    std::sort(pairs.begin(), pairs.end());
    adj_[v].reserve(pairs.size());
    wgt_[v].reserve(pairs.size());
    for (const auto& [u, w] : pairs) {
      if (!adj_[v].empty() && adj_[v].back() == u) {
        wgt_[v].back() += w;  // merge parallel edges
      } else {
        adj_[v].push_back(u);
        wgt_[v].push_back(w);
      }
    }
  }
}

bool WalkGraph::HasEdge(uint32_t a, uint32_t b) const {
  const auto& nbrs = adj_[a];
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

namespace {

// One biased walk from `start`, drawing every step from `rng`; `bias` is a
// caller-owned scratch buffer so hot loops do not reallocate.
std::vector<uint32_t> WalkFrom(const WalkGraph& graph,
                               const WalkConfig& config, uint32_t start,
                               Rng& rng, std::vector<double>& bias) {
  std::vector<uint32_t> walk{start};
  if (graph.neighbors(start).empty()) return walk;
  walk.reserve(config.walk_length);
  uint32_t prev = start;
  // First step: plain weighted choice.
  {
    const auto& w = graph.weights(start);
    size_t pick = rng.WeightedIndex(w);
    walk.push_back(graph.neighbors(start)[pick]);
  }
  while (walk.size() < config.walk_length) {
    uint32_t cur = walk.back();
    const auto& nbrs = graph.neighbors(cur);
    if (nbrs.empty()) break;
    const auto& w = graph.weights(cur);
    bias.resize(nbrs.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      uint32_t x = nbrs[i];
      double factor;
      if (x == prev) {
        factor = 1.0 / config.p;
      } else if (graph.HasEdge(prev, x)) {
        factor = 1.0;
      } else {
        factor = 1.0 / config.q;
      }
      bias[i] = w[i] * factor;
    }
    size_t pick = rng.WeightedIndex(bias);
    prev = cur;
    walk.push_back(nbrs[pick]);
  }
  return walk;
}

}  // namespace

std::vector<std::vector<uint32_t>> GenerateWalks(const WalkGraph& graph,
                                                 const WalkConfig& config,
                                                 const RunContext* run_ctx,
                                                 ThreadPool* pool,
                                                 MetricsRegistry* metrics) {
  const size_t n = graph.node_count();
  std::vector<std::vector<uint32_t>> walks;
  walks.reserve(n * config.walks_per_node);
  MetricsCounter* walk_counter =
      metrics ? metrics->Counter("embed.walks.generated") : nullptr;
  MetricsHistogram* length_hist =
      metrics ? metrics->Histogram("embed.walk.length") : nullptr;
  // Counted at the sequential merge points (not inside workers), so the
  // totals are exact and thread-count invariant.
  auto record_walk = [&](const std::vector<uint32_t>& w) {
    if (walk_counter != nullptr) walk_counter->Increment();
    if (length_hist != nullptr) length_hist->Record(w.size());
  };

  if (pool != nullptr && pool->thread_count() > 1) {
    // Parallel path: nodes in id order, one RNG per chunk derived from
    // (seed, round, chunk), merged in ascending chunk order — identical
    // output for every thread count >= 2.
    for (size_t round = 0; round < config.walks_per_node; ++round) {
      const size_t g = ResolveGrain(n, 0, pool);
      const size_t num_chunks = (n + g - 1) / g;
      std::vector<std::vector<std::vector<uint32_t>>> chunk_walks(num_chunks);
      Status st = ParallelFor(
          pool, n, 0, run_ctx,
          [&](size_t begin, size_t end, size_t chunk) {
            Rng rng(ChunkSeed(config.seed, round, chunk));
            std::vector<double> bias;
            auto& out = chunk_walks[chunk];
            out.reserve(end - begin);
            for (size_t v = begin; v < end; ++v) {
              VL_RETURN_NOT_OK(ConsumeRunWork(run_ctx, 1));
              out.push_back(WalkFrom(graph, config,
                                     static_cast<uint32_t>(v), rng, bias));
            }
            return Status::OK();
          });
      for (auto& cw : chunk_walks) {
        for (auto& w : cw) {
          record_walk(w);
          walks.push_back(std::move(w));
        }
      }
      if (!st.ok()) return walks;  // cooperative stop: partial walks
    }
    return walks;
  }

  Rng rng(config.seed);
  // Node visit order is shuffled per round, as in the reference
  // implementation, so early-stopping effects do not bias low node ids.
  std::vector<uint32_t> order(n);
  for (uint32_t v = 0; v < n; ++v) order[v] = v;

  std::vector<double> bias;  // reused buffer
  for (size_t round = 0; round < config.walks_per_node; ++round) {
    rng.Shuffle(&order);
    for (uint32_t start : order) {
      if (!ConsumeRunWork(run_ctx, 1).ok()) return walks;
      walks.push_back(WalkFrom(graph, config, start, rng, bias));
      record_walk(walks.back());
    }
  }
  return walks;
}

}  // namespace vadalink::embed
