// Lloyd's k-means with k-means++ seeding over embedding rows. Assigns the
// first-level cluster ids (b1) of the paper's two-level blocking.
#pragma once

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/run_context.h"
#include "embed/skipgram.h"

namespace vadalink::embed {

struct KMeansConfig {
  size_t k = 8;
  size_t max_iterations = 50;
  /// Relative decrease of total inertia below which iteration stops.
  double tolerance = 1e-4;
  uint64_t seed = 99;
};

struct KMeansResult {
  /// node -> cluster id in [0, k_effective)
  std::vector<uint32_t> assignment;
  /// centroids, row-major k x dims
  std::vector<double> centroids;
  size_t k_effective = 0;  // min(k, #points)
  double inertia = 0.0;    // sum of squared distances to centroids
  size_t iterations = 0;
  /// Empty clusters re-seeded during Lloyd iteration (each is moved to
  /// the point farthest from its assigned centroid — deterministic, no
  /// RNG draw — so cluster counts cannot silently freeze below k).
  size_t empty_reseeds = 0;
  /// True when a RunContext stopped Lloyd iteration before convergence;
  /// the assignment of the last completed iteration is still returned.
  bool interrupted = false;
};

/// Clusters the rows of `matrix`. k is capped at the number of points. An
/// optional RunContext is polled per Lloyd iteration (one work unit each).
///
/// With a multi-thread `pool`, the seeding distance pass and the Lloyd
/// assignment step fan out over point chunks with chunk-order reduction of
/// the partial sums — deterministic for any pool with >= 2 threads (the
/// chunked floating-point summation order differs from the sequential
/// path, so results can deviate from pool == nullptr within rounding;
/// pool == nullptr keeps the legacy path byte-identical). The RunContext
/// is still polled only between Lloyd iterations, so governor trips keep
/// iteration granularity.
///
/// `metrics` (nullable) receives embed.kmeans.iterations /
/// embed.kmeans.reseeds counters and the embed.kmeans.inertia gauge.
KMeansResult KMeans(const EmbeddingMatrix& matrix, const KMeansConfig& config,
                    const RunContext* run_ctx = nullptr,
                    ThreadPool* pool = nullptr,
                    MetricsRegistry* metrics = nullptr);

}  // namespace vadalink::embed
