#include "embed/kmeans.h"

#include <cmath>
#include <limits>

namespace vadalink::embed {

namespace {

double SqDist(const float* x, const double* c, size_t dims) {
  double s = 0.0;
  for (size_t d = 0; d < dims; ++d) {
    double diff = static_cast<double>(x[d]) - c[d];
    s += diff * diff;
  }
  return s;
}

/// Per-chunk accumulator of the Lloyd assignment step; merged in ascending
/// chunk order so the parallel reduction is deterministic.
struct AssignAcc {
  std::vector<size_t> counts;
  std::vector<double> sums;
  double inertia = 0.0;
};

}  // namespace

KMeansResult KMeans(const EmbeddingMatrix& matrix, const KMeansConfig& config,
                    const RunContext* run_ctx, ThreadPool* pool,
                    MetricsRegistry* metrics) {
  KMeansResult res;
  const size_t n = matrix.node_count();
  const size_t dims = matrix.dimensions();
  res.assignment.assign(n, 0);
  if (n == 0) return res;

  const size_t k = std::min(config.k == 0 ? 1 : config.k, n);
  res.k_effective = k;
  Rng rng(config.seed);
  const bool parallel = pool != nullptr && pool->thread_count() > 1;

  // k-means++ seeding.
  std::vector<double> centroids(k * dims, 0.0);
  std::vector<double> min_sq(n, std::numeric_limits<double>::max());
  size_t first = rng.UniformU64(n);
  for (size_t d = 0; d < dims; ++d) {
    centroids[d] = matrix.row(first)[d];
  }
  for (size_t c = 1; c < k; ++c) {
    // Update distances to the nearest chosen centroid.
    const double* last = centroids.data() + (c - 1) * dims;
    double total = 0.0;
    if (parallel) {
      // min_sq writes are disjoint per point; the total is reduced in
      // chunk order. Inner loops never poll the RunContext: governor
      // trips keep their documented iteration-level granularity.
      ParallelReduce<double>(
          pool, n, 0, nullptr, &total,
          [&](size_t begin, size_t end, size_t, double* acc) {
            for (size_t v = begin; v < end; ++v) {
              double d2 = SqDist(matrix.row(v), last, dims);
              if (d2 < min_sq[v]) min_sq[v] = d2;
              *acc += min_sq[v];
            }
            return Status::OK();
          },
          [](double* out, double* acc) { *out += *acc; });
    } else {
      for (size_t v = 0; v < n; ++v) {
        double d2 = SqDist(matrix.row(v), last, dims);
        if (d2 < min_sq[v]) min_sq[v] = d2;
        total += min_sq[v];
      }
    }
    size_t chosen;
    if (total <= 0.0) {
      chosen = rng.UniformU64(n);  // all points coincide
    } else {
      double target = rng.UniformDouble() * total;
      double acc = 0.0;
      chosen = n - 1;
      for (size_t v = 0; v < n; ++v) {
        acc += min_sq[v];
        if (target < acc) {
          chosen = v;
          break;
        }
      }
    }
    double* dst = centroids.data() + c * dims;
    for (size_t d = 0; d < dims; ++d) dst[d] = matrix.row(chosen)[d];
  }

  // Lloyd iterations.
  std::vector<size_t> counts(k);
  std::vector<double> sums(k * dims);
  // Squared distance of each point to its assigned centroid, refreshed by
  // every assignment pass (disjoint per-point writes, so the parallel
  // path fills it identically). Feeds the empty-cluster reseed below.
  std::vector<double> dists(n, 0.0);
  double prev_inertia = std::numeric_limits<double>::max();
  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    if (!ConsumeRunWork(run_ctx, 1).ok()) {
      res.interrupted = true;
      break;
    }
    res.iterations = iter + 1;
    double inertia = 0.0;
    std::fill(counts.begin(), counts.end(), 0);
    std::fill(sums.begin(), sums.end(), 0.0);
    auto assign_point = [&](size_t v, size_t* cnts, double* sms,
                            double* inert) {
      double best = std::numeric_limits<double>::max();
      uint32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        double d2 = SqDist(matrix.row(v), centroids.data() + c * dims, dims);
        if (d2 < best) {
          best = d2;
          best_c = static_cast<uint32_t>(c);
        }
      }
      res.assignment[v] = best_c;
      dists[v] = best;
      *inert += best;
      ++cnts[best_c];
      double* sum = sms + best_c * dims;
      const float* row = matrix.row(v);
      for (size_t d = 0; d < dims; ++d) sum[d] += row[d];
    };
    if (parallel) {
      AssignAcc total;
      total.counts.assign(k, 0);
      total.sums.assign(k * dims, 0.0);
      ParallelReduce<AssignAcc>(
          pool, n, 0, nullptr, &total,
          [&](size_t begin, size_t end, size_t, AssignAcc* acc) {
            acc->counts.assign(k, 0);
            acc->sums.assign(k * dims, 0.0);
            for (size_t v = begin; v < end; ++v) {
              assign_point(v, acc->counts.data(), acc->sums.data(),
                           &acc->inertia);
            }
            return Status::OK();
          },
          [](AssignAcc* out, AssignAcc* acc) {
            for (size_t i = 0; i < out->counts.size(); ++i) {
              out->counts[i] += acc->counts[i];
            }
            for (size_t i = 0; i < out->sums.size(); ++i) {
              out->sums[i] += acc->sums[i];
            }
            out->inertia += acc->inertia;
          });
      counts = std::move(total.counts);
      sums = std::move(total.sums);
      inertia = total.inertia;
    } else {
      for (size_t v = 0; v < n; ++v) {
        assign_point(v, counts.data(), sums.data(), &inertia);
      }
    }
    // Move non-empty centroids to their means first, then re-seed each
    // empty cluster at the point farthest from its assigned centroid
    // (deterministic: strict > keeps the lowest index on ties, and the
    // chosen point's distance is zeroed so successive empty clusters pick
    // distinct points). The previous random reseed left the rest of the
    // iteration deterministic but could re-land on a covered region and
    // freeze the effective cluster count below k.
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      double* dst = centroids.data() + c * dims;
      const double* sum = sums.data() + c * dims;
      for (size_t d = 0; d < dims; ++d) {
        dst[d] = sum[d] / static_cast<double>(counts[c]);
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] != 0) continue;
      size_t farthest = 0;
      double far_d = -1.0;
      for (size_t v = 0; v < n; ++v) {
        if (dists[v] > far_d) {
          far_d = dists[v];
          farthest = v;
        }
      }
      double* dst = centroids.data() + c * dims;
      for (size_t d = 0; d < dims; ++d) dst[d] = matrix.row(farthest)[d];
      dists[farthest] = 0.0;
      ++res.empty_reseeds;
    }
    res.inertia = inertia;
    if (prev_inertia < std::numeric_limits<double>::max()) {
      double rel = prev_inertia > 0.0
                       ? (prev_inertia - inertia) / prev_inertia
                       : 0.0;
      if (rel >= 0.0 && rel < config.tolerance) break;
    }
    prev_inertia = inertia;
  }
  res.centroids = std::move(centroids);
  MetricAdd(metrics, "embed.kmeans.iterations", res.iterations);
  MetricAdd(metrics, "embed.kmeans.reseeds", res.empty_reseeds);
  if (res.interrupted) MetricAdd(metrics, "embed.kmeans.interrupts", 1);
  MetricSet(metrics, "embed.kmeans.inertia", res.inertia);
  MetricSet(metrics, "embed.kmeans.k_effective",
            static_cast<double>(res.k_effective));
  return res;
}

}  // namespace vadalink::embed
