#include "embed/kmeans.h"

#include <cmath>
#include <limits>

namespace vadalink::embed {

namespace {

double SqDist(const float* x, const double* c, size_t dims) {
  double s = 0.0;
  for (size_t d = 0; d < dims; ++d) {
    double diff = static_cast<double>(x[d]) - c[d];
    s += diff * diff;
  }
  return s;
}

}  // namespace

KMeansResult KMeans(const EmbeddingMatrix& matrix, const KMeansConfig& config,
                    const RunContext* run_ctx) {
  KMeansResult res;
  const size_t n = matrix.node_count();
  const size_t dims = matrix.dimensions();
  res.assignment.assign(n, 0);
  if (n == 0) return res;

  const size_t k = std::min(config.k == 0 ? 1 : config.k, n);
  res.k_effective = k;
  Rng rng(config.seed);

  // k-means++ seeding.
  std::vector<double> centroids(k * dims, 0.0);
  std::vector<double> min_sq(n, std::numeric_limits<double>::max());
  size_t first = rng.UniformU64(n);
  for (size_t d = 0; d < dims; ++d) {
    centroids[d] = matrix.row(first)[d];
  }
  for (size_t c = 1; c < k; ++c) {
    // Update distances to the nearest chosen centroid.
    const double* last = centroids.data() + (c - 1) * dims;
    double total = 0.0;
    for (size_t v = 0; v < n; ++v) {
      double d2 = SqDist(matrix.row(v), last, dims);
      if (d2 < min_sq[v]) min_sq[v] = d2;
      total += min_sq[v];
    }
    size_t chosen;
    if (total <= 0.0) {
      chosen = rng.UniformU64(n);  // all points coincide
    } else {
      double target = rng.UniformDouble() * total;
      double acc = 0.0;
      chosen = n - 1;
      for (size_t v = 0; v < n; ++v) {
        acc += min_sq[v];
        if (target < acc) {
          chosen = v;
          break;
        }
      }
    }
    double* dst = centroids.data() + c * dims;
    for (size_t d = 0; d < dims; ++d) dst[d] = matrix.row(chosen)[d];
  }

  // Lloyd iterations.
  std::vector<size_t> counts(k);
  std::vector<double> sums(k * dims);
  double prev_inertia = std::numeric_limits<double>::max();
  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    if (!ConsumeRunWork(run_ctx, 1).ok()) {
      res.interrupted = true;
      break;
    }
    res.iterations = iter + 1;
    double inertia = 0.0;
    std::fill(counts.begin(), counts.end(), 0);
    std::fill(sums.begin(), sums.end(), 0.0);
    for (size_t v = 0; v < n; ++v) {
      double best = std::numeric_limits<double>::max();
      uint32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        double d2 = SqDist(matrix.row(v), centroids.data() + c * dims, dims);
        if (d2 < best) {
          best = d2;
          best_c = static_cast<uint32_t>(c);
        }
      }
      res.assignment[v] = best_c;
      inertia += best;
      ++counts[best_c];
      double* sum = sums.data() + best_c * dims;
      const float* row = matrix.row(v);
      for (size_t d = 0; d < dims; ++d) sum[d] += row[d];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        size_t v = rng.UniformU64(n);
        double* dst = centroids.data() + c * dims;
        for (size_t d = 0; d < dims; ++d) dst[d] = matrix.row(v)[d];
        continue;
      }
      double* dst = centroids.data() + c * dims;
      const double* sum = sums.data() + c * dims;
      for (size_t d = 0; d < dims; ++d) {
        dst[d] = sum[d] / static_cast<double>(counts[c]);
      }
    }
    res.inertia = inertia;
    if (prev_inertia < std::numeric_limits<double>::max()) {
      double rel = prev_inertia > 0.0
                       ? (prev_inertia - inertia) / prev_inertia
                       : 0.0;
      if (rel >= 0.0 && rel < config.tolerance) break;
    }
    prev_inertia = inertia;
  }
  res.centroids = std::move(centroids);
  return res;
}

}  // namespace vadalink::embed
