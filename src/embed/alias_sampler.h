// Walker's alias method: O(1) sampling from a fixed discrete distribution
// after O(n) setup. Used by the node2vec walk generator and the skip-gram
// negative-sampling table.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace vadalink::embed {

class AliasSampler {
 public:
  AliasSampler() = default;

  /// Builds the alias table for (unnormalised, non-negative) weights.
  /// An empty or all-zero weight vector yields an empty sampler.
  explicit AliasSampler(const std::vector<double>& weights);

  bool empty() const { return prob_.empty(); }
  size_t size() const { return prob_.size(); }

  /// Samples an index in [0, size()). Precondition: !empty().
  size_t Sample(Rng* rng) const;

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace vadalink::embed
