#include "embed/embed_clusterer.h"

namespace vadalink::embed {

std::vector<uint32_t> EmbedClusterer::Cluster(const graph::PropertyGraph& g) {
  WalkGraph wg(g, config_.walk.weight_property);
  auto walks = GenerateWalks(wg, config_.walk);
  embedding_ = TrainSkipGram(walks, g.node_count(), config_.skipgram);
  kmeans_ = KMeans(embedding_, config_.kmeans);
  return kmeans_.assignment;
}

}  // namespace vadalink::embed
