#include "embed/embed_clusterer.h"

namespace vadalink::embed {

Result<std::vector<uint32_t>> EmbedClusterer::Cluster(
    const graph::PropertyGraph& g, const RunContext* run_ctx,
    ThreadPool* pool, MetricsRegistry* metrics) {
  if (config_.skipgram.dimensions == 0) {
    return Status::InvalidArgument(
        "EmbedClusterConfig.skipgram.dimensions must be positive");
  }
  if (config_.walk.walk_length == 0) {
    return Status::InvalidArgument(
        "EmbedClusterConfig.walk.walk_length must be positive");
  }
  interrupted_ = false;
  WalkGraph wg(g, config_.walk.weight_property);
  std::vector<std::vector<uint32_t>> walks;
  {
    ScopedSpan span(metrics, "walks", run_ctx);
    walks = GenerateWalks(wg, config_.walk, run_ctx, pool, metrics);
  }
  // A stage that trips its context leaves the remaining stages no budget;
  // each stop is cooperative, so the pipeline still hands back a usable
  // (if degraded) assignment and flags the truncation.
  if (!CheckRunNow(run_ctx).ok()) interrupted_ = true;
  {
    ScopedSpan span(metrics, "skipgram", run_ctx);
    embedding_ = TrainSkipGram(walks, g.node_count(), config_.skipgram,
                               run_ctx, pool, metrics);
  }
  if (!CheckRunNow(run_ctx).ok()) interrupted_ = true;
  {
    ScopedSpan span(metrics, "kmeans", run_ctx);
    kmeans_ = KMeans(embedding_, config_.kmeans, run_ctx, pool, metrics);
  }
  if (kmeans_.interrupted) interrupted_ = true;
  return kmeans_.assignment;
}

}  // namespace vadalink::embed
