#include "embed/alias_sampler.h"

#include <cassert>

namespace vadalink::embed {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (weights.empty() || total <= 0.0) return;

  const size_t n = weights.size();
  prob_.resize(n);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t AliasSampler::Sample(Rng* rng) const {
  size_t i = rng->UniformU64(prob_.size());
  return rng->UniformDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace vadalink::embed
