// Corporate group structure analytics — the corporate-economics analyses
// the paper's introduction motivates (ownership concentration, dispersion
// of control, buy-backs): ultimate beneficial owners via integrated
// ownership, control pyramids, and circular cross-shareholding groups.
#pragma once

#include <vector>

#include "company/company_graph.h"
#include "company/ownership.h"

namespace vadalink::company {

/// An ultimate owner of a company: a person whose integrated (walk-sum)
/// ownership of the company meets the threshold.
struct UltimateOwner {
  graph::NodeId person;
  double integrated_ownership;
};

/// Ultimate beneficial owners of `target` at `threshold` (default: the 25%
/// of AML regulations), sorted by decreasing stake. Integrated ownership is
/// the all-walks fixpoint (cross-holdings accounted geometrically).
std::vector<UltimateOwner> UltimateOwnersOf(const CompanyGraph& cg,
                                            graph::NodeId target,
                                            double threshold = 0.25,
                                            OwnershipConfig config = {});

/// Length of the longest chain of direct majority stakes starting at x:
/// x -> c1 -> c2 -> ... with DirectShare > 0.5 at every hop. Depth 0 means
/// x holds no direct majority stake. Cycles of majority stakes are
/// traversed at most once.
size_t ControlPyramidDepth(const CompanyGraph& cg, graph::NodeId x);

/// A circular cross-shareholding group: a strongly connected set of
/// companies (size >= 2) in the shareholding graph, or a single company
/// owning its own shares (buy-back).
struct CrossShareholdingGroup {
  std::vector<graph::NodeId> members;
  bool is_buy_back = false;  // single self-owning company
};

std::vector<CrossShareholdingGroup> CircularOwnershipGroups(
    const CompanyGraph& cg);

}  // namespace vadalink::company
