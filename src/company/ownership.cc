#include "company/ownership.h"

#include <algorithm>
#include <vector>

namespace vadalink::company {

namespace {

struct DfsState {
  const CompanyGraph* cg;
  const OwnershipConfig* config;
  const RunContext* run_ctx;
  std::vector<bool> on_path;
  std::unordered_map<graph::NodeId, double>* acc;
  OwnershipStats* stats;
};

void Dfs(DfsState* st, graph::NodeId v, double product) {
  if (st->stats->truncated) return;
  for (const Shareholding& s : st->cg->holdings(v)) {
    double p = product * s.w;  // cash-flow rights drive ownership
    if (p < st->config->epsilon) continue;
    if (st->on_path[s.dst]) continue;  // simple paths only
    if (st->stats->paths_expanded >= st->config->max_paths) {
      st->stats->truncated = true;
      return;
    }
    if (Status ctx = ConsumeRunWork(st->run_ctx, 1); !ctx.ok()) {
      st->stats->truncated = true;
      st->stats->interrupt = std::move(ctx);
      return;
    }
    ++st->stats->paths_expanded;
    (*st->acc)[s.dst] += p;
    st->on_path[s.dst] = true;
    Dfs(st, s.dst, p);
    st->on_path[s.dst] = false;
    if (st->stats->truncated) return;
  }
}

}  // namespace

std::unordered_map<graph::NodeId, double> AccumulatedOwnershipSimplePaths(
    const CompanyGraph& cg, graph::NodeId x, OwnershipConfig config,
    OwnershipStats* stats, const RunContext* run_ctx,
    MetricsRegistry* metrics) {
  std::unordered_map<graph::NodeId, double> acc;
  OwnershipStats local;
  if (stats == nullptr) stats = &local;
  *stats = OwnershipStats{};
  DfsState st{&cg,  &config, run_ctx,
              std::vector<bool>(cg.node_count(), false), &acc, stats};
  st.on_path[x] = true;
  Dfs(&st, x, 1.0);
  MetricAdd(metrics, "company.ownership.paths_expanded",
            stats->paths_expanded);
  if (stats->truncated) {
    MetricAdd(metrics, "company.ownership.path_truncations", 1);
  }
  return acc;
}

std::unordered_map<graph::NodeId, double> AccumulatedOwnershipWalkSum(
    const CompanyGraph& cg, graph::NodeId x, OwnershipConfig config,
    OwnershipStats* stats, const RunContext* run_ctx,
    MetricsRegistry* metrics) {
  // Level-wise propagation: frontier holds the mass of walks of the
  // current length; acc accumulates across lengths, capped at 1.0 per
  // target (no entity owns more than the whole of another). The fixpoint
  // is reached when every surviving contribution drops below epsilon;
  // cyclic structures whose mass does not decay (weight >= 1 cycles, bad
  // data) would otherwise grow or oscillate forever, so max_depth is the
  // non-convergence guard and trips are reported, not swallowed.
  OwnershipStats local;
  if (stats == nullptr) stats = &local;
  *stats = OwnershipStats{};
  std::unordered_map<graph::NodeId, double> acc;
  std::unordered_map<graph::NodeId, double> frontier{{x, 1.0}};
  for (size_t depth = 0; depth < config.max_depth && !frontier.empty();
       ++depth) {
    if (Status ctx = CheckRunNow(run_ctx); !ctx.ok()) {
      stats->truncated = true;
      stats->converged = false;
      stats->interrupt = std::move(ctx);
      break;
    }
    std::unordered_map<graph::NodeId, double> next;
    for (const auto& [v, mass] : frontier) {
      for (const Shareholding& s : cg.holdings(v)) {
        double p = mass * s.w;
        if (p < config.epsilon) continue;
        ++stats->paths_expanded;
        next[s.dst] += p;
      }
    }
    for (const auto& [v, mass] : next) {
      acc[v] = std::min(acc[v] + mass, 1.0);
    }
    frontier = std::move(next);
    stats->depth_reached = depth + 1;
  }
  if (!frontier.empty() && stats->interrupt.ok()) {
    // Ran out of depth with live walk mass: the geometric sum had not
    // converged to epsilon. The result is a partial (lower-bound) sum.
    stats->converged = false;
    stats->truncated = true;
    MetricAdd(metrics, "company.ownership.walksum.nonconvergent", 1);
  }
  if (stats->truncated) {
    // Every truncation — depth exhaustion or a governor interrupt — counts
    // here, one per root, matching the SimplePaths accounting: the two
    // variants share the "result is partial" metric, the walksum.* ones
    // stay variant-specific.
    MetricAdd(metrics, "company.ownership.path_truncations", 1);
  }
  MetricAdd(metrics, "company.ownership.walksum_levels",
            stats->depth_reached);
  return acc;
}

double AccumulatedOwnership(const CompanyGraph& cg, graph::NodeId x,
                            graph::NodeId y, OwnershipConfig config) {
  auto acc = AccumulatedOwnershipSimplePaths(cg, x, config);
  auto it = acc.find(y);
  return it == acc.end() ? 0.0 : it->second;
}

}  // namespace vadalink::company
