// Personal-connection detection and the family-integrated notions of
// control and close link (Definitions 2.8 / 2.9 and Algorithms 7-9).
//
// Person pairs surviving the blocking stage are scored by the Bayesian
// classifier; pairs above threshold become typed family links. Link type
// is assigned by a birth-distance/sex heuristic, and linked persons are
// merged into family groups that act as single centres of interest.
#pragma once

#include <string>
#include <vector>

#include "company/close_link.h"
#include "company/company_graph.h"
#include "company/control.h"
#include "graph/property_graph.h"
#include "linkage/bayes.h"
#include "linkage/blocking.h"

namespace vadalink::company {

/// A detected personal connection.
struct PersonLink {
  graph::NodeId x;
  graph::NodeId y;
  std::string kind;    // "PartnerOf", "SiblingOf", "ParentOf"
  double probability;  // classifier output
};

struct FamilyDetectorConfig {
  /// Classifier decision threshold (paper: #LinkProbability(...) > 0.5).
  double probability_threshold = 0.5;
  /// Max |birth_year difference| for a same-generation link.
  int64_t same_generation_span = 15;
  /// Min |birth_year difference| for a parent/child link.
  int64_t generation_gap = 16;
};

/// The default six-feature schema for person nodes produced by
/// gen::GenerateRegister (last name via normalised Levenshtein, residence
/// and birth city exact, birth year distance).
linkage::FeatureSchema DefaultPersonSchema();

/// The default blocking configuration for persons: residence city plus a
/// Soundex-insensitive surname prefix.
linkage::BlockingConfig DefaultPersonBlocking();

/// Detects personal links among `persons`, comparing only pairs that share
/// a block of `blocker` (all-pairs if blocker is nullptr).
std::vector<PersonLink> DetectPersonLinks(
    const graph::PropertyGraph& g,
    const std::vector<graph::NodeId>& persons,
    const linkage::BayesLinkClassifier& classifier,
    const linkage::Blocker* blocker, FamilyDetectorConfig config = {});

/// Assigns a link kind from node features (exposed for tests).
std::string ClassifyLinkKind(const graph::PropertyGraph& g, graph::NodeId x,
                             graph::NodeId y,
                             const FamilyDetectorConfig& config);

/// Connected components of the person-link graph with >= 2 members: the
/// families F of Definition 2.8.
std::vector<std::vector<graph::NodeId>> FamilyGroups(
    const std::vector<PersonLink>& links, size_t node_count);

/// Family control (Definition 2.8): companies controlled by family
/// `members` acting as a single centre of interest.
std::vector<graph::NodeId> FamilyControlledCompanies(
    const CompanyGraph& cg, const std::vector<graph::NodeId>& members,
    double threshold = 0.5);

/// Family close links (Definition 2.9 part ii): company pairs (x, y) such
/// that two distinct members i, j of the family have Phi(i,x) >= t and
/// Phi(j,y) >= t. Pairs reported once with x < y.
std::vector<std::pair<graph::NodeId, graph::NodeId>> FamilyCloseLinks(
    const CompanyGraph& cg, const std::vector<graph::NodeId>& members,
    CloseLinkConfig config = {});

}  // namespace vadalink::company
