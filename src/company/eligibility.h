// Collateral (asset) eligibility screening — the regulatory use case that
// motivates close links in the paper: a company y must not guarantee a loan
// to x when the two are closely linked, and (the paper's family extension)
// should be flagged when a detected family ties their shareholders together.
#pragma once

#include <string>
#include <vector>

#include "company/close_link.h"
#include "company/company_graph.h"
#include "company/family.h"

namespace vadalink::company {

enum class EligibilityVerdict : uint8_t {
  kEligible,
  kIneligibleCloseLink,          // Definition 2.6 violated
  kFlaggedFamilyCloseLink,       // Definition 2.9 family extension
};

struct EligibilityDecision {
  EligibilityVerdict verdict = EligibilityVerdict::kEligible;
  std::string explanation;
};

struct EligibilityConfig {
  CloseLinkConfig close_link;
  /// Detected family groups (may be empty: no family screening).
  std::vector<std::vector<graph::NodeId>> families;
};

/// Screens guarantor y for borrower x.
EligibilityDecision ScreenGuarantor(const CompanyGraph& cg, graph::NodeId x,
                                    graph::NodeId y,
                                    const EligibilityConfig& config);

}  // namespace vadalink::company
