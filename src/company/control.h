// Company control (Definition 2.3 of the paper, after Ceri et al.'s classic
// logic-programming formulation): x controls y iff x directly owns > 50% of
// y, or the companies x controls — possibly together with x itself — jointly
// own > 50% of y.
//
// The compiled implementation mirrors Algorithm 5's Vadalog encoding: a
// per-source worklist fixpoint over jointly-held shares (the msum).
// Control counts VOTING rights: bare-ownership shares carry no vote,
// usufruct shares do (see company_graph.h).
#pragma once

#include <vector>

#include "company/company_graph.h"

namespace vadalink::company {

struct ControlEdge {
  graph::NodeId controller;
  graph::NodeId controlled;
};

/// All companies controlled by `x` (excluding x itself), in discovery
/// order. The `threshold` is the voting majority (paper: 0.5, strict >).
std::vector<graph::NodeId> ControlledBy(const CompanyGraph& cg,
                                        graph::NodeId x,
                                        double threshold = 0.5);

/// Control closure seeded by a *group* acting as a single centre of
/// interest (used for family control, Definition 2.8): the group's direct
/// holdings and the holdings of companies it controls accumulate jointly.
std::vector<graph::NodeId> ControlledByGroup(
    const CompanyGraph& cg, const std::vector<graph::NodeId>& group,
    double threshold = 0.5);

/// All control edges of the graph: one ControlledBy() run per node that
/// owns at least one share. Persons and companies both qualify as
/// controllers (the paper's P1/P2 examples).
std::vector<ControlEdge> AllControlEdges(const CompanyGraph& cg,
                                         double threshold = 0.5);

}  // namespace vadalink::company
