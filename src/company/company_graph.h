// Typed, compact view over a property graph following the Company Graph
// schema (Definition 2.2): Person/Company nodes, Shareholding edges with a
// share weight in (0,1]. The reasoning algorithms in this module operate on
// this snapshot rather than the mutable property graph.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/property_graph.h"

namespace vadalink::company {

/// One shareholding: owner `src` holds a fraction of company `dst`.
///
/// The register distinguishes the type of legal right attached to a share
/// (Section 2 of the paper: "the type of legal right associated to each
/// share — ownership, bare ownership and so on"). Full ownership carries
/// both cash-flow and voting rights; bare ownership (nuda proprietà)
/// carries cash-flow but no voting rights; usufruct carries voting but no
/// cash-flow rights.
struct Shareholding {
  graph::NodeId src;
  graph::NodeId dst;
  /// Cash-flow fraction (drives accumulated ownership / close links).
  double w;
  /// Voting fraction (drives company control).
  double voting;
};

/// Splits an edge's weight into (cash, voting) fractions according to its
/// optional "right" property (see FromPropertyGraph). Returns
/// InvalidArgument for an unknown right string.
Result<std::pair<double, double>> SplitShareRights(
    const graph::PropertyGraph& g, graph::EdgeId e, double w);

/// Immutable snapshot of the ownership structure.
class CompanyGraph {
 public:
  /// Builds a snapshot from `g`, reading nodes labelled `person_label` /
  /// `company_label` and edges labelled `share_label` with numeric weight
  /// property `weight_key`. Edges with non-positive or missing weights are
  /// rejected. An optional string property "right" per edge refines the
  /// legal right: "ownership" (default; cash + voting), "bare_ownership"
  /// (cash only), "usufruct" (voting only).
  static Result<CompanyGraph> FromPropertyGraph(
      const graph::PropertyGraph& g, const std::string& person_label = "Person",
      const std::string& company_label = "Company",
      const std::string& share_label = "Shareholding",
      const std::string& weight_key = "w");

  size_t node_count() const { return is_person_.size(); }
  size_t edge_count() const { return edges_.size(); }

  bool is_person(graph::NodeId n) const { return is_person_[n]; }
  bool is_company(graph::NodeId n) const { return is_company_[n]; }

  const std::vector<graph::NodeId>& persons() const { return persons_; }
  const std::vector<graph::NodeId>& companies() const { return companies_; }

  /// Outgoing holdings of n (what n owns).
  const std::vector<Shareholding>& holdings(graph::NodeId n) const {
    return out_[n];
  }
  /// Incoming holdings of n (who owns n).
  const std::vector<Shareholding>& owners(graph::NodeId n) const {
    return in_[n];
  }

  const std::vector<Shareholding>& edges() const { return edges_; }

  /// Direct cash-flow fraction src -> dst (sum of parallel edges).
  double DirectShare(graph::NodeId src, graph::NodeId dst) const;

  /// Direct voting fraction src -> dst (sum of parallel edges).
  double DirectVotingShare(graph::NodeId src, graph::NodeId dst) const;

 private:
  std::vector<bool> is_person_;
  std::vector<bool> is_company_;
  std::vector<graph::NodeId> persons_;
  std::vector<graph::NodeId> companies_;
  std::vector<Shareholding> edges_;
  std::vector<std::vector<Shareholding>> out_;
  std::vector<std::vector<Shareholding>> in_;
};

}  // namespace vadalink::company
