#include "company/control.h"

#include <unordered_map>
#include <unordered_set>

namespace vadalink::company {

namespace {

/// Shared worklist fixpoint: `seeds` act as one centre of interest.
std::vector<graph::NodeId> ControlClosure(
    const CompanyGraph& cg, const std::vector<graph::NodeId>& seeds,
    double threshold) {
  // Accumulated share of each company jointly held by the controlled set.
  std::unordered_map<graph::NodeId, double> acc;
  std::unordered_set<graph::NodeId> in_set(seeds.begin(), seeds.end());
  std::vector<graph::NodeId> result;
  std::vector<graph::NodeId> worklist(seeds.begin(), seeds.end());

  while (!worklist.empty()) {
    graph::NodeId z = worklist.back();
    worklist.pop_back();
    for (const Shareholding& s : cg.holdings(z)) {
      if (in_set.count(s.dst)) continue;  // already controlled (or a seed)
      if (s.voting <= 0.0) continue;      // bare ownership: no vote
      double total = (acc[s.dst] += s.voting);
      if (total > threshold) {
        in_set.insert(s.dst);
        result.push_back(s.dst);
        worklist.push_back(s.dst);
      }
    }
  }
  return result;
}

}  // namespace

std::vector<graph::NodeId> ControlledBy(const CompanyGraph& cg,
                                        graph::NodeId x, double threshold) {
  return ControlClosure(cg, {x}, threshold);
}

std::vector<graph::NodeId> ControlledByGroup(
    const CompanyGraph& cg, const std::vector<graph::NodeId>& group,
    double threshold) {
  return ControlClosure(cg, group, threshold);
}

std::vector<ControlEdge> AllControlEdges(const CompanyGraph& cg,
                                         double threshold) {
  std::vector<ControlEdge> out;
  for (graph::NodeId x = 0; x < cg.node_count(); ++x) {
    if (cg.holdings(x).empty()) continue;
    if (!cg.is_person(x) && !cg.is_company(x)) continue;
    for (graph::NodeId y : ControlledBy(cg, x, threshold)) {
      out.push_back({x, y});
    }
  }
  return out;
}

}  // namespace vadalink::company
