#include "company/groups.h"

#include <algorithm>
#include <limits>

namespace vadalink::company {

std::vector<UltimateOwner> UltimateOwnersOf(const CompanyGraph& cg,
                                            graph::NodeId target,
                                            double threshold,
                                            OwnershipConfig config) {
  std::vector<UltimateOwner> out;
  for (graph::NodeId person : cg.persons()) {
    if (cg.holdings(person).empty()) continue;
    auto phi = AccumulatedOwnershipWalkSum(cg, person, config);
    auto it = phi.find(target);
    if (it != phi.end() && it->second >= threshold) {
      out.push_back({person, it->second});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const UltimateOwner& a, const UltimateOwner& b) {
              return a.integrated_ownership > b.integrated_ownership;
            });
  return out;
}

size_t ControlPyramidDepth(const CompanyGraph& cg, graph::NodeId x) {
  // DFS over direct-majority edges with an on-path marker (each majority
  // cycle is traversed at most once per path).
  std::vector<bool> on_path(cg.node_count(), false);
  on_path[x] = true;

  struct Dfs {
    const CompanyGraph& cg;
    std::vector<bool>& on_path;
    size_t Run(graph::NodeId v) {  // NOLINT(misc-no-recursion)
      size_t best = 0;
      // Sum parallel edges per target before testing majority.
      std::vector<std::pair<graph::NodeId, double>> totals;
      for (const Shareholding& s : cg.holdings(v)) {
        bool merged = false;
        for (auto& [dst, w] : totals) {
          if (dst == s.dst) {
            w += s.voting;  // pyramids are chains of voting majorities
            merged = true;
          }
        }
        if (!merged) totals.push_back({s.dst, s.voting});
      }
      for (const auto& [dst, w] : totals) {
        if (w <= 0.5 || on_path[dst]) continue;
        on_path[dst] = true;
        best = std::max(best, 1 + Run(dst));
        on_path[dst] = false;
      }
      return best;
    }
  };
  Dfs dfs{cg, on_path};
  return dfs.Run(x);
}

std::vector<CrossShareholdingGroup> CircularOwnershipGroups(
    const CompanyGraph& cg) {
  // Iterative Tarjan over the shareholding edges restricted to companies.
  const size_t n = cg.node_count();
  constexpr uint32_t kUnvisited = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> index(n, kUnvisited), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<graph::NodeId> stack;
  uint32_t next_index = 0;

  std::vector<CrossShareholdingGroup> out;
  struct Frame {
    graph::NodeId node;
    size_t pos;
  };
  std::vector<Frame> dfs;

  auto has_self_loop = [&](graph::NodeId v) {
    for (const Shareholding& s : cg.holdings(v)) {
      if (s.dst == v) return true;
    }
    return false;
  };

  for (graph::NodeId start = 0; start < n; ++start) {
    if (!cg.is_company(start) || index[start] != kUnvisited) continue;
    dfs.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto& holdings = cg.holdings(f.node);
      if (f.pos < holdings.size()) {
        graph::NodeId w = holdings[f.pos].dst;
        ++f.pos;
        if (!cg.is_company(w)) continue;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[w]);
        }
      } else {
        graph::NodeId v = f.node;
        dfs.pop_back();
        if (!dfs.empty()) {
          lowlink[dfs.back().node] =
              std::min(lowlink[dfs.back().node], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          std::vector<graph::NodeId> members;
          for (;;) {
            graph::NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            members.push_back(w);
            if (w == v) break;
          }
          if (members.size() >= 2) {
            std::sort(members.begin(), members.end());
            out.push_back({std::move(members), false});
          } else if (has_self_loop(members[0])) {
            out.push_back({std::move(members), true});
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CrossShareholdingGroup& a,
               const CrossShareholdingGroup& b) {
              return a.members < b.members;
            });
  return out;
}

}  // namespace vadalink::company
