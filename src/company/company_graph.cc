#include "company/company_graph.h"

namespace vadalink::company {

Result<std::pair<double, double>> SplitShareRights(
    const graph::PropertyGraph& g, graph::EdgeId e, double w) {
  double cash = w, voting = w;
  const graph::PropertyValue& right = g.GetEdgeProperty(e, "right");
  if (right.is_string()) {
    const std::string& r = right.AsString();
    if (r == "bare_ownership") {
      voting = 0.0;
    } else if (r == "usufruct") {
      cash = 0.0;
    } else if (r != "ownership") {
      return Status::InvalidArgument("shareholding edge " +
                                     std::to_string(e) +
                                     " has unknown right '" + r + "'");
    }
  }
  return std::make_pair(cash, voting);
}

Result<CompanyGraph> CompanyGraph::FromPropertyGraph(
    const graph::PropertyGraph& g, const std::string& person_label,
    const std::string& company_label, const std::string& share_label,
    const std::string& weight_key) {
  CompanyGraph cg;
  const size_t n = g.node_count();
  cg.is_person_.assign(n, false);
  cg.is_company_.assign(n, false);
  cg.out_.resize(n);
  cg.in_.resize(n);

  for (graph::NodeId v = 0; v < n; ++v) {
    const std::string& label = g.node_label(v);
    if (label == person_label) {
      cg.is_person_[v] = true;
      cg.persons_.push_back(v);
    } else if (label == company_label) {
      cg.is_company_[v] = true;
      cg.companies_.push_back(v);
    }
    // Other labels are tolerated and ignored by the ownership algorithms.
  }

  Status bad = Status::OK();
  g.ForEachEdge([&](graph::EdgeId e) {
    if (!bad.ok() || g.edge_label(e) != share_label) return;
    const graph::PropertyValue& wp = g.GetEdgeProperty(e, weight_key);
    if (!wp.is_numeric()) {
      bad = Status::InvalidArgument(
          "shareholding edge " + std::to_string(e) +
          " lacks a numeric weight property '" + weight_key + "'");
      return;
    }
    double w = wp.AsNumber();
    if (w <= 0.0 || w > 1.0) {
      bad = Status::InvalidArgument(
          "shareholding edge " + std::to_string(e) + " weight " +
          std::to_string(w) + " outside (0, 1]");
      return;
    }
    graph::NodeId dst = g.edge_dst(e);
    if (!cg.is_company_[dst]) {
      bad = Status::InvalidArgument(
          "shareholding edge " + std::to_string(e) +
          " targets a non-company node");
      return;
    }
    auto rights = SplitShareRights(g, e, w);
    if (!rights.ok()) {
      bad = rights.status();
      return;
    }
    auto [cash, voting] = *rights;
    Shareholding s{g.edge_src(e), dst, cash, voting};
    cg.edges_.push_back(s);
    cg.out_[s.src].push_back(s);
    cg.in_[s.dst].push_back(s);
  });
  if (!bad.ok()) return bad;
  return cg;
}

double CompanyGraph::DirectShare(graph::NodeId src, graph::NodeId dst) const {
  double total = 0.0;
  for (const Shareholding& s : out_[src]) {
    if (s.dst == dst) total += s.w;
  }
  return total;
}

double CompanyGraph::DirectVotingShare(graph::NodeId src,
                                       graph::NodeId dst) const {
  double total = 0.0;
  for (const Shareholding& s : out_[src]) {
    if (s.dst == dst) total += s.voting;
  }
  return total;
}

}  // namespace vadalink::company
