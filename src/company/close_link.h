// Close links (Definition 2.6, after the ECB collateral-eligibility
// regulation): companies x and y are closely linked for threshold t iff
//   (i)  Phi(x, y) >= t, or
//   (ii) Phi(y, x) >= t, or
//   (iii) some third party z (person or company) has Phi(z, x) >= t and
//         Phi(z, y) >= t.
#pragma once

#include <cstdint>
#include <vector>

#include "company/company_graph.h"
#include "company/ownership.h"

namespace vadalink::company {

enum class CloseLinkReason : uint8_t {
  kDirectOwnership,   // (i) or (ii)
  kCommonThirdParty,  // (iii)
};

struct CloseLinkEdge {
  graph::NodeId x;
  graph::NodeId y;
  CloseLinkReason reason;
  /// The common owner for kCommonThirdParty; kInvalidNode otherwise.
  graph::NodeId via = graph::kInvalidNode;
};

struct CloseLinkConfig {
  /// Regulatory threshold t (ECB: 20%).
  double threshold = 0.2;
  /// Use the exact simple-path Phi (true) or the walk-sum fixpoint (false).
  bool exact_paths = true;
  OwnershipConfig ownership;
  /// Optional metrics sink threaded into every per-root Phi computation
  /// (not owned; may be null). A multi-root sweep then accounts each
  /// truncated enumeration into company.ownership.path_truncations — one
  /// per truncated root — instead of dropping them silently.
  MetricsRegistry* metrics = nullptr;
};

/// All close links between company pairs. Pairs are reported once with
/// x < y (the relation is symmetric, Rule (4) of Algorithm 6); a pair
/// closely linked for several reasons is reported with the first one found
/// (direct ownership wins over common third party).
std::vector<CloseLinkEdge> AllCloseLinks(const CompanyGraph& cg,
                                         CloseLinkConfig config = {});

/// Goal-directed variant: exactly the AllCloseLinks edges involving `c`
/// (same keys, reasons, via nodes and precedence), without computing Phi
/// for the whole graph. Every close link involving c needs a source whose
/// accumulated ownership reaches c — either c itself (case i) or an owner
/// chain into c (cases ii/iii) — so only sources that are
/// reverse-reachable from c over ownership edges are explored, in the
/// same ascending order AllCloseLinks uses. This is the compiled
/// counterpart of the engine's magic-set rewrite of the close-link
/// program (the serve layer's cold `closelinks` path).
std::vector<CloseLinkEdge> CloseLinksOf(const CompanyGraph& cg,
                                        graph::NodeId c,
                                        CloseLinkConfig config = {});

/// True iff companies x and y are closely linked.
bool AreCloselyLinked(const CompanyGraph& cg, graph::NodeId x,
                      graph::NodeId y, CloseLinkConfig config = {});

}  // namespace vadalink::company
