#include "company/temporal.h"

#include <algorithm>

#include "company/company_graph.h"
#include "company/control.h"

namespace vadalink::company {

namespace {

int64_t EntityOf(const graph::PropertyGraph& g, graph::NodeId n) {
  const graph::PropertyValue& eid = g.GetNodeProperty(n, "eid");
  return eid.is_int() ? eid.AsInt() : static_cast<int64_t>(n);
}

}  // namespace

Result<std::set<EntityPair>> ControlEdgesByEntity(
    const graph::PropertyGraph& g, double threshold) {
  VL_ASSIGN_OR_RETURN(CompanyGraph cg, CompanyGraph::FromPropertyGraph(g));
  std::set<EntityPair> out;
  for (const ControlEdge& e : AllControlEdges(cg, threshold)) {
    out.insert({EntityOf(g, e.controller), EntityOf(g, e.controlled)});
  }
  return out;
}

ControlDiff DiffControl(const std::set<EntityPair>& before,
                        const std::set<EntityPair>& after) {
  ControlDiff diff;
  std::set_difference(after.begin(), after.end(), before.begin(),
                      before.end(), std::back_inserter(diff.gained));
  std::set_difference(before.begin(), before.end(), after.begin(),
                      after.end(), std::back_inserter(diff.lost));
  return diff;
}

std::set<EntityPair> StableControlEdges(
    const std::vector<std::set<EntityPair>>& per_year) {
  if (per_year.empty()) return {};
  std::set<EntityPair> stable = per_year.front();
  for (size_t i = 1; i < per_year.size(); ++i) {
    std::set<EntityPair> next;
    std::set_intersection(stable.begin(), stable.end(),
                          per_year[i].begin(), per_year[i].end(),
                          std::inserter(next, next.begin()));
    stable = std::move(next);
  }
  return stable;
}

}  // namespace vadalink::company
