// Temporal analytics over a panel of yearly register snapshots: control
// relationships keyed by stable entity ids, year-over-year change
// detection, and persistence. The paper's dataset is a 2005-2018 panel;
// supervisors track exactly these deltas (who gained control of what).
//
// Snapshots must carry the "eid" integer node property (stable entity id,
// as produced by gen::SimulateEvolution); nodes without it fall back to
// their node id.
#pragma once

#include <set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/property_graph.h"

namespace vadalink::company {

/// (controller entity id, controlled entity id).
using EntityPair = std::pair<int64_t, int64_t>;

/// Control edges of one snapshot, keyed by entity ids.
Result<std::set<EntityPair>> ControlEdgesByEntity(
    const graph::PropertyGraph& g, double threshold = 0.5);

struct ControlDiff {
  std::vector<EntityPair> gained;
  std::vector<EntityPair> lost;
};

/// Year-over-year difference between two control-edge sets.
ControlDiff DiffControl(const std::set<EntityPair>& before,
                        const std::set<EntityPair>& after);

/// Control edges present in every year of the panel.
std::set<EntityPair> StableControlEdges(
    const std::vector<std::set<EntityPair>>& per_year);

}  // namespace vadalink::company
