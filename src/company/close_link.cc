#include "company/close_link.h"

#include <algorithm>
#include <map>

namespace vadalink::company {

namespace {

std::unordered_map<graph::NodeId, double> Phi(const CompanyGraph& cg,
                                              graph::NodeId x,
                                              const CloseLinkConfig& cfg) {
  return cfg.exact_paths
             ? AccumulatedOwnershipSimplePaths(cg, x, cfg.ownership,
                                               /*stats=*/nullptr,
                                               /*run_ctx=*/nullptr,
                                               cfg.metrics)
             : AccumulatedOwnershipWalkSum(cg, x, cfg.ownership,
                                           /*stats=*/nullptr,
                                           /*run_ctx=*/nullptr, cfg.metrics);
}

}  // namespace

std::vector<CloseLinkEdge> AllCloseLinks(const CompanyGraph& cg,
                                         CloseLinkConfig config) {
  // pair (x < y) -> edge; direct-ownership reasons take precedence.
  std::map<std::pair<graph::NodeId, graph::NodeId>, CloseLinkEdge> found;

  auto record = [&](graph::NodeId a, graph::NodeId b, CloseLinkReason reason,
                    graph::NodeId via) {
    if (a == b) return;
    auto key = std::minmax(a, b);
    CloseLinkEdge edge{key.first, key.second, reason, via};
    auto it = found.find(key);
    if (it == found.end()) {
      found.emplace(key, edge);
    } else if (reason == CloseLinkReason::kDirectOwnership &&
               it->second.reason == CloseLinkReason::kCommonThirdParty) {
      it->second = edge;
    }
  };

  // One Phi computation per node that owns anything. Sources that are
  // companies yield case (i)/(ii) links to their significant targets;
  // every source yields case (iii) links among its significant targets.
  for (graph::NodeId z = 0; z < cg.node_count(); ++z) {
    if (cg.holdings(z).empty()) continue;
    auto phi = Phi(cg, z, config);
    std::vector<graph::NodeId> significant;
    for (const auto& [target, value] : phi) {
      if (value >= config.threshold && cg.is_company(target)) {
        significant.push_back(target);
      }
    }
    std::sort(significant.begin(), significant.end());
    if (cg.is_company(z)) {
      for (graph::NodeId target : significant) {
        record(z, target, CloseLinkReason::kDirectOwnership,
               graph::kInvalidNode);
      }
    }
    for (size_t i = 0; i < significant.size(); ++i) {
      for (size_t j = i + 1; j < significant.size(); ++j) {
        record(significant[i], significant[j],
               CloseLinkReason::kCommonThirdParty, z);
      }
    }
  }

  std::vector<CloseLinkEdge> out;
  out.reserve(found.size());
  for (auto& [key, edge] : found) out.push_back(edge);
  return out;
}

std::vector<CloseLinkEdge> CloseLinksOf(const CompanyGraph& cg,
                                        graph::NodeId c,
                                        CloseLinkConfig config) {
  // Candidate sources: nodes whose holdings can reach c (Phi(z, c) > 0
  // implies an ownership path z -> ... -> c), plus c itself. Reverse BFS
  // over incoming shareholdings; reachability over-approximates the
  // threshold test, which the per-source Phi then applies exactly.
  std::vector<bool> candidate(cg.node_count(), false);
  if (c >= cg.node_count()) return {};
  candidate[c] = true;
  std::vector<graph::NodeId> stack{c};
  while (!stack.empty()) {
    graph::NodeId n = stack.back();
    stack.pop_back();
    for (const Shareholding& s : cg.owners(n)) {
      if (!candidate[s.src]) {
        candidate[s.src] = true;
        stack.push_back(s.src);
      }
    }
  }

  // Mirror of AllCloseLinks restricted to pairs involving c: the record
  // calls below are the exact subsequence of the full run's record calls
  // that touch c (candidates cover every source that can produce one, in
  // the same ascending order), so first-wins and the direct-ownership
  // precedence resolve identically.
  std::map<std::pair<graph::NodeId, graph::NodeId>, CloseLinkEdge> found;
  auto record = [&](graph::NodeId a, graph::NodeId b, CloseLinkReason reason,
                    graph::NodeId via) {
    if (a == b || (a != c && b != c)) return;
    auto key = std::minmax(a, b);
    CloseLinkEdge edge{key.first, key.second, reason, via};
    auto it = found.find(key);
    if (it == found.end()) {
      found.emplace(key, edge);
    } else if (reason == CloseLinkReason::kDirectOwnership &&
               it->second.reason == CloseLinkReason::kCommonThirdParty) {
      it->second = edge;
    }
  };

  for (graph::NodeId z = 0; z < cg.node_count(); ++z) {
    if (!candidate[z] || cg.holdings(z).empty()) continue;
    auto phi = Phi(cg, z, config);
    std::vector<graph::NodeId> significant;
    for (const auto& [target, value] : phi) {
      if (value >= config.threshold && cg.is_company(target)) {
        significant.push_back(target);
      }
    }
    std::sort(significant.begin(), significant.end());
    if (cg.is_company(z)) {
      for (graph::NodeId target : significant) {
        record(z, target, CloseLinkReason::kDirectOwnership,
               graph::kInvalidNode);
      }
    }
    for (size_t i = 0; i < significant.size(); ++i) {
      for (size_t j = i + 1; j < significant.size(); ++j) {
        record(significant[i], significant[j],
               CloseLinkReason::kCommonThirdParty, z);
      }
    }
  }

  std::vector<CloseLinkEdge> out;
  out.reserve(found.size());
  for (auto& [key, edge] : found) out.push_back(edge);
  return out;
}

bool AreCloselyLinked(const CompanyGraph& cg, graph::NodeId x,
                      graph::NodeId y, CloseLinkConfig config) {
  if (x == y) return false;
  auto phi_x = Phi(cg, x, config);
  auto it = phi_x.find(y);
  if (it != phi_x.end() && it->second >= config.threshold) return true;
  auto phi_y = Phi(cg, y, config);
  it = phi_y.find(x);
  if (it != phi_y.end() && it->second >= config.threshold) return true;
  for (graph::NodeId z = 0; z < cg.node_count(); ++z) {
    if (z == x || z == y || cg.holdings(z).empty()) continue;
    auto phi_z = Phi(cg, z, config);
    auto ix = phi_z.find(x);
    auto iy = phi_z.find(y);
    if (ix != phi_z.end() && iy != phi_z.end() &&
        ix->second >= config.threshold && iy->second >= config.threshold) {
      return true;
    }
  }
  return false;
}

}  // namespace vadalink::company
