#include "company/eligibility.h"

#include <algorithm>

namespace vadalink::company {

EligibilityDecision ScreenGuarantor(const CompanyGraph& cg, graph::NodeId x,
                                    graph::NodeId y,
                                    const EligibilityConfig& config) {
  EligibilityDecision decision;
  if (AreCloselyLinked(cg, x, y, config.close_link)) {
    decision.verdict = EligibilityVerdict::kIneligibleCloseLink;
    decision.explanation =
        "companies " + std::to_string(x) + " and " + std::to_string(y) +
        " are closely linked (accumulated ownership over threshold " +
        std::to_string(config.close_link.threshold) + ")";
    return decision;
  }
  for (const auto& family : config.families) {
    auto pairs = FamilyCloseLinks(cg, family, config.close_link);
    auto key = std::minmax(x, y);
    if (std::find(pairs.begin(), pairs.end(),
                  std::make_pair(key.first, key.second)) != pairs.end()) {
      decision.verdict = EligibilityVerdict::kFlaggedFamilyCloseLink;
      decision.explanation =
          "a detected family holds significant shares of both " +
          std::to_string(x) + " and " + std::to_string(y) +
          "; low risk differentiation";
      return decision;
    }
  }
  decision.explanation = "no close link found";
  return decision;
}

}  // namespace vadalink::company
