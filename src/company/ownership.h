// Accumulated ownership (Definition 2.5): the share of y that x holds
// directly or indirectly,
//
//     Phi(x, y) = sum over simple paths x ~> y of prod(edge weights).
//
// Two implementations are provided, deliberately:
//  * SimplePaths — the literal Definition 2.5: exact enumeration of simple
//    paths with product pruning. Exponential in the worst case; used as
//    ground truth in tests and on small graphs.
//  * WalkSum — the fixpoint the paper's declarative encoding (Algorithm 6)
//    actually computes: Acc(x,y) = W(x,y) + sum_z W(x,z) * Acc(z,y), i.e. a
//    geometric sum over *all* walks. On DAGs both coincide; with cycles the
//    walk sum converges (share columns sum to <= 1) and upper-bounds the
//    simple-path sum. The discrepancy is an ablation (see DESIGN.md #1).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/run_context.h"
#include "company/company_graph.h"

namespace vadalink::company {

struct OwnershipConfig {
  /// Paths/walk contributions with product below this are pruned.
  double epsilon = 1e-9;
  /// WalkSum: maximum propagation depth (walk length).
  size_t max_depth = 64;
  /// SimplePaths: abort if more than this many paths are expanded.
  size_t max_paths = 10000000;
};

/// Observability of one enumeration: whether the path cap or a RunContext
/// cut it short (the returned ownership is then a partial lower bound),
/// and how much work it did.
struct OwnershipStats {
  size_t paths_expanded = 0;
  /// True when enumeration stopped early and the result is partial.
  bool truncated = false;
  /// WalkSum only: true when the propagation reached its epsilon fixpoint
  /// before max_depth. False after a max_depth exhaustion (a cyclic
  /// ownership structure whose walk mass had not decayed below epsilon —
  /// the result is then a partial sum and `truncated` is set).
  bool converged = true;
  /// WalkSum only: propagation levels actually run.
  size_t depth_reached = 0;
  /// Non-OK when a RunContext stopped the enumeration (kDeadlineExceeded /
  /// kResourceExhausted / kCancelled); OK for a plain max_paths cap.
  Status interrupt;
};

/// Exact Phi(x, ·) by simple-path enumeration from x.
/// Returns accumulated ownership per reachable node (companies only —
/// ownership edges always target companies). If `stats` is non-null it
/// receives path counts and the truncation flag; `run_ctx` (polled per
/// expanded path, one work unit each) bounds the enumeration. `metrics`
/// (nullable) receives company.ownership.paths_expanded /
/// company.ownership.path_truncations.
std::unordered_map<graph::NodeId, double> AccumulatedOwnershipSimplePaths(
    const CompanyGraph& cg, graph::NodeId x, OwnershipConfig config = {},
    OwnershipStats* stats = nullptr, const RunContext* run_ctx = nullptr,
    MetricsRegistry* metrics = nullptr);

/// Phi(x, ·) approximated by the all-walks geometric sum (the fixpoint
/// semantics of the paper's Algorithm 6). `run_ctx` is polled per
/// propagation level.
///
/// Correctness guards (Definition 2.5 walk sums diverge on cycles whose
/// mass does not decay): accumulated mass is capped at 1.0 per target
/// (shares cannot exceed whole ownership), propagation stops at the
/// epsilon fixpoint (no surviving walk contribution >= config.epsilon),
/// and a run that exhausts config.max_depth without reaching it sets
/// `stats->converged = false`, `stats->truncated = true` and counts into
/// company.ownership.walksum.nonconvergent instead of silently returning
/// the partial sum.
std::unordered_map<graph::NodeId, double> AccumulatedOwnershipWalkSum(
    const CompanyGraph& cg, graph::NodeId x, OwnershipConfig config = {},
    OwnershipStats* stats = nullptr, const RunContext* run_ctx = nullptr,
    MetricsRegistry* metrics = nullptr);

/// Convenience: Phi(x, y) by simple paths.
double AccumulatedOwnership(const CompanyGraph& cg, graph::NodeId x,
                            graph::NodeId y, OwnershipConfig config = {});

}  // namespace vadalink::company
