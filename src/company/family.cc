#include "company/family.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <set>
#include <unordered_map>

namespace vadalink::company {

linkage::FeatureSchema DefaultPersonSchema() {
  linkage::FeatureSchema schema;
  schema.Add({.property = "last_name",
              .metric = linkage::FeatureMetric::kNormalizedLevenshtein,
              .threshold = 0.34,
              .prob_if_close = 0.85,
              .prob_if_far = 0.05});
  schema.Add({.property = "city",
              .metric = linkage::FeatureMetric::kExact,
              .threshold = 0.5,
              .prob_if_close = 0.70,
              .prob_if_far = 0.20});
  schema.Add({.property = "birth_city",
              .metric = linkage::FeatureMetric::kExact,
              .threshold = 0.5,
              .prob_if_close = 0.55,
              .prob_if_far = 0.45});
  schema.Add({.property = "birth_year",
              .metric = linkage::FeatureMetric::kAbsoluteDifference,
              .threshold = 45.0,
              .prob_if_close = 0.55,
              .prob_if_far = 0.10});
  return schema;
}

linkage::BlockingConfig DefaultPersonBlocking() {
  linkage::BlockingConfig cfg;
  cfg.keys = {"city", "last_name"};
  cfg.case_insensitive = true;
  cfg.prefix_length = 3;  // surname prefix absorbs most typos
  return cfg;
}

std::string ClassifyLinkKind(const graph::PropertyGraph& g, graph::NodeId x,
                             graph::NodeId y,
                             const FamilyDetectorConfig& config) {
  const graph::PropertyValue& bx = g.GetNodeProperty(x, "birth_year");
  const graph::PropertyValue& by = g.GetNodeProperty(y, "birth_year");
  int64_t gap = 0;
  if (bx.is_numeric() && by.is_numeric()) {
    gap = static_cast<int64_t>(
        std::llabs(static_cast<long long>(bx.AsNumber() - by.AsNumber())));
  }
  if (gap >= config.generation_gap) return "ParentOf";
  const graph::PropertyValue& sx = g.GetNodeProperty(x, "sex");
  const graph::PropertyValue& sy = g.GetNodeProperty(y, "sex");
  bool same_sex = !sx.is_null() && !sy.is_null() && sx == sy;
  return same_sex ? "SiblingOf" : "PartnerOf";
}

std::vector<PersonLink> DetectPersonLinks(
    const graph::PropertyGraph& g,
    const std::vector<graph::NodeId>& persons,
    const linkage::BayesLinkClassifier& classifier,
    const linkage::Blocker* blocker, FamilyDetectorConfig config) {
  std::vector<std::vector<graph::NodeId>> blocks;
  if (blocker != nullptr) {
    // No RunContext or pool here: grouping cannot fail, so the Result is
    // always a value.
    auto grouped = blocker->GroupByBlock(g, persons);
    blocks = std::move(grouped).value();
  } else {
    blocks.push_back(persons);
  }

  std::vector<PersonLink> links;
  for (const auto& block : blocks) {
    for (size_t i = 0; i < block.size(); ++i) {
      for (size_t j = i + 1; j < block.size(); ++j) {
        double p = classifier.LinkProbability(g, block[i], block[j]);
        if (p > config.probability_threshold) {
          links.push_back({block[i], block[j],
                           ClassifyLinkKind(g, block[i], block[j], config),
                           p});
        }
      }
    }
  }
  return links;
}

std::vector<std::vector<graph::NodeId>> FamilyGroups(
    const std::vector<PersonLink>& links, size_t node_count) {
  std::vector<uint32_t> parent(node_count);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<uint32_t(uint32_t)> find = [&](uint32_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const PersonLink& link : links) {
    uint32_t a = find(link.x), b = find(link.y);
    if (a != b) parent[b] = a;
  }
  std::unordered_map<uint32_t, std::vector<graph::NodeId>> groups;
  for (const PersonLink& link : links) {
    for (graph::NodeId v : {link.x, link.y}) {
      auto& members = groups[find(v)];
      if (std::find(members.begin(), members.end(), v) == members.end()) {
        members.push_back(v);
      }
    }
  }
  std::vector<std::vector<graph::NodeId>> out;
  for (auto& [root, members] : groups) {
    if (members.size() >= 2) {
      std::sort(members.begin(), members.end());
      out.push_back(std::move(members));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<graph::NodeId> FamilyControlledCompanies(
    const CompanyGraph& cg, const std::vector<graph::NodeId>& members,
    double threshold) {
  return ControlledByGroup(cg, members, threshold);
}

std::vector<std::pair<graph::NodeId, graph::NodeId>> FamilyCloseLinks(
    const CompanyGraph& cg, const std::vector<graph::NodeId>& members,
    CloseLinkConfig config) {
  // Significant holdings per member.
  std::vector<std::vector<graph::NodeId>> significant(members.size());
  for (size_t m = 0; m < members.size(); ++m) {
    auto phi = config.exact_paths
                   ? AccumulatedOwnershipSimplePaths(
                         cg, members[m], config.ownership,
                         /*stats=*/nullptr, /*run_ctx=*/nullptr,
                         config.metrics)
                   : AccumulatedOwnershipWalkSum(
                         cg, members[m], config.ownership,
                         /*stats=*/nullptr, /*run_ctx=*/nullptr,
                         config.metrics);
    for (const auto& [target, value] : phi) {
      if (value >= config.threshold && cg.is_company(target)) {
        significant[m].push_back(target);
      }
    }
  }
  std::set<std::pair<graph::NodeId, graph::NodeId>> pairs;
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = 0; j < members.size(); ++j) {
      if (i == j) continue;
      for (graph::NodeId x : significant[i]) {
        for (graph::NodeId y : significant[j]) {
          if (x == y) continue;
          pairs.insert(std::minmax(x, y));
        }
      }
    }
  }
  return {pairs.begin(), pairs.end()};
}

}  // namespace vadalink::company
