// Abstract syntax of the Vadalog-like rule language.
//
// A program is a set of existential rules  body -> head  plus ground facts
// and @output annotations. Rule bodies contain positive/negated atoms,
// comparisons, assignments (which may call registered functions, e.g. the
// paper's #sk / #GenerateBlocks / #LinkProbability) and monotonic
// aggregations (msum et al., Section 4 of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datalog/value.h"

namespace vadalink::datalog {

/// Shared interning catalog for a program + database pair: string constants,
/// predicate names and function names.
struct Catalog {
  SymbolTable symbols;
  SymbolTable predicates;
  SymbolTable functions;
};

/// A source position (1-based; 0 = synthesised, no position known). The
/// lexer stamps every token, the parser copies the stamp onto the rule,
/// literal and atom it is building, and the analyzer / error paths carry
/// it into diagnostics.
struct SourceSpan {
  uint32_t line = 0;
  uint32_t col = 0;

  bool known() const { return line != 0; }
  /// "line L, col C" (or "<synthesised>" for unknown positions).
  std::string ToString() const;
};

/// An atom argument: a rule variable or a ground constant.
struct Term {
  enum class Kind : uint8_t { kVar, kConst };
  Kind kind = Kind::kConst;
  uint32_t var = 0;  // index into Rule::var_names
  Value constant;

  static Term Var(uint32_t v) {
    Term t;
    t.kind = Kind::kVar;
    t.var = v;
    return t;
  }
  static Term Const(Value c) {
    Term t;
    t.kind = Kind::kConst;
    t.constant = c;
    return t;
  }
  bool is_var() const { return kind == Kind::kVar; }
};

/// predicate(arg1, ..., argN)
struct Atom {
  uint32_t predicate = 0;  // id in Catalog::predicates
  std::vector<Term> args;
  /// Position of the predicate name in the source (0/0 if synthesised).
  SourceSpan span;
};

/// Kinds of monotonic aggregates (Vadalog-style; see Shkapsky et al. and
/// Section 4 "monotonic aggregation" in the paper).
enum class AggKind : uint8_t { kMSum, kMProd, kMMin, kMMax, kMCount };

const char* AggKindName(AggKind k);

/// An expression appearing on the right-hand side of an assignment or in a
/// comparison. Aggregate expressions may appear only at the top level of an
/// assignment.
struct Expr {
  enum class Op : uint8_t {
    kConst,
    kVar,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kMod,
    kNeg,
    kCall,       // registered function: functions id + children
    kAggregate,  // monotonic aggregate
  };

  Op op = Op::kConst;
  Value constant;                 // kConst
  uint32_t var = 0;               // kVar
  uint32_t function = 0;          // kCall: id in Catalog::functions
  AggKind agg = AggKind::kMSum;   // kAggregate
  std::vector<uint32_t> contributors;  // kAggregate: contributor variables
  std::vector<Expr> children;     // operands / call args / aggregate value

  static Expr Const(Value v) {
    Expr e;
    e.op = Op::kConst;
    e.constant = v;
    return e;
  }
  static Expr Var(uint32_t v) {
    Expr e;
    e.op = Op::kVar;
    e.var = v;
    return e;
  }

  bool is_aggregate() const { return op == Op::kAggregate; }
};

/// Comparison operators for condition literals.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// One conjunct of a rule body.
struct Literal {
  enum class Kind : uint8_t {
    kAtom,        // p(...)
    kNegatedAtom, // not p(...)  (stratified)
    kComparison,  // lhs OP rhs
    kAssignment,  // Var = expr
  };

  Kind kind = Kind::kAtom;
  Atom atom;              // kAtom / kNegatedAtom
  CmpOp cmp = CmpOp::kEq; // kComparison
  Expr lhs, rhs;          // kComparison (both) / kAssignment (rhs)
  uint32_t target_var = 0;  // kAssignment
  /// Position of the literal's first token (0/0 if synthesised).
  SourceSpan span;
};

/// body -> head1, ..., headK.
struct Rule {
  std::vector<Literal> body;
  std::vector<Atom> head;
  /// Variable names, indexed by the var ids used in terms/exprs.
  std::vector<std::string> var_names;
  /// Position of the rule's first token (line 0 if synthesised).
  SourceSpan span;
};

/// A parsed program.
struct Program {
  std::vector<Rule> rules;
  /// Ground facts given in the source ("p(1,2)." with empty body).
  std::vector<Atom> facts;
  /// Predicates marked @output.
  std::vector<uint32_t> outputs;
};

/// Pretty-printers (require the catalog used at parse time).
std::string TermToString(const Term& t, const Rule& rule, const Catalog& cat);
std::string ExprToString(const Expr& e, const Rule& rule, const Catalog& cat);
std::string AtomToString(const Atom& a, const Rule& rule, const Catalog& cat);
std::string LiteralToString(const Literal& l, const Rule& rule,
                            const Catalog& cat);
std::string RuleToString(const Rule& r, const Catalog& cat);

/// Variables of `rule` bound by its positive body atoms or assignments.
std::vector<bool> BodyBoundVars(const Rule& rule);

/// Head variables not bound in the body — the existential variables.
std::vector<uint32_t> ExistentialVars(const Rule& rule);

/// Collects variables appearing in an expression into `out` flags.
void CollectExprVars(const Expr& e, std::vector<bool>* out);

}  // namespace vadalink::datalog
