// Wardedness analysis (Gottlob & Pieris; Bellomarini et al., the fragment
// at the core of Vadalog). The paper's tractability claim — "if the task
// is described in Warded Datalog, there is the formal guarantee of
// polynomial complexity [12]" — rests on this syntactic property:
//
//  * A position p[i] is AFFECTED if some rule head can place a labeled
//    null there: base case, positions holding existential variables;
//    inductive case, positions receiving a body variable that occurs only
//    in affected positions.
//  * A body variable is HARMLESS if it occurs in at least one non-affected
//    body position (it can never bind a null), HARMFUL if all its body
//    occurrences are affected, and DANGEROUS if it is harmful and also
//    occurs in the head (it can propagate nulls).
//  * A rule is WARDED if all its dangerous variables occur together in a
//    single body atom (the WARD), and the ward shares only harmless
//    variables with the other body atoms.
//
// A program is warded iff every rule is. Plain Datalog rules (no
// existentials anywhere) are trivially warded.
//
// The analysis is provenance-carrying: every affected position records the
// rule that first made it affected (its witness), every body variable gets
// a harmless/harmful/dangerous classification, and a wardedness violation
// names the exact body atom (literal index + source span) at fault — the
// raw material for the VL01x diagnostics in datalog/analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datalog/ast.h"

namespace vadalink::datalog {

enum class RuleSafety {
  kDatalog,    // no nulls can reach this rule's variables
  kWarded,     // dangerous variables exist but are warded
  kNotWarded,  // wardedness violated
};

/// Classification of a body variable w.r.t. the affected positions.
enum class VarClass : uint8_t { kHarmless, kHarmful, kDangerous };

const char* VarClassName(VarClass c);

/// One affected position with its provenance.
struct AffectedPosition {
  uint32_t predicate = 0;
  size_t position = 0;
  /// Rule whose head first placed a null (or propagated one) here.
  uint32_t witness_rule = 0;
  /// True when the base case applied (the witness rule holds an
  /// existential variable at this position); false for propagation.
  bool existential = false;
};

/// Classification of one body-atom variable of a rule.
struct VarReport {
  uint32_t var = 0;
  std::string name;
  VarClass cls = VarClass::kHarmless;
};

/// Which clause of the ward condition a kNotWarded rule breaks.
enum class WardViolation : uint8_t {
  kNone,              // rule is warded / plain datalog
  kNoSharedWard,      // dangerous variables do not share a body atom
  kWardSharesHarmful, // ward shares a harmful variable with another atom
};

struct RuleReport {
  uint32_t rule_index = 0;
  RuleSafety safety = RuleSafety::kDatalog;
  /// Names of the dangerous variables (empty for kDatalog).
  std::vector<std::string> dangerous_vars;
  /// Human-readable reason for kNotWarded.
  std::string violation;
  /// Structured reason for kNotWarded (kNone otherwise).
  WardViolation violation_kind = WardViolation::kNone;
  /// Every variable occurring in a positive body atom, classified.
  std::vector<VarReport> body_vars;
  /// kNotWarded provenance: the body literal index of the atom violating
  /// the ward condition (UINT32_MAX when not applicable), the variable at
  /// fault, and the atom's source span.
  uint32_t violating_literal = UINT32_MAX;
  std::string violating_var;
  SourceSpan violating_span;
};

struct WardednessReport {
  bool warded = true;
  std::vector<RuleReport> rules;
  /// (predicate id, position) pairs that are affected.
  std::vector<std::pair<uint32_t, size_t>> affected_positions;
  /// Same set with witness provenance, aligned with affected_positions.
  std::vector<AffectedPosition> affected_details;

  std::string ToString(const Catalog& cat, const Program& program) const;
};

/// Analyses `program`; never fails (reports are informational).
WardednessReport AnalyzeWardedness(const Program& program,
                                   const Catalog& cat);

}  // namespace vadalink::datalog
