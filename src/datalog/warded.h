// Wardedness analysis (Gottlob & Pieris; Bellomarini et al., the fragment
// at the core of Vadalog). The paper's tractability claim — "if the task
// is described in Warded Datalog, there is the formal guarantee of
// polynomial complexity [12]" — rests on this syntactic property:
//
//  * A position p[i] is AFFECTED if some rule head can place a labeled
//    null there: base case, positions holding existential variables;
//    inductive case, positions receiving a body variable that occurs only
//    in affected positions.
//  * A body variable is DANGEROUS in a rule if it occurs ONLY in affected
//    body positions and also occurs in the head (it can propagate nulls).
//  * A rule is WARDED if all its dangerous variables occur together in a
//    single body atom (the WARD), and the ward shares only harmless
//    variables (occurring in at least one non-affected position) with the
//    other body atoms.
//
// A program is warded iff every rule is. Plain Datalog rules (no
// existentials anywhere) are trivially warded.
#pragma once

#include <string>
#include <vector>

#include "datalog/ast.h"

namespace vadalink::datalog {

enum class RuleSafety {
  kDatalog,    // no nulls can reach this rule's variables
  kWarded,     // dangerous variables exist but are warded
  kNotWarded,  // wardedness violated
};

struct RuleReport {
  uint32_t rule_index = 0;
  RuleSafety safety = RuleSafety::kDatalog;
  /// Names of the dangerous variables (empty for kDatalog).
  std::vector<std::string> dangerous_vars;
  /// Human-readable reason for kNotWarded.
  std::string violation;
};

struct WardednessReport {
  bool warded = true;
  std::vector<RuleReport> rules;
  /// (predicate id, position) pairs that are affected.
  std::vector<std::pair<uint32_t, size_t>> affected_positions;

  std::string ToString(const Catalog& cat, const Program& program) const;
};

/// Analyses `program`; never fails (reports are informational).
WardednessReport AnalyzeWardedness(const Program& program,
                                   const Catalog& cat);

}  // namespace vadalink::datalog
