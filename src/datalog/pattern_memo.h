// Isomorphism memo for labeled-null fact patterns (streaming chase).
//
// The Skolem chase memoises invented nulls on (rule, frontier), so two
// firings with frontiers that differ only in *which* labeled nulls they
// carry invent distinct nulls — yet the facts they derive are isomorphic:
// renaming nulls maps one derivation subtree onto the other. On warded
// programs every query answer is null-free, so at most one representative
// per isomorphism class contributes answers; the rest only grow the fact
// store (this is the intuition behind the "harmful join" optimisations in
// the Vadalog literature).
//
// PatternMemo canonicalizes a frontier by renaming its labeled nulls in
// first-occurrence order (ground values are kept verbatim — two frontiers
// with different ground parts are never merged). SeenOrInsert answers
// "was an isomorphic frontier already fired for this rule?", letting the
// engine skip the re-firing entirely. The engine engages it only for
// memo-eligible rules of warded programs (analysis/harmful.h) and only
// when the frontier actually contains a null, so ground-frontier
// workloads are byte-identical with the memo on or off.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "datalog/value.h"

namespace vadalink::datalog {

class PatternMemo {
 public:
  /// True if an isomorphic frontier was already recorded for `rule_id`;
  /// records the canonical pattern otherwise. Call only when `frontier`
  /// contains at least one labeled null (ground frontiers are already
  /// deduplicated by the null registry itself).
  bool SeenOrInsert(uint32_t rule_id, const std::vector<Value>& frontier);

  /// Number of distinct (rule, canonical pattern) classes recorded.
  size_t size() const { return patterns_.size(); }

 private:
  struct Key {
    uint32_t rule_id;
    std::vector<Value> pattern;
    bool operator==(const Key& o) const {
      return rule_id == o.rule_id && pattern == o.pattern;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return HashCombine(k.rule_id, HashValues(k.pattern));
    }
  };
  std::unordered_set<Key, KeyHash> patterns_;
};

}  // namespace vadalink::datalog
