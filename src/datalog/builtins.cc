#include "datalog/builtins.h"

#include <cmath>

#include "common/string_util.h"

namespace vadalink::datalog {

namespace {

Status WrongArgs(const std::string& fn, const std::string& why) {
  return Status::InvalidArgument("#" + fn + ": " + why);
}

Result<double> NumArg(const std::string& fn, const Value& v) {
  if (!v.is_numeric()) return WrongArgs(fn, "expected numeric argument");
  return v.AsNumber();
}

Result<std::string> StrArg(const std::string& fn, FunctionContext& ctx,
                           const Value& v) {
  if (!v.is_symbol()) return WrongArgs(fn, "expected string argument");
  return ctx.symbols->Name(v.symbol_id());
}

}  // namespace

void FunctionRegistry::Register(std::string name, ExternalFn fn) {
  fns_[std::move(name)] = std::move(fn);
}

const ExternalFn* FunctionRegistry::Find(std::string_view name) const {
  auto it = fns_.find(std::string(name));
  return it == fns_.end() ? nullptr : &it->second;
}

void FunctionRegistry::RegisterStandardLibrary() {
  Register("sk", [](FunctionContext& ctx,
                    const std::vector<Value>& args) -> Result<Value> {
    if (args.empty() || !args[0].is_symbol()) {
      return WrongArgs("sk", "first argument must be the functor tag string");
    }
    std::vector<Value> rest(args.begin() + 1, args.end());
    return Value::Skolem(ctx.skolems->Get(args[0].symbol_id(), rest));
  });

  Register("hash", [](FunctionContext&,
                      const std::vector<Value>& args) -> Result<Value> {
    return Value::Int(static_cast<int64_t>(HashValues(args) >> 1));
  });

  Register("mod", [](FunctionContext&,
                     const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 2 || !args[0].is_int() || !args[1].is_int()) {
      return WrongArgs("mod", "expected two integers");
    }
    int64_t b = args[1].AsInt();
    if (b == 0) return WrongArgs("mod", "modulo by zero");
    int64_t r = args[0].AsInt() % b;
    if (r < 0) r += (b > 0 ? b : -b);
    return Value::Int(r);
  });

  Register("concat", [](FunctionContext& ctx,
                        const std::vector<Value>& args) -> Result<Value> {
    std::string out;
    for (const Value& v : args) {
      if (v.is_symbol()) {
        out += ctx.symbols->Name(v.symbol_id());
      } else {
        out += v.ToString(*ctx.symbols);
      }
    }
    return Value::Symbol(ctx.symbols->Intern(out));
  });

  Register("lower", [](FunctionContext& ctx,
                       const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return WrongArgs("lower", "expected one argument");
    VL_ASSIGN_OR_RETURN(std::string s, StrArg("lower", ctx, args[0]));
    return Value::Symbol(ctx.symbols->Intern(ToLower(s)));
  });

  Register("upper", [](FunctionContext& ctx,
                       const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return WrongArgs("upper", "expected one argument");
    VL_ASSIGN_OR_RETURN(std::string s, StrArg("upper", ctx, args[0]));
    return Value::Symbol(ctx.symbols->Intern(ToUpper(s)));
  });

  Register("strlen", [](FunctionContext& ctx,
                        const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return WrongArgs("strlen", "expected one argument");
    VL_ASSIGN_OR_RETURN(std::string s, StrArg("strlen", ctx, args[0]));
    return Value::Int(static_cast<int64_t>(s.size()));
  });

  Register("substr", [](FunctionContext& ctx,
                        const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 3 || !args[1].is_int() || !args[2].is_int()) {
      return WrongArgs("substr", "expected (string, pos, len)");
    }
    VL_ASSIGN_OR_RETURN(std::string s, StrArg("substr", ctx, args[0]));
    int64_t pos = args[1].AsInt();
    int64_t len = args[2].AsInt();
    if (pos < 0 || len < 0) return WrongArgs("substr", "negative pos/len");
    std::string sub = pos >= static_cast<int64_t>(s.size())
                          ? ""
                          : s.substr(static_cast<size_t>(pos),
                                     static_cast<size_t>(len));
    return Value::Symbol(ctx.symbols->Intern(sub));
  });

  Register("abs", [](FunctionContext&,
                     const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return WrongArgs("abs", "expected one argument");
    if (args[0].is_int()) return Value::Int(std::llabs(args[0].AsInt()));
    VL_ASSIGN_OR_RETURN(double d, NumArg("abs", args[0]));
    return Value::Double(std::fabs(d));
  });

  Register("min", [](FunctionContext&,
                     const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 2) return WrongArgs("min", "expected two arguments");
    VL_ASSIGN_OR_RETURN(double a, NumArg("min", args[0]));
    VL_ASSIGN_OR_RETURN(double b, NumArg("min", args[1]));
    return a <= b ? args[0] : args[1];
  });

  Register("max", [](FunctionContext&,
                     const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 2) return WrongArgs("max", "expected two arguments");
    VL_ASSIGN_OR_RETURN(double a, NumArg("max", args[0]));
    VL_ASSIGN_OR_RETURN(double b, NumArg("max", args[1]));
    return a >= b ? args[0] : args[1];
  });

  Register("pow", [](FunctionContext&,
                     const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 2) return WrongArgs("pow", "expected two arguments");
    VL_ASSIGN_OR_RETURN(double a, NumArg("pow", args[0]));
    VL_ASSIGN_OR_RETURN(double b, NumArg("pow", args[1]));
    return Value::Double(std::pow(a, b));
  });

  Register("sqrt", [](FunctionContext&,
                      const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return WrongArgs("sqrt", "expected one argument");
    VL_ASSIGN_OR_RETURN(double a, NumArg("sqrt", args[0]));
    if (a < 0) return WrongArgs("sqrt", "negative argument");
    return Value::Double(std::sqrt(a));
  });

  Register("floor", [](FunctionContext&,
                       const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return WrongArgs("floor", "expected one argument");
    VL_ASSIGN_OR_RETURN(double a, NumArg("floor", args[0]));
    return Value::Int(static_cast<int64_t>(std::floor(a)));
  });

  Register("ceil", [](FunctionContext&,
                      const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return WrongArgs("ceil", "expected one argument");
    VL_ASSIGN_OR_RETURN(double a, NumArg("ceil", args[0]));
    return Value::Int(static_cast<int64_t>(std::ceil(a)));
  });

  Register("toint", [](FunctionContext& ctx,
                       const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return WrongArgs("toint", "expected one argument");
    const Value& v = args[0];
    if (v.is_int()) return v;
    if (v.is_double()) return Value::Int(static_cast<int64_t>(v.AsDouble()));
    if (v.is_bool()) return Value::Int(v.AsBool() ? 1 : 0);
    if (v.is_symbol()) {
      const std::string& s = ctx.symbols->Name(v.symbol_id());
      char* end = nullptr;
      long long parsed = std::strtoll(s.c_str(), &end, 10);
      if (end == s.c_str() || *end != '\0') {
        return WrongArgs("toint", "unparsable string '" + s + "'");
      }
      return Value::Int(parsed);
    }
    return WrongArgs("toint", "unsupported value kind");
  });

  Register("todouble", [](FunctionContext& ctx,
                          const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return WrongArgs("todouble", "expected one argument");
    const Value& v = args[0];
    if (v.is_double()) return v;
    if (v.is_int()) return Value::Double(static_cast<double>(v.AsInt()));
    if (v.is_symbol()) {
      const std::string& s = ctx.symbols->Name(v.symbol_id());
      char* end = nullptr;
      double parsed = std::strtod(s.c_str(), &end);
      if (end == s.c_str() || *end != '\0') {
        return WrongArgs("todouble", "unparsable string '" + s + "'");
      }
      return Value::Double(parsed);
    }
    return WrongArgs("todouble", "unsupported value kind");
  });

  Register("tostring", [](FunctionContext& ctx,
                          const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return WrongArgs("tostring", "expected one argument");
    const Value& v = args[0];
    if (v.is_symbol()) return v;
    return Value::Symbol(ctx.symbols->Intern(v.ToString(*ctx.symbols)));
  });
}

}  // namespace vadalink::datalog
