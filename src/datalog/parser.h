// Recursive-descent parser: token stream -> Program.
//
// Grammar sketch:
//   program    := (statement)*
//   statement  := directive | fact | rule
//   directive  := '@' IDENT '(' (STRING | IDENT) ')' '.'
//   fact       := atom '.'                       (must be ground)
//   rule       := body '->' head '.'
//   body       := literal (',' literal)*
//   head       := atom (',' atom)*
//   literal    := 'not' atom | atom | VARIABLE '=' expr | expr CMP expr
//   atom       := IDENT '(' term (',' term)* ')' | IDENT
//   term       := VARIABLE | constant
//   expr       := additive with unary minus, '#'-function calls, aggregates
//   aggregate  := ('msum'|'mprod'|'mmin'|'mmax') '(' expr ',' '<' vars '>' ')'
//                | 'mcount' '(' '<' vars '>' ')'
#pragma once

#include <string_view>

#include "common/status.h"
#include "datalog/ast.h"

namespace vadalink::datalog {

/// Parses `source`, interning names into `catalog`. On success the returned
/// Program references catalog ids; on failure a ParseError with line number.
Result<Program> ParseProgram(std::string_view source, Catalog* catalog);

}  // namespace vadalink::datalog
