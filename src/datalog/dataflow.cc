#include "datalog/dataflow.h"

#include <algorithm>

namespace vadalink::datalog {

namespace {

/// Past this many distinct constants a position's value set overflows to
/// kAny — the analysis trades precision for a bounded fixpoint.
constexpr size_t kConstSetCap = 16;

bool CoercedEq(const Value& a, const Value& b) {
  if (a == b) return true;
  return a.is_numeric() && b.is_numeric() && a.AsNumber() == b.AsNumber();
}

}  // namespace

bool Demand::Admits(const Value& v) const {
  if (kind != Kind::kConsts) return true;
  for (const Value& c : consts) {
    if (CoercedEq(c, v)) return true;
  }
  return false;
}

bool Demand::Join(const Demand& o) {
  if (o.kind == Kind::kNone || kind == Kind::kAny) return false;
  if (o.kind == Kind::kAny) {
    kind = Kind::kAny;
    consts.clear();
    return true;
  }
  if (kind == Kind::kNone) {
    kind = Kind::kConsts;
    consts = o.consts;
    return true;
  }
  bool changed = false;
  for (const Value& c : o.consts) {
    auto it = std::lower_bound(consts.begin(), consts.end(), c);
    if (it == consts.end() || *it != c) {
      consts.insert(it, c);
      changed = true;
    }
  }
  if (consts.size() > kConstSetCap) {
    kind = Kind::kAny;
    consts.clear();
    return true;
  }
  return changed;
}

std::string Demand::ToString(const SymbolTable& symbols) const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kAny:
      return "any";
    case Kind::kConsts: {
      std::string out = "{";
      for (size_t i = 0; i < consts.size(); ++i) {
        if (i > 0) out += ",";
        out += consts[i].ToString(symbols);
      }
      return out + "}";
    }
  }
  return "none";
}

DataflowResult AnalyzeDemand(const Program& program, const Catalog& cat,
                             const Atom& goal) {
  DataflowResult r;
  const size_t num_preds = cat.predicates.size();
  const size_t num_rules = program.rules.size();
  r.goal_predicate = goal.predicate;
  r.relevant_pred.assign(num_preds, false);
  r.rule_relevant.assign(num_rules, false);
  r.rule_kept.assign(num_rules, false);
  r.needs_full.assign(num_preds, false);
  r.demand.assign(num_preds, {});

  // ---- relevance: backward reachability over head -> body edges --------
  if (goal.predicate < num_preds) r.relevant_pred[goal.predicate] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t ri = 0; ri < num_rules; ++ri) {
      const Rule& rule = program.rules[ri];
      bool relevant = false;
      for (const Atom& h : rule.head) {
        if (h.predicate < num_preds && r.relevant_pred[h.predicate]) {
          relevant = true;
        }
      }
      if (!relevant || r.rule_relevant[ri]) continue;
      r.rule_relevant[ri] = true;
      changed = true;
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kAtom &&
            lit.kind != Literal::Kind::kNegatedAtom) {
          continue;
        }
        uint32_t p = lit.atom.predicate;
        if (p < num_preds && !r.relevant_pred[p]) {
          r.relevant_pred[p] = true;
          changed = true;
        }
      }
    }
  }
  for (size_t ri = 0; ri < num_rules; ++ri) {
    if (!r.rule_relevant[ri]) ++r.rules_pruned_relevance;
  }

  // ---- needs-full: negated reads + multi-head writes, closed downward --
  // Predicates with at least one defining rule; needs-full only matters
  // for those (EDB extensions are asserted, never computed).
  std::vector<bool> is_idb(num_preds, false);
  for (const Rule& rule : program.rules) {
    for (const Atom& h : rule.head) {
      if (h.predicate < num_preds) is_idb[h.predicate] = true;
    }
  }
  for (size_t ri = 0; ri < num_rules; ++ri) {
    if (!r.rule_relevant[ri]) continue;
    const Rule& rule = program.rules[ri];
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kNegatedAtom &&
          lit.atom.predicate < num_preds && is_idb[lit.atom.predicate]) {
        r.needs_full[lit.atom.predicate] = true;
      }
    }
    if (rule.head.size() > 1) {
      for (const Atom& h : rule.head) {
        if (h.predicate < num_preds) r.needs_full[h.predicate] = true;
      }
    }
  }
  changed = true;
  while (changed) {
    changed = false;
    for (size_t ri = 0; ri < num_rules; ++ri) {
      if (!r.rule_relevant[ri]) continue;
      const Rule& rule = program.rules[ri];
      bool full = false;
      for (const Atom& h : rule.head) {
        if (h.predicate < num_preds && r.needs_full[h.predicate]) full = true;
      }
      if (!full) continue;
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kAtom &&
            lit.kind != Literal::Kind::kNegatedAtom) {
          continue;
        }
        uint32_t p = lit.atom.predicate;
        if (p < num_preds && is_idb[p] && !r.needs_full[p]) {
          r.needs_full[p] = true;
          changed = true;
        }
      }
    }
  }

  // Constant-conflict pruning is exact only when tuple-level demand is:
  // a dropped non-demanded tuple must not be observable through a
  // negation test or an aggregate group. One relevant rule with either
  // construct disables it globally (relevance pruning stays).
  bool demand_exact = true;
  for (size_t ri = 0; ri < num_rules; ++ri) {
    if (!r.rule_relevant[ri]) continue;
    for (const Literal& lit : program.rules[ri].body) {
      if (lit.kind == Literal::Kind::kNegatedAtom ||
          (lit.kind == Literal::Kind::kAssignment && lit.rhs.is_aggregate())) {
        demand_exact = false;
      }
    }
  }

  // ---- value sets ------------------------------------------------------
  auto demand_at = [&](uint32_t pred, size_t arity) -> std::vector<Demand>& {
    std::vector<Demand>& d = r.demand[pred];
    if (d.size() < arity) d.resize(arity);
    return d;
  };

  // Seed: the goal's constant arguments; variable positions are kAny.
  if (goal.predicate < num_preds) {
    std::vector<Demand>& d = demand_at(goal.predicate, goal.args.size());
    for (size_t i = 0; i < goal.args.size(); ++i) {
      if (goal.args[i].is_var()) {
        d[i].kind = Demand::Kind::kAny;
      } else {
        d[i].Join(Demand{Demand::Kind::kConsts, {goal.args[i].constant}});
      }
    }
  }
  // needs-full predicates are computed in full: force kAny everywhere so
  // no constant conflict fires in their cone.
  auto force_any = [&](const Atom& a) {
    std::vector<Demand>& d = demand_at(a.predicate, a.args.size());
    bool any_change = false;
    for (Demand& pos : d) {
      if (pos.kind != Demand::Kind::kAny) {
        pos.kind = Demand::Kind::kAny;
        pos.consts.clear();
        any_change = true;
      }
    }
    return any_change;
  };

  // Per-rule conflict check against the current demand: every relevant
  // head either is undemanded or carries a constant excluded by a finite
  // set. Conflicted rules stop propagating; growing demand can revive
  // them (monotone, so the fixpoint terminates).
  auto head_conflicts = [&](const Rule& rule) {
    if (!demand_exact) return false;
    bool all_conflict = true;
    for (const Atom& h : rule.head) {
      if (h.predicate >= num_preds || !r.relevant_pred[h.predicate]) continue;
      const std::vector<Demand>& d = r.demand[h.predicate];
      bool conflict = false;
      for (size_t i = 0; i < h.args.size() && i < d.size(); ++i) {
        if (!h.args[i].is_var() && d[i].kind == Demand::Kind::kConsts &&
            !d[i].Admits(h.args[i].constant)) {
          conflict = true;
        }
      }
      if (!conflict) all_conflict = false;
    }
    return all_conflict;
  };

  changed = true;
  while (changed) {
    changed = false;
    for (size_t ri = 0; ri < num_rules; ++ri) {
      if (!r.rule_relevant[ri]) continue;
      const Rule& rule = program.rules[ri];
      if (head_conflicts(rule)) continue;

      bool rule_full = false;
      for (const Atom& h : rule.head) {
        if (h.predicate < num_preds && r.needs_full[h.predicate]) {
          rule_full = true;
        }
      }

      // Per-variable demand: meet (intersection) over the variable's
      // occurrences in demanded head positions; variables not mentioned
      // in any demanded head position are unconstrained.
      std::vector<Demand> var_demand(rule.var_names.size());
      for (Demand& d : var_demand) d.kind = Demand::Kind::kAny;
      if (!rule_full) {
        for (const Atom& h : rule.head) {
          if (h.predicate >= num_preds) continue;
          const std::vector<Demand>& d = r.demand[h.predicate];
          for (size_t i = 0; i < h.args.size() && i < d.size(); ++i) {
            if (!h.args[i].is_var() || d[i].kind != Demand::Kind::kConsts) {
              continue;
            }
            Demand& vd = var_demand[h.args[i].var];
            if (vd.kind == Demand::Kind::kAny) {
              vd = d[i];
            } else {
              // Intersection of two finite sets (coerced equality).
              std::vector<Value> both;
              for (const Value& c : vd.consts) {
                if (d[i].Admits(c)) both.push_back(c);
              }
              vd.consts = std::move(both);
            }
          }
        }
      }

      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kAtom &&
            lit.kind != Literal::Kind::kNegatedAtom) {
          continue;
        }
        const Atom& a = lit.atom;
        if (a.predicate >= num_preds) continue;
        if (a.predicate < num_preds && r.needs_full[a.predicate]) {
          if (force_any(a)) changed = true;
          continue;
        }
        std::vector<Demand>& d = demand_at(a.predicate, a.args.size());
        for (size_t i = 0; i < a.args.size(); ++i) {
          const Demand incoming =
              a.args[i].is_var() ? var_demand[a.args[i].var]
                                 : Demand{Demand::Kind::kAny, {}};
          if (d[i].Join(incoming)) changed = true;
        }
      }
    }
  }

  // ---- final keep mask -------------------------------------------------
  for (size_t ri = 0; ri < num_rules; ++ri) {
    if (!r.rule_relevant[ri]) continue;
    if (head_conflicts(program.rules[ri])) {
      ++r.rules_pruned_conflict;
    } else {
      r.rule_kept[ri] = true;
    }
  }
  return r;
}

}  // namespace vadalink::datalog
