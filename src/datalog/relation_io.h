// CSV import/export of relations, so fact bases can be exchanged with the
// surrounding data platform (the ETL boundary in the paper's Figure 3
// architecture). One file per predicate; cells are typed with the same
// conventions as the rule language: bare/quoted text is a string symbol,
// integers and decimals are numeric, "true"/"false" are booleans.
#pragma once

#include <string>

#include "common/status.h"
#include "datalog/database.h"

namespace vadalink::datalog {

/// Loads rows of `path` as facts of `predicate` (interned on demand).
/// All rows must have the same arity (the relation's, if it exists).
/// Returns the number of newly inserted facts.
Result<size_t> LoadRelationCsv(Database* db, std::string_view predicate,
                               const std::string& path);

/// Writes all tuples of `predicate` to `path`. Strings are written
/// unquoted (CSV quoting applies when needed); nulls as "_:nK", Skolem
/// OIDs as "#K" (both re-read as strings — OIDs do not round-trip by
/// design, they are internal).
Status SaveRelationCsv(const Database& db, std::string_view predicate,
                       const std::string& path);

/// Parses one CSV cell into a Value using the typing conventions above.
Value ParseCsvValue(const std::string& cell, SymbolTable* symbols);

}  // namespace vadalink::datalog
