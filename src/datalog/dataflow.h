// Goal-directed dataflow analysis over the rule dependency graph
// (ROADMAP item: constant-reachability pruning in the style of z3's
// muz/dataflow value-set engine).
//
// Given a goal atom, the analysis answers two questions the magic-set
// rewrite (datalog/magic.h) and the rule pruner need:
//
//  * relevance — which predicates / rules are backward-reachable from the
//    goal through rule bodies (negated reads included)? Rules outside this
//    cone can never contribute a goal fact and are dropped unconditionally.
//  * value sets — which constants can flow into each (predicate, argument
//    position) of a goal-relevant tuple? The lattice per position is
//    kNone < kConsts(S) < kAny: constants originate only from the goal's
//    bound arguments, flow backward from head variables into body atom
//    positions (meet = intersection across a variable's head occurrences,
//    join = union across demanding rules), and overflow to kAny past a
//    small cap. A relevant rule whose head carries a constant excluded by
//    a finite demand set is pruned too — but only in programs without
//    negation or aggregation in the relevant cone, where tuple-level
//    demand is exact (dropping a non-demanded tuple cannot flip a
//    negation test or shift a running aggregate group).
#pragma once

#include <cstdint>
#include <vector>

#include "datalog/ast.h"

namespace vadalink::datalog {

/// Demanded-value lattice for one (predicate, argument position).
struct Demand {
  enum class Kind : uint8_t { kNone, kConsts, kAny };
  Kind kind = Kind::kNone;
  /// Sorted, deduplicated (kConsts only).
  std::vector<Value> consts;

  /// Membership with numeric coercion (1 and 1.0 satisfy the same
  /// demand), mirroring the comparison builtins. kAny/kNone admit
  /// everything — kNone positions belong to irrelevant predicates, which
  /// relevance pruning already removed.
  bool Admits(const Value& v) const;

  /// Lattice join (union of possible demands). Returns true on change.
  bool Join(const Demand& o);

  std::string ToString(const SymbolTable& symbols) const;
};

struct DataflowResult {
  uint32_t goal_predicate = 0;
  /// predicate id -> backward-reachable from the goal.
  std::vector<bool> relevant_pred;
  /// rule index -> some head predicate is relevant.
  std::vector<bool> rule_relevant;
  /// rule index -> survives both relevance and constant-conflict pruning.
  /// The magic rewrite operates on exactly these rules.
  std::vector<bool> rule_kept;
  /// Predicates whose extension must be computed in full under a demand
  /// transformation: read under negation by a kept rule, or written by a
  /// kept multi-head rule (guarding one head would starve the other),
  /// transitively closed over the bodies of their defining rules.
  std::vector<bool> needs_full;
  /// demand[p][i]: value set for predicate p at position i (empty vector
  /// for predicates never demanded). needs_full predicates and their
  /// cones are forced to kAny.
  std::vector<std::vector<Demand>> demand;
  size_t rules_pruned_relevance = 0;
  size_t rules_pruned_conflict = 0;

  size_t rules_pruned() const {
    return rules_pruned_relevance + rules_pruned_conflict;
  }
};

/// Runs relevance + value-set analysis for `goal` over `program`. Pure
/// analysis: no catalog mutation, deterministic output.
DataflowResult AnalyzeDemand(const Program& program, const Catalog& cat,
                             const Atom& goal);

}  // namespace vadalink::datalog
