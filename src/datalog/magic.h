// Magic-set / demand transformation for goal-directed evaluation.
//
// Given a goal atom with bound (constant) and free (variable) positions,
// MagicRewrite produces a program whose fixpoint derives exactly the
// goal-matching subset of the original program's fixpoint for the goal
// predicate — usually a small fraction of full saturation. The rewrite is
// the union-over-adornments variant: no predicate renaming, each defining
// rule of a demanded predicate is copied once per distinct effective
// adornment and guarded by a prepended `__magic_<pred>_<adorn>` atom over
// the head's bound positions. Guards only restrict rule applicability
// (soundness); demand rules over-approximate the needed bindings
// (completeness), so deriving extra magic facts merely wastes work.
//
// Constructs the rewrite cannot handle force a reported fallback (never
// silent): negation inside the goal's recursive component, existential
// head variables in goal-relevant rules (labeled-null identity is
// enumeration-order-sensitive), aggregates whose running values escape
// through anything but monotone threshold guards, and goals that
// themselves enumerate running aggregate values. On fallback the caller
// still gets the relevance-pruned program — rules that cannot reach the
// goal are dropped either way.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/dataflow.h"

namespace vadalink::datalog {

/// A query goal: one atom whose constant arguments are the bound
/// positions. `var_names` names the free positions (indexed by Term::var).
struct QueryGoal {
  Atom atom;
  std::vector<std::string> var_names;

  std::string ToString(const Catalog& cat) const;
};

/// Parses a goal written in rule-atom syntax, e.g. `control(7, X)` or
/// `closelink(3, Y)`. Constants and variables follow the program grammar;
/// the predicate name is interned into `catalog`.
Result<QueryGoal> ParseQueryGoal(std::string_view text, Catalog* catalog);

/// Outcome of MagicRewrite. `program` is always runnable and always
/// computes the goal predicate's goal-matching subset exactly:
///  * rewritten && fallback_reason.empty(): demand-transformed program
///    (magic guards + seed fact) — derives only goal-relevant facts;
///  * !rewritten: relevance-pruned copy of the input — full saturation of
///    the goal's dependency cone; `fallback_reason` says why the demand
///    transformation was not applicable (empty only for goals with no
///    bound position, where there is no demand to push).
struct MagicResult {
  bool rewritten = false;
  std::string fallback_reason;
  /// Stable slug classifying fallback_reason, for metrics and tooling:
  /// "needs_full", "negation_in_goal_scc", "existential_in_kept_rule" or
  /// "aggregate_escape". Empty exactly when fallback_reason is (the
  /// rewrite applied, or an all-free goal left no demand to push).
  std::string fallback_code;
  Program program;
  uint32_t goal_predicate = 0;
  /// Rules of the input program dropped by the dataflow analysis.
  size_t rules_pruned = 0;
  /// Demand rules emitted (magic rules + adornment bridges).
  size_t magic_rules = 0;
  /// Distinct (predicate, adornment) demands processed.
  size_t adornments = 0;
  DataflowResult dataflow;
};

/// Rewrites `program` for `goal`. Interns the `__magic_*` predicate names
/// into `catalog` (the rewritten program must be evaluated against a
/// database sharing this catalog). Deterministic: same program + goal ->
/// identical output program.
MagicResult MagicRewrite(const Program& program, Catalog* catalog,
                         const QueryGoal& goal);

/// True iff a ground tuple of the goal predicate matches the goal's bound
/// constants (exact value equality — the same semantics the engine's
/// joins use, so query answers and the saturation subset agree
/// byte-for-byte).
bool GoalMatches(const QueryGoal& goal, const std::vector<Value>& tuple);

}  // namespace vadalink::datalog
