#include "datalog/lexer.h"

#include <cctype>
#include <cstdlib>

namespace vadalink::datalog {

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kIdent: return "identifier";
    case TokenType::kVariable: return "variable";
    case TokenType::kInt: return "integer";
    case TokenType::kDouble: return "double";
    case TokenType::kString: return "string";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kComma: return "','";
    case TokenType::kDot: return "'.'";
    case TokenType::kArrow: return "'->'";
    case TokenType::kEq: return "'='";
    case TokenType::kEqEq: return "'=='";
    case TokenType::kNe: return "'!='";
    case TokenType::kLt: return "'<'";
    case TokenType::kLe: return "'<='";
    case TokenType::kGt: return "'>'";
    case TokenType::kGe: return "'>='";
    case TokenType::kPlus: return "'+'";
    case TokenType::kMinus: return "'-'";
    case TokenType::kStar: return "'*'";
    case TokenType::kSlash: return "'/'";
    case TokenType::kHash: return "'#'";
    case TokenType::kAt: return "'@'";
    case TokenType::kEof: return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  uint32_t line = 1;
  size_t i = 0;
  size_t line_start = 0;  // index of the first character of `line`
  const size_t n = source.size();

  // 1-based column of index `at` on the current line.
  auto col_of = [&](size_t at) {
    return static_cast<uint32_t>(at - line_start + 1);
  };
  auto pos_error = [&](size_t at, const std::string& msg) {
    return Status::ParseError("line " + std::to_string(line) + ", col " +
                              std::to_string(col_of(at)) + ": " + msg);
  };

  auto push = [&](TokenType t) {
    Token tok;
    tok.type = t;
    tok.line = line;
    tok.col = col_of(i);
    tokens.push_back(std::move(tok));
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '%') {  // comment to end of line
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      Token tok;
      tok.line = line;
      tok.col = col_of(start);
      tok.text = std::string(source.substr(start, i - start));
      tok.type = (std::isupper(static_cast<unsigned char>(c)) || c == '_')
                     ? TokenType::kVariable
                     : TokenType::kIdent;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      if (i + 1 < n && source[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          ++i;
        }
      }
      if (i < n && (source[i] == 'e' || source[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (source[j] == '+' || source[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) {
          is_double = true;
          i = j;
          while (i < n &&
                 std::isdigit(static_cast<unsigned char>(source[i]))) {
            ++i;
          }
        }
      }
      std::string text(source.substr(start, i - start));
      Token tok;
      tok.line = line;
      tok.col = col_of(start);
      if (is_double) {
        tok.type = TokenType::kDouble;
        tok.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInt;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      const uint32_t open_line = line;
      const uint32_t open_col = col_of(i);
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (source[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        if (source[i] == '\\' && i + 1 < n) {
          char esc = source[i + 1];
          switch (esc) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '\\': text += '\\'; break;
            case '"': text += '"'; break;
            default: text += esc; break;
          }
          i += 2;
          continue;
        }
        if (source[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
        text += source[i++];
      }
      if (!closed) {
        return Status::ParseError("line " + std::to_string(open_line) +
                                  ", col " + std::to_string(open_col) +
                                  ": unterminated string literal");
      }
      Token tok;
      tok.type = TokenType::kString;
      tok.line = open_line;
      tok.col = open_col;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Operators and punctuation.
    auto two = [&](char c2) { return i + 1 < n && source[i + 1] == c2; };
    switch (c) {
      case '(': push(TokenType::kLParen); ++i; break;
      case ')': push(TokenType::kRParen); ++i; break;
      case ',': push(TokenType::kComma); ++i; break;
      case '.': push(TokenType::kDot); ++i; break;
      case '+': push(TokenType::kPlus); ++i; break;
      case '*': push(TokenType::kStar); ++i; break;
      case '/': push(TokenType::kSlash); ++i; break;
      case '#': push(TokenType::kHash); ++i; break;
      case '@': push(TokenType::kAt); ++i; break;
      case '-':
        if (two('>')) {
          push(TokenType::kArrow);
          i += 2;
        } else {
          push(TokenType::kMinus);
          ++i;
        }
        break;
      case '=':
        if (two('=')) {
          push(TokenType::kEqEq);
          i += 2;
        } else {
          push(TokenType::kEq);
          ++i;
        }
        break;
      case '!':
        if (two('=')) {
          push(TokenType::kNe);
          i += 2;
        } else {
          return pos_error(i, "stray '!'");
        }
        break;
      case '<':
        if (two('=')) {
          push(TokenType::kLe);
          i += 2;
        } else {
          push(TokenType::kLt);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenType::kGe);
          i += 2;
        } else {
          push(TokenType::kGt);
          ++i;
        }
        break;
      default:
        return pos_error(i, "unexpected character '" + std::string(1, c) +
                                "'");
    }
  }
  push(TokenType::kEof);
  return tokens;
}

}  // namespace vadalink::datalog
