// Ground values of the Datalog± engine: booleans, integers, doubles,
// interned string symbols, labeled nulls (invented by existential rule
// heads) and Skolem identifiers (OID invention, Section 4 of the paper:
// deterministic, injective, with pairwise-disjoint ranges per functor tag).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace vadalink::datalog {

/// Interning table for string constants. Symbol ids are dense and stable
/// for the lifetime of the table.
class SymbolTable {
 public:
  /// Returns the id of `s`, interning it on first sight.
  uint32_t Intern(std::string_view s);

  /// Returns the id of `s` if already interned, or UINT32_MAX.
  uint32_t Lookup(std::string_view s) const;

  const std::string& Name(uint32_t id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> names_;
};

/// A ground term.
///
/// Values of different kinds are never equal (the integer 1 and the double
/// 1.0 are distinct values, though comparison builtins coerce numerically).
class Value {
 public:
  enum class Kind : uint8_t {
    kNone = 0,   // absence / uninitialised
    kBool,
    kInt,
    kDouble,
    kSymbol,     // interned string constant
    kNull,       // labeled null invented by the chase
    kSkolem,     // Skolem-functor-generated OID
  };

  Value() : kind_(Kind::kNone), bits_(0) {}

  static Value Bool(bool b) { return Value(Kind::kBool, b ? 1 : 0); }
  static Value Int(int64_t i) {
    return Value(Kind::kInt, static_cast<uint64_t>(i));
  }
  static Value Double(double d) {
    uint64_t bits;
    __builtin_memcpy(&bits, &d, sizeof(bits));
    return Value(Kind::kDouble, bits);
  }
  static Value Symbol(uint32_t id) { return Value(Kind::kSymbol, id); }
  static Value Null(uint64_t id) { return Value(Kind::kNull, id); }
  static Value Skolem(uint64_t id) { return Value(Kind::kSkolem, id); }

  Kind kind() const { return kind_; }
  bool is_none() const { return kind_ == Kind::kNone; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_symbol() const { return kind_ == Kind::kSymbol; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_skolem() const { return kind_ == Kind::kSkolem; }
  bool is_numeric() const { return is_int() || is_double(); }

  bool AsBool() const { return bits_ != 0; }
  int64_t AsInt() const { return static_cast<int64_t>(bits_); }
  double AsDouble() const {
    double d;
    __builtin_memcpy(&d, &bits_, sizeof(d));
    return d;
  }
  uint32_t symbol_id() const { return static_cast<uint32_t>(bits_); }
  uint64_t null_id() const { return bits_; }
  uint64_t skolem_id() const { return bits_; }

  /// Numeric widening. Precondition: is_numeric().
  double AsNumber() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDouble();
  }

  bool operator==(const Value& o) const {
    return kind_ == o.kind_ && bits_ == o.bits_;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// Total order used by indexes and deterministic output: by kind, then
  /// payload (numeric kinds by numeric value).
  bool operator<(const Value& o) const;

  uint64_t Hash() const {
    return HashFinalize(HashCombine(static_cast<uint64_t>(kind_), bits_));
  }

  /// Rendering; symbols need the table, nulls render as _:nK, skolems #K.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  Value(Kind k, uint64_t bits) : kind_(k), bits_(bits) {}

  Kind kind_;
  uint64_t bits_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Hash of a tuple of values (order-sensitive).
uint64_t HashValues(const Value* vals, size_t n);
inline uint64_t HashValues(const std::vector<Value>& vals) {
  return HashValues(vals.data(), vals.size());
}

/// Second, independently seeded tuple hash. Streaming relations compare
/// (HashValues, HashValues2) — an effective 128-bit fingerprint — to test
/// equality against rows whose column storage was already evicted.
uint64_t HashValues2(const Value* vals, size_t n);

/// Registry generating deterministic Skolem OIDs.
///
/// An OID is identified by (functor tag, argument tuple). Determinism and
/// injectivity per tag hold by construction; disjointness across tags holds
/// because the tag participates in the key.
class SkolemRegistry {
 public:
  /// Returns the OID for tag(args...), creating it on first use.
  uint64_t Get(uint32_t tag_symbol, const std::vector<Value>& args);

  /// Inverse lookup for explanation / printing; nullptr if unknown id.
  struct Entry {
    uint32_t tag_symbol;
    std::vector<Value> args;
  };
  const Entry* Find(uint64_t id) const;

  size_t size() const { return entries_.size(); }

 private:
  struct KeyHash {
    size_t operator()(const std::pair<uint32_t, std::vector<Value>>& k) const {
      return HashCombine(k.first, HashValues(k.second));
    }
  };
  std::unordered_map<std::pair<uint32_t, std::vector<Value>>, uint64_t,
                     KeyHash>
      index_;
  std::vector<Entry> entries_;
};

/// Registry generating labeled nulls for existential heads. A null is
/// memoised on (rule id, existential variable index, frontier values), i.e.
/// the engine runs the Skolem chase: re-firing a rule on the same frontier
/// reuses the same nulls, guaranteeing termination on warded programs.
class NullRegistry {
 public:
  uint64_t Get(uint32_t rule_id, uint32_t var_index,
               const std::vector<Value>& frontier);

  size_t size() const { return count_; }

 private:
  struct Key {
    uint32_t rule_id;
    uint32_t var_index;
    std::vector<Value> frontier;
    bool operator==(const Key& o) const {
      return rule_id == o.rule_id && var_index == o.var_index &&
             frontier == o.frontier;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return HashCombine(HashCombine(k.rule_id, k.var_index),
                         HashValues(k.frontier));
    }
  };
  std::unordered_map<Key, uint64_t, KeyHash> index_;
  uint64_t count_ = 0;
};

}  // namespace vadalink::datalog
