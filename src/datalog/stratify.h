// Stratification of programs with negation.
//
// Builds the predicate dependency graph (positive edges from body atoms to
// head predicates, negative edges from negated body atoms), rejects
// programs with negation inside a recursive component, and assigns every
// rule to a stratum. Head predicates of the same rule are forced into the
// same stratum so multi-head rules stay sound.
#pragma once

#include <vector>

#include "common/status.h"
#include "datalog/ast.h"

namespace vadalink::datalog {

struct Stratification {
  /// stratum index -> rule indices (into Program::rules), evaluation order.
  std::vector<std::vector<uint32_t>> strata;
  /// predicate id -> stratum (UINT32_MAX for predicates not mentioned).
  std::vector<uint32_t> predicate_stratum;
};

/// Computes a stratification, or InvalidArgument if the program uses
/// negation through recursion.
Result<Stratification> Stratify(const Program& program, const Catalog& cat);

}  // namespace vadalink::datalog
