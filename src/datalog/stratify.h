// Stratification of programs with negation.
//
// Builds the predicate dependency graph — positive edges from body atoms
// to head predicates, negative edges from negated body atoms — with full
// edge provenance (rule index + source span), condenses it into strongly
// connected components, rejects programs with a negative edge inside a
// component (negation through recursion) naming the offending cycle, and
// assigns every rule to a stratum. Head predicates of the same rule are
// forced into the same stratum so multi-head rules stay sound.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"

namespace vadalink::datalog {

/// One dependency edge with provenance: `to` depends on `from` because
/// rule `rule` reads `from` in its body (negated if `negative`) and writes
/// `to` in its head.
struct DepEdge {
  uint32_t from = 0;       // body predicate
  uint32_t to = 0;         // head predicate
  bool negative = false;   // from a negated body atom
  /// True when the rule computes a monotonic aggregate: the analyzer uses
  /// this to find aggregation inside recursive components.
  bool aggregated = false;
  /// Rule index into Program::rules; UINT32_MAX for the synthetic edges
  /// tying multi-head predicates together.
  uint32_t rule = UINT32_MAX;
  /// Position of the body literal inducing the edge (rule span for the
  /// synthetic multi-head ties).
  SourceSpan span;
};

/// The full dependency graph of `program`, synthetic multi-head tie edges
/// included. Deterministic order (rules in program order, body literals in
/// source order).
std::vector<DepEdge> BuildDependencyGraph(const Program& program);

/// Tarjan condensation of the dependency graph over predicates
/// [0, num_preds). Returns comp[p] for every predicate; component ids are
/// assigned in reverse topological order, i.e. for every cross-component
/// edge u -> v, comp[v] <= comp[u], with equality iff u and v are in the
/// same component.
std::vector<uint32_t> CondenseSCCs(const std::vector<DepEdge>& edges,
                                   size_t num_preds);

struct Stratification {
  /// stratum index -> rule indices (into Program::rules), evaluation order.
  std::vector<std::vector<uint32_t>> strata;
  /// predicate id -> stratum (0 for predicates not mentioned).
  std::vector<uint32_t> predicate_stratum;
};

/// Computes a stratification, or InvalidArgument if the program uses
/// negation through recursion. The error message names the offending
/// negated literal (rule + source span) and the predicate cycle it sits
/// on.
Result<Stratification> Stratify(const Program& program, const Catalog& cat);

}  // namespace vadalink::datalog
