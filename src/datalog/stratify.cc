#include "datalog/stratify.h"

#include <algorithm>

namespace vadalink::datalog {

std::vector<DepEdge> BuildDependencyGraph(const Program& program) {
  std::vector<DepEdge> edges;
  for (uint32_t r = 0; r < program.rules.size(); ++r) {
    const Rule& rule = program.rules[r];
    bool aggregated = false;
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kAssignment && lit.rhs.is_aggregate()) {
        aggregated = true;
      }
    }
    for (const Atom& head : rule.head) {
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kAtom &&
            lit.kind != Literal::Kind::kNegatedAtom) {
          continue;
        }
        DepEdge e;
        e.from = lit.atom.predicate;
        e.to = head.predicate;
        e.negative = lit.kind == Literal::Kind::kNegatedAtom;
        e.aggregated = aggregated;
        e.rule = r;
        e.span = lit.atom.span.known() ? lit.atom.span : rule.span;
        edges.push_back(e);
      }
      // Tie multi-head predicates together (mutual positive edges) so the
      // whole rule lands in a single stratum.
      for (const Atom& other : rule.head) {
        if (other.predicate != head.predicate) {
          DepEdge tie;
          tie.from = other.predicate;
          tie.to = head.predicate;
          tie.rule = UINT32_MAX;
          tie.span = rule.span;
          edges.push_back(tie);
          std::swap(tie.from, tie.to);
          edges.push_back(tie);
        }
      }
    }
  }
  return edges;
}

std::vector<uint32_t> CondenseSCCs(const std::vector<DepEdge>& edges,
                                   size_t num_preds) {
  // Adjacency over predicate ids.
  std::vector<std::vector<uint32_t>> adj(num_preds);
  for (const DepEdge& e : edges) {
    if (e.from < num_preds && e.to < num_preds) adj[e.from].push_back(e.to);
  }

  // Iterative Tarjan (explicit stack: node + next-child cursor).
  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(num_preds, kUnvisited);
  std::vector<uint32_t> lowlink(num_preds, 0);
  std::vector<bool> on_stack(num_preds, false);
  std::vector<uint32_t> comp(num_preds, kUnvisited);
  std::vector<uint32_t> scc_stack;
  uint32_t next_index = 0;
  uint32_t next_comp = 0;

  struct Frame {
    uint32_t node;
    size_t child;
  };
  std::vector<Frame> call_stack;

  for (uint32_t root = 0; root < num_preds; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      uint32_t v = f.node;
      if (f.child == 0) {
        index[v] = lowlink[v] = next_index++;
        scc_stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (f.child < adj[v].size()) {
        uint32_t w = adj[v][f.child++];
        if (index[w] == kUnvisited) {
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;
      if (lowlink[v] == index[v]) {
        for (;;) {
          uint32_t w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          comp[w] = next_comp;
          if (w == v) break;
        }
        ++next_comp;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        uint32_t parent = call_stack.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return comp;
}

Result<Stratification> Stratify(const Program& program, const Catalog& cat) {
  const size_t num_preds = cat.predicates.size();
  std::vector<DepEdge> edges = BuildDependencyGraph(program);
  std::vector<uint32_t> comp = CondenseSCCs(edges, num_preds);

  // A negative edge inside one component = negation through recursion.
  // Name the offending literal and the predicate cycle it sits on.
  for (const DepEdge& e : edges) {
    if (!e.negative || comp[e.from] != comp[e.to]) continue;
    std::string cycle;
    std::string first;
    for (uint32_t p = 0; p < num_preds; ++p) {
      if (comp[p] != comp[e.from]) continue;
      if (cycle.empty()) {
        first = cat.predicates.Name(p);
      } else {
        cycle += " -> ";
      }
      cycle += cat.predicates.Name(p);
    }
    cycle += " -> " + first;
    std::string where;
    if (e.rule != UINT32_MAX) {
      where = " ('not " + cat.predicates.Name(e.from) + "' in rule #" +
              std::to_string(e.rule) + " at " + e.span.ToString() + ")";
    }
    return Status::InvalidArgument(
        "program is not stratifiable: negation through recursion on cycle " +
        cycle + where);
  }

  // Stratum per component: components are numbered in reverse topological
  // order, so walking ids descending sees every edge's source component
  // before its target. stratum(to) = max over incoming edges of
  // stratum(from) + (1 if negative).
  uint32_t num_comps = 0;
  for (uint32_t c : comp) {
    if (c != UINT32_MAX) num_comps = std::max(num_comps, c + 1);
  }
  std::vector<std::vector<const DepEdge*>> incoming(num_comps);
  for (const DepEdge& e : edges) {
    if (comp[e.from] != comp[e.to]) incoming[comp[e.to]].push_back(&e);
  }
  std::vector<uint32_t> comp_stratum(num_comps, 0);
  for (uint32_t c = num_comps; c-- > 0;) {
    uint32_t s = 0;
    for (const DepEdge* e : incoming[c]) {
      s = std::max(s, comp_stratum[comp[e->from]] + (e->negative ? 1u : 0u));
    }
    comp_stratum[c] = s;
  }

  Stratification out;
  out.predicate_stratum.assign(num_preds, 0);
  uint32_t max_stratum = 0;
  for (uint32_t p = 0; p < num_preds; ++p) {
    out.predicate_stratum[p] = comp_stratum[comp[p]];
    max_stratum = std::max(max_stratum, out.predicate_stratum[p]);
  }
  out.strata.resize(max_stratum + 1);
  for (uint32_t r = 0; r < program.rules.size(); ++r) {
    uint32_t rule_stratum = 0;
    for (const Atom& head : program.rules[r].head) {
      rule_stratum =
          std::max(rule_stratum, out.predicate_stratum[head.predicate]);
    }
    out.strata[rule_stratum].push_back(r);
  }
  return out;
}

}  // namespace vadalink::datalog
