#include "datalog/stratify.h"

#include <algorithm>

namespace vadalink::datalog {

namespace {

struct DepEdge {
  uint32_t from;  // body predicate
  uint32_t to;    // head predicate
  bool negative;
};

}  // namespace

Result<Stratification> Stratify(const Program& program, const Catalog& cat) {
  const size_t num_preds = cat.predicates.size();
  std::vector<DepEdge> edges;
  for (const Rule& rule : program.rules) {
    for (const Atom& head : rule.head) {
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kAtom) {
          edges.push_back({lit.atom.predicate, head.predicate, false});
        } else if (lit.kind == Literal::Kind::kNegatedAtom) {
          edges.push_back({lit.atom.predicate, head.predicate, true});
        }
      }
      // Tie multi-head predicates together (mutual positive edges) so the
      // whole rule lands in a single stratum.
      for (const Atom& other : rule.head) {
        if (other.predicate != head.predicate) {
          edges.push_back({other.predicate, head.predicate, false});
          edges.push_back({head.predicate, other.predicate, false});
        }
      }
    }
  }

  // Longest-path stratum assignment via Bellman-Ford-style relaxation:
  // stratum(to) >= stratum(from) (+1 if negative edge).
  std::vector<uint32_t> stratum(num_preds, 0);
  const size_t max_rounds = num_preds + 1;
  bool changed = true;
  size_t round = 0;
  while (changed) {
    if (++round > max_rounds) {
      return Status::InvalidArgument(
          "program is not stratifiable: negation through recursion");
    }
    changed = false;
    for (const DepEdge& e : edges) {
      uint32_t required = stratum[e.from] + (e.negative ? 1 : 0);
      if (stratum[e.to] < required) {
        stratum[e.to] = required;
        changed = true;
      }
    }
  }

  Stratification out;
  out.predicate_stratum = stratum;
  uint32_t max_stratum = 0;
  for (uint32_t s : stratum) max_stratum = std::max(max_stratum, s);
  out.strata.resize(max_stratum + 1);
  for (uint32_t r = 0; r < program.rules.size(); ++r) {
    uint32_t rule_stratum = 0;
    for (const Atom& head : program.rules[r].head) {
      rule_stratum = std::max(rule_stratum, stratum[head.predicate]);
    }
    out.strata[rule_stratum].push_back(r);
  }
  return out;
}

}  // namespace vadalink::datalog
