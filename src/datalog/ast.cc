#include "datalog/ast.h"

namespace vadalink::datalog {

std::string SourceSpan::ToString() const {
  if (!known()) return "<synthesised>";
  return "line " + std::to_string(line) + ", col " + std::to_string(col);
}

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kMSum: return "msum";
    case AggKind::kMProd: return "mprod";
    case AggKind::kMMin: return "mmin";
    case AggKind::kMMax: return "mmax";
    case AggKind::kMCount: return "mcount";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

std::string TermToString(const Term& t, const Rule& rule, const Catalog& cat) {
  if (t.is_var()) return rule.var_names[t.var];
  return t.constant.ToString(cat.symbols);
}

std::string ExprToString(const Expr& e, const Rule& rule, const Catalog& cat) {
  switch (e.op) {
    case Expr::Op::kConst:
      return e.constant.ToString(cat.symbols);
    case Expr::Op::kVar:
      return rule.var_names[e.var];
    case Expr::Op::kNeg:
      return "-(" + ExprToString(e.children[0], rule, cat) + ")";
    case Expr::Op::kAdd:
    case Expr::Op::kSub:
    case Expr::Op::kMul:
    case Expr::Op::kDiv:
    case Expr::Op::kMod: {
      const char* op = e.op == Expr::Op::kAdd   ? "+"
                       : e.op == Expr::Op::kSub ? "-"
                       : e.op == Expr::Op::kMul ? "*"
                       : e.op == Expr::Op::kDiv ? "/"
                                                : "%";
      return "(" + ExprToString(e.children[0], rule, cat) + " " + op + " " +
             ExprToString(e.children[1], rule, cat) + ")";
    }
    case Expr::Op::kCall: {
      std::string out = "#" + cat.functions.Name(e.function) + "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprToString(e.children[i], rule, cat);
      }
      return out + ")";
    }
    case Expr::Op::kAggregate: {
      std::string out = AggKindName(e.agg);
      out += "(";
      if (!e.children.empty()) out += ExprToString(e.children[0], rule, cat);
      if (!e.contributors.empty()) {
        out += ", <";
        for (size_t i = 0; i < e.contributors.size(); ++i) {
          if (i > 0) out += ", ";
          out += rule.var_names[e.contributors[i]];
        }
        out += ">";
      }
      return out + ")";
    }
  }
  return "?";
}

std::string AtomToString(const Atom& a, const Rule& rule, const Catalog& cat) {
  std::string out = cat.predicates.Name(a.predicate) + "(";
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += TermToString(a.args[i], rule, cat);
  }
  return out + ")";
}

std::string LiteralToString(const Literal& l, const Rule& rule,
                            const Catalog& cat) {
  switch (l.kind) {
    case Literal::Kind::kAtom:
      return AtomToString(l.atom, rule, cat);
    case Literal::Kind::kNegatedAtom:
      return "not " + AtomToString(l.atom, rule, cat);
    case Literal::Kind::kComparison:
      return ExprToString(l.lhs, rule, cat) + " " + CmpOpName(l.cmp) + " " +
             ExprToString(l.rhs, rule, cat);
    case Literal::Kind::kAssignment:
      return rule.var_names[l.target_var] + " = " +
             ExprToString(l.rhs, rule, cat);
  }
  return "?";
}

std::string RuleToString(const Rule& r, const Catalog& cat) {
  std::string out;
  for (size_t i = 0; i < r.body.size(); ++i) {
    if (i > 0) out += ", ";
    out += LiteralToString(r.body[i], r, cat);
  }
  out += " -> ";
  for (size_t i = 0; i < r.head.size(); ++i) {
    if (i > 0) out += ", ";
    out += AtomToString(r.head[i], r, cat);
  }
  out += ".";
  return out;
}

void CollectExprVars(const Expr& e, std::vector<bool>* out) {
  if (e.op == Expr::Op::kVar) {
    if (e.var < out->size()) (*out)[e.var] = true;
  }
  if (e.op == Expr::Op::kAggregate) {
    for (uint32_t v : e.contributors) {
      if (v < out->size()) (*out)[v] = true;
    }
  }
  for (const Expr& c : e.children) CollectExprVars(c, out);
}

std::vector<bool> BodyBoundVars(const Rule& rule) {
  std::vector<bool> bound(rule.var_names.size(), false);
  for (const Literal& l : rule.body) {
    if (l.kind == Literal::Kind::kAtom) {
      for (const Term& t : l.atom.args) {
        if (t.is_var()) bound[t.var] = true;
      }
    } else if (l.kind == Literal::Kind::kAssignment) {
      bound[l.target_var] = true;
    }
  }
  return bound;
}

std::vector<uint32_t> ExistentialVars(const Rule& rule) {
  std::vector<bool> bound = BodyBoundVars(rule);
  std::vector<bool> in_head(rule.var_names.size(), false);
  for (const Atom& a : rule.head) {
    for (const Term& t : a.args) {
      if (t.is_var()) in_head[t.var] = true;
    }
  }
  std::vector<uint32_t> out;
  for (uint32_t v = 0; v < rule.var_names.size(); ++v) {
    if (in_head[v] && !bound[v]) out.push_back(v);
  }
  return out;
}

}  // namespace vadalink::datalog
