#include "datalog/database.h"

namespace vadalink::datalog {

namespace {
constexpr size_t kInitialDedupSlots = 16;
constexpr uint64_t kDedupTagMask = 0xffffffff00000000ULL;
}  // namespace

bool Relation::RowEquals(uint32_t row, const Value* vals, size_t n) const {
  for (size_t p = 0; p < n; ++p) {
    if (columns_[p][row] != vals[p]) return false;
  }
  return true;
}

void Relation::GrowDedup() {
  size_t new_size =
      dedup_slots_.empty() ? kInitialDedupSlots : dedup_slots_.size() * 2;
  std::vector<uint64_t> slots(new_size, 0);
  const size_t mask = new_size - 1;
  for (uint32_t r = 0; r < rows_; ++r) {
    size_t s = static_cast<size_t>(row_hashes_[r]) & mask;
    while (slots[s] != 0) s = (s + 1) & mask;
    slots[s] = (row_hashes_[r] & kDedupTagMask) | (r + 1);
  }
  dedup_slots_ = std::move(slots);
}

bool Relation::Insert(const Value* vals, size_t n) {
  assert(parallel_readers_.load(std::memory_order_relaxed) == 0 &&
         "Insert during a parallel read phase");
  if (arity_ == SIZE_MAX) {
    arity_ = n;
    columns_.resize(n);
    pos_indexes_.resize(n);
  }
  // Grow at 3/4 load, keeping probes short (power-of-two capacity).
  if ((rows_ + 1) * 4 >= dedup_slots_.size() * 3) GrowDedup();

  const uint64_t h = HashValues(vals, n);
  const uint64_t tag = h & kDedupTagMask;
  const size_t mask = dedup_slots_.size() - 1;
  size_t s = static_cast<size_t>(h) & mask;
  while (dedup_slots_[s] != 0) {
    const uint64_t entry = dedup_slots_[s];
    if ((entry & kDedupTagMask) == tag &&
        RowEquals(static_cast<uint32_t>(entry) - 1, vals, n)) {
      return false;
    }
    s = (s + 1) & mask;
  }
  dedup_slots_[s] = tag | (static_cast<uint32_t>(rows_) + 1);
  row_hashes_.push_back(h);
  for (size_t p = 0; p < n; ++p) columns_[p].push_back(vals[p]);
  ++rows_;
  ++epoch_;
  return true;
}

int64_t Relation::Find(const Value* vals, size_t n) const {
  if (rows_ == 0 || dedup_slots_.empty()) return -1;
  const uint64_t h = HashValues(vals, n);
  const uint64_t tag = h & kDedupTagMask;
  const size_t mask = dedup_slots_.size() - 1;
  size_t s = static_cast<size_t>(h) & mask;
  while (dedup_slots_[s] != 0) {
    const uint64_t entry = dedup_slots_[s];
    if ((entry & kDedupTagMask) == tag) {
      const uint32_t r = static_cast<uint32_t>(entry) - 1;
      if (RowEquals(r, vals, n)) return r;
    }
    s = (s + 1) & mask;
  }
  return -1;
}

void Relation::ExtendIndex(size_t pos) const {
  // Early return keeps Probe a pure read on a warm index (the parallel
  // match phase relies on this; see WarmIndex).
  if (pos_indexes_[pos] != nullptr &&
      pos_indexes_[pos]->indexed_upto == rows_) {
    return;
  }
  assert(parallel_readers_.load(std::memory_order_relaxed) == 0 &&
         "cold-index Probe during a parallel read phase — WarmIndex first");
  if (pos_indexes_[pos] == nullptr) {
    pos_indexes_[pos] = std::make_unique<PosIndex>();
  }
  PosIndex& index = *pos_indexes_[pos];
  const std::vector<Value>& col = columns_[pos];
  for (size_t r = index.indexed_upto; r < rows_; ++r) {
    index.map[col[r]].push_back(static_cast<uint32_t>(r));
  }
  index.indexed_upto = rows_;
}

void Relation::WarmIndex(size_t pos) const {
  if (pos >= pos_indexes_.size()) return;
  ExtendIndex(pos);
}

size_t Relation::DistinctCount(size_t pos) const {
  if (pos >= pos_indexes_.size()) return rows_;
  ExtendIndex(pos);
  return pos_indexes_[pos]->map.size();
}

PostingView Relation::Probe(size_t pos, const Value& v) const {
  if (pos >= pos_indexes_.size()) return PostingView();
  ExtendIndex(pos);
  const auto& map = pos_indexes_[pos]->map;
  auto it = map.find(v);
  if (it == map.end()) return PostingView();
  return PostingView(it->second.data(), it->second.size(), this, epoch_);
}

Relation* Database::relation(uint32_t predicate) {
  if (predicate >= relations_.size()) relations_.resize(predicate + 1);
  if (!relations_[predicate]) {
    relations_[predicate] = std::make_unique<Relation>();
  }
  return relations_[predicate].get();
}

const Relation* Database::relation(uint32_t predicate) const {
  if (predicate >= relations_.size()) return nullptr;
  return relations_[predicate].get();
}

Result<bool> Database::Insert(uint32_t predicate, const Value* vals,
                              size_t n) {
  Relation* rel = relation(predicate);
  if (rel->arity() != SIZE_MAX && rel->arity() != n) {
    return Status::InvalidArgument(
        "arity mismatch for predicate '" +
        catalog_->predicates.Name(predicate) + "': have " +
        std::to_string(rel->arity()) + ", got " + std::to_string(n));
  }
  const bool inserted = rel->Insert(vals, n);
  if (inserted) ++total_facts_;
  return inserted;
}

Result<bool> Database::InsertByName(std::string_view predicate,
                                    std::vector<Value> tuple) {
  return Insert(catalog_->predicates.Intern(predicate), tuple.data(),
                tuple.size());
}

RelationScan Database::Scan(std::string_view predicate) const {
  uint32_t id = catalog_->predicates.Lookup(predicate);
  if (id == UINT32_MAX) return RelationScan();
  return Scan(id);
}

RelationScan Database::Scan(uint32_t predicate) const {
  return RelationScan(relation(predicate));
}

void Database::BeginParallelRead() const {
  for (const auto& rel : relations_) {
    if (rel) rel->BeginParallelRead();
  }
}

void Database::EndParallelRead() const {
  for (const auto& rel : relations_) {
    if (rel) rel->EndParallelRead();
  }
}

}  // namespace vadalink::datalog
