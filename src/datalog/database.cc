#include "datalog/database.h"

namespace vadalink::datalog {

bool Relation::Insert(std::vector<Value> tuple) {
  if (arity_ == SIZE_MAX) {
    arity_ = tuple.size();
    pos_indexes_.resize(arity_);
  }
  uint64_t h = HashValues(tuple);
  auto& bucket = dedup_[h];
  for (uint32_t idx : bucket) {
    if (tuples_[idx] == tuple) return false;
  }
  uint32_t idx = static_cast<uint32_t>(tuples_.size());
  bucket.push_back(idx);
  tuples_.push_back(std::move(tuple));
  return true;
}

bool Relation::Contains(const std::vector<Value>& tuple) const {
  return Find(tuple) >= 0;
}

int64_t Relation::Find(const std::vector<Value>& tuple) const {
  auto it = dedup_.find(HashValues(tuple));
  if (it == dedup_.end()) return -1;
  for (uint32_t idx : it->second) {
    if (tuples_[idx] == tuple) return idx;
  }
  return -1;
}

void Relation::ExtendIndex(size_t pos) const {
  // Early return keeps Probe a pure read on a warm index (the parallel
  // match phase relies on this; see WarmIndex).
  if (pos_indexes_[pos] && pos_indexes_[pos]->indexed_upto == tuples_.size()) {
    return;
  }
  if (!pos_indexes_[pos]) pos_indexes_[pos] = std::make_unique<PosIndex>();
  PosIndex& index = *pos_indexes_[pos];
  for (size_t i = index.indexed_upto; i < tuples_.size(); ++i) {
    index.map[tuples_[i][pos]].push_back(static_cast<uint32_t>(i));
  }
  index.indexed_upto = tuples_.size();
}

void Relation::WarmIndex(size_t pos) const {
  if (pos >= pos_indexes_.size()) return;
  ExtendIndex(pos);
}

const std::vector<uint32_t>* Relation::Probe(size_t pos,
                                             const Value& v) const {
  if (pos >= pos_indexes_.size()) return nullptr;
  ExtendIndex(pos);
  const auto& map = pos_indexes_[pos]->map;
  auto it = map.find(v);
  return it == map.end() ? nullptr : &it->second;
}

Relation* Database::relation(uint32_t predicate) {
  if (predicate >= relations_.size()) relations_.resize(predicate + 1);
  if (!relations_[predicate]) {
    relations_[predicate] = std::make_unique<Relation>();
  }
  return relations_[predicate].get();
}

const Relation* Database::relation(uint32_t predicate) const {
  if (predicate >= relations_.size()) return nullptr;
  return relations_[predicate].get();
}

Result<bool> Database::Insert(uint32_t predicate, std::vector<Value> tuple) {
  Relation* rel = relation(predicate);
  if (rel->arity() != SIZE_MAX && rel->arity() != tuple.size()) {
    return Status::InvalidArgument(
        "arity mismatch for predicate '" +
        catalog_->predicates.Name(predicate) + "': have " +
        std::to_string(rel->arity()) + ", got " +
        std::to_string(tuple.size()));
  }
  return rel->Insert(std::move(tuple));
}

Result<bool> Database::InsertByName(std::string_view predicate,
                                    std::vector<Value> tuple) {
  return Insert(catalog_->predicates.Intern(predicate), std::move(tuple));
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const auto& rel : relations_) {
    if (rel) total += rel->size();
  }
  return total;
}

std::vector<std::vector<Value>> Database::TuplesOf(
    std::string_view predicate) const {
  std::vector<std::vector<Value>> out;
  uint32_t id = catalog_->predicates.Lookup(predicate);
  if (id == UINT32_MAX) return out;
  const Relation* rel = relation(id);
  if (!rel) return out;
  out.reserve(rel->size());
  for (size_t i = 0; i < rel->size(); ++i) out.push_back(rel->tuple(i));
  return out;
}

}  // namespace vadalink::datalog
