#include "datalog/database.h"

#include <algorithm>

namespace vadalink::datalog {

namespace {
constexpr size_t kInitialDedupSlots = 16;
constexpr uint64_t kDedupTagMask = 0xffffffff00000000ULL;
}  // namespace

bool Relation::RowEquals(uint32_t row, const Value* vals, size_t n) const {
  for (size_t p = 0; p < n; ++p) {
    if (at(p, row) != vals[p]) return false;
  }
  return true;
}

bool Relation::RowMatches(uint32_t row, const Value* vals, size_t n,
                          uint64_t h, uint64_t* h2) const {
  if (row >= first_resident_) return RowEquals(row, vals, n);
  // Evicted row: its column data is gone, but both row hashes survive.
  // Comparing the 128-bit (h, h2) fingerprint keeps the dedup invariant —
  // re-deriving an evicted fact is suppressed — at a false-positive rate
  // that is negligible against any feasible fact count.
  if (row_hashes_[row] != h) return false;
  if (*h2 == 0) *h2 = HashValues2(vals, n);
  return row_hashes2_[row] == *h2;
}

void Relation::GrowDedup() {
  size_t new_size =
      dedup_slots_.empty() ? kInitialDedupSlots : dedup_slots_.size() * 2;
  std::vector<uint64_t> slots(new_size, 0);
  const size_t mask = new_size - 1;
  for (uint32_t r = 0; r < rows_; ++r) {
    size_t s = static_cast<size_t>(row_hashes_[r]) & mask;
    while (slots[s] != 0) s = (s + 1) & mask;
    slots[s] = (row_hashes_[r] & kDedupTagMask) | (r + 1);
  }
  dedup_slots_ = std::move(slots);
}

bool Relation::Insert(const Value* vals, size_t n) {
  assert(parallel_readers_.load(std::memory_order_relaxed) == 0 &&
         "Insert during a parallel read phase");
  if (arity_ == SIZE_MAX) {
    arity_ = n;
    if (paged_) {
      pages_.resize(n);
    } else {
      columns_.resize(n);
    }
    pos_indexes_.resize(n);
  }
  // Grow at 3/4 load, keeping probes short (power-of-two capacity).
  if ((rows_ + 1) * 4 >= dedup_slots_.size() * 3) GrowDedup();

  const uint64_t h = HashValues(vals, n);
  uint64_t h2 = 0;  // lazily computed by RowMatches / the paged append
  const uint64_t tag = h & kDedupTagMask;
  const size_t mask = dedup_slots_.size() - 1;
  size_t s = static_cast<size_t>(h) & mask;
  while (dedup_slots_[s] != 0) {
    const uint64_t entry = dedup_slots_[s];
    if ((entry & kDedupTagMask) == tag &&
        RowMatches(static_cast<uint32_t>(entry) - 1, vals, n, h, &h2)) {
      return false;
    }
    s = (s + 1) & mask;
  }
  dedup_slots_[s] = tag | (static_cast<uint32_t>(rows_) + 1);
  row_hashes_.push_back(h);
  if (paged_) {
    const size_t page = rows_ >> kPageBits;
    for (size_t p = 0; p < n; ++p) {
      if (page == pages_[p].size()) {
        pages_[p].emplace_back();
        pages_[p].back().reserve(kPageSize);
      }
      pages_[p].back().push_back(vals[p]);
    }
    row_hashes2_.push_back(h2 != 0 ? h2 : HashValues2(vals, n));
  } else {
    for (size_t p = 0; p < n; ++p) columns_[p].push_back(vals[p]);
  }
  ++rows_;
  ++epoch_;
  return true;
}

int64_t Relation::Find(const Value* vals, size_t n) const {
  if (rows_ == 0 || dedup_slots_.empty()) return -1;
  const uint64_t h = HashValues(vals, n);
  uint64_t h2 = 0;
  const uint64_t tag = h & kDedupTagMask;
  const size_t mask = dedup_slots_.size() - 1;
  size_t s = static_cast<size_t>(h) & mask;
  while (dedup_slots_[s] != 0) {
    const uint64_t entry = dedup_slots_[s];
    if ((entry & kDedupTagMask) == tag) {
      const uint32_t r = static_cast<uint32_t>(entry) - 1;
      // May name an evicted row: the fact is still *known* (its values
      // cannot be read back, but Contains stays true).
      if (RowMatches(r, vals, n, h, &h2)) return r;
    }
    s = (s + 1) & mask;
  }
  return -1;
}

void Relation::SetStreaming() {
  if (paged_) return;
  assert(parallel_readers_.load(std::memory_order_relaxed) == 0 &&
         "SetStreaming during a parallel read phase");
  pages_.resize(columns_.size());
  row_hashes2_.reserve(rows_);
  std::vector<Value> scratch(columns_.size());
  for (size_t r = 0; r < rows_; ++r) {
    const size_t page = r >> kPageBits;
    for (size_t p = 0; p < columns_.size(); ++p) {
      if (page == pages_[p].size()) {
        pages_[p].emplace_back();
        pages_[p].back().reserve(kPageSize);
      }
      pages_[p].back().push_back(columns_[p][r]);
      scratch[p] = columns_[p][r];
    }
    row_hashes2_.push_back(HashValues2(scratch.data(), scratch.size()));
  }
  columns_.clear();
  columns_.shrink_to_fit();
  paged_ = true;
}

size_t Relation::EvictBelow(size_t watermark) {
  assert(paged_ && "EvictBelow requires streaming mode (SetStreaming)");
  assert(parallel_readers_.load(std::memory_order_relaxed) == 0 &&
         "EvictBelow during a parallel read phase");
  watermark = std::min(watermark, rows_);
  if (watermark <= first_resident_) return 0;
  const size_t evicted = watermark - first_resident_;

  // Whole pages strictly below the watermark are physically released; a
  // partial trailing page keeps its storage until the watermark passes it.
  const size_t first_live_page = watermark >> kPageBits;
  const size_t old_first_page = first_resident_ >> kPageBits;
  for (auto& col : pages_) {
    for (size_t page = old_first_page;
         page < first_live_page && page < col.size(); ++page) {
      std::vector<Value>().swap(col[page]);
    }
  }

  // Posting lists are ascending row ids: drop the evicted prefix, and move
  // the indexed watermark forward so ExtendIndex never reads a freed row.
  // Empty postings are kept (map keys survive), which slightly inflates
  // DistinctCount on evicted relations — acceptable, the planner only uses
  // it as a relative selectivity signal.
  for (auto& index : pos_indexes_) {
    if (index == nullptr) continue;
    for (auto& [value, ids] : index->map) {
      auto first_kept = std::lower_bound(ids.begin(), ids.end(),
                                         static_cast<uint32_t>(watermark));
      ids.erase(ids.begin(), first_kept);
    }
    index->indexed_upto = std::max(index->indexed_upto, watermark);
  }

  first_resident_ = watermark;
  ++epoch_;  // outstanding PostingViews are now stale
  return evicted;
}

void Relation::ExtendIndex(size_t pos) const {
  // Early return keeps Probe a pure read on a warm index (the parallel
  // match phase relies on this; see WarmIndex).
  if (pos_indexes_[pos] != nullptr &&
      pos_indexes_[pos]->indexed_upto == rows_) {
    return;
  }
  assert(parallel_readers_.load(std::memory_order_relaxed) == 0 &&
         "cold-index Probe during a parallel read phase — WarmIndex first");
  if (pos_indexes_[pos] == nullptr) {
    pos_indexes_[pos] = std::make_unique<PosIndex>();
  }
  PosIndex& index = *pos_indexes_[pos];
  // Rows below first_resident_ were evicted before this index ever saw
  // them; their storage is gone, so indexing starts at the watermark.
  for (size_t r = std::max(index.indexed_upto, first_resident_); r < rows_;
       ++r) {
    index.map[at(pos, static_cast<uint32_t>(r))].push_back(
        static_cast<uint32_t>(r));
  }
  index.indexed_upto = rows_;
}

void Relation::WarmIndex(size_t pos) const {
  if (pos >= pos_indexes_.size()) return;
  ExtendIndex(pos);
}

size_t Relation::DistinctCount(size_t pos) const {
  if (pos >= pos_indexes_.size()) return rows_;
  ExtendIndex(pos);
  return pos_indexes_[pos]->map.size();
}

PostingView Relation::Probe(size_t pos, const Value& v) const {
  if (pos >= pos_indexes_.size()) return PostingView();
  ExtendIndex(pos);
  const auto& map = pos_indexes_[pos]->map;
  auto it = map.find(v);
  if (it == map.end()) return PostingView();
  return PostingView(it->second.data(), it->second.size(), this, epoch_);
}

Relation* Database::relation(uint32_t predicate) {
  if (predicate >= relations_.size()) relations_.resize(predicate + 1);
  if (!relations_[predicate]) {
    relations_[predicate] = std::make_unique<Relation>();
  }
  return relations_[predicate].get();
}

const Relation* Database::relation(uint32_t predicate) const {
  if (predicate >= relations_.size()) return nullptr;
  return relations_[predicate].get();
}

Result<bool> Database::Insert(uint32_t predicate, const Value* vals,
                              size_t n) {
  Relation* rel = relation(predicate);
  if (rel->arity() != SIZE_MAX && rel->arity() != n) {
    return Status::InvalidArgument(
        "arity mismatch for predicate '" +
        catalog_->predicates.Name(predicate) + "': have " +
        std::to_string(rel->arity()) + ", got " + std::to_string(n));
  }
  const bool inserted = rel->Insert(vals, n);
  if (inserted) ++total_facts_;
  return inserted;
}

Result<bool> Database::InsertByName(std::string_view predicate,
                                    std::vector<Value> tuple) {
  return Insert(catalog_->predicates.Intern(predicate), tuple.data(),
                tuple.size());
}

RelationScan Database::Scan(std::string_view predicate) const {
  uint32_t id = catalog_->predicates.Lookup(predicate);
  if (id == UINT32_MAX) return RelationScan();
  return Scan(id);
}

RelationScan Database::Scan(uint32_t predicate) const {
  return RelationScan(relation(predicate));
}

size_t Database::EvictBelow(uint32_t predicate, size_t watermark) {
  const size_t n = relation(predicate)->EvictBelow(watermark);
  evicted_rows_ += n;
  return n;
}

void Database::BeginParallelRead() const {
  for (const auto& rel : relations_) {
    if (rel) rel->BeginParallelRead();
  }
}

void Database::EndParallelRead() const {
  for (const auto& rel : relations_) {
    if (rel) rel->EndParallelRead();
  }
}

}  // namespace vadalink::datalog
