// Structured diagnostics for the Datalog± program analyzer.
//
// Every diagnostic carries a stable code, a severity, the rule it concerns
// and a source position, so callers can render it for humans, serialise it
// as JSON (validated against tools/lint_schema.json) or count it into
// metrics. Diagnostic code catalog (see DESIGN.md section 9):
//
//   VL000  error    parse error (lint CLI only: the program never reached
//                   the analyzer; the message is the parser's, with its
//                   line/col carried over)
//   VL001  error    safety: variable in comparison/assignment not bound by
//                   any positive body atom or assignment
//   VL002  error    safety: variable appears only under negation
//   VL003  error    safety: aggregate misuse (several aggregates per rule,
//                   aggregate outside assignment top level, missing value)
//   VL004  error    shape: rule without a head / non-ground fact
//   VL010  error    wardedness: dangerous variables do not share a body
//                   atom (no ward exists)
//   VL011  error    wardedness: the ward shares a harmful variable with
//                   another body atom
//   VL020  error    stratification: negation through recursion (the
//                   message names the predicate cycle)
//   VL021  warning  non-monotone use of an aggregate result inside a
//                   recursive rule (e.g. msum compared with '<')
//   VL030  warning  hygiene: predicate is derived/asserted but never read
//                   and not @output
//   VL031  warning  hygiene: dead rule — its head predicates cannot reach
//                   any @output predicate
//   VL032  warning  hygiene: singleton variable (one body occurrence, not
//                   '_'-prefixed, unused elsewhere)
//   VL033  error    arity conflict: predicate used with different arities
//   VL034  warning  hygiene: predicate name shadows a builtin function or
//                   aggregate name
//   VL040  warning  cost: rule body is a cartesian product — its positive
//                   atoms split into variable-disjoint groups
//   VL041  warning  cost: unbound self-join — two positive occurrences of
//                   one predicate share no variable
//   VL042  warning  cost: estimated rule output exceeds the configured
//                   budget (CostOptions::rule_output_budget)
//   VL050  warning  termination: recursive SCC invents labeled nulls that
//                   feed back into the cycle — termination rests on the
//                   warded chase only (growth class "warded_only")
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datalog/ast.h"

namespace vadalink::datalog::analysis {

enum class Severity : uint8_t { kWarning, kError };

const char* SeverityName(Severity s);

struct Diagnostic {
  static constexpr uint32_t kNoRule = UINT32_MAX;

  Severity severity = Severity::kWarning;
  std::string code;            // stable "VLxxx" code
  uint32_t rule_index = kNoRule;  // kNoRule = program-level diagnostic
  std::string predicate;       // offending predicate name ("" if n/a)
  SourceSpan span;             // 0/0 when no source position is known
  std::string message;
  std::string hint;            // actionable fix hint ("" if none)
};

/// One predicate's cardinality interval rendered for the lint JSON.
struct CostPredicateEntry {
  std::string predicate;
  double lo = 0.0;
  double hi = 0.0;
  std::string growth;  // SccGrowthName of the predicate's component
};

/// One rule's cost estimate rendered for the lint JSON.
struct CostRuleEntry {
  uint32_t rule = 0;
  double join_cost = 0.0;
  double output_rows = 0.0;
  bool cartesian = false;
  bool unbound_self_join = false;
};

/// Optional cost block attached by the analyzer's VL04x/VL05x pass
/// (AnalyzerOptions::cost). Serialised under "cost" in ToJson.
struct CostSummary {
  bool present = false;
  double program_cost = 0.0;
  uint64_t recursive_sccs = 0;
  uint64_t warded_only_sccs = 0;
  std::vector<CostPredicateEntry> predicates;
  std::vector<CostRuleEntry> rules;
};

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  CostSummary cost;

  size_t error_count() const;
  size_t warning_count() const;
  bool has_errors() const { return error_count() > 0; }

  /// Human-readable rendering, one diagnostic per line:
  ///   error[VL010] rule 2 (line 4, col 3): message
  ///       hint: ...
  std::string Render() const;

  /// Stable single-line JSON document (schema_version 1); validated in CI
  /// against tools/lint_schema.json. `program_name` labels the document
  /// (usually the source file path).
  std::string ToJson(const std::string& program_name) const;
};

}  // namespace vadalink::datalog::analysis
