#include "datalog/analysis/harmful.h"

#include <algorithm>

#include "datalog/warded.h"

namespace vadalink::datalog::analysis {

HarmfulVarReport AnalyzeHarmfulVariables(const Program& program,
                                         const Catalog& cat) {
  const WardednessReport warded = AnalyzeWardedness(program, cat);

  HarmfulVarReport report;
  report.warded = warded.warded;
  report.null_admitting.resize(cat.predicates.size());
  for (const auto& [predicate, position] : warded.affected_positions) {
    auto& mask = report.null_admitting[predicate];
    if (mask.size() <= position) mask.resize(position + 1, false);
    mask[position] = true;
  }

  report.rules.resize(program.rules.size());
  for (size_t i = 0; i < program.rules.size(); ++i) {
    const Rule& rule = program.rules[i];
    RuleMemoInfo& info = report.rules[i];
    info.has_existential = !ExistentialVars(rule).empty();

    // Frontier = body-bound variables that occur in some head atom.
    const std::vector<bool> bound = BodyBoundVars(rule);
    std::vector<bool> frontier(rule.var_names.size(), false);
    for (const Atom& head : rule.head) {
      for (const Term& t : head.args) {
        if (t.is_var() && t.var < bound.size() && bound[t.var]) {
          frontier[t.var] = true;
        }
      }
    }

    // kHarmful and kDangerous both admit nulls (dangerous is harmful that
    // additionally reaches the head — irrelevant for memo admission).
    for (const VarReport& vr : warded.rules[i].body_vars) {
      if (vr.cls == VarClass::kHarmless) continue;
      if (vr.var < frontier.size() && frontier[vr.var]) {
        info.harmful_frontier_vars.push_back(vr.var);
      }
    }
    std::sort(info.harmful_frontier_vars.begin(),
              info.harmful_frontier_vars.end());
    info.harmful_frontier_vars.erase(
        std::unique(info.harmful_frontier_vars.begin(),
                    info.harmful_frontier_vars.end()),
        info.harmful_frontier_vars.end());

    info.memo_eligible =
        info.has_existential && !info.harmful_frontier_vars.empty();
  }
  return report;
}

}  // namespace vadalink::datalog::analysis
