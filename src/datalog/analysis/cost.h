// Static cost & termination analysis for Vadalog programs (DESIGN.md
// section 14).
//
// AnalyzeCost propagates EDB relation cardinalities — from declared seeds
// (Database statistics) or fact counts, with a configurable default for
// relations loaded at runtime — through the rule dependency graph
// (datalog/stratify.h) and produces:
//
//  * per-predicate cardinality intervals [lo, hi]: lo counts the facts
//    that are certainly present (asserted facts / EDB seeds), hi bounds
//    the derivable extension, capped by the growth class of the
//    predicate's strongly connected component;
//  * per-rule join-cost estimates: a greedy left-deep join simulation
//    mirroring the engine's planner (cheapest estimated atom first, a
//    sqrt(N) distinct-count stand-in per bound column), summing
//    intermediate result sizes as the work proxy and reporting the final
//    size as the rule's output estimate;
//  * growth classification of every recursive SCC: kBounded
//    (non-recursive), kLinearInEdb (recursive but null-free — the
//    extension is polynomial in the active domain), kWardedOnly
//    (null-generating recursion whose termination rests on wardedness;
//    harmful-variable facts from analysis/harmful.h decide whether the
//    invented nulls actually feed back into the cycle).
//
// The report is advisory and never fails. Three consumers:
//  1. the engine's join planner seeds cold relations (no rows, no index
//     statistics yet) with the hi bound as a selectivity prior;
//  2. Engine::Query attaches the rewritten program's total estimate to
//     its QueryReport and can reject over-budget goals up front
//     (EngineOptions::max_query_cost);
//  3. the analyzer's VL04x/VL05x pass turns the per-rule flags into lint
//     diagnostics and `vadalink lint --cost --json` exports the whole
//     report.
#pragma once

#include <cstdint>
#include <vector>

#include "datalog/ast.h"

namespace vadalink::datalog::analysis {

struct CostOptions {
  /// Cardinality assumed for an EDB predicate with no seed and no
  /// asserted facts (relations loaded at runtime).
  double default_edb_cardinality = 1000.0;
  /// Per-rule estimated output above which the analyzer emits VL042.
  double rule_output_budget = 1e8;
  /// Optional per-predicate cardinality seeds (predicate id -> row
  /// count), typically Relation::size() of a live Database. Entries < 0
  /// (or an empty/short vector) fall back to fact counts / the default.
  std::vector<double> edb_cardinalities;
};

/// Growth class of a predicate's strongly connected component.
enum class SccGrowth : uint8_t {
  /// Not on any dependency cycle: the extension is a finite function of
  /// its (already bounded) inputs.
  kBounded,
  /// Recursive but null-free: every derivable value already occurs in
  /// the EDB, so the extension is bounded by adom^arity (polynomial in
  /// the EDB — linear per position).
  kLinearInEdb,
  /// Null-generating recursion: a rule in the component invents labeled
  /// nulls that feed back into the cycle. Termination is guaranteed only
  /// by the warded chase; the hi bound saturates at the analysis cap.
  kWardedOnly,
};

const char* SccGrowthName(SccGrowth g);

/// Estimated extension of one predicate. hi saturates at kCostCap.
struct CardinalityInterval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Cap for every estimate: beyond this the analysis reports "effectively
/// unbounded" rather than feigning precision.
inline constexpr double kCostCap = 1e15;

struct RuleCostEstimate {
  /// Sum of intermediate result sizes of the simulated greedy join — the
  /// work proxy the planner's probe counts are compared against.
  double join_cost = 0.0;
  /// Estimated matches of the full body (head facts per head atom).
  double output_rows = 0.0;
  /// The positive atoms fall into >= 2 variable-disjoint groups, so the
  /// body enumerates their cartesian product (VL040).
  bool cartesian = false;
  /// Two positive occurrences of the same predicate share no variable —
  /// a quadratic self-join no index can narrow (VL041).
  bool unbound_self_join = false;
  /// Predicate of the unbound self-join (valid when the flag is set).
  uint32_t self_join_pred = 0;
};

struct CostReport {
  /// Indexed by predicate id (catalog order).
  std::vector<CardinalityInterval> predicates;
  /// Growth class of each predicate's component, indexed by predicate id.
  std::vector<SccGrowth> growth;
  /// Aligned with Program::rules.
  std::vector<RuleCostEstimate> rules;
  /// Sum of all rule join costs — the program-level work estimate.
  double program_cost = 0.0;
  /// Recursive components found / those classified kWardedOnly.
  size_t recursive_sccs = 0;
  size_t warded_only_sccs = 0;
  /// Members (sorted predicate ids) of each kWardedOnly component, with a
  /// witness rule (an existential rule of the component) for diagnostics.
  std::vector<std::vector<uint32_t>> warded_only_components;
  std::vector<uint32_t> warded_only_witness_rule;
};

/// Analyses `program`; pure and deterministic, never fails.
CostReport AnalyzeCost(const Program& program, const Catalog& cat,
                       const CostOptions& options = {});

}  // namespace vadalink::datalog::analysis
