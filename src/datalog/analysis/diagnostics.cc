#include "datalog/analysis/diagnostics.h"

namespace vadalink::datalog::analysis {

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          *out += "\\u00";
          *out += hex[(c >> 4) & 0xf];
          *out += hex[c & 0xf];
        } else {
          *out += c;
        }
    }
  }
}

void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  AppendJsonEscaped(out, s);
  *out += '"';
}

}  // namespace

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

size_t AnalysisReport::error_count() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

size_t AnalysisReport::warning_count() const {
  return diagnostics.size() - error_count();
}

std::string AnalysisReport::Render() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += SeverityName(d.severity);
    out += "[" + d.code + "]";
    if (d.rule_index != Diagnostic::kNoRule) {
      out += " rule " + std::to_string(d.rule_index);
    }
    if (d.span.known()) {
      out += " (" + d.span.ToString() + ")";
    }
    out += ": " + d.message;
    if (!d.predicate.empty()) {
      out += " [predicate " + d.predicate + "]";
    }
    out += "\n";
    if (!d.hint.empty()) {
      out += "    hint: " + d.hint + "\n";
    }
  }
  return out;
}

std::string AnalysisReport::ToJson(const std::string& program_name) const {
  std::string out = "{\"schema_version\":1,\"program\":";
  AppendJsonString(&out, program_name);
  out += ",\"summary\":{\"errors\":" + std::to_string(error_count()) +
         ",\"warnings\":" + std::to_string(warning_count()) +
         ",\"diagnostics\":" + std::to_string(diagnostics.size()) + "}";
  out += ",\"diagnostics\":[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out += ",";
    out += "{\"severity\":";
    AppendJsonString(&out, SeverityName(d.severity));
    out += ",\"code\":";
    AppendJsonString(&out, d.code);
    out += ",\"rule\":";
    out += d.rule_index == Diagnostic::kNoRule
               ? "-1"
               : std::to_string(d.rule_index);
    out += ",\"predicate\":";
    AppendJsonString(&out, d.predicate);
    out += ",\"line\":" + std::to_string(d.span.line);
    out += ",\"col\":" + std::to_string(d.span.col);
    out += ",\"message\":";
    AppendJsonString(&out, d.message);
    out += ",\"hint\":";
    AppendJsonString(&out, d.hint);
    out += "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace vadalink::datalog::analysis
