#include "datalog/analysis/diagnostics.h"

#include <cstdio>

namespace vadalink::datalog::analysis {

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          *out += "\\u00";
          *out += hex[(c >> 4) & 0xf];
          *out += hex[c & 0xf];
        } else {
          *out += c;
        }
    }
  }
}

void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  AppendJsonEscaped(out, s);
  *out += '"';
}

/// %.6g keeps the document byte-stable across platforms for the value
/// ranges the cost model produces (integers, powers of ten, the cap).
void AppendJsonNumber(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

}  // namespace

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

size_t AnalysisReport::error_count() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

size_t AnalysisReport::warning_count() const {
  return diagnostics.size() - error_count();
}

std::string AnalysisReport::Render() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += SeverityName(d.severity);
    out += "[" + d.code + "]";
    if (d.rule_index != Diagnostic::kNoRule) {
      out += " rule " + std::to_string(d.rule_index);
    }
    if (d.span.known()) {
      out += " (" + d.span.ToString() + ")";
    }
    out += ": " + d.message;
    if (!d.predicate.empty()) {
      out += " [predicate " + d.predicate + "]";
    }
    out += "\n";
    if (!d.hint.empty()) {
      out += "    hint: " + d.hint + "\n";
    }
  }
  return out;
}

std::string AnalysisReport::ToJson(const std::string& program_name) const {
  std::string out = "{\"schema_version\":1,\"program\":";
  AppendJsonString(&out, program_name);
  out += ",\"summary\":{\"errors\":" + std::to_string(error_count()) +
         ",\"warnings\":" + std::to_string(warning_count()) +
         ",\"diagnostics\":" + std::to_string(diagnostics.size()) + "}";
  out += ",\"diagnostics\":[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out += ",";
    out += "{\"severity\":";
    AppendJsonString(&out, SeverityName(d.severity));
    out += ",\"code\":";
    AppendJsonString(&out, d.code);
    out += ",\"rule\":";
    out += d.rule_index == Diagnostic::kNoRule
               ? "-1"
               : std::to_string(d.rule_index);
    out += ",\"predicate\":";
    AppendJsonString(&out, d.predicate);
    out += ",\"line\":" + std::to_string(d.span.line);
    out += ",\"col\":" + std::to_string(d.span.col);
    out += ",\"message\":";
    AppendJsonString(&out, d.message);
    out += ",\"hint\":";
    AppendJsonString(&out, d.hint);
    out += "}";
  }
  out += "]";
  if (cost.present) {
    out += ",\"cost\":{\"program_cost\":";
    AppendJsonNumber(&out, cost.program_cost);
    out += ",\"recursive_sccs\":" + std::to_string(cost.recursive_sccs);
    out += ",\"warded_only_sccs\":" + std::to_string(cost.warded_only_sccs);
    out += ",\"predicates\":[";
    for (size_t i = 0; i < cost.predicates.size(); ++i) {
      const CostPredicateEntry& p = cost.predicates[i];
      if (i > 0) out += ",";
      out += "{\"predicate\":";
      AppendJsonString(&out, p.predicate);
      out += ",\"lo\":";
      AppendJsonNumber(&out, p.lo);
      out += ",\"hi\":";
      AppendJsonNumber(&out, p.hi);
      out += ",\"growth\":";
      AppendJsonString(&out, p.growth);
      out += "}";
    }
    out += "],\"rules\":[";
    for (size_t i = 0; i < cost.rules.size(); ++i) {
      const CostRuleEntry& r = cost.rules[i];
      if (i > 0) out += ",";
      out += "{\"rule\":" + std::to_string(r.rule);
      out += ",\"join_cost\":";
      AppendJsonNumber(&out, r.join_cost);
      out += ",\"output_rows\":";
      AppendJsonNumber(&out, r.output_rows);
      out += ",\"cartesian\":";
      out += r.cartesian ? "true" : "false";
      out += ",\"unbound_self_join\":";
      out += r.unbound_self_join ? "true" : "false";
      out += "}";
    }
    out += "]}";
  }
  out += "}\n";
  return out;
}

}  // namespace vadalink::datalog::analysis
