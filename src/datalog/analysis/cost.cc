#include "datalog/analysis/cost.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "datalog/analysis/harmful.h"
#include "datalog/stratify.h"

namespace vadalink::datalog::analysis {
namespace {

double Capped(double v) {
  if (!(v >= 0.0)) return 0.0;  // NaN / negative guard
  return std::min(v, kCostCap);
}

/// Distinct-count stand-in: with no histogram, assume sqrt(N) distinct
/// values per column (the classic System-R style fallback), never < 1.
double DistinctStandIn(double n) { return std::max(1.0, std::sqrt(n)); }

/// adom^arity with saturation (arity 0 relations hold at most one fact).
double DomainBound(double adom, size_t arity) {
  if (arity == 0) return 1.0;
  double b = 1.0;
  for (size_t i = 0; i < arity; ++i) {
    b *= adom;
    if (b >= kCostCap) return kCostCap;
  }
  return std::max(1.0, b);
}

/// Union-find over rule variables used for cartesian detection.
struct UnionFind {
  std::vector<uint32_t> parent;
  explicit UnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0u);
  }
  uint32_t Find(uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent[Find(a)] = Find(b); }
};

struct CostAnalyzer {
  const Program& program;
  const Catalog& cat;
  const CostOptions& options;

  CostAnalyzer(const Program& p, const Catalog& c, const CostOptions& o)
      : program(p), cat(c), options(o) {}

  size_t num_preds = 0;
  std::vector<uint32_t> comp;           // predicate -> SCC component id
  std::vector<bool> recursive_pred;     // predicate sits on a cycle
  std::vector<bool> is_idb;             // predicate appears in a rule head
  std::vector<double> fact_count;       // asserted program facts
  std::vector<size_t> arity;            // max arity seen per predicate
  HarmfulVarReport harmful;
  double adom = 0.0;  // active-domain size estimate

  CostReport report;

  void Run() {
    num_preds = cat.predicates.size();
    report.predicates.assign(num_preds, {});
    report.growth.assign(num_preds, SccGrowth::kBounded);
    report.rules.assign(program.rules.size(), {});
    if (num_preds == 0) return;

    GatherShape();
    ClassifyGrowth();
    PropagateCardinalities();
    FlagRuleShapes();
  }

  // ---- shape -----------------------------------------------------------

  void NoteArity(const Atom& a) {
    if (a.predicate >= num_preds) return;
    arity[a.predicate] = std::max(arity[a.predicate], a.args.size());
  }

  void GatherShape() {
    recursive_pred.assign(num_preds, false);
    is_idb.assign(num_preds, false);
    fact_count.assign(num_preds, 0.0);
    arity.assign(num_preds, 0);

    for (const Atom& f : program.facts) {
      NoteArity(f);
      if (f.predicate < num_preds) fact_count[f.predicate] += 1.0;
    }
    for (const Rule& r : program.rules) {
      for (const Atom& h : r.head) {
        NoteArity(h);
        if (h.predicate < num_preds) is_idb[h.predicate] = true;
      }
      for (const Literal& l : r.body) {
        if (l.kind == Literal::Kind::kAtom ||
            l.kind == Literal::Kind::kNegatedAtom) {
          NoteArity(l.atom);
        }
      }
    }

    const std::vector<DepEdge> edges = BuildDependencyGraph(program);
    comp = CondenseSCCs(edges, num_preds);
    // A predicate is recursive when its component contains a cycle: either
    // a self-edge or at least two predicates share the component.
    std::vector<uint32_t> comp_size(num_preds, 0);
    for (size_t p = 0; p < num_preds; ++p) comp_size[comp[p]]++;
    for (const DepEdge& e : edges) {
      if (e.from == e.to) recursive_pred[e.from] = true;
    }
    for (size_t p = 0; p < num_preds; ++p) {
      if (comp_size[comp[p]] > 1) recursive_pred[p] = true;
    }

    // Active-domain estimate: every EDB fact contributes arity values.
    for (size_t p = 0; p < num_preds; ++p) {
      adom += EdbSeed(p) * static_cast<double>(std::max<size_t>(1, arity[p]));
    }
    adom = std::max(1.0, Capped(adom));
  }

  /// Cardinality of predicate p's asserted/extensional part: declared seed
  /// if present, else fact count, else (for pure-EDB body predicates) the
  /// configured default.
  double EdbSeed(size_t p) const {
    if (p < options.edb_cardinalities.size() &&
        options.edb_cardinalities[p] >= 0.0) {
      return Capped(options.edb_cardinalities[p]);
    }
    if (fact_count[p] > 0.0) return fact_count[p];
    if (!is_idb[p]) return Capped(options.default_edb_cardinality);
    return 0.0;
  }

  // ---- growth classification ------------------------------------------

  void ClassifyGrowth() {
    harmful = AnalyzeHarmfulVariables(program, cat);

    // Components that contain an existential (null-generating) rule head
    // whose invented null can reach the cycle: conservatively, any
    // existential rule whose head predicate is in a recursive component.
    std::vector<bool> comp_recursive(num_preds, false);
    for (size_t p = 0; p < num_preds; ++p) {
      if (recursive_pred[p]) comp_recursive[comp[p]] = true;
    }
    std::vector<bool> comp_warded_only(num_preds, false);
    std::vector<uint32_t> comp_witness(num_preds, UINT32_MAX);
    for (size_t ri = 0; ri < program.rules.size(); ++ri) {
      if (ri < harmful.rules.size() && !harmful.rules[ri].has_existential) {
        continue;
      }
      if (ri >= harmful.rules.size() &&
          ExistentialVars(program.rules[ri]).empty()) {
        continue;
      }
      for (const Atom& h : program.rules[ri].head) {
        if (h.predicate >= num_preds) continue;
        const uint32_t c = comp[h.predicate];
        if (!comp_recursive[c] || !recursive_pred[h.predicate]) continue;
        // The nulls only threaten termination if some position of the
        // component admits them; with no null-admitting position the
        // existential is vacuous for growth. A missing mask (predicate
        // unknown to the harmful pass) conservatively counts as admitting.
        bool admits = false;
        bool have_masks = false;
        for (size_t p = 0; p < num_preds; ++p) {
          if (comp[p] != c) continue;
          if (p < harmful.null_admitting.size()) {
            have_masks = true;
            for (bool b : harmful.null_admitting[p]) admits = admits || b;
          } else {
            admits = true;
          }
        }
        if (have_masks && !admits) continue;
        if (!comp_warded_only[c]) {
          comp_warded_only[c] = true;
          comp_witness[c] = static_cast<uint32_t>(ri);
        }
      }
    }

    std::vector<bool> comp_counted(num_preds, false);
    for (size_t p = 0; p < num_preds; ++p) {
      if (!recursive_pred[p]) {
        report.growth[p] = SccGrowth::kBounded;
        continue;
      }
      const uint32_t c = comp[p];
      report.growth[p] = comp_warded_only[c] ? SccGrowth::kWardedOnly
                                             : SccGrowth::kLinearInEdb;
      if (!comp_counted[c]) {
        comp_counted[c] = true;
        report.recursive_sccs++;
        if (comp_warded_only[c]) {
          report.warded_only_sccs++;
          std::vector<uint32_t> members;
          for (size_t q = 0; q < num_preds; ++q) {
            if (comp[q] == c && recursive_pred[q]) {
              members.push_back(static_cast<uint32_t>(q));
            }
          }
          report.warded_only_components.push_back(std::move(members));
          report.warded_only_witness_rule.push_back(comp_witness[c]);
        }
      }
    }
  }

  // ---- cardinality propagation ----------------------------------------

  /// Simulates the planner's greedy cheapest-first left-deep join over the
  /// positive body atoms of `rule`, with `card(p)` supplying per-atom input
  /// sizes. Fills est->join_cost / est->output_rows.
  void SimulateJoin(const Rule& rule,
                    const std::vector<double>& card,
                    RuleCostEstimate* est) const {
    struct BodyAtom {
      const Atom* atom;
      double rows;
    };
    std::vector<BodyAtom> atoms;
    for (const Literal& l : rule.body) {
      if (l.kind != Literal::Kind::kAtom) continue;
      double rows = 1.0;
      if (l.atom.predicate < card.size()) {
        rows = std::max(1.0, card[l.atom.predicate]);
      }
      atoms.push_back({&l.atom, rows});
    }
    if (atoms.empty()) {
      // Fact-like or condition-only rule: one binding.
      est->join_cost = 0.0;
      est->output_rows = 1.0;
      return;
    }

    std::vector<bool> bound(rule.var_names.size(), false);
    // Assignments bind their targets before/independently of the join in
    // the engine; constants in atoms are always "bound".
    for (const Literal& l : rule.body) {
      if (l.kind == Literal::Kind::kAssignment &&
          l.target_var < bound.size()) {
        bound[l.target_var] = true;
      }
    }

    std::vector<bool> used(atoms.size(), false);
    double inter = 1.0;      // current intermediate result size
    double cost = 0.0;       // sum of intermediate sizes (work proxy)
    for (size_t step = 0; step < atoms.size(); ++step) {
      // Estimate each unused atom's contribution given current bindings,
      // pick the cheapest (ties -> earliest body position, deterministic).
      size_t best = SIZE_MAX;
      double best_rows = 0.0;
      for (size_t i = 0; i < atoms.size(); ++i) {
        if (used[i]) continue;
        double rows = atoms[i].rows;
        for (const Term& t : atoms[i].atom->args) {
          const bool sel = !t.is_var() ||
                           (t.var < bound.size() && bound[t.var]);
          if (sel) rows = std::max(1.0, rows / DistinctStandIn(atoms[i].rows));
        }
        if (best == SIZE_MAX || rows < best_rows) {
          best = i;
          best_rows = rows;
        }
      }
      used[best] = true;
      for (const Term& t : atoms[best].atom->args) {
        if (t.is_var() && t.var < bound.size()) bound[t.var] = true;
      }
      inter = Capped(inter * best_rows);
      cost = Capped(cost + inter);
    }
    est->join_cost = cost;
    est->output_rows = inter;
  }

  void PropagateCardinalities() {
    // card[p] mirrors report.predicates[p].hi during propagation.
    std::vector<double> card(num_preds, 0.0);
    for (size_t p = 0; p < num_preds; ++p) {
      const double seed = EdbSeed(p);
      report.predicates[p].lo = seed;
      card[p] = seed;
    }

    // Rules deriving each component, grouped by the head's component id.
    std::vector<std::vector<uint32_t>> comp_rules(num_preds);
    for (size_t ri = 0; ri < program.rules.size(); ++ri) {
      std::vector<bool> seen(num_preds, false);
      for (const Atom& h : program.rules[ri].head) {
        if (h.predicate >= num_preds) continue;
        const uint32_t c = comp[h.predicate];
        if (!seen[c]) {
          seen[c] = true;
          comp_rules[c].push_back(static_cast<uint32_t>(ri));
        }
      }
    }

    // CondenseSCCs assigns ids in reverse topological order: for every
    // edge u -> v, comp[v] <= comp[u]. Processing components in DESCENDING
    // id order therefore visits all dependencies of a component before the
    // component itself.
    uint32_t max_comp = 0;
    for (size_t p = 0; p < num_preds; ++p) {
      max_comp = std::max(max_comp, comp[p]);
    }
    for (uint32_t c = max_comp + 1; c-- > 0;) {
      const auto& rules_here = comp_rules[c];
      // One bottom-up pass: inputs from lower-id (dependency) components
      // are final; contributions from rules inside the component are
      // bounded afterwards by the growth-class cap.
      for (uint32_t ri : rules_here) {
        RuleCostEstimate est;
        SimulateJoin(program.rules[ri], card, &est);
        for (const Atom& h : program.rules[ri].head) {
          if (h.predicate >= num_preds || comp[h.predicate] != c) continue;
          card[h.predicate] = Capped(card[h.predicate] + est.output_rows);
        }
      }
      // Apply the growth cap to every member of the component.
      for (size_t p = 0; p < num_preds; ++p) {
        if (comp[p] != c) continue;
        double hi = card[p];
        switch (report.growth[p]) {
          case SccGrowth::kBounded:
            hi = std::min(hi, DomainBound(adom, arity[p]));
            break;
          case SccGrowth::kLinearInEdb:
            // Recursion closes over the active domain: the extension can
            // reach adom^arity even if one round derives little.
            hi = DomainBound(adom, arity[p]);
            break;
          case SccGrowth::kWardedOnly:
            // Null invention extends the domain; only the warded chase
            // bounds it. Saturate.
            hi = kCostCap;
            break;
        }
        hi = std::max(hi, report.predicates[p].lo);
        card[p] = hi;
        report.predicates[p].hi = hi;
      }
    }

    // Final per-rule estimates against the settled cardinalities.
    for (size_t ri = 0; ri < program.rules.size(); ++ri) {
      SimulateJoin(program.rules[ri], card, &report.rules[ri]);
      report.program_cost = Capped(report.program_cost +
                                   report.rules[ri].join_cost);
    }
  }

  // ---- rule shape flags ------------------------------------------------

  void FlagRuleShapes() {
    for (size_t ri = 0; ri < program.rules.size(); ++ri) {
      const Rule& rule = program.rules[ri];
      RuleCostEstimate& est = report.rules[ri];

      std::vector<const Atom*> pos;
      for (const Literal& l : rule.body) {
        if (l.kind == Literal::Kind::kAtom) pos.push_back(&l.atom);
      }
      if (pos.size() < 2) continue;

      // Cartesian detection: union-find over variables; atoms sharing no
      // variable chain stay in separate groups. Comparisons and
      // assignments connect the variables they mention (a join predicate
      // expressed as `X = Y` or `X < Y` is not a cartesian product).
      UnionFind uf(rule.var_names.size() + pos.size());
      const uint32_t atom_base = static_cast<uint32_t>(rule.var_names.size());
      for (size_t i = 0; i < pos.size(); ++i) {
        for (const Term& t : pos[i]->args) {
          if (t.is_var()) uf.Union(atom_base + static_cast<uint32_t>(i), t.var);
        }
      }
      for (const Literal& l : rule.body) {
        if (l.kind != Literal::Kind::kComparison &&
            l.kind != Literal::Kind::kAssignment) {
          continue;
        }
        std::vector<bool> vars(rule.var_names.size(), false);
        CollectExprVars(l.lhs, &vars);
        CollectExprVars(l.rhs, &vars);
        if (l.kind == Literal::Kind::kAssignment &&
            l.target_var < vars.size()) {
          vars[l.target_var] = true;
        }
        uint32_t first = UINT32_MAX;
        for (uint32_t v = 0; v < vars.size(); ++v) {
          if (!vars[v]) continue;
          if (first == UINT32_MAX) {
            first = v;
          } else {
            uf.Union(first, v);
          }
        }
      }
      uint32_t groups = 0;
      std::vector<bool> seen_root(rule.var_names.size() + pos.size(), false);
      for (size_t i = 0; i < pos.size(); ++i) {
        // Ground atoms (all-constant args) are membership tests, not
        // product factors.
        bool has_var = false;
        for (const Term& t : pos[i]->args) has_var = has_var || t.is_var();
        if (!has_var) continue;
        const uint32_t root =
            uf.Find(atom_base + static_cast<uint32_t>(i));
        if (!seen_root[root]) {
          seen_root[root] = true;
          groups++;
        }
      }
      est.cartesian = groups >= 2;

      // Unbound self-join: two positive occurrences of one predicate with
      // no shared variable (directly or through conditions).
      for (size_t i = 0; i < pos.size() && !est.unbound_self_join; ++i) {
        for (size_t j = i + 1; j < pos.size(); ++j) {
          if (pos[i]->predicate != pos[j]->predicate) continue;
          const uint32_t ri_root =
              uf.Find(atom_base + static_cast<uint32_t>(i));
          const uint32_t rj_root =
              uf.Find(atom_base + static_cast<uint32_t>(j));
          bool i_has_var = false, j_has_var = false;
          for (const Term& t : pos[i]->args) i_has_var |= t.is_var();
          for (const Term& t : pos[j]->args) j_has_var |= t.is_var();
          if (i_has_var && j_has_var && ri_root != rj_root) {
            est.unbound_self_join = true;
            est.self_join_pred = pos[i]->predicate;
            break;
          }
        }
      }
    }
  }
};

}  // namespace

const char* SccGrowthName(SccGrowth g) {
  switch (g) {
    case SccGrowth::kBounded:
      return "bounded";
    case SccGrowth::kLinearInEdb:
      return "linear_in_edb";
    case SccGrowth::kWardedOnly:
      return "warded_only";
  }
  return "unknown";
}

CostReport AnalyzeCost(const Program& program, const Catalog& cat,
                       const CostOptions& options) {
  CostAnalyzer a(program, cat, options);
  a.Run();
  return a.report;
}

}  // namespace vadalink::datalog::analysis
