// Harmful-variable analysis for the streaming chase's pattern memo.
//
// Builds on the wardedness pass (datalog/warded.h): a body variable is
// HARMFUL when all of its body occurrences sit in affected positions, i.e.
// it can bind a labeled null at runtime. For the space-bounded chase this
// matters per *frontier*: an existential rule whose frontier (body-bound
// head variables) contains a harmful variable can be fired on bindings
// that differ only in the labeled nulls they carry. Two such bindings are
// isomorphic — they invent nulls with identical downstream behaviour — so
// the chase may canonicalize the null pattern and fire the rule once per
// pattern class (datalog/pattern_memo.h). Rules whose frontier is entirely
// harmless never see a null there, and memoization would be pure overhead.
//
// The pass is advisory and never fails; on a non-warded program the
// classification is still sound (it over-approximates harmfulness), but
// the engine only engages the memo for warded programs.
#pragma once

#include <cstdint>
#include <vector>

#include "datalog/ast.h"

namespace vadalink::datalog::analysis {

/// Memo relevance of one rule.
struct RuleMemoInfo {
  /// The rule invents labeled nulls (has existential head variables).
  bool has_existential = false;
  /// Frontier variables (body-bound head variables, ascending var id) that
  /// may bind a labeled null.
  std::vector<uint32_t> harmful_frontier_vars;
  /// Memoizing this rule's frontier null patterns can suppress firings:
  /// it invents nulls AND its frontier admits nulls.
  bool memo_eligible = false;
};

struct HarmfulVarReport {
  /// Whether the underlying wardedness analysis accepted the program.
  bool warded = true;
  /// null_admitting[p][i] — position i of predicate p is affected, i.e. a
  /// labeled null may appear there. Predicates never mentioned by any rule
  /// head get an all-false (possibly empty) mask.
  std::vector<std::vector<bool>> null_admitting;
  /// Aligned with program.rules.
  std::vector<RuleMemoInfo> rules;
};

/// Analyses `program`; never fails (the report is advisory).
HarmfulVarReport AnalyzeHarmfulVariables(const Program& program,
                                         const Catalog& cat);

}  // namespace vadalink::datalog::analysis
