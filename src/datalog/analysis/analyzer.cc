#include "datalog/analysis/analyzer.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>

#include "datalog/analysis/cost.h"
#include "datalog/stratify.h"
#include "datalog/warded.h"

namespace vadalink::datalog::analysis {

namespace {

/// Names the engine registers as builtin functions (datalog/builtins.cc)
/// plus the aggregate keywords; a user predicate with one of these names
/// almost always indicates a missing '#' or a typo.
const char* const kBuiltinNames[] = {
    "sk",    "hash",  "mod",      "concat",   "lower", "upper",
    "strlen", "substr", "abs",     "min",      "max",   "pow",
    "sqrt",  "floor", "ceil",     "toint",    "todouble", "tostring",
    "msum",  "mprod", "mmin",     "mmax",     "mcount",
};

void CollectVars(const Expr& e, std::vector<uint32_t>* out) {
  if (e.op == Expr::Op::kVar) out->push_back(e.var);
  if (e.op == Expr::Op::kAggregate) {
    for (uint32_t c : e.contributors) out->push_back(c);
  }
  for (const Expr& child : e.children) CollectVars(child, out);
}

bool ContainsAggregate(const Expr& e) {
  if (e.is_aggregate()) return true;
  for (const Expr& child : e.children) {
    if (ContainsAggregate(child)) return true;
  }
  return false;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

SourceSpan SpanOr(const SourceSpan& preferred, const SourceSpan& fallback) {
  return preferred.known() ? preferred : fallback;
}

/// Renders a cost estimate for diagnostic messages ("1.2e+09", "64").
std::string FormatCost(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

struct Analyzer {
  const Program& program;
  const Catalog& cat;
  const AnalyzerOptions& options;
  AnalysisReport report;

  std::string PredName(uint32_t id) const { return cat.predicates.Name(id); }

  void Add(Severity sev, const char* code, uint32_t rule, std::string pred,
           SourceSpan span, std::string message, std::string hint) {
    Diagnostic d;
    d.severity = sev;
    d.code = code;
    d.rule_index = rule;
    d.predicate = std::move(pred);
    d.span = span;
    d.message = std::move(message);
    d.hint = std::move(hint);
    report.diagnostics.push_back(std::move(d));
  }

  // ---- pass 1: safety / range restriction --------------------------------

  void CheckSafety() {
    for (uint32_t r = 0; r < program.rules.size(); ++r) {
      const Rule& rule = program.rules[r];
      if (rule.head.empty()) {
        Add(Severity::kError, "VL004", r, "", rule.span,
            "rule has no head atom",
            "every rule must derive at least one atom");
        continue;
      }
      // Variables bound by positive body atoms (order-independent: the
      // engine joins all positive atoms before evaluating conditions).
      std::vector<bool> atom_bound(rule.var_names.size(), false);
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kAtom) continue;
        for (const Term& t : lit.atom.args) {
          if (t.is_var()) atom_bound[t.var] = true;
        }
      }
      std::vector<bool> bound = atom_bound;
      size_t aggregates = 0;
      for (size_t li = 0; li < rule.body.size(); ++li) {
        const Literal& lit = rule.body[li];
        SourceSpan at = SpanOr(lit.span, rule.span);
        switch (lit.kind) {
          case Literal::Kind::kAtom:
            break;
          case Literal::Kind::kNegatedAtom:
            for (const Term& t : lit.atom.args) {
              if (t.is_var() && !atom_bound[t.var]) {
                Add(Severity::kError, "VL002", r, PredName(lit.atom.predicate),
                    SpanOr(lit.atom.span, at),
                    "variable " + rule.var_names[t.var] +
                        " appears only under negation",
                    "bind " + rule.var_names[t.var] +
                        " in a positive body atom before negating");
              }
            }
            break;
          case Literal::Kind::kComparison: {
            std::vector<uint32_t> vars;
            CollectVars(lit.lhs, &vars);
            CollectVars(lit.rhs, &vars);
            for (uint32_t v : vars) {
              if (!bound[v]) {
                Add(Severity::kError, "VL001", r, "", at,
                    "variable " + rule.var_names[v] +
                        " used in comparison but never bound",
                    "bind " + rule.var_names[v] +
                        " in a positive body atom or an assignment first");
              }
            }
            if (ContainsAggregate(lit.lhs) || ContainsAggregate(lit.rhs)) {
              Add(Severity::kError, "VL003", r, "", at,
                  "aggregate expression inside a comparison",
                  "assign the aggregate to a variable first, then compare "
                  "the variable");
            }
            break;
          }
          case Literal::Kind::kAssignment: {
            std::vector<uint32_t> vars;
            CollectVars(lit.rhs, &vars);
            for (uint32_t v : vars) {
              if (!bound[v] && v != lit.target_var) {
                Add(Severity::kError, "VL001", r, "", at,
                    "variable " + rule.var_names[v] +
                        " used in assignment but never bound",
                    "bind " + rule.var_names[v] +
                        " in a positive body atom or an earlier assignment");
              }
            }
            if (lit.rhs.is_aggregate()) {
              ++aggregates;
              if (aggregates > 1) {
                Add(Severity::kError, "VL003", r, "", at,
                    "rule computes more than one aggregate",
                    "split the rule: one aggregate assignment per rule");
              }
              // mcount takes no value expression, only contributors.
              if (lit.rhs.children.empty() &&
                  lit.rhs.agg != AggKind::kMCount) {
                Add(Severity::kError, "VL003", r, "", at,
                    std::string(AggKindName(lit.rhs.agg)) +
                        " aggregate has no value expression",
                    "");
              }
              for (const Expr& child : lit.rhs.children) {
                if (ContainsAggregate(child)) {
                  Add(Severity::kError, "VL003", r, "", at,
                      "nested aggregate expression", "");
                }
              }
            } else if (ContainsAggregate(lit.rhs)) {
              Add(Severity::kError, "VL003", r, "", at,
                  "aggregate must be the top-level right-hand side of an "
                  "assignment",
                  "");
            }
            bound[lit.target_var] = true;
            break;
          }
        }
      }
    }
    for (const Atom& fact : program.facts) {
      for (const Term& t : fact.args) {
        if (t.is_var()) {
          Add(Severity::kError, "VL004", Diagnostic::kNoRule,
              PredName(fact.predicate), fact.span,
              "fact " + PredName(fact.predicate) + " is not ground",
              "facts may contain only constants");
          break;
        }
      }
    }
  }

  // ---- pass 2: wardedness -------------------------------------------------

  void CheckWardedness() {
    WardednessReport warded = AnalyzeWardedness(program, cat);
    if (warded.warded) return;
    for (const RuleReport& rr : warded.rules) {
      if (rr.safety != RuleSafety::kNotWarded) continue;
      const Rule& rule = program.rules[rr.rule_index];
      std::string head_pred =
          rule.head.empty() ? "" : PredName(rule.head[0].predicate);
      if (rr.violation_kind == WardViolation::kNoSharedWard) {
        std::string msg = "rule is not warded: dangerous variables " +
                          JoinNames(rr.dangerous_vars) +
                          " do not occur together in any single body atom";
        if (rr.violating_literal != UINT32_MAX &&
            rr.violating_literal < rule.body.size()) {
          msg += " (" + rr.violating_var + " only occurs in " +
                 LiteralToString(rule.body[rr.violating_literal], rule, cat) +
                 ")";
        }
        Add(Severity::kError, "VL010", rr.rule_index, head_pred,
            SpanOr(rr.violating_span, rule.span), std::move(msg),
            "gather the dangerous variables into one body atom (the ward), "
            "or make them harmless by joining them on a non-affected "
            "position");
      } else {
        std::string msg = "rule is not warded: " + rr.violation;
        if (rr.violating_literal != UINT32_MAX &&
            rr.violating_literal < rule.body.size()) {
          msg += " (" +
                 LiteralToString(rule.body[rr.violating_literal], rule, cat) +
                 ")";
        }
        Add(Severity::kError, "VL011", rr.rule_index, head_pred,
            SpanOr(rr.violating_span, rule.span), std::move(msg),
            "the ward may share only harmless variables with the rest of "
            "the body; rename or re-join variable " +
                rr.violating_var);
      }
    }
  }

  // ---- pass 3: stratification --------------------------------------------

  void CheckStratification() {
    const size_t num_preds = cat.predicates.size();
    std::vector<DepEdge> edges = BuildDependencyGraph(program);
    std::vector<uint32_t> comp = CondenseSCCs(edges, num_preds);

    std::set<std::pair<uint32_t, uint32_t>> reported;  // (rule, from)
    for (const DepEdge& e : edges) {
      if (!e.negative || comp[e.from] != comp[e.to]) continue;
      if (e.rule != UINT32_MAX && !reported.insert({e.rule, e.from}).second) {
        continue;
      }
      std::string cycle;
      std::string first;
      for (uint32_t p = 0; p < num_preds; ++p) {
        if (comp[p] != comp[e.from]) continue;
        if (cycle.empty()) {
          first = PredName(p);
        } else {
          cycle += " -> ";
        }
        cycle += PredName(p);
      }
      cycle += " -> " + first;
      Add(Severity::kError, "VL020",
          e.rule == UINT32_MAX ? Diagnostic::kNoRule : e.rule,
          PredName(e.from), e.span,
          "negation through recursion: 'not " + PredName(e.from) +
              "' lies on cycle " + cycle,
          "break the cycle, or move the negated predicate into a lower "
          "stratum");
    }

    // Non-monotone use of an aggregate result inside a recursive rule: a
    // guard that can flip from true to false as the running aggregate
    // grows makes the fixpoint order-dependent.
    for (uint32_t r = 0; r < program.rules.size(); ++r) {
      const Rule& rule = program.rules[r];
      const Literal* agg_lit = nullptr;
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kAssignment && lit.rhs.is_aggregate()) {
          agg_lit = &lit;
        }
      }
      if (agg_lit == nullptr) continue;
      bool recursive = false;
      for (const Atom& head : rule.head) {
        for (const Literal& lit : rule.body) {
          if (lit.kind != Literal::Kind::kAtom) continue;
          if (comp[lit.atom.predicate] == comp[head.predicate]) {
            recursive = true;
          }
        }
      }
      if (!recursive) continue;
      const uint32_t target = agg_lit->target_var;
      const AggKind agg = agg_lit->rhs.agg;
      // msum/mprod/mmax/mcount grow, mmin shrinks. A guard is monotone
      // only if it stays true once true.
      const bool increasing = agg != AggKind::kMMin;
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kComparison) continue;
        CmpOp op = lit.cmp;
        bool uses_target = false;
        if (lit.lhs.op == Expr::Op::kVar && lit.lhs.var == target) {
          uses_target = true;
        } else if (lit.rhs.op == Expr::Op::kVar && lit.rhs.var == target) {
          uses_target = true;
          // Normalise so the aggregate sits on the left.
          switch (op) {
            case CmpOp::kLt: op = CmpOp::kGt; break;
            case CmpOp::kLe: op = CmpOp::kGe; break;
            case CmpOp::kGt: op = CmpOp::kLt; break;
            case CmpOp::kGe: op = CmpOp::kLe; break;
            default: break;
          }
        }
        if (!uses_target) continue;
        const bool anti_monotone =
            increasing ? (op == CmpOp::kLt || op == CmpOp::kLe ||
                          op == CmpOp::kEq)
                       : (op == CmpOp::kGt || op == CmpOp::kGe ||
                          op == CmpOp::kEq);
        if (!anti_monotone) continue;
        Add(Severity::kWarning, "VL021", r, "",
            SpanOr(lit.span, rule.span),
            std::string("non-monotone use of ") + AggKindName(agg) +
                " result " + rule.var_names[target] +
                " inside a recursive rule: guard '" +
                rule.var_names[target] + " " + CmpOpName(op) +
                " ...' can turn false as the aggregate " +
                (increasing ? "grows" : "shrinks"),
            std::string("use a monotone guard (") +
                (increasing ? "'>=' / '>'" : "'<=' / '<'") +
                ") or compute the aggregate in a separate non-recursive "
                "rule");
      }
    }
  }

  // ---- pass 4: hygiene ----------------------------------------------------

  void CheckHygiene() {
    CheckArityConflicts();
    CheckUnusedPredicates();
    CheckDeadRules();
    CheckSingletonVars();
    CheckShadowedBuiltins();
  }

  void CheckArityConflicts() {
    struct FirstUse {
      size_t arity;
      SourceSpan span;
      uint32_t rule;
    };
    std::map<uint32_t, FirstUse> seen;
    std::set<uint32_t> flagged;
    auto visit = [&](const Atom& atom, uint32_t rule, SourceSpan fallback) {
      SourceSpan at = SpanOr(atom.span, fallback);
      auto [it, inserted] =
          seen.emplace(atom.predicate, FirstUse{atom.args.size(), at, rule});
      if (inserted || it->second.arity == atom.args.size()) return;
      if (!flagged.insert(atom.predicate).second) return;
      Add(Severity::kError, "VL033", rule, PredName(atom.predicate), at,
          "predicate " + PredName(atom.predicate) + " used with arity " +
              std::to_string(atom.args.size()) + " but first used with arity " +
              std::to_string(it->second.arity) + " at " +
              it->second.span.ToString(),
          "predicates must have one fixed arity");
    };
    for (const Atom& fact : program.facts) {
      visit(fact, Diagnostic::kNoRule, fact.span);
    }
    for (uint32_t r = 0; r < program.rules.size(); ++r) {
      const Rule& rule = program.rules[r];
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kAtom ||
            lit.kind == Literal::Kind::kNegatedAtom) {
          visit(lit.atom, r, rule.span);
        }
      }
      for (const Atom& head : rule.head) visit(head, r, rule.span);
    }
  }

  void CheckUnusedPredicates() {
    const size_t num_preds = cat.predicates.size();
    // First definition site per predicate (fact or rule head), plus read
    // sites (any body occurrence, positive or negated).
    std::vector<bool> defined(num_preds, false), read(num_preds, false);
    std::vector<SourceSpan> def_span(num_preds);
    std::vector<uint32_t> def_rule(num_preds, Diagnostic::kNoRule);
    for (const Atom& fact : program.facts) {
      if (!defined[fact.predicate]) {
        defined[fact.predicate] = true;
        def_span[fact.predicate] = fact.span;
      }
    }
    for (uint32_t r = 0; r < program.rules.size(); ++r) {
      const Rule& rule = program.rules[r];
      for (const Atom& head : rule.head) {
        if (!defined[head.predicate]) {
          defined[head.predicate] = true;
          def_span[head.predicate] = SpanOr(head.span, rule.span);
          def_rule[head.predicate] = r;
        }
      }
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kAtom ||
            lit.kind == Literal::Kind::kNegatedAtom) {
          read[lit.atom.predicate] = true;
        }
      }
    }
    std::set<uint32_t> outputs(program.outputs.begin(),
                               program.outputs.end());
    for (uint32_t p = 0; p < num_preds; ++p) {
      if (!defined[p] || read[p] || outputs.count(p) > 0) continue;
      Add(Severity::kWarning, "VL030", def_rule[p], PredName(p), def_span[p],
          "predicate " + PredName(p) +
              " is derived but never read and is not @output",
          "read it in a rule body, mark it @output, or delete it");
    }
  }

  void CheckDeadRules() {
    if (program.outputs.empty()) return;
    const size_t num_preds = cat.predicates.size();
    // Reverse reachability from the outputs: a rule is live if one of its
    // head predicates is needed; its body predicates then become needed.
    std::vector<bool> needed(num_preds, false);
    for (uint32_t p : program.outputs) {
      if (p < num_preds) needed[p] = true;
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Rule& rule : program.rules) {
        bool live = false;
        for (const Atom& head : rule.head) {
          if (needed[head.predicate]) live = true;
        }
        if (!live) continue;
        for (const Literal& lit : rule.body) {
          if (lit.kind != Literal::Kind::kAtom &&
              lit.kind != Literal::Kind::kNegatedAtom) {
            continue;
          }
          if (!needed[lit.atom.predicate]) {
            needed[lit.atom.predicate] = true;
            changed = true;
          }
        }
      }
    }
    for (uint32_t r = 0; r < program.rules.size(); ++r) {
      const Rule& rule = program.rules[r];
      bool live = rule.head.empty();  // headless rules are VL004's problem
      for (const Atom& head : rule.head) {
        if (needed[head.predicate]) live = true;
      }
      if (live) continue;
      std::string head_pred =
          rule.head.empty() ? "" : PredName(rule.head[0].predicate);
      Add(Severity::kWarning, "VL031", r, head_pred, rule.span,
          "dead rule: none of its head predicates can reach an @output "
          "predicate",
          "mark a head predicate @output, read it from a live rule, or "
          "delete the rule");
    }
  }

  void CheckSingletonVars() {
    for (uint32_t r = 0; r < program.rules.size(); ++r) {
      const Rule& rule = program.rules[r];
      std::vector<size_t> count(rule.var_names.size(), 0);
      // Span of the body-atom occurrence (the only place worth flagging).
      std::vector<SourceSpan> where(rule.var_names.size());
      std::vector<bool> in_body_atom(rule.var_names.size(), false);
      for (const Literal& lit : rule.body) {
        switch (lit.kind) {
          case Literal::Kind::kAtom:
          case Literal::Kind::kNegatedAtom:
            for (const Term& t : lit.atom.args) {
              if (!t.is_var()) continue;
              ++count[t.var];
              in_body_atom[t.var] = true;
              if (!where[t.var].known()) {
                where[t.var] = SpanOr(lit.atom.span, rule.span);
              }
            }
            break;
          case Literal::Kind::kComparison: {
            std::vector<uint32_t> vars;
            CollectVars(lit.lhs, &vars);
            CollectVars(lit.rhs, &vars);
            for (uint32_t v : vars) ++count[v];
            break;
          }
          case Literal::Kind::kAssignment: {
            std::vector<uint32_t> vars;
            CollectVars(lit.rhs, &vars);
            for (uint32_t v : vars) ++count[v];
            ++count[lit.target_var];
            break;
          }
        }
      }
      for (const Atom& head : rule.head) {
        for (const Term& t : head.args) {
          if (t.is_var()) ++count[t.var];
        }
      }
      for (uint32_t v = 0; v < rule.var_names.size(); ++v) {
        if (count[v] != 1 || !in_body_atom[v]) continue;
        const std::string& name = rule.var_names[v];
        if (!name.empty() && name[0] == '_') continue;
        Add(Severity::kWarning, "VL032", r, "", where[v],
            "singleton variable " + name + " is used only once",
            "prefix it with '_' if the position is intentionally ignored");
      }
    }
  }

  // ---- pass 5: cost & termination (opt-in) -------------------------------

  void CheckCost() {
    const CostReport cr = AnalyzeCost(program, cat, options.cost_options);

    for (uint32_t r = 0; r < program.rules.size(); ++r) {
      const Rule& rule = program.rules[r];
      const RuleCostEstimate& est = cr.rules[r];
      const std::string head_pred =
          rule.head.empty() ? "" : PredName(rule.head[0].predicate);
      if (est.cartesian) {
        Add(Severity::kWarning, "VL040", r, head_pred, rule.span,
            "rule body is a cartesian product: its positive atoms split "
            "into variable-disjoint groups (estimated " +
                FormatCost(est.output_rows) + " bindings)",
            "join the groups on a shared variable, or split the rule so "
            "each part is connected");
      }
      if (est.unbound_self_join) {
        Add(Severity::kWarning, "VL041", r, PredName(est.self_join_pred),
            rule.span,
            "unbound self-join: two occurrences of " +
                PredName(est.self_join_pred) +
                " share no variable, enumerating all pairs",
            "join the two occurrences on a shared variable or use distinct "
            "predicates");
      }
      if (est.output_rows > options.cost_options.rule_output_budget) {
        Add(Severity::kWarning, "VL042", r, head_pred, rule.span,
            "estimated rule output " + FormatCost(est.output_rows) +
                " rows exceeds the cost budget " +
                FormatCost(options.cost_options.rule_output_budget),
            "add a more selective body atom or raise --cost-budget if the "
            "size is intended");
      }
    }

    for (size_t i = 0; i < cr.warded_only_components.size(); ++i) {
      const std::vector<uint32_t>& members = cr.warded_only_components[i];
      if (members.empty()) continue;
      std::string names;
      for (size_t m = 0; m < members.size(); ++m) {
        if (m > 0) names += ", ";
        names += PredName(members[m]);
      }
      const uint32_t witness = cr.warded_only_witness_rule[i];
      SourceSpan at;
      if (witness != UINT32_MAX && witness < program.rules.size()) {
        at = program.rules[witness].span;
      }
      Add(Severity::kWarning, "VL050",
          witness == UINT32_MAX ? Diagnostic::kNoRule : witness,
          PredName(members[0]), at,
          "recursive component {" + names +
              "} invents labeled nulls that feed back into the cycle; "
              "termination is guaranteed only by the warded chase",
          "expect null-pattern memoization to engage; bound the recursion "
          "explicitly if the blow-up is unintended");
    }

    // Fill the structured cost block for lint --cost --json.
    report.cost.present = true;
    report.cost.program_cost = cr.program_cost;
    report.cost.recursive_sccs = cr.recursive_sccs;
    report.cost.warded_only_sccs = cr.warded_only_sccs;
    for (uint32_t p = 0; p < cr.predicates.size(); ++p) {
      CostPredicateEntry e;
      e.predicate = PredName(p);
      e.lo = cr.predicates[p].lo;
      e.hi = cr.predicates[p].hi;
      e.growth = SccGrowthName(cr.growth[p]);
      report.cost.predicates.push_back(std::move(e));
    }
    for (uint32_t r = 0; r < cr.rules.size(); ++r) {
      CostRuleEntry e;
      e.rule = r;
      e.join_cost = cr.rules[r].join_cost;
      e.output_rows = cr.rules[r].output_rows;
      e.cartesian = cr.rules[r].cartesian;
      e.unbound_self_join = cr.rules[r].unbound_self_join;
      report.cost.rules.push_back(e);
    }
  }

  void CheckShadowedBuiltins() {
    std::set<std::string> builtins(std::begin(kBuiltinNames),
                                   std::end(kBuiltinNames));
    builtins.insert(options.extra_builtins.begin(),
                    options.extra_builtins.end());
    std::set<uint32_t> flagged;
    auto visit = [&](const Atom& atom, uint32_t rule, SourceSpan fallback) {
      std::string name = PredName(atom.predicate);
      if (builtins.count(name) == 0) return;
      if (!flagged.insert(atom.predicate).second) return;
      Add(Severity::kWarning, "VL034", rule, name,
          SpanOr(atom.span, fallback),
          "predicate " + name + " shadows a builtin function or aggregate",
          "rename the predicate (builtins are called as #" + name + "(...))");
    };
    for (const Atom& fact : program.facts) {
      visit(fact, Diagnostic::kNoRule, fact.span);
    }
    for (uint32_t r = 0; r < program.rules.size(); ++r) {
      const Rule& rule = program.rules[r];
      for (const Atom& head : rule.head) visit(head, r, rule.span);
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kAtom ||
            lit.kind == Literal::Kind::kNegatedAtom) {
          visit(lit.atom, r, rule.span);
        }
      }
    }
  }
};

}  // namespace

AnalysisReport AnalyzeProgram(const Program& program, const Catalog& cat,
                              const AnalyzerOptions& options) {
  Analyzer a{program, cat, options, {}};
  a.CheckSafety();
  a.CheckWardedness();
  a.CheckStratification();
  if (options.hygiene) a.CheckHygiene();
  if (options.cost) a.CheckCost();
  // Deterministic order independent of pass scheduling: by source
  // position, then code; the stable sort keeps same-position diagnostics
  // of one code in emission order. Keeps lint --json byte-stable.
  std::stable_sort(
      a.report.diagnostics.begin(), a.report.diagnostics.end(),
      [](const Diagnostic& x, const Diagnostic& y) {
        return std::tie(x.span.line, x.span.col, x.code) <
               std::tie(y.span.line, y.span.col, y.code);
      });
  return a.report;
}

}  // namespace vadalink::datalog::analysis
