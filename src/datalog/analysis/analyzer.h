// Multi-pass static analyzer for Vadalog programs.
//
// AnalyzeProgram runs four passes over a parsed (or programmatically
// built) program and returns every finding as a structured Diagnostic:
//
//   1. safety       — range restriction: comparison/assignment variables
//                     must be bound, negated atoms must not introduce
//                     variables, aggregates must be well-placed (VL00x)
//   2. wardedness   — harmless/harmful/dangerous classification from the
//                     existential affection graph; violations name the
//                     exact body atom at fault (VL01x)
//   3. stratification — predicate dependency graph with edge provenance;
//                     negation through recursion names the offending
//                     cycle, aggregates used non-monotonically inside a
//                     recursive rule are flagged (VL02x)
//   4. hygiene      — unused predicates, dead rules, singleton variables,
//                     arity conflicts, shadowed builtins (VL03x)
//   5. cost (opt-in) — static cardinality/cost estimation and termination
//                     notes from analysis/cost.h: cartesian bodies,
//                     unbound self-joins, over-budget rules (VL04x) and
//                     warded-only recursive SCCs (VL05x); also fills
//                     AnalysisReport::cost for the lint --cost JSON
//
// The analyzer never mutates the program and never fails: invalid input
// yields error diagnostics, not a status. Engine::Run uses it as a
// mandatory pre-flight (see EngineOptions::preflight); `vadalink lint`
// exposes it on the command line.
#pragma once

#include <string>
#include <vector>

#include "datalog/analysis/cost.h"
#include "datalog/analysis/diagnostics.h"
#include "datalog/ast.h"

namespace vadalink::datalog::analysis {

struct AnalyzerOptions {
  /// Run the VL03x hygiene lints. Pre-flight keeps them on (they are
  /// warnings, not errors); callers analysing rule fragments may turn
  /// them off.
  bool hygiene = true;
  /// Extra names treated as builtins for the shadowed-builtin lint, in
  /// addition to the engine's registered functions and aggregate names.
  std::vector<std::string> extra_builtins;
  /// Run the VL04x/VL05x cost & termination pass (off by default: the
  /// estimates depend on cost_options and pre-flight has no seeds).
  bool cost = false;
  /// Cardinality seeds / budgets for the cost pass.
  CostOptions cost_options;
};

/// Analyses `program` against `cat` and returns every diagnostic in
/// deterministic order: stable-sorted by source line, then column, then
/// code, so serialised output is byte-stable regardless of pass
/// scheduling (position-less program-level diagnostics sort first).
AnalysisReport AnalyzeProgram(const Program& program, const Catalog& cat,
                              const AnalyzerOptions& options = {});

}  // namespace vadalink::datalog::analysis
