#include "datalog/relation_io.h"

#include <cstdlib>

#include "common/csv.h"

namespace vadalink::datalog {

Value ParseCsvValue(const std::string& cell, SymbolTable* symbols) {
  if (cell == "true") return Value::Bool(true);
  if (cell == "false") return Value::Bool(false);
  if (!cell.empty()) {
    char* end = nullptr;
    long long i = std::strtoll(cell.c_str(), &end, 10);
    if (end != cell.c_str() && *end == '\0') {
      return Value::Int(i);
    }
    double d = std::strtod(cell.c_str(), &end);
    if (end != cell.c_str() && *end == '\0') {
      return Value::Double(d);
    }
  }
  return Value::Symbol(symbols->Intern(cell));
}

Result<size_t> LoadRelationCsv(Database* db, std::string_view predicate,
                               const std::string& path) {
  VL_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(path));
  uint32_t pred = db->catalog()->predicates.Intern(predicate);
  size_t inserted = 0;
  size_t arity = SIZE_MAX;
  for (const auto& row : rows) {
    if (arity == SIZE_MAX) arity = row.size();
    if (row.size() != arity) {
      return Status::ParseError(path + ": inconsistent arity (" +
                                std::to_string(row.size()) + " vs " +
                                std::to_string(arity) + ")");
    }
    std::vector<Value> tuple;
    tuple.reserve(row.size());
    for (const std::string& cell : row) {
      tuple.push_back(ParseCsvValue(cell, &db->catalog()->symbols));
    }
    VL_ASSIGN_OR_RETURN(bool fresh, db->Insert(pred, std::move(tuple)));
    if (fresh) ++inserted;
  }
  return inserted;
}

Status SaveRelationCsv(const Database& db, std::string_view predicate,
                       const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  for (RowRef fact : db.Scan(predicate)) {
    std::vector<std::string> row;
    row.reserve(fact.size());
    for (size_t i = 0; i < fact.size(); ++i) {
      const Value& v = fact[i];
      if (v.is_symbol()) {
        row.push_back(db.catalog()->symbols.Name(v.symbol_id()));
      } else {
        row.push_back(v.ToString(db.catalog()->symbols));
      }
    }
    rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, rows);
}

}  // namespace vadalink::datalog
