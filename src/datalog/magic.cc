#include "datalog/magic.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "datalog/parser.h"
#include "datalog/stratify.h"

namespace vadalink::datalog {

namespace {

uint64_t MaskBit(size_t i) { return i < 64 ? (uint64_t{1} << i) : 0; }

/// 'b'/'f' string of an adornment over `arity` positions (positions >= 64
/// are always free — the mask cannot express them).
std::string AdornString(uint64_t mask, size_t arity) {
  std::string s;
  s.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    s += (mask & MaskBit(i)) != 0 ? 'b' : 'f';
  }
  return s;
}

bool TermsEqual(const Term& a, const Term& b) {
  if (a.kind != b.kind) return false;
  return a.is_var() ? a.var == b.var : a.constant == b.constant;
}

bool AtomsEqual(const Atom& a, const Atom& b) {
  if (a.predicate != b.predicate || a.args.size() != b.args.size()) {
    return false;
  }
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!TermsEqual(a.args[i], b.args[i])) return false;
  }
  return true;
}

CmpOp MirrorCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;
  }
}

/// The aggregate assignment of `rule`, or -1.
int AggLiteral(const Rule& rule) {
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (rule.body[i].kind == Literal::Kind::kAssignment &&
        rule.body[i].rhs.is_aggregate()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Group-key variables of an aggregate rule, mirroring the engine's
/// compiled-rule computation: head variables bound by the body, minus the
/// aggregate's target variable.
std::vector<bool> AggGroupVars(const Rule& rule, int agg_pos) {
  std::vector<bool> bound = BodyBoundVars(rule);
  std::vector<bool> in_head(rule.var_names.size(), false);
  for (const Atom& h : rule.head) {
    for (const Term& t : h.args) {
      if (t.is_var()) in_head[t.var] = true;
    }
  }
  std::vector<bool> group(rule.var_names.size(), false);
  for (uint32_t v = 0; v < rule.var_names.size(); ++v) {
    group[v] = in_head[v] && bound[v];
  }
  group[rule.body[agg_pos].target_var] = false;
  return group;
}

/// Order-sensitivity analysis for monotonic aggregates under a demand
/// transformation. Magic guards preserve each aggregate group's full
/// contribution set (they filter whole groups, never contributions), so
/// final per-group values are exact — but the *intermediate* running
/// values a group emits depend on enumeration order, which the rewrite
/// changes. A "carrying" (predicate, position) holds such running values.
/// The query result is still exact as long as every use of a carrying
/// value is an upward-closed threshold guard (for an increasing aggregate
/// "some running value >= t" is equivalent to "the final value >= t"; the
/// engine treats every aggregate except mmin as increasing, matching the
/// analyzer's VL021 convention) and the goal itself has no carrying
/// position. Everything else — joins, arithmetic, equality, the wrong
/// comparison direction — makes the answer depend on enumeration order:
/// report fallback.
std::string CheckAggregateEscape(const Program& program,
                                 const DataflowResult& df, uint32_t goal_pred,
                                 const Catalog& cat) {
  std::map<std::pair<uint32_t, size_t>, AggKind> carrying;
  auto mark = [&](uint32_t pred, size_t pos, AggKind k, bool* changed,
                  std::string* reason) {
    auto it = carrying.find({pred, pos});
    if (it == carrying.end()) {
      carrying.emplace(std::make_pair(pred, pos), k);
      if (changed != nullptr) *changed = true;
    } else if (it->second != k) {
      *reason = "predicate '" + cat.predicates.Name(pred) +
                "' position carries values of two different aggregates";
    }
  };

  std::string reason;
  for (size_t ri = 0; ri < program.rules.size() && reason.empty(); ++ri) {
    if (!df.rule_kept[ri]) continue;
    const Rule& rule = program.rules[ri];
    int agg = AggLiteral(rule);
    if (agg < 0) continue;
    uint32_t target = rule.body[agg].target_var;
    AggKind kind = rule.body[agg].rhs.agg;
    for (const Atom& h : rule.head) {
      for (size_t j = 0; j < h.args.size(); ++j) {
        if (h.args[j].is_var() && h.args[j].var == target) {
          mark(h.predicate, j, kind, nullptr, &reason);
        }
      }
    }
  }

  bool changed = true;
  while (changed && reason.empty()) {
    changed = false;
    for (size_t ri = 0; ri < program.rules.size() && reason.empty(); ++ri) {
      if (!df.rule_kept[ri]) continue;
      const Rule& rule = program.rules[ri];
      // Variables of this rule bound from a carrying position.
      std::map<uint32_t, AggKind> cv;
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kAtom) continue;
        for (size_t j = 0; j < lit.atom.args.size(); ++j) {
          const Term& t = lit.atom.args[j];
          if (!t.is_var()) continue;
          auto it = carrying.find({lit.atom.predicate, j});
          if (it == carrying.end()) continue;
          auto ins = cv.emplace(t.var, it->second);
          if (!ins.second && ins.first->second != it->second) {
            reason = "variable joins two different running aggregates";
          }
        }
      }
      if (cv.empty() || !reason.empty()) continue;

      for (const auto& [var, kind] : cv) {
        size_t occurrences = 0;
        for (const Literal& lit : rule.body) {
          if (lit.kind != Literal::Kind::kAtom &&
              lit.kind != Literal::Kind::kNegatedAtom) {
            continue;
          }
          for (const Term& t : lit.atom.args) {
            if (t.is_var() && t.var == var) ++occurrences;
          }
        }
        if (occurrences > 1) {
          reason = "rule at " + rule.span.ToString() +
                   " joins on a running aggregate value ('" +
                   rule.var_names[var] + "')";
          break;
        }
        for (const Literal& lit : rule.body) {
          if (lit.kind == Literal::Kind::kAssignment) {
            std::vector<bool> used(rule.var_names.size(), false);
            CollectExprVars(lit.rhs, &used);
            if (used[var] || lit.target_var == var) {
              reason = "rule at " + rule.span.ToString() +
                       " feeds a running aggregate value ('" +
                       rule.var_names[var] + "') into an assignment";
              break;
            }
          } else if (lit.kind == Literal::Kind::kComparison) {
            std::vector<bool> in_lhs(rule.var_names.size(), false);
            std::vector<bool> in_rhs(rule.var_names.size(), false);
            CollectExprVars(lit.lhs, &in_lhs);
            CollectExprVars(lit.rhs, &in_rhs);
            if (!in_lhs[var] && !in_rhs[var]) continue;
            const Expr& side = in_lhs[var] ? lit.lhs : lit.rhs;
            if ((in_lhs[var] && in_rhs[var]) || side.op != Expr::Op::kVar) {
              reason = "rule at " + rule.span.ToString() +
                       " uses a running aggregate value ('" +
                       rule.var_names[var] + "') in a compound comparison";
              break;
            }
            CmpOp op = in_lhs[var] ? lit.cmp : MirrorCmp(lit.cmp);
            bool increasing = kind != AggKind::kMMin;
            bool safe = increasing ? (op == CmpOp::kGt || op == CmpOp::kGe)
                                   : (op == CmpOp::kLt || op == CmpOp::kLe);
            if (!safe) {
              reason = std::string("rule at ") + rule.span.ToString() +
                       " guards a running " + AggKindName(kind) +
                       " value ('" + rule.var_names[var] +
                       "') with non-monotone comparison " + CmpOpName(op);
              break;
            }
          }
        }
        if (!reason.empty()) break;
      }
      if (!reason.empty()) break;

      for (const Atom& h : rule.head) {
        for (size_t j = 0; j < h.args.size(); ++j) {
          const Term& t = h.args[j];
          if (t.is_var() && cv.count(t.var) != 0) {
            mark(h.predicate, j, cv.at(t.var), &changed, &reason);
          }
        }
      }
    }
  }
  if (!reason.empty()) return reason;
  for (const auto& [key, kind] : carrying) {
    (void)kind;
    if (key.first == goal_pred) {
      return "goal predicate '" + cat.predicates.Name(goal_pred) +
             "' enumerates order-sensitive running aggregate values";
    }
  }
  return "";
}

/// State of the union-over-adornments rewrite (see magic.h).
struct MagicBuilder {
  const Program& program;
  Catalog* cat;
  const QueryGoal& goal;
  const DataflowResult& df;

  // (predicate, adornment) -> interned magic predicate id.
  std::map<std::pair<uint32_t, uint64_t>, uint32_t> magic_preds;
  // Kept single-head rules per head predicate (needs_full rules excluded —
  // those are emitted unguarded).
  std::vector<std::vector<uint32_t>> defining;
  std::vector<bool> rule_full;

  std::deque<std::pair<uint32_t, uint64_t>> worklist;
  std::set<std::pair<uint32_t, uint64_t>> demanded;
  std::set<std::pair<uint32_t, uint64_t>> guarded_emitted;  // (rule, mask)
  std::set<std::string> demand_rule_seen;

  std::vector<Rule> demand_rules;
  std::vector<Rule> guarded_rules;

  MagicBuilder(const Program& p, Catalog* c, const QueryGoal& g,
               const DataflowResult& d)
      : program(p), cat(c), goal(g), df(d) {
    defining.resize(cat->predicates.size());
    rule_full.assign(program.rules.size(), false);
    for (size_t ri = 0; ri < program.rules.size(); ++ri) {
      if (!df.rule_kept[ri]) continue;
      const Rule& rule = program.rules[ri];
      for (const Atom& h : rule.head) {
        if (h.predicate < df.needs_full.size() &&
            df.needs_full[h.predicate]) {
          rule_full[ri] = true;
        }
      }
      if (!rule_full[ri] && rule.head.size() == 1) {
        defining[rule.head[0].predicate].push_back(
            static_cast<uint32_t>(ri));
      }
    }
  }

  /// Demand transformation applies to predicates that have guardable
  /// defining rules and are not pinned to full evaluation.
  bool Guardable(uint32_t pred) const {
    return pred < defining.size() && !defining[pred].empty() &&
           !(pred < df.needs_full.size() && df.needs_full[pred]);
  }

  uint32_t MagicPred(uint32_t pred, uint64_t mask, size_t arity) {
    auto it = magic_preds.find({pred, mask});
    if (it != magic_preds.end()) return it->second;
    std::string name = "__magic_" + cat->predicates.Name(pred) + "_" +
                       AdornString(mask, arity);
    uint32_t id = cat->predicates.Intern(name);
    magic_preds.emplace(std::make_pair(pred, mask), id);
    return id;
  }

  /// The magic guard/demand atom for (pred, mask), with arguments taken
  /// from `src`'s bound positions. An all-free adornment gets a dummy
  /// constant argument: the magic fact then acts as a pure reachability
  /// gate that cannot restrict (or, under an aggregate, split) anything.
  Atom MagicAtom(uint32_t pred, uint64_t mask, const Atom& src) {
    Atom a;
    a.predicate = MagicPred(pred, mask, src.args.size());
    if (mask == 0) {
      a.args.push_back(Term::Const(Value::Int(0)));
      return a;
    }
    for (size_t i = 0; i < src.args.size(); ++i) {
      if ((mask & MaskBit(i)) != 0) a.args.push_back(src.args[i]);
    }
    return a;
  }

  /// Adornment a rule can actually be guarded at. Aggregate rules demote
  /// bound head positions that are neither constants nor group-key
  /// variables (binding the running-value position would filter inside a
  /// group); a demoted-to-empty mask degrades to the all-free gate.
  uint64_t EffectiveMask(const Rule& rule, uint64_t mask) const {
    int agg = AggLiteral(rule);
    if (agg < 0) return mask;
    std::vector<bool> group = AggGroupVars(rule, agg);
    const Atom& head = rule.head[0];
    uint64_t eff = 0;
    for (size_t i = 0; i < head.args.size() && i < 64; ++i) {
      if ((mask & MaskBit(i)) == 0) continue;
      const Term& t = head.args[i];
      if (!t.is_var() || (t.var < group.size() && group[t.var])) {
        eff |= MaskBit(i);
      }
    }
    return eff;
  }

  void Enqueue(uint32_t pred, uint64_t mask) {
    if (!Guardable(pred)) return;
    if (demanded.insert({pred, mask}).second) {
      worklist.emplace_back(pred, mask);
    }
  }

  void AddDemandRule(Rule rule) {
    std::string key = RuleToString(rule, *cat);
    if (demand_rule_seen.insert(key).second) {
      demand_rules.push_back(std::move(rule));
    }
  }

  /// Sideways information passing for one guarded rule copy: walk the
  /// body greedily from the guard's bindings — ready assignments and
  /// fully-bound comparisons first, then the positive atom with the most
  /// bound arguments — and emit one demand rule per guardable atom,
  /// carrying the placed prefix as its body. Negated atoms and aggregate
  /// assignments never join the prefix: dropping a conjunct from a demand
  /// rule only widens the demand, which costs work but not correctness.
  void Sip(const Rule& src, const Atom& guard) {
    std::vector<bool> bound(src.var_names.size(), false);
    for (const Term& t : guard.args) {
      if (t.is_var()) bound[t.var] = true;
    }
    std::vector<Literal> prefix;
    Literal glit;
    glit.kind = Literal::Kind::kAtom;
    glit.atom = guard;
    prefix.push_back(glit);

    std::vector<bool> placed(src.body.size(), false);
    auto all_bound = [&](const Expr& e) {
      std::vector<bool> used(src.var_names.size(), false);
      CollectExprVars(e, &used);
      for (size_t v = 0; v < used.size(); ++v) {
        if (used[v] && !bound[v]) return false;
      }
      return true;
    };

    for (;;) {
      bool progress = true;
      while (progress) {
        progress = false;
        for (size_t i = 0; i < src.body.size(); ++i) {
          if (placed[i]) continue;
          const Literal& lit = src.body[i];
          if (lit.kind == Literal::Kind::kAssignment &&
              !lit.rhs.is_aggregate() && all_bound(lit.rhs)) {
            prefix.push_back(lit);
            bound[lit.target_var] = true;
            placed[i] = true;
            progress = true;
          } else if (lit.kind == Literal::Kind::kComparison &&
                     all_bound(lit.lhs) && all_bound(lit.rhs)) {
            prefix.push_back(lit);
            placed[i] = true;
            progress = true;
          }
        }
      }

      int best = -1;
      int best_score = -1;
      for (size_t i = 0; i < src.body.size(); ++i) {
        if (placed[i] || src.body[i].kind != Literal::Kind::kAtom) continue;
        int score = 0;
        for (const Term& t : src.body[i].atom.args) {
          if (!t.is_var() || bound[t.var]) ++score;
        }
        if (score > best_score) {
          best = static_cast<int>(i);
          best_score = score;
        }
      }
      if (best < 0) break;

      const Atom& a = src.body[best].atom;
      if (Guardable(a.predicate)) {
        uint64_t beta = 0;
        for (size_t i = 0; i < a.args.size() && i < 64; ++i) {
          if (!a.args[i].is_var() || bound[a.args[i].var]) {
            beta |= MaskBit(i);
          }
        }
        Atom head = MagicAtom(a.predicate, beta, a);
        // `magic_p(X..) <- magic_p(X..), ...` is the linear-recursion
        // self-loop (the first atom re-reads the rule's own head under
        // the same adornment) — trivially subsumed, skip it.
        if (!AtomsEqual(head, guard)) {
          Rule demand_rule;
          demand_rule.var_names = src.var_names;
          demand_rule.body = prefix;
          demand_rule.head.push_back(head);
          AddDemandRule(std::move(demand_rule));
        }
        Enqueue(a.predicate, beta);
      }

      prefix.push_back(src.body[best]);
      placed[best] = true;
      for (const Term& t : a.args) {
        if (t.is_var()) bound[t.var] = true;
      }
    }
  }

  void Process(uint32_t pred, uint64_t mask) {
    for (uint32_t ri : defining[pred]) {
      const Rule& src = program.rules[ri];
      uint64_t eff = EffectiveMask(src, mask);
      if (eff != mask) {
        // Adornment bridge: demand at `mask` implies demand at the
        // demoted adornment (projection of the bound arguments).
        uint64_t k = 0;
        Rule bridge;
        Atom from;
        from.predicate = MagicPred(pred, mask, src.head[0].args.size());
        std::map<size_t, uint32_t> var_of_pos;
        for (size_t i = 0; i < src.head[0].args.size() && i < 64; ++i) {
          if ((mask & MaskBit(i)) == 0) continue;
          uint32_t v = static_cast<uint32_t>(k++);
          bridge.var_names.push_back("B" + std::to_string(v));
          var_of_pos[i] = v;
          from.args.push_back(Term::Var(v));
        }
        Literal body;
        body.kind = Literal::Kind::kAtom;
        body.atom = from;
        bridge.body.push_back(body);
        Atom to;
        to.predicate = MagicPred(pred, eff, src.head[0].args.size());
        if (eff == 0) {
          to.args.push_back(Term::Const(Value::Int(0)));
        } else {
          for (size_t i = 0; i < src.head[0].args.size() && i < 64; ++i) {
            if ((eff & MaskBit(i)) != 0) {
              to.args.push_back(Term::Var(var_of_pos.at(i)));
            }
          }
        }
        bridge.head.push_back(to);
        AddDemandRule(std::move(bridge));
        // The rule copy itself is emitted when (pred, eff) is processed
        // (EffectiveMask is idempotent, so eff survives there).
        Enqueue(pred, eff);
        continue;
      }
      if (!guarded_emitted.insert({ri, mask}).second) continue;
      Atom guard = MagicAtom(pred, mask, src.head[0]);
      Rule out = src;
      Literal glit;
      glit.kind = Literal::Kind::kAtom;
      glit.atom = guard;
      out.body.insert(out.body.begin(), glit);
      guarded_rules.push_back(std::move(out));
      Sip(src, guard);
    }
  }

  MagicResult Build(uint64_t goal_mask) {
    Enqueue(goal.atom.predicate, goal_mask);
    while (!worklist.empty()) {
      auto [pred, mask] = worklist.front();
      worklist.pop_front();
      Process(pred, mask);
    }

    MagicResult res;
    res.rewritten = true;
    res.goal_predicate = goal.atom.predicate;
    res.rules_pruned = df.rules_pruned();
    res.magic_rules = demand_rules.size();
    res.adornments = demanded.size();

    Program& out = res.program;
    out.rules = demand_rules;
    out.rules.insert(out.rules.end(), guarded_rules.begin(),
                     guarded_rules.end());
    for (size_t ri = 0; ri < program.rules.size(); ++ri) {
      if (df.rule_kept[ri] && rule_full[ri]) {
        out.rules.push_back(program.rules[ri]);
      }
    }
    out.facts = program.facts;
    // Seed: the goal's own demand, ground over its bound constants.
    Atom seed;
    seed.predicate = MagicPred(goal.atom.predicate, goal_mask,
                               goal.atom.args.size());
    for (size_t i = 0; i < goal.atom.args.size(); ++i) {
      if ((goal_mask & MaskBit(i)) != 0) {
        seed.args.push_back(goal.atom.args[i]);
      }
    }
    out.facts.push_back(seed);
    out.outputs.push_back(goal.atom.predicate);
    return res;
  }
};

/// The input program minus rules the dataflow analysis pruned — exact for
/// the goal predicate's full extension, with or without magic.
Program PrunedProgram(const Program& program, const DataflowResult& df,
                      uint32_t goal_pred) {
  Program out;
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    if (df.rule_kept[ri]) out.rules.push_back(program.rules[ri]);
  }
  out.facts = program.facts;
  out.outputs.push_back(goal_pred);
  return out;
}

}  // namespace

std::string QueryGoal::ToString(const Catalog& cat) const {
  std::string s = cat.predicates.Name(atom.predicate);
  if (atom.args.empty()) return s;
  s += "(";
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) s += ", ";
    const Term& t = atom.args[i];
    s += t.is_var() ? var_names[t.var] : t.constant.ToString(cat.symbols);
  }
  return s + ")";
}

Result<QueryGoal> ParseQueryGoal(std::string_view text, Catalog* catalog) {
  // Reuse the program parser on the synthetic rule `goal -> goal.`; a
  // valid goal is exactly a body atom.
  std::string src = std::string(text) + " -> " + std::string(text) + " .";
  Result<Program> parsed = ParseProgram(src, catalog);
  if (!parsed.ok()) {
    return Status::InvalidArgument("invalid query goal '" +
                                   std::string(text) +
                                   "': " + parsed.status().message());
  }
  const Program& p = parsed.value();
  if (p.rules.size() != 1 || !p.facts.empty() || !p.outputs.empty() ||
      p.rules[0].body.size() != 1 || p.rules[0].head.size() != 1 ||
      p.rules[0].body[0].kind != Literal::Kind::kAtom) {
    return Status::InvalidArgument(
        "invalid query goal '" + std::string(text) +
        "': expected a single atom like control(7, X)");
  }
  QueryGoal goal;
  goal.atom = p.rules[0].body[0].atom;
  goal.var_names = p.rules[0].var_names;
  return goal;
}

bool GoalMatches(const QueryGoal& goal, const std::vector<Value>& tuple) {
  if (tuple.size() != goal.atom.args.size()) return false;
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Term& t = goal.atom.args[i];
    if (!t.is_var() && !(t.constant == tuple[i])) return false;
  }
  return true;
}

MagicResult MagicRewrite(const Program& program, Catalog* catalog,
                         const QueryGoal& goal) {
  const uint32_t goal_pred = goal.atom.predicate;
  DataflowResult df = AnalyzeDemand(program, *catalog, goal.atom);

  auto prune_only = [&](std::string code, std::string reason) {
    MagicResult res;
    res.rewritten = false;
    res.fallback_code = std::move(code);
    res.fallback_reason = std::move(reason);
    res.goal_predicate = goal_pred;
    res.rules_pruned = df.rules_pruned();
    res.program = PrunedProgram(program, df, goal_pred);
    res.dataflow = std::move(df);
    return res;
  };

  uint64_t goal_mask = 0;
  for (size_t i = 0; i < goal.atom.args.size() && i < 64; ++i) {
    if (!goal.atom.args[i].is_var()) goal_mask |= MaskBit(i);
  }
  if (goal_mask == 0) {
    // Nothing to demand: every rule in the pruned cone contributes. An
    // empty reason distinguishes "no demand to push" from a fallback.
    return prune_only("", "");
  }
  if (goal_pred < df.needs_full.size() && df.needs_full[goal_pred]) {
    return prune_only("needs_full",
                      "goal predicate '" +
                      catalog->predicates.Name(goal_pred) +
                      "' must be computed in full (read under negation or "
                      "written by a multi-head rule in its own cone)");
  }

  // Fallback conditions, checked over the kept goal-relevant rules only —
  // pruned rules cannot affect the goal and never block the rewrite.
  std::vector<uint32_t> comp = CondenseSCCs(BuildDependencyGraph(program),
                                            catalog->predicates.size());
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    if (!df.rule_kept[ri]) continue;
    const Rule& rule = program.rules[ri];
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kNegatedAtom &&
          lit.atom.predicate < comp.size() &&
          comp[lit.atom.predicate] == comp[goal_pred]) {
        return prune_only(
            "negation_in_goal_scc",
            "negation inside the goal's recursive component ('not " +
            catalog->predicates.Name(lit.atom.predicate) + "' at rule " +
            rule.span.ToString() + ")");
      }
    }
    if (!ExistentialVars(rule).empty()) {
      return prune_only(
          "existential_in_kept_rule",
          "existential variables in goal-relevant rule at " +
          rule.span.ToString() +
          " (labeled-null identity is enumeration-order-sensitive)");
    }
  }
  std::string agg_reason =
      CheckAggregateEscape(program, df, goal_pred, *catalog);
  if (!agg_reason.empty()) return prune_only("aggregate_escape", agg_reason);

  MagicBuilder builder(program, catalog, goal, df);
  MagicResult res = builder.Build(goal_mask);
  res.dataflow = std::move(df);
  return res;
}

}  // namespace vadalink::datalog
